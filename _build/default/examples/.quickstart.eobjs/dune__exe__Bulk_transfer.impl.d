examples/bulk_transfer.ml: Demux Format Hashing List Numerics Sim
