examples/bulk_transfer.mli:
