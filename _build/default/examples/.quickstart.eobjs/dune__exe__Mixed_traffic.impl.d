examples/mixed_traffic.ml: Array Demux Format Hashing List Printf Sim Sys
