examples/mixed_traffic.mli:
