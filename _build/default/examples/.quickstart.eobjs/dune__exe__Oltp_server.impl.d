examples/oltp_server.ml: Analysis Array Demux Format Hashing Sim Sys
