examples/oltp_server.mli:
