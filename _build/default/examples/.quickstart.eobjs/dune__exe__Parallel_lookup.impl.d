examples/parallel_lookup.ml: Array Domain Format List Parallel Printf String Sys
