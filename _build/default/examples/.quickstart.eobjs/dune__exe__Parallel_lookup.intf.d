examples/parallel_lookup.mli:
