examples/polling_worstcase.ml: Array Demux Format Hashing List Sim Sys
