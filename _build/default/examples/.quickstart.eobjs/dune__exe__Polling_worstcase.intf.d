examples/polling_worstcase.mli:
