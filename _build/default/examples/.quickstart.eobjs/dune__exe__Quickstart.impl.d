examples/quickstart.ml: Bytes Demux Format Hashing List Packet Printf String
