examples/quickstart.mli:
