examples/trace_demux.ml: Array Demux Format Fun Hashing Int32 List Numerics Packet Printf Sys Tcpcore
