examples/trace_demux.mli:
