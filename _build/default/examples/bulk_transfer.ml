(* The other side of the coin: bulk-data transfers form packet trains
   (Jain & Routhier), and there the BSD one-entry cache is excellent —
   which is exactly why it was adopted.  The paper's point is not that
   BSD is bad, but that OLTP traffic has no trains.

   This example delivers geometric trains (mean 16 segments) over 64
   connections and shows every algorithm's hit rate and cost, then
   re-runs the same shape with train length 1 (pure OLTP-like
   interleaving) to show the cache collapsing.

   Run with: dune exec examples/bulk_transfer.exe *)

let run_with ~label ~mean_train_length =
  let config =
    { (Sim.Trains_workload.default_config ~connections:64 ~trains:5000 ()) with
      Sim.Trains_workload.train_length =
        (if mean_train_length > 1.0 then
           Numerics.Distribution.geometric ~p:(1.0 /. mean_train_length)
         else Numerics.Distribution.deterministic 0.0) }
  in
  let specs =
    Demux.Registry.
      [ Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative } ]
  in
  let reports = List.map (Sim.Trains_workload.run config) specs in
  Format.printf "== %s ==@.%a@." label Sim.Report.pp_table reports

let () =
  run_with ~label:"packet trains, mean length 16 (bulk transfer)"
    ~mean_train_length:16.0;
  run_with ~label:"train length 1 (no locality at all)" ~mean_train_length:1.0;
  print_endline
    "With real trains the BSD cache hits ~94% of packets and all the\n\
     list algorithms look fine; with singleton trains the cache hit\n\
     rate collapses toward 1/connections and costs approach the mean\n\
     scan.  Hashing wins in both regimes."
