(* The abstract's full claim, live: "an order of magnitude better for
   OLTP traffic than the one-PCB cache approach while still
   maintaining good performance for packet-train traffic."

   One server carries a TPC/A terminal population AND a handful of
   bulk transfers; each lookup algorithm serves both traffic classes
   through the same PCB table, and the two classes are reported
   separately.

   Run with: dune exec examples/mixed_traffic.exe -- [oltp_users] [bulk_streams] *)

let () =
  let oltp_users =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1000
  in
  let bulk_streams =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4
  in
  let config = Sim.Mixed_workload.default_config ~oltp_users ~bulk_streams () in
  Printf.printf
    "%d OLTP terminals (%d txn/s) + %d bulk streams (%.0f segments/s each)\n\n"
    oltp_users (oltp_users / 10) bulk_streams
    config.Sim.Mixed_workload.bulk_rate;
  let results =
    List.map
      (Sim.Mixed_workload.run config)
      Demux.Registry.
        [ Bsd; Mtf; Sr_cache;
          Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
          Splay ]
  in
  Format.printf "%a@." Sim.Mixed_workload.pp_results results;
  print_endline
    "Watch the sr-cache row: its OLTP cost is WORSE here than under\n\
     pure OLTP, because the bulk stream keeps evicting its two cache\n\
     slots.  Cache-based schemes trade one traffic class against the\n\
     other; hashed chains (and the splay tree) serve both."
