(* The paper's headline experiment: a TPC/A database server with 2000
   heads-down data-entry users, no packet trains.  Simulates the
   four-packet transaction exchange over each lookup algorithm and
   compares the measured PCBs-examined-per-packet with the paper's
   analytic predictions (Equations 1, 6, 17, 22).

   Run with: dune exec examples/oltp_server.exe -- [users]
   (default 1000 users to keep the demo under a few seconds)      *)

let () =
  let users =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1000
  in
  let params = Analysis.Tpca_params.v ~users () in
  Format.printf
    "TPC/A: %a — %d transactions/s offered, 4 packets per transaction@.@."
    Analysis.Tpca_params.pp params (users / 10);
  let specs =
    Demux.Registry.
      [ Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
        Sequent { chains = 100; hasher = Hashing.Hashers.multiplicative };
        Conn_id { capacity = users } ]
  in
  let config = Sim.Tpca_workload.default_config ~duration:120.0 params in
  Format.printf "simulating %.0f measured seconds per algorithm...@.@."
    config.Sim.Tpca_workload.duration;
  let rows = Sim.Validate.compare ~config params specs in
  Format.printf "%a@." Sim.Validate.pp_rows rows;
  print_endline
    "The ratio column is simulation/analysis: near 1.0 everywhere means\n\
     the paper's closed forms predict the real data structures well.\n\
     Note the order-of-magnitude gap between sequent-19 and bsd, and\n\
     that conn-id (a TP4/X.25-style protocol change) only beats hashing\n\
     by a further small constant — the paper's closing argument."
