(* The context the paper came from: Sequent's PARALLEL TCP [Dov90].
   Several processors service inbound packets concurrently, so the PCB
   structure is not just a search problem but a locking problem.  One
   global lock serialises everything; one lock per hash chain lets
   packets for different connections proceed in parallel — the second,
   quieter reason hash chains won.

   This example measures aggregate lookup throughput as OCaml domains
   are added, for a globally locked BSD list, a globally locked
   Sequent table, and the lock-striped Sequent table.

   Run with: dune exec examples/parallel_lookup.exe -- [max_domains] *)

let () =
  let max_domains =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1)
    else min 4 (Domain.recommended_domain_count ())
  in
  let rec domain_counts d = if d > max_domains then [] else d :: domain_counts (d * 2) in
  let domains = domain_counts 1 in
  Printf.printf
    "lookup throughput, 2000 connections, %d cores available, domains = %s\n\n"
    (Domain.recommended_domain_count ())
    (String.concat "," (List.map string_of_int domains));
  let results =
    Parallel.Throughput.scaling_table ~lookups_per_domain:50_000 ~domains
      Parallel.Throughput.
        [ Coarse_bsd; Coarse_sequent 19; Striped_sequent 19;
          Striped_sequent 100 ]
  in
  Format.printf "%a@." Parallel.Throughput.pp_results results;
  print_endline
    "Striped throughput holds (or grows) with domains; coarse-locked\n\
     throughput collapses under contention no matter how fast the\n\
     underlying structure is."
