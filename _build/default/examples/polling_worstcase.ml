(* The paper's worst case for move-to-front (Section 3.2): "if the
   think times were deterministic (exactly 10 seconds always),
   Crowcroft's algorithm would look through all 2,000 PCBs on each
   transaction entry.  One example of a system with this behavior is a
   central server polling its clients, as seen in many point-of-sale
   terminal applications."

   Run with: dune exec examples/polling_worstcase.exe -- [users]   *)

let () =
  let users =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let config = Sim.Polling_workload.default_config ~users ~rounds:10 () in
  let specs =
    Demux.Registry.
      [ Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative } ]
  in
  let reports = List.map (Sim.Polling_workload.run config) specs in
  Format.printf
    "deterministic 10 s think time, %d users polled in rotation:@.@.%a@."
    users Sim.Report.pp_table reports;
  Format.printf
    "MTF's entry cost is ~%d — every other terminal slots in front of\n\
     you between your polls, so each entry scans the whole list; its\n\
     TPC/A advantage came entirely from think-time randomness.  The\n\
     hashed scheme does not care.@."
    users
