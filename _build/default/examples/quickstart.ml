(* Quickstart: build a demultiplexer, feed it real wire-format TCP
   segments, and read the paper's figure of merit (PCBs examined).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A server at 192.168.1.1:8888 with three client connections. *)
  let server = Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888 in
  let client i =
    Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 10 0 0 i) (4000 + i)
  in
  let flows = List.init 3 (fun i -> Packet.Flow.v ~local:server ~remote:(client (i + 1))) in

  (* Pick an algorithm: the paper's winner, 19 hash chains each with a
     one-entry cache.  Try Demux.Registry.Bsd here to feel the
     difference at scale. *)
  let demux =
    Demux.Registry.create
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  List.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;

  (* A segment arrives from client 2 — as bytes on the wire. *)
  let segment =
    Packet.Segment.make ~src:(client 2) ~dst:server
      ~flags:Packet.Tcp_header.flag_psh_ack ~seq:100l ~payload:"BEGIN TXN 42"
      ()
  in
  let wire = Packet.Segment.to_bytes segment in
  Printf.printf "on the wire: %d bytes (IPv4 + TCP + %d payload)\n"
    (Bytes.length wire)
    (String.length segment.Packet.Segment.payload);

  (* Receive path: parse (checksums verified), build the 96-bit flow
     key, demultiplex. *)
  (match Packet.Segment.parse wire ~off:0 with
  | Error message -> failwith message
  | Ok received -> (
    let flow = Packet.Segment.flow received in
    Format.printf "flow key: %a@." Packet.Flow.pp flow;
    match demux.Demux.Registry.lookup flow with
    | Some pcb -> Format.printf "matched %a@." Demux.Pcb.pp pcb
    | None -> print_endline "no PCB (would send RST)"));

  (* The accounting every algorithm shares. *)
  Format.printf "@.%a@." Demux.Lookup_stats.pp_snapshot
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats);

  (* The same lookup again now hits the chain's one-entry cache. *)
  let flow2 = Packet.Flow.v ~local:server ~remote:(client 2) in
  ignore (demux.Demux.Registry.lookup flow2);
  Format.printf "@.after a repeat lookup:@.%a@." Demux.Lookup_stats.pp_snapshot
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)
