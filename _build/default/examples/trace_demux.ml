(* Byte-level round trip: generate an OLTP-flavoured packet trace,
   write it to a real .pcap file (openable with tcpdump/wireshark),
   read it back, and push every datagram through the TCP stack —
   handshakes, queries, acknowledgements, teardown — with the
   demultiplexer metering each receive-path lookup.

   Run with: dune exec examples/trace_demux.exe -- [clients] [out.pcap] *)

let () =
  let clients =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 50
  in
  let path = if Array.length Sys.argv > 2 then Sys.argv.(2) else "oltp.pcap" in
  let rng = Numerics.Rng.create ~seed:7 in

  (* --- the server under test ------------------------------------ *)
  let server_addr = Packet.Ipv4.addr_of_octets 192 168 1 1 in
  let stack =
    Tcpcore.Stack.create
      ~demux:
        (Demux.Registry.Sequent
           { chains = 19; hasher = Hashing.Hashers.multiplicative })
      ~local_addr:server_addr ()
  in
  let queries = ref 0 in
  Tcpcore.Stack.listen stack ~port:8888 ~on_data:(fun t conn payload ->
      incr queries;
      Tcpcore.Stack.send t conn (Printf.sprintf "OK %s" payload));

  (* --- client-side state, hand-rolled so the trace is honest ----- *)
  let client_endpoint i =
    Packet.Flow.endpoint
      (Packet.Ipv4.addr_of_octets 10 0 (i / 250) (1 + (i mod 250)))
      (2000 + i)
  in
  let server_endpoint = Packet.Flow.endpoint server_addr 8888 in

  let trace = ref [] (* (time, bytes) newest first *) in
  let clock = ref 0.0 in
  let record segment =
    clock := !clock +. 0.0001;
    trace := (!clock, Packet.Segment.to_bytes segment) :: !trace
  in
  let drain_server () = List.iter record (Tcpcore.Stack.poll_output stack) in

  (* Handshake all clients, send one query each in random order, then
     close a few connections to exercise removal. *)
  let iss i = Int32.of_int (50000 + (i * 1000)) in
  let server_seq = Array.make clients 0l in
  for i = 0 to clients - 1 do
    let syn =
      Packet.Segment.make ~src:(client_endpoint i) ~dst:server_endpoint
        ~flags:Packet.Tcp_header.flag_syn ~seq:(iss i) ()
    in
    record syn;
    Tcpcore.Stack.handle_segment stack syn;
    (match Tcpcore.Stack.poll_output stack with
    | [ syn_ack ] ->
      record syn_ack;
      server_seq.(i) <-
        Int32.add syn_ack.Packet.Segment.tcp.Packet.Tcp_header.seq 1l;
      let ack =
        Packet.Segment.make ~src:(client_endpoint i) ~dst:server_endpoint
          ~flags:Packet.Tcp_header.flag_ack
          ~seq:(Int32.add (iss i) 1l)
          ~ack_number:server_seq.(i) ()
      in
      record ack;
      Tcpcore.Stack.handle_segment stack ack
    | _ -> failwith "expected exactly a SYN-ACK");
    drain_server ()
  done;

  let order = Array.init clients Fun.id in
  Numerics.Rng.shuffle rng order;
  Array.iter
    (fun i ->
      let query = Printf.sprintf "TXN client=%d amount=%d" i
          (Numerics.Rng.int rng ~bound:1000)
      in
      let data =
        Packet.Segment.make ~src:(client_endpoint i) ~dst:server_endpoint
          ~flags:Packet.Tcp_header.flag_psh_ack
          ~seq:(Int32.add (iss i) 1l)
          ~ack_number:server_seq.(i) ~payload:query ()
      in
      record data;
      Tcpcore.Stack.handle_segment stack data;
      drain_server ())
    order;

  (* --- write, re-read, verify ------------------------------------ *)
  let oc = open_out_bin path in
  let writer = Packet.Pcap.create_writer oc in
  List.iter
    (fun (time, bytes) -> Packet.Pcap.write_packet writer ~time bytes)
    (List.rev !trace);
  close_out oc;
  Printf.printf "wrote %d packets to %s\n" (Packet.Pcap.packet_count writer) path;

  let ic = open_in_bin path in
  let records =
    match Packet.Pcap.read_all ic with
    | Ok rs -> rs
    | Error e -> failwith e
  in
  close_in ic;
  let parsed_ok =
    List.for_all
      (fun r ->
        match Packet.Segment.parse r.Packet.Pcap.data ~off:0 with
        | Ok _ -> true
        | Error _ -> false)
      records
  in
  Printf.printf "re-read %d packets, checksums all valid: %b\n"
    (List.length records) parsed_ok;

  Printf.printf "server: %d connections, %d queries answered, %d RSTs\n"
    (Tcpcore.Stack.connection_count stack)
    !queries
    (Tcpcore.Stack.rsts_sent stack);
  Format.printf "demux accounting:@.%a@." Demux.Lookup_stats.pp_snapshot
    (Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats stack))
