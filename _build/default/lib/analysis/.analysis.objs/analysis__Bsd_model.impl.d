lib/analysis/bsd_model.ml: Float Tpca_params
