lib/analysis/bsd_model.mli: Tpca_params
