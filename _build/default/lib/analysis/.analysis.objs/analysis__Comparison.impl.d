lib/analysis/comparison.ml: Array Bsd_model List Mtf_model Printf Sequent_model Srcache_model Tpca_params
