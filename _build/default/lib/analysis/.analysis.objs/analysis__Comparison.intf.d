lib/analysis/comparison.mli:
