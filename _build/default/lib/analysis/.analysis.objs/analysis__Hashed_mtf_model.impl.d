lib/analysis/hashed_mtf_model.ml: Float Mtf_model Sequent_model Tpca_params
