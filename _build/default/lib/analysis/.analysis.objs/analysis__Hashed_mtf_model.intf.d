lib/analysis/hashed_mtf_model.mli: Tpca_params
