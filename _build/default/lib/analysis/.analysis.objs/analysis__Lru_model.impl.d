lib/analysis/lru_model.ml: Float Numerics Tpca_params
