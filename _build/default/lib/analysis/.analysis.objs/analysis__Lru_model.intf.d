lib/analysis/lru_model.mli: Tpca_params
