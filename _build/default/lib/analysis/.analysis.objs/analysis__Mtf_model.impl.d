lib/analysis/mtf_model.ml: Float Numerics Tpca_params
