lib/analysis/mtf_model.mli: Tpca_params
