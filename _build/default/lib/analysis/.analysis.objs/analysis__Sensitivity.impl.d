lib/analysis/sensitivity.ml: Bsd_model Float List Mtf_model Sequent_model Srcache_model Tpca_params
