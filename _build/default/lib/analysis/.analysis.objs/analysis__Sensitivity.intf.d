lib/analysis/sensitivity.mli: Tpca_params
