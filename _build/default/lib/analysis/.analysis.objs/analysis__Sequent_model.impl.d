lib/analysis/sequent_model.ml: Float Tpca_params
