lib/analysis/sequent_model.mli: Tpca_params
