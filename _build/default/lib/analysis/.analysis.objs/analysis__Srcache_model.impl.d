lib/analysis/srcache_model.ml: Float Numerics Tpca_params
