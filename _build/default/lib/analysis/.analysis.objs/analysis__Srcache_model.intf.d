lib/analysis/srcache_model.mli: Tpca_params
