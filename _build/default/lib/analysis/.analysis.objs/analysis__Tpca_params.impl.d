lib/analysis/tpca_params.ml: Format
