lib/analysis/tpca_params.mli: Format
