let hit_rate (p : Tpca_params.t) =
  if p.users = 0 then Float.nan else 1.0 /. float_of_int p.users

let cost (p : Tpca_params.t) =
  let n = float_of_int p.users in
  if p.users = 0 then 0.0
  else
    (* Equation 1: 1 for the cache probe, plus (N+1)/2 scanned on the
       (N-1)/N chance of a miss; simplifies to 1 + (N^2 - 1) / 2N. *)
    1.0 +. (((n *. n) -. 1.0) /. (2.0 *. n))

let train_probability (p : Tpca_params.t) =
  let n = float_of_int p.users in
  Float.exp (-2.0 *. p.rate *. p.response_time *. (n -. 1.0))
