(** Analytic model of the BSD algorithm (paper Section 3.1).

    One list, one single-entry cache.  Under TPC/A the cache hit rate
    is [1/N] — almost useless — so nearly every packet pays the mean
    linear scan. *)

val hit_rate : Tpca_params.t -> float
(** Cache hit rate [1/N] (0.05 % at N = 2000). *)

val cost : Tpca_params.t -> float
(** Equation 1: expected PCBs examined per packet.  A hit costs the
    single cache probe; a miss (probability [(N-1)/N]) additionally
    scans [(N+1)/2] PCBs, giving [1 + (N^2 - 1)/2N] — 1001.0 at
    N = 2000, approaching [N/2] for large N.  (The paper quotes 1001
    for its 200-TPS example.) *)

val train_probability : Tpca_params.t -> float
(** Probability that no other user's packet intervenes during a
    response-time interval, so the query/response-ack pair forms a
    packet train and the ack hits the cache:
    [exp (-2 a R (N-1))].  About 2e-35 for the default parameters —
    the paper's text prints "1.9 x 10-3[5]", and the magnitude of this
    expression shows the intended value is 1.9e-35. *)
