type series = { label : string; points : (float * float) array }

let figure4 ?(users = 2000) ?(max_time = 50.0) ?(steps = 200) () =
  let params = Tpca_params.v ~users () in
  let points =
    Array.init (steps + 1) (fun i ->
        let t = max_time *. float_of_int i /. float_of_int steps in
        (t, Mtf_model.expected_preceding params t))
  in
  { label = Printf.sprintf "N(T), %d users" users; points }

let sweep_users ~max_users ~step f =
  let count = (max_users / step) + 1 in
  Array.init count (fun i ->
      let users = max 1 (i * step) in
      (float_of_int users, f users))

let figure13 ?(max_users = 10000) ?(step = 100)
    ?(response_times = [ 1.0; 0.5; 0.2 ]) ?(sr_rtts = [ 0.001 ])
    ?(sequent_chains = 19) () =
  let bsd =
    { label = "BSD";
      points =
        sweep_users ~max_users ~step (fun users ->
            Bsd_model.cost (Tpca_params.v ~users ())) }
  in
  let mtf r =
    { label = Printf.sprintf "MTF %.1f" r;
      points =
        sweep_users ~max_users ~step (fun users ->
            Mtf_model.overall_cost (Tpca_params.v ~users ~response_time:r ())) }
  in
  let sr rtt =
    { label = Printf.sprintf "SR %g" (rtt *. 1000.0);
      points =
        sweep_users ~max_users ~step (fun users ->
            Srcache_model.overall_cost (Tpca_params.v ~users ~rtt ())) }
  in
  let sequent =
    { label = "SEQUENT";
      points =
        sweep_users ~max_users ~step (fun users ->
            Sequent_model.cost
              (Tpca_params.v ~users ())
              ~chains:sequent_chains) }
  in
  (bsd :: List.map mtf response_times)
  @ List.map sr sr_rtts @ [ sequent ]

let figure14 () =
  figure13 ~max_users:1000 ~step:10 ~sr_rtts:[ 0.001; 0.010 ] ()

let mtf_response_time_table ?(users = 2000) response_times =
  List.map
    (fun r ->
      let params = Tpca_params.v ~users ~response_time:r () in
      ( r, Mtf_model.entry_cost params, Mtf_model.ack_cost params,
        Mtf_model.overall_cost params ))
    response_times

let sequent_chain_sweep ?(users = 2000) ?(response_time = 0.2) chain_counts =
  let params = Tpca_params.v ~users ~response_time () in
  List.map
    (fun chains ->
      ( chains, Sequent_model.cost params ~chains,
        Sequent_model.cost_naive params ~chains ))
    chain_counts
