(** Figure-series generators: the analytic curves of the paper's
    Figures 4, 13 and 14. *)

type series = { label : string; points : (float * float) array }
(** One labelled curve: x = TPC/A connections (or seconds for
    Figure 4), y = expected PCBs searched (or users for Figure 4). *)

val figure4 : ?users:int -> ?max_time:float -> ?steps:int -> unit -> series
(** Equation 3, [N(T)] for [T] in [[0, max_time]].  Defaults: 2000
    users, 50 s, 200 steps — the paper's Figure 4. *)

val figure13 :
  ?max_users:int -> ?step:int -> ?response_times:float list ->
  ?sr_rtts:float list -> ?sequent_chains:int -> unit -> series list
(** The paper's Figure 13: expected search cost vs connection count
    for BSD, move-to-front at each response time (default 1.0, 0.5,
    0.2 s), the send/receive cache at each RTT (default 1 ms), and
    Sequent (default 19 chains, R = 0.2).  Defaults: users 0-10000
    step 100. *)

val figure14 : unit -> series list
(** The paper's Figure 14: the same curves detailed over 0-1000 users
    with the send/receive cache at both 1 ms and 10 ms RTT. *)

val mtf_response_time_table :
  ?users:int -> float list -> (float * float * float * float) list
(** For each response time: (R, entry cost, ack cost, overall cost) —
    the quoted-results table of Section 3.2. *)

val sequent_chain_sweep :
  ?users:int -> ?response_time:float -> int list -> (int * float * float) list
(** For each chain count: (H, Equation 22 cost, Equation 19 naive
    cost) — the paper's 19-vs-51-vs-100-chain discussion. *)
