let cost_estimate (params : Tpca_params.t) ~chains =
  if chains <= 0 then invalid_arg "Hashed_mtf_model: chains <= 0";
  let per_chain =
    float_of_int params.Tpca_params.users /. float_of_int chains
  in
  (* Equation 6's closed forms extend smoothly to fractional N; reuse
     them by scaling the (N-1) factors.  entry = (N'-1)(2/3 - e/6),
     ack = (N'-1)(1 - e^{-2aR}); both linear in N'-1. *)
  let reference_users = 1000 in
  let reference =
    Tpca_params.v ~users:reference_users ~rate:params.Tpca_params.rate
      ~response_time:params.Tpca_params.response_time
      ~rtt:params.Tpca_params.rtt ()
  in
  let scale = (per_chain -. 1.0) /. float_of_int (reference_users - 1) in
  Float.max 1.0 (Mtf_model.overall_cost reference *. scale)

let improvement_bound params ~chains =
  Sequent_model.cost params ~chains /. cost_estimate params ~chains
