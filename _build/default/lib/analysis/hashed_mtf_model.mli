(** Approximate analytic model for hash chains with move-to-front
    inside each chain (paper Section 3.5's rejected combination).

    The paper gives no equation — only the bound that the combination
    wins "at best a factor of two" over plain chains.  A natural
    estimate treats each chain as an independent move-to-front list
    over its [N/H] users: Equation 6 evaluated at the per-chain
    population, with per-user rate unchanged.  This ignores
    cross-chain timing correlation, so we expose it as an {e estimate}
    and validate it against simulation in the test suite (it lands
    within ~25 % — good enough to reproduce the factor-of-two
    argument, not a closed form the paper claims). *)

val cost_estimate : Tpca_params.t -> chains:int -> float
(** Equation 6 at [N/H] users (fractional populations interpolated).
    @raise Invalid_argument if [chains <= 0]. *)

val improvement_bound : Tpca_params.t -> chains:int -> float
(** [Sequent cost / hashed-MTF estimate] — the paper argues this never
    reaches the factor of five that 19 -> 100 chains buys. *)
