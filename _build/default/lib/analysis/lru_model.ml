let check entries =
  if entries <= 0 then invalid_arg "Lru_model: entries <= 0"

let window_rate (p : Tpca_params.t) =
  (* Each other user offers ~2 packets per transaction into the
     response window. *)
  2.0 *. p.Tpca_params.rate
  *. (p.Tpca_params.response_time +. p.Tpca_params.rtt)
  *. float_of_int (max 0 (p.Tpca_params.users - 1))

let poisson_pmf ~lambda k =
  if lambda = 0.0 then if k = 0 then 1.0 else 0.0
  else
    Float.exp
      ((float_of_int k *. Float.log lambda)
      -. lambda
      -. Numerics.Special.log_factorial k)

let ack_hit_probability (p : Tpca_params.t) ~entries =
  check entries;
  let lambda = window_rate p in
  Numerics.Kahan.sum_fn entries (fun k -> poisson_pmf ~lambda k)

let miss_cost (p : Tpca_params.t) ~entries =
  let n = float_of_int p.Tpca_params.users in
  float_of_int entries +. ((n +. 1.0) /. 2.0)

let ack_cost (p : Tpca_params.t) ~entries =
  check entries;
  let lambda = window_rate p in
  (* Hit at LRU position k+1 when k < K others intervened. *)
  let hit_side =
    Numerics.Kahan.sum_fn entries (fun k ->
        poisson_pmf ~lambda k *. float_of_int (k + 1))
  in
  let miss_probability = 1.0 -. ack_hit_probability p ~entries in
  hit_side +. (miss_probability *. miss_cost p ~entries)

let entry_cost (p : Tpca_params.t) ~entries =
  check entries;
  (* Think times are tens of response windows: treat the entry as a
     guaranteed miss (the K/N correction is below a tenth of a PCB for
     any sane K). *)
  miss_cost p ~entries

let cost p ~entries = 0.5 *. (entry_cost p ~entries +. ack_cost p ~entries)

let best_entries p ~max_entries =
  let best = ref (1, cost p ~entries:1) in
  for entries = 2 to max_entries do
    let c = cost p ~entries in
    if c < snd !best then best := (entries, c)
  done;
  !best
