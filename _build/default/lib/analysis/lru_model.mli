(** Analytic model for a K-entry LRU cache in front of the linear
    list (the E24 ablation; the paper's BSD is the K = 1 case).

    Transaction entries: after a think time (mean 10 s) the chance
    that fewer than K other connections' packets intervened is
    negligible for any practical K, so entries pay the full probe-
    plus-scan cost [K + (N+1)/2].

    Response acknowledgements: the number of {e other} users whose
    packets intervene during the response window [R + D] is
    approximately Poisson with mean [lambda = 2a(R+D)(N-1)] (each of
    N-1 users contributes a transaction and an acknowledgement at rate
    [a]).  The ack hits the cache iff that count is below K, at LRU
    position count+1; otherwise it pays the miss.  This reproduces the
    simulated crossover where K ~ lambda suddenly makes the cache
    useful — and shows the cost still floors an order of magnitude
    above hashed chains.

    Accuracy: within a few percent of simulation up to K of a couple
    of lambdas.  For much larger K a second-order effect the model
    ignores kicks in — the cache's eviction horizon (K / miss rate)
    grows past the think-time scale, so transaction {e entries} start
    hitting too and the model overestimates (by ~20 % at K = 256,
    N = 1000).  The test suite pins both regimes. *)

val ack_hit_probability : Tpca_params.t -> entries:int -> float
(** [P(Poisson(lambda) < K)]. *)

val ack_cost : Tpca_params.t -> entries:int -> float
val entry_cost : Tpca_params.t -> entries:int -> float

val cost : Tpca_params.t -> entries:int -> float
(** Mean of entry and acknowledgement costs.
    @raise Invalid_argument if [entries <= 0]. *)

val best_entries : Tpca_params.t -> max_entries:int -> int * float
(** The cache size minimising {!cost} over [1..max_entries], with its
    cost — how far cache sizing alone can take the linear list. *)
