let expected_preceding (p : Tpca_params.t) t =
  let n = float_of_int p.users in
  (n -. 1.0) *. -.Float.expm1 (-.p.rate *. t)

let expected_preceding_sum (p : Tpca_params.t) t =
  if p.users = 0 then 0.0
  else
    let prob = -.Float.expm1 (-.p.rate *. t) in
    Numerics.Special.binomial_mean_direct ~n:(p.users - 1) ~p:prob

let entry_cost (p : Tpca_params.t) =
  let n = float_of_int p.users in
  let r = p.response_time in
  (* Equation 5 in closed form: integrate N(2T) over think times below
     R and N(T+R) above R against the exponential think-time density. *)
  (n -. 1.0) *. ((2.0 /. 3.0) -. (Float.exp (-3.0 *. p.rate *. r) /. 6.0))

let entry_cost_quadrature (p : Tpca_params.t) =
  let r = p.response_time in
  Numerics.Integrate.expectation_exponential_piecewise ~rate:p.rate
    ~breakpoints:[ r ]
    (fun t ->
      if t < r then expected_preceding p (2.0 *. t)
      else expected_preceding p (t +. r))

let ack_cost (p : Tpca_params.t) =
  expected_preceding p (2.0 *. p.response_time)

let overall_cost (p : Tpca_params.t) =
  0.5 *. (entry_cost p +. ack_cost p)

let entry_cost_deterministic (p : Tpca_params.t) = float_of_int p.users
