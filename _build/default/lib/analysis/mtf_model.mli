(** Analytic model of Crowcroft's move-to-front list (paper
    Section 3.2).

    The quantity everything builds on is the paper's [N(T)]
    (Equation 3): the expected number of {e other} users whose PCBs
    precede a given user's after an interval of length [T].  The
    binomial sum collapses to the closed form
    [(N-1) * (1 - exp (-aT))], which this module uses inside the
    integrals; the raw sum is also exposed so tests can confirm the
    identity. *)

val expected_preceding : Tpca_params.t -> float -> float
(** [expected_preceding p t] — Equation 3 / Figure 4 — closed form
    [(N-1)(1 - e^{-at})]. *)

val expected_preceding_sum : Tpca_params.t -> float -> float
(** Equation 3 evaluated as the paper prints it: the explicit
    binomial-weighted sum, in log space.  Equal to
    {!expected_preceding} to floating-point accuracy; costs O(N). *)

val entry_cost : Tpca_params.t -> float
(** Expected PCBs scanned for a {e transaction-entry} packet
    (Equation 5).  During a think time [T < R] the window for other
    users' packets is [2T]; for [T > R] it is [T + R].  Closed form
    [(N-1) (2/3 - e^{-3aR}/6)].  Paper values at N = 2000: 1019, 1045,
    1086, 1150 for R = 0.2, 0.5, 1.0, 2.0. *)

val entry_cost_quadrature : Tpca_params.t -> float
(** Equation 5 by direct numerical integration of the two-piece
    integrand, as a cross-check of {!entry_cost}. *)

val ack_cost : Tpca_params.t -> float
(** Expected PCBs scanned for a {e response-acknowledgement} packet:
    [N(2R)] (Figure 7 discussion).  Paper values: 78, 190, 362, 659
    for R = 0.2, 0.5, 1.0, 2.0. *)

val overall_cost : Tpca_params.t -> float
(** Equation 6: the mean of {!entry_cost} and {!ack_cost} — half the
    server's packets are entries, half are acks.  Paper values: 549,
    618, 724, 904. *)

val entry_cost_deterministic : Tpca_params.t -> float
(** The paper's worst case: with {e deterministic} think times
    (central server polling its clients) every other user slots in
    ahead, so each entry scans all [N] PCBs. *)
