let chains_needed (params : Tpca_params.t) ~target_cost =
  if target_cost < 1.0 then
    invalid_arg "Sensitivity.chains_needed: target below the 1-PCB floor";
  if params.Tpca_params.users <= 0 then
    invalid_arg "Sensitivity.chains_needed: no users";
  (* Equation 22 is monotone decreasing in H; gallop then bisect. *)
  let cost chains = Sequent_model.cost params ~chains in
  if cost 1 <= target_cost then 1
  else begin
    let hi = ref 1 in
    while cost !hi > target_cost && !hi < params.Tpca_params.users do
      hi := !hi * 2
    done;
    let lo = ref (max 1 (!hi / 2)) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if cost mid <= target_cost then hi := mid else lo := mid
    done;
    !hi
  end

let bisect_users ~lo ~hi predicate =
  (* Smallest N in (lo, hi] satisfying a monotone predicate. *)
  let lo = ref lo and hi = ref hi in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if predicate mid then hi := mid else lo := mid
  done;
  !hi

let sr_rejoins_bsd ?(rtt = 0.001) ?(threshold = 0.95) () =
  let ratio users =
    let params = Tpca_params.v ~users ~rtt () in
    Srcache_model.overall_cost params /. Bsd_model.cost params
  in
  bisect_users ~lo:1 ~hi:10_000_000 (fun users -> ratio users > threshold)

let mtf_beats_sr_from ?(rtt = 0.001) ?(response_time = 0.2) () =
  let advantage users =
    let params = Tpca_params.v ~users ~rtt ~response_time () in
    Mtf_model.overall_cost params < Srcache_model.overall_cost params
  in
  if not (advantage 100_000) then None
  else Some (bisect_users ~lo:1 ~hi:100_000 advantage)

let cost_gradient_in_response_time (params : Tpca_params.t) algorithm =
  let cost_at response_time =
    let p = { params with Tpca_params.response_time } in
    match algorithm with
    | `Bsd -> Bsd_model.cost p
    | `Mtf -> Mtf_model.overall_cost p
    | `Sr_cache -> Srcache_model.overall_cost p
    | `Sequent chains -> Sequent_model.cost p ~chains
  in
  let h = 0.001 in
  let r = params.Tpca_params.response_time in
  (cost_at (r +. h) -. cost_at (Float.max 1e-6 (r -. h))) /. (2.0 *. h)

let sweep_2d ~users ~chains =
  List.concat_map
    (fun n ->
      let params = Tpca_params.v ~users:n () in
      List.map (fun h -> (n, h, Sequent_model.cost params ~chains:h)) chains)
    users
