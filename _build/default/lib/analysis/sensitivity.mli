(** Sensitivity analysis and crossover finding on the paper's models.

    The comparison figures show {e where} algorithms cross; these
    helpers compute the crossings and answer the sizing question the
    paper leaves to the system administrator ("may increase the value
    of H in order to get even better performance"). *)

val chains_needed : Tpca_params.t -> target_cost:float -> int
(** Smallest chain count [H] whose Equation 22 cost is at or below
    [target_cost].  The paper's examples: ~19 chains reach 53 PCBs,
    ~100 reach 9.
    @raise Invalid_argument if [target_cost < 1] (one examination is
    the floor) or the parameters are degenerate. *)

val sr_rejoins_bsd : ?rtt:float -> ?threshold:float -> unit -> int
(** The user count beyond which the send/receive cache's advantage
    over BSD has shrunk below [threshold] (default: within 5 %,
    i.e. ratio > 0.95) at round-trip time [rtt] (default 1 ms).
    Monotone bisection over N. *)

val mtf_beats_sr_from : ?rtt:float -> ?response_time:float -> unit -> int option
(** Smallest user count at which move-to-front's overall cost drops
    below the send/receive cache's (the Figure 14 crossover), if it
    happens within 1..100_000 users. *)

val cost_gradient_in_response_time :
  Tpca_params.t -> [ `Bsd | `Mtf | `Sr_cache | `Sequent of int ] -> float
(** Numerical d(cost)/dR at the given operating point (central
    difference, h = 1 ms): how sensitive each algorithm is to server
    response time.  BSD's is ~0 (its cache is already dead); MTF's is
    positive and large — its advantage erodes as responses slow. *)

val sweep_2d :
  users:int list -> chains:int list -> (int * int * float) list
(** Equation 22 over a (users x chains) grid, for heatmap-style
    output: [(users, chains, cost)] in row-major order. *)
