let default_chains = 19

let check_chains chains =
  if chains <= 0 then invalid_arg "Sequent_model: chains <= 0"

let hit_rate (p : Tpca_params.t) ~chains =
  check_chains chains;
  if p.users = 0 then Float.nan
  else Float.min 1.0 (float_of_int chains /. float_of_int p.users)

let quiet_probability (p : Tpca_params.t) ~chains =
  check_chains chains;
  let per_chain = float_of_int p.users /. float_of_int chains in
  (* Equation 20; when a chain holds at most one user the exponent is
     non-negative and the chain is always quiet. *)
  Float.min 1.0
    (Float.exp (-2.0 *. p.rate *. p.response_time *. (per_chain -. 1.0)))

let chain_scan_cost per_chain = ((per_chain +. 1.0) /. 2.0)

let cost_naive (p : Tpca_params.t) ~chains =
  check_chains chains;
  let n = float_of_int p.users and h = float_of_int chains in
  if p.users = 0 then 0.0
  else
    let per_chain = n /. h in
    let miss_probability = Float.max 0.0 ((n -. h) /. n) in
    (* Equation 19 = C_BSD(N/H): one cache probe plus the chain scan on
       a miss. *)
    1.0 +. (miss_probability *. chain_scan_cost per_chain)

let ack_cost (p : Tpca_params.t) ~chains =
  check_chains chains;
  let n = float_of_int p.users and h = float_of_int chains in
  if p.users = 0 then 0.0
  else
    let quiet = quiet_probability p ~chains in
    (* Equation 21: a quiet chain leaves the PCB cached (1 examined);
       otherwise the mean chain scan follows. *)
    quiet +. ((1.0 -. quiet) *. chain_scan_cost (n /. h))

let cost (p : Tpca_params.t) ~chains =
  (* Equation 22: half the server's packets are transaction entries
     (Equation 19 applies), half are acknowledgements (Equation 21). *)
  0.5 *. (cost_naive p ~chains +. ack_cost p ~chains)

let naive_error p ~chains =
  let refined = cost p ~chains in
  (cost_naive p ~chains -. refined) /. refined
