(** Analytic model of the Sequent algorithm (paper Section 3.4):
    [H] hash chains, each with a single-entry last-found cache.

    The naive view (Equation 19) treats the scheme as BSD over chains
    of [N/H] PCBs.  The refinement (Equations 20-22) notices that a
    chain serving only [N/H] users is often {e quiet} for a whole
    response-time interval, so the acknowledgement finds its PCB still
    cached; this matters more as [H] grows.  All expressions assume
    the hash spreads users evenly — the ablation in the benchmark
    suite measures what uneven hashes do to this. *)

val default_chains : int
(** 19, Sequent's installation default. *)

val hit_rate : Tpca_params.t -> chains:int -> float
(** Cache hit rate [H/N] (naive view; just over 0.95 % for H = 19,
    N = 2000), clamped to 1. *)

val quiet_probability : Tpca_params.t -> chains:int -> float
(** Equation 20: probability that no packet for a given chain arrives
    during a response-time interval,
    [exp (-2aR (N/H - 1))] — about 1.5 % at H = 19 and 21 % at H = 51
    for the default parameters, versus 2e-35 for single-chain BSD. *)

val cost_naive : Tpca_params.t -> chains:int -> float
(** Equation 19: [C_BSD (N/H)] — 53.6 at the defaults. *)

val ack_cost : Tpca_params.t -> chains:int -> float
(** Equation 21: acknowledgement cost refined by the quiet-chain
    probability. *)

val cost : Tpca_params.t -> chains:int -> float
(** Equation 22: mean of Equations 19 and 21 — 53.0 at the defaults
    (the naive 53.6 is ~1 % off; the gap exceeds 10 % at H = 51).
    Dropping to below 9 at H = 100. *)

val naive_error : Tpca_params.t -> chains:int -> float
(** Relative error [(cost_naive - cost) / cost], the paper's accuracy
    claim for Equation 19. *)
