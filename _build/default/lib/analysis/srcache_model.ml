(* Shared shorthands: a = per-user rate, n = users, miss cost
   (N+5)/2 = two cache probes plus the (N+1)/2 mean chain scan, hit
   cost 1. *)

let miss_cost n = (n +. 5.0) /. 2.0

let survival_probability_long_think (p : Tpca_params.t) t =
  let n = float_of_int p.users in
  Float.exp (-.p.rate *. (t +. p.response_time +. p.rtt) *. (n -. 1.0))

let survival_probability_short_think (p : Tpca_params.t) t =
  let n = float_of_int p.users in
  Float.exp (-2.0 *. p.rate *. t *. (n -. 1.0))

let expected_cost_given_survival survive n =
  survive +. ((1.0 -. survive) *. miss_cost n)

let transaction_cost_long_think (p : Tpca_params.t) =
  let n = float_of_int p.users in
  let a = p.rate in
  let rd = p.response_time +. p.rtt in
  (* Equation 11: integrate Equation 9 against the think-time density
     over [R+D, inf). *)
  (miss_cost n *. Float.exp (-.a *. rd))
  -. ((n +. 3.0) /. (2.0 *. n) *. Float.exp (-.a *. rd *. ((2.0 *. n) -. 1.0)))

let transaction_cost_short_think (p : Tpca_params.t) =
  let n = float_of_int p.users in
  let a = p.rate in
  let rd = p.response_time +. p.rtt in
  (* Equation 14: integrate over [0, R+D). *)
  (miss_cost n *. -.Float.expm1 (-.a *. rd))
  +. ((n +. 3.0) /. (2.0 *. ((2.0 *. n) -. 1.0))
     *. Float.expm1 (-.a *. rd *. ((2.0 *. n) -. 1.0)))

let transaction_cost_long_think_quadrature (p : Tpca_params.t) =
  let n = float_of_int p.users in
  let rd = p.response_time +. p.rtt in
  let integrand t =
    if t <= rd then 0.0
    else expected_cost_given_survival (survival_probability_long_think p t) n
  in
  Numerics.Integrate.expectation_exponential_piecewise ~rate:p.rate
    ~breakpoints:[ rd ] integrand

let transaction_cost_short_think_quadrature (p : Tpca_params.t) =
  let n = float_of_int p.users in
  let rd = p.response_time +. p.rtt in
  let integrand t =
    if t > rd then 0.0
    else expected_cost_given_survival (survival_probability_short_think p t) n
  in
  Numerics.Integrate.expectation_exponential_piecewise ~rate:p.rate
    ~breakpoints:[ rd ] integrand

let ack_cost (p : Tpca_params.t) =
  let n = float_of_int p.users in
  (* Equation 16: two windows of width D around the response give
     survival probability exp(-2aD(N-1)); D is constant so no
     integration is needed. *)
  let survive = Float.exp (-2.0 *. p.rate *. p.rtt *. (n -. 1.0)) in
  miss_cost n -. ((n +. 3.0) /. 2.0 *. survive)

let overall_cost (p : Tpca_params.t) =
  (* Equation 17 combination; see the interface note about the paper's
     printed 1/3. *)
  0.5
  *. (transaction_cost_long_think p +. transaction_cost_short_think p
     +. ack_cost p)
