(** Analytic model of Partridge and Pink's last-sent/last-received
    cache (paper Section 3.3).

    Three mutually exclusive receive cases: a transaction whose think
    time exceeded [R + D] (Equation 11, "N1"), a transaction whose
    think time was shorter (Equation 14, "N2"), and a response
    acknowledgement (Equation 16, "Na").  A cache hit costs one
    examination; a full miss costs the two cache probes plus the mean
    scan, [(N+5)/2].

    Note on Equation 7: the paper prints the per-packet average as
    [1/3 (N1 + N2 + Na)], but its own quoted results (667, 993, 1002
    PCBs for D = 1, 10, 100 ms) equal [((N1 + N2) + Na) / 2] — the
    transaction cases are disjoint halves of one packet class.  We
    implement the [/2] combination and verify the quoted numbers in
    the test suite. *)

val transaction_cost_long_think : Tpca_params.t -> float
(** Equation 11 ("N1"): contribution of transaction receptions with
    think time above [R + D]. *)

val transaction_cost_short_think : Tpca_params.t -> float
(** Equation 14 ("N2"): contribution of transaction receptions with
    think time below [R + D]. *)

val transaction_cost_long_think_quadrature : Tpca_params.t -> float
(** Equation 10 integrated numerically, cross-checking Equation 11. *)

val transaction_cost_short_think_quadrature : Tpca_params.t -> float
(** Equation 13 integrated numerically, cross-checking Equation 14. *)

val ack_cost : Tpca_params.t -> float
(** Equation 16 ("Na"): expected PCBs examined for a response
    acknowledgement.  The flush windows are the two RTT-length
    intervals around the response, so the survival probability is
    [exp (-2aD(N-1))]. *)

val survival_probability_long_think : Tpca_params.t -> float -> float
(** Equation 8: probability no other user flushes the caches when the
    think time is [t > R + D]. *)

val survival_probability_short_think : Tpca_params.t -> float -> float
(** Equation 12: same for [t < R + D]. *)

val overall_cost : Tpca_params.t -> float
(** Equation 17: per-packet expectation,
    [((N1 + N2) + Na) / 2].  Paper values at N = 2000, R = 0.2:
    667, 993, 1002 for D = 1, 10, 100 ms.  Approaches [(N+5)/2] as
    N grows — the scheme decays to (slightly worse than) BSD. *)
