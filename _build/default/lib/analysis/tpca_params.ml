type t = {
  users : int;
  rate : float;
  response_time : float;
  rtt : float;
}

let default = { users = 2000; rate = 0.1; response_time = 0.2; rtt = 0.001 }

let v ?(rate = 0.1) ?(response_time = 0.2) ?(rtt = 0.001) ~users () =
  if users < 0 then invalid_arg "Tpca_params.v: negative users";
  if rate <= 0.0 then invalid_arg "Tpca_params.v: rate <= 0";
  if response_time <= 0.0 then invalid_arg "Tpca_params.v: response_time <= 0";
  if rtt <= 0.0 then invalid_arg "Tpca_params.v: rtt <= 0";
  { users; rate; response_time; rtt }

let think_time_mean t = 1.0 /. t.rate
let think_time_cutoff t = 10.0 /. t.rate
let server_packets_per_transaction = 2

let pp ppf t =
  Format.fprintf ppf "N=%d a=%g R=%gs D=%gs" t.users t.rate t.response_time
    t.rtt
