(** TPC/A workload parameters shared by every analytic model.

    The paper's Section 2: each user enters a transaction, waits the
    response time, then thinks for an exponentially distributed time
    of mean at least 10 s; a benchmark at [tps] transactions per
    second must simulate at least [10 * tps] users.  Each transaction
    is four packets, two of which (the query and the response
    acknowledgement) arrive at the server. *)

type t = {
  users : int;          (** N — concurrent TPC/A connections. *)
  rate : float;         (** a — per-user transaction rate, 1/s. *)
  response_time : float;(** R — seconds from query to response. *)
  rtt : float;          (** D — network round-trip time, seconds. *)
}

val default : t
(** The paper's running example: a 200-TPS benchmark — [users = 2000],
    [rate = 0.1], [response_time = 0.2], [rtt = 0.001]. *)

val v :
  ?rate:float -> ?response_time:float -> ?rtt:float -> users:int -> unit -> t
(** @raise Invalid_argument if any value is non-positive ([users] may
    be zero only for plotting axes). *)

val think_time_mean : t -> float
(** Mean think time [1 / rate] (10 s at the default). *)

val think_time_cutoff : t -> float
(** TPC/A truncation point: ten times the mean. *)

val server_packets_per_transaction : int
(** Packets {e received by the server} per transaction: the query and
    the response acknowledgement (the other two packets of the
    four-packet exchange arrive at the client). *)

val pp : Format.formatter -> t -> unit
