lib/demux/bsd.ml: Chain Flow_table Lookup_stats Option Pcb
