lib/demux/bsd.mli: Lookup_stats Packet Pcb Types
