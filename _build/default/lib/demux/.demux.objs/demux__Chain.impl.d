lib/demux/chain.ml: List Lookup_stats Pcb
