lib/demux/chain.mli: Lookup_stats Packet Pcb
