lib/demux/conn_id.ml: Array Flow_table Fun List Lookup_stats Pcb
