lib/demux/conn_id.mli: Lookup_stats Packet Pcb Types
