lib/demux/flow_table.ml: Hashtbl Packet
