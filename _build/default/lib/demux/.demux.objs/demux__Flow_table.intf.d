lib/demux/flow_table.mli: Hashtbl Packet
