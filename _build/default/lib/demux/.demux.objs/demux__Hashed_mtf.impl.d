lib/demux/hashed_mtf.ml: Array Chain Flow_table Hashing Lookup_stats Packet Pcb Sequent
