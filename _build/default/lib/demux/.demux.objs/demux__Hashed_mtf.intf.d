lib/demux/hashed_mtf.mli: Hashing Lookup_stats Packet Pcb Types
