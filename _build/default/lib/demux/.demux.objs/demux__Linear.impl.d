lib/demux/linear.ml: Chain Flow_table Lookup_stats Pcb
