lib/demux/linear.mli: Lookup_stats Packet Pcb Types
