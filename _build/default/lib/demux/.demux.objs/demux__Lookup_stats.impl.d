lib/demux/lookup_stats.ml: Float Format List
