lib/demux/lookup_stats.mli: Format
