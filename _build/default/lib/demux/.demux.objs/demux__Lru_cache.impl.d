lib/demux/lru_cache.ml: Chain Flow_table Lookup_stats Pcb
