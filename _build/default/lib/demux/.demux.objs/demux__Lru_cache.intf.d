lib/demux/lru_cache.mli: Lookup_stats Packet Pcb Types
