lib/demux/mtf.ml: Chain Flow_table Lookup_stats Pcb
