lib/demux/mtf.mli: Lookup_stats Packet Pcb Types
