lib/demux/pcb.ml: Format Packet
