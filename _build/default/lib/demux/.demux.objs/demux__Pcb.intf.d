lib/demux/pcb.mli: Format Packet
