lib/demux/registry.ml: Bsd Conn_id Hashed_mtf Hashing Linear Lookup_stats Lru_cache Mtf Packet Pcb Printf Resizing_hash Sequent Splay Sr_cache String Types
