lib/demux/registry.mli: Hashing Lookup_stats Packet Pcb Types
