lib/demux/resizing_hash.ml: Array Chain Flow_table Hashing Lookup_stats Packet Pcb
