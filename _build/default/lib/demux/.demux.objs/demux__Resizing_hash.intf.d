lib/demux/resizing_hash.mli: Hashing Lookup_stats Packet Pcb Types
