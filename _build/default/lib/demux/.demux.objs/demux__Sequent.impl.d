lib/demux/sequent.ml: Array Chain Flow_table Hashing Lookup_stats Packet Pcb
