lib/demux/sequent.mli: Hashing Lookup_stats Packet Pcb Types
