lib/demux/splay.ml: Lookup_stats Packet Pcb
