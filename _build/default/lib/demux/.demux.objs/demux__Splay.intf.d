lib/demux/splay.mli: Lookup_stats Packet Pcb Types
