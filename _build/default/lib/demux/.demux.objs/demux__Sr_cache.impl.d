lib/demux/sr_cache.ml: Chain Flow_table Lookup_stats Option Pcb Types
