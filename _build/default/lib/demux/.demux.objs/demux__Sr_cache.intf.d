lib/demux/sr_cache.mli: Lookup_stats Packet Pcb Types
