lib/demux/types.ml: Format
