lib/demux/types.mli: Format
