(** The BSD 4.3-Reno algorithm (paper Section 3.1): one linear list
    plus a single-entry cache holding the PCB last found.

    Lookup probes the cache (one PCB examined); on a miss it scans the
    list from the head charging one examination per PCB compared, then
    installs the result in the cache.  Expected cost under TPC/A is
    Equation 1: [1 + (N^2 - 1)/N], about [N/2] — 1001 PCBs at
    N = 2000. *)

type 'a t

val name : string
val create : unit -> 'a t

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
(** Removing the cached PCB invalidates the cache. *)

val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit

val cached_flow : 'a t -> Packet.Flow.t option
(** Current cache contents, for tests. *)
