(** Intrusive doubly linked PCB chain.

    The common substrate of every list-based algorithm in the paper:
    BSD's single list, Crowcroft's move-to-front list, Partridge and
    Pink's cached list, and each of the Sequent algorithm's hash
    chains.  Nodes support O(1) unlink and move-to-front, and the scan
    primitive charges one examination per PCB compared via the
    caller's {!Lookup_stats.t}. *)

type 'a node
type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val pcb : 'a node -> 'a Pcb.t

val push_front : 'a t -> 'a Pcb.t -> 'a node
(** New PCBs go to the head, matching BSD's insertion discipline. *)

val remove : 'a t -> 'a node -> unit
(** Unlink a node.
    @raise Invalid_argument if the node is not currently linked in
    this chain. *)

val move_to_front : 'a t -> 'a node -> unit
(** Crowcroft's heuristic; no-op when already at the head. *)

val scan : 'a t -> stats:Lookup_stats.t -> Packet.Flow.t -> 'a node option
(** Walk from the head comparing flows, charging one examination per
    PCB compared (including the match itself, per the paper's
    accounting). *)

val iter : ('a Pcb.t -> unit) -> 'a t -> unit
(** Head-to-tail iteration (no charge). *)

val to_list : 'a t -> 'a Pcb.t list
(** Head-to-tail snapshot, for tests. *)

val tail_pcb : 'a t -> 'a Pcb.t option
(** The PCB at the tail (least recently pushed/moved), O(1). *)

val find_exact : 'a t -> Packet.Flow.t -> 'a node option
(** Uncharged exact search, for maintenance paths (removal, transmit
    bookkeeping) that the paper does not meter. *)
