type 'a t = {
  slots : 'a Pcb.t option array;
  ids : int Flow_table.t;
  mutable free : int list;
  stats : Lookup_stats.t;
  mutable population : int;
}

let name = "conn-id"

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Conn_id.create: capacity <= 0";
  { slots = Array.make capacity None; ids = Flow_table.create 64;
    free = List.init capacity Fun.id; stats = Lookup_stats.create ();
    population = 0 }

let insert t flow data =
  if Flow_table.mem t.ids flow then invalid_arg "Conn_id.insert: duplicate flow";
  match t.free with
  | [] -> failwith "Conn_id.insert: connection-ID space exhausted"
  | id :: rest ->
    t.free <- rest;
    let pcb = Pcb.make ~id ~flow data in
    t.slots.(id) <- Some pcb;
    Flow_table.replace t.ids flow id;
    t.population <- t.population + 1;
    Lookup_stats.note_insert t.stats;
    pcb

let connection_id t flow = Flow_table.find_opt t.ids flow

let lookup_by_id t ?kind:_ id =
  Lookup_stats.begin_lookup t.stats;
  if id < 0 || id >= Array.length t.slots then begin
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None
  end
  else begin
    Lookup_stats.examine t.stats ();
    match t.slots.(id) with
    | Some pcb ->
      Pcb.note_rx pcb;
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
      Some pcb
    | None ->
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
      None
  end

let remove t flow =
  match Flow_table.find_opt t.ids flow with
  | None -> None
  | Some id ->
    let pcb = t.slots.(id) in
    t.slots.(id) <- None;
    Flow_table.remove t.ids flow;
    t.free <- id :: t.free;
    t.population <- t.population - 1;
    Lookup_stats.note_remove t.stats;
    pcb

let lookup t ?kind flow =
  (* The ID travels in the packet header; translating flow -> ID here
     stands in for reading those header bits and is not charged. *)
  match Flow_table.find_opt t.ids flow with
  | Some id -> lookup_by_id t ?kind id
  | None ->
    Lookup_stats.begin_lookup t.stats;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match Flow_table.find_opt t.ids flow with
  | Some id -> (
    match t.slots.(id) with Some pcb -> Pcb.note_tx pcb | None -> ())
  | None -> ()

let stats t = t.stats
let length t = t.population

let iter f t =
  Array.iter (function Some pcb -> f pcb | None -> ()) t.slots
