(** Connection-ID direct indexing — the protocol-mechanism
    counterfactual of the paper's Section 3.5.

    TP4, X.25 and XTP negotiate a small integer per connection and
    carry it in every header, so the receiver indexes an array: one
    PCB examined, no search, ever.  The paper's argument is that
    Sequent-style hashing makes this protocol change unnecessary; this
    module exists to quantify the gap (experiment E18).

    Connection IDs are assigned at {!insert} from a free list and
    recycled on {!remove}.  {!lookup} by flow models the header
    carrying the ID: it resolves the ID without charge (in the real
    protocol the bits are in the packet) and charges exactly the one
    direct array access. *)

type 'a t

val name : string

val create : ?capacity:int -> unit -> 'a t
(** [capacity] bounds the ID space (default 65536, a 16-bit ID field).
    @raise Invalid_argument if [capacity <= 0]. *)

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present.
    @raise Failure if the ID space is exhausted. *)

val connection_id : 'a t -> Packet.Flow.t -> int option
(** The negotiated ID for a flow, as the peer would learn it during
    connection setup. *)

val lookup_by_id : 'a t -> ?kind:Types.packet_kind -> int -> 'a Pcb.t option
(** The real protocol's receive path: one examination. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit
