include Hashtbl.Make (struct
  type t = Packet.Flow.t

  let equal = Packet.Flow.equal
  let hash flow = Hashtbl.hash (Packet.Flow.to_key_bytes flow)
end)
