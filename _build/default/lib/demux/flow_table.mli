(** Hashtable keyed by flows — internal bookkeeping substrate.

    The list-based algorithms need O(1) access to their own nodes on
    the {e unmetered} maintenance paths (duplicate detection on
    insert, removal on connection close, transmit-side bookkeeping
    where the real stack already holds the PCB in hand).  This index
    is never consulted on the metered receive path. *)

include Hashtbl.S with type key = Packet.Flow.t
