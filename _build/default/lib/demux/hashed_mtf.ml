type 'a t = {
  buckets : 'a Chain.t array;
  hasher : Hashing.Hashers.t;
  index : 'a Chain.node Flow_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
}

let name = "hashed-mtf"

let create ?(chains = Sequent.default_chains)
    ?(hasher = Hashing.Hashers.multiplicative) () =
  if chains <= 0 then invalid_arg "Hashed_mtf.create: chains <= 0";
  { buckets = Array.init chains (fun _ -> Chain.create ()); hasher;
    index = Flow_table.create 64; stats = Lookup_stats.create ();
    next_id = 0 }

let chains t = Array.length t.buckets

let bucket_of_flow t flow =
  t.buckets.(Hashing.Hashers.bucket t.hasher ~buckets:(Array.length t.buckets)
                (Packet.Flow.to_key_bytes flow))

let insert t flow data =
  if Flow_table.mem t.index flow then
    invalid_arg "Hashed_mtf.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let node = Chain.push_front (bucket_of_flow t flow) pcb in
  Flow_table.replace t.index flow node;
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  match Flow_table.find_opt t.index flow with
  | None -> None
  | Some node ->
    Chain.remove (bucket_of_flow t flow) node;
    Flow_table.remove t.index flow;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  let chain = bucket_of_flow t flow in
  match Chain.scan chain ~stats:t.stats flow with
  | Some node ->
    Chain.move_to_front chain node;
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
    Some pcb
  | None ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match Flow_table.find_opt t.index flow with
  | Some node -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Flow_table.length t.index
let iter f t = Array.iter (fun chain -> Chain.iter f chain) t.buckets
