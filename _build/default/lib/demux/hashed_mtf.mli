(** Hash chains with move-to-front inside each chain — the combination
    the paper's Section 3.5 weighs and rejects: its best case is a
    factor-of-two win over plain chains, while merely increasing [H]
    from 19 to 100 wins a factor of five.  Implemented so that trade
    can be measured (experiment E17). *)

type 'a t

val name : string

val create : ?chains:int -> ?hasher:Hashing.Hashers.t -> unit -> 'a t
(** Defaults match {!Sequent.create}.
    @raise Invalid_argument if [chains <= 0]. *)

val chains : 'a t -> int
val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit
