type 'a t = {
  chain : 'a Chain.t;
  index : 'a Chain.node Flow_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
}

let name = "linear"

let create () =
  { chain = Chain.create (); index = Flow_table.create 64;
    stats = Lookup_stats.create (); next_id = 0 }

let insert t flow data =
  if Flow_table.mem t.index flow then
    invalid_arg "Linear.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let node = Chain.push_front t.chain pcb in
  Flow_table.replace t.index flow node;
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  match Flow_table.find_opt t.index flow with
  | None -> None
  | Some node ->
    Chain.remove t.chain node;
    Flow_table.remove t.index flow;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  match Chain.scan t.chain ~stats:t.stats flow with
  | Some node ->
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
    Some pcb
  | None ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match Flow_table.find_opt t.index flow with
  | Some node -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Chain.length t.chain
let iter f t = Chain.iter f t.chain
