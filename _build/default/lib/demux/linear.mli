(** Uncached linear PCB list — the original BSD scheme before the
    4.3-Reno one-entry cache, kept as the degenerate baseline.  Every
    lookup scans from the head; new PCBs are inserted at the head. *)

type 'a t

val name : string
val create : unit -> 'a t

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit
