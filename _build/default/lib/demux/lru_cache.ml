(* The cache is itself a small Chain in LRU order (front = most
   recent); probing it scans front-to-back, charging per comparison —
   exactly what a K-entry cache costs in comparisons. *)

type 'a t = {
  list : 'a Chain.t;                       (* the full PCB list *)
  cache : 'a Chain.t;                      (* duplicate PCB refs in LRU order *)
  cache_nodes : 'a Chain.node Flow_table.t;(* flow -> cache node *)
  index : 'a Chain.node Flow_table.t;      (* flow -> list node *)
  capacity : int;
  stats : Lookup_stats.t;
  mutable next_id : int;
}

let name = "lru-cache"

let create ?(entries = 8) () =
  if entries <= 0 then invalid_arg "Lru_cache.create: entries <= 0";
  { list = Chain.create (); cache = Chain.create ();
    cache_nodes = Flow_table.create 16; index = Flow_table.create 64;
    capacity = entries; stats = Lookup_stats.create (); next_id = 0 }

let entries t = t.capacity

let insert t flow data =
  if Flow_table.mem t.index flow then
    invalid_arg "Lru_cache.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let node = Chain.push_front t.list pcb in
  Flow_table.replace t.index flow node;
  Lookup_stats.note_insert t.stats;
  pcb

let cache_evict t flow =
  match Flow_table.find_opt t.cache_nodes flow with
  | Some node ->
    Chain.remove t.cache node;
    Flow_table.remove t.cache_nodes flow
  | None -> ()

let cache_admit t pcb =
  cache_evict t pcb.Pcb.flow;
  (* Evict from the LRU tail until there is room. *)
  while Chain.length t.cache >= t.capacity do
    match Chain.tail_pcb t.cache with
    | Some tail -> cache_evict t tail.Pcb.flow
    | None -> assert false
  done;
  let node = Chain.push_front t.cache pcb in
  Flow_table.replace t.cache_nodes pcb.Pcb.flow node

let remove t flow =
  match Flow_table.find_opt t.index flow with
  | None -> None
  | Some node ->
    cache_evict t flow;
    Chain.remove t.list node;
    Flow_table.remove t.index flow;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  match Chain.scan t.cache ~stats:t.stats flow with
  | Some cache_node ->
    Chain.move_to_front t.cache cache_node;
    let pcb = Chain.pcb cache_node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:true ~found:true;
    Some pcb
  | None -> (
    match Chain.scan t.list ~stats:t.stats flow with
    | Some node ->
      let pcb = Chain.pcb node in
      cache_admit t pcb;
      Pcb.note_rx pcb;
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
      Some pcb
    | None ->
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
      None)

let note_send t flow =
  match Flow_table.find_opt t.index flow with
  | Some node -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Chain.length t.list
let iter f t = Chain.iter f t.list
