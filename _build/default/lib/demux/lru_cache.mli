(** A K-entry LRU cache in front of the linear list — the "what if
    BSD's cache were bigger?" ablation (experiment E24).

    Transaction entries almost never hit a K-entry cache (hit rate
    ~K/N after a 10 s think time), but response acknowledgements hit
    whenever fewer than K other connections' packets intervened during
    the response window — the same mechanism as the send/receive
    cache, K deep.  So a moderately large cache does help (unlike
    BSD's single entry), yet the miss penalty keeps the overall cost
    an order of magnitude above hashed chains.
    {!Analysis.Lru_model.cost} gives the matching analytic model;
    experiment E24 measures both. *)

type 'a t

val name : string

val create : ?entries:int -> unit -> 'a t
(** [entries] is the cache capacity K (default 8; K = 1 reproduces
    BSD's behaviour with an LRU-maintained slot).
    @raise Invalid_argument if [entries <= 0]. *)

val entries : 'a t -> int

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit
