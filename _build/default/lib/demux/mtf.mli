(** Crowcroft's move-to-front list (paper Section 3.2).

    A plain linear list; whenever a PCB is found it is moved to the
    head.  There is no separate cache — after a hit the found PCB
    {e is} the head, so a cache would always duplicate position 1.
    Under TPC/A this trades a slight penalty on transaction entry
    (think times are long, so almost everyone else gets in front of
    you) for a large win on the response acknowledgement (only
    packets within the response window precede yours), netting 549-904
    PCBs against BSD's 1001 (Equation 6). *)

type 'a t

val name : string
val create : unit -> 'a t

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit

val front_flow : 'a t -> Packet.Flow.t option
(** Flow currently at the head, for tests. *)
