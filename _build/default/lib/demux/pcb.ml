type 'a t = {
  id : int;
  flow : Packet.Flow.t;
  data : 'a;
  mutable rx_packets : int;
  mutable tx_packets : int;
}

let make ~id ~flow data = { id; flow; data; rx_packets = 0; tx_packets = 0 }
let note_rx t = t.rx_packets <- t.rx_packets + 1
let note_tx t = t.tx_packets <- t.tx_packets + 1
let matches t flow = Packet.Flow.equal t.flow flow

let pp ppf t =
  Format.fprintf ppf "pcb#%d %a rx=%d tx=%d" t.id Packet.Flow.pp t.flow
    t.rx_packets t.tx_packets
