(** Protocol control blocks.

    A PCB holds "state information for one endpoint of a given
    connection" (paper Section 1).  The lookup algorithms never
    inspect the carried state — they only compare flows — so the state
    is a type parameter and higher layers (e.g. {!Tcpcore}) attach
    whatever they need. *)

type 'a t = private {
  id : int;            (** Unique per-demultiplexer instance. *)
  flow : Packet.Flow.t;
  data : 'a;
  mutable rx_packets : int;  (** Segments delivered to this PCB. *)
  mutable tx_packets : int;  (** Segments sent on this PCB. *)
}

val make : id:int -> flow:Packet.Flow.t -> 'a -> 'a t
val note_rx : 'a t -> unit
val note_tx : 'a t -> unit

val matches : 'a t -> Packet.Flow.t -> bool
(** Full 96-bit comparison — the per-PCB work every scan performs. *)

val pp : Format.formatter -> 'a t -> unit
