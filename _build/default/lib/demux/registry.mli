(** Uniform access to every lookup algorithm.

    The simulator, benchmarks and CLI treat algorithms
    interchangeably; this module erases each implementation's concrete
    state behind a record of operations. *)

type spec =
  | Linear
  | Bsd
  | Mtf
  | Sr_cache
  | Sequent of { chains : int; hasher : Hashing.Hashers.t }
  | Hashed_mtf of { chains : int; hasher : Hashing.Hashers.t }
  | Conn_id of { capacity : int }
  | Resizing_hash
  | Splay
  | Lru_cache of { entries : int }
      (** Which algorithm, with its configuration. *)

val default_specs : spec list
(** The paper's four algorithms in presentation order: BSD, MTF,
    SR-cache, Sequent (19 chains, multiplicative hash). *)

val spec_name : spec -> string
(** Short stable name, e.g. ["sequent-19"]. *)

val spec_of_string : string -> (spec, string) result
(** Parse names like ["bsd"], ["mtf"], ["sequent-19"], ["sequent-100"],
    ["hashed-mtf-19"], ["conn-id"], ["resizing-hash"], ["splay"], ["lru-cache-K"],
    ["linear"], ["sr-cache"]. *)

type 'a t = {
  name : string;
  insert : Packet.Flow.t -> 'a -> 'a Pcb.t;
  remove : Packet.Flow.t -> 'a Pcb.t option;
  lookup : ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option;
  note_send : Packet.Flow.t -> unit;
  stats : Lookup_stats.t;
  length : unit -> int;
  iter : ('a Pcb.t -> unit) -> unit;
}
(** One instantiated demultiplexer. *)

val create : spec -> 'a t
(** Instantiate an algorithm.
    @raise Invalid_argument on a nonsensical configuration (zero
    chains etc.). *)
