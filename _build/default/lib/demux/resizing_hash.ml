type 'a t = {
  mutable chains : 'a Chain.t array;
  hasher : Hashing.Hashers.t;
  index : 'a Chain.node Flow_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
  mutable population : int;
}

let name = "resizing-hash"

let create ?(initial_buckets = 16) ?(hasher = Hashing.Hashers.multiplicative)
    () =
  if initial_buckets <= 0 then
    invalid_arg "Resizing_hash.create: initial_buckets <= 0";
  { chains = Array.init initial_buckets (fun _ -> Chain.create ()); hasher;
    index = Flow_table.create 64; stats = Lookup_stats.create ();
    next_id = 0; population = 0 }

let buckets t = Array.length t.chains

let chain_of_flow t flow =
  t.chains.(Hashing.Hashers.bucket t.hasher ~buckets:(Array.length t.chains)
               (Packet.Flow.to_key_bytes flow))

let grow t =
  let old = t.chains in
  t.chains <- Array.init (2 * Array.length old) (fun _ -> Chain.create ());
  Array.iter
    (fun chain ->
      Chain.iter
        (fun pcb ->
          let node = Chain.push_front (chain_of_flow t pcb.Pcb.flow) pcb in
          Flow_table.replace t.index pcb.Pcb.flow node)
        chain)
    old

let insert t flow data =
  if Flow_table.mem t.index flow then
    invalid_arg "Resizing_hash.insert: duplicate flow";
  if t.population >= Array.length t.chains then grow t;
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let node = Chain.push_front (chain_of_flow t flow) pcb in
  Flow_table.replace t.index flow node;
  t.population <- t.population + 1;
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  match Flow_table.find_opt t.index flow with
  | None -> None
  | Some node ->
    Chain.remove (chain_of_flow t flow) node;
    Flow_table.remove t.index flow;
    t.population <- t.population - 1;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  match Chain.scan (chain_of_flow t flow) ~stats:t.stats flow with
  | Some node ->
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
    Some pcb
  | None ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match Flow_table.find_opt t.index flow with
  | Some node -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = t.population
let iter f t = Array.iter (fun chain -> Chain.iter f chain) t.chains
