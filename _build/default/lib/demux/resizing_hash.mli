(** A modern resizing hash table, no per-chain cache — what production
    stacks converged on after this paper's era.  Doubles the bucket
    array when the load factor crosses 1, so expected lookup cost
    stays O(1) regardless of connection count.  Included as the
    "future work validated by history" baseline. *)

type 'a t

val name : string

val create : ?initial_buckets:int -> ?hasher:Hashing.Hashers.t -> unit -> 'a t
(** Defaults: 16 buckets, multiplicative hashing.
    @raise Invalid_argument if [initial_buckets <= 0]. *)

val buckets : 'a t -> int
(** Current bucket-array size (changes as the table grows). *)

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit
