type 'a bucket = {
  chain : 'a Chain.t;
  mutable cache : 'a Chain.node option;
}

type 'a t = {
  buckets : 'a bucket array;
  hasher : Hashing.Hashers.t;
  index : 'a Chain.node Flow_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
}

let name = "sequent"
let default_chains = 19

let create ?(chains = default_chains) ?(hasher = Hashing.Hashers.multiplicative)
    () =
  if chains <= 0 then invalid_arg "Sequent.create: chains <= 0";
  { buckets =
      Array.init chains (fun _ -> { chain = Chain.create (); cache = None });
    hasher; index = Flow_table.create 64; stats = Lookup_stats.create ();
    next_id = 0 }

let chains t = Array.length t.buckets

let bucket_of_flow t flow =
  t.buckets.(Hashing.Hashers.bucket t.hasher ~buckets:(Array.length t.buckets)
                (Packet.Flow.to_key_bytes flow))

let insert t flow data =
  if Flow_table.mem t.index flow then
    invalid_arg "Sequent.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let bucket = bucket_of_flow t flow in
  let node = Chain.push_front bucket.chain pcb in
  Flow_table.replace t.index flow node;
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  match Flow_table.find_opt t.index flow with
  | None -> None
  | Some node ->
    let bucket = bucket_of_flow t flow in
    (match bucket.cache with
    | Some cached when cached == node -> bucket.cache <- None
    | Some _ | None -> ());
    Chain.remove bucket.chain node;
    Flow_table.remove t.index flow;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let cache_probe t bucket flow =
  match bucket.cache with
  | None -> None
  | Some node ->
    Lookup_stats.examine t.stats ();
    if Pcb.matches (Chain.pcb node) flow then Some node else None

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  let bucket = bucket_of_flow t flow in
  match cache_probe t bucket flow with
  | Some node ->
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:true ~found:true;
    Some pcb
  | None -> (
    match Chain.scan bucket.chain ~stats:t.stats flow with
    | Some node ->
      bucket.cache <- Some node;
      let pcb = Chain.pcb node in
      Pcb.note_rx pcb;
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
      Some pcb
    | None ->
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
      None)

let note_send t flow =
  match Flow_table.find_opt t.index flow with
  | Some node -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Flow_table.length t.index

let iter f t =
  Array.iter (fun bucket -> Chain.iter f bucket.chain) t.buckets

let chain_lengths t =
  Array.map (fun bucket -> Chain.length bucket.chain) t.buckets
