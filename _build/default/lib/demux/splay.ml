type 'a tree = Leaf | Node of 'a tree * 'a Pcb.t * 'a tree

type 'a t = {
  mutable root : 'a tree;
  mutable population : int;
  stats : Lookup_stats.t;
  mutable next_id : int;
  mutable charging : bool;
}

let name = "splay"

let create () =
  { root = Leaf; population = 0; stats = Lookup_stats.create (); next_id = 0;
    charging = false }

let compare_charged t key pcb =
  if t.charging then Lookup_stats.examine t.stats ();
  Packet.Flow.compare key pcb.Pcb.flow

(* Top-down-style recursive splay: brings the searched key (or the
   last node on its search path) to the root, applying zig-zig and
   zig-zag rotations two levels at a time. *)
let rec splay t key tree =
  match tree with
  | Leaf -> Leaf
  | Node (l, v, r) as node -> (
    let c = compare_charged t key v in
    if c = 0 then node
    else if c < 0 then
      match l with
      | Leaf -> node
      | Node (ll, lv, lr) -> (
        let c2 = compare_charged t key lv in
        if c2 = 0 then Node (ll, lv, Node (lr, v, r))
        else if c2 < 0 then
          match splay t key ll with
          | Leaf -> Node (ll, lv, Node (lr, v, r))
          | Node (sl, sv, sr) ->
            (* zig-zig *)
            Node (sl, sv, Node (sr, lv, Node (lr, v, r)))
        else
          match splay t key lr with
          | Leaf -> Node (ll, lv, Node (lr, v, r))
          | Node (sl, sv, sr) ->
            (* zig-zag *)
            Node (Node (ll, lv, sl), sv, Node (sr, v, r)))
    else
      match r with
      | Leaf -> node
      | Node (rl, rv, rr) -> (
        let c2 = compare_charged t key rv in
        if c2 = 0 then Node (Node (l, v, rl), rv, rr)
        else if c2 > 0 then
          match splay t key rr with
          | Leaf -> Node (Node (l, v, rl), rv, rr)
          | Node (sl, sv, sr) ->
            (* zig-zig *)
            Node (Node (Node (l, v, rl), rv, sl), sv, sr)
        else
          match splay t key rl with
          | Leaf -> Node (Node (l, v, rl), rv, rr)
          | Node (sl, sv, sr) ->
            (* zig-zag *)
            Node (Node (l, v, sl), sv, Node (sr, rv, rr))))

let splay_uncharged t key tree =
  t.charging <- false;
  splay t key tree

let splay_charged t key tree =
  t.charging <- true;
  let result = splay t key tree in
  t.charging <- false;
  result

let insert t flow data =
  let root = splay_uncharged t flow t.root in
  (match root with
  | Node (_, v, _) when Packet.Flow.equal v.Pcb.flow flow ->
    t.root <- root;
    invalid_arg "Splay.insert: duplicate flow"
  | Leaf | Node _ -> ());
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  (* Split the splayed tree around the new key. *)
  let new_root =
    match root with
    | Leaf -> Node (Leaf, pcb, Leaf)
    | Node (l, v, r) ->
      if Packet.Flow.compare flow v.Pcb.flow < 0 then
        Node (l, pcb, Node (Leaf, v, r))
      else Node (Node (l, v, Leaf), pcb, r)
  in
  t.root <- new_root;
  t.population <- t.population + 1;
  Lookup_stats.note_insert t.stats;
  pcb

let join t left right =
  (* All keys in [left] precede all keys in [right]: splay left's
     maximum to its root (it then has no right child) and attach. *)
  match left with
  | Leaf -> right
  | Node (_, v, _) -> (
    (* Splaying for a key >= the maximum brings the maximum up; use
       the right spine's last pcb's own flow. *)
    let rec max_pcb = function
      | Node (_, pcb, Leaf) -> pcb
      | Node (_, _, r) -> max_pcb r
      | Leaf -> v
    in
    match splay_uncharged t (max_pcb left).Pcb.flow left with
    | Node (l, pcb, Leaf) -> Node (l, pcb, right)
    | Node (_, _, Node _) | Leaf -> assert false)

let remove t flow =
  match splay_uncharged t flow t.root with
  | Leaf -> None
  | Node (l, v, r) as root ->
    if Packet.Flow.equal v.Pcb.flow flow then begin
      t.root <- join t l r;
      t.population <- t.population - 1;
      Lookup_stats.note_remove t.stats;
      Some v
    end
    else begin
      t.root <- root;
      None
    end

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  match splay_charged t flow t.root with
  | Leaf ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None
  | Node (_, v, _) as root ->
    t.root <- root;
    if Packet.Flow.equal v.Pcb.flow flow then begin
      Pcb.note_rx v;
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
      Some v
    end
    else begin
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
      None
    end

let note_send t flow =
  let root = splay_uncharged t flow t.root in
  t.root <- root;
  match root with
  | Node (_, v, _) when Packet.Flow.equal v.Pcb.flow flow -> Pcb.note_tx v
  | Leaf | Node _ -> ()

let stats t = t.stats
let length t = t.population

let iter f t =
  let rec walk = function
    | Leaf -> ()
    | Node (l, v, r) ->
      walk l;
      f v;
      walk r
  in
  walk t.root

let depth t =
  let rec height = function
    | Leaf -> 0
    | Node (l, _, r) -> 1 + max (height l) (height r)
  in
  height t.root
