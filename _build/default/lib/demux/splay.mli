(** Splay-tree demultiplexer — a beyond-the-paper extension.

    Move-to-front is the list instance of self-adjustment; the splay
    tree (Sleator & Tarjan 1985) is the tree instance.  Where MTF
    still pays O(N) for a cold key, splaying pays O(log N) amortised
    while keeping recently used connections near the root, so it
    interpolates between the paper's cached lists and its hashed
    chains: no tuning knob (unlike H), logarithmic worst case, strong
    locality adaptation.  Included to measure that trade (DESIGN.md
    section 6).

    Cost accounting: one PCB examined per tree node whose key is
    compared during the access, matching the paper's discipline. *)

type 'a t

val name : string
val create : unit -> 'a t

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit

val depth : 'a t -> int
(** Current tree height (0 when empty), for balance diagnostics. *)
