type 'a t = {
  chain : 'a Chain.t;
  index : 'a Chain.node Flow_table.t;
  stats : Lookup_stats.t;
  mutable received : 'a Chain.node option;
  mutable sent : 'a Chain.node option;
  mutable next_id : int;
}

let name = "sr-cache"

let create () =
  { chain = Chain.create (); index = Flow_table.create 64;
    stats = Lookup_stats.create (); received = None; sent = None;
    next_id = 0 }

let insert t flow data =
  if Flow_table.mem t.index flow then
    invalid_arg "Sr_cache.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let node = Chain.push_front t.chain pcb in
  Flow_table.replace t.index flow node;
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  match Flow_table.find_opt t.index flow with
  | None -> None
  | Some node ->
    (match t.received with
    | Some cached when cached == node -> t.received <- None
    | Some _ | None -> ());
    (match t.sent with
    | Some cached when cached == node -> t.sent <- None
    | Some _ | None -> ());
    Chain.remove t.chain node;
    Flow_table.remove t.index flow;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let probe t slot flow =
  match slot with
  | None -> None
  | Some node ->
    Lookup_stats.examine t.stats ();
    if Pcb.matches (Chain.pcb node) flow then Some node else None

let lookup t ?(kind = Types.Data) flow =
  Lookup_stats.begin_lookup t.stats;
  let first, second =
    match kind with
    | Types.Data -> (t.received, t.sent)
    | Types.Pure_ack -> (t.sent, t.received)
  in
  let finish ~hit_cache node =
    t.received <- Some node;
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache ~found:true;
    Some pcb
  in
  match probe t first flow with
  | Some node -> finish ~hit_cache:true node
  | None -> (
    match probe t second flow with
    | Some node -> finish ~hit_cache:true node
    | None -> (
      match Chain.scan t.chain ~stats:t.stats flow with
      | Some node -> finish ~hit_cache:false node
      | None ->
        Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
        None))

let note_send t flow =
  match Flow_table.find_opt t.index flow with
  | Some node ->
    t.sent <- Some node;
    Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Chain.length t.chain
let iter f t = Chain.iter f t.chain

let cached_received_flow t =
  Option.map (fun node -> (Chain.pcb node).Pcb.flow) t.received

let cached_sent_flow t =
  Option.map (fun node -> (Chain.pcb node).Pcb.flow) t.sent
