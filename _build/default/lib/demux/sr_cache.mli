(** Partridge and Pink's last-sent/last-received cache (paper
    Section 3.3).

    BSD's list is augmented with {e two} one-entry caches: the PCB of
    the last packet received and of the last packet sent.  Data
    segments probe the receive-side cache first, pure acknowledgements
    the send-side first (paper footnote 5).  A hit costs 1-2
    examinations; a full miss costs both probes plus the list scan,
    the paper's [(N+5)/2].  The scheme leans on packet trains, so it
    shines for few users and converges to BSD as N grows
    (Equation 17). *)

type 'a t

val name : string
val create : unit -> 'a t

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
(** Removing a cached PCB invalidates that cache side. *)

val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option
(** Default [kind] is [Data].  A successful lookup installs the PCB in
    the receive-side cache. *)

val note_send : 'a t -> Packet.Flow.t -> unit
(** Transmit-side bookkeeping: installs the flow's PCB in the
    send-side cache.  Uncharged — the sender already holds its PCB. *)

val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit

val cached_received_flow : 'a t -> Packet.Flow.t option
val cached_sent_flow : 'a t -> Packet.Flow.t option
