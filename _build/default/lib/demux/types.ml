type packet_kind = Data | Pure_ack

let pp_packet_kind ppf = function
  | Data -> Format.pp_print_string ppf "data"
  | Pure_ack -> Format.pp_print_string ppf "ack"
