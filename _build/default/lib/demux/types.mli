(** Shared types for the lookup algorithms. *)

type packet_kind = Data | Pure_ack
(** What kind of segment a lookup is for.  Only the Partridge/Pink
    send/receive cache distinguishes them: its receive-side cache is
    probed first for data segments and its send-side cache first for
    pure acknowledgements (paper footnote 5). *)

val pp_packet_kind : Format.formatter -> packet_kind -> unit
