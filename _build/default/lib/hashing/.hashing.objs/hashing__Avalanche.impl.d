lib/hashing/avalanche.ml: Array Bytes Char Float Format Hashers Int64
