lib/hashing/avalanche.mli: Format Hashers
