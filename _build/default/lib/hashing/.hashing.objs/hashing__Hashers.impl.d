lib/hashing/hashers.ml: Array Bytes Char Fun Int32 Int64 Lazy List Packet Printf String
