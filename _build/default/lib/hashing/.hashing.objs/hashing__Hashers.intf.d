lib/hashing/hashers.mli: Packet
