lib/hashing/quality.ml: Array Float Format Hashers List Packet
