lib/hashing/quality.mli: Format Hashers Packet
