type report = {
  output_bits : int;
  trials : int;
  mean_flip_rate : float;
  worst_bit_rate : float;
}

(* Small deterministic generator; keeping this library free of a
   numerics dependency. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount bits =
  let count = ref 0 in
  let v = ref bits in
  while !v <> 0 do
    count := !count + (!v land 1);
    v := !v lsr 1
  done;
  !count

let measure ?(keys = 64) ?(key_length = 12) ?(output_bits = 16) hasher =
  if keys <= 0 || key_length <= 0 || output_bits <= 0 || output_bits > 30 then
    invalid_arg "Avalanche.measure: bad sizes";
  let state = ref 0x1234_5678L in
  let mask = (1 lsl output_bits) - 1 in
  let input_bits = key_length * 8 in
  (* flip counts per input-bit position, accumulated over keys *)
  let per_input_bit = Array.make input_bits 0 in
  let total_flips = ref 0 in
  for _ = 1 to keys do
    let key =
      Bytes.init key_length (fun _ ->
          Char.chr (Int64.to_int (Int64.logand (splitmix state) 0xFFL)))
    in
    let base = Hashers.hash hasher key land mask in
    for bit = 0 to input_bits - 1 do
      let byte_index = bit / 8 and bit_index = bit mod 8 in
      let flipped = Bytes.copy key in
      Bytes.set_uint8 flipped byte_index
        (Bytes.get_uint8 flipped byte_index lxor (1 lsl bit_index));
      let delta = Hashers.hash hasher flipped land mask lxor base in
      let flips = popcount delta in
      per_input_bit.(bit) <- per_input_bit.(bit) + flips;
      total_flips := !total_flips + flips
    done
  done;
  let trials = keys * input_bits in
  let denominator = float_of_int (keys * output_bits) in
  let worst =
    Array.fold_left
      (fun acc flips -> Float.min acc (float_of_int flips /. denominator))
      Float.infinity per_input_bit
  in
  { output_bits; trials;
    mean_flip_rate =
      float_of_int !total_flips /. float_of_int (trials * output_bits);
    worst_bit_rate = worst }

let pp_report ppf r =
  Format.fprintf ppf "mean flip rate %.3f (ideal 0.5), worst input bit %.3f"
    r.mean_flip_rate r.worst_bit_rate
