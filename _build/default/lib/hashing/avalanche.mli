(** Avalanche analysis: how well single-bit input changes diffuse into
    output bits.

    A good mixing hash flips each output bit with probability ~1/2
    when any single input bit flips; folding hashes flip exactly the
    bits the input bit maps onto.  This is the diagnostic behind the
    structured-key collapses the test suite pins (xor-fold and the
    multiplicative pre-fold on IPv6 keys): poor avalanche means
    correlated key bits can cancel. *)

type report = {
  output_bits : int;      (** Width examined (low bits of the hash). *)
  trials : int;           (** Input-bit flips performed. *)
  mean_flip_rate : float; (** Mean fraction of output bits flipped;
                              ideal 0.5. *)
  worst_bit_rate : float; (** The input bit with the least effect:
                              its output-flip fraction (0 = some input
                              bit never changes the output). *)
}

val measure :
  ?keys:int -> ?key_length:int -> ?output_bits:int -> Hashers.t -> report
(** Flip every bit of [keys] random keys of [key_length] bytes
    (defaults: 64 keys of 12 bytes, 16 output bits) and summarise.
    Deterministic (fixed internal seed).
    @raise Invalid_argument on non-positive sizes. *)

val pp_report : Format.formatter -> report -> unit
