type report = {
  buckets : int;
  keys : int;
  max_load : int;
  min_load : int;
  mean_load : float;
  coefficient_of_variation : float;
  chi_square : float;
  expected_search_cost : float;
}

let evaluate ~buckets assignments =
  if buckets <= 0 then invalid_arg "Quality.evaluate: buckets <= 0";
  let loads = Array.make buckets 0 in
  List.iter
    (fun b ->
      if b < 0 || b >= buckets then
        invalid_arg "Quality.evaluate: bucket index out of range";
      loads.(b) <- loads.(b) + 1)
    assignments;
  let keys = List.length assignments in
  let mean_load = float_of_int keys /. float_of_int buckets in
  let max_load = Array.fold_left max 0 loads in
  let min_load = Array.fold_left min max_int loads in
  let sum_sq_dev = ref 0.0 in
  Array.iter
    (fun l ->
      let d = float_of_int l -. mean_load in
      sum_sq_dev := !sum_sq_dev +. (d *. d))
    loads;
  let variance = !sum_sq_dev /. float_of_int buckets in
  let coefficient_of_variation =
    if mean_load = 0.0 then 0.0 else Float.sqrt variance /. mean_load
  in
  let chi_square =
    if mean_load = 0.0 then 0.0 else !sum_sq_dev /. mean_load
  in
  let expected_search_cost =
    if keys = 0 then 0.0
    else
      Array.fold_left
        (fun acc l ->
          let lf = float_of_int l in
          acc +. (lf /. float_of_int keys *. ((lf +. 1.0) /. 2.0)))
        0.0 loads
  in
  { buckets; keys; max_load; min_load; mean_load; coefficient_of_variation;
    chi_square; expected_search_cost }

let evaluate_hash hasher ~buckets flows =
  let assignments =
    List.map
      (fun flow -> Hashers.bucket hasher ~buckets (Packet.Flow.to_key_bytes flow))
      flows
  in
  evaluate ~buckets assignments

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>buckets=%d keys=%d@,load: mean=%.2f min=%d max=%d cv=%.3f@,\
     chi2=%.1f (df=%d)@,expected search cost=%.2f@]"
    r.buckets r.keys r.mean_load r.min_load r.max_load
    r.coefficient_of_variation r.chi_square (r.buckets - 1)
    r.expected_search_cost
