(** Chain-balance metrics for hash-function evaluation.

    The Sequent algorithm's cost scales with the length of the chain a
    packet hashes to, so a skewed hash silently erodes the paper's
    [N/2H] result.  These metrics quantify skew the way Jain's report
    did: occupancy counts, chi-square against uniform, and the
    worst-case chain. *)

type report = {
  buckets : int;
  keys : int;
  max_load : int;
  min_load : int;
  mean_load : float;
  coefficient_of_variation : float;
    (** stddev of loads / mean load; 0 = perfectly even. *)
  chi_square : float;
    (** Pearson statistic vs the uniform expectation; for a good hash
        this is near the degrees of freedom [buckets - 1]. *)
  expected_search_cost : float;
    (** Expected PCBs examined for a uniformly chosen {e stored} key
        scanning its own chain to the midpoint:
        [sum_b load_b/keys * (load_b + 1)/2].  Equals the paper's
        [(N/H + 1)/2] only when chains are even. *)
}

val evaluate : buckets:int -> int list -> report
(** [evaluate ~buckets assignments] summarises a list of bucket
    indices (one per key).
    @raise Invalid_argument if [buckets <= 0] or an index is out of
    range. *)

val evaluate_hash :
  Hashers.t -> buckets:int -> Packet.Flow.t list -> report
(** Hash every flow and evaluate the resulting assignment. *)

val pp_report : Format.formatter -> report -> unit
