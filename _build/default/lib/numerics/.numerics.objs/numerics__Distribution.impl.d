lib/numerics/distribution.ml: Float Printf Rng
