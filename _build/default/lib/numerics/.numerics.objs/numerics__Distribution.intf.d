lib/numerics/distribution.mli: Rng
