lib/numerics/integrate.ml: Array Float Kahan List Printf
