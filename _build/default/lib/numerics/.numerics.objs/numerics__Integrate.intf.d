lib/numerics/integrate.mli:
