lib/numerics/kahan.ml: Array Float List
