lib/numerics/kahan.mli:
