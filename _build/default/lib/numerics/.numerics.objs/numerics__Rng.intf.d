lib/numerics/rng.mli:
