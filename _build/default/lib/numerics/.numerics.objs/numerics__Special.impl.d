lib/numerics/special.ml: Array Float Kahan
