lib/numerics/special.mli:
