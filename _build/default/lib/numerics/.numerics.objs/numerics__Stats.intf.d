lib/numerics/stats.mli:
