type spec =
  | Exponential of { rate : float }
  | Truncated_exponential of { rate : float; cutoff : float }
  | Uniform of { min : float; max : float }
  | Deterministic of float
  | Geometric of { p : float }

type t = spec

let exponential ~rate =
  if rate <= 0.0 then invalid_arg "Distribution.exponential: rate <= 0";
  Exponential { rate }

let truncated_exponential ~rate ~cutoff =
  if rate <= 0.0 then
    invalid_arg "Distribution.truncated_exponential: rate <= 0";
  if cutoff <= 0.0 then
    invalid_arg "Distribution.truncated_exponential: cutoff <= 0";
  Truncated_exponential { rate; cutoff }

let uniform ~min ~max =
  if min >= max then invalid_arg "Distribution.uniform: min >= max";
  Uniform { min; max }

let deterministic v = Deterministic v

let geometric ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Distribution.geometric: p not in (0,1]";
  Geometric { p }

let sample t rng =
  match t with
  | Exponential { rate } ->
    (* Inverse CDF; 1 - u rather than u so the argument is never 0. *)
    -.Float.log (1.0 -. Rng.float rng) /. rate
  | Truncated_exponential { rate; cutoff } ->
    (* Inverse CDF of the conditional law X | X <= cutoff. *)
    let mass = -.Float.expm1 (-.rate *. cutoff) in
    -.Float.log1p (-.(Rng.float rng *. mass)) /. rate
  | Uniform { min; max } -> Rng.float_range rng ~min ~max
  | Deterministic v -> v
  | Geometric { p } ->
    if p = 1.0 then 0.0
    else
      let u = 1.0 -. Rng.float rng in
      Float.of_int (int_of_float (Float.log u /. Float.log1p (-.p)))

let mean = function
  | Exponential { rate } -> 1.0 /. rate
  | Truncated_exponential { rate; cutoff } ->
    (* E[X | X <= c] = 1/rate - c * e^{-rate c} / (1 - e^{-rate c}) *)
    let ec = Float.exp (-.rate *. cutoff) in
    (1.0 /. rate) -. (cutoff *. ec /. (1.0 -. ec))
  | Uniform { min; max } -> 0.5 *. (min +. max)
  | Deterministic v -> v
  | Geometric { p } -> (1.0 -. p) /. p

let pdf t x =
  match t with
  | Exponential { rate } ->
    if x < 0.0 then 0.0 else rate *. Float.exp (-.rate *. x)
  | Truncated_exponential { rate; cutoff } ->
    if x < 0.0 || x > cutoff then 0.0
    else rate *. Float.exp (-.rate *. x) /. (1.0 -. Float.exp (-.rate *. cutoff))
  | Uniform { min; max } ->
    if x < min || x >= max then 0.0 else 1.0 /. (max -. min)
  | Deterministic v -> if x = v then Float.infinity else 0.0
  | Geometric { p } ->
    let k = int_of_float x in
    if x < 0.0 || Float.of_int k <> x then 0.0
    else p *. ((1.0 -. p) ** Float.of_int k)

let cdf t x =
  match t with
  | Exponential { rate } ->
    if x < 0.0 then 0.0 else -.Float.expm1 (-.rate *. x)
  | Truncated_exponential { rate; cutoff } ->
    if x < 0.0 then 0.0
    else if x >= cutoff then 1.0
    else Float.expm1 (-.rate *. x) /. Float.expm1 (-.rate *. cutoff)
  | Uniform { min; max } ->
    if x < min then 0.0 else if x >= max then 1.0 else (x -. min) /. (max -. min)
  | Deterministic v -> if x >= v then 1.0 else 0.0
  | Geometric { p } ->
    if x < 0.0 then 0.0
    else 1.0 -. ((1.0 -. p) ** Float.of_int (int_of_float x + 1))

let description = function
  | Exponential { rate } -> Printf.sprintf "exp(rate=%g)" rate
  | Truncated_exponential { rate; cutoff } ->
    Printf.sprintf "truncexp(rate=%g, cutoff=%g)" rate cutoff
  | Uniform { min; max } -> Printf.sprintf "uniform[%g, %g)" min max
  | Deterministic v -> Printf.sprintf "const(%g)" v
  | Geometric { p } -> Printf.sprintf "geometric(p=%g)" p
