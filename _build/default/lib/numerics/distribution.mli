(** Probability distributions for workload modelling.

    The TPC/A benchmark (paper Section 2) specifies think times drawn
    from a {e truncated} negative-exponential distribution with mean at
    least 10 s and truncation point at least 10 times the mean.  The
    paper's analysis approximates it by the untruncated exponential;
    the simulator uses the real thing, which is exactly the
    cross-validation the paper performed against production runs. *)

type t
(** A distribution: sampling plus density/cumulative functions. *)

val exponential : rate:float -> t
(** Negative-exponential with the given rate (mean [1/rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val truncated_exponential : rate:float -> cutoff:float -> t
(** Negative-exponential conditioned on being [<= cutoff], sampled by
    inverse CDF (no rejection loop).  TPC/A think time is
    [truncated_exponential ~rate:0.1 ~cutoff:100.0].
    @raise Invalid_argument if [rate <= 0] or [cutoff <= 0]. *)

val uniform : min:float -> max:float -> t
(** Uniform on [[min, max)].
    @raise Invalid_argument if [min >= max]. *)

val deterministic : float -> t
(** Point mass: always returns the given value.  Models the paper's
    central-server polling scenario ("think times ... exactly 10
    seconds always"), the stated worst case for move-to-front. *)

val geometric : p:float -> t
(** Number of Bernoulli(p) failures before the first success, as a
    float — the paper's die-rolling illustration of memorylessness.
    @raise Invalid_argument if [p] is outside (0, 1]. *)

val sample : t -> Rng.t -> float
(** Draw one value. *)

val mean : t -> float
(** Exact (analytic) mean. *)

val pdf : t -> float -> float
(** Probability density (or mass, for {!geometric}) at a point. *)

val cdf : t -> float -> float
(** Cumulative distribution function. *)

val description : t -> string
(** Human-readable summary, e.g. ["exp(rate=0.1)"]. *)
