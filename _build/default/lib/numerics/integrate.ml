let adaptive_simpson ?(tolerance = 1e-10) ?(max_depth = 60) f a b =
  if a = b then 0.0
  else
    (* Standard adaptive Simpson with the Richardson correction: a split
       is accepted when the two half-panels differ from the parent panel
       by at most 15 * eps. *)
    let simpson a fa b fb =
      let c = 0.5 *. (a +. b) in
      let fc = f c in
      (c, fc, (b -. a) /. 6.0 *. (fa +. (4.0 *. fc) +. fb))
    in
    let rec refine a fa b fb c fc whole eps depth =
      let lc, flc, left = simpson a fa c fc in
      let rc, frc, right = simpson c fc b fb in
      let delta = left +. right -. whole in
      if depth >= max_depth || Float.abs delta <= 15.0 *. eps then
        left +. right +. (delta /. 15.0)
      else
        let half = eps /. 2.0 in
        refine a fa c fc lc flc left half (depth + 1)
        +. refine c fc b fb rc frc right half (depth + 1)
    in
    let fa = f a and fb = f b in
    let c, fc, whole = simpson a fa b fb in
    refine a fa b fb c fc whole tolerance 0

(* Abscissae/weights for the positive half of the symmetric rules. *)
let gl_nodes_weights = function
  | 4 ->
    ( [| 0.3399810435848563; 0.8611363115940526 |],
      [| 0.6521451548625461; 0.3478548451374538 |] )
  | 8 ->
    ( [| 0.1834346424956498; 0.5255324099163290; 0.7966664774136267;
         0.9602898564975363 |],
      [| 0.3626837833783620; 0.3137066458778873; 0.2223810344533745;
         0.1012285362903763 |] )
  | 16 ->
    ( [| 0.0950125098376374; 0.2816035507792589; 0.4580167776572274;
         0.6178762444026438; 0.7554044083550030; 0.8656312023878318;
         0.9445750230732326; 0.9894009349916499 |],
      [| 0.1894506104550685; 0.1826034150449236; 0.1691565193950025;
         0.1495959888165767; 0.1246289712555339; 0.0951585116824928;
         0.0622535239386479; 0.0271524594117541 |] )
  | n ->
    invalid_arg
      (Printf.sprintf "Integrate.gauss_legendre: unsupported node count %d" n)

let gauss_legendre ?(nodes = 16) f a b =
  let xs, ws = gl_nodes_weights nodes in
  let mid = 0.5 *. (a +. b) and half = 0.5 *. (b -. a) in
  let acc = Kahan.create () in
  Array.iteri
    (fun i x ->
      let w = ws.(i) in
      Kahan.add acc (w *. f (mid +. (half *. x)));
      Kahan.add acc (w *. f (mid -. (half *. x))))
    xs;
  half *. Kahan.sum acc

let to_infinity ?(tolerance = 1e-10) f a =
  (* Map [a, inf) onto [0, 1) via x = a + t/(1-t); dx = dt/(1-t)^2. *)
  let g t =
    if t >= 1.0 then 0.0
    else
      let u = 1.0 -. t in
      f (a +. (t /. u)) /. (u *. u)
  in
  adaptive_simpson ~tolerance g 0.0 1.0

let expectation_exponential ?(tolerance = 1e-10) ~rate g =
  if rate <= 0.0 then
    invalid_arg "Integrate.expectation_exponential: rate must be positive";
  let weighted x = rate *. Float.exp (-.rate *. x) *. g x in
  to_infinity ~tolerance weighted 0.0

let expectation_exponential_piecewise ?(tolerance = 1e-10) ~rate ~breakpoints g
    =
  if rate <= 0.0 then
    invalid_arg "Integrate.expectation_exponential_piecewise: rate <= 0";
  let weighted x = rate *. Float.exp (-.rate *. x) *. g x in
  let points =
    List.sort_uniq Float.compare
      (List.filter (fun x -> x > 0.0 && x < Float.infinity) breakpoints)
  in
  let rec pieces lo = function
    | [] -> [ to_infinity ~tolerance weighted lo ]
    | hi :: rest -> adaptive_simpson ~tolerance weighted lo hi :: pieces hi rest
  in
  Kahan.sum_list (pieces 0.0 points)
