(** One-dimensional numerical quadrature.

    The paper's move-to-front and send/receive-cache models (Equations
    5, 6, 10 and 13) are expectations over an exponentially distributed
    think time: integrals of smooth integrands over [[0, R]] and
    [[R, infinity)].  Adaptive Simpson handles the finite pieces;
    semi-infinite tails are folded onto [[0, 1)] with the substitution
    [t = x / (1 - x)]. *)

val adaptive_simpson :
  ?tolerance:float -> ?max_depth:int -> (float -> float) -> float -> float ->
  float
(** [adaptive_simpson f a b] integrates [f] over [[a, b]] by recursive
    Simpson bisection with Richardson error control.
    @param tolerance absolute error target (default [1e-10]).
    @param max_depth recursion limit (default [60]); beyond it the
    current panel estimate is accepted. *)

val gauss_legendre : ?nodes:int -> (float -> float) -> float -> float -> float
(** [gauss_legendre f a b] integrates with a fixed-order composite
    Gauss-Legendre rule ([nodes] must be 4, 8 or 16; default 16, a
    single panel).  Used as an independent cross-check of
    {!adaptive_simpson} in the test suite.
    @raise Invalid_argument on an unsupported node count. *)

val to_infinity : ?tolerance:float -> (float -> float) -> float -> float
(** [to_infinity f a] integrates [f] over [[a, infinity)].  [f] must
    decay at least exponentially (all our integrands carry a factor
    [exp (-a*T)]). *)

val expectation_exponential :
  ?tolerance:float -> rate:float -> (float -> float) -> float
(** [expectation_exponential ~rate g] is [E(g X)] for
    [X ~ Exponential rate], i.e. [integral_0^inf rate*exp(-rate x) g x dx].
    @raise Invalid_argument if [rate <= 0]. *)

val expectation_exponential_piecewise :
  ?tolerance:float -> rate:float -> breakpoints:float list ->
  (float -> float) -> float
(** Same as {!expectation_exponential} but splitting the domain at the
    given breakpoints so integrands with kinks (the [T < R+D] vs
    [T > R+D] cases of the paper's Section 3.3) are integrated piecewise
    smoothly.  Breakpoints outside [(0, infinity)] are ignored. *)
