type t = { mutable total : float; mutable compensation : float }

let create () = { total = 0.0; compensation = 0.0 }

(* Neumaier's variant: works even when the addend is larger in magnitude
   than the running total, which plain Kahan mishandles. *)
let add t x =
  let sum = t.total +. x in
  let correction =
    if Float.abs t.total >= Float.abs x then (t.total -. sum) +. x
    else (x -. sum) +. t.total
  in
  t.compensation <- t.compensation +. correction;
  t.total <- sum

let sum t = t.total +. t.compensation

let sum_array a =
  let t = create () in
  Array.iter (add t) a;
  sum t

let sum_list l =
  let t = create () in
  List.iter (add t) l;
  sum t

let sum_fn n f =
  let t = create () in
  for i = 0 to n - 1 do
    add t (f i)
  done;
  sum t
