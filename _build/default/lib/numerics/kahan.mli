(** Compensated (Kahan-Babuska-Neumaier) floating-point summation.

    Summing thousands of terms of widely varying magnitude — as the
    binomial sums of Equation 3 of the paper require at [n = 2000] —
    loses precision with naive accumulation.  This accumulator keeps a
    running compensation term so the result is correct to within a few
    ulps regardless of term ordering. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** A fresh accumulator holding 0. *)

val add : t -> float -> unit
(** [add t x] accumulates [x] into [t]. *)

val sum : t -> float
(** Current compensated total. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)

val sum_list : float list -> float
(** One-shot compensated sum of a list. *)

val sum_fn : int -> (int -> float) -> float
(** [sum_fn n f] is the compensated sum of [f 0 + ... + f (n-1)]. *)
