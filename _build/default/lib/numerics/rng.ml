type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: used only to expand a small seed into the 256-bit xoshiro
   state, as its own weak points do not survive the expansion. *)
let splitmix64_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_state64 seed64 =
  let sm = ref seed64 in
  let s0 = splitmix64_next sm in
  let s1 = splitmix64_next sm in
  let s2 = splitmix64_next sm in
  let s3 = splitmix64_next sm in
  { s0; s1; s2; s3 }

let create ~seed = of_state64 (Int64.of_int seed)

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_state64 (bits64 t)

let float t =
  (* Top 53 bits give a uniform dyadic rational in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t ~min ~max =
  if min > max then invalid_arg "Rng.float_range: min > max";
  min +. ((max -. min) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = Int64.max_int in
  let rec draw () =
    let candidate = Int64.logand (bits64 t) mask in
    let limit = Int64.sub mask (Int64.rem mask bound64) in
    if candidate >= limit then draw ()
    else Int64.to_int (Int64.rem candidate bound64)
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let jump_polynomial =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for bit = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L bit) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (bits64 t)
      done)
    jump_polynomial;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
