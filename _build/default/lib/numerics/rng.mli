(** Deterministic, splittable pseudo-random number generator.

    The simulator must be reproducible run-to-run (the paper's analytic
    results are compared against simulated means, so benchmark tables
    have to be stable), and each simulated user needs an independent
    stream.  This is xoshiro256++ seeded through splitmix64, the
    combination recommended by Blackman & Vigna. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds
    yield identical streams. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t].  Used to give each simulated user its own stream so
    adding users does not perturb existing ones. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [[0, 1)], using the top 53 bits. *)

val float_range : t -> min:float -> max:float -> float
(** Uniform float in [[min, max)].
    @raise Invalid_argument if [min > max]. *)

val int : t -> bound:int -> int
(** Uniform integer in [[0, bound)] by rejection (no modulo bias).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val jump : t -> unit
(** Advance [t] by 2^128 steps (the xoshiro jump polynomial); an
    alternative to {!split} for carving non-overlapping substreams. *)
