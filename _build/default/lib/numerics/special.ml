let lanczos_g = 7.0

let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its sweet spot. *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let series = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      series := !series +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. Float.log (2.0 *. Float.pi))
    +. (((x +. 0.5) *. Float.log t) -. t)
    +. Float.log !series

let log_factorial_table =
  let table = Array.make 256 0.0 in
  for n = 2 to 255 do
    table.(n) <- table.(n - 1) +. Float.log (float_of_int n)
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument"
  else if n < 256 then log_factorial_table.(n)
  else log_gamma (float_of_int n +. 1.0)

let log_binomial n k =
  if n < 0 then invalid_arg "Special.log_binomial: negative n"
  else if k < 0 || k > n then Float.neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let binomial_pmf ~n ~p k =
  if n < 0 then invalid_arg "Special.binomial_pmf: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Special.binomial_pmf: p not in [0,1]";
  if k < 0 || k > n then 0.0
  else if p = 0.0 then if k = 0 then 1.0 else 0.0
  else if p = 1.0 then if k = n then 1.0 else 0.0
  else
    let log_pmf =
      log_binomial n k
      +. (float_of_int k *. Float.log p)
      +. (float_of_int (n - k) *. Float.log1p (-.p))
    in
    Float.exp log_pmf

let binomial_mean_direct ~n ~p =
  Kahan.sum_fn (n + 1) (fun k -> float_of_int k *. binomial_pmf ~n ~p k)

let log_sum_exp a =
  if Array.length a = 0 then Float.neg_infinity
  else
    let m = Array.fold_left Float.max Float.neg_infinity a in
    if m = Float.neg_infinity then Float.neg_infinity
    else
      let s = Kahan.sum_fn (Array.length a) (fun i -> Float.exp (a.(i) -. m)) in
      m +. Float.log s

let expm1 = Float.expm1
let log1p = Float.log1p
