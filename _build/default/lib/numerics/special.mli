(** Special functions needed by the paper's analytic models.

    Equation 3 of the paper is a binomial expectation over up to
    [n = 10,000] users; its terms involve binomial coefficients far
    beyond the range of [float], so everything here works in log
    space. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0], via the Lanczos
    approximation (g = 7, n = 9), accurate to ~1e-13 relative error. *)

val log_factorial : int -> float
(** [log_factorial n] is [ln n!].  Values up to [n = 255] are served
    from a precomputed table; larger ones via {!log_gamma}.
    @raise Invalid_argument if [n < 0]. *)

val log_binomial : int -> int -> float
(** [log_binomial n k] is [ln (n choose k)].  Returns [neg_infinity]
    when [k < 0] or [k > n].
    @raise Invalid_argument if [n < 0]. *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k] is the probability of exactly [k] successes
    in [n] Bernoulli trials of success probability [p], computed in log
    space so it never overflows.
    @raise Invalid_argument if [p] is outside [0, 1] or [n < 0]. *)

val binomial_mean_direct : n:int -> p:float -> float
(** The mean [sum_k k * pmf k] computed by explicit compensated
    summation — deliberately {e not} the closed form [n *. p], so tests
    can confirm the paper's Equation 3 sum equals its closed form. *)

val log_sum_exp : float array -> float
(** [log_sum_exp a] is [ln (sum_i exp a.(i))], computed stably.
    Returns [neg_infinity] on an empty array. *)

val expm1 : float -> float
(** [expm1 x] is [exp x - 1.] without cancellation for small [x]. *)

val log1p : float -> float
(** [log1p x] is [ln (1. + x)] without cancellation for small [x]. *)
