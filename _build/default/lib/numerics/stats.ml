type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min_v = Float.infinity; max_v = Float.neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean
let variance t = if t.n < 2 then Float.nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = Float.sqrt (variance t)
let min_value t = if t.n = 0 then Float.nan else t.min_v
let max_value t = if t.n = 0 then Float.nan else t.max_v

let confidence_95 t =
  if t.n < 2 then Float.nan
  else 1.96 *. stddev t /. Float.sqrt (float_of_int t.n)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let fn = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. fn) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. fn)
    in
    { n; mean; m2; min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v }

let quantile data q =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.quantile: empty data";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let position = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor position) in
  let hi = int_of_float (Float.ceil position) in
  if lo = hi then sorted.(lo)
  else
    let w = position -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

module Histogram = struct
  type h = {
    min : float;
    width : float;
    buckets : int array;
    mutable under : int;
    mutable over : int;
  }

  let create ~min ~max ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
    if min >= max then invalid_arg "Histogram.create: min >= max";
    { min; width = (max -. min) /. float_of_int buckets;
      buckets = Array.make buckets 0; under = 0; over = 0 }

  let add h x =
    let i = int_of_float (Float.floor ((x -. h.min) /. h.width)) in
    if x < h.min then h.under <- h.under + 1
    else if i >= Array.length h.buckets then h.over <- h.over + 1
    else h.buckets.(i) <- h.buckets.(i) + 1

  let total h = h.under + h.over + Array.fold_left ( + ) 0 h.buckets

  let counts h =
    Array.mapi
      (fun i c -> (h.min +. (float_of_int i *. h.width), c))
      h.buckets

  let underflow h = h.under
  let overflow h = h.over
end
