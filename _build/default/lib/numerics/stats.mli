(** Streaming and batch statistics for simulation output.

    The simulator's figure of merit — PCBs examined per packet — is a
    long stream of small integers; we accumulate it with Welford's
    online algorithm so means and variances are exact in one pass, and
    offer histograms for distribution-shaped reporting. *)

(** {1 Online accumulator} *)

type t
(** Welford online mean/variance accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val confidence_95 : t -> float
(** Half-width of the normal-approximation 95 % confidence interval for
    the mean ([1.96 * stddev / sqrt count]); [nan] when undefined. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford / Chan's formula). *)

(** {1 Batch helpers} *)

val quantile : float array -> float -> float
(** [quantile data q] for [q] in [[0, 1]], linear interpolation between
    order statistics.  Sorts a copy.
    @raise Invalid_argument on empty data or [q] outside [0, 1]. *)

(** {1 Histogram} *)

module Histogram : sig
  type h

  val create : min:float -> max:float -> buckets:int -> h
  (** Fixed-width buckets over [[min, max)]; out-of-range samples land
      in saturated edge counters.
      @raise Invalid_argument if [buckets <= 0] or [min >= max]. *)

  val add : h -> float -> unit
  val total : h -> int

  val counts : h -> (float * int) array
  (** [(lower_bound, count)] per bucket, in order. *)

  val underflow : h -> int
  val overflow : h -> int
end
