lib/packet/checksum.ml: Bytes
