lib/packet/checksum.mli:
