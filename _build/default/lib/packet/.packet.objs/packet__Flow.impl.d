lib/packet/flow.ml: Bytes Format Int Ipv4 Tcp_header
