lib/packet/flow.mli: Format Ipv4 Tcp_header
