lib/packet/ipv4.ml: Bytes Checksum Format Int32 Printf String
