lib/packet/ipv4.mli: Format
