lib/packet/ipv6.ml: Array Bytes Char Format Int32 Ipv4 List Option Printf String
