lib/packet/ipv6.mli: Format Ipv4
