lib/packet/pcap.ml: Bytes Float Int32 List
