lib/packet/pcap.mli:
