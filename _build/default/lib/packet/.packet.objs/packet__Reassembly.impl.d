lib/packet/reassembly.ml: Bytes Hashtbl Ipv4 List String
