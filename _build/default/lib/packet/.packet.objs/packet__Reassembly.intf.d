lib/packet/reassembly.mli: Ipv4
