lib/packet/segment.ml: Bytes Flow Format Ipv4 String Tcp_header
