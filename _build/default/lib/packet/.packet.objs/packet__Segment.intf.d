lib/packet/segment.mli: Flow Format Ipv4 Tcp_header
