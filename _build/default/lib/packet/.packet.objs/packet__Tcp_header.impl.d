lib/packet/tcp_header.ml: Bytes Checksum Format List Printf String
