lib/packet/tcp_header.mli: Format
