lib/packet/udp_header.ml: Bytes Checksum Flow Format Ipv4 Printf String
