lib/packet/udp_header.mli: Flow Format Ipv4
