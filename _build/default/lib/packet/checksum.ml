let ones_complement_sum ?(initial = 0) buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum: region out of range";
  let sum = ref initial in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be buf !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 buf !i lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let compute ?initial buf ~off ~len =
  finish (ones_complement_sum ?initial buf ~off ~len)

let verify ?initial buf ~off ~len =
  finish (ones_complement_sum ?initial buf ~off ~len) = 0
