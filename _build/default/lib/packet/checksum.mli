(** RFC 1071 Internet checksum (16-bit one's-complement sum). *)

val ones_complement_sum : ?initial:int -> bytes -> off:int -> len:int -> int
(** Running 16-bit one's-complement sum (not yet complemented) of
    [len] bytes starting at [off]; odd trailing byte is padded with
    zero, per RFC 1071.  [initial] chains partial sums (e.g. a
    pseudo-header).
    @raise Invalid_argument on out-of-range [off]/[len]. *)

val finish : int -> int
(** Fold carries and complement a running sum into the on-wire 16-bit
    checksum value. *)

val compute : ?initial:int -> bytes -> off:int -> len:int -> int
(** [finish (ones_complement_sum ...)]. *)

val verify : ?initial:int -> bytes -> off:int -> len:int -> bool
(** True when the region (which must include its embedded checksum
    field) sums to the all-ones pattern, i.e. the checksum is valid. *)
