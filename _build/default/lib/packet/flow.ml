type endpoint = { addr : Ipv4.addr; port : int }

let endpoint addr port =
  if port < 0 || port > 0xFFFF then invalid_arg "Flow.endpoint: bad port";
  { addr; port }

let pp_endpoint ppf e = Format.fprintf ppf "%a:%d" Ipv4.pp_addr e.addr e.port

type t = { local : endpoint; remote : endpoint }

let v ~local ~remote = { local; remote }

let of_headers (ip : Ipv4.t) (tcp : Tcp_header.t) =
  { local = { addr = ip.Ipv4.dst; port = tcp.Tcp_header.dst_port };
    remote = { addr = ip.Ipv4.src; port = tcp.Tcp_header.src_port } }

let equal_endpoint a b = Ipv4.equal_addr a.addr b.addr && a.port = b.port
let equal a b = equal_endpoint a.local b.local && equal_endpoint a.remote b.remote

let compare_endpoint a b =
  match Ipv4.compare_addr a.addr b.addr with
  | 0 -> Int.compare a.port b.port
  | c -> c

let compare a b =
  match compare_endpoint a.local b.local with
  | 0 -> compare_endpoint a.remote b.remote
  | c -> c

let reverse t = { local = t.remote; remote = t.local }

let to_key_bytes t =
  let buf = Bytes.create 12 in
  Bytes.set_int32_be buf 0 (Ipv4.addr_to_int32 t.local.addr);
  Bytes.set_int32_be buf 4 (Ipv4.addr_to_int32 t.remote.addr);
  Bytes.set_uint16_be buf 8 t.local.port;
  Bytes.set_uint16_be buf 10 t.remote.port;
  buf

let pp ppf t =
  Format.fprintf ppf "%a <- %a" pp_endpoint t.local pp_endpoint t.remote

let to_string t = Format.asprintf "%a" pp t
