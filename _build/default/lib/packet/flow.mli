(** Connection identity: the 96-bit demultiplexing key.

    A flow names one TCP connection {e from the receiving host's point
    of view}: [local] is this host's address/port, [remote] the peer's.
    Every PCB-lookup algorithm in the library maps an inbound
    segment's flow to a PCB using exactly this key, which is the
    "source and destination Internet Protocol addresses and TCP ports
    [totalling] 96 bits" of the paper's introduction. *)

type endpoint = { addr : Ipv4.addr; port : int }

val endpoint : Ipv4.addr -> int -> endpoint
(** @raise Invalid_argument if the port is outside [0, 65535]. *)

val pp_endpoint : Format.formatter -> endpoint -> unit

type t = { local : endpoint; remote : endpoint }

val v : local:endpoint -> remote:endpoint -> t

val of_headers : Ipv4.t -> Tcp_header.t -> t
(** The flow of a {e received} segment: local = (dst addr, dst port),
    remote = (src addr, src port). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val reverse : t -> t
(** Swap local and remote — the flow of traffic in the other
    direction. *)

val to_key_bytes : t -> bytes
(** The canonical 12-byte (96-bit) wire-order key: local addr, remote
    addr, local port, remote port.  This is the byte string the
    {!Hashing} functions consume. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
