type addr = int32

let addr_of_int32 x = x
let addr_to_int32 x = x

let addr_of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Ipv4.addr_of_octets: octet out of range"
  in
  check a; check b; check c; check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    let octet x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
      | Some _ | None -> None
    in
    match (octet a, octet b, octet c, octet d) with
    | Some a, Some b, Some c, Some d -> Ok (addr_of_octets a b c d)
    | _ -> Error (Printf.sprintf "invalid IPv4 address %S" s))
  | _ -> Error (Printf.sprintf "invalid IPv4 address %S" s)

let octet addr shift =
  Int32.to_int (Int32.logand (Int32.shift_right_logical addr shift) 0xFFl)

let addr_to_string addr =
  Printf.sprintf "%d.%d.%d.%d" (octet addr 24) (octet addr 16) (octet addr 8)
    (octet addr 0)

let pp_addr ppf addr = Format.pp_print_string ppf (addr_to_string addr)
let equal_addr = Int32.equal
let compare_addr = Int32.compare

type protocol = Tcp | Udp | Icmp | Other of int

let protocol_to_int = function
  | Icmp -> 1
  | Tcp -> 6
  | Udp -> 17
  | Other p -> p

let protocol_of_int = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | p -> Other p

let pp_protocol ppf = function
  | Tcp -> Format.pp_print_string ppf "tcp"
  | Udp -> Format.pp_print_string ppf "udp"
  | Icmp -> Format.pp_print_string ppf "icmp"
  | Other p -> Format.fprintf ppf "proto-%d" p

type t = {
  tos : int;
  identification : int;
  dont_fragment : bool;
  more_fragments : bool;
  fragment_offset : int;
  ttl : int;
  protocol : protocol;
  src : addr;
  dst : addr;
  payload_length : int;
}

let header_length = 20

let make ?(tos = 0) ?(identification = 0) ?(dont_fragment = true) ?(ttl = 64)
    ~src ~dst ~protocol ~payload_length () =
  if tos < 0 || tos > 0xFF then invalid_arg "Ipv4.make: tos out of range";
  if identification < 0 || identification > 0xFFFF then
    invalid_arg "Ipv4.make: identification out of range";
  if ttl < 0 || ttl > 0xFF then invalid_arg "Ipv4.make: ttl out of range";
  if payload_length < 0 || payload_length + header_length > 0xFFFF then
    invalid_arg "Ipv4.make: payload_length out of range";
  { tos; identification; dont_fragment; more_fragments = false;
    fragment_offset = 0; ttl; protocol; src; dst; payload_length }

let serialize t buf ~off =
  if off < 0 || off + header_length > Bytes.length buf then
    invalid_arg "Ipv4.serialize: buffer too small";
  Bytes.set_uint8 buf off 0x45 (* version 4, IHL 5 *);
  Bytes.set_uint8 buf (off + 1) t.tos;
  Bytes.set_uint16_be buf (off + 2) (header_length + t.payload_length);
  Bytes.set_uint16_be buf (off + 4) t.identification;
  let flags =
    (if t.dont_fragment then 0x4000 else 0)
    lor (if t.more_fragments then 0x2000 else 0)
    lor (t.fragment_offset land 0x1FFF)
  in
  Bytes.set_uint16_be buf (off + 6) flags;
  Bytes.set_uint8 buf (off + 8) t.ttl;
  Bytes.set_uint8 buf (off + 9) (protocol_to_int t.protocol);
  Bytes.set_uint16_be buf (off + 10) 0 (* checksum placeholder *);
  Bytes.set_int32_be buf (off + 12) t.src;
  Bytes.set_int32_be buf (off + 16) t.dst;
  let csum = Checksum.compute buf ~off ~len:header_length in
  Bytes.set_uint16_be buf (off + 10) csum

let parse buf ~off =
  let len = Bytes.length buf in
  if off < 0 || off + header_length > len then Error "ipv4: truncated header"
  else
    let vi = Bytes.get_uint8 buf off in
    let version = vi lsr 4 and ihl = vi land 0xF in
    if version <> 4 then Error (Printf.sprintf "ipv4: bad version %d" version)
    else if ihl < 5 then Error (Printf.sprintf "ipv4: bad IHL %d" ihl)
    else
      let hlen = ihl * 4 in
      if off + hlen > len then Error "ipv4: truncated options"
      else if not (Checksum.verify buf ~off ~len:hlen) then
        Error "ipv4: header checksum mismatch"
      else
        let total = Bytes.get_uint16_be buf (off + 2) in
        if total < hlen then Error "ipv4: total length below header length"
        else if off + total > len then Error "ipv4: truncated payload"
        else
          let flags = Bytes.get_uint16_be buf (off + 6) in
          let t =
            { tos = Bytes.get_uint8 buf (off + 1);
              identification = Bytes.get_uint16_be buf (off + 4);
              dont_fragment = flags land 0x4000 <> 0;
              more_fragments = flags land 0x2000 <> 0;
              fragment_offset = flags land 0x1FFF;
              ttl = Bytes.get_uint8 buf (off + 8);
              protocol = protocol_of_int (Bytes.get_uint8 buf (off + 9));
              src = Bytes.get_int32_be buf (off + 12);
              dst = Bytes.get_int32_be buf (off + 16);
              payload_length = total - hlen }
          in
          Ok (t, off + hlen)

let pseudo_header_sum t =
  let hi32 a = Int32.to_int (Int32.shift_right_logical a 16) in
  let lo32 a = Int32.to_int (Int32.logand a 0xFFFFl) in
  hi32 t.src + lo32 t.src + hi32 t.dst + lo32 t.dst
  + protocol_to_int t.protocol + t.payload_length

let pp ppf t =
  Format.fprintf ppf "@[<h>%a > %a %a ttl=%d len=%d id=%d%s@]" pp_addr t.src
    pp_addr t.dst pp_protocol t.protocol t.ttl t.payload_length
    t.identification
    (if t.dont_fragment then " DF" else "")
