(** IPv4 addresses and headers (RFC 791).

    The demultiplexing key the paper analyses is the 96-bit
    (source address, destination address, source port, destination
    port) tuple; the address half comes from this header. *)

(** {1 Addresses} *)

type addr = private int32
(** An IPv4 address in host order, e.g. 10.0.0.1 is [0x0A000001l]. *)

val addr_of_int32 : int32 -> addr
val addr_to_int32 : addr -> int32

val addr_of_octets : int -> int -> int -> int -> addr
(** [addr_of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [0, 255]. *)

val addr_of_string : string -> (addr, string) result
(** Parse dotted-quad notation. *)

val addr_to_string : addr -> string
val pp_addr : Format.formatter -> addr -> unit
val equal_addr : addr -> addr -> bool
val compare_addr : addr -> addr -> int

(** {1 Header} *)

type protocol = Tcp | Udp | Icmp | Other of int

val protocol_to_int : protocol -> int
val protocol_of_int : int -> protocol
val pp_protocol : Format.formatter -> protocol -> unit

type t = {
  tos : int;                (** Type of service. *)
  identification : int;     (** Fragment identification. *)
  dont_fragment : bool;
  more_fragments : bool;
  fragment_offset : int;    (** In 8-byte units. *)
  ttl : int;
  protocol : protocol;
  src : addr;
  dst : addr;
  payload_length : int;     (** Bytes following the (option-free) header. *)
}
(** A parsed IPv4 header.  We do not model IP options: no 1992 TCP
    fast path did either (options forced the slow path), and the
    demultiplexing question is unaffected. *)

val header_length : int
(** Serialized size: 20 bytes (IHL = 5, no options). *)

val make :
  ?tos:int -> ?identification:int -> ?dont_fragment:bool -> ?ttl:int ->
  src:addr -> dst:addr -> protocol:protocol -> payload_length:int -> unit -> t
(** Header for an unfragmented datagram.  Defaults: [tos = 0],
    [identification = 0], [dont_fragment = true], [ttl = 64].
    @raise Invalid_argument if a field is out of range. *)

val serialize : t -> bytes -> off:int -> unit
(** Write 20 bytes at [off], computing the header checksum.
    @raise Invalid_argument if the buffer is too small. *)

val parse : bytes -> off:int -> (t * int, string) result
(** Parse a header at [off]; on success returns the header and the
    offset of the payload.  Rejects bad version, truncated buffers,
    IHL < 5 and checksum mismatch.  Headers with options are accepted
    (options skipped). *)

val pseudo_header_sum : t -> int
(** One's-complement sum of the TCP pseudo-header (src, dst, protocol,
    TCP length) for this datagram, to seed the TCP checksum. *)

val pp : Format.formatter -> t -> unit
