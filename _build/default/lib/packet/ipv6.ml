type addr = string (* exactly 16 bytes, network order *)

let addr_of_groups groups =
  if Array.length groups <> 8 then
    invalid_arg "Ipv6.addr_of_groups: need exactly 8 groups";
  let buf = Bytes.create 16 in
  Array.iteri
    (fun i g ->
      if g < 0 || g > 0xFFFF then
        invalid_arg "Ipv6.addr_of_groups: group out of range";
      Bytes.set_uint16_be buf (2 * i) g)
    groups;
  Bytes.to_string buf

let addr_to_groups addr =
  Array.init 8 (fun i -> Bytes.get_uint16_be (Bytes.of_string addr) (2 * i))

let unspecified = String.make 16 '\x00'
let loopback = String.make 15 '\x00' ^ "\x01"

let parse_group text =
  let n = String.length text in
  if n = 0 || n > 4 then None
  else
    let valid =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
        text
    in
    if valid then int_of_string_opt ("0x" ^ text) else None

let addr_of_string text =
  let fail () = Error (Printf.sprintf "invalid IPv6 address %S" text) in
  let split_double s =
    (* At most one "::". *)
    let rec find i =
      if i + 1 >= String.length s then None
      else if s.[i] = ':' && s.[i + 1] = ':' then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> `No_gap s
    | Some i ->
      let before = String.sub s 0 i in
      let after = String.sub s (i + 2) (String.length s - i - 2) in
      (match find (i + 1) with
      | Some j when j > i -> `Bad
      | _ -> `Gap (before, after))
  in
  let groups_of part =
    if part = "" then Some []
    else
      let pieces = String.split_on_char ':' part in
      let parsed = List.map parse_group pieces in
      if List.for_all Option.is_some parsed then
        Some (List.map Option.get parsed)
      else None
  in
  match split_double text with
  | `Bad -> fail ()
  | `No_gap s -> (
    match groups_of s with
    | Some groups when List.length groups = 8 ->
      Ok (addr_of_groups (Array.of_list groups))
    | Some _ | None -> fail ())
  | `Gap (before, after) -> (
    match (groups_of before, groups_of after) with
    | Some head, Some tail ->
      let missing = 8 - List.length head - List.length tail in
      (* "::" must stand for at least one zero group. *)
      if missing < 1 then fail ()
      else
        Ok
          (addr_of_groups
             (Array.of_list (head @ List.init missing (fun _ -> 0) @ tail)))
    | _ -> fail ())

let addr_to_string addr =
  let groups = addr_to_groups addr in
  (* RFC 5952: compress the longest (leftmost on ties) run of >= 2
     zero groups. *)
  let best = ref (0, 0) (* start, length *) in
  let current = ref (0, 0) in
  Array.iteri
    (fun i g ->
      if g = 0 then begin
        let start, len = !current in
        let start = if len = 0 then i else start in
        current := (start, len + 1);
        if snd !current > snd !best then best := !current
      end
      else current := (0, 0))
    groups;
  let start, len = !best in
  if len < 2 then
    String.concat ":"
      (Array.to_list (Array.map (Printf.sprintf "%x") groups))
  else
    let render lo hi =
      String.concat ":"
        (List.init (hi - lo) (fun i -> Printf.sprintf "%x" groups.(lo + i)))
    in
    render 0 start ^ "::" ^ render (start + len) 8

let pp_addr ppf addr = Format.pp_print_string ppf (addr_to_string addr)
let equal_addr = String.equal
let compare_addr = String.compare

type t = {
  traffic_class : int;
  flow_label : int;
  payload_length : int;
  next_header : Ipv4.protocol;
  hop_limit : int;
  src : addr;
  dst : addr;
}

let header_length = 40

let make ?(traffic_class = 0) ?(flow_label = 0) ?(hop_limit = 64) ~src ~dst
    ~next_header ~payload_length () =
  if traffic_class < 0 || traffic_class > 0xFF then
    invalid_arg "Ipv6.make: traffic_class out of range";
  if flow_label < 0 || flow_label > 0xFFFFF then
    invalid_arg "Ipv6.make: flow_label out of range";
  if hop_limit < 0 || hop_limit > 0xFF then
    invalid_arg "Ipv6.make: hop_limit out of range";
  if payload_length < 0 || payload_length > 0xFFFF then
    invalid_arg "Ipv6.make: payload_length out of range";
  { traffic_class; flow_label; payload_length; next_header; hop_limit; src;
    dst }

let serialize t buf ~off =
  if off < 0 || off + header_length > Bytes.length buf then
    invalid_arg "Ipv6.serialize: buffer too small";
  let word0 =
    Int32.logor
      (Int32.shift_left 6l 28)
      (Int32.logor
         (Int32.shift_left (Int32.of_int t.traffic_class) 20)
         (Int32.of_int t.flow_label))
  in
  Bytes.set_int32_be buf off word0;
  Bytes.set_uint16_be buf (off + 4) t.payload_length;
  Bytes.set_uint8 buf (off + 6) (Ipv4.protocol_to_int t.next_header);
  Bytes.set_uint8 buf (off + 7) t.hop_limit;
  Bytes.blit_string t.src 0 buf (off + 8) 16;
  Bytes.blit_string t.dst 0 buf (off + 24) 16

let parse buf ~off =
  if off < 0 || off + header_length > Bytes.length buf then
    Error "ipv6: truncated header"
  else
    let word0 = Bytes.get_int32_be buf off in
    let version =
      Int32.to_int (Int32.logand (Int32.shift_right_logical word0 28) 0xFl)
    in
    if version <> 6 then Error (Printf.sprintf "ipv6: bad version %d" version)
    else
      let payload_length = Bytes.get_uint16_be buf (off + 4) in
      if off + header_length + payload_length > Bytes.length buf then
        Error "ipv6: truncated payload"
      else
        Ok
          ( { traffic_class =
                Int32.to_int
                  (Int32.logand (Int32.shift_right_logical word0 20) 0xFFl);
              flow_label = Int32.to_int (Int32.logand word0 0xFFFFFl);
              payload_length;
              next_header = Ipv4.protocol_of_int (Bytes.get_uint8 buf (off + 6));
              hop_limit = Bytes.get_uint8 buf (off + 7);
              src = Bytes.sub_string buf (off + 8) 16;
              dst = Bytes.sub_string buf (off + 24) 16 },
            off + header_length )

let sum_address acc addr =
  let acc = ref acc in
  for i = 0 to 7 do
    acc := !acc + Char.code addr.[2 * i] * 256 + Char.code addr.[(2 * i) + 1]
  done;
  !acc

let pseudo_header_sum t =
  (* RFC 8200 section 8.1: src, dst, 32-bit upper-layer length,
     24 zero bits, next header. *)
  let acc = sum_address 0 t.src in
  let acc = sum_address acc t.dst in
  acc + t.payload_length + Ipv4.protocol_to_int t.next_header

let flow_key ~src ~src_port ~dst ~dst_port =
  if src_port < 0 || src_port > 0xFFFF || dst_port < 0 || dst_port > 0xFFFF
  then invalid_arg "Ipv6.flow_key: port out of range";
  (* Receiver's view: local (dst) first, mirroring Flow.to_key_bytes. *)
  let buf = Bytes.create 36 in
  Bytes.blit_string dst 0 buf 0 16;
  Bytes.blit_string src 0 buf 16 16;
  Bytes.set_uint16_be buf 32 dst_port;
  Bytes.set_uint16_be buf 34 src_port;
  buf

let pp ppf t =
  Format.fprintf ppf "@[<h>%a > %a %a hlim=%d len=%d@]" pp_addr t.src pp_addr
    t.dst Ipv4.pp_protocol t.next_header t.hop_limit t.payload_length
