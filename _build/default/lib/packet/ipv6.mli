(** IPv6 addresses and fixed headers (RFC 8200) — a forward-looking
    extension.

    The paper's 96-bit key becomes 288 bits under IPv6, making "simple
    indexing schemes" even less feasible and hashing even more clearly
    the answer.  This module provides addresses (RFC 4291 parsing,
    RFC 5952 canonical printing), the 40-byte fixed header, the
    upper-layer pseudo-header sum (so {!Tcp_header} checksums work
    over IPv6 unchanged), and the widened flow key, which every hash
    in {!Hashing} accepts as-is. *)

(** {1 Addresses} *)

type addr
(** A 128-bit address. *)

val addr_of_groups : int array -> addr
(** From eight 16-bit groups.
    @raise Invalid_argument unless exactly 8 values in [0, 0xFFFF]. *)

val addr_to_groups : addr -> int array

val addr_of_string : string -> (addr, string) result
(** RFC 4291 text forms: full, leading-zero-free, and ["::"]
    compression.  (Embedded IPv4 dotted suffixes are not accepted.) *)

val addr_to_string : addr -> string
(** RFC 5952 canonical form: lowercase, no leading zeros, the longest
    (leftmost, length >= 2) zero run compressed to ["::"]. *)

val pp_addr : Format.formatter -> addr -> unit
val equal_addr : addr -> addr -> bool
val compare_addr : addr -> addr -> int

val unspecified : addr
(** The all-zeros address [::]. *)

val loopback : addr
(** [::1]. *)

(** {1 Header} *)

type t = {
  traffic_class : int;
  flow_label : int;      (** 20 bits. *)
  payload_length : int;
  next_header : Ipv4.protocol;  (** Same registry as IPv4's protocol. *)
  hop_limit : int;
  src : addr;
  dst : addr;
}

val header_length : int
(** 40 bytes (the fixed header; extension headers unmodelled). *)

val make :
  ?traffic_class:int -> ?flow_label:int -> ?hop_limit:int -> src:addr ->
  dst:addr -> next_header:Ipv4.protocol -> payload_length:int -> unit -> t
(** Defaults: class 0, label 0, hop limit 64.
    @raise Invalid_argument on out-of-range fields. *)

val serialize : t -> bytes -> off:int -> unit
(** Write 40 bytes at [off] (IPv6 has no header checksum).
    @raise Invalid_argument if the buffer is too small. *)

val parse : bytes -> off:int -> (t * int, string) result
(** Parse a fixed header; returns it and the payload offset. *)

val pseudo_header_sum : t -> int
(** RFC 8200 upper-layer pseudo-header running sum, compatible with
    {!Tcp_header.serialize}'s [pseudo_sum]. *)

(** {1 Demultiplexing key} *)

val flow_key : src:addr -> src_port:int -> dst:addr -> dst_port:int -> bytes
(** The receiver-side 36-byte (288-bit) connection key: local address,
    remote address, local port, remote port — same layout discipline
    as {!Flow.to_key_bytes}, consumable by every {!Hashing.Hashers}
    function.
    @raise Invalid_argument on out-of-range ports. *)

val pp : Format.formatter -> t -> unit
