type writer = { channel : out_channel; mutable count : int }

let magic = 0xA1B2C3D4l
let linktype_raw = 101l

let write_int32_le oc v =
  output_byte oc (Int32.to_int (Int32.logand v 0xFFl));
  output_byte oc (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl));
  output_byte oc (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl));
  output_byte oc (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl))

let write_int16_le oc v =
  output_byte oc (v land 0xFF);
  output_byte oc ((v lsr 8) land 0xFF)

let create_writer channel =
  write_int32_le channel magic;
  write_int16_le channel 2 (* version major *);
  write_int16_le channel 4 (* version minor *);
  write_int32_le channel 0l (* thiszone *);
  write_int32_le channel 0l (* sigfigs *);
  write_int32_le channel 0x40000l (* snaplen *);
  write_int32_le channel linktype_raw;
  { channel; count = 0 }

let write_packet w ~time data =
  let seconds = int_of_float (Float.floor time) in
  let micros = int_of_float ((time -. Float.floor time) *. 1e6) in
  let len = Bytes.length data in
  write_int32_le w.channel (Int32.of_int seconds);
  write_int32_le w.channel (Int32.of_int micros);
  write_int32_le w.channel (Int32.of_int len);
  write_int32_le w.channel (Int32.of_int len);
  output_bytes w.channel data;
  w.count <- w.count + 1

let packet_count w = w.count

type record = { time : float; data : bytes }

let read_exactly ic n =
  let buf = Bytes.create n in
  really_input ic buf 0 n;
  buf

let int32_le buf off =
  let b i = Int32.of_int (Bytes.get_uint8 buf (off + i)) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let read_all ic =
  try
    let header = read_exactly ic 24 in
    if int32_le header 0 <> magic then Error "pcap: bad magic"
    else
      let rec records acc =
        match read_exactly ic 16 with
        | record_header ->
          let seconds = Int32.to_int (int32_le record_header 0) in
          let micros = Int32.to_int (int32_le record_header 4) in
          let caplen = Int32.to_int (int32_le record_header 8) in
          let data = read_exactly ic caplen in
          let time = float_of_int seconds +. (float_of_int micros /. 1e6) in
          records ({ time; data } :: acc)
        | exception End_of_file -> Ok (List.rev acc)
      in
      records []
  with End_of_file -> Error "pcap: truncated file"
