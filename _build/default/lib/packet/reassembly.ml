(* ------------------------------------------------------------------ *)
(* Fragmentation                                                       *)

let fragment (header : Ipv4.t) ~payload ~mtu =
  if String.length payload <> header.Ipv4.payload_length then
    invalid_arg "Reassembly.fragment: payload length disagrees with header";
  let capacity = mtu - Ipv4.header_length in
  if capacity < 8 then invalid_arg "Reassembly.fragment: mtu too small";
  if String.length payload <= capacity then [ (header, payload) ]
  else if header.Ipv4.dont_fragment then
    invalid_arg "Reassembly.fragment: DF set and datagram exceeds mtu"
  else begin
    (* Non-final pieces must be multiples of 8 bytes. *)
    let piece = capacity land lnot 7 in
    let total = String.length payload in
    let rec split offset acc =
      if offset >= total then List.rev acc
      else
        let len = min piece (total - offset) in
        let last = offset + len >= total in
        let fragment_header =
          { header with
            Ipv4.more_fragments = (not last);
            fragment_offset = offset / 8;
            payload_length = len;
            dont_fragment = false }
        in
        split (offset + len)
          ((fragment_header, String.sub payload offset len) :: acc)
    in
    split 0 []
  end

(* ------------------------------------------------------------------ *)
(* Reassembly: RFC 815 hole list                                       *)

type key = {
  src : Ipv4.addr;
  dst : Ipv4.addr;
  protocol : int;
  identification : int;
}

type hole = { first : int; last : int } (* inclusive byte range *)

type partial = {
  key : key;
  buffer : Bytes.t;                 (* 64 KiB worst case, grown lazily *)
  mutable holes : hole list;        (* sorted, disjoint *)
  mutable total_length : int option; (* known once the final fragment is seen *)
  mutable first_header : Ipv4.t option;
  mutable arrived_at : float;
}

type t = {
  table : (key, partial) Hashtbl.t;
  timeout : float;
  max_pending : int;
}

type outcome =
  | Complete of Ipv4.t * string
  | Pending
  | Duplicate

let create ?(timeout = 30.0) ?(max_pending = 64) () =
  if timeout <= 0.0 then invalid_arg "Reassembly.create: timeout <= 0";
  if max_pending <= 0 then invalid_arg "Reassembly.create: max_pending <= 0";
  { table = Hashtbl.create 16; timeout; max_pending }

let key_of_header (h : Ipv4.t) =
  { src = h.Ipv4.src; dst = h.Ipv4.dst;
    protocol = Ipv4.protocol_to_int h.Ipv4.protocol;
    identification = h.Ipv4.identification }

let max_datagram = 65535 - Ipv4.header_length

let fresh_partial key now =
  { key; buffer = Bytes.create max_datagram; holes = [ { first = 0; last = max_datagram - 1 } ];
    total_length = None; first_header = None; arrived_at = now }

(* Subtract [first, last] from the hole list, per RFC 815. *)
let fill_holes holes ~first ~last =
  let filled_anything = ref false in
  let rec go = function
    | [] -> []
    | hole :: rest ->
      if last < hole.first || first > hole.last then hole :: go rest
      else begin
        filled_anything := true;
        let before =
          if hole.first < first then [ { first = hole.first; last = first - 1 } ]
          else []
        in
        let after =
          if hole.last > last then [ { first = last + 1; last = hole.last } ]
          else []
        in
        before @ after @ go rest
      end
  in
  let holes = go holes in
  (holes, !filled_anything)

let truncate_holes holes ~total =
  (* Once the total length is known, holes beyond it disappear. *)
  List.filter_map
    (fun hole ->
      if hole.first >= total then None
      else if hole.last >= total then Some { hole with last = total - 1 }
      else Some hole)
    holes

let evict_oldest t =
  let oldest = ref None in
  Hashtbl.iter
    (fun _ partial ->
      match !oldest with
      | None -> oldest := Some partial
      | Some p -> if partial.arrived_at < p.arrived_at then oldest := Some partial)
    t.table;
  match !oldest with
  | Some partial -> Hashtbl.remove t.table partial.key
  | None -> ()

let push t ~now (header : Ipv4.t) payload =
  if String.length payload <> header.Ipv4.payload_length then
    Error "reassembly: payload length disagrees with header"
  else
    let offset = header.Ipv4.fragment_offset * 8 in
    let len = String.length payload in
    if header.Ipv4.more_fragments && len mod 8 <> 0 then
      Error "reassembly: non-final fragment not a multiple of 8 bytes"
    else if offset + len > max_datagram then
      Error "reassembly: fragment beyond maximum datagram size"
    else if (not header.Ipv4.more_fragments) && offset = 0 then
      (* Unfragmented datagram: nothing to do. *)
      Ok (Complete (header, payload))
    else begin
      let key = key_of_header header in
      let partial =
        match Hashtbl.find_opt t.table key with
        | Some p -> p
        | None ->
          if Hashtbl.length t.table >= t.max_pending then evict_oldest t;
          let p = fresh_partial key now in
          Hashtbl.replace t.table key p;
          p
      in
      if len > 0 then Bytes.blit_string payload 0 partial.buffer offset len;
      if offset = 0 then partial.first_header <- Some header;
      if not header.Ipv4.more_fragments then
        partial.total_length <- Some (offset + len);
      let holes, filled =
        if len > 0 then
          fill_holes partial.holes ~first:offset ~last:(offset + len - 1)
        else (partial.holes, false)
      in
      let holes =
        match partial.total_length with
        | Some total -> truncate_holes holes ~total
        | None -> holes
      in
      partial.holes <- holes;
      match (holes, partial.total_length, partial.first_header) with
      | [], Some total, Some first_header ->
        Hashtbl.remove t.table key;
        let whole =
          { first_header with
            Ipv4.more_fragments = false;
            fragment_offset = 0;
            payload_length = total }
        in
        Ok (Complete (whole, Bytes.sub_string partial.buffer 0 total))
      | _ -> if filled then Ok Pending else Ok Duplicate
    end

let expire t ~now =
  let stale =
    Hashtbl.fold
      (fun key partial acc ->
        if now -. partial.arrived_at > t.timeout then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale;
  List.length stale

let pending t = Hashtbl.length t.table
