(** IPv4 fragmentation and reassembly (RFC 791 / RFC 815).

    Demultiplexing needs the TCP header, and the TCP header is only in
    the first fragment — so a receiving system reassembles before it
    demultiplexes.  This module provides both directions: splitting a
    datagram to fit an MTU, and the hole-filling reassembly algorithm
    of RFC 815 keyed by (source, destination, protocol,
    identification).

    Overlapping fragments are accepted with later data overwriting
    earlier (the classic BSD behaviour). *)

(** {1 Fragmentation} *)

val fragment : Ipv4.t -> payload:string -> mtu:int -> (Ipv4.t * string) list
(** Split a datagram so every fragment's total size (20-byte header +
    piece) is at most [mtu].  Fragment payload sizes are multiples of
    8 except the last; all fragments carry the original header's
    identification.  A datagram that already fits is returned intact.
    @raise Invalid_argument if [mtu < 28] (no room for even one
    8-byte piece), if the header has [dont_fragment] set and the
    payload does not fit, or if [payload] length disagrees with the
    header. *)

(** {1 Reassembly} *)

type t

val create : ?timeout:float -> ?max_pending:int -> unit -> t
(** [timeout] is the reassembly-timer lifetime in seconds (default
    30, cf. the classic 15-60 s range); [max_pending] bounds
    simultaneous partial datagrams (default 64) — beyond it the oldest
    partial datagram is dropped.
    @raise Invalid_argument on non-positive arguments. *)

type outcome =
  | Complete of Ipv4.t * string
      (** Fully reassembled: a header with fragmentation cleared and
          the whole payload. *)
  | Pending                     (** More fragments needed. *)
  | Duplicate                   (** Datagram already fully delivered or
                                    fragment adds nothing new. *)

val push : t -> now:float -> Ipv4.t -> string -> (outcome, string) result
(** Feed one fragment (or whole datagram) observed at time [now].
    Errors are malformed fragments: payload length mismatch,
    non-multiple-of-8 offset on a non-final piece, total size
    overflowing 65535 bytes. *)

val expire : t -> now:float -> int
(** Drop partial datagrams older than the timeout; returns how many. *)

val pending : t -> int
(** Partial datagrams currently buffered. *)
