type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

let no_flags =
  { fin = false; syn = false; rst = false; psh = false; ack = false;
    urg = false }

let flag_syn = { no_flags with syn = true }
let flag_ack = { no_flags with ack = true }
let flag_syn_ack = { no_flags with syn = true; ack = true }
let flag_fin_ack = { no_flags with fin = true; ack = true }
let flag_psh_ack = { no_flags with psh = true; ack = true }
let flag_rst = { no_flags with rst = true }

let flags_to_int f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)
  lor if f.urg then 0x20 else 0

let flags_of_int bits =
  { fin = bits land 0x01 <> 0;
    syn = bits land 0x02 <> 0;
    rst = bits land 0x04 <> 0;
    psh = bits land 0x08 <> 0;
    ack = bits land 0x10 <> 0;
    urg = bits land 0x20 <> 0 }

let pp_flags ppf f =
  let letters =
    List.filter_map
      (fun (set, c) -> if set then Some c else None)
      [ (f.syn, 'S'); (f.fin, 'F'); (f.rst, 'R'); (f.psh, 'P'); (f.ack, '.');
        (f.urg, 'U') ]
  in
  if letters = [] then Format.pp_print_string ppf "none"
  else List.iter (Format.pp_print_char ppf) letters

type option_ =
  | Mss of int
  | Window_scale of int
  | Sack_permitted
  | Timestamps of { value : int32; echo : int32 }
  | Nop
  | Unknown of { kind : int; payload : string }

let pp_option ppf = function
  | Mss v -> Format.fprintf ppf "mss %d" v
  | Window_scale v -> Format.fprintf ppf "wscale %d" v
  | Sack_permitted -> Format.pp_print_string ppf "sackOK"
  | Timestamps { value; echo } ->
    Format.fprintf ppf "TS val %ld ecr %ld" value echo
  | Nop -> Format.pp_print_string ppf "nop"
  | Unknown { kind; payload } ->
    Format.fprintf ppf "opt-%d[%d]" kind (String.length payload)

let option_wire_length = function
  | Mss _ -> 4
  | Window_scale _ -> 3
  | Sack_permitted -> 2
  | Timestamps _ -> 10
  | Nop -> 1
  | Unknown { payload; _ } -> 2 + String.length payload

let round_up4 n = (n + 3) land lnot 3

let options_length options =
  round_up4 (List.fold_left (fun acc o -> acc + option_wire_length o) 0 options)

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_number : int32;
  flags : flags;
  window : int;
  urgent : int;
  options : option_ list;
}

let header_length t = 20 + options_length t.options

let make ?(seq = 0l) ?(ack_number = 0l) ?(flags = no_flags) ?(window = 65535)
    ?(urgent = 0) ?(options = []) ~src_port ~dst_port () =
  let check_u16 name v =
    if v < 0 || v > 0xFFFF then
      invalid_arg (Printf.sprintf "Tcp_header.make: %s out of range" name)
  in
  check_u16 "src_port" src_port;
  check_u16 "dst_port" dst_port;
  check_u16 "window" window;
  check_u16 "urgent" urgent;
  if options_length options > 40 then
    invalid_arg "Tcp_header.make: options exceed 40 bytes";
  { src_port; dst_port; seq; ack_number; flags; window; urgent; options }

let write_option buf off = function
  | Mss v ->
    Bytes.set_uint8 buf off 2;
    Bytes.set_uint8 buf (off + 1) 4;
    Bytes.set_uint16_be buf (off + 2) v;
    off + 4
  | Window_scale v ->
    Bytes.set_uint8 buf off 3;
    Bytes.set_uint8 buf (off + 1) 3;
    Bytes.set_uint8 buf (off + 2) v;
    off + 3
  | Sack_permitted ->
    Bytes.set_uint8 buf off 4;
    Bytes.set_uint8 buf (off + 1) 2;
    off + 2
  | Timestamps { value; echo } ->
    Bytes.set_uint8 buf off 8;
    Bytes.set_uint8 buf (off + 1) 10;
    Bytes.set_int32_be buf (off + 2) value;
    Bytes.set_int32_be buf (off + 6) echo;
    off + 10
  | Nop ->
    Bytes.set_uint8 buf off 1;
    off + 1
  | Unknown { kind; payload } ->
    Bytes.set_uint8 buf off kind;
    Bytes.set_uint8 buf (off + 1) (2 + String.length payload);
    Bytes.blit_string payload 0 buf (off + 2) (String.length payload);
    off + 2 + String.length payload

let serialize t ?pseudo_sum ?(payload = "") buf ~off =
  let hlen = header_length t in
  let total = hlen + String.length payload in
  if off < 0 || off + total > Bytes.length buf then
    invalid_arg "Tcp_header.serialize: buffer too small";
  Bytes.set_uint16_be buf off t.src_port;
  Bytes.set_uint16_be buf (off + 2) t.dst_port;
  Bytes.set_int32_be buf (off + 4) t.seq;
  Bytes.set_int32_be buf (off + 8) t.ack_number;
  Bytes.set_uint8 buf (off + 12) ((hlen / 4) lsl 4);
  Bytes.set_uint8 buf (off + 13) (flags_to_int t.flags);
  Bytes.set_uint16_be buf (off + 14) t.window;
  Bytes.set_uint16_be buf (off + 16) 0 (* checksum placeholder *);
  Bytes.set_uint16_be buf (off + 18) t.urgent;
  let opt_end = List.fold_left (fun o opt -> write_option buf o opt)
      (off + 20) t.options
  in
  (* End-of-list padding out to the 4-byte boundary. *)
  for i = opt_end to off + hlen - 1 do
    Bytes.set_uint8 buf i 0
  done;
  Bytes.blit_string payload 0 buf (off + hlen) (String.length payload);
  (match pseudo_sum with
  | None -> ()
  | Some initial ->
    let csum = Checksum.compute ~initial buf ~off ~len:total in
    Bytes.set_uint16_be buf (off + 16) csum);
  total

let parse_options buf ~off ~stop =
  let rec loop acc off =
    if off >= stop then Ok (List.rev acc)
    else
      match Bytes.get_uint8 buf off with
      | 0 -> Ok (List.rev acc) (* end of option list *)
      | 1 -> loop (Nop :: acc) (off + 1)
      | kind ->
        if off + 1 >= stop then Error "tcp: truncated option"
        else
          let olen = Bytes.get_uint8 buf (off + 1) in
          if olen < 2 || off + olen > stop then Error "tcp: bad option length"
          else
            let opt =
              match (kind, olen) with
              | 2, 4 -> Mss (Bytes.get_uint16_be buf (off + 2))
              | 3, 3 -> Window_scale (Bytes.get_uint8 buf (off + 2))
              | 4, 2 -> Sack_permitted
              | 8, 10 ->
                Timestamps
                  { value = Bytes.get_int32_be buf (off + 2);
                    echo = Bytes.get_int32_be buf (off + 6) }
              | _ ->
                Unknown
                  { kind; payload = Bytes.sub_string buf (off + 2) (olen - 2) }
            in
            loop (opt :: acc) (off + olen)
  in
  loop [] off

let parse ?pseudo_sum ?len buf ~off =
  let buf_len = Bytes.length buf in
  let len = match len with Some l -> l | None -> buf_len - off in
  if off < 0 || len < 0 || off + len > buf_len then Error "tcp: bad region"
  else if len < 20 then Error "tcp: truncated header"
  else
    let data_offset = (Bytes.get_uint8 buf (off + 12) lsr 4) * 4 in
    if data_offset < 20 then Error "tcp: data offset below 20"
    else if data_offset > len then Error "tcp: data offset beyond segment"
    else
      let checksum_ok =
        match pseudo_sum with
        | None -> true
        | Some initial -> Checksum.verify ~initial buf ~off ~len
      in
      if not checksum_ok then Error "tcp: checksum mismatch"
      else
        match parse_options buf ~off:(off + 20) ~stop:(off + data_offset) with
        | Error _ as e -> e
        | Ok options ->
          let t =
            { src_port = Bytes.get_uint16_be buf off;
              dst_port = Bytes.get_uint16_be buf (off + 2);
              seq = Bytes.get_int32_be buf (off + 4);
              ack_number = Bytes.get_int32_be buf (off + 8);
              flags = flags_of_int (Bytes.get_uint8 buf (off + 13));
              window = Bytes.get_uint16_be buf (off + 14);
              urgent = Bytes.get_uint16_be buf (off + 18);
              options }
          in
          Ok (t, off + data_offset)

let pp ppf t =
  Format.fprintf ppf "@[<h>%d > %d flags=%a seq=%ld ack=%ld win=%d" t.src_port
    t.dst_port pp_flags t.flags t.seq t.ack_number t.window;
  if t.options <> [] then begin
    Format.fprintf ppf " opts=[";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_option ppf t.options;
    Format.fprintf ppf "]"
  end;
  Format.fprintf ppf "@]"
