(** TCP segment headers (RFC 793), including the option kinds a
    1992-era stack would meet plus RFC 1323 timestamps. *)

type flags = {
  fin : bool;
  syn : bool;
  rst : bool;
  psh : bool;
  ack : bool;
  urg : bool;
}

val no_flags : flags
val flag_syn : flags
val flag_ack : flags
val flag_syn_ack : flags
val flag_fin_ack : flags
val flag_psh_ack : flags
val flag_rst : flags
val pp_flags : Format.formatter -> flags -> unit

type option_ =
  | Mss of int                     (** Maximum segment size. *)
  | Window_scale of int            (** RFC 1323 shift count. *)
  | Sack_permitted
  | Timestamps of { value : int32; echo : int32 }  (** RFC 1323. *)
  | Nop
  | Unknown of { kind : int; payload : string }

val pp_option : Format.formatter -> option_ -> unit

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_number : int32;
  flags : flags;
  window : int;
  urgent : int;
  options : option_ list;
}

val make :
  ?seq:int32 -> ?ack_number:int32 -> ?flags:flags -> ?window:int ->
  ?urgent:int -> ?options:option_ list -> src_port:int -> dst_port:int ->
  unit -> t
(** Defaults: zero sequence numbers, {!no_flags}, window 65535, no
    urgent data, no options.
    @raise Invalid_argument if a port or field is out of range or the
    options exceed 40 bytes. *)

val options_length : option_ list -> int
(** Serialized size of the option block, padded to a 4-byte multiple. *)

val header_length : t -> int
(** 20 bytes plus padded options. *)

val serialize : t -> ?pseudo_sum:int -> ?payload:string -> bytes -> off:int -> int
(** [serialize t ~pseudo_sum ~payload buf ~off] writes the header then
    [payload] at [off] and returns the number of bytes written.  When
    [pseudo_sum] (from {!Ipv4.pseudo_header_sum}) is given the TCP
    checksum is computed over header, payload and pseudo-header;
    otherwise the checksum field is left zero.
    @raise Invalid_argument if the buffer is too small. *)

val parse :
  ?pseudo_sum:int -> ?len:int -> bytes -> off:int ->
  (t * int, string) result
(** Parse a header at [off] within a segment of [len] bytes (default:
    to the end of the buffer); returns the header and payload offset.
    When [pseudo_sum] is given the checksum is verified and mismatches
    are rejected. *)

val pp : Format.formatter -> t -> unit
