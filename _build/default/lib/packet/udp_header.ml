type t = {
  src_port : int;
  dst_port : int;
  payload_length : int;
}

let header_length = 8

let make ~src_port ~dst_port ~payload_length =
  let check_port name p =
    if p < 0 || p > 0xFFFF then
      invalid_arg (Printf.sprintf "Udp_header.make: %s out of range" name)
  in
  check_port "src_port" src_port;
  check_port "dst_port" dst_port;
  if payload_length < 0 || payload_length + header_length > 0xFFFF then
    invalid_arg "Udp_header.make: payload_length out of range";
  { src_port; dst_port; payload_length }

let serialize t ?pseudo_sum ?(payload = "") buf ~off =
  if String.length payload <> t.payload_length then
    invalid_arg "Udp_header.serialize: payload length mismatch";
  let total = header_length + t.payload_length in
  if off < 0 || off + total > Bytes.length buf then
    invalid_arg "Udp_header.serialize: buffer too small";
  Bytes.set_uint16_be buf off t.src_port;
  Bytes.set_uint16_be buf (off + 2) t.dst_port;
  Bytes.set_uint16_be buf (off + 4) total;
  Bytes.set_uint16_be buf (off + 6) 0;
  Bytes.blit_string payload 0 buf (off + header_length) t.payload_length;
  (match pseudo_sum with
  | None -> ()
  | Some initial ->
    let csum = Checksum.compute ~initial buf ~off ~len:total in
    (* RFC 768: a computed zero is sent as all-ones; on-wire zero is
       reserved for "no checksum". *)
    Bytes.set_uint16_be buf (off + 6) (if csum = 0 then 0xFFFF else csum));
  total

let parse ?pseudo_sum buf ~off =
  let buf_len = Bytes.length buf in
  if off < 0 || off + header_length > buf_len then
    Error "udp: truncated header"
  else
    let total = Bytes.get_uint16_be buf (off + 4) in
    if total < header_length then Error "udp: length below header size"
    else if off + total > buf_len then Error "udp: truncated payload"
    else
      let wire_checksum = Bytes.get_uint16_be buf (off + 6) in
      let checksum_ok =
        match pseudo_sum with
        | None -> true
        | Some _ when wire_checksum = 0 -> true (* sender disabled it *)
        | Some initial -> Checksum.verify ~initial buf ~off ~len:total
      in
      if not checksum_ok then Error "udp: checksum mismatch"
      else
        Ok
          ( { src_port = Bytes.get_uint16_be buf off;
              dst_port = Bytes.get_uint16_be buf (off + 2);
              payload_length = total - header_length },
            off + header_length )

let flow (ip : Ipv4.t) t =
  Flow.v
    ~local:(Flow.endpoint ip.Ipv4.dst t.dst_port)
    ~remote:(Flow.endpoint ip.Ipv4.src t.src_port)

let pp ppf t =
  Format.fprintf ppf "udp %d > %d len=%d" t.src_port t.dst_port
    t.payload_length
