(** UDP headers (RFC 768).

    Partridge and Pink's send/receive cache was proposed for UDP ("A
    faster UDP"); demultiplexing UDP uses the same 96-bit key, so the
    lookup algorithms apply unchanged.  The checksum is optional in
    UDP: an on-wire zero means "not computed", and a computed checksum
    that comes out zero is transmitted as 0xFFFF. *)

type t = {
  src_port : int;
  dst_port : int;
  payload_length : int;  (** Bytes following the 8-byte header. *)
}

val header_length : int
(** 8 bytes. *)

val make : src_port:int -> dst_port:int -> payload_length:int -> t
(** @raise Invalid_argument if a port is out of range or the length
    exceeds what the 16-bit length field can carry. *)

val serialize :
  t -> ?pseudo_sum:int -> ?payload:string -> bytes -> off:int -> int
(** Write the header then [payload] at [off]; returns bytes written.
    With [pseudo_sum] (from {!Ipv4.pseudo_header_sum}) the checksum is
    computed (zero result transmitted as 0xFFFF, per RFC 768);
    without it the checksum field is zero ("not computed").
    @raise Invalid_argument if the buffer is too small or [payload]
    length disagrees with [t.payload_length]. *)

val parse : ?pseudo_sum:int -> bytes -> off:int -> (t * int, string) result
(** Parse at [off]; returns the header and the payload offset.  When
    [pseudo_sum] is given, the checksum is verified unless the wire
    field is zero (checksum disabled by the sender). *)

val flow : Ipv4.t -> t -> Flow.t
(** The receiver-side flow key of a UDP datagram, same convention as
    {!Flow.of_headers}. *)

val pp : Format.formatter -> t -> unit
