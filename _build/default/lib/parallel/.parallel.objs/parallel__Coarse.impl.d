lib/parallel/coarse.ml: Demux Fun Mutex
