lib/parallel/coarse.mli: Demux Packet
