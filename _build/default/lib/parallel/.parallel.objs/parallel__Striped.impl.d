lib/parallel/striped.ml: Array Atomic Demux Fun Hashing Mutex Packet
