lib/parallel/striped.mli: Demux Hashing Packet
