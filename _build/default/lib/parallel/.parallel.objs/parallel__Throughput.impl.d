lib/parallel/throughput.ml: Array Coarse Demux Domain Format Hashing List Packet Printf Striped Unix Worker_rng
