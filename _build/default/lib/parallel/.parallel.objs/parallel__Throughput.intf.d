lib/parallel/throughput.mli: Format
