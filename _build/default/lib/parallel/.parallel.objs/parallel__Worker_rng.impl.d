lib/parallel/worker_rng.ml: Int64
