lib/parallel/worker_rng.mli:
