type 'a t = { mutex : Mutex.t; demux : 'a Demux.Registry.t }

let create spec = { mutex = Mutex.create (); demux = Demux.Registry.create spec }
let name t = "coarse:" ^ t.demux.Demux.Registry.name

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let insert t flow data = locked t (fun () -> t.demux.Demux.Registry.insert flow data)
let remove t flow = locked t (fun () -> t.demux.Demux.Registry.remove flow)

let lookup t ?kind flow =
  locked t (fun () -> t.demux.Demux.Registry.lookup ?kind flow)

let note_send t flow = locked t (fun () -> t.demux.Demux.Registry.note_send flow)
let length t = locked t (fun () -> t.demux.Demux.Registry.length ())

let stats t =
  locked t (fun () -> Demux.Lookup_stats.snapshot t.demux.Demux.Registry.stats)
