type 'a stripe = {
  mutex : Mutex.t;
  chain : 'a Demux.Chain.t;
  index : 'a Demux.Chain.node Demux.Flow_table.t;
  mutable cache : 'a Demux.Chain.node option;
  stats : Demux.Lookup_stats.t;
}

type 'a t = {
  stripes : 'a stripe array;
  hasher : Hashing.Hashers.t;
  next_id : int Atomic.t;
  population : int Atomic.t;
}

let create ?(chains = Demux.Sequent.default_chains)
    ?(hasher = Hashing.Hashers.multiplicative) () =
  if chains <= 0 then invalid_arg "Striped.create: chains <= 0";
  { stripes =
      Array.init chains (fun _ ->
          { mutex = Mutex.create (); chain = Demux.Chain.create ();
            index = Demux.Flow_table.create 16; cache = None;
            stats = Demux.Lookup_stats.create () });
    hasher; next_id = Atomic.make 0; population = Atomic.make 0 }

let chains t = Array.length t.stripes

let stripe_of_flow t flow =
  t.stripes.(Hashing.Hashers.bucket t.hasher ~buckets:(Array.length t.stripes)
                (Packet.Flow.to_key_bytes flow))

let with_stripe stripe f =
  Mutex.lock stripe.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock stripe.mutex) f

let insert t flow data =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () ->
      if Demux.Flow_table.mem stripe.index flow then
        invalid_arg "Striped.insert: duplicate flow";
      let id = Atomic.fetch_and_add t.next_id 1 in
      let pcb = Demux.Pcb.make ~id ~flow data in
      let node = Demux.Chain.push_front stripe.chain pcb in
      Demux.Flow_table.replace stripe.index flow node;
      Demux.Lookup_stats.note_insert stripe.stats;
      Atomic.incr t.population;
      pcb)

let remove t flow =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () ->
      match Demux.Flow_table.find_opt stripe.index flow with
      | None -> None
      | Some node ->
        (match stripe.cache with
        | Some cached when cached == node -> stripe.cache <- None
        | Some _ | None -> ());
        Demux.Chain.remove stripe.chain node;
        Demux.Flow_table.remove stripe.index flow;
        Demux.Lookup_stats.note_remove stripe.stats;
        Atomic.decr t.population;
        Some (Demux.Chain.pcb node))

let cache_probe stripe flow =
  match stripe.cache with
  | None -> None
  | Some node ->
    Demux.Lookup_stats.examine stripe.stats ();
    if Demux.Pcb.matches (Demux.Chain.pcb node) flow then Some node else None

let lookup t ?kind:_ flow =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () ->
      Demux.Lookup_stats.begin_lookup stripe.stats;
      match cache_probe stripe flow with
      | Some node ->
        let pcb = Demux.Chain.pcb node in
        Demux.Pcb.note_rx pcb;
        Demux.Lookup_stats.end_lookup stripe.stats ~hit_cache:true ~found:true;
        Some pcb
      | None -> (
        match Demux.Chain.scan stripe.chain ~stats:stripe.stats flow with
        | Some node ->
          stripe.cache <- Some node;
          let pcb = Demux.Chain.pcb node in
          Demux.Pcb.note_rx pcb;
          Demux.Lookup_stats.end_lookup stripe.stats ~hit_cache:false
            ~found:true;
          Some pcb
        | None ->
          Demux.Lookup_stats.end_lookup stripe.stats ~hit_cache:false
            ~found:false;
          None))

let note_send t flow =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () ->
      match Demux.Flow_table.find_opt stripe.index flow with
      | Some node -> Demux.Pcb.note_tx (Demux.Chain.pcb node)
      | None -> ())

let length t = Atomic.get t.population

let stats t =
  Demux.Lookup_stats.merge_snapshots
    (Array.to_list
       (Array.map
          (fun stripe ->
            with_stripe stripe (fun () ->
                Demux.Lookup_stats.snapshot stripe.stats))
          t.stripes))
