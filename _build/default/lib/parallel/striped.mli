(** Lock-striped Sequent demultiplexer for multicore receivers.

    The paper's context was Sequent's {e parallel} TCP for the PTX
    operating system [Dov90, Gar90]: many processors service inbound
    packets concurrently, so the PCB structure needs locking — and a
    single list under a single lock serialises everything.  Hash
    chains give more than short scans: each chain (plus its one-entry
    cache) can carry {e its own lock}, and packets for different
    connections proceed in parallel with probability [1 - 1/H].  This
    module is that design: the Sequent algorithm with one mutex per
    chain.

    All operations are safe to call from any domain.  Statistics are
    kept per stripe and merged on read, so the hot path never shares a
    counter across stripes. *)

type 'a t

val create : ?chains:int -> ?hasher:Hashing.Hashers.t -> unit -> 'a t
(** Defaults: 19 chains, multiplicative hashing (matching
    {!Demux.Sequent.create}).
    @raise Invalid_argument if [chains <= 0]. *)

val chains : 'a t -> int

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Demux.Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Demux.Pcb.t option

val lookup :
  'a t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t ->
  'a Demux.Pcb.t option
(** Receive-path lookup under the stripe's lock, charging one PCB
    examined per cache probe / chain node compared, as everywhere in
    this library. *)

val note_send : 'a t -> Packet.Flow.t -> unit
val length : 'a t -> int

val stats : 'a t -> Demux.Lookup_stats.snapshot
(** Merged across stripes.  Consistent only when quiescent (reading
    while other domains mutate gives an approximate snapshot). *)
