(** Multicore lookup-throughput measurement.

    Pre-populates a thread-safe demultiplexer with [connections]
    flows, then spawns [domains] OCaml domains that each perform
    [lookups_per_domain] receive-path lookups over a pseudo-random
    per-domain flow sequence, and reports aggregate throughput.  This
    is the experiment behind the paper's parallel-TCP motivation: with
    a single lock, adding processors adds nothing; with per-chain
    locks, throughput scales until chains collide. *)

type target = Coarse_bsd | Coarse_sequent of int | Striped_sequent of int

val target_name : target -> string

type result = {
  target : string;
  domains : int;
  total_lookups : int;
  elapsed_seconds : float;
  lookups_per_second : float;
}

val run :
  ?connections:int -> ?lookups_per_domain:int -> ?seed:int -> domains:int ->
  target -> result
(** Defaults: 2000 connections, 200_000 lookups per domain, seed 42.
    @raise Invalid_argument if [domains <= 0]. *)

val scaling_table :
  ?connections:int -> ?lookups_per_domain:int -> domains:int list ->
  target list -> result list
(** Run every (target, domain-count) pair, in order. *)

val pp_results : Format.formatter -> result list -> unit
