type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)
