(** Minimal per-domain PRNG (splitmix64).

    Each benchmark domain owns one instance, so no generator state is
    ever shared across domains.  Kept local to this library to avoid a
    dependency edge just for a stream of indices. *)

type t

val create : int -> t
val next : t -> int
(** Next non-negative pseudo-random int (62 bits). *)
