lib/report/ascii_plot.ml: Analysis Array Buffer Float List Printf String
