lib/report/ascii_plot.mli: Analysis
