lib/report/csv.ml: Analysis Array Buffer List Printf String
