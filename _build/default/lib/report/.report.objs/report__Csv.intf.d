lib/report/csv.mli: Analysis
