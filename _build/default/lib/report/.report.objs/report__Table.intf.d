lib/report/table.mli:
