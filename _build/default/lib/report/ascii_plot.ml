type config = { width : int; height : int }

let default_config = { width = 72; height = 20 }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let bounds series =
  let xmin = ref Float.infinity and xmax = ref Float.neg_infinity in
  let ymin = ref Float.infinity and ymax = ref Float.neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        s.Analysis.Comparison.points)
    series;
  (!xmin, !xmax, !ymin, !ymax)

let render ?(config = default_config) ?title series =
  let has_points =
    List.exists (fun s -> Array.length s.Analysis.Comparison.points > 0) series
  in
  if not has_points then "(no data to plot)\n"
  else begin
    let xmin, xmax, ymin, ymax = bounds series in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix config.height config.width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            let column =
              int_of_float
                ((x -. xmin) /. xspan *. float_of_int (config.width - 1))
            in
            let row =
              config.height - 1
              - int_of_float
                  ((y -. ymin) /. yspan *. float_of_int (config.height - 1))
            in
            if row >= 0 && row < config.height && column >= 0
               && column < config.width
            then grid.(row).(column) <- glyph)
          s.Analysis.Comparison.points)
      series;
    let buf = Buffer.create 4096 in
    (match title with
    | Some text ->
      Buffer.add_string buf text;
      Buffer.add_char buf '\n'
    | None -> ());
    let ylabel_width = 10 in
    Array.iteri
      (fun i row ->
        let label =
          if i = 0 then Printf.sprintf "%*.4g" ylabel_width ymax
          else if i = config.height - 1 then
            Printf.sprintf "%*.4g" ylabel_width ymin
          else String.make ylabel_width ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make ylabel_width ' ');
    Buffer.add_string buf " +";
    Buffer.add_string buf (String.make config.width '-');
    Buffer.add_char buf '\n';
    let xmin_label = Printf.sprintf "%.4g" xmin in
    let xmax_label = Printf.sprintf "%.4g" xmax in
    let gap =
      max 1 (config.width - String.length xmin_label - String.length xmax_label)
    in
    Buffer.add_string buf
      (Printf.sprintf "%*s %s%s%s\n" ylabel_width "" xmin_label
         (String.make gap ' ') xmax_label);
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n"
             glyphs.(si mod Array.length glyphs)
             s.Analysis.Comparison.label))
      series;
    Buffer.contents buf
  end

let print ?config ?title series = print_string (render ?config ?title series)
