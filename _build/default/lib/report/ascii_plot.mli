(** Terminal line plots, for eyeballing the paper's figures without
    leaving the shell.  Each series gets a distinct glyph; axes are
    labelled with min/max; overlapping points show the
    last-plotted series' glyph. *)

type config = {
  width : int;    (** Plot-area columns (default 72). *)
  height : int;   (** Plot-area rows (default 20). *)
}

val default_config : config

val render :
  ?config:config -> ?title:string -> Analysis.Comparison.series list -> string
(** Render series to a multi-line string with legend.  Empty input or
    empty series produce a short placeholder message. *)

val print :
  ?config:config -> ?title:string -> Analysis.Comparison.series list -> unit
