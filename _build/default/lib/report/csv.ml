let escape field =
  let needs_quoting =
    String.exists (function '"' | ',' | '\n' | '\r' -> true | _ -> false) field
  in
  if not needs_quoting then field
  else
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf

let write_rows oc rows =
  List.iter
    (fun row ->
      output_string oc (String.concat "," (List.map escape row));
      output_char oc '\n')
    rows

let series_rows (series : Analysis.Comparison.series list) =
  match series with
  | [] -> []
  | first :: rest ->
    let n = Array.length first.Analysis.Comparison.points in
    List.iter
      (fun s ->
        if Array.length s.Analysis.Comparison.points <> n then
          invalid_arg "Csv.write_series: series lengths differ";
        Array.iteri
          (fun i (x, _) ->
            if fst first.Analysis.Comparison.points.(i) <> x then
              invalid_arg "Csv.write_series: series x grids differ")
          s.Analysis.Comparison.points)
      rest;
    let header =
      "x" :: List.map (fun s -> s.Analysis.Comparison.label) series
    in
    let rows =
      List.init n (fun i ->
          let x = fst first.Analysis.Comparison.points.(i) in
          Printf.sprintf "%g" x
          :: List.map
               (fun s ->
                 Printf.sprintf "%g" (snd s.Analysis.Comparison.points.(i)))
               series)
    in
    header :: rows

let write_series oc series = write_rows oc (series_rows series)

let series_to_string series =
  String.concat "\n"
    (List.map
       (fun row -> String.concat "," (List.map escape row))
       (series_rows series))
  ^ "\n"
