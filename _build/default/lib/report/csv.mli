(** CSV output for figure series and tables (RFC 4180 quoting). *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val write_rows : out_channel -> string list list -> unit

val write_series : out_channel -> Analysis.Comparison.series list -> unit
(** Column layout: x, then one column per series label.  All series
    must share the same x grid.
    @raise Invalid_argument if the grids differ. *)

val series_to_string : Analysis.Comparison.series list -> string
