type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

let pad align width cell =
  let gap = width - String.length cell in
  if gap <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell

let render ~columns rows =
  let ncols = List.length columns in
  let normalize row =
    let n = List.length row in
    if n > ncols then invalid_arg "Table.render: row wider than header"
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length c.title) rows)
      columns
  in
  let render_row cells =
    String.concat "  "
      (List.map2
         (fun (c, w) cell -> pad c.align w cell)
         (List.combine columns widths)
         cells)
  in
  let header = render_row (List.map (fun c -> c.title) columns) in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row rows) ^ "\n"

let print ~columns rows = print_string (render ~columns rows)

let float_cell ?(decimals = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v
