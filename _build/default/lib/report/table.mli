(** Aligned plain-text tables for experiment output. *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column
(** Default alignment: [Right] (numbers dominate our tables). *)

val render : columns:column list -> string list list -> string
(** Lay out rows under the given headers; column widths fit the widest
    cell.  Rows shorter than the header list are padded with empty
    cells; longer rows raise.
    @raise Invalid_argument if a row has more cells than columns. *)

val print : columns:column list -> string list list -> unit
(** [render] to stdout. *)

val float_cell : ?decimals:int -> float -> string
(** Format a float for a table cell (default 2 decimals; NaN prints
    as ["-"]). *)
