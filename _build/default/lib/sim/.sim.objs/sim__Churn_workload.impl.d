lib/sim/churn_workload.ml: Demux Engine Meter Numerics Report Topology
