lib/sim/churn_workload.mli: Demux Numerics Report
