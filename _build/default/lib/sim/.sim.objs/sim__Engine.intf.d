lib/sim/engine.mli:
