lib/sim/locality_workload.ml: Array Demux Meter Numerics Report Topology
