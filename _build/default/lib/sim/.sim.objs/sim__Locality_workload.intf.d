lib/sim/locality_workload.mli: Demux Numerics Report
