lib/sim/meter.ml: Demux Numerics Packet Printf
