lib/sim/meter.mli: Demux Numerics Packet
