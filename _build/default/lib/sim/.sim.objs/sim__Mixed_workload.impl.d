lib/sim/mixed_workload.ml: Array Demux Engine Format List Meter Numerics Report Topology
