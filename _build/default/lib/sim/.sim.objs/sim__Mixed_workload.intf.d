lib/sim/mixed_workload.mli: Demux Format Report
