lib/sim/polling_workload.ml: Numerics Report Tpca_workload
