lib/sim/polling_workload.mli: Demux Report
