lib/sim/report.ml: Demux Format List Meter Numerics
