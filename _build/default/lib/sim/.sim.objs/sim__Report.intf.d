lib/sim/report.mli: Format Meter
