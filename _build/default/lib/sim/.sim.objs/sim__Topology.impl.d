lib/sim/topology.ml: Array Packet
