lib/sim/topology.mli: Packet
