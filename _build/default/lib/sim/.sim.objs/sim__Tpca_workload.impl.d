lib/sim/tpca_workload.ml: Analysis Array Demux Engine Meter Numerics Report Topology
