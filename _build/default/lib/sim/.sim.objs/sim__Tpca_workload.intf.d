lib/sim/tpca_workload.mli: Analysis Demux Numerics Report
