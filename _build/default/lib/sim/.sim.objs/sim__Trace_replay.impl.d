lib/sim/trace_replay.ml: Demux Float Fun List Meter Packet Report String
