lib/sim/trace_replay.mli: Demux Packet Report Stdlib
