lib/sim/trains_workload.ml: Array Demux Meter Numerics Report Topology
