lib/sim/trains_workload.mli: Demux Numerics Report
