lib/sim/validate.ml: Analysis Demux Float Format List Report Tpca_workload
