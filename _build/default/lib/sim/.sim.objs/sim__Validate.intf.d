lib/sim/validate.mli: Analysis Demux Format Tpca_workload
