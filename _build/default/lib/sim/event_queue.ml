type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity t =
  let capacity = Array.length t.heap in
  if t.size >= capacity then begin
    let dummy = t.heap.(0) in
    let grown = Array.make (max 16 (2 * capacity)) dummy in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && earlier t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.size && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then begin
    t.heap <- Array.make 16 entry;
    t.size <- 1
  end
  else begin
    ensure_capacity t;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  t.heap <- [||];
  t.size <- 0
