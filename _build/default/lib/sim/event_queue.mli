(** Priority queue of timestamped events (binary min-heap).

    Ties are broken by insertion order so simulations are
    deterministic: two events scheduled for the same instant fire in
    the order they were scheduled. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
