(** Per-packet-kind measurement wrapper around a demultiplexer.

    {!Demux.Lookup_stats} aggregates over all lookups; the paper's
    analysis distinguishes transaction entries from response
    acknowledgements, so this wrapper additionally records each
    lookup's examined count into a per-kind accumulator by diffing the
    aggregate counter around the call.  Measurement can be switched
    off during simulation warm-up. *)

type t

val create : unit Demux.Registry.t -> t
val demux : t -> unit Demux.Registry.t

val set_measuring : t -> bool -> unit
(** Lookups still happen while off (the data structure must stay
    warm); they are just not recorded. *)

val start_measuring : t -> unit
(** Reset the demultiplexer's aggregate statistics and the per-kind
    accumulators, then switch measurement on — the end-of-warm-up
    action. *)

val lookup : t -> kind:Demux.Types.packet_kind -> Packet.Flow.t -> unit
(** Perform a metered receive-path lookup.
    @raise Failure if the flow has no PCB (a simulation bug: OLTP
    connections are long-lived). *)

val note_send : t -> Packet.Flow.t -> unit

val entry_examined : t -> Numerics.Stats.t
(** Per-lookup examined counts for {!Demux.Types.Data} packets. *)

val ack_examined : t -> Numerics.Stats.t
(** Same for {!Demux.Types.Pure_ack} packets. *)
