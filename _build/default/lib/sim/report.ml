type t = {
  algorithm : string;
  workload : string;
  packets : int;
  overall_mean : float;
  entry_mean : float;
  ack_mean : float;
  overall_ci95 : float;
  hit_rate : float;
  max_examined : int;
}

let of_meter ~workload meter =
  let demux = Meter.demux meter in
  let snapshot = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  let entry = Meter.entry_examined meter and ack = Meter.ack_examined meter in
  let combined = Numerics.Stats.merge entry ack in
  { algorithm = demux.Demux.Registry.name; workload;
    packets = Numerics.Stats.count combined;
    overall_mean = Numerics.Stats.mean combined;
    entry_mean = Numerics.Stats.mean entry;
    ack_mean = Numerics.Stats.mean ack;
    overall_ci95 = Numerics.Stats.confidence_95 combined;
    hit_rate = Demux.Lookup_stats.hit_rate snapshot;
    max_examined = snapshot.Demux.Lookup_stats.max_examined }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s on %s: %d packets@,\
     PCBs examined/packet: %.2f (+/- %.2f), entry %.2f, ack %.2f@,\
     cache hit rate %.4f, worst lookup %d@]"
    t.algorithm t.workload t.packets t.overall_mean t.overall_ci95
    t.entry_mean t.ack_mean t.hit_rate t.max_examined

let pp_table ppf reports =
  Format.fprintf ppf "%-16s %10s %10s %10s %10s %9s %6s@."
    "algorithm" "packets" "mean" "entry" "ack" "hit-rate" "max";
  List.iter
    (fun t ->
      Format.fprintf ppf "%-16s %10d %10.2f %10.2f %10.2f %9.4f %6d@."
        t.algorithm t.packets t.overall_mean t.entry_mean t.ack_mean
        t.hit_rate t.max_examined)
    reports
