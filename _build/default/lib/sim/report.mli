(** Workload run results. *)

type t = {
  algorithm : string;
  workload : string;
  packets : int;            (** Metered receive-path lookups. *)
  overall_mean : float;     (** PCBs examined per packet — the paper's
                                figure of merit. *)
  entry_mean : float;       (** Data-packet lookups only; [nan] if none. *)
  ack_mean : float;         (** Pure-ack lookups only; [nan] if none. *)
  overall_ci95 : float;     (** 95 % confidence half-width on
                                [overall_mean]. *)
  hit_rate : float;         (** One-entry-cache hit rate; 0 for
                                algorithms without caches. *)
  max_examined : int;
}

val of_meter : workload:string -> Meter.t -> t
(** Summarise a finished run. *)

val pp : Format.formatter -> t -> unit

val pp_table : Format.formatter -> t list -> unit
(** Aligned comparison table, one row per report. *)
