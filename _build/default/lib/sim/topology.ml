let server =
  Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888

let client i =
  if i < 0 || i >= 1 lsl 24 then
    invalid_arg "Topology.client: index out of range";
  let addr =
    Packet.Ipv4.addr_of_octets 10
      ((i lsr 16) land 0xFF)
      ((i lsr 8) land 0xFF)
      (i land 0xFF)
  in
  (* Vary the port too so keys exercise all 96 bits. *)
  Packet.Flow.endpoint addr (1024 + (i * 7 mod 60000))

let flow_of_client i = Packet.Flow.v ~local:server ~remote:(client i)
let flows n = Array.init n flow_of_client
