(** Address assignment for simulated client populations.

    One server endpoint; client [i] gets a unique address derived from
    its index, so all flows are distinct and deterministic across
    runs. *)

val server : Packet.Flow.endpoint
(** 192.168.1.1:8888 — the OLTP database server. *)

val client : int -> Packet.Flow.endpoint
(** [client i] for [i >= 0]; injective for [i < 2^24].
    @raise Invalid_argument outside that range. *)

val flow_of_client : int -> Packet.Flow.t
(** The server-side flow for client [i]'s connection
    (local = {!server}, remote = [client i]). *)

val flows : int -> Packet.Flow.t array
(** [flows n] is [Array.init n flow_of_client]. *)
