lib/tcpcore/conn_table.ml: Demux Hashtbl Packet
