lib/tcpcore/conn_table.mli: Demux Packet
