lib/tcpcore/stack.ml: Conn_table Demux Hashing Int32 List Logs Packet Printf State String Timer_wheel
