lib/tcpcore/stack.mli: Demux Logs Packet State
