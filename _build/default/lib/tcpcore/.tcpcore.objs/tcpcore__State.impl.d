lib/tcpcore/state.ml: Format List
