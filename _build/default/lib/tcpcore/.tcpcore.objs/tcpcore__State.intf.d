lib/tcpcore/state.mli: Format
