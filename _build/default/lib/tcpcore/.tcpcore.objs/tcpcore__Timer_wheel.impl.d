lib/tcpcore/timer_wheel.ml: Array Float Hashtbl Int List
