lib/tcpcore/timer_wheel.mli:
