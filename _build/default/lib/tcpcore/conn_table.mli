(** Two-level connection lookup, the shape real stacks use: a full
    4-tuple demultiplexer (any algorithm from {!Demux.Registry}) for
    established connections, falling back to a listener table for SYNs
    to listening sockets.

    Listener matching follows BSD's [in_pcblookup] wildcard rules: a
    listener bound to a specific local address beats one bound to the
    wildcard address on the same port; both beat no match. *)

type ('conn, 'listener) t

val create : Demux.Registry.spec -> ('conn, 'listener) t

val demux : ('conn, 'listener) t -> 'conn Demux.Registry.t
(** The underlying 4-tuple demultiplexer (e.g. for statistics). *)

val listen :
  ?addr:Packet.Ipv4.addr -> ('conn, 'listener) t -> port:int -> 'listener ->
  unit
(** Register a listener on a local port; without [addr] it accepts the
    port on any local address (a wildcard bind).
    @raise Invalid_argument if the port is out of range or that
    (address, port) binding already has a listener. *)

val unlisten : ?addr:Packet.Ipv4.addr -> ('conn, 'listener) t -> port:int -> unit

val listener :
  ?addr:Packet.Ipv4.addr -> ('conn, 'listener) t -> port:int ->
  'listener option
(** The listener an inbound SYN to (addr, port) would reach: the
    address-specific binding if present, else the wildcard one.
    Without [addr], only the wildcard binding is consulted. *)

val add_connection :
  ('conn, 'listener) t -> Packet.Flow.t -> 'conn -> 'conn Demux.Pcb.t
(** @raise Invalid_argument if the flow already has a connection. *)

val remove_connection : ('conn, 'listener) t -> Packet.Flow.t -> bool

type ('conn, 'listener) result =
  | Connection of 'conn Demux.Pcb.t
  | Listener of 'listener
  | No_match

val lookup :
  ('conn, 'listener) t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t ->
  ('conn, 'listener) result
(** Full receive-path lookup: 4-tuple first (metered by the demux
    algorithm), then address-specific listener, then wildcard
    listener. *)

val note_send : ('conn, 'listener) t -> Packet.Flow.t -> unit
val connections : ('conn, 'listener) t -> int
