type t =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN-SENT"
  | Syn_received -> "SYN-RECEIVED"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN-WAIT-1"
  | Fin_wait_2 -> "FIN-WAIT-2"
  | Close_wait -> "CLOSE-WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST-ACK"
  | Time_wait -> "TIME-WAIT"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal (a : t) b = a = b

let all =
  [ Closed; Listen; Syn_sent; Syn_received; Established; Fin_wait_1;
    Fin_wait_2; Close_wait; Closing; Last_ack; Time_wait ]

type event =
  | Passive_open
  | Active_open
  | Close
  | Rcv_syn
  | Rcv_syn_ack
  | Rcv_ack
  | Rcv_fin
  | Rcv_fin_ack
  | Rcv_rst
  | Time_wait_expired

let pp_event ppf event =
  Format.pp_print_string ppf
    (match event with
    | Passive_open -> "passive-open"
    | Active_open -> "active-open"
    | Close -> "close"
    | Rcv_syn -> "rcv-syn"
    | Rcv_syn_ack -> "rcv-syn-ack"
    | Rcv_ack -> "rcv-ack"
    | Rcv_fin -> "rcv-fin"
    | Rcv_fin_ack -> "rcv-fin-ack"
    | Rcv_rst -> "rcv-rst"
    | Time_wait_expired -> "time-wait-expired")

(* The RFC 793 state diagram (Figure 6 of the RFC).  A reset tears any
   non-CLOSED state down; undefined pairs return None. *)
let transition state event =
  match (state, event) with
  | Closed, Passive_open -> Some Listen
  | Closed, Active_open -> Some Syn_sent
  | Listen, Rcv_syn -> Some Syn_received
  | Listen, Close -> Some Closed
  | Syn_sent, Rcv_syn_ack -> Some Established
  | Syn_sent, Rcv_syn -> Some Syn_received (* simultaneous open *)
  | Syn_sent, Close -> Some Closed
  | Syn_received, Rcv_ack -> Some Established
  | Syn_received, Close -> Some Fin_wait_1
  | Established, Close -> Some Fin_wait_1
  | Established, Rcv_fin -> Some Close_wait
  | Fin_wait_1, Rcv_ack -> Some Fin_wait_2
  | Fin_wait_1, Rcv_fin -> Some Closing (* simultaneous close *)
  | Fin_wait_1, Rcv_fin_ack -> Some Time_wait
  | Fin_wait_2, Rcv_fin -> Some Time_wait
  | Close_wait, Close -> Some Last_ack
  | Closing, Rcv_ack -> Some Time_wait
  | Last_ack, Rcv_ack -> Some Closed
  | Time_wait, Time_wait_expired -> Some Closed
  | Closed, Rcv_rst -> None
  | ( ( Listen | Syn_sent | Syn_received | Established | Fin_wait_1
      | Fin_wait_2 | Close_wait | Closing | Last_ack | Time_wait ),
      Rcv_rst ) ->
    Some Closed
  | ( ( Closed | Listen | Syn_sent | Syn_received | Established | Fin_wait_1
      | Fin_wait_2 | Close_wait | Closing | Last_ack | Time_wait ),
      ( Passive_open | Active_open | Close | Rcv_syn | Rcv_syn_ack | Rcv_ack
      | Rcv_fin | Rcv_fin_ack | Time_wait_expired ) ) ->
    None

let is_synchronized = function
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
  | Time_wait ->
    true
  | Closed | Listen | Syn_sent | Syn_received -> false

let all_events =
  [ Passive_open; Active_open; Close; Rcv_syn; Rcv_syn_ack; Rcv_ack; Rcv_fin;
    Rcv_fin_ack; Rcv_rst; Time_wait_expired ]

let valid_events state =
  List.filter (fun event -> transition state event <> None) all_events
