(** The RFC 793 TCP connection state machine.

    Only state-transition logic lives here — no buffers, timers or
    sequence numbers — so it can be tested exhaustively as a pure
    function.  Retransmission and congestion control are out of scope
    for this library (the paper's demultiplexing question is upstream
    of both). *)

type t =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val all : t list
(** Every state, for exhaustive tests. *)

(** Stimuli that drive transitions: segment arrivals (classified by
    flags) and local application calls. *)
type event =
  | Passive_open          (** Application listens. *)
  | Active_open           (** Application connects (sends SYN). *)
  | Close                 (** Application closes (sends FIN). *)
  | Rcv_syn
  | Rcv_syn_ack
  | Rcv_ack               (** Acceptable ACK of our SYN or FIN. *)
  | Rcv_fin
  | Rcv_fin_ack           (** FIN carrying the ACK of our FIN. *)
  | Rcv_rst
  | Time_wait_expired

val pp_event : Format.formatter -> event -> unit

val transition : t -> event -> t option
(** [transition state event] is the successor state, or [None] when
    RFC 793 defines no transition (the segment would be dropped or
    answered with RST at the segment layer). *)

val is_synchronized : t -> bool
(** True from [Established] onward — states where data may flow. *)

val valid_events : t -> event list
(** Events with a defined transition out of [t], for property tests. *)
