test/test_analysis.ml: Alcotest Analysis Array Float List Printf QCheck QCheck_alcotest
