test/test_demux.ml: Alcotest Array Demux Float Hashing Int List Numerics Packet Printf QCheck QCheck_alcotest Set Sim String
