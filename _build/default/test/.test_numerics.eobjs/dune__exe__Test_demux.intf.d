test/test_demux.mli:
