test/test_hashing.ml: Alcotest Array Bytes Gen Hashing Int64 List QCheck QCheck_alcotest Sim
