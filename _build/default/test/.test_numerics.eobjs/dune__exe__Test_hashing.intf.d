test/test_hashing.mli:
