test/test_integration.ml: Alcotest Analysis Array Demux Filename Float Fun Hashing Int32 List Numerics Packet Printf QCheck QCheck_alcotest Report Sim String Sys Tcpcore
