test/test_ipv6.ml: Alcotest Array Bytes Gen Hashing List Numerics Packet Printf QCheck QCheck_alcotest Set String
