test/test_ipv6.mli:
