test/test_numerics.ml: Alcotest Array Float Fun Gen List Numerics Printf QCheck QCheck_alcotest
