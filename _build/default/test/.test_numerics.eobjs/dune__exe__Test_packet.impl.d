test/test_packet.ml: Alcotest Array Buffer Bytes Char Demux Filename Fun Gen Hashing Int32 List Numerics Packet Printf QCheck QCheck_alcotest String Sys
