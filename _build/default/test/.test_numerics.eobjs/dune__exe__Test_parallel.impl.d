test/test_parallel.ml: Alcotest Array Atomic Demux Domain Hashing List Numerics Packet Parallel Sim
