test/test_sim.ml: Alcotest Analysis Array Bytes Demux Float Fun Gen Hashing List Numerics Packet Printf QCheck QCheck_alcotest Set Sim
