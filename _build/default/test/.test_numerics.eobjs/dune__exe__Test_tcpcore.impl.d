test/test_tcpcore.ml: Alcotest Array Buffer Bytes Demux Format Gen Int32 List Packet Printf QCheck QCheck_alcotest String Tcpcore
