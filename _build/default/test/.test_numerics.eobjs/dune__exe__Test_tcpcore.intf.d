test/test_tcpcore.mli:
