(* Tests for the analytic models: every number the paper quotes, the
   closed-form/quadrature identities, and the qualitative shapes of
   Figures 4, 13 and 14. *)

let check_rel ?(tol = 1e-9) what expected actual =
  let err =
    if expected = 0.0 then Float.abs actual
    else Float.abs ((actual -. expected) /. expected)
  in
  if err > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g (rel err %.3g)" what expected
      actual err

(* Paper tolerance: quoted values are rounded to integers. *)
let check_paper what paper actual =
  if Float.abs (actual -. paper) > 0.5 +. (paper *. 0.002) then
    Alcotest.failf "%s: paper says %.1f, we compute %.3f" what paper actual

let default = Analysis.Tpca_params.default
let params ?(users = 2000) ?(r = 0.2) ?(d = 0.001) () =
  Analysis.Tpca_params.v ~users ~response_time:r ~rtt:d ()

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)

let test_params_defaults () =
  Alcotest.(check int) "users" 2000 default.Analysis.Tpca_params.users;
  check_rel "think mean" 10.0 (Analysis.Tpca_params.think_time_mean default);
  check_rel "think cutoff" 100.0
    (Analysis.Tpca_params.think_time_cutoff default);
  Alcotest.(check int) "packets/txn at server" 2
    Analysis.Tpca_params.server_packets_per_transaction

let test_params_validation () =
  Alcotest.check_raises "negative users"
    (Invalid_argument "Tpca_params.v: negative users") (fun () ->
      ignore (Analysis.Tpca_params.v ~users:(-1) ()));
  Alcotest.check_raises "zero rate" (Invalid_argument "Tpca_params.v: rate <= 0")
    (fun () -> ignore (Analysis.Tpca_params.v ~users:10 ~rate:0.0 ()))

(* ------------------------------------------------------------------ *)
(* BSD (E2, E3)                                                        *)

let test_bsd_paper_values () =
  check_paper "E2: BSD cost at N=2000" 1001.0 (Analysis.Bsd_model.cost default);
  check_rel "hit rate 1/N" 0.0005 (Analysis.Bsd_model.hit_rate default);
  (* E3: the paper's printed '1.9 x 10-3' is 1.9e-35 (see DESIGN.md). *)
  let train = Analysis.Bsd_model.train_probability default in
  Alcotest.(check bool)
    (Printf.sprintf "E3 train probability %.3g in [1.5e-35, 2.5e-35]" train)
    true
    (train > 1.5e-35 && train < 2.5e-35)

let test_bsd_asymptote () =
  (* Approaches N/2 for large N. *)
  let p = params ~users:100_000 () in
  check_rel ~tol:1e-3 "N/2 asymptote" 50_000.5 (Analysis.Bsd_model.cost p)

let test_bsd_small_n () =
  (* One connection: cache probe always hits after the first packet;
     the formula gives 1 + 0 = 1. *)
  check_rel "N=1" 1.0 (Analysis.Bsd_model.cost (params ~users:1 ()))

(* ------------------------------------------------------------------ *)
(* MTF (E1, E4, E5, E6, E15)                                           *)

let test_expected_preceding_shape () =
  let p = default in
  check_rel "N(0) = 0" 0.0 (Analysis.Mtf_model.expected_preceding p 0.0);
  (* Figure 4 rises to N-1. *)
  let at_50 = Analysis.Mtf_model.expected_preceding p 50.0 in
  Alcotest.(check bool) "N(50) ~ 1985" true (at_50 > 1980.0 && at_50 < 1999.0);
  let at_10 = Analysis.Mtf_model.expected_preceding p 10.0 in
  check_rel ~tol:1e-6 "N(10) = 1999(1-e^-1)" (1999.0 *. (1.0 -. Float.exp (-1.0))) at_10;
  (* Monotone increasing. *)
  let previous = ref (-1.0) in
  for i = 0 to 50 do
    let v = Analysis.Mtf_model.expected_preceding p (float_of_int i) in
    if v < !previous then Alcotest.failf "N(T) not monotone at %d" i;
    previous := v
  done

let test_equation3_sum_equals_closed_form () =
  List.iter
    (fun (users, t) ->
      let p = params ~users () in
      check_rel ~tol:1e-8
        (Printf.sprintf "Eq 3 sum = closed form (N=%d, T=%g)" users t)
        (Analysis.Mtf_model.expected_preceding p t)
        (Analysis.Mtf_model.expected_preceding_sum p t))
    [ (10, 1.0); (100, 5.0); (2000, 10.0); (2000, 0.1); (5000, 30.0) ]

let test_mtf_paper_values () =
  List.iter2
    (fun (paper_entry, paper_ack, paper_overall) r ->
      let p = params ~r () in
      check_paper
        (Printf.sprintf "E4 entry R=%g" r)
        paper_entry (Analysis.Mtf_model.entry_cost p);
      check_paper
        (Printf.sprintf "E5 ack R=%g" r)
        paper_ack (Analysis.Mtf_model.ack_cost p);
      check_paper
        (Printf.sprintf "E6 overall R=%g" r)
        paper_overall
        (Analysis.Mtf_model.overall_cost p))
    [ (1019.0, 78.0, 549.0); (1045.0, 190.0, 618.0); (1086.0, 362.0, 724.0);
      (1150.0, 659.0, 904.0) ]
    [ 0.2; 0.5; 1.0; 2.0 ]

let test_mtf_entry_closed_form_vs_quadrature () =
  List.iter
    (fun (users, r) ->
      let p = params ~users ~r () in
      check_rel ~tol:1e-6
        (Printf.sprintf "Eq 5 quadrature (N=%d R=%g)" users r)
        (Analysis.Mtf_model.entry_cost p)
        (Analysis.Mtf_model.entry_cost_quadrature p))
    [ (2000, 0.2); (2000, 2.0); (100, 0.5); (5000, 1.0) ]

let test_mtf_worse_than_bsd_on_entry () =
  (* The paper: entry performance is somewhat worse than BSD's 1001. *)
  let p = default in
  Alcotest.(check bool) "entry > BSD" true
    (Analysis.Mtf_model.entry_cost p > Analysis.Bsd_model.cost p);
  Alcotest.(check bool) "overall < BSD" true
    (Analysis.Mtf_model.overall_cost p < Analysis.Bsd_model.cost p)

let test_mtf_deterministic_worst_case () =
  check_rel "E15 deterministic think" 2000.0
    (Analysis.Mtf_model.entry_cost_deterministic default)

(* ------------------------------------------------------------------ *)
(* SR cache (E7)                                                       *)

let test_srcache_paper_values () =
  List.iter2
    (fun paper d ->
      check_paper
        (Printf.sprintf "E7 overall D=%gms" (d *. 1000.0))
        paper
        (Analysis.Srcache_model.overall_cost (params ~d ())))
    [ 667.0; 993.0; 1002.0 ]
    [ 0.001; 0.010; 0.100 ]

let test_srcache_closed_forms_vs_quadrature () =
  List.iter
    (fun (users, r, d) ->
      let p = params ~users ~r ~d () in
      check_rel ~tol:1e-6
        (Printf.sprintf "Eq 11 (N=%d R=%g D=%g)" users r d)
        (Analysis.Srcache_model.transaction_cost_long_think p)
        (Analysis.Srcache_model.transaction_cost_long_think_quadrature p);
      check_rel ~tol:1e-5
        (Printf.sprintf "Eq 14 (N=%d R=%g D=%g)" users r d)
        (Analysis.Srcache_model.transaction_cost_short_think p)
        (Analysis.Srcache_model.transaction_cost_short_think_quadrature p))
    [ (2000, 0.2, 0.001); (2000, 0.2, 0.1); (500, 1.0, 0.01); (50, 0.5, 0.002) ]

let test_srcache_single_user () =
  (* N=1: the cache always holds the only PCB; cost 1 per packet. *)
  check_rel ~tol:1e-9 "N=1 costs 1" 1.0
    (Analysis.Srcache_model.overall_cost (params ~users:1 ()))

let test_srcache_approaches_miss_cost () =
  (* As N grows the scheme converges to the uncached-plus-probes cost
     (N+5)/2. *)
  let p = params ~users:50_000 ~d:0.05 () in
  check_rel ~tol:1e-2 "asymptote (N+5)/2" 25_002.5
    (Analysis.Srcache_model.overall_cost p)

let test_srcache_survival_probabilities () =
  let p = default in
  (* Survival decays with think time and is within [0,1]. *)
  let s1 = Analysis.Srcache_model.survival_probability_long_think p 1.0 in
  let s2 = Analysis.Srcache_model.survival_probability_long_think p 10.0 in
  Alcotest.(check bool) "decreasing" true (s2 < s1);
  Alcotest.(check bool) "bounded" true (s1 <= 1.0 && s2 >= 0.0)

(* ------------------------------------------------------------------ *)
(* Sequent (E8-E11)                                                    *)

let test_sequent_paper_values () =
  let p = default in
  (* E8: hit rate just over 0.95% at H=19. *)
  let hit = Analysis.Sequent_model.hit_rate p ~chains:19 in
  Alcotest.(check bool) "E8 hit rate" true (hit > 0.0094 && hit < 0.0096);
  (* E9: quiet probabilities ~1.5% and ~21%. *)
  let quiet19 = Analysis.Sequent_model.quiet_probability p ~chains:19 in
  let quiet51 = Analysis.Sequent_model.quiet_probability p ~chains:51 in
  Alcotest.(check bool)
    (Printf.sprintf "E9 quiet(19)=%.4f ~ 1.5%%" quiet19)
    true
    (quiet19 > 0.014 && quiet19 < 0.016);
  Alcotest.(check bool)
    (Printf.sprintf "E9 quiet(51)=%.4f ~ 21%%" quiet51)
    true
    (quiet51 > 0.20 && quiet51 < 0.23);
  (* E10: 53.0 refined vs 53.6 naive, >10% error at 51 chains. *)
  check_paper "E10 cost H=19" 53.0 (Analysis.Sequent_model.cost p ~chains:19);
  check_paper "E10 naive H=19" 53.6
    (Analysis.Sequent_model.cost_naive p ~chains:19);
  Alcotest.(check bool) "E10 naive error ~1% at 19" true
    (Analysis.Sequent_model.naive_error p ~chains:19 < 0.02);
  Alcotest.(check bool) "E10 naive error >10% at 51" true
    (Analysis.Sequent_model.naive_error p ~chains:51 > 0.10);
  (* E11: under 9 at H=100. *)
  let cost100 = Analysis.Sequent_model.cost p ~chains:100 in
  Alcotest.(check bool)
    (Printf.sprintf "E11 cost(100)=%.2f < 9" cost100)
    true (cost100 < 9.0)

let test_sequent_monotone_in_chains () =
  let p = default in
  let previous = ref Float.infinity in
  List.iter
    (fun chains ->
      let cost = Analysis.Sequent_model.cost p ~chains in
      if cost > !previous +. 1e-9 then
        Alcotest.failf "cost increased at H=%d" chains;
      previous := cost)
    [ 1; 2; 5; 10; 19; 51; 100; 500; 1000 ]

let test_sequent_h1_is_bsd () =
  (* One chain = BSD's structure; Equation 19 must give Equation 1. *)
  let p = default in
  check_rel "H=1 naive = BSD" (Analysis.Bsd_model.cost p)
    (Analysis.Sequent_model.cost_naive p ~chains:1)

let test_sequent_order_of_magnitude () =
  let p = default in
  let bsd = Analysis.Bsd_model.cost p in
  let sequent = Analysis.Sequent_model.cost p ~chains:19 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f / %.0f >= 10x" bsd sequent)
    true
    (bsd /. sequent >= 10.0)

let test_sequent_validation () =
  Alcotest.check_raises "0 chains" (Invalid_argument "Sequent_model: chains <= 0")
    (fun () -> ignore (Analysis.Sequent_model.cost default ~chains:0))

(* ------------------------------------------------------------------ *)
(* Figures (E1, E12, E13)                                              *)

let value_at series x =
  let _, y =
    Array.to_list series.Analysis.Comparison.points
    |> List.find (fun (px, _) -> px = x)
  in
  y

let test_figure4_series () =
  let series = Analysis.Comparison.figure4 () in
  Alcotest.(check int) "201 points" 201 (Array.length series.Analysis.Comparison.points);
  let x0, y0 = series.Analysis.Comparison.points.(0) in
  Alcotest.(check (float 1e-9)) "starts at origin x" 0.0 x0;
  Alcotest.(check (float 1e-9)) "starts at origin y" 0.0 y0;
  let _, y_end = series.Analysis.Comparison.points.(200) in
  Alcotest.(check bool) "approaches 1999" true (y_end > 1980.0 && y_end <= 1999.0)

let test_figure13_series () =
  let series = Analysis.Comparison.figure13 () in
  Alcotest.(check int) "six curves" 6 (List.length series);
  let labels = List.map (fun s -> s.Analysis.Comparison.label) series in
  List.iter
    (fun expected ->
      if not (List.mem expected labels) then
        Alcotest.failf "missing series %s" expected)
    [ "BSD"; "MTF 1.0"; "MTF 0.5"; "MTF 0.2"; "SR 1"; "SEQUENT" ];
  let bsd = List.find (fun s -> s.Analysis.Comparison.label = "BSD") series in
  let sequent =
    List.find (fun s -> s.Analysis.Comparison.label = "SEQUENT") series
  in
  let mtf02 =
    List.find (fun s -> s.Analysis.Comparison.label = "MTF 0.2") series
  in
  (* Paper shape at 10,000 users: BSD ~5000, Sequent ~260, MTF ~2720. *)
  let bsd_10k = value_at bsd 10000.0 in
  Alcotest.(check bool) "BSD ~ N/2" true (bsd_10k > 4990.0 && bsd_10k < 5010.0);
  let seq_10k = value_at sequent 10000.0 in
  Alcotest.(check bool) "Sequent ~ N/2H" true (seq_10k > 200.0 && seq_10k < 300.0);
  let mtf_10k = value_at mtf02 10000.0 in
  Alcotest.(check bool) "MTF in between" true
    (mtf_10k > seq_10k && mtf_10k < bsd_10k);
  (* Ordering holds across the whole sweep. *)
  Array.iteri
    (fun i (x, bsd_y) ->
      if x >= 1000.0 then begin
        let seq_y = snd sequent.Analysis.Comparison.points.(i) in
        if seq_y >= bsd_y then
          Alcotest.failf "sequent not below BSD at %g users" x
      end)
    bsd.Analysis.Comparison.points

let test_figure14_includes_sr10 () =
  let series = Analysis.Comparison.figure14 () in
  Alcotest.(check int) "seven curves" 7 (List.length series);
  Alcotest.(check bool) "has SR 10" true
    (List.exists (fun s -> s.Analysis.Comparison.label = "SR 10") series)

let test_sr_approaches_bsd_for_large_n () =
  (* Figure 13's story: SR asymptotically approaches BSD. *)
  let sr_small = Analysis.Srcache_model.overall_cost (params ~users:100 ()) in
  let bsd_small = Analysis.Bsd_model.cost (params ~users:100 ()) in
  Alcotest.(check bool) "SR wins when small" true (sr_small < bsd_small /. 1.5);
  let sr_big = Analysis.Srcache_model.overall_cost (params ~users:100_000 ()) in
  let bsd_big = Analysis.Bsd_model.cost (params ~users:100_000 ()) in
  Alcotest.(check bool) "SR ~ BSD when big" true
    (sr_big > bsd_big *. 0.95 && sr_big < bsd_big *. 1.05)

let test_mtf_improves_with_smaller_r () =
  (* Figure 13: MTF improves as the response time decreases. *)
  let costs =
    List.map (fun r -> Analysis.Mtf_model.overall_cost (params ~r ())) [ 0.2; 0.5; 1.0 ]
  in
  match costs with
  | [ c02; c05; c10 ] ->
    Alcotest.(check bool) "0.2 < 0.5 < 1.0" true (c02 < c05 && c05 < c10)
  | _ -> assert false

let test_tables () =
  let table = Analysis.Comparison.mtf_response_time_table [ 0.2; 2.0 ] in
  Alcotest.(check int) "rows" 2 (List.length table);
  let sweep = Analysis.Comparison.sequent_chain_sweep [ 19; 100 ] in
  (match sweep with
  | [ (19, cost19, naive19); (100, cost100, _) ] ->
    Alcotest.(check bool) "19 > 100" true (cost19 > cost100);
    Alcotest.(check bool) "naive above refined" true (naive19 > cost19)
  | _ -> Alcotest.fail "sweep shape")

(* ------------------------------------------------------------------ *)
(* Sensitivity and the hashed-MTF estimate                             *)

let test_chains_needed () =
  (* The paper's two sizing examples. *)
  Alcotest.(check int) "53 PCBs -> 19 chains" 19
    (Analysis.Sensitivity.chains_needed default ~target_cost:53.0);
  let for_9 = Analysis.Sensitivity.chains_needed default ~target_cost:9.0 in
  Alcotest.(check bool)
    (Printf.sprintf "9 PCBs -> ~100 chains (%d)" for_9)
    true
    (for_9 >= 90 && for_9 <= 110);
  (* Degenerate and boundary cases. *)
  Alcotest.(check int) "huge target -> 1 chain" 1
    (Analysis.Sensitivity.chains_needed default ~target_cost:10_000.0);
  Alcotest.check_raises "target below floor"
    (Invalid_argument "Sensitivity.chains_needed: target below the 1-PCB floor")
    (fun () ->
      ignore (Analysis.Sensitivity.chains_needed default ~target_cost:0.5));
  (* chains_needed is the tight bound: one fewer chain misses it. *)
  let h = Analysis.Sensitivity.chains_needed default ~target_cost:30.0 in
  Alcotest.(check bool) "tight" true
    (Analysis.Sequent_model.cost default ~chains:h <= 30.0
    && (h = 1 || Analysis.Sequent_model.cost default ~chains:(h - 1) > 30.0))

let test_sr_rejoins_bsd () =
  let n = Analysis.Sensitivity.sr_rejoins_bsd () in
  (* Before the crossover SR is still >5% better; after, within 5%. *)
  let ratio users =
    let p = params ~users () in
    Analysis.Srcache_model.overall_cost p /. Analysis.Bsd_model.cost p
  in
  Alcotest.(check bool) "after: within 5%" true (ratio n > 0.95);
  Alcotest.(check bool) "before: still ahead" true (ratio (n / 2) <= 0.95)

let test_mtf_sr_crossover () =
  match Analysis.Sensitivity.mtf_beats_sr_from () with
  | None -> Alcotest.fail "expected a crossover"
  | Some n ->
    let better users =
      let p = params ~users () in
      Analysis.Mtf_model.overall_cost p < Analysis.Srcache_model.overall_cost p
    in
    Alcotest.(check bool) "at n" true (better n);
    Alcotest.(check bool) "not just before" false (better (n - 1))

let test_gradients () =
  let g = Analysis.Sensitivity.cost_gradient_in_response_time default in
  check_rel ~tol:1e-6 "BSD insensitive to R" 0.0 (g `Bsd);
  Alcotest.(check bool) "MTF strongly sensitive" true (g `Mtf > 100.0);
  Alcotest.(check bool) "Sequent mildly sensitive" true
    (g (`Sequent 19) > 0.0 && g (`Sequent 19) < g `Mtf)

let test_sweep_2d () =
  let grid =
    Analysis.Sensitivity.sweep_2d ~users:[ 1000; 2000 ] ~chains:[ 19; 100 ]
  in
  Alcotest.(check int) "grid size" 4 (List.length grid);
  (* Row-major ordering and monotonicity along each axis. *)
  match grid with
  | [ (1000, 19, a); (1000, 100, b); (2000, 19, c); (2000, 100, d) ] ->
    Alcotest.(check bool) "more chains cheaper" true (b < a && d < c);
    Alcotest.(check bool) "more users dearer" true (c > a && d > b)
  | _ -> Alcotest.fail "unexpected grid layout"

let test_hashed_mtf_estimate () =
  (* The paper's factor-of-two bound: plain chains over the estimate
     stays below 2; and going 19 -> 100 chains beats the combination. *)
  let p = default in
  let bound = Analysis.Hashed_mtf_model.improvement_bound p ~chains:19 in
  Alcotest.(check bool)
    (Printf.sprintf "combination wins at most ~2x (%.2f)" bound)
    true
    (bound > 1.0 && bound < 2.2);
  let more_chains = Analysis.Sequent_model.cost p ~chains:100 in
  let combination = Analysis.Hashed_mtf_model.cost_estimate p ~chains:19 in
  Alcotest.(check bool)
    (Printf.sprintf "100 chains (%.1f) beat hashed-mtf-19 (%.1f)" more_chains
       combination)
    true
    (more_chains < combination)

(* ------------------------------------------------------------------ *)
(* LRU-K cache model (E24)                                             *)

let test_lru_model_k1_matches_bsd () =
  (* K = 1: entries pay 1 + (N+1)/2 like a BSD miss; acks almost never
     hit.  The model must land within a PCB of Equation 1. *)
  let model = Analysis.Lru_model.cost default ~entries:1 in
  let bsd = Analysis.Bsd_model.cost default in
  Alcotest.(check bool)
    (Printf.sprintf "K=1 model %.1f ~ BSD %.1f" model bsd)
    true
    (Float.abs (model -. bsd) < 2.0)

let test_lru_model_crossover () =
  (* lambda = 2a(R+D)(N-1) ~ 80 at the default point: the ack-hit
     probability must be ~0 well below lambda and ~1 well above. *)
  let low = Analysis.Lru_model.ack_hit_probability default ~entries:8 in
  let high = Analysis.Lru_model.ack_hit_probability default ~entries:160 in
  Alcotest.(check bool) "tiny below lambda" true (low < 0.01);
  Alcotest.(check bool) "near-certain above" true (high > 0.99);
  (* Monotone in K. *)
  let previous = ref 0.0 in
  List.iter
    (fun entries ->
      let p = Analysis.Lru_model.ack_hit_probability default ~entries in
      Alcotest.(check bool) "monotone" true (p >= !previous);
      previous := p)
    [ 1; 10; 40; 80; 120; 200 ]

let test_lru_model_floor () =
  (* Even the best K keeps the list an order of magnitude above the
     hashed chains. *)
  let _, best = Analysis.Lru_model.best_entries default ~max_entries:1024 in
  let sequent = Analysis.Sequent_model.cost default ~chains:19 in
  Alcotest.(check bool)
    (Printf.sprintf "best LRU %.0f >> sequent %.0f" best sequent)
    true
    (best > 5.0 *. sequent);
  Alcotest.check_raises "entries 0" (Invalid_argument "Lru_model: entries <= 0")
    (fun () -> ignore (Analysis.Lru_model.cost default ~entries:0))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let arbitrary_params =
  QCheck.make
    QCheck.Gen.(
      map
        (fun ((users, r), d) ->
          Analysis.Tpca_params.v ~users ~response_time:r ~rtt:d ())
        (pair (pair (int_range 2 5000) (float_range 0.05 2.0))
           (float_range 0.0005 0.1)))

let prop_costs_positive =
  QCheck.Test.make ~count:300 ~name:"all model costs are >= 1 PCB"
    arbitrary_params (fun p ->
      Analysis.Bsd_model.cost p >= 1.0
      && Analysis.Mtf_model.overall_cost p >= 0.0
      && Analysis.Srcache_model.overall_cost p >= 1.0 -. 1e-9
      && Analysis.Sequent_model.cost p ~chains:19 >= 0.5)

let prop_sequent_below_bsd =
  QCheck.Test.make ~count:300 ~name:"hashing never loses to BSD (H <= N)"
    arbitrary_params (fun p ->
      p.Analysis.Tpca_params.users < 19
      || Analysis.Sequent_model.cost p ~chains:19
         <= Analysis.Bsd_model.cost p +. 1e-9)

let prop_bsd_monotone_in_n =
  QCheck.Test.make ~count:300 ~name:"BSD cost monotone in N"
    QCheck.(pair (int_range 1 5000) (int_range 1 5000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Analysis.Bsd_model.cost (params ~users:lo ())
      <= Analysis.Bsd_model.cost (params ~users:hi ()) +. 1e-9)

let prop_entry_quadrature_agrees =
  QCheck.Test.make ~count:50 ~name:"Eq 5 closed form = quadrature"
    arbitrary_params (fun p ->
      let closed = Analysis.Mtf_model.entry_cost p in
      let quad = Analysis.Mtf_model.entry_cost_quadrature p in
      Float.abs (closed -. quad) <= 1e-5 *. (1.0 +. Float.abs closed))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_costs_positive; prop_sequent_below_bsd; prop_bsd_monotone_in_n;
      prop_entry_quadrature_agrees ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ( "params",
        [ Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "validation" `Quick test_params_validation ] );
      ( "bsd",
        [ Alcotest.test_case "paper values (E2, E3)" `Quick test_bsd_paper_values;
          Alcotest.test_case "N/2 asymptote" `Quick test_bsd_asymptote;
          Alcotest.test_case "N=1" `Quick test_bsd_small_n ] );
      ( "mtf",
        [ Alcotest.test_case "N(T) shape (E1)" `Quick test_expected_preceding_shape;
          Alcotest.test_case "Eq 3 sum = closed form" `Quick
            test_equation3_sum_equals_closed_form;
          Alcotest.test_case "paper values (E4-E6)" `Quick test_mtf_paper_values;
          Alcotest.test_case "Eq 5 vs quadrature" `Quick
            test_mtf_entry_closed_form_vs_quadrature;
          Alcotest.test_case "entry worse, overall better than BSD" `Quick
            test_mtf_worse_than_bsd_on_entry;
          Alcotest.test_case "deterministic worst case (E15)" `Quick
            test_mtf_deterministic_worst_case ] );
      ( "sr-cache",
        [ Alcotest.test_case "paper values (E7)" `Quick test_srcache_paper_values;
          Alcotest.test_case "Eq 11/14 vs quadrature" `Quick
            test_srcache_closed_forms_vs_quadrature;
          Alcotest.test_case "single user" `Quick test_srcache_single_user;
          Alcotest.test_case "asymptote" `Quick test_srcache_approaches_miss_cost;
          Alcotest.test_case "survival probabilities" `Quick
            test_srcache_survival_probabilities ] );
      ( "sequent",
        [ Alcotest.test_case "paper values (E8-E11)" `Quick
            test_sequent_paper_values;
          Alcotest.test_case "monotone in chains" `Quick
            test_sequent_monotone_in_chains;
          Alcotest.test_case "H=1 reduces to BSD" `Quick test_sequent_h1_is_bsd;
          Alcotest.test_case "order of magnitude (headline)" `Quick
            test_sequent_order_of_magnitude;
          Alcotest.test_case "validation" `Quick test_sequent_validation ] );
      ( "figures",
        [ Alcotest.test_case "figure 4 (E1)" `Quick test_figure4_series;
          Alcotest.test_case "figure 13 (E12)" `Quick test_figure13_series;
          Alcotest.test_case "figure 14 (E13)" `Quick test_figure14_includes_sr10;
          Alcotest.test_case "SR -> BSD for large N" `Quick
            test_sr_approaches_bsd_for_large_n;
          Alcotest.test_case "MTF improves with smaller R" `Quick
            test_mtf_improves_with_smaller_r;
          Alcotest.test_case "tables" `Quick test_tables ] );
      ( "sensitivity",
        [ Alcotest.test_case "chains needed" `Quick test_chains_needed;
          Alcotest.test_case "SR rejoins BSD" `Quick test_sr_rejoins_bsd;
          Alcotest.test_case "MTF/SR crossover" `Quick test_mtf_sr_crossover;
          Alcotest.test_case "gradients" `Quick test_gradients;
          Alcotest.test_case "2D sweep" `Quick test_sweep_2d;
          Alcotest.test_case "hashed-mtf estimate" `Quick
            test_hashed_mtf_estimate ] );
      ( "lru-model",
        [ Alcotest.test_case "K=1 matches BSD" `Quick test_lru_model_k1_matches_bsd;
          Alcotest.test_case "crossover at lambda" `Quick test_lru_model_crossover;
          Alcotest.test_case "floor vs hashing" `Quick test_lru_model_floor ] );
      ("properties", qcheck_cases) ]
