(* Cross-module integration tests: the paper's qualitative claims
   checked end-to-end — real packets, real stacks, real workloads —
   plus reporting round-trips. *)

let addr = Packet.Ipv4.addr_of_octets

(* ------------------------------------------------------------------ *)
(* The paper's headline ordering, measured on the real structures      *)

let test_algorithm_ordering_under_tpca () =
  (* At 500 users: BSD ~ 250, MTF and SR-cache in between, Sequent an
     order of magnitude below, conn-id at 1. *)
  let params = Analysis.Tpca_params.v ~users:500 () in
  let config = Sim.Tpca_workload.default_config ~duration:200.0 params in
  let run spec = (Sim.Tpca_workload.run config spec).Sim.Report.overall_mean in
  let bsd = run Demux.Registry.Bsd in
  let mtf = run Demux.Registry.Mtf in
  let sr = run Demux.Registry.Sr_cache in
  let sequent =
    run
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  let conn_id = run (Demux.Registry.Conn_id { capacity = 512 }) in
  Alcotest.(check bool)
    (Printf.sprintf "mtf %.0f < bsd %.0f" mtf bsd)
    true (mtf < bsd);
  Alcotest.(check bool)
    (Printf.sprintf "sr %.0f < bsd %.0f" sr bsd)
    true (sr < bsd);
  Alcotest.(check bool)
    (Printf.sprintf "sequent %.1f at least 10x below bsd %.0f" sequent bsd)
    true
    (sequent *. 10.0 < bsd);
  Alcotest.(check (float 0.01)) "conn-id is 1" 1.0 conn_id

let test_paper_operating_point () =
  (* The strongest regression anchor: the paper's own operating point,
     2000 users, R = 0.2 s, D = 1 ms.  Simulated means must stay
     within 3% of the quoted analytic values (BSD 1001, MTF 549,
     SR 667) and within 5% for Sequent (hash-occupancy sensitive). *)
  let params = Analysis.Tpca_params.default in
  let config = Sim.Tpca_workload.default_config ~duration:240.0 params in
  let check ?(tolerance = 0.03) spec paper =
    let report = Sim.Tpca_workload.run config spec in
    let ratio = report.Sim.Report.overall_mean /. paper in
    if Float.abs (ratio -. 1.0) > tolerance then
      Alcotest.failf "%s at paper scale: expected ~%.0f, simulated %.1f"
        report.Sim.Report.algorithm paper report.Sim.Report.overall_mean
  in
  check Demux.Registry.Bsd 1001.0;
  check Demux.Registry.Mtf 549.0;
  check Demux.Registry.Sr_cache 667.0;
  check ~tolerance:0.05
    (Demux.Registry.Sequent
       { chains = 19; hasher = Hashing.Hashers.multiplicative })
    53.0

let test_every_hash_supports_sequent () =
  (* The Sequent result must not hinge on one lucky hash function. *)
  let params = Analysis.Tpca_params.v ~users:300 () in
  let config = Sim.Tpca_workload.default_config ~duration:150.0 params in
  let bsd =
    (Sim.Tpca_workload.run config Demux.Registry.Bsd).Sim.Report.overall_mean
  in
  List.iter
    (fun hasher ->
      let report =
        Sim.Tpca_workload.run config
          (Demux.Registry.Sequent { chains = 19; hasher })
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.1f well below bsd %.1f"
           (Hashing.Hashers.name hasher)
           report.Sim.Report.overall_mean bsd)
        true
        (report.Sim.Report.overall_mean *. 5.0 < bsd))
    Hashing.Hashers.all

(* ------------------------------------------------------------------ *)
(* Wire-level OLTP through the stack on every algorithm                *)

let run_wire_oltp spec =
  let server_addr = addr 192 168 1 1 in
  let server = Tcpcore.Stack.create ~demux:spec ~local_addr:server_addr () in
  let answered = ref 0 in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun t conn payload ->
      incr answered;
      Tcpcore.Stack.send t conn ("OK:" ^ payload));
  let server_ep = Packet.Flow.endpoint server_addr 8888 in
  let clients = 40 in
  let client_ep i =
    Packet.Flow.endpoint (addr 10 0 0 (i + 1)) (3000 + i)
  in
  (* Handshakes via raw bytes. *)
  let server_seq = Array.make clients 0l in
  for i = 0 to clients - 1 do
    let syn =
      Packet.Segment.make ~src:(client_ep i) ~dst:server_ep
        ~flags:Packet.Tcp_header.flag_syn
        ~seq:(Int32.of_int (i * 1000))
        ()
    in
    (match Tcpcore.Stack.handle_bytes server (Packet.Segment.to_bytes syn) with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    match Tcpcore.Stack.poll_output server with
    | [ syn_ack ] ->
      Alcotest.(check bool) "syn-ack flags" true
        (syn_ack.Packet.Segment.tcp.Packet.Tcp_header.flags.Packet.Tcp_header.syn
        && syn_ack.Packet.Segment.tcp.Packet.Tcp_header.flags.Packet.Tcp_header.ack);
      server_seq.(i) <-
        Int32.add syn_ack.Packet.Segment.tcp.Packet.Tcp_header.seq 1l;
      let ack =
        Packet.Segment.make ~src:(client_ep i) ~dst:server_ep
          ~flags:Packet.Tcp_header.flag_ack
          ~seq:(Int32.of_int ((i * 1000) + 1))
          ~ack_number:server_seq.(i) ()
      in
      (match Tcpcore.Stack.handle_bytes server (Packet.Segment.to_bytes ack) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "no SYN-ACK"
  done;
  Alcotest.(check int) "all established" clients
    (Tcpcore.Stack.connection_count server);
  (* Interleaved queries, the anti-train pattern. *)
  let rng = Numerics.Rng.create ~seed:3 in
  let order = Array.init clients Fun.id in
  Numerics.Rng.shuffle rng order;
  Array.iter
    (fun i ->
      let query =
        Packet.Segment.make ~src:(client_ep i) ~dst:server_ep
          ~flags:Packet.Tcp_header.flag_psh_ack
          ~seq:(Int32.of_int ((i * 1000) + 1))
          ~ack_number:server_seq.(i) ~payload:(Printf.sprintf "TXN-%d" i) ()
      in
      match Tcpcore.Stack.handle_bytes server (Packet.Segment.to_bytes query) with
      | Ok () -> ignore (Tcpcore.Stack.poll_output server)
      | Error e -> Alcotest.fail e)
    order;
  Alcotest.(check int) "all queries answered" clients !answered;
  Alcotest.(check int) "no RSTs" 0 (Tcpcore.Stack.rsts_sent server);
  Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats server)

let test_wire_oltp_all_algorithms () =
  let specs =
    Demux.Registry.
      [ Linear; Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
        Hashed_mtf { chains = 19; hasher = Hashing.Hashers.multiplicative };
        Conn_id { capacity = 64 }; Resizing_hash ]
  in
  let costs =
    List.map
      (fun spec ->
        let s = run_wire_oltp spec in
        ( Demux.Registry.spec_name spec,
          Demux.Lookup_stats.mean_examined s ))
      specs
  in
  (* Same functional outcome everywhere; hashed structures cheaper than
     the single list even at 40 connections. *)
  let cost name = List.assoc name costs in
  Alcotest.(check bool)
    (Printf.sprintf "sequent %.2f < linear %.2f" (cost "sequent-19")
       (cost "linear"))
    true
    (cost "sequent-19" < cost "linear")

(* ------------------------------------------------------------------ *)
(* Reporting round-trips                                               *)

let test_csv_of_figures () =
  let series = Analysis.Comparison.figure13 () in
  let csv = Report.Csv.series_to_string series in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* Header + 101 sweep points. *)
  Alcotest.(check int) "lines" 102 (List.length lines);
  (match lines with
  | header :: _ ->
    Alcotest.(check bool) "header has BSD" true
      (String.length header >= 3
      && String.split_on_char ',' header |> List.mem "BSD")
  | [] -> Alcotest.fail "empty csv");
  (* Every data row has the same arity as the header. *)
  let arity line = List.length (String.split_on_char ',' line) in
  match lines with
  | header :: rows ->
    List.iter
      (fun row_line ->
        Alcotest.(check int) "arity" (arity header) (arity row_line))
      rows
  | [] -> ()

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Report.Csv.escape "a\nb")

let test_csv_rejects_mismatched_series () =
  let a = { Analysis.Comparison.label = "a"; points = [| (0.0, 1.0) |] } in
  let b =
    { Analysis.Comparison.label = "b"; points = [| (0.0, 1.0); (1.0, 2.0) |] }
  in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Csv.write_series: series lengths differ") (fun () ->
      ignore (Report.Csv.series_to_string [ a; b ]))

let test_table_rendering () =
  let rendered =
    Report.Table.render
      ~columns:
        Report.Table.[ column ~align:Left "name"; column "value" ]
      [ [ "alpha"; "1.00" ]; [ "beta-long-name"; "123.45" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim rendered) in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  (* All rows equally wide. *)
  (match lines with
  | first :: rest ->
    List.iter
      (fun line ->
        Alcotest.(check int) "width" (String.length first) (String.length line))
      rest
  | [] -> ());
  Alcotest.check_raises "row too wide"
    (Invalid_argument "Table.render: row wider than header") (fun () ->
      ignore
        (Report.Table.render
           ~columns:[ Report.Table.column "only" ]
           [ [ "a"; "b" ] ]))

let test_float_cell () =
  Alcotest.(check string) "two decimals" "3.14" (Report.Table.float_cell 3.14159);
  Alcotest.(check string) "nan" "-" (Report.Table.float_cell Float.nan);
  Alcotest.(check string) "decimals" "3.1416"
    (Report.Table.float_cell ~decimals:4 3.14159)

let test_ascii_plot_renders () =
  let series = [ Analysis.Comparison.figure4 () ] in
  let plot = Report.Ascii_plot.render ~title:"test" series in
  Alcotest.(check bool) "has title" true
    (String.length plot > 0 && String.sub plot 0 4 = "test");
  Alcotest.(check bool) "has glyphs" true (String.contains plot '*');
  Alcotest.(check string) "empty input" "(no data to plot)\n"
    (Report.Ascii_plot.render [])

(* ------------------------------------------------------------------ *)
(* Full trace pipeline: stack -> pcap -> parse -> demux                *)

let test_trace_pipeline () =
  let path = Filename.temp_file "tcpdemux_integration" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let server_addr = addr 192 168 1 1 in
      let server = Tcpcore.Stack.create ~local_addr:server_addr () in
      Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> ());
      let server_ep = Packet.Flow.endpoint server_addr 8888 in
      let oc = open_out_bin path in
      let writer = Packet.Pcap.create_writer oc in
      let time = ref 0.0 in
      for i = 0 to 9 do
        let syn =
          Packet.Segment.make
            ~src:(Packet.Flow.endpoint (addr 10 0 0 (i + 1)) (4000 + i))
            ~dst:server_ep ~flags:Packet.Tcp_header.flag_syn ()
        in
        let bytes = Packet.Segment.to_bytes syn in
        time := !time +. 0.01;
        Packet.Pcap.write_packet writer ~time:!time bytes;
        match Tcpcore.Stack.handle_bytes server bytes with
        | Ok () ->
          List.iter
            (fun reply ->
              time := !time +. 0.001;
              Packet.Pcap.write_packet writer ~time:!time
                (Packet.Segment.to_bytes reply))
            (Tcpcore.Stack.poll_output server)
        | Error e -> Alcotest.fail e
      done;
      close_out oc;
      let ic = open_in_bin path in
      let records =
        match Packet.Pcap.read_all ic with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      close_in ic;
      Alcotest.(check int) "20 packets traced" 20 (List.length records);
      (* Timestamps monotone; every record parses with valid checksums. *)
      let last = ref 0.0 in
      List.iter
        (fun record ->
          Alcotest.(check bool) "monotone time" true
            (record.Packet.Pcap.time >= !last);
          last := record.Packet.Pcap.time;
          match Packet.Segment.parse record.Packet.Pcap.data ~off:0 with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e)
        records)

(* ------------------------------------------------------------------ *)
(* Analysis <-> simulation property                                    *)

let prop_sim_tracks_model_for_bsd =
  (* For random small populations, the simulated BSD cost lands within
     15% of Equation 1. *)
  QCheck.Test.make ~count:8 ~name:"simulated BSD within 15% of Eq 1"
    QCheck.(int_range 50 300)
    (fun users ->
      let params = Analysis.Tpca_params.v ~users () in
      let config = Sim.Tpca_workload.default_config ~duration:250.0 params in
      let report = Sim.Tpca_workload.run config Demux.Registry.Bsd in
      let ratio =
        report.Sim.Report.overall_mean /. Analysis.Bsd_model.cost params
      in
      ratio > 0.85 && ratio < 1.15)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_sim_tracks_model_for_bsd ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "integration"
    [ ( "paper-claims",
        [ Alcotest.test_case "paper operating point (N=2000)" `Slow
            test_paper_operating_point;
          Alcotest.test_case "algorithm ordering (headline)" `Slow
            test_algorithm_ordering_under_tpca;
          Alcotest.test_case "robust across hashes" `Slow
            test_every_hash_supports_sequent ] );
      ( "wire-level",
        [ Alcotest.test_case "OLTP through the stack, all algorithms" `Quick
            test_wire_oltp_all_algorithms;
          Alcotest.test_case "trace pipeline" `Quick test_trace_pipeline ] );
      ( "reporting",
        [ Alcotest.test_case "figures to CSV" `Quick test_csv_of_figures;
          Alcotest.test_case "CSV escaping" `Quick test_csv_escaping;
          Alcotest.test_case "CSV mismatch" `Quick test_csv_rejects_mismatched_series;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "float cells" `Quick test_float_cell;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot_renders ] );
      ("properties", qcheck_cases) ]
