(* Tests for the IPv6 extension: address text forms, headers,
   upper-layer checksums and the widened demultiplexing key. *)

let groups = Packet.Ipv6.addr_of_groups

(* ------------------------------------------------------------------ *)
(* Address parsing and printing                                        *)

let test_addr_parse_full_form () =
  match Packet.Ipv6.addr_of_string "2001:0db8:0000:0000:0008:0800:200c:417a" with
  | Ok addr ->
    Alcotest.(check (array int))
      "groups"
      [| 0x2001; 0x0db8; 0; 0; 0x8; 0x800; 0x200c; 0x417a |]
      (Packet.Ipv6.addr_to_groups addr)
  | Error e -> Alcotest.fail e

let test_addr_parse_compressed () =
  List.iter
    (fun (text, expected) ->
      match Packet.Ipv6.addr_of_string text with
      | Ok addr ->
        Alcotest.(check (array int)) text expected
          (Packet.Ipv6.addr_to_groups addr)
      | Error e -> Alcotest.fail e)
    [ ("::", [| 0; 0; 0; 0; 0; 0; 0; 0 |]);
      ("::1", [| 0; 0; 0; 0; 0; 0; 0; 1 |]);
      ("fe80::", [| 0xFE80; 0; 0; 0; 0; 0; 0; 0 |]);
      ("2001:db8::8:800:200c:417a",
       [| 0x2001; 0xDB8; 0; 0; 0x8; 0x800; 0x200C; 0x417A |]);
      ("ff01::101", [| 0xFF01; 0; 0; 0; 0; 0; 0; 0x101 |]) ]

let test_addr_parse_invalid () =
  List.iter
    (fun text ->
      match Packet.Ipv6.addr_of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; ":"; ":::"; "1::2::3"; "12345::"; "g::1"; "1:2:3:4:5:6:7";
      "1:2:3:4:5:6:7:8:9"; "1:2:3:4:5:6:7:8::" ]

let test_addr_print_rfc5952 () =
  (* Canonical printing: lowercase, longest leftmost >= 2 zero run
     compressed, single zero group not compressed. *)
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        expected expected
        (Packet.Ipv6.addr_to_string (groups input)))
    [ ([| 0x2001; 0xDB8; 0; 0; 1; 0; 0; 1 |], "2001:db8::1:0:0:1");
      ([| 0; 0; 0; 0; 0; 0; 0; 0 |], "::");
      ([| 0; 0; 0; 0; 0; 0; 0; 1 |], "::1");
      ([| 0x2001; 0xDB8; 0; 1; 1; 1; 1; 1 |], "2001:db8:0:1:1:1:1:1");
      ([| 0xFE80; 0; 0; 0; 0; 0; 0; 0x42 |], "fe80::42");
      ([| 1; 2; 3; 4; 5; 6; 7; 8 |], "1:2:3:4:5:6:7:8") ]

let test_addr_roundtrip () =
  let rng = Numerics.Rng.create ~seed:6 in
  for _ = 1 to 500 do
    let addr =
      groups (Array.init 8 (fun _ ->
          (* Bias toward zeros so compression paths are exercised. *)
          if Numerics.Rng.bool rng then 0
          else Numerics.Rng.int rng ~bound:0x10000))
    in
    match Packet.Ipv6.addr_of_string (Packet.Ipv6.addr_to_string addr) with
    | Ok reparsed ->
      if not (Packet.Ipv6.equal_addr addr reparsed) then
        Alcotest.failf "roundtrip failed for %s" (Packet.Ipv6.addr_to_string addr)
    | Error e -> Alcotest.fail e
  done

let test_well_known () =
  Alcotest.(check string) "unspecified" "::"
    (Packet.Ipv6.addr_to_string Packet.Ipv6.unspecified);
  Alcotest.(check string) "loopback" "::1"
    (Packet.Ipv6.addr_to_string Packet.Ipv6.loopback);
  Alcotest.(check bool) "distinct" false
    (Packet.Ipv6.equal_addr Packet.Ipv6.unspecified Packet.Ipv6.loopback)

(* ------------------------------------------------------------------ *)
(* Header                                                              *)

let sample_src = groups [| 0x2001; 0xDB8; 0; 0; 0; 0; 0; 1 |]
let sample_dst = groups [| 0x2001; 0xDB8; 0; 0; 0; 0; 0; 2 |]

let test_header_roundtrip () =
  let header =
    Packet.Ipv6.make ~traffic_class:0x2E ~flow_label:0xBEEF ~hop_limit:47
      ~src:sample_src ~dst:sample_dst ~next_header:Packet.Ipv4.Tcp
      ~payload_length:123 ()
  in
  let buf = Bytes.create (40 + 123) in
  Packet.Ipv6.serialize header buf ~off:0;
  match Packet.Ipv6.parse buf ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok (parsed, payload_off) ->
    Alcotest.(check int) "payload offset" 40 payload_off;
    Alcotest.(check int) "traffic class" 0x2E parsed.Packet.Ipv6.traffic_class;
    Alcotest.(check int) "flow label" 0xBEEF parsed.Packet.Ipv6.flow_label;
    Alcotest.(check int) "hop limit" 47 parsed.Packet.Ipv6.hop_limit;
    Alcotest.(check int) "payload length" 123 parsed.Packet.Ipv6.payload_length;
    Alcotest.(check bool) "src" true
      (Packet.Ipv6.equal_addr parsed.Packet.Ipv6.src sample_src);
    Alcotest.(check bool) "dst" true
      (Packet.Ipv6.equal_addr parsed.Packet.Ipv6.dst sample_dst)

let test_header_rejects () =
  (match Packet.Ipv6.parse (Bytes.create 39) ~off:0 with
  | Ok _ -> Alcotest.fail "accepted truncation"
  | Error e -> Alcotest.(check string) "truncated" "ipv6: truncated header" e);
  let buf = Bytes.make 40 '\x00' in
  Bytes.set_uint8 buf 0 0x45 (* version 4 *);
  (match Packet.Ipv6.parse buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted version 4"
  | Error e -> Alcotest.(check string) "bad version" "ipv6: bad version 4" e);
  Alcotest.check_raises "flow label range"
    (Invalid_argument "Ipv6.make: flow_label out of range") (fun () ->
      ignore
        (Packet.Ipv6.make ~flow_label:0x100000 ~src:sample_src ~dst:sample_dst
           ~next_header:Packet.Ipv4.Tcp ~payload_length:0 ()))

let test_tcp_over_ipv6_checksum () =
  (* The existing TCP serializer works over the IPv6 pseudo-header. *)
  let tcp = Packet.Tcp_header.make ~src_port:443 ~dst_port:55000 () in
  let payload = "tls bytes" in
  let tcp_len = Packet.Tcp_header.header_length tcp + String.length payload in
  let ip =
    Packet.Ipv6.make ~src:sample_src ~dst:sample_dst
      ~next_header:Packet.Ipv4.Tcp ~payload_length:tcp_len ()
  in
  let pseudo_sum = Packet.Ipv6.pseudo_header_sum ip in
  let buf = Bytes.create 128 in
  let written = Packet.Tcp_header.serialize tcp ~pseudo_sum ~payload buf ~off:0 in
  (match Packet.Tcp_header.parse ~pseudo_sum ~len:written buf ~off:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Corruption must be caught. *)
  Bytes.set_uint8 buf 25 (Bytes.get_uint8 buf 25 lxor 1);
  match Packet.Tcp_header.parse ~pseudo_sum ~len:written buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted corruption"
  | Error e -> Alcotest.(check string) "caught" "tcp: checksum mismatch" e

(* ------------------------------------------------------------------ *)
(* Flow keys and hashing                                               *)

let v6_population n =
  List.init n (fun i ->
      let client =
        groups [| 0x2001; 0xDB8; 0; 0; 0; 0; i lsr 16; i land 0xFFFF |]
      in
      Packet.Ipv6.flow_key ~src:client ~src_port:(1024 + (i mod 60000))
        ~dst:sample_dst ~dst_port:8888)

let test_flow_key_shape () =
  let key =
    Packet.Ipv6.flow_key ~src:sample_src ~src_port:0x1234 ~dst:sample_dst
      ~dst_port:0x5678
  in
  Alcotest.(check int) "288 bits" 36 (Bytes.length key);
  (* Local (dst) address leads, mirroring the IPv4 key layout. *)
  Alcotest.(check string) "local first"
    (Packet.Ipv6.addr_to_string sample_dst)
    (Packet.Ipv6.addr_to_string
       (Packet.Ipv6.addr_of_groups
          (Array.init 8 (fun i -> Bytes.get_uint16_be key (2 * i)))));
  Alcotest.check_raises "port range"
    (Invalid_argument "Ipv6.flow_key: port out of range") (fun () ->
      ignore
        (Packet.Ipv6.flow_key ~src:sample_src ~src_port:(-1) ~dst:sample_dst
           ~dst_port:0))

let test_v6_keys_hash_evenly () =
  (* Mixing hashes spread 2000 structured v6 keys across 19 chains
     about as well as v4 keys — the widened key needs no new
     machinery.  xor-fold, however, collapses: the only two varying
     16-bit words (interface id and port) are correlated, so their XOR
     concentrates — exactly the structured-key weakness Jain's study
     warned about, asserted below as expected behaviour. *)
  let keys = v6_population 2000 in
  let report_for hasher =
    Hashing.Quality.evaluate ~buckets:19
      (List.map (fun key -> Hashing.Hashers.bucket hasher ~buckets:19 key) keys)
  in
  (* Byte-serial hashes are immune to the correlation. *)
  List.iter
    (fun hasher ->
      let report = report_for hasher in
      if report.Hashing.Quality.max_load > 220 then
        Alcotest.failf "%s skewed on v6 keys: max %d"
          (Hashing.Hashers.name hasher)
          report.Hashing.Quality.max_load)
    Hashing.Hashers.[ fnv1a; jenkins_oaat; crc32; crc16_ccitt; pearson ];
  (* XOR-prefolding hashes collapse — including multiplicative, whose
     32-bit XOR fold cancels the correlated words before the multiply
     can mix them.  (The reason production v6 stacks hash the whole
     tuple byte-serially.) *)
  List.iter
    (fun hasher ->
      let report = report_for hasher in
      Alcotest.(check bool)
        (Printf.sprintf "%s collapses as predicted (max %d)"
           (Hashing.Hashers.name hasher)
           report.Hashing.Quality.max_load)
        true
        (report.Hashing.Quality.max_load > 400))
    Hashing.Hashers.[ xor_fold; multiplicative ]

let test_v6_keys_distinct () =
  let keys = v6_population 1000 in
  let module SS = Set.Make (String) in
  let set =
    List.fold_left (fun s k -> SS.add (Bytes.to_string k) s) SS.empty keys
  in
  Alcotest.(check int) "all distinct" 1000 (SS.cardinal set)

(* ------------------------------------------------------------------ *)
(* QCheck                                                              *)

let prop_addr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"v6 address print/parse roundtrip"
    QCheck.(array_of_size (Gen.return 8) (int_bound 0xFFFF))
    (fun gs ->
      let addr = groups gs in
      match Packet.Ipv6.addr_of_string (Packet.Ipv6.addr_to_string addr) with
      | Ok reparsed -> Packet.Ipv6.equal_addr addr reparsed
      | Error _ -> false)

let prop_parse_total =
  QCheck.Test.make ~count:1000 ~name:"v6 address parser never raises"
    QCheck.(string_of_size (Gen.int_range 0 50))
    (fun text ->
      match Packet.Ipv6.addr_of_string text with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_addr_roundtrip; prop_parse_total ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ipv6"
    [ ( "addresses",
        [ Alcotest.test_case "full form" `Quick test_addr_parse_full_form;
          Alcotest.test_case "compressed forms" `Quick test_addr_parse_compressed;
          Alcotest.test_case "invalid forms" `Quick test_addr_parse_invalid;
          Alcotest.test_case "RFC 5952 printing" `Quick test_addr_print_rfc5952;
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "well-known" `Quick test_well_known ] );
      ( "header",
        [ Alcotest.test_case "roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "rejects" `Quick test_header_rejects;
          Alcotest.test_case "TCP-over-IPv6 checksum" `Quick
            test_tcp_over_ipv6_checksum ] );
      ( "flow-keys",
        [ Alcotest.test_case "shape" `Quick test_flow_key_shape;
          Alcotest.test_case "hash evenly" `Quick test_v6_keys_hash_evenly;
          Alcotest.test_case "distinct" `Quick test_v6_keys_distinct ] );
      ("properties", qcheck_cases) ]
