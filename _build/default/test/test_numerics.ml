(* Tests for the numerics substrate: compensated summation, special
   functions, quadrature, RNG, distributions and statistics. *)

let check_close ?(eps = 1e-9) what expected actual =
  Alcotest.(check (float eps)) what expected actual

let check_rel ?(tol = 1e-9) what expected actual =
  let err =
    if expected = 0.0 then Float.abs actual
    else Float.abs ((actual -. expected) /. expected)
  in
  if err > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel err %.3g > %.3g)" what
      expected actual err tol

(* ------------------------------------------------------------------ *)
(* Kahan                                                               *)

let test_kahan_simple () =
  check_close "sum of 1..100" 5050.0
    (Numerics.Kahan.sum_fn 100 (fun i -> float_of_int (i + 1)))

let test_kahan_cancellation () =
  (* 1 + 1e16 - 1e16 loses the 1 with naive float addition in this
     order; Neumaier keeps it. *)
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc 1.0;
  Numerics.Kahan.add acc 1e16;
  Numerics.Kahan.add acc (-1e16);
  check_close "compensated cancellation" 1.0 (Numerics.Kahan.sum acc)

let test_kahan_many_small () =
  (* 10^7 copies of 0.1: naive sum drifts by ~1e-2 more than Kahan. *)
  let n = 10_000_000 in
  let kahan = Numerics.Kahan.sum_fn n (fun _ -> 0.1) in
  check_close ~eps:1e-6 "1e7 * 0.1" (float_of_int n *. 0.1) kahan

let test_kahan_list_array () =
  check_close "sum_list" 6.6 (Numerics.Kahan.sum_list [ 1.1; 2.2; 3.3 ]);
  check_close "sum_array" 6.6 (Numerics.Kahan.sum_array [| 1.1; 2.2; 3.3 |]);
  check_close "empty list" 0.0 (Numerics.Kahan.sum_list [])

(* ------------------------------------------------------------------ *)
(* Special                                                             *)

let test_log_gamma_known () =
  (* Gamma(n) = (n-1)! *)
  check_rel "lgamma 1" 0.0 (Float.exp (Numerics.Special.log_gamma 1.0) -. 1.0)
    ~tol:1e-12;
  check_rel "lgamma 5 = ln 24" (Float.log 24.0)
    (Numerics.Special.log_gamma 5.0);
  check_rel "lgamma 0.5 = ln sqrt(pi)"
    (0.5 *. Float.log Float.pi)
    (Numerics.Special.log_gamma 0.5);
  check_rel "lgamma 10.5" 13.940625219403763
    (Numerics.Special.log_gamma 10.5)

let test_log_gamma_invalid () =
  Alcotest.check_raises "lgamma 0" (Invalid_argument
    "Special.log_gamma: requires x > 0") (fun () ->
      ignore (Numerics.Special.log_gamma 0.0))

let test_log_factorial () =
  check_close "0!" 0.0 (Numerics.Special.log_factorial 0);
  check_close "1!" 0.0 (Numerics.Special.log_factorial 1);
  check_rel "10!" (Float.log 3628800.0) (Numerics.Special.log_factorial 10);
  (* Table/gamma boundary agreement. *)
  check_rel "255! vs gamma" (Numerics.Special.log_gamma 256.0)
    (Numerics.Special.log_factorial 255);
  check_rel "300!" (Numerics.Special.log_gamma 301.0)
    (Numerics.Special.log_factorial 300)

let test_log_binomial () =
  check_rel "C(5,2)=10" (Float.log 10.0) (Numerics.Special.log_binomial 5 2);
  check_rel "C(2000,1000) finite" 1382.26799353748
    (Numerics.Special.log_binomial 2000 1000) ~tol:1e-9;
  Alcotest.(check (float 0.0))
    "C(5,6) = 0 mass" Float.neg_infinity
    (Numerics.Special.log_binomial 5 6);
  Alcotest.(check (float 0.0))
    "C(5,-1)" Float.neg_infinity
    (Numerics.Special.log_binomial 5 (-1))

let test_binomial_pmf_sums_to_one () =
  List.iter
    (fun (n, p) ->
      let total =
        Numerics.Kahan.sum_fn (n + 1) (fun k ->
            Numerics.Special.binomial_pmf ~n ~p k)
      in
      check_rel (Printf.sprintf "pmf sums to 1 (n=%d p=%g)" n p) 1.0 total
        ~tol:1e-10)
    [ (10, 0.5); (100, 0.01); (1999, 0.3); (2000, 0.999) ]

let test_binomial_edge_cases () =
  check_close "p=0, k=0" 1.0 (Numerics.Special.binomial_pmf ~n:10 ~p:0.0 0);
  check_close "p=0, k=1" 0.0 (Numerics.Special.binomial_pmf ~n:10 ~p:0.0 1);
  check_close "p=1, k=n" 1.0 (Numerics.Special.binomial_pmf ~n:10 ~p:1.0 10);
  check_close "k out of range" 0.0
    (Numerics.Special.binomial_pmf ~n:10 ~p:0.5 11)

let test_binomial_mean_direct () =
  (* The identity the MTF model leans on: the explicit Equation 3 sum
     equals (N-1) * p. *)
  List.iter
    (fun (n, p) ->
      check_rel
        (Printf.sprintf "mean = np (n=%d p=%g)" n p)
        (float_of_int n *. p)
        (Numerics.Special.binomial_mean_direct ~n ~p)
        ~tol:1e-9)
    [ (1, 0.5); (100, 0.123); (1999, 0.6321); (5000, 0.01) ]

let test_log_sum_exp () =
  check_rel "lse of equal terms" (Float.log 3.0 +. 10.0)
    (Numerics.Special.log_sum_exp [| 10.0; 10.0; 10.0 |]);
  Alcotest.(check (float 0.0))
    "lse empty" Float.neg_infinity
    (Numerics.Special.log_sum_exp [||]);
  check_rel "lse dominated" 1000.0
    (Numerics.Special.log_sum_exp [| 1000.0; -1000.0 |])

(* ------------------------------------------------------------------ *)
(* Integrate                                                           *)

let test_simpson_polynomial () =
  (* Simpson is exact on cubics. *)
  let f x = (2.0 *. x *. x *. x) -. (x *. x) +. 4.0 in
  check_rel "cubic over [0,3]"
    ((2.0 *. 81.0 /. 4.0) -. 9.0 +. 12.0)
    (Numerics.Integrate.adaptive_simpson f 0.0 3.0)

let test_simpson_transcendental () =
  check_rel "int_0^pi sin = 2" 2.0
    (Numerics.Integrate.adaptive_simpson Float.sin 0.0 Float.pi) ~tol:1e-9;
  check_rel "int_1^e 1/x = 1" 1.0
    (Numerics.Integrate.adaptive_simpson (fun x -> 1.0 /. x) 1.0 (Float.exp 1.0))
    ~tol:1e-9

let test_simpson_degenerate () =
  check_close "empty interval" 0.0
    (Numerics.Integrate.adaptive_simpson Float.sin 2.0 2.0)

let test_gauss_legendre () =
  List.iter
    (fun nodes ->
      check_rel
        (Printf.sprintf "GL-%d sin over [0,pi]" nodes)
        2.0
        (Numerics.Integrate.gauss_legendre ~nodes Float.sin 0.0 Float.pi)
        ~tol:1e-6)
    [ 8; 16 ];
  Alcotest.check_raises "GL-5 unsupported"
    (Invalid_argument "Integrate.gauss_legendre: unsupported node count 5")
    (fun () ->
      ignore (Numerics.Integrate.gauss_legendre ~nodes:5 Float.sin 0.0 1.0))

let test_gl_matches_simpson () =
  let f x = Float.exp (-.x) *. Float.cos (3.0 *. x) in
  check_rel "GL vs Simpson"
    (Numerics.Integrate.adaptive_simpson f 0.0 2.0)
    (Numerics.Integrate.gauss_legendre ~nodes:16 f 0.0 2.0)
    ~tol:1e-9

let test_to_infinity () =
  check_rel "int_0^inf e^-x = 1" 1.0
    (Numerics.Integrate.to_infinity (fun x -> Float.exp (-.x)) 0.0) ~tol:1e-8;
  check_rel "int_2^inf e^-x" (Float.exp (-2.0))
    (Numerics.Integrate.to_infinity (fun x -> Float.exp (-.x)) 2.0) ~tol:1e-8

let test_expectation_exponential () =
  (* E[X] = 1/rate, E[X^2] = 2/rate^2 *)
  check_rel "E[X] rate=0.1" 10.0
    (Numerics.Integrate.expectation_exponential ~rate:0.1 Fun.id) ~tol:1e-7;
  check_rel "E[X^2] rate=2" 0.5
    (Numerics.Integrate.expectation_exponential ~rate:2.0 (fun x -> x *. x))
    ~tol:1e-7;
  Alcotest.check_raises "rate <= 0"
    (Invalid_argument "Integrate.expectation_exponential: rate must be positive")
    (fun () ->
      ignore (Numerics.Integrate.expectation_exponential ~rate:0.0 Fun.id))

let test_expectation_piecewise () =
  (* A kinked function: E[max(X - c, 0)] = e^{-rate c}/rate. *)
  let rate = 0.5 and c = 1.7 in
  check_rel "piecewise kink"
    (Float.exp (-.rate *. c) /. rate)
    (Numerics.Integrate.expectation_exponential_piecewise ~rate
       ~breakpoints:[ c ]
       (fun x -> Float.max 0.0 (x -. c)))
    ~tol:1e-7

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Numerics.Rng.create ~seed:123 in
  let b = Numerics.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Numerics.Rng.bits64 a) (Numerics.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Numerics.Rng.create ~seed:1 in
  let b = Numerics.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Numerics.Rng.bits64 a = Numerics.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_float_range () =
  let rng = Numerics.Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Numerics.Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %f" x
  done

let test_rng_float_mean () =
  let rng = Numerics.Rng.create ~seed:11 in
  let stats = Numerics.Stats.create () in
  for _ = 1 to 100_000 do
    Numerics.Stats.add stats (Numerics.Rng.float rng)
  done;
  check_close ~eps:0.01 "uniform mean ~0.5" 0.5 (Numerics.Stats.mean stats)

let test_rng_int_bounds () =
  let rng = Numerics.Rng.create ~seed:3 in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let v = Numerics.Rng.int rng ~bound:7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v;
    seen.(v) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Numerics.Rng.int rng ~bound:0))

let test_rng_shuffle_permutation () =
  let rng = Numerics.Rng.create ~seed:5 in
  let a = Array.init 100 Fun.id in
  Numerics.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id)
    sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_rng_split_independent () =
  let parent = Numerics.Rng.create ~seed:99 in
  let child1 = Numerics.Rng.split parent in
  let child2 = Numerics.Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Numerics.Rng.bits64 child1 = Numerics.Rng.bits64 child2 then
      incr matches
  done;
  Alcotest.(check bool) "split streams diverge" true (!matches < 4)

let test_rng_jump () =
  let a = Numerics.Rng.create ~seed:42 in
  let b = Numerics.Rng.create ~seed:42 in
  Numerics.Rng.jump b;
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Numerics.Rng.bits64 a = Numerics.Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "jumped stream differs" true (!matches < 4)

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)

let sample_mean dist seed n =
  let rng = Numerics.Rng.create ~seed in
  let stats = Numerics.Stats.create () in
  for _ = 1 to n do
    Numerics.Stats.add stats (Numerics.Distribution.sample dist rng)
  done;
  Numerics.Stats.mean stats

let test_exponential_mean () =
  let dist = Numerics.Distribution.exponential ~rate:0.1 in
  check_close "analytic mean" 10.0 (Numerics.Distribution.mean dist);
  check_close ~eps:0.3 "sampled mean" 10.0 (sample_mean dist 1 200_000)

let test_truncated_exponential () =
  let dist =
    Numerics.Distribution.truncated_exponential ~rate:0.1 ~cutoff:100.0
  in
  let analytic = Numerics.Distribution.mean dist in
  (* E[X | X <= 100] with rate 0.1: 10 - 100 e^-10 / (1 - e^-10). *)
  check_rel "truncated mean formula"
    (10.0 -. (100.0 *. Float.exp (-10.0) /. (1.0 -. Float.exp (-10.0))))
    analytic;
  check_close ~eps:0.3 "sampled mean" analytic (sample_mean dist 2 200_000);
  (* Samples never exceed the cutoff. *)
  let rng = Numerics.Rng.create ~seed:3 in
  for _ = 1 to 50_000 do
    let x = Numerics.Distribution.sample dist rng in
    if x > 100.0 || x < 0.0 then Alcotest.failf "truncation violated: %f" x
  done

let test_uniform () =
  let dist = Numerics.Distribution.uniform ~min:2.0 ~max:6.0 in
  check_close "mean" 4.0 (Numerics.Distribution.mean dist);
  check_close "cdf mid" 0.5 (Numerics.Distribution.cdf dist 4.0);
  check_close "pdf inside" 0.25 (Numerics.Distribution.pdf dist 3.0);
  check_close "pdf outside" 0.0 (Numerics.Distribution.pdf dist 7.0)

let test_deterministic () =
  let dist = Numerics.Distribution.deterministic 10.0 in
  let rng = Numerics.Rng.create ~seed:1 in
  check_close "sample" 10.0 (Numerics.Distribution.sample dist rng);
  check_close "mean" 10.0 (Numerics.Distribution.mean dist);
  check_close "cdf below" 0.0 (Numerics.Distribution.cdf dist 9.9);
  check_close "cdf at" 1.0 (Numerics.Distribution.cdf dist 10.0)

let test_geometric () =
  let p = 0.25 in
  let dist = Numerics.Distribution.geometric ~p in
  check_close "mean" 3.0 (Numerics.Distribution.mean dist);
  check_close ~eps:0.05 "sampled mean" 3.0 (sample_mean dist 4 200_000);
  check_close "pmf 0" p (Numerics.Distribution.pdf dist 0.0);
  check_close "pmf 2" (p *. 0.75 *. 0.75) (Numerics.Distribution.pdf dist 2.0);
  check_close "pmf non-integer" 0.0 (Numerics.Distribution.pdf dist 1.5)

let test_cdf_pdf_consistency () =
  (* CDF is the integral of the PDF for the continuous laws. *)
  List.iter
    (fun dist ->
      let integral =
        Numerics.Integrate.adaptive_simpson
          (Numerics.Distribution.pdf dist) 0.0 5.0
      in
      check_rel
        (Printf.sprintf "cdf(5) for %s" (Numerics.Distribution.description dist))
        (Numerics.Distribution.cdf dist 5.0)
        integral ~tol:1e-6)
    [ Numerics.Distribution.exponential ~rate:0.7;
      Numerics.Distribution.truncated_exponential ~rate:0.7 ~cutoff:4.0;
      Numerics.Distribution.uniform ~min:1.0 ~max:4.5 ]

let test_distribution_validation () =
  Alcotest.check_raises "exp rate 0"
    (Invalid_argument "Distribution.exponential: rate <= 0") (fun () ->
      ignore (Numerics.Distribution.exponential ~rate:0.0));
  Alcotest.check_raises "uniform empty"
    (Invalid_argument "Distribution.uniform: min >= max") (fun () ->
      ignore (Numerics.Distribution.uniform ~min:1.0 ~max:1.0));
  Alcotest.check_raises "geometric p>1"
    (Invalid_argument "Distribution.geometric: p not in (0,1]") (fun () ->
      ignore (Numerics.Distribution.geometric ~p:1.5))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_stats_mean_variance () =
  let stats = Numerics.Stats.create () in
  List.iter (Numerics.Stats.add stats) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "mean" 5.0 (Numerics.Stats.mean stats);
  check_rel "variance (unbiased)" (32.0 /. 7.0) (Numerics.Stats.variance stats);
  check_close "min" 2.0 (Numerics.Stats.min_value stats);
  check_close "max" 9.0 (Numerics.Stats.max_value stats);
  Alcotest.(check int) "count" 8 (Numerics.Stats.count stats)

let test_stats_empty () =
  let stats = Numerics.Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Numerics.Stats.mean stats));
  Alcotest.(check bool) "variance nan" true
    (Float.is_nan (Numerics.Stats.variance stats))

let test_stats_merge () =
  let all = Numerics.Stats.create () in
  let left = Numerics.Stats.create () in
  let right = Numerics.Stats.create () in
  let rng = Numerics.Rng.create ~seed:8 in
  for i = 1 to 1000 do
    let x = Numerics.Rng.float rng *. 100.0 in
    Numerics.Stats.add all x;
    Numerics.Stats.add (if i mod 3 = 0 then left else right) x
  done;
  let merged = Numerics.Stats.merge left right in
  check_rel "merged mean" (Numerics.Stats.mean all) (Numerics.Stats.mean merged);
  check_rel "merged variance" (Numerics.Stats.variance all)
    (Numerics.Stats.variance merged) ~tol:1e-9;
  Alcotest.(check int) "merged count" 1000 (Numerics.Stats.count merged)

let test_stats_merge_empty () =
  let empty = Numerics.Stats.create () in
  let other = Numerics.Stats.create () in
  Numerics.Stats.add other 5.0;
  let merged = Numerics.Stats.merge empty other in
  check_close "merge with empty" 5.0 (Numerics.Stats.mean merged)

let test_quantile () =
  let data = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  check_close "median" 35.0 (Numerics.Stats.quantile data 0.5);
  check_close "min" 15.0 (Numerics.Stats.quantile data 0.0);
  check_close "max" 50.0 (Numerics.Stats.quantile data 1.0);
  check_close "p25 interpolated" 20.0 (Numerics.Stats.quantile data 0.25);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty data")
    (fun () -> ignore (Numerics.Stats.quantile [||] 0.5))

let test_histogram () =
  let h = Numerics.Stats.Histogram.create ~min:0.0 ~max:10.0 ~buckets:5 in
  List.iter (Numerics.Stats.Histogram.add h)
    [ -1.0; 0.0; 1.9; 2.0; 5.5; 9.99; 10.0; 42.0 ];
  Alcotest.(check int) "total" 8 (Numerics.Stats.Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Numerics.Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Numerics.Stats.Histogram.overflow h);
  let counts = Numerics.Stats.Histogram.counts h in
  Alcotest.(check int) "bucket 0 count" 2 (snd counts.(0));
  Alcotest.(check int) "bucket 1 count" 1 (snd counts.(1));
  Alcotest.(check int) "bucket 2 count" 1 (snd counts.(2));
  Alcotest.(check int) "bucket 4 count" 1 (snd counts.(4))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let prop_binomial_mean =
  QCheck.Test.make ~count:200 ~name:"binomial_mean_direct = n*p"
    QCheck.(pair (int_range 1 500) (float_range 0.001 0.999))
    (fun (n, p) ->
      let direct = Numerics.Special.binomial_mean_direct ~n ~p in
      Float.abs (direct -. (float_of_int n *. p)) < 1e-6 *. float_of_int n)

let prop_kahan_order_independent =
  QCheck.Test.make ~count:100 ~name:"kahan sum is order-insensitive"
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range (-1e6) 1e6))
    (fun values ->
      let forward = Numerics.Kahan.sum_list values in
      let backward = Numerics.Kahan.sum_list (List.rev values) in
      Float.abs (forward -. backward)
      <= 1e-9 *. (1.0 +. Float.abs forward))

let prop_quantile_monotone =
  QCheck.Test.make ~count:100 ~name:"quantile is monotone in q"
    QCheck.(
      pair
        (array_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (data, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Numerics.Stats.quantile data lo <= Numerics.Stats.quantile data hi +. 1e-12)

let prop_rng_int_in_range =
  QCheck.Test.make ~count:200 ~name:"Rng.int stays in range"
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Numerics.Rng.create ~seed in
      let v = Numerics.Rng.int rng ~bound in
      v >= 0 && v < bound)

let prop_truncated_exp_within_cutoff =
  QCheck.Test.make ~count:200 ~name:"truncated exponential respects cutoff"
    QCheck.(pair small_int (pair (float_range 0.01 2.0) (float_range 0.5 50.0)))
    (fun (seed, (rate, cutoff)) ->
      let dist = Numerics.Distribution.truncated_exponential ~rate ~cutoff in
      let rng = Numerics.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Numerics.Distribution.sample dist rng in
        if x < 0.0 || x > cutoff then ok := false
      done;
      !ok)

let prop_cdf_bounds =
  QCheck.Test.make ~count:200 ~name:"cdf stays within [0,1]"
    QCheck.(pair (float_range 0.01 5.0) (float_range (-10.0) 200.0))
    (fun (rate, x) ->
      let dist = Numerics.Distribution.exponential ~rate in
      let c = Numerics.Distribution.cdf dist x in
      c >= 0.0 && c <= 1.0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_binomial_mean; prop_kahan_order_independent; prop_quantile_monotone;
      prop_rng_int_in_range; prop_truncated_exp_within_cutoff; prop_cdf_bounds ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "numerics"
    [ ( "kahan",
        [ Alcotest.test_case "simple sum" `Quick test_kahan_simple;
          Alcotest.test_case "cancellation" `Quick test_kahan_cancellation;
          Alcotest.test_case "many small terms" `Slow test_kahan_many_small;
          Alcotest.test_case "list/array" `Quick test_kahan_list_array ] );
      ( "special",
        [ Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known;
          Alcotest.test_case "log_gamma invalid" `Quick test_log_gamma_invalid;
          Alcotest.test_case "log_factorial" `Quick test_log_factorial;
          Alcotest.test_case "log_binomial" `Quick test_log_binomial;
          Alcotest.test_case "pmf sums to 1" `Quick test_binomial_pmf_sums_to_one;
          Alcotest.test_case "pmf edge cases" `Quick test_binomial_edge_cases;
          Alcotest.test_case "mean = np" `Quick test_binomial_mean_direct;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp ] );
      ( "integrate",
        [ Alcotest.test_case "cubic exact" `Quick test_simpson_polynomial;
          Alcotest.test_case "transcendental" `Quick test_simpson_transcendental;
          Alcotest.test_case "degenerate interval" `Quick test_simpson_degenerate;
          Alcotest.test_case "gauss-legendre" `Quick test_gauss_legendre;
          Alcotest.test_case "GL vs Simpson" `Quick test_gl_matches_simpson;
          Alcotest.test_case "to infinity" `Quick test_to_infinity;
          Alcotest.test_case "exponential expectation" `Quick
            test_expectation_exponential;
          Alcotest.test_case "piecewise kink" `Quick test_expectation_piecewise ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Slow test_rng_float_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "jump" `Quick test_rng_jump ] );
      ( "distribution",
        [ Alcotest.test_case "exponential" `Slow test_exponential_mean;
          Alcotest.test_case "truncated exponential" `Slow
            test_truncated_exponential;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "geometric" `Slow test_geometric;
          Alcotest.test_case "cdf = integral of pdf" `Quick
            test_cdf_pdf_consistency;
          Alcotest.test_case "validation" `Quick test_distribution_validation ] );
      ( "stats",
        [ Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ("properties", qcheck_cases) ]
