(* Tests for the multicore demultiplexers: functional agreement with
   the sequential algorithms, and safety under concurrent use. *)

let flow i = Sim.Topology.flow_of_client i
let flows n = Array.init n flow

(* ------------------------------------------------------------------ *)
(* Single-domain functional behaviour                                  *)

let test_striped_agrees_with_sequent () =
  (* Same algorithm, same accounting: a fixed lookup sequence produces
     identical examined counts on Striped and on Demux.Sequent. *)
  let population = flows 300 in
  let striped = Parallel.Striped.create ~chains:19 () in
  let sequential =
    Demux.Sequent.create ~chains:19 ~hasher:Hashing.Hashers.multiplicative ()
  in
  Array.iter
    (fun f ->
      ignore (Parallel.Striped.insert striped f ());
      ignore (Demux.Sequent.insert sequential f ()))
    population;
  let rng = Numerics.Rng.create ~seed:7 in
  for _ = 1 to 3000 do
    let f = population.(Numerics.Rng.int rng ~bound:300) in
    (match (Parallel.Striped.lookup striped f, Demux.Sequent.lookup sequential f) with
    | Some a, Some b ->
      if not (Packet.Flow.equal a.Demux.Pcb.flow b.Demux.Pcb.flow) then
        Alcotest.fail "diverged"
    | _ -> Alcotest.fail "lookup failed")
  done;
  let striped_stats = Parallel.Striped.stats striped in
  let sequential_stats =
    Demux.Lookup_stats.snapshot (Demux.Sequent.stats sequential)
  in
  Alcotest.(check int)
    "identical examined counts"
    sequential_stats.Demux.Lookup_stats.pcbs_examined
    striped_stats.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int)
    "identical cache hits" sequential_stats.Demux.Lookup_stats.cache_hits
    striped_stats.Demux.Lookup_stats.cache_hits

let test_striped_basics () =
  let d = Parallel.Striped.create ~chains:7 () in
  Alcotest.(check int) "chains" 7 (Parallel.Striped.chains d);
  ignore (Parallel.Striped.insert d (flow 1) ());
  (match Parallel.Striped.insert d (flow 1) () with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "length" 1 (Parallel.Striped.length d);
  Alcotest.(check bool) "found" true (Parallel.Striped.lookup d (flow 1) <> None);
  Alcotest.(check bool) "absent" true (Parallel.Striped.lookup d (flow 2) = None);
  Parallel.Striped.note_send d (flow 1);
  Alcotest.(check bool) "removed" true (Parallel.Striped.remove d (flow 1) <> None);
  Alcotest.(check bool) "remove absent" true (Parallel.Striped.remove d (flow 1) = None);
  Alcotest.(check int) "empty" 0 (Parallel.Striped.length d)

let test_coarse_wrapper () =
  let d = Parallel.Coarse.create Demux.Registry.Bsd in
  Alcotest.(check string) "name" "coarse:bsd" (Parallel.Coarse.name d);
  ignore (Parallel.Coarse.insert d (flow 3) ());
  Alcotest.(check bool) "found" true (Parallel.Coarse.lookup d (flow 3) <> None);
  Parallel.Coarse.note_send d (flow 3);
  let stats = Parallel.Coarse.stats d in
  Alcotest.(check int) "lookups" 1 stats.Demux.Lookup_stats.lookups;
  Alcotest.(check bool) "removed" true (Parallel.Coarse.remove d (flow 3) <> None);
  Alcotest.(check int) "length" 0 (Parallel.Coarse.length d)

(* ------------------------------------------------------------------ *)
(* Concurrency                                                         *)

let test_concurrent_disjoint_writers () =
  (* Each domain owns a disjoint key range and hammers insert/remove;
     a shared read-only range is looked up by everyone.  Afterwards
     the table must contain exactly the shared range plus whatever
     each domain left behind. *)
  let d = Parallel.Striped.create ~chains:19 () in
  let shared = 100 in
  for i = 0 to shared - 1 do
    ignore (Parallel.Striped.insert d (flow i) ())
  done;
  let writers = 4 in
  let keys_per_writer = 50 in
  let iterations = 500 in
  let workers =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            let base = shared + (w * keys_per_writer) in
            let rng = Numerics.Rng.create ~seed:(100 + w) in
            for _ = 1 to iterations do
              (* Private churn. *)
              let k = base + Numerics.Rng.int rng ~bound:keys_per_writer in
              (match Parallel.Striped.lookup d (flow k) with
              | Some _ -> ignore (Parallel.Striped.remove d (flow k))
              | None -> (
                try ignore (Parallel.Striped.insert d (flow k) ())
                with Invalid_argument _ ->
                  (* Impossible: the range is private. *)
                  Alcotest.fail "phantom duplicate"));
              (* Shared reads. *)
              let s = Numerics.Rng.int rng ~bound:shared in
              if Parallel.Striped.lookup d (flow s) = None then
                Alcotest.fail "shared key vanished"
            done;
            (* Leave the private range in a known state: all present. *)
            for k = base to base + keys_per_writer - 1 do
              if Parallel.Striped.lookup d (flow k) = None then
                ignore (Parallel.Striped.insert d (flow k) ())
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int)
    "final population" (shared + (writers * keys_per_writer))
    (Parallel.Striped.length d);
  for i = 0 to shared + (writers * keys_per_writer) - 1 do
    if Parallel.Striped.lookup d (flow i) = None then
      Alcotest.failf "key %d missing after join" i
  done

let test_concurrent_lookups_return_right_pcb () =
  (* Pure readers from several domains must always get the PCB whose
     flow matches the query — no torn reads through the caches. *)
  let d = Parallel.Striped.create ~chains:19 () in
  let population = flows 500 in
  Array.iter (fun f -> ignore (Parallel.Striped.insert d f ())) population;
  let failures = Atomic.make 0 in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let rng = Numerics.Rng.create ~seed:(w + 1) in
            for _ = 1 to 20_000 do
              let f = population.(Numerics.Rng.int rng ~bound:500) in
              match Parallel.Striped.lookup d f with
              | Some pcb ->
                if not (Packet.Flow.equal pcb.Demux.Pcb.flow f) then
                  Atomic.incr failures
              | None -> Atomic.incr failures
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no wrong answers" 0 (Atomic.get failures);
  let stats = Parallel.Striped.stats d in
  Alcotest.(check int) "all lookups counted" 80_000
    stats.Demux.Lookup_stats.lookups

let test_coarse_concurrent_safety () =
  let d = Parallel.Coarse.create Demux.Registry.Bsd in
  let population = flows 200 in
  Array.iter (fun f -> ignore (Parallel.Coarse.insert d f ())) population;
  let failures = Atomic.make 0 in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let rng = Numerics.Rng.create ~seed:(w + 9) in
            for _ = 1 to 5_000 do
              let f = population.(Numerics.Rng.int rng ~bound:200) in
              match Parallel.Coarse.lookup d f with
              | Some pcb ->
                if not (Packet.Flow.equal pcb.Demux.Pcb.flow f) then
                  Atomic.incr failures
              | None -> Atomic.incr failures
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no wrong answers" 0 (Atomic.get failures);
  Alcotest.(check int) "all lookups counted" 20_000
    (Parallel.Coarse.stats d).Demux.Lookup_stats.lookups

(* ------------------------------------------------------------------ *)
(* Throughput harness                                                  *)

let test_throughput_smoke () =
  let result =
    Parallel.Throughput.run ~connections:200 ~lookups_per_domain:20_000
      ~domains:2 (Parallel.Throughput.Striped_sequent 19)
  in
  Alcotest.(check string) "target" "striped:sequent-19" result.Parallel.Throughput.target;
  Alcotest.(check int) "total" 40_000 result.Parallel.Throughput.total_lookups;
  Alcotest.(check bool) "positive rate" true
    (result.Parallel.Throughput.lookups_per_second > 0.0);
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Throughput.run: domains <= 0") (fun () ->
      ignore
        (Parallel.Throughput.run ~domains:0 Parallel.Throughput.Coarse_bsd))

let test_worker_rng () =
  let a = Parallel.Worker_rng.create 5 in
  let b = Parallel.Worker_rng.create 5 in
  for _ = 1 to 50 do
    let x = Parallel.Worker_rng.next a in
    Alcotest.(check int) "deterministic" x (Parallel.Worker_rng.next b);
    Alcotest.(check bool) "non-negative" true (x >= 0)
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [ ( "functional",
        [ Alcotest.test_case "striped = sequent" `Quick
            test_striped_agrees_with_sequent;
          Alcotest.test_case "striped basics" `Quick test_striped_basics;
          Alcotest.test_case "coarse wrapper" `Quick test_coarse_wrapper ] );
      ( "concurrency",
        [ Alcotest.test_case "disjoint writers" `Quick
            test_concurrent_disjoint_writers;
          Alcotest.test_case "reader correctness" `Quick
            test_concurrent_lookups_return_right_pcb;
          Alcotest.test_case "coarse safety" `Quick test_coarse_concurrent_safety ] );
      ( "throughput",
        [ Alcotest.test_case "smoke" `Quick test_throughput_smoke;
          Alcotest.test_case "worker rng" `Quick test_worker_rng ] ) ]
