(* Benchmark harness: regenerates every table and figure of McKenney &
   Dove (1992) — experiment ids E1-E18 from DESIGN.md — and then runs
   bechamel wall-clock microbenchmarks of the same code paths.

   Two layers on purpose:
   - the {e reproduction} layer prints paper-value vs our-value rows so
     EXPERIMENTS.md can be filled mechanically;
   - the {e bechamel} layer has one Test.make per experiment (timing
     its regeneration) plus lookup/hash throughput groups, wall-clock
     being the secondary check the paper's PCBs-examined metric stands
     in for. *)

let section title =
  Printf.printf "\n==== %s ====\n\n" title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Reproduction layer                                                  *)

let default_params = Analysis.Tpca_params.default

let e1_figure4 () = [ Analysis.Comparison.figure4 () ]

let print_e1 () =
  section "E1 / Figure 4: N(T) for 2,000 TPC/A users";
  let series = e1_figure4 () in
  Report.Ascii_plot.print ~title:"Figure 4" series;
  let p = default_params in
  row "spot values: N(5)=%.0f N(10)=%.0f N(50)=%.0f (curve: 0 -> 1999)\n"
    (Analysis.Mtf_model.expected_preceding p 5.0)
    (Analysis.Mtf_model.expected_preceding p 10.0)
    (Analysis.Mtf_model.expected_preceding p 50.0)

let e2_e3 () =
  ( Analysis.Bsd_model.cost default_params,
    Analysis.Bsd_model.train_probability default_params )

let print_e2_e3 () =
  section "E2/E3: BSD cost and packet-train probability (Section 3.1)";
  let cost, train = e2_e3 () in
  row "E2 BSD expected PCBs searched : paper 1001    ours %.1f\n" cost;
  row "E3 packet-train probability   : paper 1.9e-35 ours %.3g\n" train

let e4_e6 () =
  Analysis.Comparison.mtf_response_time_table [ 0.2; 0.5; 1.0; 2.0 ]

let print_e4_e6 () =
  section "E4/E5/E6: move-to-front costs (Section 3.2)";
  row "%-6s %18s %16s %18s\n" "R" "entry: paper/ours" "ack: paper/ours"
    "overall: paper/ours";
  List.iter2
    (fun (paper_entry, paper_ack, paper_overall) (r, entry, ack, overall) ->
      row "%-6.1f %10d/%-7.0f %8d/%-7.0f %10d/%-7.0f\n" r paper_entry entry
        paper_ack ack paper_overall overall)
    [ (1019, 78, 549); (1045, 190, 618); (1086, 362, 724); (1150, 659, 904) ]
    (e4_e6 ())

let e7 () =
  List.map
    (fun rtt ->
      (rtt, Analysis.Srcache_model.overall_cost
              (Analysis.Tpca_params.v ~users:2000 ~rtt ())))
    [ 0.001; 0.010; 0.100 ]

let print_e7 () =
  section "E7: send/receive cache overall cost (Section 3.3, Eq 17)";
  row "%-8s %18s\n" "D" "paper/ours";
  List.iter2
    (fun paper (rtt, ours) ->
      row "%-8s %10d/%-8.0f\n" (Printf.sprintf "%gms" (rtt *. 1000.)) paper ours)
    [ 667; 993; 1002 ] (e7 ())

let e8_e11 () =
  let p = default_params in
  ( Analysis.Sequent_model.hit_rate p ~chains:19,
    Analysis.Sequent_model.quiet_probability p ~chains:19,
    Analysis.Sequent_model.quiet_probability p ~chains:51,
    Analysis.Sequent_model.cost p ~chains:19,
    Analysis.Sequent_model.cost_naive p ~chains:19,
    Analysis.Sequent_model.cost p ~chains:100 )

let print_e8_e11 () =
  section "E8-E11: Sequent hashed chains (Section 3.4)";
  let hit, quiet19, quiet51, cost19, naive19, cost100 = e8_e11 () in
  row "E8  hit rate H=19          : paper ~0.95%%  ours %.2f%%\n" (100. *. hit);
  row "E9  quiet prob H=19 / H=51 : paper ~1.5%% / ~21%%  ours %.1f%% / %.1f%%\n"
    (100. *. quiet19) (100. *. quiet51);
  row "E10 cost (Eq 22 vs Eq 19)  : paper 53.0 vs 53.6  ours %.1f vs %.1f\n"
    cost19 naive19;
  row "E11 cost at H=100          : paper <9  ours %.2f\n" cost100

let e12_figure13 () = Analysis.Comparison.figure13 ()
let e13_figure14 () = Analysis.Comparison.figure14 ()

let print_e12_e13 () =
  section "E12 / Figure 13: algorithm comparison, 0-10,000 connections";
  Report.Ascii_plot.print ~title:"Figure 13" (e12_figure13 ());
  section "E13 / Figure 14: detail, 0-1,000 connections";
  Report.Ascii_plot.print ~title:"Figure 14" (e13_figure14 ())

(* Simulation-backed experiments.  Sized to keep the whole bench run in
   tens of seconds; `tcpdemux simulate` runs bigger ones. *)

let validation_params = Analysis.Tpca_params.v ~users:1000 ()

let e14 () =
  let config =
    Sim.Tpca_workload.default_config ~duration:150.0 validation_params
  in
  Sim.Validate.compare ~config validation_params
    Demux.Registry.
      [ Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative } ]

let print_e14 () =
  section "E14: simulation vs analysis (TPC/A, 1,000 users, 150 s)";
  Format.printf "%a@." Sim.Validate.pp_rows (e14 ())

let e15 () =
  let config = Sim.Polling_workload.default_config ~users:400 ~rounds:8 () in
  Sim.Polling_workload.run config Demux.Registry.Mtf

let print_e15 () =
  section "E15: deterministic polling is MTF's worst case (Section 3.2)";
  let report = e15 () in
  row "MTF entry cost with deterministic think time, 400 users: paper N=400  ours %.1f\n"
    report.Sim.Report.entry_mean

let e16 () =
  let config = Sim.Trains_workload.default_config () in
  Sim.Trains_workload.run config Demux.Registry.Bsd

let print_e16 () =
  section "E16: packet trains redeem the BSD cache (Section 1)";
  let report = e16 () in
  row "BSD on mean-16 trains: hit rate %.2f (one-entry cache works), cost %.2f\n"
    report.Sim.Report.hit_rate report.Sim.Report.overall_mean

let e17 () =
  let config =
    Sim.Tpca_workload.default_config ~duration:150.0 validation_params
  in
  let hasher = Hashing.Hashers.multiplicative in
  ( Sim.Tpca_workload.run config
      (Demux.Registry.Sequent { chains = 19; hasher }),
    Sim.Tpca_workload.run config
      (Demux.Registry.Hashed_mtf { chains = 19; hasher }),
    Sim.Tpca_workload.run config
      (Demux.Registry.Sequent { chains = 100; hasher }) )

let print_e17 () =
  section "E17: hashing + move-to-front vs simply more chains (Section 3.5)";
  let plain, mtf, more_chains = e17 () in
  row "sequent H=19      : %.2f PCBs/packet\n" plain.Sim.Report.overall_mean;
  row "hashed-mtf H=19   : %.2f  (paper: at best ~2x better)\n"
    mtf.Sim.Report.overall_mean;
  row "sequent H=100     : %.2f  (paper: ~5x better — the better buy)\n"
    more_chains.Sim.Report.overall_mean

let e18 () =
  let config =
    Sim.Tpca_workload.default_config ~duration:60.0 validation_params
  in
  Sim.Tpca_workload.run config (Demux.Registry.Conn_id { capacity = 2048 })

let print_e18 () =
  section "E18: connection-ID direct indexing (Section 3.5 counterfactual)";
  let report = e18 () in
  row "conn-id cost: exactly %.2f PCB/packet — what TP4/X.25/XTP buy;\n"
    report.Sim.Report.overall_mean;
  row "hashing gets within a small constant of it without protocol changes.\n"

let e19 () =
  let config =
    Sim.Tpca_workload.default_config ~duration:120.0 validation_params
  in
  let delayed = { config with Sim.Tpca_workload.delayed_acks = true } in
  ( Sim.Tpca_workload.run config Demux.Registry.Bsd,
    Sim.Tpca_workload.run delayed Demux.Registry.Bsd,
    Sim.Tpca_workload.run config Demux.Registry.Sr_cache,
    Sim.Tpca_workload.run delayed Demux.Registry.Sr_cache )

let print_e19 () =
  section "E19: delayed acknowledgements (paper footnote 2)";
  let bsd, bsd_delayed, sr, sr_delayed = e19 () in
  row "bsd      : normal %.1f  delayed-acks %.1f  (paper: 'no effect at the server')\n"
    bsd.Sim.Report.overall_mean bsd_delayed.Sim.Report.overall_mean;
  row "sr-cache : normal %.1f  delayed-acks %.1f  (send cache no longer evicted by query acks)\n"
    sr.Sim.Report.overall_mean sr_delayed.Sim.Report.overall_mean

let e20 () =
  let config =
    Sim.Tpca_workload.default_config ~duration:120.0 validation_params
  in
  let chatty = { config with Sim.Tpca_workload.extra_query_packets = 2 } in
  ( Sim.Tpca_workload.run config Demux.Registry.Bsd,
    Sim.Tpca_workload.run chatty Demux.Registry.Bsd )

let print_e20 () =
  section "E20: the hit-ratio pitfall (Section 3.4, chatty clients)";
  let base, chatty = e20 () in
  let per_txn r packets_per_txn =
    r.Sim.Report.overall_mean *. packets_per_txn
  in
  row "efficient client : hit rate %.4f, %.1f PCBs/packet, %.0f PCBs/transaction\n"
    base.Sim.Report.hit_rate base.Sim.Report.overall_mean (per_txn base 2.0);
  row "3x-chatty client : hit rate %.4f, %.1f PCBs/packet, %.0f PCBs/transaction\n"
    chatty.Sim.Report.hit_rate chatty.Sim.Report.overall_mean (per_txn chatty 4.0);
  row "Hit ratio soars; work per transaction does not drop — 'the miss\n";
  row "penalty dominates the hit ratio' (paper Section 3.4).\n"

let e21_splay () =
  let config =
    Sim.Tpca_workload.default_config ~duration:120.0 validation_params
  in
  ( Sim.Tpca_workload.run config Demux.Registry.Splay,
    Sim.Tpca_workload.run config
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative }) )

let print_e21 () =
  section "E21 (extension): splay tree vs hashed chains";
  let splay, sequent = e21_splay () in
  row "splay      : %.2f PCBs/packet (worst %d) — self-adjusting, no tuning knob\n"
    splay.Sim.Report.overall_mean splay.Sim.Report.max_examined;
  row "sequent-19 : %.2f PCBs/packet (worst %d)\n"
    sequent.Sim.Report.overall_mean sequent.Sim.Report.max_examined;
  row "Splaying exploits the txn->ack locality the paper's caches chase,\n";
  row "with an O(log N) cold cost; 1992 hardware preferred hashing's\n";
  row "simpler memory behaviour, and so do modern stacks.\n"

let e22 () =
  Parallel.Throughput.scaling_table ~lookups_per_domain:20_000
    ~domains:[ 1; 2; 4 ]
    Parallel.Throughput.
      [ Coarse_bsd; Coarse_sequent 19; Striped_sequent 19 ]

let print_e22 () =
  section "E22 (extension): parallel TCP, the paper's context [Dov90]";
  Format.printf "%a" Parallel.Throughput.pp_results (e22 ());
  row
    "A single lock serialises every inbound packet (coarse throughput\n\
     degrades as domains are added); per-chain locks let packets for\n\
     different connections proceed in parallel — the other reason\n\
     Sequent's parallel TCP hashed its PCBs.\n"

let e23 () =
  let config = Sim.Mixed_workload.default_config ~oltp_users:1000 () in
  List.map
    (Sim.Mixed_workload.run config)
    Demux.Registry.
      [ Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative } ]

let print_e23 () =
  section "E23: mixed OLTP + bulk traffic (the abstract's full claim)";
  Format.printf "%a" Sim.Mixed_workload.pp_results (e23 ());
  row
    "Sequent is an order of magnitude better on the OLTP class while\n\
     still catching the bulk trains in its per-chain caches; note the\n\
     send/receive cache's OLTP cost is WORSE here than under pure\n\
     OLTP — the bulk stream keeps evicting its two cache slots.\n"

let e24 () =
  let config =
    Sim.Tpca_workload.default_config ~duration:120.0 validation_params
  in
  List.map
    (fun entries ->
      ( entries,
        Analysis.Lru_model.cost validation_params ~entries,
        (Sim.Tpca_workload.run config
           (Demux.Registry.Lru_cache { entries }))
          .Sim.Report.overall_mean ))
    [ 1; 8; 64; 256 ]

let print_e24 () =
  section "E24 (extension): would a bigger cache have saved BSD?";
  row "%-10s %12s %12s\n" "K entries" "model" "simulated";
  List.iter
    (fun (entries, model, simulated) ->
      row "%-10d %12.1f %12.1f\n" entries model simulated)
    (e24 ());
  row
    "A K-entry LRU cache starts catching response acks once K exceeds\n\
     the response-window packet count (~%.0f here) — but the floor is\n\
     still an order of magnitude above sequent-19's ~26.  Bigger\n\
     caches cannot rescue the linear scan; the miss penalty dominates.\n"
    (2.0 *. 0.1 *. 0.201 *. 999.0)

let e25 () =
  (* Think-time distribution ablation: same mean (10 s), different
     shapes.  MTF's TPC/A advantage came from exponential randomness;
     Sequent does not care. *)
  let base = Sim.Tpca_workload.default_config ~duration:120.0 validation_params in
  let shapes =
    [ ("truncated-exp", base.Sim.Tpca_workload.think);
      ("uniform(5,15)", Numerics.Distribution.uniform ~min:5.0 ~max:15.0);
      ("deterministic", Numerics.Distribution.deterministic 10.0) ]
  in
  List.map
    (fun (label, think) ->
      let config =
        { base with
          Sim.Tpca_workload.think;
          stagger =
            (* Deterministic think needs staggered starts to avoid a
               degenerate thundering herd. *)
            (match label with
            | "deterministic" -> Sim.Tpca_workload.Even
            | _ -> base.Sim.Tpca_workload.stagger) }
      in
      ( label,
        (Sim.Tpca_workload.run config Demux.Registry.Mtf).Sim.Report.overall_mean,
        (Sim.Tpca_workload.run config
           (Demux.Registry.Sequent
              { chains = 19; hasher = Hashing.Hashers.multiplicative }))
          .Sim.Report.overall_mean ))
    shapes

let print_e25 () =
  section "E25 (extension): think-time shape ablation (Section 3.2's caveat)";
  row "%-16s %10s %12s\n" "think time" "mtf" "sequent-19";
  List.iter
    (fun (label, mtf, sequent) -> row "%-16s %10.1f %12.2f\n" label mtf sequent)
    (e25 ());
  row
    "MTF's win over BSD (~%.0f) exists only while think times are\n\
     random; make them deterministic and it collapses to ~N.  The\n\
     hashed scheme is insensitive to the shape — robustness the paper\n\
     credits when dismissing move-to-front.\n"
    (Analysis.Bsd_model.cost validation_params)

let e28 () =
  Parallel.Throughput.scaling_table ~lookups_per_domain:20_000
    ~domains:[ 1; 2; 4; 8 ] ~batches:[ 1; 8; 64 ]
    Parallel.Throughput.[ Striped_sequent 19 ]

let print_e28 () =
  section "E28 (extension): batched demultiplexing amortises the stripe locks";
  Format.printf "%a" Parallel.Throughput.pp_results (e28 ());
  row
    "Per-packet lookup pays one mutex acquisition per packet; grouping\n\
     a burst by stripe and taking each stripe's lock once per batch\n\
     spreads that cost over the batch, so batched throughput pulls\n\
     ahead as domains (lock traffic) grow.  Timing is the monotonic\n\
     ns clock; per-lookup latencies are batch-amortised.\n"

let bench_seed = 42

(* E29: flat open-addressing PCB table vs chained Sequent, wall-clock
   and minor-heap allocation per warm lookup (DESIGN.md section 10).
   Both paths are allocation-free by construction; the regression bar
   is flat <= chained on {e both} metrics at every population. *)

let e29_populations = [ 100; 1_000; 10_000 ]

type e29_row = {
  n : int;
  chained_ns : float;
  chained_words : float;
  flat_ns : float;
  flat_words : float;
}

(* Best-of-[trials] ns per lookup and minor-words per lookup for
   [run lookups].  Minimum over trials on both metrics: the floor is
   the signal, everything above it is scheduler noise (ns) or
   measurement-harness boxing (words). *)
let measure_lookups ~trials ~lookups run =
  let best_ns = ref infinity and best_words = ref infinity in
  for _ = 1 to trials do
    let words_before = Gc.minor_words () in
    let t0 = Obs.Clock.now_ns () in
    run lookups;
    let t1 = Obs.Clock.now_ns () in
    let words_after = Gc.minor_words () in
    let per = float_of_int lookups in
    let ns = float_of_int (t1 - t0) /. per in
    if ns < !best_ns then best_ns := ns;
    let words = (words_after -. words_before) /. per in
    if words < !best_words then best_words := words
  done;
  (!best_ns, !best_words)

let e29_measure ~trials ~lookups n =
  let population = Sim.Topology.flows n in
  let rng = Numerics.Rng.create ~seed:bench_seed in
  let order = Array.init lookups (fun _ -> Numerics.Rng.int rng ~bound:n) in
  let chained = Demux.Sequent.create ~chains:19 () in
  Array.iter (fun f -> ignore (Demux.Sequent.insert chained f ())) population;
  let flat = Demux.Flat_table.create ~initial_capacity:n () in
  Array.iteri
    (fun id f ->
      Demux.Flat_table.replace flat ~w0:(Demux.Flow_key.w0_of_flow f)
        ~w1:(Demux.Flow_key.w1_of_flow f)
        (Demux.Pcb.make ~id ~flow:f ()))
    population;
  let run_chained count =
    for k = 0 to count - 1 do
      ignore (Demux.Sequent.lookup_pcb chained population.(order.(k)))
    done
  in
  let run_flat count =
    for k = 0 to count - 1 do
      let f = population.(order.(k)) in
      ignore
        (Demux.Flat_table.find flat ~w0:(Demux.Flow_key.w0_of_flow f)
           ~w1:(Demux.Flow_key.w1_of_flow f))
    done
  in
  (* Warm both tables (fault in code paths and caches) before timing. *)
  run_chained (min lookups 1_000);
  run_flat (min lookups 1_000);
  let chained_ns, chained_words = measure_lookups ~trials ~lookups run_chained in
  let flat_ns, flat_words = measure_lookups ~trials ~lookups run_flat in
  { n; chained_ns; chained_words; flat_ns; flat_words }

let e29 ~smoke () =
  let trials = if smoke then 3 else 5 in
  let lookups = if smoke then 50_000 else 200_000 in
  List.map (e29_measure ~trials ~lookups) e29_populations

(* The tentpole's acceptance bar, enforced wherever E29 runs: the flat
   table must not lose to the chained baseline on time or allocation.
   Allocation gets a hair of slack for the measurement harness's own
   float boxing (fractions of a word per lookup at these counts). *)
let assert_e29 rows =
  List.iter
    (fun r ->
      if r.flat_ns > r.chained_ns then begin
        Printf.eprintf
          "E29 REGRESSION: flat %.1f ns/lookup > chained %.1f at N=%d\n"
          r.flat_ns r.chained_ns r.n;
        exit 1
      end;
      if r.flat_words > r.chained_words +. 0.01 then begin
        Printf.eprintf
          "E29 REGRESSION: flat %.4f minor words/lookup > chained %.4f at N=%d\n"
          r.flat_words r.chained_words r.n;
        exit 1
      end)
    rows

let print_e29 () =
  section "E29 (extension): flat PCB table vs chained Sequent, warm lookups";
  let rows = e29 ~smoke:false () in
  row "%-8s %14s %14s %16s %16s\n" "N" "chained ns" "flat ns" "chained words"
    "flat words";
  List.iter
    (fun r ->
      row "%-8d %14.1f %14.1f %16.4f %16.4f\n" r.n r.chained_ns r.flat_ns
        r.chained_words r.flat_words)
    rows;
  assert_e29 rows;
  row
    "Same multiplicative hash, same packed 96-bit key; the chained\n\
     walk pointer-chases boxed list nodes while the flat table probes\n\
     tag-filtered inline words.  Both paths allocate nothing per\n\
     lookup (the words columns are measurement-harness noise), so the\n\
     gap is pure memory locality — and it widens with N, which is the\n\
     Cuckoo++/DPDK argument for flat connection tracking.\n"

(* E31: per-insert latency tail across a churn ramp, incremental vs
   doubling resize (DESIGN.md section 12).  Keys are synthesized
   directly as packed words — no flow allocation, so the timed window
   sees only the table.  The ramp crosses several growth triggers;
   incremental resize must keep the tail flat while doubling pays its
   stop-the-world copy, which shows up as a max-latency cliff orders
   of magnitude over p50.

   A third run — the same ramp on a table pre-sized so it never grows
   — is the control.  Single-shot insert timings on a busy host have
   a tail of their own (scheduler ticks, cache and TLB misses on a
   multi-megabyte table) that sits far above 8x the ~300 ns median
   and hits every policy alike, so the flat-tail bar is applied to
   the {e excess} of incremental's p999 over the control's p999: the
   latency the resize machinery itself adds at the tail. *)

type e31_row = {
  policy : string;
  p50_ns : int;
  p999_ns : int;
  max_ns : int;
  resizes : int;
}

let e31_measure ~warmup ~total ?initial_capacity ~name resize =
  let table : int Demux.Flat_table.t =
    Demux.Flat_table.create ?initial_capacity ~resize ()
  in
  (* Distinct per-index keys: w0 carries the index, w1 is a mix. *)
  let w1_of i = (i lxor 0x2545F491) * 0x9E3779B9 in
  let insert i = Demux.Flat_table.replace table ~w0:i ~w1:(w1_of i) i in
  let remove i = Demux.Flat_table.remove table ~w0:i ~w1:(w1_of i) in
  (* Churn: every 16th insert retires a key 8 behind it (untimed), so
     the ramp exercises backward-shift deletion and migration under a
     mixed mutation stream, not a pure append.  Gc.minor between
     timed inserts keeps collector pauses out of the latency samples:
     the tail being measured is the table's, not the heap's. *)
  for i = 0 to warmup - 1 do
    insert i;
    if i land 15 = 15 then remove (i - 8);
    if i land 4095 = 0 then Gc.minor ()
  done;
  let timed = total - warmup in
  let latencies = Array.make timed 0 in
  for k = 0 to timed - 1 do
    let i = warmup + k in
    let t0 = Obs.Clock.now_ns () in
    insert i;
    let t1 = Obs.Clock.now_ns () in
    latencies.(k) <- t1 - t0;
    if i land 15 = 15 then remove (i - 8);
    if i land 4095 = 0 then Gc.minor ()
  done;
  (if Sys.getenv_opt "E31_DEBUG" <> None then begin
     let over n =
       Array.fold_left (fun a x -> if x > n then a + 1 else a) 0 latencies
     in
     Printf.eprintf "[%s] over2u=%d over4u=%d over8u=%d over16u=%d\n" name
       (over 2000) (over 4000) (over 8000) (over 16000);
     let idx = Array.init timed Fun.id in
     Array.sort (fun a b -> compare latencies.(b) latencies.(a)) idx;
     for r = 0 to 119 do
       if r < 20 || r >= 100 then
         Printf.eprintf "  top%-3d ns=%-8d at insert %d\n" r
           latencies.(idx.(r)) (warmup + idx.(r))
     done
   end);
  Array.sort (fun (a : int) b -> compare a b) latencies;
  { policy = name;
    p50_ns = latencies.(timed / 2);
    p999_ns = latencies.(timed * 999 / 1000);
    max_ns = latencies.(timed - 1);
    resizes = Demux.Flat_table.resizes table }

(* Host noise on a shared core arrives in bursts (scheduler ticks,
   vCPU steal) that can inflate a whole measurement epoch; noise only
   ever adds latency, so the best of three repetitions is the closest
   estimate of the quiet-host tail each policy actually has. *)
let e31_best ~warmup ~total ?initial_capacity ~name resize =
  let best = ref (e31_measure ~warmup ~total ?initial_capacity ~name resize) in
  for _ = 2 to 3 do
    let r = e31_measure ~warmup ~total ?initial_capacity ~name resize in
    if r.p999_ns < !best.p999_ns then best := r
  done;
  !best

let e31 ~smoke () =
  let warmup, total =
    if smoke then (10_000, 120_000) else (100_000, 1_000_000)
  in
  (* [2 * total] rounds up to a power of two past the 7/8 growth
     trigger for the whole ramp, so the control run never resizes. *)
  [ e31_best ~warmup ~total ~name:"incremental" Demux.Flat_table.Incremental;
    e31_best ~warmup ~total ~name:"doubling" Demux.Flat_table.Doubling;
    e31_best ~warmup ~total ~initial_capacity:(2 * total) ~name:"presized"
      Demux.Flat_table.Incremental ]

(* The tentpole's acceptance bar: the ramp really crosses growth
   triggers for both growing policies, the control never grows,
   incremental resize keeps the tail flat, and doubling still
   exhibits its copy cliff — if the cliff vanished, doubling changed
   and the comparison is no longer measuring what it claims.

   "Flat" is judged against the doubling run, not the pre-sized one:
   the pre-sized table coasts at under half load, so its tail misses
   the probe cost every growing policy pays while hovering near the
   7/8 trigger.  Doubling shares incremental's exact load trajectory
   and does zero migration work between triggers, and its copy cost
   is confined to a handful of max-latency samples far above the
   p999 rank — so at p999, doubling IS the no-resize-cost baseline,
   and incremental's excess over it is pure migration tax.  That
   excess must stay within 8x p50 — up to measurement noise, whose
   scale the pre-sized control exposes: on a host where a churn ramp
   with no resizing at all already shows a single-shot p999 of many
   multiples of p50, the excess is allowed up to twice the control's
   p999 instead.  (On a quiet machine the 8x-p50 arm dominates and
   the bar is the strict one.) *)
let assert_e31 rows =
  let find name =
    match List.find_opt (fun r -> r.policy = name) rows with
    | Some r -> r
    | None ->
      Printf.eprintf "E31 BROKEN: missing %s row\n" name;
      exit 1
  in
  let incremental = find "incremental" in
  let doubling = find "doubling" in
  let presized = find "presized" in
  if presized.resizes <> 0 then begin
    Printf.eprintf
      "E31 BROKEN: pre-sized control resized %d time(s) — it no longer \
       isolates the noise floor\n"
      presized.resizes;
    exit 1
  end;
  List.iter
    (fun r ->
      if r.resizes < 2 then begin
        Printf.eprintf
          "E31 BROKEN: %s ramp crossed only %d growth trigger(s)\n" r.policy
          r.resizes;
        exit 1
      end)
    [ incremental; doubling ];
  let excess = incremental.p999_ns - doubling.p999_ns in
  let bar = max (8 * incremental.p50_ns) (2 * presized.p999_ns) in
  if excess > bar then begin
    Printf.eprintf
      "E31 REGRESSION: incremental p999 %d ns exceeds doubling's p999 \
       %d ns by %d ns > max(8x p50 %d ns, 2x pre-sized p999 %d ns)\n"
      incremental.p999_ns doubling.p999_ns excess incremental.p50_ns
      presized.p999_ns;
    exit 1
  end;
  if doubling.max_ns < 50 * doubling.p50_ns then begin
    Printf.eprintf
      "E31 BROKEN: doubling max %d ns < 50x p50 %d ns — the \
       stop-the-world cliff is missing\n"
      doubling.max_ns doubling.p50_ns;
    exit 1
  end

let print_e31 () =
  section
    "E31 (extension): insert-latency tail under growth, incremental vs \
     doubling";
  let rows = e31 ~smoke:false () in
  row "%-14s %10s %10s %12s %9s\n" "policy" "p50 ns" "p999 ns" "max ns"
    "resizes";
  List.iter
    (fun r ->
      row "%-14s %10d %10d %12d %9d\n" r.policy r.p50_ns r.p999_ns r.max_ns
        r.resizes)
    rows;
  assert_e31 rows;
  row
    "Same Robin-Hood table, same churn ramp (inserts with interleaved\n\
     removes, population 100k -> ~1M); the pre-sized row never grows\n\
     and so measures the host's own single-shot timing tail.  Doubling\n\
     stops the world at every growth trigger, so its worst insert\n\
     costs a full-table copy; incremental resize migrates a bounded\n\
     handful of entries per mutation, so its p999 tracks the control's\n\
     to within a few multiples of p50 — the latency a connection-setup\n\
     packet sees no longer depends on whether it arrived at a resize\n\
     boundary.\n"

(* E33: striped locks vs lock-free epoch reads across the domain
   ladder (DESIGN.md section 13).  The same read-heavy harness drives
   both tables; the acceptance bar is that the epoch table's read
   throughput still leads at 8 domains, where striping's
   one-mutex-per-lookup cost is at its worst.  The two read-path
   guarantees behind the claim are measured, not asserted in prose: a
   warm read phase performs zero mutex acquisitions and allocates zero
   minor words per lookup. *)

let e33_domains = [ 1; 2; 4; 8 ]
let e33_targets = [ "striped:sequent-19"; "epoch:table" ]

let e33 ~smoke () =
  let lookups_per_domain = if smoke then 20_000 else 100_000 in
  Parallel.Throughput.scaling_table ~lookups_per_domain ~seed:bench_seed
    ~domains:e33_domains
    Parallel.Throughput.[ Striped_sequent 19; Epoch_table ]

let e33_read_path ~smoke () =
  let population = if smoke then 10_000 else 50_000 in
  let lookups = if smoke then 100_000 else 400_000 in
  let flows = Sim.Topology.flows population in
  let t = Epoch.Table.create () in
  Epoch.Table.load t
    (Array.mapi
       (fun i f ->
         (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f, i))
       flows);
  let rng = Numerics.Rng.create ~seed:bench_seed in
  let order =
    Array.init lookups (fun _ -> Numerics.Rng.int rng ~bound:population)
  in
  (* Warm: the one-time reader registration happens here, before the
     counters are read. *)
  for k = 0 to 999 do
    ignore (Epoch.Table.find_flow t flows.(order.(k)))
  done;
  let locks_before = Epoch.Table.lock_acquisitions t in
  let words_before = Gc.minor_words () in
  for k = 0 to lookups - 1 do
    ignore (Epoch.Table.find_flow t flows.(order.(k)))
  done;
  let words =
    (Gc.minor_words () -. words_before) /. float_of_int lookups
  in
  (Epoch.Table.lock_acquisitions t - locks_before, words)

let e33_rate results ~target ~domains =
  let found =
    List.find_opt
      (fun (r : Parallel.Throughput.result) ->
        r.Parallel.Throughput.target = target
        && r.Parallel.Throughput.domains = domains
        && r.Parallel.Throughput.batch = 1)
      results
  in
  match found with
  | Some r -> r.Parallel.Throughput.lookups_per_second
  | None ->
    Printf.eprintf "E33: missing %s at %d domains\n" target domains;
    exit 1

let assert_e33 results (mutex_delta, words_per_lookup) =
  let striped = e33_rate results ~target:"striped:sequent-19" ~domains:8
  and epoch = e33_rate results ~target:"epoch:table" ~domains:8 in
  if not (epoch > striped) then begin
    Printf.eprintf
      "E33 REGRESSION: epoch %.0f lookups/s <= striped %.0f at 8 domains\n"
      epoch striped;
    exit 1
  end;
  if mutex_delta <> 0 then begin
    Printf.eprintf
      "E33 REGRESSION: warm epoch read phase took %d mutex acquisitions\n"
      mutex_delta;
    exit 1
  end;
  (* The same harness-boxing slack as E29's allocation bar. *)
  if words_per_lookup > 0.01 then begin
    Printf.eprintf
      "E33 REGRESSION: warm epoch lookup allocates %.4f minor words\n"
      words_per_lookup;
    exit 1
  end

let print_e33 () =
  section "E33 (extension): lock-free epoch reads vs striped locks";
  let results = e33 ~smoke:false () in
  Format.printf "%a" Parallel.Throughput.pp_results results;
  let mutex_delta, words = e33_read_path ~smoke:false () in
  row "warm read phase: %d mutex acquisitions, %.4f minor words/lookup\n"
    mutex_delta words;
  assert_e33 results (mutex_delta, words);
  row
    "Striping spreads the lock, it does not remove it: every lookup\n\
     still pays one acquisition, so the striped curve flattens as\n\
     domains grow.  An epoch reader pins (one atomic store), probes an\n\
     immutable published region and unpins — no mutex, no allocation —\n\
     so read throughput keeps scaling; writers pay instead with\n\
     copy-publish-retire work and grace-period reclamation\n\
     (DESIGN.md section 13).\n"

(* E34: churn at 10M resident flows, heap vs off-heap slot storage
   (DESIGN.md section 14).  E31 measured the resize machinery with GC
   pauses deliberately flushed between samples; E34 measures the
   opposite regime — the one a real receive path lives in.

   The ramp to 10M flows is deliberately UNTIMED: growth steps
   allocate multi-hundred-megabyte regions, and on the Bigarray side
   each such allocation also charges the GC's custom-memory
   accounting, scheduling extra major work.  Both are one-time
   construction costs; timing them would measure the ramp's allocation
   spikes, not the storage backends.  What E34 times is the steady
   state after the ramp: a churn plateau where every op inserts a
   fresh flow, removes the oldest resident one, and allocates one
   ~1 KB buffer (a stand-in for the packet being demultiplexed).
   With the shrunken minor heap below, those buffers force a minor
   collection every ~130 ops — an order of magnitude above the p999
   rank — so the op-latency tail measures what collections cost the
   packet path.

   A subtlety the pacing design forces on the gates: how much of the
   table's marking cost reaches the per-op tail depends on the
   runtime's slice scheduling, not on anything this code promises.
   At the full 10M configuration the collections riding on timed ops
   visibly carry the table (pauses tens of times worse on the heap
   backend), but at other scales — and under a tightened
   space_overhead, which makes the off-heap run's tiny major heap
   cycle continuously — the pacing can amortize or even invert the
   per-op comparison.  So the tail gate conservatively requires only
   parity (1.5x).  Where residency has signal no pacing can amortize
   is the cost of COMPLETING a cycle: a forced [Gc.full_major] — what
   compaction, a checkpoint, or any explicit collection pays — must
   mark the whole table on the heap backend and none of it off-heap.
   E34 measures that stall directly (best of three) and gates it
   hard.

   Alongside latency: bytes/flow (slot storage over resident flows,
   drained, against the packed lower bound — the smallest power-of-two
   region that admits the population at 7/8 load), the minor-pause
   distribution (a forced [Gc.minor] sampled every 1024 ops), and the
   warm-hit zero-allocation guarantee re-checked on the off-heap
   index. *)

type e34_row = {
  backend : string;
  e34_p50_ns : int;
  e34_p999_ns : int;
  e34_max_ns : int;
  bytes_per_flow : float;
  bytes_ratio : float;  (* resident bytes / packed lower bound *)
  pause_p50_ns : int;
  pause_p99_ns : int;
  full_major_ns : int;  (* cycle-completion stall: forced full major *)
  warm_words_per_lookup : float;
  e34_resizes : int;
}

let rec e34_pow2_at_least n c = if c >= n then c else e34_pow2_at_least n (c * 2)

(* Smallest power-of-two slot count (>= the table's 8-slot minimum)
   that holds [n] flows under the 7/8 growth trigger: the denominator
   of the bytes/flow ratio.  Power-of-two capacity is part of the
   design (mask probing), so the honest lower bound is the best
   power-of-two table, not a fictional perfectly-sized one. *)
let e34_lower_bound_bytes n =
  let rec fit cap = if n * 8 <= cap * 7 then cap else fit (cap * 2) in
  let cap = fit (e34_pow2_at_least 8 8) in
  cap * Demux.Storage.Heap.bytes_per_slot

let e34_measure (module M : Demux.Packed_table.S) ~total ~plateau =
  let table = M.create () in
  let w1_of i = (i lxor 0x2545F491) * 0x9E3779B9 in
  let insert i = M.replace table ~w0:i ~w1:(w1_of i) i in
  let remove i = M.remove table ~w0:i ~w1:(w1_of i) in
  (* Untimed ramp: build the resident population (15/16 of [total])
     through the same 1-in-16 churn shape E31 uses.  Timing starts
     only at the plateau, so region-allocation spikes never pollute
     the latency histogram. *)
  for i = 0 to total - 1 do
    insert i;
    if i land 15 = 15 then remove (i - 8)
  done;
  (* Finish the in-flight drain before timing: mutations on a resident
     key still run the migration step, so this terminates in
     O(pending) steps.  Key 0 is never removed (the ramp removes only
     keys = 7 mod 16, the plateau only keys >= total/16). *)
  while M.pending_migration table > 0 do
    M.replace table ~w0:0 ~w1:(w1_of 0) 0
  done;
  (* Settle the ramp's scheduled major work (including the Bigarray
     custom-memory charge) so the plateau starts from a quiesced
     collector on both backends. *)
  Gc.full_major ();
  let resident0 = M.length table in
  (* A 64-slot rolling window keeps ~64 KB of noise data live across
     minor collections, so promotion keeps scheduling major cycles. *)
  let noise = Array.make 64 Bytes.empty in
  let next = ref total in
  (* One plateau op = insert a fresh flow, evict the oldest resident
     one (the population stays ~constant, so no resizes fire), and
     allocate one ~1 KB packet stand-in — all inside the timed
     window.  About 1 op in 16 draws an eviction key the ramp already
     removed; the miss costs a probe, identically on both backends. *)
  let measure_pass () =
    let latency = Obs.Histogram.create () in
    let pauses = Obs.Histogram.create () in
    for k = 0 to plateau - 1 do
      let i = !next in
      incr next;
      let t0 = Obs.Clock.now_ns () in
      Array.unsafe_set noise (k land 63) (Bytes.create 1000);
      insert i;
      remove (i - resident0);
      let t1 = Obs.Clock.now_ns () in
      Obs.Histogram.record latency (t1 - t0);
      if k land 1023 = 1023 then begin
        let p0 = Obs.Clock.now_ns () in
        Gc.minor ();
        let p1 = Obs.Clock.now_ns () in
        Obs.Histogram.record pauses (p1 - p0)
      end
    done;
    (latency, pauses)
  in
  (* Best-of-two passes by p999, same rationale as E31's
     best-of-three: host noise only ever adds latency. *)
  let l1, ps1 = measure_pass () in
  let l2, ps2 = measure_pass () in
  let latency, pauses =
    if Obs.Histogram.p999 l2 < Obs.Histogram.p999 l1 then (l2, ps2)
    else (l1, ps1)
  in
  let resident = M.length table in
  let bytes = M.bytes table in
  let warm_words =
    (* Probe a window of recently inserted plateau keys — all resident
       by construction (evictions trail the insert frontier by
       [resident0] >> 4096).  Warm once so the measured loop sees only
       steady-state finds. *)
    let base = !next - 4096 in
    let key k = base + (k land 4095) in
    for k = 0 to 999 do
      let i = key k in
      ignore (M.find table ~w0:i ~w1:(w1_of i))
    done;
    let lookups = 200_000 in
    let before = Gc.minor_words () in
    for k = 0 to lookups - 1 do
      let i = key k in
      ignore (M.find table ~w0:i ~w1:(w1_of i))
    done;
    (Gc.minor_words () -. before) /. float_of_int lookups
  in
  (* The cycle-completion stall: what any caller of [Gc.full_major]
     (compaction, a checkpoint, heap diagnostics) pays while the table
     is resident.  Best of three — host noise only adds latency. *)
  let full_major_ns =
    let best = ref max_int in
    for _ = 1 to 3 do
      let t0 = Obs.Clock.now_ns () in
      Gc.full_major ();
      let t1 = Obs.Clock.now_ns () in
      if t1 - t0 < !best then best := t1 - t0
    done;
    !best
  in
  { backend = M.backend;
    e34_p50_ns = Obs.Histogram.p50 latency;
    e34_p999_ns = Obs.Histogram.p999 latency;
    e34_max_ns = Obs.Histogram.max_value latency;
    bytes_per_flow = float_of_int bytes /. float_of_int resident;
    bytes_ratio =
      float_of_int bytes /. float_of_int (e34_lower_bound_bytes resident);
    pause_p50_ns = Obs.Histogram.p50 pauses;
    pause_p99_ns = Obs.Histogram.p99 pauses;
    full_major_ns;
    warm_words_per_lookup = warm_words;
    e34_resizes = M.resizes table }

(* The minor heap is shrunk for the duration so the alloc-noise
   stream yields a minor collection every ~130 ops — an order of
   magnitude above the p999 rank — then restored.  Pacing is left at
   the defaults: tightening space_overhead makes the OFF-HEAP run's
   tiny major heap cycle continuously (frequent cycle-end pauses)
   while barely changing the heap run's amortized slices, which
   inverts the comparison for reasons that have nothing to do with
   storage. *)
let e34_run (module M : Demux.Packed_table.S) ~total ~plateau =
  let control = Gc.get () in
  Gc.set { control with Gc.minor_heap_size = 16384 };
  Fun.protect
    ~finally:(fun () ->
      Gc.set control;
      Gc.compact ())
    (fun () -> e34_measure (module M : Demux.Packed_table.S) ~total ~plateau)

let e34 ~smoke () =
  (* The full ramp's resident population crosses 10M flows (total
     minus the 1-in-16 churn removes); smoke keeps the same shape at
     CI scale, sized so the plateau's net insert drift stays under the
     growth trigger (no resize inside timed windows). *)
  let total = if smoke then 110_000 else 10_700_000 in
  let plateau = if smoke then 40_000 else 2_000_000 in
  let heap = e34_run (module Demux.Packed_table.Heap) ~total ~plateau in
  let offheap = e34_run (module Demux.Packed_table.Offheap) ~total ~plateau in
  [ heap; offheap ]

let assert_e34 ~smoke rows =
  let find backend =
    match List.find_opt (fun r -> r.backend = backend) rows with
    | Some r -> r
    | None ->
      Printf.eprintf "E34 BROKEN: missing %s row\n" backend;
      exit 1
  in
  let heap = find "heap" in
  let offheap = find "offheap" in
  List.iter
    (fun r ->
      if r.e34_resizes < 2 then begin
        Printf.eprintf
          "E34 BROKEN: %s ramp crossed only %d growth trigger(s)\n" r.backend
          r.e34_resizes;
        exit 1
      end;
      if r.bytes_ratio > 1.25 then begin
        Printf.eprintf
          "E34 REGRESSION: %s resident storage is %.3fx the packed \
           lower bound (bar 1.25x) — a drain leak or layout bloat\n"
          r.backend r.bytes_ratio;
        exit 1
      end)
    [ heap; offheap ];
  if offheap.warm_words_per_lookup > 0.01 then begin
    Printf.eprintf
      "E34 REGRESSION: warm off-heap hit allocates %.4f minor words\n"
      offheap.warm_words_per_lookup;
    exit 1
  end;
  (* The headline gates.  At smoke scale the table is a few MB, every
     GC effect is a coin flip between adjacent histogram octaves, and
     the only stable signal is the non-GC insert path, so smoke gates
     p50: off-heap accessors (Bigarray loads instead of array loads)
     must not be categorically slower than heap ones.  At full scale
     two gates apply.  The op-latency p999 is a PARITY bar with a
     1.5x noise allowance: the measured gap is far larger in
     off-heap's favor, but how much marking reaches the op tail is
     the runtime's slice-scheduling business (see the E34 header
     comment), so the gate only pins what the code promises — no
     regression.  The residency signal itself is gated where no
     pacing can amortize it: completing a
     full major cycle must mark ~0.5 GB of slot arrays on the heap
     backend and none of it off-heap, so the off-heap stall is
     required to come in at a quarter of the heap one (measured
     margin is ~100x; 4x keeps the gate honest under host noise). *)
  if smoke then begin
    if offheap.e34_p50_ns > 2 * heap.e34_p50_ns then begin
      Printf.eprintf
        "E34 REGRESSION: offheap p50 %d ns > 2x heap p50 %d ns — the \
         off-heap accessor path got categorically slower\n"
        offheap.e34_p50_ns heap.e34_p50_ns;
      exit 1
    end
  end
  else begin
    if 2 * offheap.e34_p999_ns > 3 * heap.e34_p999_ns then begin
      Printf.eprintf
        "E34 REGRESSION: offheap p999 %d ns > 1.5x heap p999 %d ns\n"
        offheap.e34_p999_ns heap.e34_p999_ns;
      exit 1
    end;
    if 4 * offheap.full_major_ns > heap.full_major_ns then begin
      Printf.eprintf
        "E34 REGRESSION: offheap full-major stall %d ns is not under \
         a quarter of the heap backend's %d ns — the collector is \
         still marking the slot storage\n"
        offheap.full_major_ns heap.full_major_ns;
      exit 1
    end
  end

let print_e34 () =
  section
    "E34 (extension): off-heap vs heap slot storage at 10M flows, \
     GC-exposed tail";
  let rows = e34 ~smoke:false () in
  row "%-10s %9s %9s %11s %8s %7s %11s %11s %10s %7s\n" "backend" "p50 ns"
    "p999 ns" "max ns" "B/flow" "ratio" "pause p50" "pause p99" "cycle ms"
    "words";
  List.iter
    (fun r ->
      row "%-10s %9d %9d %11d %8.1f %7.3f %11d %11d %10.1f %7.4f\n" r.backend
        r.e34_p50_ns r.e34_p999_ns r.e34_max_ns r.bytes_per_flow r.bytes_ratio
        r.pause_p50_ns r.pause_p99_ns
        (float_of_int r.full_major_ns /. 1e6)
        r.warm_words_per_lookup)
    rows;
  assert_e34 ~smoke:false rows;
  row
    "Same Robin-Hood machinery, same untimed churn ramp to >10M\n\
     resident flows, then a timed steady-state plateau\n\
     (insert + evict + 1 KB packet stand-in per op); the only\n\
     difference is where the slot arrays live.  On the heap they are\n\
     ~0.5 GB of live int arrays the collector must traverse every\n\
     major cycle, and the collections that land inside timed ops\n\
     carry that work; in Bigarray storage the GC sees five small\n\
     custom blocks per region, so the same collections cost little.\n\
     The cycle-completion stall (the cycle-ms column: a forced full\n\
     major, what compaction or any checkpoint pays) is O(table) on\n\
     the heap and O(noise) off-heap.  Bytes/flow is identical by\n\
     construction (33 bytes/slot, power-of-two capacity) — off-heap\n\
     costs nothing in space and takes the table out of the\n\
     collector's workload (the \"millions of users\" scaling claim,\n\
     ROADMAP item 2).\n"

(* ------------------------------------------------------------------ *)
(* E35: flat Robin-Hood vs bucketized cuckoo under hostile lookups.

   The flat table's miss cost is load-dependent: a negative lookup
   walks the probe run until it meets an empty or richer slot, so an
   attacker who fills the table (SYN flood) or aims every query at
   one home slot (collision flood) taxes every miss.  The cuckoo
   table's per-bucket negative-lookup filter is the counter-claim:
   when no resident of the queried key's class was ever displaced out
   of its primary bucket, a miss resolves after scanning that single
   bucket's tag vector — one cache line — and the worst case is
   bounded by construction at two buckets plus the stash, independent
   of load and of the attacker's key choices.

   Four lookup profiles at N in {10k, 100k, 1M} residents:

   - uniform         — hits, uniformly random residents;
   - zipf            — hits, Zipf(1) popularity (hot keys dominate);
   - collision-flood — misses crafted via the inverted multiplicative
                       hash so every query homes to slot/bucket 0 of
                       either table (the strongest keyed attack
                       against the shared primary hash — the cuckoo
                       side still answers from one filtered bucket,
                       because the second hash is independent);
   - syn-flood       — misses, uniformly random absent keys (the
                       paper-scale table-bloat attack, miss-heavy).

   Each cell reports best-of-trials wall clock and an untimed probe
   census over the query set.  Probe units are each table's natural
   cost unit — slots inspected for flat (including the terminating
   slot), buckets scanned plus stash entries examined for cuckoo —
   i.e. cache lines touched by the key compare loop.  Gates: at 1M
   under syn-flood the cuckoo misses must beat flat on both ns and
   probes; every cuckoo cell's max probes must respect the 2 + stash
   structural bound; and a warm cuckoo hit must not allocate, on
   either storage backend. *)

type e35_row = {
  e35_algo : string;
  e35_profile : string;
  e35_n : int;
  e35_ns : float;
  e35_probes : float;  (* mean probes per lookup over the query set *)
  e35_max_probes : int;
}

let e35_populations = [ 10_000; 100_000; 1_000_000 ]
let e35_profiles = [ "uniform"; "zipf"; "collision-flood"; "syn-flood" ]

(* Query sets cycle a power-of-two pool so the timed loop indexes with
   a mask (no bounds math on the hot path). *)
let e35_qlen = 65536

let e35_w1_of i = (i lxor 0x2545F491) * 0x9E3779B9

(* Modular inverse of the golden-ratio multiplier mod 2^32, by Newton
   iteration (x <- x * (2 - a*x) doubles the correct low bits each
   round; odd a is its own inverse mod 8, so six rounds overshoot
   32 bits).  This is the attacker's tool: with the inverse in hand,
   any desired hash output can be turned into a fold32 preimage. *)
let e35_golden_inv =
  let a = 0x9E3779B1 in
  let rec refine x rounds =
    if rounds = 0 then x
    else refine ((x * (2 - (a * x))) land 0xFFFFFFFF) (rounds - 1)
  in
  let inv = refine a 6 in
  assert ((a * inv) land 0xFFFFFFFF = 1);
  inv

(* The j-th crafted absent key: its multiplicative hash is j lsl 21,
   so the low 21 bits are zero and the key homes to slot/bucket 0
   under any power-of-two mask up to 2^21 — which covers the flat
   table's 2^21 slots and the cuckoo table's 2^18 buckets at N = 1M,
   and every smaller population by mask nesting.  Work backwards:
   pick the 32-bit product P = j lsl 23 (j < 512 keeps P in range),
   recover the fold32 preimage f = P * golden^-1, then split f across
   (w0, w1) — w0 carries a >= 2^35 marker so the key can never equal
   a resident (residents use w0 = i < 2^20), and w1's low 16 bits are
   zeroed so the fold's OR term comes from w0 alone. *)
let e35_crafted_key j =
  let j = j land 511 in
  let product = j lsl 23 in
  let fold = (e35_golden_inv * product) land 0xFFFFFFFF in
  let w0 = ((0x80000 + j) lsl 16) lor 0x1234 in
  let high = (w0 lsr 16) lxor ((w0 land 0xFFFF) lsl 16) in
  let w1 = (fold lxor high) lsl 16 in
  (w0, w1)

(* Zipf(1) sampling by inverse CDF over the harmonic weights — the
   same popularity shape the locality workload uses, built once per
   population (the prefix-sum array is transient). *)
let e35_zipf_indexes ~n ~count rng =
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. float_of_int (i + 1));
    cdf.(i) <- !total
  done;
  Array.init count (fun _ ->
      let u = Numerics.Rng.float rng *. !total in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cdf.(mid) < u then search (mid + 1) hi else search lo mid
      in
      search 0 (n - 1))

let e35_queries ~profile ~n ~seed =
  let qw0 = Array.make e35_qlen 0 and qw1 = Array.make e35_qlen 0 in
  let rng = Numerics.Rng.create ~seed in
  (match profile with
  | "uniform" ->
    for k = 0 to e35_qlen - 1 do
      let i = Numerics.Rng.int rng ~bound:n in
      qw0.(k) <- i;
      qw1.(k) <- e35_w1_of i
    done
  | "zipf" ->
    let indexes = e35_zipf_indexes ~n ~count:e35_qlen rng in
    for k = 0 to e35_qlen - 1 do
      qw0.(k) <- indexes.(k);
      qw1.(k) <- e35_w1_of indexes.(k)
    done
  | "collision-flood" ->
    for k = 0 to e35_qlen - 1 do
      let w0, w1 = e35_crafted_key k in
      qw0.(k) <- w0;
      qw1.(k) <- w1
    done
  | "syn-flood" ->
    (* Random absent keys: the w0 marker bit keeps them disjoint from
       residents without constraining either hash. *)
    for k = 0 to e35_qlen - 1 do
      qw0.(k) <- (1 lsl 40) lor Numerics.Rng.int rng ~bound:(1 lsl 30);
      qw1.(k) <- Numerics.Rng.int rng ~bound:max_int
    done
  | _ -> invalid_arg ("e35_queries: unknown profile " ^ profile));
  (qw0, qw1)

(* One (table, profile) cell: an untimed probe census over the
   distinct query pool, a warm pass, then best-of-trials wall clock
   over [lookups] mask-cycled membership tests.  Both tables pay the
   same closure call, so the comparison is probe work only. *)
let e35_measure_cell ~mem ~probe ~qw0 ~qw1 ~lookups ~trials =
  let sum = ref 0 and max_probes = ref 0 in
  for k = 0 to e35_qlen - 1 do
    let p = probe ~w0:qw0.(k) ~w1:qw1.(k) in
    sum := !sum + p;
    if p > !max_probes then max_probes := p
  done;
  for k = 0 to e35_qlen - 1 do
    ignore (mem ~w0:qw0.(k) ~w1:qw1.(k))
  done;
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Obs.Clock.now_ns () in
    for k = 0 to lookups - 1 do
      let i = k land (e35_qlen - 1) in
      ignore
        (mem ~w0:(Array.unsafe_get qw0 i) ~w1:(Array.unsafe_get qw1 i))
    done;
    let t1 = Obs.Clock.now_ns () in
    let ns = float_of_int (t1 - t0) /. float_of_int lookups in
    if ns < !best then best := ns
  done;
  (!best, float_of_int !sum /. float_of_int e35_qlen, !max_probes)

let e35 ~smoke () =
  let lookups = if smoke then 100_000 else 2_000_000 in
  let trials = if smoke then 2 else 3 in
  (* Populations stay full-size even under smoke: the miss-cost claim
     is about load, and a small table would test nothing.  Smoke only
     shortens the timed windows. *)
  List.concat_map
    (fun n ->
      let module F = Demux.Packed_table.Heap in
      let module C = Demux.Cuckoo_table.Heap in
      let flat = F.create () in
      for i = 0 to n - 1 do
        F.replace flat ~w0:i ~w1:(e35_w1_of i) i
      done;
      (* Finish the incremental migration so flat lookups probe one
         region — the steady state the resize policy converges to. *)
      while F.pending_migration flat > 0 do
        F.replace flat ~w0:0 ~w1:(e35_w1_of 0) 0
      done;
      let cuckoo = C.create () in
      for i = 0 to n - 1 do
        C.replace cuckoo ~w0:i ~w1:(e35_w1_of i) i
      done;
      List.concat_map
        (fun profile ->
          (* The syn-flood column measures the table mid-attack: the
             flood's embryonic connections have bloated both tables to
             just under their growth triggers (7/8 full for flat,
             15/16 for cuckoo) — the state the attack sustains, and
             the one where flat's miss runs are longest.  The flood
             keys live in a marker range disjoint from residents and
             from every query.  Profiles run in declaration order, so
             the hit columns are measured before the bloat.  No
             trigger is crossed (targets stop short), so capacity —
             and the crafted-collision mask argument — is unchanged. *)
          if profile = "syn-flood" then begin
            let flood_w0 j = (1 lsl 41) lor j in
            let flat_target = (F.capacity flat * 7 / 8) - 8 in
            let j = ref 0 in
            while F.length flat < flat_target do
              F.replace flat ~w0:(flood_w0 !j) ~w1:(e35_w1_of (!j + 7)) !j;
              incr j
            done;
            let cuckoo_target =
              (C.capacity cuckoo * 15 / 16)
              - Demux.Cuckoo_table.stash_capacity - 8
            in
            let j = ref 0 in
            while C.length cuckoo < cuckoo_target do
              C.replace cuckoo ~w0:(flood_w0 !j) ~w1:(e35_w1_of (!j + 7)) !j;
              incr j
            done
          end;
          let qw0, qw1 = e35_queries ~profile ~n ~seed:(bench_seed + n) in
          let cell algo mem probe =
            let ns, probes, max_probes =
              e35_measure_cell ~mem ~probe ~qw0 ~qw1 ~lookups ~trials
            in
            { e35_algo = algo; e35_profile = profile; e35_n = n;
              e35_ns = ns; e35_probes = probes;
              e35_max_probes = max_probes }
          in
          [ cell "flat"
              (fun ~w0 ~w1 -> F.mem flat ~w0 ~w1)
              (fun ~w0 ~w1 -> F.probe_count flat ~w0 ~w1);
            cell "cuckoo"
              (fun ~w0 ~w1 -> C.mem cuckoo ~w0 ~w1)
              (fun ~w0 ~w1 -> C.probe_count cuckoo ~w0 ~w1) ])
        e35_profiles)
    e35_populations

(* Warm-hit allocation for the cuckoo read path, per storage backend:
   the same zero-allocation bar every other lookup structure in the
   tree is held to (DESIGN.md section 10). *)
let e35_warm_words (module M : Demux.Cuckoo_table.S) =
  let table = M.create () in
  for i = 0 to 4095 do
    M.replace table ~w0:i ~w1:(e35_w1_of i) i
  done;
  for k = 0 to 999 do
    let i = k land 4095 in
    ignore (M.find table ~w0:i ~w1:(e35_w1_of i))
  done;
  let lookups = 200_000 in
  let before = Gc.minor_words () in
  for k = 0 to lookups - 1 do
    let i = k land 4095 in
    ignore (M.find table ~w0:i ~w1:(e35_w1_of i))
  done;
  (Gc.minor_words () -. before) /. float_of_int lookups

let assert_e35 rows (heap_words, offheap_words) =
  let cell algo profile n =
    match
      List.find_opt
        (fun r ->
          r.e35_algo = algo && r.e35_profile = profile && r.e35_n = n)
        rows
    with
    | Some r -> r
    | None ->
      Printf.eprintf "E35 BROKEN: missing %s/%s/n%d cell\n" algo profile n;
      exit 1
  in
  (* The structural bound first: two buckets plus the stash, in every
     cell — if any adversarial profile pushed a cuckoo lookup past
     it, the filter/stash machinery is broken, not slow. *)
  let bound = 2 + Demux.Cuckoo_table.stash_capacity in
  List.iter
    (fun r ->
      if r.e35_algo = "cuckoo" && r.e35_max_probes > bound then begin
        Printf.eprintf
          "E35 BROKEN: cuckoo %s/n%d max probes %d exceeds the \
           structural bound %d\n"
          r.e35_profile r.e35_n r.e35_max_probes bound;
        exit 1
      end)
    rows;
  (* The headline miss-heavy gate: at 1M residents under syn-flood,
     the filtered cuckoo miss must beat the flat Robin-Hood miss on
     both probe count and wall clock, strictly. *)
  let flat = cell "flat" "syn-flood" 1_000_000 in
  let cuckoo = cell "cuckoo" "syn-flood" 1_000_000 in
  if cuckoo.e35_probes >= flat.e35_probes then begin
    Printf.eprintf
      "E35 REGRESSION: cuckoo syn-flood misses probe %.2f units vs \
       flat %.2f at 1M — the negative-lookup filter is not \
       short-circuiting\n"
      cuckoo.e35_probes flat.e35_probes;
    exit 1
  end;
  if cuckoo.e35_ns >= flat.e35_ns then begin
    Printf.eprintf
      "E35 REGRESSION: cuckoo syn-flood miss %.1f ns vs flat %.1f ns \
       at 1M — the probe advantage is not reaching wall clock\n"
      cuckoo.e35_ns flat.e35_ns;
    exit 1
  end;
  List.iter
    (fun (backend, words) ->
      if words > 0.01 then begin
        Printf.eprintf
          "E35 REGRESSION: warm cuckoo hit (%s) allocates %.4f minor \
           words per lookup\n"
          backend words;
        exit 1
      end)
    [ ("heap", heap_words); ("offheap", offheap_words) ]

let print_e35 () =
  section
    "E35 (extension): flat Robin-Hood vs bucketized cuckoo under \
     hostile lookup profiles";
  let rows = e35 ~smoke:false () in
  row "%-8s %-16s %9s %10s %10s %6s\n" "algo" "profile" "n" "ns/lookup"
    "probes" "max";
  List.iter
    (fun r ->
      row "%-8s %-16s %9d %10.1f %10.2f %6d\n" r.e35_algo r.e35_profile
        r.e35_n r.e35_ns r.e35_probes r.e35_max_probes)
    rows;
  let heap_words = e35_warm_words (module Demux.Cuckoo_table.Heap) in
  let offheap_words = e35_warm_words (module Demux.Cuckoo_table.Offheap) in
  row "warm cuckoo hit: %.4f minor words/lookup (heap), %.4f (offheap)\n"
    heap_words offheap_words;
  assert_e35 rows (heap_words, offheap_words);
  row
    "Hits are a wash — one filtered bucket vs a short Robin-Hood run\n\
     — but misses diverge: the flat walk lengthens with load and with\n\
     crafted home-slot collisions, while the cuckoo filter answers\n\
     most misses from one bucket's tag vector and is capped at two\n\
     buckets plus the stash by construction, whatever the attacker\n\
     knows about the primary hash.\n"

(* E36: the shared-nothing per-core stacks (DESIGN.md section 16).
   Every prior parallel experiment shared the flow table and scaled
   the lookup; here each domain owns a complete TCP stack — connection
   table, timer wheel, demux table — and a dispatcher steers raw
   datagrams by flow, so the full path (parse -> demux -> state
   machine) runs without a single shared mutable word.  Three passes:
   the domain ladder for delivered packets/sec, an instrumented run
   for the per-stage latency breakdown (steer and enqueue on the
   dispatcher, parse/demux/state on the owning core), and a migration
   run — every accepted connection handed off the listener core —
   gated on exact conservation.  Throughput rows are recorded at every
   rung regardless of the host; the strict 8-domain > 1-domain bar is
   only enforced where 8 hardware threads exist, because on fewer
   cores the ladder measures time-slicing, not scaling. *)

let e36_domains = [ 1; 2; 4; 8 ]

let e36_trace ~smoke () =
  let clients, requests = if smoke then (80, 4) else (800, 12) in
  Sim.Segment_workload.generate
    (Sim.Segment_workload.config ~clients ~requests_per_client:requests
       ~interleave:Sim.Segment_workload.Round_robin ~seed:bench_seed ())

let e36_server_addr = Sim.Topology.server.Packet.Flow.addr

let e36_gate ~label r =
  match Parallel.Smp.violations r with
  | [] -> ()
  | violations ->
    Printf.eprintf "E36 BROKEN: %s violates conservation:\n" label;
    List.iter (fun v -> Printf.eprintf "  %s\n" v) violations;
    exit 1

(* The scaling ladder: chain-affine steering, no migration, stage
   clocks off so the rate is the pipeline's own. *)
let e36_scaling ~smoke () =
  let trace = e36_trace ~smoke () in
  List.map
    (fun domains ->
      let r =
        Parallel.Smp.run
          (Parallel.Smp.config ~domains ~local_addr:e36_server_addr ())
          trace.Sim.Segment_workload.datagrams
      in
      e36_gate ~label:(Printf.sprintf "ladder at %d domains" domains) r;
      (domains, r))
    e36_domains

(* The instrumented pass: stage histograms on, 4 domains. *)
let e36_stages ~smoke () =
  let trace = e36_trace ~smoke () in
  let r =
    Parallel.Smp.run
      (Parallel.Smp.config ~stages:true ~domains:4
         ~local_addr:e36_server_addr ())
      trace.Sim.Segment_workload.datagrams
  in
  e36_gate ~label:"instrumented run" r;
  r

(* The migration pass: listener core accepts, every connection
   migrates, stragglers forward; conservation is the result. *)
let e36_migrate ~smoke () =
  let trace = e36_trace ~smoke () in
  let r =
    Parallel.Smp.run
      (Parallel.Smp.config
         ~demux:(Demux.Registry.Conn_id { capacity = 65536 })
         ~migrate:true ~domains:4 ~local_addr:e36_server_addr ())
      trace.Sim.Segment_workload.datagrams
  in
  e36_gate ~label:"migration run" r;
  r

let e36_rate rows ~domains =
  match List.assoc_opt domains rows with
  | Some (r : Parallel.Smp.result) -> r.Parallel.Smp.packets_per_s
  | None ->
    Printf.eprintf "E36: missing ladder rung at %d domains\n" domains;
    exit 1

let e36_stage_names = [ "steer"; "enqueue"; "parse"; "demux"; "state" ]

let assert_e36 rows (instrumented : Parallel.Smp.result)
    (migrated : Parallel.Smp.result) =
  (* Stage coverage: the breakdown must exist and have seen every
     datagram, or the latency story is dark. *)
  List.iter
    (fun name ->
      match List.assoc_opt name instrumented.Parallel.Smp.stages with
      | None ->
        Printf.eprintf "E36 BROKEN: stage %s missing from breakdown\n" name;
        exit 1
      | Some h ->
        if Obs.Histogram.count h <> instrumented.Parallel.Smp.total then begin
          Printf.eprintf
            "E36 BROKEN: stage %s saw %d of %d datagrams\n" name
            (Obs.Histogram.count h) instrumented.Parallel.Smp.total;
          exit 1
        end)
    e36_stage_names;
  (* Migration actually happened, and conserved every segment. *)
  e36_gate ~label:"migration run" migrated;
  if migrated.Parallel.Smp.handoffs = 0 then begin
    Printf.eprintf "E36 BROKEN: migration run performed no handoffs\n";
    exit 1
  end;
  (* The scaling bar, where the hardware can express it. *)
  let threads = Domain.recommended_domain_count () in
  if threads >= 8 then begin
    let d1 = e36_rate rows ~domains:1 and d8 = e36_rate rows ~domains:8 in
    if not (d8 > d1) then begin
      Printf.eprintf
        "E36 REGRESSION: 8 shared-nothing stacks deliver %.0f pkts/s <= \
         %.0f at 1 domain on %d hardware threads\n"
        d8 d1 threads;
      exit 1
    end
  end
  else
    Printf.printf
      "E36: scaling bar skipped (%d hardware threads < 8); rates \
       recorded, not enforced\n"
      threads

let print_e36 () =
  section
    "E36 (extension): shared-nothing per-core TCP stacks with flow \
     steering";
  let rows = e36_scaling ~smoke:false () in
  row "%-10s %14s %12s %10s\n" "domains" "pkts/s" "delivered" "handoffs";
  List.iter
    (fun (d, (r : Parallel.Smp.result)) ->
      row "%-10d %14.0f %12d %10d\n" d r.Parallel.Smp.packets_per_s
        r.Parallel.Smp.total r.Parallel.Smp.handoffs)
    rows;
  let instrumented = e36_stages ~smoke:false () in
  row "per-stage latency (4 domains, every datagram):\n";
  List.iter
    (fun name ->
      match List.assoc_opt name instrumented.Parallel.Smp.stages with
      | Some h ->
        row "  %-8s p50 %6d ns   p99 %8d ns\n" name (Obs.Histogram.p50 h)
          (Obs.Histogram.p99 h)
      | None -> ())
    e36_stage_names;
  let migrated = e36_migrate ~smoke:false () in
  row
    "migration: %d handoffs, %d stragglers forwarded, %d flushes, \
     conservation exact\n"
    migrated.Parallel.Smp.handoffs migrated.Parallel.Smp.forwarded
    migrated.Parallel.Smp.flushes;
  assert_e36 rows instrumented migrated;
  row
    "Each domain owns its connection table, timer wheel and demux\n\
     table outright — the dispatcher steers whole flows, so no lookup,\n\
     timer or state transition ever crosses a core boundary, and the\n\
     migration pass shows the one moment ownership moves is a\n\
     message-passing handoff with exact segment accounting, not a\n\
     shared structure.\n"

let print_hash_ablation () =
  section "Ablation: hash-function chain balance (DESIGN.md section 6)";
  let flows = Array.to_list (Sim.Topology.flows 2000) in
  row "%-16s %9s %7s %9s %9s\n" "hash" "max-load" "cv" "chi2" "E[scan]";
  List.iter
    (fun hasher ->
      let q = Hashing.Quality.evaluate_hash hasher ~buckets:19 flows in
      row "%-16s %9d %7.3f %9.1f %9.2f\n" (Hashing.Hashers.name hasher)
        q.Hashing.Quality.max_load q.Hashing.Quality.coefficient_of_variation
        q.Hashing.Quality.chi_square q.Hashing.Quality.expected_search_cost)
    Hashing.Hashers.all

(* ------------------------------------------------------------------ *)
(* JSON record layer (BENCH_demux.json, schema tcpdemux-bench/1)       *)

let records : Obs.Json.t list ref = ref []

let emit ~id ~metric ?(units = "") value =
  records :=
    Obs.Json.Obj
      [ ("id", Obs.Json.String id); ("metric", Obs.Json.String metric);
        ("value", Obs.Json.Float value); ("units", Obs.Json.String units);
        ("seed", Obs.Json.Int bench_seed) ]
    :: !records

(* The figures of merit a regression checker wants, one record each:
   the analytic headline numbers (instant) and a simulation pass over
   the paper's four algorithms with an obs registry attached, so
   examined-count percentiles ride along.  [smoke] shrinks the
   simulated population and window for CI. *)
let collect_records ~smoke =
  let p = default_params in
  emit ~id:"E2" ~metric:"analysis.bsd.cost" ~units:"pcbs"
    (Analysis.Bsd_model.cost p);
  emit ~id:"E3" ~metric:"analysis.bsd.train_probability"
    (Analysis.Bsd_model.train_probability p);
  emit ~id:"E7" ~metric:"analysis.sr-cache.cost" ~units:"pcbs"
    (Analysis.Srcache_model.overall_cost p);
  emit ~id:"E10" ~metric:"analysis.sequent-19.cost" ~units:"pcbs"
    (Analysis.Sequent_model.cost p ~chains:19);
  emit ~id:"E11" ~metric:"analysis.sequent-100.cost" ~units:"pcbs"
    (Analysis.Sequent_model.cost p ~chains:100);
  let users = if smoke then 200 else 1000 in
  let duration = if smoke then 20.0 else 150.0 in
  let sim_params = Analysis.Tpca_params.v ~users () in
  let config =
    Sim.Tpca_workload.default_config ~duration ~seed:bench_seed sim_params
  in
  let obs = Obs.Registry.create () in
  List.iter
    (fun spec ->
      let name = Demux.Registry.spec_name spec in
      let report = Sim.Tpca_workload.run ~obs config spec in
      emit ~id:"E14" ~metric:("sim.tpca." ^ name ^ ".overall_mean")
        ~units:"pcbs" report.Sim.Report.overall_mean)
    Demux.Registry.default_specs;
  List.iter
    (fun metric ->
      match metric.Obs.Registry.data with
      | Obs.Registry.Histogram (summary, _) ->
        emit ~id:"E27" ~metric:(metric.Obs.Registry.name ^ ".p50")
          ~units:metric.Obs.Registry.units
          (float_of_int summary.Obs.Histogram.p50);
        emit ~id:"E27" ~metric:(metric.Obs.Registry.name ^ ".p99")
          ~units:metric.Obs.Registry.units
          (float_of_int summary.Obs.Histogram.p99)
      | Obs.Registry.Counter _ | Obs.Registry.Gauge _ -> ())
    (Obs.Registry.snapshot obs);
  (* E28: batched vs per-packet parallel lookup throughput, striped
     table at 4 domains — the regression bar is that batch 64 beats
     batch 1. *)
  let lookups_per_domain = if smoke then 20_000 else 100_000 in
  List.iter
    (fun (r : Parallel.Throughput.result) ->
      emit ~id:"E28"
        ~metric:
          (Printf.sprintf "parallel.%s.d%d.b%d.lookups_per_s"
             r.Parallel.Throughput.target r.Parallel.Throughput.domains
             r.Parallel.Throughput.batch)
        ~units:"lookups/s" r.Parallel.Throughput.lookups_per_second)
    (Parallel.Throughput.scaling_table ~lookups_per_domain ~seed:bench_seed
       ~domains:[ 4 ] ~batches:[ 1; 64 ]
       Parallel.Throughput.[ Striped_sequent 19 ]);
  (* E29: flat vs chained per-lookup wall clock and minor allocation,
     with the flat <= chained acceptance bar enforced in-line so a CI
     smoke run fails loudly on a hot-path regression. *)
  let rows = e29 ~smoke () in
  List.iter
    (fun r ->
      emit ~id:"E29"
        ~metric:
          (Printf.sprintf "demux.chained.sequent-19.n%d.ns_per_lookup" r.n)
        ~units:"ns" r.chained_ns;
      emit ~id:"E29"
        ~metric:
          (Printf.sprintf "demux.chained.sequent-19.n%d.minor_words_per_lookup"
             r.n)
        ~units:"words" r.chained_words;
      emit ~id:"E29"
        ~metric:(Printf.sprintf "demux.flat.n%d.ns_per_lookup" r.n)
        ~units:"ns" r.flat_ns;
      emit ~id:"E29"
        ~metric:(Printf.sprintf "demux.flat.n%d.minor_words_per_lookup" r.n)
        ~units:"words" r.flat_words)
    rows;
  assert_e29 rows;
  (* E31: resize-policy latency-tail records, with the flat-tail bar
     enforced in-line like E29's. *)
  let e31_rows = e31 ~smoke () in
  List.iter
    (fun r ->
      emit ~id:"E31"
        ~metric:(Printf.sprintf "demux.resize.%s.p50_ns" r.policy)
        ~units:"ns" (float_of_int r.p50_ns);
      emit ~id:"E31"
        ~metric:(Printf.sprintf "demux.resize.%s.p999_ns" r.policy)
        ~units:"ns" (float_of_int r.p999_ns);
      emit ~id:"E31"
        ~metric:(Printf.sprintf "demux.resize.%s.max_ns" r.policy)
        ~units:"ns" (float_of_int r.max_ns))
    e31_rows;
  assert_e31 e31_rows;
  (* E33: striped vs epoch read scaling across the domain ladder, plus
     the two lock-free read-path guarantee records, with the
     epoch-leads-at-8-domains bar enforced in-line. *)
  let e33_results = e33 ~smoke () in
  List.iter
    (fun (r : Parallel.Throughput.result) ->
      emit ~id:"E33"
        ~metric:
          (Printf.sprintf "parallel.%s.d%d.b%d.lookups_per_s"
             r.Parallel.Throughput.target r.Parallel.Throughput.domains
             r.Parallel.Throughput.batch)
        ~units:"lookups/s" r.Parallel.Throughput.lookups_per_second)
    e33_results;
  let mutex_delta, words_per_lookup = e33_read_path ~smoke () in
  emit ~id:"E33" ~metric:"epoch.read_path.mutex_acquisitions" ~units:"locks"
    (float_of_int mutex_delta);
  emit ~id:"E33" ~metric:"epoch.read_path.minor_words_per_lookup"
    ~units:"words" words_per_lookup;
  assert_e33 e33_results (mutex_delta, words_per_lookup);
  (* E34: heap vs off-heap slot storage under the GC-exposed churn
     ramp, with the three storage gates (tail, bytes/flow, warm-hit
     allocation) enforced in-line like the others. *)
  let e34_rows = e34 ~smoke () in
  List.iter
    (fun r ->
      let metric suffix =
        Printf.sprintf "demux.storage.%s.%s" r.backend suffix
      in
      emit ~id:"E34" ~metric:(metric "p50_ns") ~units:"ns"
        (float_of_int r.e34_p50_ns);
      emit ~id:"E34" ~metric:(metric "p999_ns") ~units:"ns"
        (float_of_int r.e34_p999_ns);
      emit ~id:"E34" ~metric:(metric "max_ns") ~units:"ns"
        (float_of_int r.e34_max_ns);
      emit ~id:"E34" ~metric:(metric "bytes_per_flow") ~units:"bytes"
        r.bytes_per_flow;
      emit ~id:"E34" ~metric:(metric "bytes_per_flow_ratio") r.bytes_ratio;
      emit ~id:"E34" ~metric:(metric "minor_pause_p50_ns") ~units:"ns"
        (float_of_int r.pause_p50_ns);
      emit ~id:"E34" ~metric:(metric "minor_pause_p99_ns") ~units:"ns"
        (float_of_int r.pause_p99_ns);
      emit ~id:"E34" ~metric:(metric "full_major_ns") ~units:"ns"
        (float_of_int r.full_major_ns);
      emit ~id:"E34" ~metric:(metric "warm_minor_words_per_lookup")
        ~units:"words" r.warm_words_per_lookup)
    e34_rows;
  assert_e34 ~smoke e34_rows;
  (* E35: flat vs cuckoo under the four lookup profiles, full-size
     populations even under smoke (only the timed windows shrink),
     with the miss-heavy and structural-bound gates enforced
     in-line. *)
  let e35_rows = e35 ~smoke () in
  List.iter
    (fun r ->
      let metric suffix =
        Printf.sprintf "demux.e35.%s.%s.n%d.%s" r.e35_algo r.e35_profile
          r.e35_n suffix
      in
      emit ~id:"E35" ~metric:(metric "ns_per_lookup") ~units:"ns" r.e35_ns;
      emit ~id:"E35" ~metric:(metric "probes_per_lookup") ~units:"probes"
        r.e35_probes;
      emit ~id:"E35" ~metric:(metric "max_probes") ~units:"probes"
        (float_of_int r.e35_max_probes))
    e35_rows;
  let e35_heap_words = e35_warm_words (module Demux.Cuckoo_table.Heap) in
  let e35_offheap_words =
    e35_warm_words (module Demux.Cuckoo_table.Offheap)
  in
  emit ~id:"E35"
    ~metric:"demux.e35.cuckoo.heap.warm_minor_words_per_lookup"
    ~units:"words" e35_heap_words;
  emit ~id:"E35"
    ~metric:"demux.e35.cuckoo.offheap.warm_minor_words_per_lookup"
    ~units:"words" e35_offheap_words;
  assert_e35 e35_rows (e35_heap_words, e35_offheap_words);
  (* E36: the shared-nothing ladder at every rung, the per-stage
     latency breakdown, and the migration-conservation records, with
     the stage/conservation bars (and, on >=8 hardware threads, the
     scaling bar) enforced in-line. *)
  let e36_rows = e36_scaling ~smoke () in
  List.iter
    (fun (d, (r : Parallel.Smp.result)) ->
      emit ~id:"E36"
        ~metric:(Printf.sprintf "smp.d%d.packets_per_s" d)
        ~units:"pkts/s" r.Parallel.Smp.packets_per_s)
    e36_rows;
  let e36_instrumented = e36_stages ~smoke () in
  List.iter
    (fun name ->
      match List.assoc_opt name e36_instrumented.Parallel.Smp.stages with
      | Some h ->
        emit ~id:"E36"
          ~metric:(Printf.sprintf "smp.stage.%s.p50_ns" name)
          ~units:"ns"
          (float_of_int (Obs.Histogram.p50 h));
        emit ~id:"E36"
          ~metric:(Printf.sprintf "smp.stage.%s.p99_ns" name)
          ~units:"ns"
          (float_of_int (Obs.Histogram.p99 h))
      | None -> ())
    e36_stage_names;
  let e36_migrated = e36_migrate ~smoke () in
  emit ~id:"E36" ~metric:"smp.migrate.handoffs" ~units:"flows"
    (float_of_int e36_migrated.Parallel.Smp.handoffs);
  emit ~id:"E36" ~metric:"smp.migrate.forwarded" ~units:"segments"
    (float_of_int e36_migrated.Parallel.Smp.forwarded);
  emit ~id:"E36" ~metric:"smp.migrate.flushes" ~units:"flows"
    (float_of_int e36_migrated.Parallel.Smp.flushes);
  emit ~id:"E36" ~metric:"smp.migrate.violations" ~units:"count"
    (float_of_int
       (List.length (Parallel.Smp.violations e36_migrated)));
  assert_e36 e36_rows e36_instrumented e36_migrated

let write_records path =
  Obs.Json.write_file path
    (Obs.Json.Obj
       [ ("schema", Obs.Json.String "tcpdemux-bench/1");
         ("records", Obs.Json.List (List.rev !records)) ]);
  Printf.printf "wrote %d benchmark records to %s\n" (List.length !records)
    path

(* Schema sanity for --check: fail loudly (exit 1) on anything a
   regression dashboard could not ingest. *)
let check_records path =
  let fail message =
    Printf.eprintf "%s: %s\n" path message;
    exit 1
  in
  let field name json reader = Option.bind (Obs.Json.member name json) reader in
  match Obs.Json.of_file path with
  | Error message -> fail message
  | Ok json ->
    (match field "schema" json Obs.Json.to_string_opt with
    | Some "tcpdemux-bench/1" -> ()
    | Some other ->
      fail (Printf.sprintf "schema %S, want tcpdemux-bench/1" other)
    | None -> fail "missing schema field");
    (match field "records" json Obs.Json.to_list_opt with
    | None -> fail "records is not a list"
    | Some [] -> fail "records is empty"
    | Some items ->
      List.iteri
        (fun index item ->
          let where name =
            Printf.sprintf "record %d: bad or missing %s" index name
          in
          let str name =
            match field name item Obs.Json.to_string_opt with
            | Some s -> s
            | None -> fail (where name)
          in
          if str "id" = "" then fail (where "id");
          if str "metric" = "" then fail (where "metric");
          ignore (str "units");
          (match field "value" item Obs.Json.to_float_opt with
          | Some value when Float.is_finite value -> ()
          | Some _ | None -> fail (where "value"));
          match field "seed" item Obs.Json.to_int_opt with
          | Some _ -> ()
          | None -> fail (where "seed"))
        items;
      (* Coverage gate for the perf-trajectory records: every E29
         flat/chained metric must be present at every population, or
         the dashboard's regression series silently goes dark. *)
      let e29_metrics =
        List.filter_map
          (fun item ->
            match field "id" item Obs.Json.to_string_opt with
            | Some "E29" -> field "metric" item Obs.Json.to_string_opt
            | _ -> None)
          items
      in
      List.iter
        (fun n ->
          List.iter
            (fun family ->
              List.iter
                (fun suffix ->
                  let want = Printf.sprintf "demux.%s.n%d.%s" family n suffix in
                  if not (List.mem want e29_metrics) then
                    fail (Printf.sprintf "missing E29 record %s" want))
                [ "ns_per_lookup"; "minor_words_per_lookup" ])
            [ "flat"; "chained.sequent-19" ])
        e29_populations;
      (* Same gate for the E31 resize-tail series: both growing
         policies plus the pre-sized control, all three tail points. *)
      let e31_metrics =
        List.filter_map
          (fun item ->
            match field "id" item Obs.Json.to_string_opt with
            | Some "E31" -> field "metric" item Obs.Json.to_string_opt
            | _ -> None)
          items
      in
      List.iter
        (fun policy ->
          List.iter
            (fun suffix ->
              let want =
                Printf.sprintf "demux.resize.%s.%s" policy suffix
              in
              if not (List.mem want e31_metrics) then
                fail (Printf.sprintf "missing E31 record %s" want))
            [ "p50_ns"; "p999_ns"; "max_ns" ])
        [ "incremental"; "doubling"; "presized" ];
      (* And the E33 scaling series: both targets at every rung of the
         domain ladder, plus the two read-path guarantee records. *)
      let e33_metrics =
        List.filter_map
          (fun item ->
            match field "id" item Obs.Json.to_string_opt with
            | Some "E33" -> field "metric" item Obs.Json.to_string_opt
            | _ -> None)
          items
      in
      List.iter
        (fun domains ->
          List.iter
            (fun target ->
              let want =
                Printf.sprintf "parallel.%s.d%d.b1.lookups_per_s" target
                  domains
              in
              if not (List.mem want e33_metrics) then
                fail (Printf.sprintf "missing E33 record %s" want))
            e33_targets)
        e33_domains;
      List.iter
        (fun want ->
          if not (List.mem want e33_metrics) then
            fail (Printf.sprintf "missing E33 record %s" want))
        [ "epoch.read_path.mutex_acquisitions";
          "epoch.read_path.minor_words_per_lookup" ];
      (* And the E34 storage series: both backends, all eight metrics
         — the off-heap claim is untestable against history if any
         side of the comparison goes dark. *)
      let e34_metrics =
        List.filter_map
          (fun item ->
            match field "id" item Obs.Json.to_string_opt with
            | Some "E34" -> field "metric" item Obs.Json.to_string_opt
            | _ -> None)
          items
      in
      List.iter
        (fun backend ->
          List.iter
            (fun suffix ->
              let want =
                Printf.sprintf "demux.storage.%s.%s" backend suffix
              in
              if not (List.mem want e34_metrics) then
                fail (Printf.sprintf "missing E34 record %s" want))
            [ "p50_ns"; "p999_ns"; "max_ns"; "bytes_per_flow";
              "bytes_per_flow_ratio"; "minor_pause_p50_ns";
              "minor_pause_p99_ns"; "full_major_ns";
              "warm_minor_words_per_lookup" ])
        [ "heap"; "offheap" ];
      (* And the E35 adversarial-profile grid: both algorithms, every
         profile and population, all three metrics, plus the two
         warm-hit allocation records — the SYN-flood claim needs the
         flat side of the comparison as much as the cuckoo side. *)
      let e35_metrics =
        List.filter_map
          (fun item ->
            match field "id" item Obs.Json.to_string_opt with
            | Some "E35" -> field "metric" item Obs.Json.to_string_opt
            | _ -> None)
          items
      in
      List.iter
        (fun algo ->
          List.iter
            (fun profile ->
              List.iter
                (fun n ->
                  List.iter
                    (fun suffix ->
                      let want =
                        Printf.sprintf "demux.e35.%s.%s.n%d.%s" algo
                          profile n suffix
                      in
                      if not (List.mem want e35_metrics) then
                        fail (Printf.sprintf "missing E35 record %s" want))
                    [ "ns_per_lookup"; "probes_per_lookup"; "max_probes" ])
                e35_populations)
            e35_profiles)
        [ "flat"; "cuckoo" ];
      List.iter
        (fun want ->
          if not (List.mem want e35_metrics) then
            fail (Printf.sprintf "missing E35 record %s" want))
        [ "demux.e35.cuckoo.heap.warm_minor_words_per_lookup";
          "demux.e35.cuckoo.offheap.warm_minor_words_per_lookup" ];
      (* And the E36 shared-nothing series: the packets/sec ladder at
         every rung, the five-stage latency breakdown, and the
         migration-conservation records — the SMP claim is only
         auditable with the scaling curve AND the exact-handoff
         evidence side by side. *)
      let e36_metrics =
        List.filter_map
          (fun item ->
            match field "id" item Obs.Json.to_string_opt with
            | Some "E36" -> field "metric" item Obs.Json.to_string_opt
            | _ -> None)
          items
      in
      List.iter
        (fun domains ->
          let want = Printf.sprintf "smp.d%d.packets_per_s" domains in
          if not (List.mem want e36_metrics) then
            fail (Printf.sprintf "missing E36 record %s" want))
        e36_domains;
      List.iter
        (fun name ->
          List.iter
            (fun suffix ->
              let want = Printf.sprintf "smp.stage.%s.%s" name suffix in
              if not (List.mem want e36_metrics) then
                fail (Printf.sprintf "missing E36 record %s" want))
            [ "p50_ns"; "p99_ns" ])
        e36_stage_names;
      List.iter
        (fun want ->
          if not (List.mem want e36_metrics) then
            fail (Printf.sprintf "missing E36 record %s" want))
        [ "smp.migrate.handoffs"; "smp.migrate.forwarded";
          "smp.migrate.flushes"; "smp.migrate.violations" ];
      (match
         List.find_opt
           (fun item ->
             field "id" item Obs.Json.to_string_opt = Some "E36"
             && field "metric" item Obs.Json.to_string_opt
                = Some "smp.migrate.violations")
           items
       with
      | Some item ->
        (match field "value" item Obs.Json.to_float_opt with
        | Some 0. -> ()
        | Some v ->
          fail
            (Printf.sprintf
               "E36 migration conservation violated (%d violations)"
               (int_of_float v))
        | None -> fail "E36 smp.migrate.violations is not a number")
      | None -> ());
      Printf.printf
        "%s: %d records (E29 + E31 + E33 + E34 + E35 + E36 coverage \
         ok, migration conservation ok), schema ok\n"
        path (List.length items))

(* The differential-check gate: --check refuses to bless a benchmark
   run unless a passing tcpdemux-check/1 report sits next to it —
   perf numbers from tables the oracle has not cleared are not
   results. *)
let check_check_report path =
  match Check.Report.validate_file path with
  | Ok () -> Printf.printf "%s: tcpdemux-check/1 ok\n" path
  | Error message ->
    Printf.eprintf
      "%s: %s\n(run `tcpdemux check --smoke --json %s` first)\n" path message
      path;
    exit 1

(* The chaos gate, same posture: a benchmark run is only blessed when
   the pipeline survived the fault scenarios with a clean replay
   audit. *)
let check_chaos_report path =
  match Check.Chaos.validate_file path with
  | Ok () -> Printf.printf "%s: tcpdemux-chaos/1 ok\n" path
  | Error message ->
    Printf.eprintf
      "%s: %s\n(run `tcpdemux chaos --smoke --json %s` first)\n" path message
      path;
    exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel layer                                                      *)

open Bechamel
open Toolkit

let lookup_test spec =
  (* Steady-state OLTP lookup: 2,000 established connections, lookups
     arriving user-by-user in a fixed pseudo-random order. *)
  let demux = Demux.Registry.create spec in
  let flows = Sim.Topology.flows 2000 in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  let order = Array.init 65536 (fun _ -> 0) in
  let rng = Numerics.Rng.create ~seed:9 in
  Array.iteri (fun i _ -> order.(i) <- Numerics.Rng.int rng ~bound:2000) order;
  let cursor = ref 0 in
  Test.make
    ~name:(Demux.Registry.spec_name spec)
    (Staged.stage (fun () ->
         let i = !cursor in
         cursor := (i + 1) land 65535;
         ignore (demux.Demux.Registry.lookup flows.(order.(i)))))

let churn_test spec =
  (* Connection lifecycle cost: insert a fresh flow, look it up twice,
     remove it — over a table already holding 1000 stable flows. *)
  let demux = Demux.Registry.create spec in
  let stable = Sim.Topology.flows 1000 in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) stable;
  let cursor = ref 1000 in
  Test.make
    ~name:(Demux.Registry.spec_name spec)
    (Staged.stage (fun () ->
         let flow = Sim.Topology.flow_of_client !cursor in
         cursor := 1000 + ((!cursor - 999) mod 60000);
         ignore (demux.Demux.Registry.insert flow ());
         ignore (demux.Demux.Registry.lookup flow);
         ignore (demux.Demux.Registry.lookup flow);
         ignore (demux.Demux.Registry.remove flow)))

let churn_tests =
  Test.make_grouped ~name:"churn"
    (List.map churn_test
       Demux.Registry.
         [ Bsd; Mtf;
           Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
           Conn_id { capacity = 65536 }; Resizing_hash; Splay ])

let hash_test hasher =
  let key = Packet.Flow.to_key_bytes (Sim.Topology.flow_of_client 123) in
  Test.make
    ~name:(Hashing.Hashers.name hasher)
    (Staged.stage (fun () -> ignore (Hashing.Hashers.hash hasher key)))

let wire_test () =
  (* Parse + demultiplex a realistic 52-byte query segment. *)
  let demux =
    Demux.Registry.create
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  let flows = Sim.Topology.flows 2000 in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  let flow = flows.(777) in
  let wire =
    Packet.Segment.to_bytes
      (Packet.Segment.make ~src:flow.Packet.Flow.remote
         ~dst:flow.Packet.Flow.local ~flags:Packet.Tcp_header.flag_psh_ack
         ~payload:"BEGIN TXN 42" ())
  in
  Test.make ~name:"parse+lookup"
    (Staged.stage (fun () ->
         match Packet.Segment.parse wire ~off:0 with
         | Ok segment ->
           ignore (demux.Demux.Registry.lookup (Packet.Segment.flow segment))
         | Error message -> failwith message))

let regen_tests =
  (* One Test.make per table/figure: how long regenerating each
     experiment's data takes. *)
  Test.make_grouped ~name:"regen"
    [ Test.make ~name:"E1-fig4" (Staged.stage (fun () -> ignore (e1_figure4 ())));
      Test.make ~name:"E2-E3-bsd" (Staged.stage (fun () -> ignore (e2_e3 ())));
      Test.make ~name:"E4-E6-mtf" (Staged.stage (fun () -> ignore (e4_e6 ())));
      Test.make ~name:"E7-srcache" (Staged.stage (fun () -> ignore (e7 ())));
      Test.make ~name:"E8-E11-sequent"
        (Staged.stage (fun () -> ignore (e8_e11 ())));
      Test.make ~name:"E12-fig13"
        (Staged.stage (fun () -> ignore (e12_figure13 ())));
      Test.make ~name:"E13-fig14"
        (Staged.stage (fun () -> ignore (e13_figure14 ()))) ]

let lookup_tests =
  Test.make_grouped ~name:"lookup"
    (List.map lookup_test
       Demux.Registry.
         [ Linear; Bsd; Mtf; Sr_cache;
           Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
           Sequent { chains = 100; hasher = Hashing.Hashers.multiplicative };
           Hashed_mtf { chains = 19; hasher = Hashing.Hashers.multiplicative };
           Conn_id { capacity = 2048 }; Resizing_hash; Splay ])

let hash_tests =
  Test.make_grouped ~name:"hash" (List.map hash_test Hashing.Hashers.all)

(* Observability overhead: the acceptance bar is that a sequent-19
   lookup with the examined-count histogram attached stays well under
   2x the bare lookup, and that a disabled tracer is free. *)
let obs_lookup_test ~name ~with_histogram =
  let demux =
    Demux.Registry.create
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  let flows = Sim.Topology.flows 2000 in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  if with_histogram then
    Demux.Lookup_stats.set_histogram demux.Demux.Registry.stats
      (Some (Obs.Histogram.create ()));
  let order = Array.init 65536 (fun _ -> 0) in
  let rng = Numerics.Rng.create ~seed:9 in
  Array.iteri (fun i _ -> order.(i) <- Numerics.Rng.int rng ~bound:2000) order;
  let cursor = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let i = !cursor in
         cursor := (i + 1) land 65535;
         ignore (demux.Demux.Registry.lookup flows.(order.(i)))))

let obs_tests =
  let histogram = Obs.Histogram.create () in
  let ring = Obs.Trace.create ~capacity:4096 () in
  Test.make_grouped ~name:"obs"
    [ obs_lookup_test ~name:"sequent-19-bare" ~with_histogram:false;
      obs_lookup_test ~name:"sequent-19+histogram" ~with_histogram:true;
      Test.make ~name:"histogram-record"
        (Staged.stage (fun () -> Obs.Histogram.record histogram 17));
      Test.make ~name:"trace-disabled"
        (Staged.stage (fun () ->
             Obs.Trace.record Obs.Trace.disabled Obs.Trace.Cache_hit 1 2));
      Test.make ~name:"trace-enabled"
        (Staged.stage (fun () ->
             Obs.Trace.record ring Obs.Trace.Cache_hit 1 2)) ]

(* Batched-pipeline hot pieces, single-domain so bechamel sees the
   per-call cost: 64 per-packet lookups vs one 64-flow lookup_batch
   over the same striped table, and a ring push+pop round trip. *)
let batch_tests =
  let striped = Parallel.Striped.create ~chains:19 () in
  let flows = Sim.Topology.flows 2000 in
  Array.iter (fun flow -> ignore (Parallel.Striped.insert striped flow ())) flows;
  let rng = Numerics.Rng.create ~seed:9 in
  let burst =
    Array.init 64 (fun _ -> flows.(Numerics.Rng.int rng ~bound:2000))
  in
  let ring = Parallel.Ring.create ~capacity:8 in
  Test.make_grouped ~name:"batch"
    [ Test.make ~name:"striped-lookup-x64"
        (Staged.stage (fun () ->
             Array.iter
               (fun flow -> ignore (Parallel.Striped.lookup striped flow))
               burst));
      Test.make ~name:"striped-lookup_batch-64"
        (Staged.stage (fun () ->
             ignore (Parallel.Striped.lookup_batch striped burst)));
      Test.make ~name:"ring-push+pop"
        (Staged.stage (fun () ->
             ignore (Parallel.Ring.try_push ring burst);
             ignore (Parallel.Ring.try_pop ring))) ]

let run_bechamel ~smoke () =
  section "bechamel wall-clock microbenchmarks";
  let tests =
    Test.make_grouped ~name:"tcpdemux"
      (if smoke then [ obs_tests; batch_tests ]
       else
         [ lookup_tests; churn_tests; hash_tests; wire_test (); regen_tests;
           obs_tests; batch_tests ])
  in
  let cfg =
    if smoke then Benchmark.cfg ~limit:500 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  row "%-40s %14s %8s\n" "benchmark" "ns/op" "r^2";
  List.iter
    (fun (name, result) ->
      let nanoseconds =
        match Analyze.OLS.estimates result with
        | Some [ estimate ] -> Printf.sprintf "%14.1f" estimate
        | Some _ | None -> Printf.sprintf "%14s" "-"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%8.4f" r
        | None -> Printf.sprintf "%8s" "-"
      in
      row "%-40s %s %s\n" name nanoseconds r2)
    rows

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: bench [--smoke] [--e34] [--e35] [--json FILE] [--check FILE] \
     [--check-report FILE] [--chaos-report FILE]\n\
     \  --smoke      small populations and windows (CI)\n\
     \  --e34        run only the E34 off-heap storage ramp (10M flows,\n\
     \               ~minutes and ~1 GB resident) and exit\n\
     \  --e35        run only the E35 flat-vs-cuckoo adversarial lookup\n\
     \               grid (three populations to 1M flows) and exit\n\
     \  --e36        run only the E36 shared-nothing per-core stack\n\
     \               ladder (throughput, stage breakdown, migration)\n\
     \               and exit\n\
     \  --json FILE  write tcpdemux-bench/1 records to FILE\n\
     \  --check FILE validate a records file (plus the tcpdemux-check/1\n\
     \               report, --check-report, default check.json, and the\n\
     \               tcpdemux-chaos/1 report, --chaos-report, default\n\
     \               chaos.json) and exit";
  exit 2

let () =
  let smoke = ref false and json = ref None and check = ref None in
  let only_e34 = ref false in
  let only_e35 = ref false in
  let only_e36 = ref false in
  let check_report = ref "check.json" in
  let chaos_report = ref "chaos.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; parse rest
    | "--e34" :: rest -> only_e34 := true; parse rest
    | "--e35" :: rest -> only_e35 := true; parse rest
    | "--e36" :: rest -> only_e36 := true; parse rest
    | "--json" :: path :: rest -> json := Some path; parse rest
    | "--check" :: path :: rest -> check := Some path; parse rest
    | "--check-report" :: path :: rest -> check_report := path; parse rest
    | "--chaos-report" :: path :: rest -> chaos_report := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !check with
  | Some path ->
    check_records path;
    check_check_report !check_report;
    check_chaos_report !chaos_report
  | None when !only_e34 ->
    print_endline
      "tcpdemux benchmark harness — McKenney & Dove (1992) reproduction";
    print_e34 ();
    print_endline "\ndone."
  | None when !only_e35 ->
    print_endline
      "tcpdemux benchmark harness — McKenney & Dove (1992) reproduction";
    print_e35 ();
    print_endline "\ndone."
  | None when !only_e36 ->
    print_endline
      "tcpdemux benchmark harness — McKenney & Dove (1992) reproduction";
    print_e36 ();
    print_endline "\ndone."
  | None ->
    print_endline
      "tcpdemux benchmark harness — McKenney & Dove (1992) reproduction";
    if not !smoke then begin
      print_e1 ();
      print_e2_e3 ();
      print_e4_e6 ();
      print_e7 ();
      print_e8_e11 ();
      print_e12_e13 ();
      print_e14 ();
      print_e15 ();
      print_e16 ();
      print_e17 ();
      print_e18 ();
      print_e19 ();
      print_e20 ();
      print_e21 ();
      print_e22 ();
      print_e23 ();
      print_e24 ();
      print_e25 ();
      print_e28 ();
      print_e29 ();
      print_e31 ();
      print_e33 ();
      print_e34 ();
      print_e35 ();
      print_e36 ();
      print_hash_ablation ()
    end;
    (match !json with
    | Some path ->
      collect_records ~smoke:!smoke;
      write_records path
    | None -> ());
    run_bechamel ~smoke:!smoke ();
    print_endline "\ndone."
