(* tcpdemux — command-line front end for the McKenney & Dove (1992)
   reproduction: analytic tables, figure series, simulations and hash
   sweeps. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)

let users_arg =
  let doc = "Number of TPC/A users (connections)." in
  Arg.(value & opt int 2000 & info [ "u"; "users" ] ~docv:"N" ~doc)

let response_time_arg =
  let doc = "Transaction response time R in seconds." in
  Arg.(value & opt float 0.2 & info [ "r"; "response-time" ] ~docv:"R" ~doc)

let rtt_arg =
  let doc = "Network round-trip time D in seconds." in
  Arg.(value & opt float 0.001 & info [ "d"; "rtt" ] ~docv:"D" ~doc)

let seed_arg =
  let doc = "PRNG seed (simulations are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration_arg =
  let doc = "Measured simulated seconds." in
  Arg.(value & opt float 120.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

let algorithms_arg =
  let doc =
    "Comma-separated algorithms: linear, bsd, mtf, sr-cache, sequent[-H], \
     hashed-mtf[-H], conn-id, resizing-hash."
  in
  Arg.(
    value
    & opt (list string) [ "bsd"; "mtf"; "sr-cache"; "sequent-19" ]
    & info [ "a"; "algorithms" ] ~docv:"ALGOS" ~doc)

let csv_arg =
  let doc = "Also write the series as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let parse_specs names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match Demux.Registry.spec_of_string name with
      | Ok spec -> go (spec :: acc) rest
      | Error message -> Error message)
  in
  go [] names

let params ~users ~response_time ~rtt =
  Analysis.Tpca_params.v ~users ~response_time ~rtt ()

(* Shared -v/--verbose handling: debug-level logging (e.g. the TCP
   stack's connection events during `trace`). *)
let verbose_arg =
  let doc = "Enable debug logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* ------------------------------------------------------------------ *)
(* Observability output (shared by simulate / attack / parallel)       *)

let obs_json_arg =
  let doc =
    "Write a $(i,tcpdemux-obs/1) metric snapshot — every counter, gauge \
     and histogram the run registered — as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "obs-json" ] ~docv:"FILE" ~doc)

let trace_file_arg =
  let doc =
    "Record hot-path events (lookups, cache hits, chain walks, drops, \
     phase markers) into a ring buffer and dump it in binary form to \
     $(docv) (readable with Obs.Trace.read_file)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_capacity_arg =
  let doc = "Trace ring capacity: the last $(docv) events are kept." in
  Arg.(
    value & opt int 65536 & info [ "trace-capacity" ] ~docv:"EVENTS" ~doc)

(* Build the optional registry/tracer the flags ask for, run the body,
   then write the requested files.  [label] tags the JSON snapshot. *)
let with_obs ~label obs_json trace_file trace_capacity body =
  if trace_capacity <= 0 then
    `Error (false, "--trace-capacity must be positive")
  else
    let obs = Option.map (fun _ -> Obs.Registry.create ()) obs_json in
    let tracer =
      Option.map
        (fun _ -> Obs.Trace.create ~capacity:trace_capacity ())
        trace_file
    in
    match body obs tracer with
    | `Ok () -> (
      try
        Option.iter
          (fun path ->
            Obs.Registry.write_json ~label (Option.get obs) path;
            Format.printf "wrote metric snapshot to %s@." path)
          obs_json;
        Option.iter
          (fun path ->
            let tracer = Option.get tracer in
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> Obs.Trace.dump tracer oc);
            Format.printf
              "wrote %d trace events to %s (%d lost to ring wrap)@."
              (Obs.Trace.length tracer) path (Obs.Trace.dropped tracer))
          trace_file;
        `Ok ()
      with Sys_error message -> `Error (false, message))
    | outcome -> outcome

(* A Phase marker before each algorithm's run, so one trace file can
   carry several algorithms back to back. *)
let phase tracer index =
  match tracer with
  | Some tracer -> Obs.Trace.record tracer Obs.Trace.Phase index 0
  | None -> ()

(* ------------------------------------------------------------------ *)
(* analyze: the paper's quoted results                                 *)

let run_analyze users response_time rtt =
  let p = params ~users ~response_time ~rtt in
  Format.printf "TPC/A parameters: %a@.@." Analysis.Tpca_params.pp p;
  Format.printf "== BSD (Section 3.1) ==@.";
  Format.printf "expected PCBs searched (Eq 1): %.1f@."
    (Analysis.Bsd_model.cost p);
  Format.printf "cache hit rate: %.4f%%@."
    (100.0 *. Analysis.Bsd_model.hit_rate p);
  Format.printf "packet-train probability: %.3g@.@."
    (Analysis.Bsd_model.train_probability p);
  Format.printf "== Move-to-front (Section 3.2) ==@.";
  let columns =
    Report.Table.
      [ column "R (s)"; column "entry (Eq 5)"; column "ack N(2R)";
        column "overall (Eq 6)" ]
  in
  let rows =
    List.map
      (fun (r, entry, ack, overall) ->
        Report.Table.
          [ float_cell ~decimals:1 r; float_cell ~decimals:0 entry;
            float_cell ~decimals:0 ack; float_cell ~decimals:0 overall ])
      (Analysis.Comparison.mtf_response_time_table ~users
         [ 0.2; 0.5; 1.0; 2.0 ])
  in
  Report.Table.print ~columns rows;
  Format.printf "@.== Send/receive cache (Section 3.3) ==@.";
  let columns =
    Report.Table.
      [ column "D (ms)"; column "txn (N1+N2)"; column "ack (Na)";
        column "overall (Eq 17)" ]
  in
  let rows =
    List.map
      (fun rtt ->
        let p = params ~users ~response_time ~rtt in
        let txn =
          Analysis.Srcache_model.transaction_cost_long_think p
          +. Analysis.Srcache_model.transaction_cost_short_think p
        in
        Report.Table.
          [ float_cell ~decimals:0 (rtt *. 1000.0);
            float_cell ~decimals:1 txn;
            float_cell ~decimals:1 (Analysis.Srcache_model.ack_cost p);
            float_cell ~decimals:0 (Analysis.Srcache_model.overall_cost p) ])
      [ 0.001; 0.010; 0.100 ]
  in
  Report.Table.print ~columns rows;
  Format.printf "@.== Sequent hashed chains (Section 3.4) ==@.";
  let columns =
    Report.Table.
      [ column "H"; column "cost (Eq 22)"; column "naive (Eq 19)";
        column "quiet p (Eq 20)"; column "naive err" ]
  in
  let rows =
    List.map
      (fun chains ->
        Report.Table.
          [ string_of_int chains;
            float_cell ~decimals:1 (Analysis.Sequent_model.cost p ~chains);
            float_cell ~decimals:1 (Analysis.Sequent_model.cost_naive p ~chains);
            float_cell ~decimals:4
              (Analysis.Sequent_model.quiet_probability p ~chains);
            Printf.sprintf "%.1f%%"
              (100.0 *. Analysis.Sequent_model.naive_error p ~chains) ])
      [ 19; 51; 100 ]
  in
  Report.Table.print ~columns rows;
  `Ok ()

let analyze_cmd =
  let doc = "Print every analytic result the paper quotes (Sections 3.1-3.4)." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      ret (const run_analyze $ users_arg $ response_time_arg $ rtt_arg))

(* ------------------------------------------------------------------ *)
(* figure: regenerate Figures 4, 13 and 14                             *)

let write_csv path series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Report.Csv.write_series oc series)

let run_figure number csv =
  let series =
    match number with
    | 4 -> Ok [ Analysis.Comparison.figure4 () ]
    | 13 -> Ok (Analysis.Comparison.figure13 ())
    | 14 -> Ok (Analysis.Comparison.figure14 ())
    | n -> Error (Printf.sprintf "no figure %d (have 4, 13, 14)" n)
  in
  match series with
  | Error message -> `Error (false, message)
  | Ok series ->
    Report.Ascii_plot.print ~title:(Printf.sprintf "Figure %d" number) series;
    (match csv with
    | Some path ->
      write_csv path series;
      Format.printf "wrote %s@." path
    | None -> ());
    `Ok ()

let figure_cmd =
  let doc = "Regenerate a figure from the paper (4, 13 or 14)." in
  let number =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"FIGURE" ~doc:"4, 13 or 14")
  in
  Cmd.v (Cmd.info "figure" ~doc) Term.(ret (const run_figure $ number $ csv_arg))

(* ------------------------------------------------------------------ *)
(* simulate: drive the real data structures                            *)

let run_simulate workload algorithms users response_time rtt duration seed
    obs_json trace_file trace_capacity =
  match parse_specs algorithms with
  | Error message -> `Error (false, message)
  | Ok specs ->
    with_obs ~label:("simulate-" ^ workload) obs_json trace_file
      trace_capacity (fun obs tracer ->
        let over_specs run =
          List.mapi
            (fun index spec ->
              phase tracer index;
              run spec)
            specs
        in
        match workload with
        | "tpca" ->
          let p = params ~users ~response_time ~rtt in
          let config = Sim.Tpca_workload.default_config ~duration ~seed p in
          let rows = Sim.Validate.compare ?obs ?tracer ~config p specs in
          Format.printf "TPC/A simulation (%a, %g s measured):@.@."
            Analysis.Tpca_params.pp p duration;
          Format.printf "%a@." Sim.Validate.pp_rows rows;
          `Ok ()
        | "trains" ->
          let config = Sim.Trains_workload.default_config () in
          let reports =
            over_specs (Sim.Trains_workload.run ?obs ?tracer { config with seed })
          in
          Format.printf "%a@." Sim.Report.pp_table reports;
          `Ok ()
        | "polling" ->
          let config = Sim.Polling_workload.default_config ~users () in
          let reports =
            over_specs
              (Sim.Polling_workload.run ?obs ?tracer { config with seed })
          in
          Format.printf "%a@." Sim.Report.pp_table reports;
          `Ok ()
        | "locality" ->
          let config = Sim.Locality_workload.default_config () in
          let reports =
            over_specs
              (Sim.Locality_workload.run ?obs ?tracer { config with seed })
          in
          Format.printf "%a@." Sim.Report.pp_table reports;
          `Ok ()
        | "mixed" ->
          let config = Sim.Mixed_workload.default_config ~oltp_users:users () in
          let results =
            over_specs
              (Sim.Mixed_workload.run ?obs ?tracer
                 { config with Sim.Mixed_workload.seed })
          in
          Format.printf "%a@." Sim.Mixed_workload.pp_results results;
          `Ok ()
        | "churn" ->
          let config = Sim.Churn_workload.default_config () in
          let reports =
            over_specs
              (Sim.Churn_workload.run ?obs ?tracer
                 { config with Sim.Churn_workload.seed })
          in
          Format.printf "steady-state population ~%.0f connections@.@."
            (Sim.Churn_workload.steady_state_population config);
          Format.printf "%a@." Sim.Report.pp_table reports;
          `Ok ()
        | other ->
          `Error
            ( false,
              Printf.sprintf
                "unknown workload %S (try: tpca, trains, polling, locality, \
                 churn, mixed)"
                other ))

let simulate_cmd =
  let doc =
    "Simulate a workload (tpca, trains, polling, locality) over the real \
     lookup structures and report PCBs examined per packet."
  in
  let workload =
    Arg.(
      value & pos 0 string "tpca"
      & info [] ~docv:"WORKLOAD"
          ~doc:"tpca | trains | polling | locality | churn | mixed")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run_simulate $ workload $ algorithms_arg $ users_arg
        $ response_time_arg $ rtt_arg $ duration_arg $ seed_arg
        $ obs_json_arg $ trace_file_arg $ trace_capacity_arg))

(* ------------------------------------------------------------------ *)
(* sweep: Sequent chain-count sweep                                    *)

let run_sweep users response_time chain_list =
  let rows =
    List.map
      (fun (chains, cost, naive) ->
        Report.Table.
          [ string_of_int chains; float_cell cost; float_cell naive ])
      (Analysis.Comparison.sequent_chain_sweep ~users ~response_time
         chain_list)
  in
  Report.Table.print
    ~columns:
      Report.Table.[ column "H"; column "cost (Eq 22)"; column "naive (Eq 19)" ]
    rows;
  `Ok ()

let sweep_cmd =
  let doc = "Sweep the Sequent algorithm's hash-chain count." in
  let chains =
    Arg.(
      value
      & opt (list int) [ 1; 2; 5; 10; 19; 51; 100; 200; 500 ]
      & info [ "chains" ] ~docv:"H,H,..." ~doc:"Chain counts to evaluate.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(ret (const run_sweep $ users_arg $ response_time_arg $ chains))

(* ------------------------------------------------------------------ *)
(* hashes: chain-balance ablation                                      *)

let run_hashes users chains =
  let flows = Array.to_list (Sim.Topology.flows users) in
  let rows =
    List.map
      (fun hasher ->
        let report = Hashing.Quality.evaluate_hash hasher ~buckets:chains flows in
        Report.Table.
          [ Hashing.Hashers.name hasher;
            string_of_int report.Hashing.Quality.max_load;
            float_cell report.Hashing.Quality.coefficient_of_variation;
            float_cell ~decimals:1 report.Hashing.Quality.chi_square;
            float_cell report.Hashing.Quality.expected_search_cost ])
      Hashing.Hashers.all
  in
  Report.Table.print
    ~columns:
      Report.Table.
        [ column ~align:Left "hash"; column "max load"; column "cv";
          column "chi2"; column "E[scan]" ]
    rows;
  Format.printf "(uniform ideal: max load ~%d, E[scan] ~%.2f)@.@."
    ((users + chains - 1) / chains)
    ((float_of_int users /. float_of_int chains +. 1.0) /. 2.0);
  Format.printf "avalanche (flip rate per single-bit input change; ideal 0.5):@.";
  List.iter
    (fun hasher ->
      Format.printf "  %-16s %a@."
        (Hashing.Hashers.name hasher)
        Hashing.Avalanche.pp_report
        (Hashing.Avalanche.measure hasher))
    Hashing.Hashers.all;
  `Ok ()

let hashes_cmd =
  let doc = "Evaluate hash functions' chain balance over the client population." in
  let chains =
    Arg.(value & opt int 19 & info [ "chains" ] ~docv:"H" ~doc:"Bucket count.")
  in
  Cmd.v (Cmd.info "hashes" ~doc) Term.(ret (const run_hashes $ users_arg $ chains))

(* ------------------------------------------------------------------ *)
(* validate: simulation vs analysis, the E14 table                     *)

let run_validate users response_time rtt duration seed algorithms =
  match parse_specs algorithms with
  | Error message -> `Error (false, message)
  | Ok specs ->
    let p = params ~users ~response_time ~rtt in
    let config = Sim.Tpca_workload.default_config ~duration ~seed p in
    Format.printf
      "validating the analytic models against the simulator@.(%a, %g \
       measured seconds)@.@."
      Analysis.Tpca_params.pp p duration;
    Format.printf "%a@." Sim.Validate.pp_rows
      (Sim.Validate.compare ~config p specs);
    print_endline
      "ratio ~ 1.0 means the paper's closed form predicts the real data\n\
       structure under this workload; nan means the paper gives no model\n\
       for that algorithm.";
    `Ok ()

let validate_cmd =
  let doc = "Cross-validate every analytic model against the simulator (E14)." in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      ret
        (const run_validate $ users_arg $ response_time_arg $ rtt_arg
        $ duration_arg $ seed_arg $ algorithms_arg))

(* ------------------------------------------------------------------ *)
(* trace: generate an OLTP pcap through the real stack                 *)

let run_trace clients path verbose =
  setup_logs verbose;
  let server_addr = Packet.Ipv4.addr_of_octets 192 168 1 1 in
  let stack = Tcpcore.Stack.create ~local_addr:server_addr () in
  Tcpcore.Stack.listen stack ~port:8888 ~on_data:(fun t conn payload ->
      Tcpcore.Stack.send t conn ("OK " ^ payload));
  let server_ep = Packet.Flow.endpoint server_addr 8888 in
  let client_ep i =
    Packet.Flow.endpoint
      (Packet.Ipv4.addr_of_octets 10 0 (i / 250) (1 + (i mod 250)))
      (2000 + i)
  in
  let oc = open_out_bin path in
  let writer = Packet.Pcap.create_writer oc in
  let clock = ref 0.0 in
  let record segment =
    clock := !clock +. 0.0001;
    Packet.Pcap.write_packet writer ~time:!clock
      (Packet.Segment.to_bytes segment)
  in
  let inject segment =
    record segment;
    Tcpcore.Stack.handle_segment stack segment;
    List.iter record (Tcpcore.Stack.poll_output stack)
  in
  let server_seq = Array.make clients 0l in
  for i = 0 to clients - 1 do
    inject
      (Packet.Segment.make ~src:(client_ep i) ~dst:server_ep
         ~flags:Packet.Tcp_header.flag_syn
         ~seq:(Int32.of_int (i * 7919))
         ());
    (* The stack's SYN-ACK was just recorded; recover its sequence
       number for the handshake ACK and the query. *)
    (match Tcpcore.Stack.connection_of_flow stack
             (Packet.Flow.v ~local:server_ep ~remote:(client_ep i))
     with
    | Some conn -> server_seq.(i) <- conn.Tcpcore.Stack.snd_nxt
    | None -> failwith "trace: connection not created");
    inject
      (Packet.Segment.make ~src:(client_ep i) ~dst:server_ep
         ~flags:Packet.Tcp_header.flag_ack
         ~seq:(Int32.of_int ((i * 7919) + 1))
         ~ack_number:server_seq.(i) ())
  done;
  let rng = Numerics.Rng.create ~seed:11 in
  let order = Array.init clients Fun.id in
  Numerics.Rng.shuffle rng order;
  Array.iter
    (fun i ->
      inject
        (Packet.Segment.make ~src:(client_ep i) ~dst:server_ep
           ~flags:Packet.Tcp_header.flag_psh_ack
           ~seq:(Int32.of_int ((i * 7919) + 1))
           ~ack_number:server_seq.(i)
           ~payload:(Printf.sprintf "TXN client=%d" i)
           ()))
    order;
  close_out oc;
  Format.printf "wrote %d packets for %d clients to %s@."
    (Packet.Pcap.packet_count writer)
    clients path;
  Format.printf "server demux accounting:@.%a@." Demux.Lookup_stats.pp_snapshot
    (Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats stack));
  `Ok ()

let trace_cmd =
  let doc =
    "Generate an OLTP packet trace (.pcap, openable in wireshark) by \
     driving the TCP stack with synthetic clients."
  in
  let clients =
    Arg.(value & opt int 50 & info [ "clients" ] ~docv:"N" ~doc:"Client count.")
  in
  let path =
    Arg.(value & pos 0 string "oltp.pcap" & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(ret (const run_trace $ clients $ path $ verbose_arg))

(* ------------------------------------------------------------------ *)
(* sensitivity: crossovers and sizing                                  *)

let run_sensitivity users response_time rtt =
  let p = params ~users ~response_time ~rtt in
  Format.printf "operating point: %a@.@." Analysis.Tpca_params.pp p;
  Format.printf "== chain sizing (Eq 22) ==@.";
  List.iter
    (fun target ->
      Format.printf "chains for <= %5.1f PCBs/packet : H = %d@." target
        (Analysis.Sensitivity.chains_needed p ~target_cost:target))
    [ 100.0; 53.0; 25.0; 9.0; 3.0 ];
  Format.printf "@.== K-entry LRU cache on the linear list (E24) ==@.";
  List.iter
    (fun entries ->
      Format.printf "K = %-4d : %7.1f PCBs/packet (ack hit prob %.3f)@."
        entries
        (Analysis.Lru_model.cost p ~entries)
        (Analysis.Lru_model.ack_hit_probability p ~entries))
    [ 1; 8; 32; 64; 128; 256 ];
  let best_entries, best_cost =
    Analysis.Lru_model.best_entries p ~max_entries:1024
  in
  Format.printf "best cache size: K = %d at %.1f — still %.0fx sequent-19@."
    best_entries best_cost
    (best_cost /. Analysis.Sequent_model.cost p ~chains:19);
  Format.printf "@.== crossovers ==@.";
  Format.printf "SR cache within 5%% of BSD from : N = %d@."
    (Analysis.Sensitivity.sr_rejoins_bsd ~rtt ());
  (match Analysis.Sensitivity.mtf_beats_sr_from ~rtt ~response_time () with
  | Some n -> Format.printf "MTF beats SR cache from       : N = %d@." n
  | None -> Format.printf "MTF never beats SR cache below 100k users@.");
  Format.printf "@.== response-time sensitivity d(cost)/dR ==@.";
  List.iter
    (fun (name, algorithm) ->
      Format.printf "%-12s %10.1f PCBs per second of R@." name
        (Analysis.Sensitivity.cost_gradient_in_response_time p algorithm))
    [ ("bsd", `Bsd); ("mtf", `Mtf); ("sr-cache", `Sr_cache);
      ("sequent-19", `Sequent 19) ];
  `Ok ()

let sensitivity_cmd =
  let doc =
    "Crossovers, chain sizing and parameter sensitivity of the analytic \
     models."
  in
  Cmd.v
    (Cmd.info "sensitivity" ~doc)
    Term.(ret (const run_sensitivity $ users_arg $ response_time_arg $ rtt_arg))

(* ------------------------------------------------------------------ *)
(* replay: demultiplex a pcap capture                                  *)

let run_replay path algorithms no_checksum =
  match parse_specs algorithms with
  | Error message -> `Error (false, message)
  | Ok specs ->
    let verify_checksum = not no_checksum in
    let outcomes =
      List.map
        (fun spec -> Sim.Trace_replay.replay_file ~verify_checksum path spec)
        specs
    in
    let rec render = function
      | [] -> `Ok ()
      | Error message :: _ -> `Error (false, message)
      | Ok result :: rest ->
        Format.printf
          "%s: %d/%d packets replayed (%d skipped), %d flows@.%a@.@."
          result.Sim.Trace_replay.report.Sim.Report.algorithm
          result.Sim.Trace_replay.packets_replayed
          result.Sim.Trace_replay.packets_total
          result.Sim.Trace_replay.packets_skipped
          result.Sim.Trace_replay.flows_seen Sim.Report.pp
          result.Sim.Trace_replay.report;
        render rest
    in
    render outcomes

let replay_cmd =
  let doc = "Replay a pcap capture through the lookup algorithms." in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"pcap file")
  in
  let no_checksum =
    Arg.(
      value & flag
      & info [ "no-checksum" ]
          ~doc:"Skip checksum verification (for synthetic or truncated captures).")
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(ret (const run_replay $ path $ algorithms_arg $ no_checksum))

(* ------------------------------------------------------------------ *)
(* attack                                                              *)

let run_attack algorithms seed smoke obs_json trace_file trace_capacity =
  match parse_specs algorithms with
  | Error message -> `Error (false, message)
  | Ok specs ->
    with_obs ~label:"attack" obs_json trace_file trace_capacity
      (fun obs tracer ->
        let config =
          if smoke then Sim.Attack_workload.smoke_config ~seed ()
          else Sim.Attack_workload.default_config ~seed ()
        in
        let results = Sim.Attack_workload.run_all ?obs ?tracer config specs in
        Format.printf "Adversarial resilience (seed %d%s)@.@." seed
          (if smoke then ", smoke" else "");
        Format.printf "%a" Sim.Attack_workload.pp_table results;
        `Ok ())

let attack_cmd =
  let doc =
    "Drive adversarial workloads (collision flood, SYN flood, \
     malformed-segment storm) against the lookup algorithms and print a \
     resilience table."
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Small packet counts for quick CI runs.")
  in
  let attack_algorithms =
    let doc =
      "Comma-separated algorithms; guarded-$(i,ALGO) wraps an algorithm in \
       the overload guard."
    in
    Arg.(
      value
      & opt (list string)
          [ "bsd"; "mtf"; "sr-cache"; "sequent-19"; "guarded-sequent-19";
            "cuckoo"; "guarded-cuckoo" ]
      & info [ "a"; "algo"; "algorithms" ] ~docv:"ALGOS" ~doc)
  in
  Cmd.v
    (Cmd.info "attack" ~doc)
    Term.(
      ret
        (const run_attack $ attack_algorithms $ seed_arg $ smoke
        $ obs_json_arg $ trace_file_arg $ trace_capacity_arg))

(* ------------------------------------------------------------------ *)
(* parallel: multicore lookup throughput                               *)

let parse_target name =
  let sequent_chains s =
    if s = "sequent" then Some 19
    else if String.length s > 8 && String.sub s 0 8 = "sequent-" then
      int_of_string_opt (String.sub s 8 (String.length s - 8))
    else None
  in
  match String.split_on_char ':' name with
  | [ "coarse"; "bsd" ] -> Ok Parallel.Throughput.Coarse_bsd
  | [ "coarse"; rest ] -> (
    match sequent_chains rest with
    | Some chains when chains > 0 ->
      Ok (Parallel.Throughput.Coarse_sequent chains)
    | _ -> Error (Printf.sprintf "unknown coarse target %S" name))
  | [ "striped"; rest ] -> (
    match sequent_chains rest with
    | Some chains when chains > 0 ->
      Ok (Parallel.Throughput.Striped_sequent chains)
    | _ -> Error (Printf.sprintf "unknown striped target %S" name))
  | [ "epoch" ] | [ "epoch"; "table" ] -> Ok Parallel.Throughput.Epoch_table
  | [ "offheap" ] | [ "epoch"; "offheap" ] ->
    Ok Parallel.Throughput.Offheap_epoch
  | [ "cuckoo" ] | [ "cuckoo"; "table" ] -> Ok Parallel.Throughput.Cuckoo_table
  | _ ->
    Error
      (Printf.sprintf
         "unknown target %S (try: coarse:bsd, coarse:sequent-19, \
          striped:sequent-19, epoch, epoch:offheap, cuckoo)"
         name)

(* The same synthetic flow population Throughput builds internally,
   reused here to feed the dispatcher pipeline a packet stream. *)
let parallel_flows connections =
  Array.init connections (fun i ->
      let addr =
        Packet.Ipv4.addr_of_octets 10
          ((i lsr 16) land 0xFF)
          ((i lsr 8) land 0xFF)
          (i land 0xFF)
      in
      Packet.Flow.v
        ~local:(Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888)
        ~remote:(Packet.Flow.endpoint addr (1024 + (i * 7 mod 60000))))

let pipeline_stream flows ~packets ~seed =
  let rng = Parallel.Worker_rng.create seed in
  Array.init packets (fun _ ->
      flows.(Parallel.Worker_rng.int rng ~bound:(Array.length flows)))

let run_pipeline ?obs ?tracer ~workers ~batch ~connections ~packets ~seed () =
  let flows = parallel_flows connections in
  let table = Parallel.Striped.create ~chains:19 () in
  Array.iter (fun flow -> ignore (Parallel.Striped.insert table flow ())) flows;
  let stream = pipeline_stream flows ~packets ~seed in
  Parallel.Dispatcher.run ?obs ?tracer ~workers ~batch
    ~lookup_batch:(fun flows ~hashes ->
      Parallel.Striped.lookup_batch_keyed table flows ~hashes)
    stream

(* The same dispatcher pipeline over the lock-free epoch table:
   workers demultiplex each batch through Epoch.Table.lookup_batch_keyed
   (one epoch pin per batch, zero mutex acquisitions).  The dispatcher's
   default hasher matches the table's Flow_key.hash_words, so the
   precomputed shard hashes are reusable as probe hashes. *)
let run_pipeline_epoch ?obs ?tracer ~workers ~batch ~connections ~packets
    ~seed () =
  let flows = parallel_flows connections in
  let table : unit Epoch.Table.t = Epoch.Table.create () in
  Epoch.Table.load table
    (Array.map
       (fun flow ->
         ( Demux.Flow_key.w0_of_flow flow,
           Demux.Flow_key.w1_of_flow flow,
           () ))
       flows);
  Option.iter (fun obs -> Epoch.Table.register_obs obs table) obs;
  let stream = pipeline_stream flows ~packets ~seed in
  let result =
    Parallel.Dispatcher.run ?obs ?tracer ~workers ~batch
      ~lookup_batch:(fun flows ~hashes ->
        Epoch.Table.lookup_batch_keyed table flows ~hashes)
      stream
  in
  Epoch.Table.quiesce table;
  result

(* And over the off-heap epoch table: identical pipeline shape, but
   the published region is Bigarray storage and retired regions are
   freed eagerly at reclaim (values are the flow's load index). *)
let run_pipeline_offheap ?obs ?tracer ~workers ~batch ~connections ~packets
    ~seed () =
  let flows = parallel_flows connections in
  let table = Epoch.Packed.Offheap.create () in
  Epoch.Packed.Offheap.load table
    (Array.mapi
       (fun i flow ->
         ( Demux.Flow_key.w0_of_flow flow,
           Demux.Flow_key.w1_of_flow flow,
           i ))
       flows);
  Option.iter
    (fun obs -> Epoch.Packed.Offheap.register_obs obs table)
    obs;
  let stream = pipeline_stream flows ~packets ~seed in
  let result =
    Parallel.Dispatcher.run ?obs ?tracer ~workers ~batch
      ~lookup_batch:(fun flows ~hashes ->
        Epoch.Packed.Offheap.lookup_batch_keyed table flows ~hashes)
      stream
  in
  Epoch.Packed.Offheap.quiesce table;
  result

(* --smp: the shared-nothing per-core stacks (Parallel.Smp).  Each
   domain owns a complete TCP stack — connection table, timer wheel,
   demux table — and a dispatcher steers raw datagrams into per-domain
   rings; with --migrate the listener core hands every accepted
   connection to another core mid-trace.  Every run is gated on exact
   handoff conservation (Smp.violations), so the smoke pass doubles as
   a correctness check in CI. *)
let run_smp ~domains ~migrate ~smoke ~seed obs_json =
  let domains = if smoke then [ 1; 2 ] else domains in
  if List.exists (fun d -> d <= 0) domains then
    `Error (false, "--domains must all be positive")
  else begin
  let clients, requests = if smoke then (60, 3) else (1500, 10) in
  let trace =
    Sim.Segment_workload.generate
      (Sim.Segment_workload.config ~clients ~requests_per_client:requests
         ~interleave:Sim.Segment_workload.Round_robin ~seed ())
  in
  let obs = Option.map (fun _ -> Obs.Registry.create ()) obs_json in
  (* Migration needs a content-independent demux spec so the handoff
     path (remove + insert) keeps lookup statistics comparable across
     domain counts. *)
  let demux =
    if migrate then Some (Demux.Registry.Conn_id { capacity = 65536 })
    else None
  in
  Format.printf
    "smp: shared-nothing per-core stacks, %d datagrams (%d flows)%s@."
    (Array.length trace.Sim.Segment_workload.datagrams)
    trace.Sim.Segment_workload.syns
    (if migrate then ", flow migration on" else "");
  let failures = ref [] in
  List.iter
    (fun d ->
      let r =
        Parallel.Smp.run
          (Parallel.Smp.config ?demux ~migrate ~stages:true ~domains:d
             ~local_addr:Sim.Topology.server.Packet.Flow.addr ())
          trace.Sim.Segment_workload.datagrams
      in
      Format.printf "%a@." Parallel.Smp.pp r;
      (match Parallel.Smp.violations r with
      | [] -> ()
      | v -> failures := (d, v) :: !failures);
      Option.iter
        (fun obs ->
          Parallel.Smp.register_obs
            ~prefix:(Printf.sprintf "smp.d%d" d)
            r obs)
        obs)
    domains;
  match !failures with
  | (d, v) :: _ ->
    `Error
      ( false,
        Printf.sprintf "smp: conservation violated at %d domains: %s" d
          (String.concat "; " v) )
  | [] -> (
    try
      (match (obs_json, obs) with
      | Some path, Some obs ->
        Obs.Registry.write_json ~label:"parallel" obs path;
        Format.printf "wrote metric snapshot to %s@." path
      | _ -> ());
      `Ok ()
    with Sys_error message -> `Error (false, message))
  end

let run_parallel targets domains batches connections lookups pipeline epoch
    offheap cuckoo smp migrate smoke seed obs_json trace_file trace_capacity =
  if smp then run_smp ~domains ~migrate ~smoke ~seed obs_json
  else
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match parse_target name with
      | Ok target -> parse (target :: acc) rest
      | Error _ as e -> e)
  in
  (* --smoke: a CI-sized run that still exercises every path — two
     domains, per-packet vs a small batch, plus the ring pipeline. *)
  let domains, batches, connections, lookups, pipeline =
    if smoke then ([ 2 ], [ 1; 8 ], 200, 20_000, true)
    else (domains, batches, connections, lookups, pipeline)
  in
  match parse [] targets with
  | Error message -> `Error (false, message)
  | Ok targets ->
    (* --epoch: measure the lock-free table alongside whatever else was
       asked for, and run the dispatcher pipeline over it too. *)
    let targets =
      if epoch && not (List.mem Parallel.Throughput.Epoch_table targets) then
        targets @ [ Parallel.Throughput.Epoch_table ]
      else targets
    in
    (* --offheap: likewise for the Bigarray-backed epoch table. *)
    let targets =
      if
        offheap
        && not (List.mem Parallel.Throughput.Offheap_epoch targets)
      then targets @ [ Parallel.Throughput.Offheap_epoch ]
      else targets
    in
    (* --cuckoo: likewise for the bucketized cuckoo table (read-only
       concurrent probes over a pre-populated table). *)
    let targets =
      if
        cuckoo && not (List.mem Parallel.Throughput.Cuckoo_table targets)
      then targets @ [ Parallel.Throughput.Cuckoo_table ]
      else targets
    in
    if List.exists (fun d -> d <= 0) domains then
      `Error (false, "--domains must all be positive")
    else if List.exists (fun b -> b <= 0) batches then
      `Error (false, "--batch sizes must all be positive")
    else if trace_capacity <= 0 then
      `Error (false, "--trace-capacity must be positive")
    else
      let obs = Option.map (fun _ -> Obs.Registry.create ()) obs_json in
      let results =
        Parallel.Throughput.scaling_table ?obs
          ?trace_capacity:(Option.map (fun _ -> trace_capacity) trace_file)
          ~connections ~lookups_per_domain:lookups ~seed ~batches ~domains
          targets
      in
      Format.printf "%a" Parallel.Throughput.pp_results results;
      let clamped =
        List.fold_left
          (fun a (r : Parallel.Throughput.result) ->
            a + r.Parallel.Throughput.clock_went_backwards)
          0 results
      in
      if clamped > 0 then
        Format.printf
          "warning: %d lookup intervals clamped to zero (clock went \
           backwards)@."
          clamped;
      List.iter
        (fun (r : Parallel.Throughput.result) ->
          match r.Parallel.Throughput.latency with
          | Some histogram ->
            Format.printf "%s x%d b%d lookup latency: %a@."
              r.Parallel.Throughput.target r.Parallel.Throughput.domains
              r.Parallel.Throughput.batch Obs.Histogram.pp histogram
          | None -> ())
        results;
      let pipeline_tracers = ref [] in
      let pipeline_pass ~label run_one =
        Format.printf "@.pipeline: dispatcher -> SPSC rings -> %s workers@."
          label;
        List.iter
          (fun workers ->
            List.iter
              (fun batch ->
                let tracer =
                  Option.map
                    (fun _ ->
                      let tracer =
                        Obs.Trace.create ~id:(1000 + workers)
                          ~capacity:trace_capacity ()
                      in
                      pipeline_tracers := tracer :: !pipeline_tracers;
                      tracer)
                    trace_file
                in
                let r =
                  run_one ?obs ?tracer ~workers ~batch ~connections
                    ~packets:lookups ~seed ()
                in
                Format.printf "%a@." Parallel.Dispatcher.pp r)
              batches)
          domains
      in
      if pipeline then begin
        pipeline_pass ~label:"striped" run_pipeline;
        if epoch then pipeline_pass ~label:"epoch-table" run_pipeline_epoch;
        if offheap then
          pipeline_pass ~label:"offheap-epoch-table" run_pipeline_offheap
      end;
      (try
         (match (obs_json, obs) with
         | Some path, Some obs ->
           Obs.Registry.write_json ~label:"parallel" obs path;
           Format.printf "wrote metric snapshot to %s@." path
         | _ -> ());
         (match trace_file with
         | Some path ->
           let oc = open_out_bin path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               List.iter
                 (fun (r : Parallel.Throughput.result) ->
                   List.iter
                     (fun tracer -> Obs.Trace.dump tracer oc)
                     r.Parallel.Throughput.traces)
                 results;
               List.iter
                 (fun tracer -> Obs.Trace.dump tracer oc)
                 (List.rev !pipeline_tracers));
           Format.printf "wrote per-domain trace segments to %s@." path
         | None -> ());
         `Ok ()
       with Sys_error message -> `Error (false, message))

let parallel_cmd =
  let doc =
    "Measure multicore lookup throughput (and, with --obs-json, \
     per-lookup latency histograms merged across domains) for \
     coarse-locked and striped demultiplexers."
  in
  let targets =
    Arg.(
      value
      & opt (list string) [ "coarse:sequent-19"; "striped:sequent-19" ]
      & info [ "t"; "targets" ] ~docv:"TARGETS"
          ~doc:
            "Comma-separated targets: coarse:bsd, coarse:sequent[-H], \
             striped:sequent[-H], epoch (the lock-free epoch table), \
             epoch:offheap (the same protocol over Bigarray storage), \
             cuckoo (the bucketized cuckoo table, read-only probes).")
  in
  let domains =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "domains" ] ~docv:"N,N,..." ~doc:"Domain counts to run.")
  in
  let connections =
    Arg.(
      value & opt int 2000
      & info [ "connections" ] ~docv:"N" ~doc:"Resident flows.")
  in
  let lookups =
    Arg.(
      value & opt int 200_000
      & info [ "lookups" ] ~docv:"N" ~doc:"Lookups per domain.")
  in
  let batches =
    Arg.(
      value
      & opt (list int) [ 1 ]
      & info [ "batch" ] ~docv:"N,N,..."
          ~doc:
            "Batch sizes to run; 1 is the per-packet baseline, larger \
             values demultiplex through lookup_batch (one mutex \
             acquisition per stripe per batch).")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Also run the dispatcher pipeline (flow-hash sharding into \
             bounded SPSC rings feeding striped workers) for each \
             (domains, batch) pair.")
  in
  let epoch =
    Arg.(
      value & flag
      & info [ "epoch" ]
          ~doc:
            "Add the lock-free epoch table (Epoch.Table) to the measured \
             targets, and — when the pipeline runs — drive the dispatcher \
             over it as well; with --obs-json, its epoch.* reclamation \
             and per-operation counters land in the snapshot.")
  in
  let offheap =
    Arg.(
      value & flag
      & info [ "offheap" ]
          ~doc:
            "Add the Bigarray-backed epoch table (Epoch.Packed.Offheap) \
             to the measured targets, and — when the pipeline runs — \
             drive the dispatcher over it as well; with --obs-json, its \
             epoch.packed.* counters (including resident storage bytes) \
             land in the snapshot.")
  in
  let cuckoo =
    Arg.(
      value & flag
      & info [ "cuckoo" ]
          ~doc:
            "Add the bucketized cuckoo table (Demux.Cuckoo_table) to the \
             measured targets: populated before the domains spawn, then \
             probed read-only, so worst-case lookup cost stays two \
             buckets plus the stash under any load.")
  in
  let smp =
    Arg.(
      value & flag
      & info [ "smp" ]
          ~doc:
            "Run the shared-nothing per-core stacks instead of the \
             lookup-throughput targets: one complete TCP stack \
             (connection table, timer wheel, demux table) per domain in \
             --domains, fed by a dispatcher steering a deterministic \
             segment workload; prints packets/sec and the per-stage \
             latency breakdown, and fails if handoff conservation is \
             violated.  With --obs-json, smp.dN.* counters and stage \
             histograms land in the snapshot.")
  in
  let migrate =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:
            "With --smp: accept every connection on the listener core \
             (domain 0) and migrate it to another core mid-trace — \
             route-map override plus in-flight segment forwarding, with \
             exact handoff accounting.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI-sized run: 2 domains, batches 1 and 8, small counts, \
             pipeline included.  Overrides --domains, --batch, \
             --connections, --lookups.  With --smp: domains 1 and 2 \
             over a small workload.")
  in
  Cmd.v
    (Cmd.info "parallel" ~doc)
    Term.(
      ret
        (const run_parallel $ targets $ domains $ batches $ connections
        $ lookups $ pipeline $ epoch $ offheap $ cuckoo $ smp $ migrate
        $ smoke $ seed_arg $ obs_json_arg $ trace_file_arg
        $ trace_capacity_arg))

(* ------------------------------------------------------------------ *)
(* check: differential oracle + fuzz + cross-validation (lib/check)    *)

let run_check algorithms smoke seed ops pool programs_per_profile no_xval
    json_path obs_json trace_file trace_capacity =
  match parse_specs algorithms with
  | Error message -> `Error (false, message)
  | Ok specs ->
    with_obs ~label:"check" obs_json trace_file trace_capacity
      (fun obs _tracer ->
        let subjects =
          List.map (fun spec () -> Check.Subject.of_spec spec) specs
          @ [ (fun () -> Check.Subject.striped ());
              (fun () -> Check.Subject.flat_table ());
              (fun () -> Check.Subject.flat_table_doubling ());
              (fun () -> Check.Subject.guarded_flat_table ());
              (fun () -> Check.Subject.epoch_table ());
              (fun () -> Check.Subject.offheap_table ());
              (fun () -> Check.Subject.cuckoo_table ()) ]
        in
        let programs_per_profile =
          if smoke then 2 else programs_per_profile
        in
        let summary, failures =
          Check.Fuzz.campaign ?obs ~programs_per_profile ~ops ~pool ~subjects
            ~seed ()
        in
        Format.printf
          "diff: %d subjects x %d programs, %d op applications, %d \
           mismatch(es)@."
          (List.length summary.Check.Diff.subjects)
          summary.Check.Diff.programs summary.Check.Diff.ops
          (List.length summary.Check.Diff.mismatches);
        List.iter
          (fun failure ->
            Format.printf "%a@." Check.Fuzz.pp_failure failure)
          failures;
        let xval =
          if no_xval then None
          else begin
            (* Smoke keeps the full 3x3 (N, H) grid but shortens the
               measured window; tolerances are calibrated to hold at
               both durations (EXPERIMENTS.md E30). *)
            let duration = if smoke then 40.0 else 120.0 in
            let outcome = Check.Xval.run ?obs ~duration ~seed () in
            Format.printf "%a" Check.Xval.pp outcome;
            Some outcome
          end
        in
        let report = Check.Report.v ?xval ~seed summary failures in
        (match json_path with
        | Some path ->
          Check.Report.write path report;
          Format.printf "wrote tcpdemux-check/1 report to %s@." path
        | None -> ());
        if Check.Report.passed report then begin
          Format.printf "check: PASS@.";
          `Ok ()
        end
        else `Error (false, "check failed (see mismatches above)"))

let check_cmd =
  let doc =
    "Differentially test every demultiplexer against a reference model \
     on deterministic fuzzed programs, and cross-validate simulated \
     costs against the paper's closed forms."
  in
  let algorithms =
    Arg.(
      value
      & opt (list string)
          [ "linear"; "bsd"; "mtf"; "sr-cache"; "sequent-19";
            "hashed-mtf-19"; "resizing-hash"; "splay"; "conn-id";
            "lru-cache-8"; "guarded-sequent-19"; "cuckoo"; "guarded-cuckoo" ]
      & info [ "a"; "algos"; "algorithms" ] ~docv:"ALGOS"
          ~doc:
            "Comma-separated registry specs to check (a striped table, \
             the flat Robin-Hood index — incremental and doubling \
             resize, plus a guarded variant — the lock-free epoch \
             table and the bare bucketized cuckoo table are always \
             included).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI-sized run: 2 programs per profile and a shorter \
             cross-validation window.  Still covers every profile, \
             every algorithm and the full (N, H) grid.")
  in
  let ops =
    Arg.(
      value & opt int 1024
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per fuzzed program.")
  in
  let pool =
    Arg.(
      value & opt int 64
      & info [ "pool" ] ~docv:"N" ~doc:"Distinct flows per program.")
  in
  let programs =
    Arg.(
      value & opt int 4
      & info [ "programs" ] ~docv:"N"
          ~doc:"Programs per fuzz profile (ignored under --smoke).")
  in
  let no_xval =
    Arg.(
      value & flag
      & info [ "no-xval" ]
          ~doc:"Skip the analytic cross-validation sweep.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the $(i,tcpdemux-check/1) report to $(docv).")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run_check $ algorithms $ smoke $ seed_arg $ ops $ pool
        $ programs $ no_xval $ json $ obs_json_arg $ trace_file_arg
        $ trace_capacity_arg))

(* ------------------------------------------------------------------ *)
(* chaos: fault scenarios over the parallel pipeline (lib/fault)       *)

let run_chaos scenarios smoke seed workers ops json_path =
  let parse_scenarios = function
    | [] -> Ok Fault.Chaos.all
    | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
          match Fault.Chaos.scenario_of_name name with
          | Some s -> go (s :: acc) rest
          | None ->
            Error
              (Printf.sprintf "unknown scenario %S (have: %s)" name
                 (String.concat ", "
                    (List.map Fault.Chaos.scenario_name Fault.Chaos.all))))
      in
      go [] names
  in
  match parse_scenarios scenarios with
  | Error message -> `Error (false, message)
  | Ok scenarios ->
    if workers <= 0 then `Error (false, "--workers must be positive")
    else if ops <= 0 then `Error (false, "--ops must be positive")
    else begin
      let ops = if smoke then min ops 20_000 else ops in
      Format.printf "chaos: %d scenario(s), %d workers, %d ops each, seed \
                     %d%s@.@."
        (List.length scenarios) workers ops seed
        (if smoke then " (smoke)" else "");
      let outcomes =
        List.mapi
          (fun i scenario ->
            Check.Chaos.run_scenario ~workers ~ops ~seed:((seed * 31) + i)
              scenario)
          scenarios
      in
      let t = { Check.Chaos.seed; workers; ops; outcomes } in
      Format.printf "@[<v>%a@]@." Check.Chaos.pp t;
      (match json_path with
      | Some path ->
        (try
           Check.Chaos.write path t;
           Format.printf "wrote tcpdemux-chaos/1 report to %s@." path
         with Sys_error message -> Format.printf "warning: %s@." message)
      | None -> ());
      if Check.Chaos.passed t then begin
        Format.printf "chaos: PASS@.";
        `Ok ()
      end
      else `Error (false, "chaos audit failed (see mismatches above)")
    end

let chaos_cmd =
  let doc =
    "Run seeded fault scenarios (stalled consumer, slow worker, ring-full \
     storm, bursty arrivals, mid-run table growth) against the parallel \
     pipeline and replay-audit every one: contents, stats and shed \
     accounting must match the reference oracle exactly."
  in
  let scenarios =
    Arg.(
      value
      & opt (list string) []
      & info [ "s"; "scenarios" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated scenario names (default: all of \
             stalled-consumer, slow-worker, ring-full-storm, \
             burst-arrival, mid-run-growth).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI-sized run: caps the per-scenario op count at 20000.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domain count.")
  in
  let ops =
    Arg.(
      value & opt int 120_000
      & info [ "ops" ] ~docv:"N" ~doc:"Ops offered per scenario.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the $(i,tcpdemux-chaos/1) report to $(docv).")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const run_chaos $ scenarios $ smoke $ seed_arg $ workers $ ops
        $ json))

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "TCP demultiplexing algorithms from McKenney & Dove (SIGCOMM 1992): \
     analysis, simulation and benchmarks."
  in
  Cmd.group
    (Cmd.info "tcpdemux" ~version:"1.0.0" ~doc)
    [ analyze_cmd; figure_cmd; simulate_cmd; validate_cmd; sweep_cmd;
      sensitivity_cmd; hashes_cmd; trace_cmd; replay_cmd; attack_cmd;
      parallel_cmd; check_cmd; chaos_cmd ]

let () = exit (Cmd.eval main_cmd)
