(* Observability walkthrough: run the paper's TPC/A workload over its
   four algorithms with a metric registry and a hot-path tracer
   attached, then read the results back out of the registry — the
   per-lookup examined-count distribution (the paper's figure of
   merit, per packet instead of in aggregate) and the per-transaction
   virtual latency.

   The same registry/tracer plumbing backs `tcpdemux simulate
   --obs-json --trace`; this is the library-level view.

   Run with: dune exec examples/obs_demo.exe -- [users] *)

let () =
  let users =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let params = Analysis.Tpca_params.v ~users () in
  let config =
    Sim.Tpca_workload.default_config ~duration:30.0 ~seed:42 params
  in

  (* One registry for every algorithm (names are prefixed per
     algorithm, so they coexist), one tracer per algorithm (the ring
     is per-stream state). *)
  let obs = Obs.Registry.create () in
  let specs = Demux.Registry.default_specs in

  let traced =
    List.map
      (fun spec ->
        let name = Demux.Registry.spec_name spec in
        let tracer = Obs.Trace.create ~capacity:65536 () in
        Printf.printf "simulating %-10s (%d users, %.0fs virtual)...\n%!"
          name config.Sim.Tpca_workload.users
          config.Sim.Tpca_workload.duration;
        ignore (Sim.Tpca_workload.run ~obs ~tracer config spec);
        (name, tracer))
      specs
  in

  (* The paper's Figures 13/14 report the MEAN examined count; the
     histogram shows what the mean hides — the tail a slow lookup
     actually experiences. *)
  let metrics = Obs.Registry.snapshot obs in
  let histogram_of name =
    match Obs.Registry.find metrics name with
    | Some { Obs.Registry.data = Obs.Registry.Histogram (summary, _); _ } ->
      Some summary
    | _ -> None
  in
  print_newline ();
  Report.Table.print
    ~columns:
      [ Report.Table.column ~align:Report.Table.Left "algorithm";
        Report.Table.column "mean examined";
        Report.Table.column "p50";
        Report.Table.column "p99";
        Report.Table.column "max";
        Report.Table.column "txn p99 (ms)" ]
    (List.map
       (fun (name, _) ->
         let examined = histogram_of ("demux." ^ name ^ ".examined") in
         let latency = histogram_of ("sim.tpca." ^ name ^ ".txn_latency") in
         let cell f = match examined with
           | Some s -> f s
           | None -> "-"
         in
         [ name;
           cell (fun s -> Report.Table.float_cell s.Obs.Histogram.mean);
           cell (fun s -> string_of_int s.Obs.Histogram.p50);
           cell (fun s -> string_of_int s.Obs.Histogram.p99);
           cell (fun s -> string_of_int s.Obs.Histogram.max);
           (match latency with
           | Some s ->
             Report.Table.float_cell (float_of_int s.Obs.Histogram.p99 /. 1e3)
           | None -> "-") ])
       traced);

  (* What the tracer held when the run ended: the last [capacity]
     hot-path events, timestamped in virtual seconds. *)
  print_newline ();
  List.iter
    (fun (name, tracer) ->
      let events = Obs.Trace.to_list tracer in
      let count kind =
        List.length (List.filter (fun r -> r.Obs.Trace.kind = kind) events)
      in
      Printf.printf
        "%-10s trace: %d events held (%d recorded, %d lost to ring wrap), \
         of the held: %d lookups, %d cache hits, %d chain walks\n"
        name (Obs.Trace.length tracer)
        (Obs.Trace.recorded tracer)
        (Obs.Trace.dropped tracer)
        (count Obs.Trace.Lookup_end)
        (count Obs.Trace.Cache_hit)
        (count Obs.Trace.Chain_walk))
    traced;

  (* The whole registry also exports as the tcpdemux-obs/1 JSON
     schema — this is exactly what --obs-json writes. *)
  let path = "obs_demo.json" in
  Obs.Registry.write_json ~label:"obs-demo" obs path;
  Printf.printf "\nwrote %d metrics to %s (schema tcpdemux-obs/1)\n"
    (List.length metrics) path
