(* A faithful copy of Epoch.Table's regions and write path, kept
   byte-for-byte close so the only behavioural difference is the
   planted bug: [publish] scrubs the replaced region immediately
   instead of retiring it until readers quiesce.  See the .mli. *)

type 'a region = {
  tags : Bytes.t;
  hs : int array;
  w0s : int array;
  w1s : int array;
  vals : 'a option array;
  mask : int;
  mutable count : int;
}

let min_capacity = 8
let scrub_tag = 255

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 || tag = scrub_tag then 1 else tag

let make_region cap =
  { tags = Bytes.make cap '\000';
    hs = Array.make cap 0;
    w0s = Array.make cap 0;
    w1s = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    count = 0 }

let copy_region r =
  { tags = Bytes.copy r.tags;
    hs = Array.copy r.hs;
    w0s = Array.copy r.w0s;
    w1s = Array.copy r.w1s;
    vals = Array.copy r.vals;
    mask = r.mask;
    count = r.count }

let scrub r =
  Bytes.fill r.tags 0 (Bytes.length r.tags) (Char.chr scrub_tag);
  Array.fill r.hs 0 (Array.length r.hs) 0;
  Array.fill r.w0s 0 (Array.length r.w0s) 0;
  Array.fill r.w1s 0 (Array.length r.w1s) 0;
  Array.fill r.vals 0 (Array.length r.vals) None;
  r.count <- 0

let distance r slot = (slot - (r.hs.(slot) land r.mask)) land r.mask

let rec probe r tag w0 w1 slot dist =
  let resident = Bytes.get_uint8 r.tags slot in
  if resident = 0 then -1
  else if resident = tag && r.w0s.(slot) = w0 && r.w1s.(slot) = w1 then slot
  else if distance r slot < dist then -1
  else probe r tag w0 w1 ((slot + 1) land r.mask) (dist + 1)

let rec place r slot dist h tag w0 w1 v =
  let resident = Bytes.get_uint8 r.tags slot in
  if resident = 0 then begin
    Bytes.set_uint8 r.tags slot tag;
    r.hs.(slot) <- h;
    r.w0s.(slot) <- w0;
    r.w1s.(slot) <- w1;
    r.vals.(slot) <- v;
    r.count <- r.count + 1
  end
  else begin
    let rdist = distance r slot in
    if rdist < dist then begin
      let h' = r.hs.(slot)
      and tag' = resident
      and w0' = r.w0s.(slot)
      and w1' = r.w1s.(slot)
      and v' = r.vals.(slot) in
      Bytes.set_uint8 r.tags slot tag;
      r.hs.(slot) <- h;
      r.w0s.(slot) <- w0;
      r.w1s.(slot) <- w1;
      r.vals.(slot) <- v;
      place r ((slot + 1) land r.mask) (rdist + 1) h' tag' w0' w1' v'
    end
    else place r ((slot + 1) land r.mask) (dist + 1) h tag w0 w1 v
  end

let insert_fresh r h w0 w1 v =
  place r (h land r.mask) 0 h (tag_of_hash h) w0 w1 (Some v)

let rec backshift r slot =
  let next = (slot + 1) land r.mask in
  let next_tag = Bytes.get_uint8 r.tags next in
  if next_tag = 0 || distance r next = 0 then begin
    Bytes.set_uint8 r.tags slot 0;
    r.hs.(slot) <- 0;
    r.w0s.(slot) <- 0;
    r.w1s.(slot) <- 0;
    r.vals.(slot) <- None
  end
  else begin
    Bytes.set_uint8 r.tags slot next_tag;
    r.hs.(slot) <- r.hs.(next);
    r.w0s.(slot) <- r.w0s.(next);
    r.w1s.(slot) <- r.w1s.(next);
    r.vals.(slot) <- r.vals.(next);
    backshift r next
  end

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

type 'a t = {
  published : 'a region Atomic.t;
  hash : int -> int -> int;
}

type 'a view = { view_region : 'a region; view_hash : int -> int -> int }

let create ?(hash = Demux.Flow_key.hash_words)
    ?(initial_capacity = min_capacity) () =
  if initial_capacity < 0 then
    invalid_arg "Buggy_epoch.create: initial_capacity < 0";
  let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
  { published = Atomic.make (make_region cap); hash }

(* The planted bug: the replaced region is poisoned NOW, pins or no
   pins.  Epoch.Table's publish hands it to Core.retire instead. *)
let publish t fresh old =
  Atomic.set t.published fresh;
  scrub old

let replace t ~w0 ~w1 v =
  let cur = Atomic.get t.published in
  let h = t.hash w0 w1 in
  let slot = probe cur (tag_of_hash h) w0 w1 (h land cur.mask) 0 in
  let fresh =
    if slot >= 0 then begin
      let fresh = copy_region cur in
      fresh.vals.(slot) <- Some v;
      fresh
    end
    else begin
      let fresh =
        if (cur.count + 1) * 8 > (cur.mask + 1) * 7 then begin
          let grown = make_region ((cur.mask + 1) * 2) in
          for s = 0 to cur.mask do
            if Bytes.get_uint8 cur.tags s <> 0 then
              insert_fresh grown cur.hs.(s) cur.w0s.(s) cur.w1s.(s)
                (match cur.vals.(s) with
                | Some v -> v
                | None -> assert false)
          done;
          grown
        end
        else copy_region cur
      in
      insert_fresh fresh h w0 w1 v;
      fresh
    end
  in
  publish t fresh cur

let remove t ~w0 ~w1 =
  let cur = Atomic.get t.published in
  let h = t.hash w0 w1 in
  let slot = probe cur (tag_of_hash h) w0 w1 (h land cur.mask) 0 in
  if slot >= 0 then begin
    let fresh = copy_region cur in
    backshift fresh slot;
    fresh.count <- fresh.count - 1;
    publish t fresh cur
  end

let find_opt t ~w0 ~w1 =
  let r = Atomic.get t.published in
  let h = t.hash w0 w1 in
  let slot = probe r (tag_of_hash h) w0 w1 (h land r.mask) 0 in
  if slot < 0 then None else r.vals.(slot)

let length t = (Atomic.get t.published).count
let pin t = { view_region = Atomic.get t.published; view_hash = t.hash }

let view_find view ~w0 ~w1 =
  let r = view.view_region in
  let h = view.view_hash w0 w1 in
  let slot = probe r (tag_of_hash h) w0 w1 (h land r.mask) 0 in
  if slot < 0 then None else r.vals.(slot)

let unpin _ = ()
let pending _ = 0
let quiesce _ = ()
