(** An epoch table with a planted use-after-reclaim bug.

    A close copy of {!Epoch.Table}'s copy-mutate-publish write path —
    same packed region layout, Robin-Hood probes, growth rule and
    scrub-on-free poisoning — except that {e retiring ignores the
    grace period}: the writer scrubs the replaced region the moment it
    publishes the new one, without consulting reader pins.  A reader
    holding a pinned view across a writer's resize therefore probes a
    poisoned region and misses flows that were resident when it
    pinned.

    Like {!Buggy_table}, this exists to prove the harness catches the
    bug class: {!Epoch_audit.run} reports [wrong = 0] and a non-empty
    retire backlog for the real {!Epoch.Table}, and [wrong > 0] with a
    permanently empty backlog for this table (asserted in
    [test_check.ml]). *)

type 'a t

val create : ?hash:(int -> int -> int) -> ?initial_capacity:int -> unit -> 'a t
val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
val remove : 'a t -> w0:int -> w1:int -> unit
val find_opt : 'a t -> w0:int -> w1:int -> 'a option
val length : 'a t -> int

type 'a view

val pin : 'a t -> 'a view
(** The planted bug means the pin protects nothing: the view's region
    is scrubbed by the next publish. *)

val view_find : 'a view -> w0:int -> w1:int -> 'a option
val unpin : 'a t -> unit

val pending : 'a t -> int
(** Always [0] — nothing is ever deferred, which is the bug. *)

val quiesce : 'a t -> unit
