(* A faithful copy of Demux.Flat_table's Robin-Hood open addressing,
   except [remove] skips the backward shift (see the .mli).  Kept
   byte-for-byte close to the original so the only behavioural
   difference is the planted bug. *)

type 'a t = {
  mutable tags : Bytes.t;
  mutable hs : int array;
  mutable w0s : int array;
  mutable w1s : int array;
  mutable vals : 'a option array;
  mutable mask : int;
  mutable size : int;
  hash : int -> int -> int;
}

let default_hash = Demux.Flow_key.hash_words

let min_capacity = 8

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

(* [resize] is part of the {!Subject.FLAT} surface; the buggy copy
   ignores it and always rebuilds by doubling. *)
let create ?(hash = default_hash) ?(initial_capacity = min_capacity)
    ?resize:(_ : Demux.Flat_table.resize option) () =
  if initial_capacity < 0 then
    invalid_arg "Buggy_table.create: initial_capacity < 0";
  let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
  { tags = Bytes.make cap '\000';
    hs = Array.make cap 0;
    w0s = Array.make cap 0;
    w1s = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    size = 0;
    hash }

let length t = t.size

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 then 1 else tag

let distance t slot = (slot - (t.hs.(slot) land t.mask)) land t.mask

let rec probe t tag w0 w1 slot dist =
  let resident = Bytes.get_uint8 t.tags slot in
  if resident = 0 then -1
  else if resident = tag && t.w0s.(slot) = w0 && t.w1s.(slot) = w1 then slot
  else if distance t slot < dist then -1
  else probe t tag w0 w1 ((slot + 1) land t.mask) (dist + 1)

let find_slot t w0 w1 =
  let h = t.hash w0 w1 in
  probe t (tag_of_hash h) w0 w1 (h land t.mask) 0

let find_opt t ~w0 ~w1 =
  let slot = find_slot t w0 w1 in
  if slot < 0 then None else t.vals.(slot)

let mem t ~w0 ~w1 = find_slot t w0 w1 >= 0

let insert_fresh t h w0 w1 v =
  let tag = ref (tag_of_hash h) in
  let h = ref h and w0 = ref w0 and w1 = ref w1 and v = ref v in
  let slot = ref (!h land t.mask) in
  let dist = ref 0 in
  let continue = ref true in
  while !continue do
    let resident = Bytes.get_uint8 t.tags !slot in
    if resident = 0 then begin
      Bytes.set_uint8 t.tags !slot !tag;
      t.hs.(!slot) <- !h;
      t.w0s.(!slot) <- !w0;
      t.w1s.(!slot) <- !w1;
      t.vals.(!slot) <- Some !v;
      continue := false
    end
    else begin
      let resident_dist = distance t !slot in
      if resident_dist < !dist then begin
        let h' = t.hs.(!slot) and w0' = t.w0s.(!slot)
        and w1' = t.w1s.(!slot) in
        let v' =
          match t.vals.(!slot) with Some v -> v | None -> assert false
        in
        Bytes.set_uint8 t.tags !slot !tag;
        t.hs.(!slot) <- !h;
        t.w0s.(!slot) <- !w0;
        t.w1s.(!slot) <- !w1;
        t.vals.(!slot) <- Some !v;
        tag := tag_of_hash h';
        h := h';
        w0 := w0';
        w1 := w1';
        v := v';
        dist := resident_dist
      end;
      slot := (!slot + 1) land t.mask;
      incr dist
    end
  done;
  t.size <- t.size + 1

let grow t =
  let old_tags = t.tags and old_hs = t.hs and old_w0s = t.w0s
  and old_w1s = t.w1s and old_vals = t.vals in
  let old_cap = t.mask + 1 in
  let cap = old_cap * 2 in
  t.tags <- Bytes.make cap '\000';
  t.hs <- Array.make cap 0;
  t.w0s <- Array.make cap 0;
  t.w1s <- Array.make cap 0;
  t.vals <- Array.make cap None;
  t.mask <- cap - 1;
  t.size <- 0;
  for slot = 0 to old_cap - 1 do
    if Bytes.get_uint8 old_tags slot <> 0 then
      let v = match old_vals.(slot) with Some v -> v | None -> assert false in
      insert_fresh t old_hs.(slot) old_w0s.(slot) old_w1s.(slot) v
  done

let replace t ~w0 ~w1 v =
  let slot = find_slot t w0 w1 in
  if slot >= 0 then t.vals.(slot) <- Some v
  else begin
    if (t.size + 1) * 8 > (t.mask + 1) * 7 then grow t;
    insert_fresh t (t.hash w0 w1) w0 w1 v
  end

(* THE PLANTED BUG: a correct Robin-Hood delete backward-shifts the
   displaced successors of the vacated slot.  This one just clears it,
   leaving an empty hole that terminates later probes early and strands
   any entry that had been pushed past [slot]. *)
let remove t ~w0 ~w1 =
  let slot = find_slot t w0 w1 in
  if slot >= 0 then begin
    Bytes.set_uint8 t.tags slot 0;
    t.vals.(slot) <- None;
    t.size <- t.size - 1
  end

let iter f t =
  for slot = 0 to t.mask do
    if Bytes.get_uint8 t.tags slot <> 0 then
      match t.vals.(slot) with
      | Some v -> f ~w0:t.w0s.(slot) ~w1:t.w1s.(slot) v
      | None -> assert false
  done
