(** A deliberately broken copy of {!Demux.Flat_table}, for proving the
    fuzzer's teeth.

    Identical Robin-Hood layout, hash, tags, displacement insertion and
    growth — except [remove] just empties the victim's slot instead of
    backward-shifting its displaced successors.  The hole it leaves
    terminates later probe sequences early, so entries that were pushed
    past the deleted slot become unreachable: lookups miss residents
    and [iter] still sees them, exactly the membership corruption the
    differential oracle's content audit describes.

    Test-only: nothing outside [test/] should depend on this module.
    Its surface is {!Subject.FLAT}, so [Subject.of_flat] adapts it
    straight into the harness. *)

type 'a t

val create :
  ?hash:(int -> int -> int) -> ?initial_capacity:int ->
  ?resize:Demux.Flat_table.resize -> unit -> 'a t
(** [resize] is accepted for {!Subject.FLAT} compatibility and
    ignored: the buggy copy predates incremental growth and always
    rebuilds by doubling.  The planted bug is in [remove] either
    way. *)

val length : 'a t -> int
val find_opt : 'a t -> w0:int -> w1:int -> 'a option
val mem : 'a t -> w0:int -> w1:int -> bool
val replace : 'a t -> w0:int -> w1:int -> 'a -> unit

val remove : 'a t -> w0:int -> w1:int -> unit
(** The bug: clears the slot without the backward shift. *)

val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit
