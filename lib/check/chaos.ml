(* Post-hoc audit of Fault.Chaos runs: replay the per-worker applied-op
   logs through the reference Oracle and demand the pipeline's end
   state matches exactly.

   Why a replay is exact despite a racy run: the pipeline shards ops
   per flow (RSS), so all ops on a given flow were applied by one
   worker in FIFO order, and flows never share state — replaying each
   worker's log in its recorded order reconstructs the only correct
   end state.  Tier decisions (which ops were shed) are timing-driven
   and differ run to run; the audit does not predict them, it holds
   the run to consistency: every logged outcome must agree with the
   oracle at that point, every dropped op must be accounted
   (offered = applied + dropped + rejected, checked against both the
   producer's and the controller's ledgers), and the final contents
   and stats must equal what the log implies. *)

type scenario_outcome = {
  result : Fault.Chaos.result;
  mismatches : Diff.mismatch list;
}

exception Stop of Diff.mismatch

let flow_str = Packet.Flow.to_string

(* Replay one run's logs into a fresh oracle, checking each event's
   observed outcome as it is applied; returns the oracle and the
   predicted stats ledger.  Raises [Stop] at the first disagreement
   (the reconstruction is suspect from then on, as in Diff). *)
let replay (r : Fault.Chaos.result) oracle exp =
  let name = Fault.Chaos.scenario_name r.Fault.Chaos.scenario in
  let step = ref (-1) in
  let fail what =
    raise (Stop { Diff.subject = name; step = !step; op = None; what })
  in
  Array.iter
    (fun log ->
      Array.iter
        (fun (ev : Fault.Chaos.event) ->
          incr step;
          let flow = ev.Fault.Chaos.op.Fault.Chaos.flow in
          let payload = ev.Fault.Chaos.op.Fault.Chaos.payload in
          match ev.Fault.Chaos.outcome with
          | Fault.Chaos.Inserted ->
            if Oracle.mem oracle flow then
              fail
                (Printf.sprintf "insert of %s admitted while already resident"
                   (flow_str flow))
            else begin
              Oracle.insert oracle flow payload;
              exp.Diff.inserts <- exp.Diff.inserts + 1
            end
          | Fault.Chaos.Duplicate ->
            if not (Oracle.mem oracle flow) then
              fail
                (Printf.sprintf "duplicate reported for absent flow %s"
                   (flow_str flow))
          | Fault.Chaos.Shed ->
            exp.Diff.rejections <- exp.Diff.rejections + 1;
            if Oracle.mem oracle flow then
              fail
                (Printf.sprintf
                   "shed %s as a new flow while it was resident"
                   (flow_str flow))
          | Fault.Chaos.Found got -> (
            exp.Diff.lookups <- exp.Diff.lookups + 1;
            match Oracle.lookup oracle flow with
            | Some v when v = got -> exp.Diff.found <- exp.Diff.found + 1
            | Some v ->
              fail
                (Printf.sprintf
                   "lookup of %s returned stale payload %d, oracle has %d"
                   (flow_str flow) got v)
            | None ->
              fail
                (Printf.sprintf "lookup found %s, which the oracle lost"
                   (flow_str flow)))
          | Fault.Chaos.Missed -> (
            exp.Diff.lookups <- exp.Diff.lookups + 1;
            match Oracle.lookup oracle flow with
            | None -> exp.Diff.not_found <- exp.Diff.not_found + 1
            | Some _ ->
              fail
                (Printf.sprintf "lookup missed resident flow %s"
                   (flow_str flow)))
          | Fault.Chaos.Removed got -> (
            match Oracle.remove oracle flow with
            | Some v when v = got -> exp.Diff.removes <- exp.Diff.removes + 1
            | Some v ->
              fail
                (Printf.sprintf
                   "remove of %s returned stale payload %d, oracle has %d"
                   (flow_str flow) got v)
            | None ->
              fail
                (Printf.sprintf "removed %s, which the oracle never held"
                   (flow_str flow)))
          | Fault.Chaos.Absent ->
            if Oracle.mem oracle flow then
              fail
                (Printf.sprintf "remove missed resident flow %s"
                   (flow_str flow)))
        log)
    r.Fault.Chaos.logs

let audit (r : Fault.Chaos.result) =
  let name = Fault.Chaos.scenario_name r.Fault.Chaos.scenario in
  let quiesce what =
    { Diff.subject = name; step = r.Fault.Chaos.delivered; op = None; what }
  in
  let oracle = Oracle.create () in
  let exp = Diff.counts () in
  try
    replay r oracle exp;
    (* Conservation: nothing offered may vanish unaccounted, and the
       producer's ledger must agree with the controller's. *)
    let applied = r.Fault.Chaos.delivered in
    if
      r.Fault.Chaos.offered
      <> applied + r.Fault.Chaos.dropped_ops + r.Fault.Chaos.rejected_ops
    then
      raise
        (Stop
           (quiesce
              (Printf.sprintf
                 "conservation: offered %d <> applied %d + dropped %d + \
                  rejected %d"
                 r.Fault.Chaos.offered applied r.Fault.Chaos.dropped_ops
                 r.Fault.Chaos.rejected_ops)));
    if r.Fault.Chaos.dropped_ops <> r.Fault.Chaos.pressure_dropped_ops then
      raise
        (Stop
           (quiesce
              (Printf.sprintf
                 "ledgers disagree: producer dropped %d, controller %d"
                 r.Fault.Chaos.dropped_ops
                 r.Fault.Chaos.pressure_dropped_ops)));
    if r.Fault.Chaos.rejected_ops <> r.Fault.Chaos.pressure_rejected_ops then
      raise
        (Stop
           (quiesce
              (Printf.sprintf
                 "ledgers disagree: producer rejected %d, controller %d"
                 r.Fault.Chaos.rejected_ops
                 r.Fault.Chaos.pressure_rejected_ops)));
    if exp.Diff.rejections <> r.Fault.Chaos.shed_flows then
      raise
        (Stop
           (quiesce
              (Printf.sprintf
                 "ledgers disagree: logs show %d sheds, controller %d"
                 exp.Diff.rejections r.Fault.Chaos.shed_flows)));
    (match
       Diff.audit_contents_against ~contents:r.Fault.Chaos.contents
         ~length:r.Fault.Chaos.population oracle
     with
    | Ok () -> ()
    | Error what -> raise (Stop (quiesce what)));
    (match Diff.audit_snapshot r.Fault.Chaos.stats exp with
    | Ok () -> ()
    | Error what -> raise (Stop (quiesce what)));
    []
  with Stop mismatch -> [ mismatch ]

type t = {
  seed : int;
  workers : int;
  ops : int;
  outcomes : scenario_outcome list;
}

let run_scenario ?workers ?ops ~seed scenario =
  let result = Fault.Chaos.run ?workers ?ops ~seed scenario in
  { result; mismatches = audit result }

let run ?(workers = 4) ?(ops = 60_000) ~seed () =
  let outcomes =
    List.mapi
      (fun i scenario ->
        run_scenario ~workers ~ops ~seed:((seed * 31) + i) scenario)
      Fault.Chaos.all
  in
  { seed; workers; ops; outcomes }

let passed t = List.for_all (fun o -> o.mismatches = []) t.outcomes

let mismatches t = List.concat_map (fun o -> o.mismatches) t.outcomes

let pp ppf t =
  List.iter
    (fun o ->
      Format.fprintf ppf "%a@," Fault.Chaos.pp_result o.result;
      let live =
        List.filter (fun (_, n) -> n > 0) o.result.Fault.Chaos.transitions
      in
      if live <> [] then
        Format.fprintf ppf "  tier entries: %s@,"
          (String.concat ", "
             (List.map (fun (name, n) -> Printf.sprintf "%s=%d" name n) live));
      match o.mismatches with
      | [] -> Format.fprintf ppf "  audit: contents + stats + ledgers ok@,"
      | ms ->
        List.iter
          (fun m -> Format.fprintf ppf "  MISMATCH %a@," Diff.pp_mismatch m)
          ms)
    t.outcomes

(* ------------------------------------------------------------------ *)
(* tcpdemux-chaos/1 report                                             *)

let schema = "tcpdemux-chaos/1"

let json_of_outcome o =
  let r = o.result in
  Obs.Json.Obj
    [ ( "name",
        Obs.Json.String (Fault.Chaos.scenario_name r.Fault.Chaos.scenario) );
      ("seed", Obs.Json.Int r.Fault.Chaos.seed);
      ("workers", Obs.Json.Int r.Fault.Chaos.workers);
      ("offered", Obs.Json.Int r.Fault.Chaos.offered);
      ("applied", Obs.Json.Int r.Fault.Chaos.delivered);
      ("dropped", Obs.Json.Int r.Fault.Chaos.dropped_ops);
      ("rejected", Obs.Json.Int r.Fault.Chaos.rejected_ops);
      ("shed_flows", Obs.Json.Int r.Fault.Chaos.shed_flows);
      ("residents", Obs.Json.Int r.Fault.Chaos.population);
      ("max_ring_depth", Obs.Json.Int r.Fault.Chaos.max_ring_depth);
      ( "transitions",
        Obs.Json.Obj
          (List.map
             (fun (name, n) -> (name, Obs.Json.Int n))
             r.Fault.Chaos.transitions) );
      ( "mismatches",
        Obs.Json.List
          (List.map
             (fun (m : Diff.mismatch) ->
               Obs.Json.Obj
                 [ ("subject", Obs.Json.String m.Diff.subject);
                   ("step", Obs.Json.Int m.Diff.step);
                   ("what", Obs.Json.String m.Diff.what) ])
             o.mismatches) ) ]

let to_json t =
  Obs.Json.Obj
    [ ("schema", Obs.Json.String schema);
      ("seed", Obs.Json.Int t.seed);
      ("workers", Obs.Json.Int t.workers);
      ("ops", Obs.Json.Int t.ops);
      ("passed", Obs.Json.Bool (passed t));
      ("scenarios", Obs.Json.List (List.map json_of_outcome t.outcomes)) ]

let write path t = Obs.Json.write_file path (to_json t)

let validate_file path =
  let ( let* ) = Result.bind in
  let* json = Obs.Json.of_file path in
  let* () =
    match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema is %S, want %S" s schema)
    | None -> Error "missing \"schema\" field"
  in
  let* scenarios =
    match
      Option.bind (Obs.Json.member "scenarios" json) Obs.Json.to_list_opt
    with
    | Some [] -> Error "empty \"scenarios\" list"
    | Some l -> Ok l
    | None -> Error "missing \"scenarios\" list"
  in
  let* () =
    let bad =
      List.filter
        (fun s ->
          match
            Option.bind (Obs.Json.member "mismatches" s) Obs.Json.to_list_opt
          with
          | Some [] -> false
          | Some _ | None -> true)
        scenarios
    in
    if bad = [] then Ok ()
    else
      Error
        (Printf.sprintf "%d scenario(s) with recorded mismatches"
           (List.length bad))
  in
  match Obs.Json.member "passed" json with
  | Some (Obs.Json.Bool true) -> Ok ()
  | Some (Obs.Json.Bool false) -> Error "report says \"passed\": false"
  | Some _ | None -> Error "missing boolean \"passed\" field"
