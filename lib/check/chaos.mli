(** Replay audit for {!Fault.Chaos} pipeline runs.

    A chaos run degrades on a timing-driven schedule, so no two runs
    shed the same ops — but the per-worker logs it records are a total
    account of what {e was} applied, and per-flow sharding makes them
    replayable: feeding each worker's log through the reference
    {!Oracle} in order reconstructs the unique correct end state.
    The audit demands, per scenario:

    - every logged outcome agrees with the oracle at that point
      (inserts of residents, phantom duplicates, stale payloads on
      [Found]/[Removed], missed residents — all are mismatches);
    - conservation: [offered = applied + dropped + rejected], with the
      producer's shed ledger equal to the pressure controller's and
      the logged [Shed] events equal to the controller's shed-flow
      count;
    - final contents, population, and {!Demux.Lookup_stats} match the
      replayed oracle exactly ({!Diff.audit_contents_against} /
      {!Diff.audit_snapshot}).

    Graceful degradation may drop work; it may not corrupt state or
    lose accounting. *)

type scenario_outcome = {
  result : Fault.Chaos.result;
  mismatches : Diff.mismatch list;
      (** Empty, or the single first disagreement ([op = None];
          [step] is the global replay index, or [delivered] for a
          quiesce-stage failure). *)
}

val audit : Fault.Chaos.result -> Diff.mismatch list
(** Replay one run's logs and check everything above. *)

type t = {
  seed : int;
  workers : int;
  ops : int;      (** Ops offered per scenario. *)
  outcomes : scenario_outcome list;
}

val run_scenario :
  ?workers:int -> ?ops:int -> seed:int -> Fault.Chaos.scenario ->
  scenario_outcome
(** Run one scenario and audit it. *)

val run : ?workers:int -> ?ops:int -> seed:int -> unit -> t
(** Run and audit every scenario in {!Fault.Chaos.all} (defaults:
    4 workers, 60_000 ops each), deriving a distinct per-scenario
    seed from [seed]. *)

val passed : t -> bool
val mismatches : t -> Diff.mismatch list

val pp : Format.formatter -> t -> unit

(** {1 Report}

    A machine-readable verdict mirroring {!Report}, so CI can archive
    a chaos run and [bench --check] can gate on it. *)

val schema : string
(** ["tcpdemux-chaos/1"]. *)

val to_json : t -> Obs.Json.t
val write : string -> t -> unit

val validate_file : string -> (unit, string) result
(** [Ok ()] iff the file parses, declares {!schema}, has a non-empty
    scenario list with zero recorded mismatches, and says
    [passed: true]. *)
