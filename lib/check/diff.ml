type mismatch = {
  subject : string;
  step : int;
  op : Op.op option;
  what : string;
}

let pp_mismatch ppf m =
  match m.op with
  | Some op ->
    Format.fprintf ppf "%s @@ step %d (%a): %s" m.subject m.step Op.pp_op op
      m.what
  | None -> Format.fprintf ppf "%s @@ quiesce (step %d): %s" m.subject m.step
              m.what

(* The counters the oracle can predict exactly; everything else in a
   snapshot is algorithm-specific and only has to satisfy invariants. *)
type counts = {
  mutable lookups : int;
  mutable found : int;
  mutable not_found : int;
  mutable inserts : int;
  mutable removes : int;
  mutable evictions : int;
  mutable rejections : int;
}

let counts () =
  { lookups = 0; found = 0; not_found = 0; inserts = 0; removes = 0;
    evictions = 0; rejections = 0 }

exception Fail of string
exception Stop of mismatch

let flow_str = Packet.Flow.to_string

let pair_str (flow, v) = Printf.sprintf "%s=%d" (flow_str flow) v

let check_result ~what expected actual =
  match (expected, actual) with
  | None, None -> ()
  | Some _, None ->
    raise (Fail (Printf.sprintf "%s: oracle hit, subject missed" what))
  | None, Some (flow, v) ->
    raise
      (Fail
         (Printf.sprintf "%s: oracle miss, subject returned %s" what
            (pair_str (flow, v))))
  | Some ev, Some (flow, v) ->
    if v <> ev then
      raise
        (Fail
           (Printf.sprintf "%s: stale PCB — oracle payload %d, subject %s"
              what ev
              (pair_str (flow, v))))

let check_pcb_flow ~what queried actual =
  match actual with
  | Some (flow, _) when not (Packet.Flow.equal flow queried) ->
    raise
      (Fail
         (Printf.sprintf "%s: returned PCB for %s, queried %s" what
            (flow_str flow) (flow_str queried)))
  | Some _ | None -> ()

let audit_contents_exn ~contents:got ~length:slen oracle =
  let want = Oracle.contents oracle in
  let rec compare i want got =
    match (want, got) with
    | [], [] -> ()
    | (f, v) :: _, [] ->
      raise
        (Fail
           (Printf.sprintf "contents: missing resident %s" (pair_str (f, v))))
    | [], (f, v) :: _ ->
      raise
        (Fail
           (Printf.sprintf "contents: phantom resident %s" (pair_str (f, v))))
    | (wf, wv) :: wrest, (gf, gv) :: grest ->
      if not (Packet.Flow.equal wf gf) || wv <> gv then
        raise
          (Fail
             (Printf.sprintf "contents: entry %d is %s, oracle has %s" i
                (pair_str (gf, gv))
                (pair_str (wf, wv))))
      else compare (i + 1) wrest grest
  in
  compare 0 want got;
  let olen = Oracle.length oracle in
  if olen <> slen then
    raise
      (Fail (Printf.sprintf "length: subject %d, oracle %d" slen olen))

let audit_contents (subject : Subject.t) oracle =
  audit_contents_exn
    ~contents:(subject.Subject.contents ())
    ~length:(subject.Subject.length ())
    oracle

let audit_snapshot_exn (s : Demux.Lookup_stats.snapshot) exp =
  let exact name got want =
    if got <> want then
      raise
        (Fail (Printf.sprintf "stats.%s: subject %d, oracle %d" name got want))
  in
  exact "lookups" s.Demux.Lookup_stats.lookups exp.lookups;
  exact "found" s.Demux.Lookup_stats.found exp.found;
  exact "not_found" s.Demux.Lookup_stats.not_found exp.not_found;
  exact "inserts" s.Demux.Lookup_stats.inserts exp.inserts;
  exact "removes" s.Demux.Lookup_stats.removes exp.removes;
  exact "evictions" s.Demux.Lookup_stats.evictions exp.evictions;
  exact "rejections" s.Demux.Lookup_stats.rejections exp.rejections;
  let invariant name ok =
    if not ok then raise (Fail (Printf.sprintf "stats invariant: %s" name))
  in
  invariant "cache_hits <= lookups"
    (s.Demux.Lookup_stats.cache_hits <= s.Demux.Lookup_stats.lookups);
  invariant "pcbs_examined >= found (every hit examines >= 1)"
    (s.Demux.Lookup_stats.pcbs_examined >= s.Demux.Lookup_stats.found);
  invariant "max_examined <= pcbs_examined"
    (s.Demux.Lookup_stats.max_examined <= s.Demux.Lookup_stats.pcbs_examined);
  invariant "found > 0 implies max_examined >= 1"
    (s.Demux.Lookup_stats.found = 0 || s.Demux.Lookup_stats.max_examined >= 1)

let audit_stats (subject : Subject.t) exp =
  audit_snapshot_exn (subject.Subject.stats ()) exp

(* Result-typed wrappers over the audit cores, for checkers (the chaos
   auditor) that compare raw pipeline output rather than a live
   Subject.t. *)
let audit_contents_against ~contents ~length oracle =
  match audit_contents_exn ~contents ~length oracle with
  | () -> Ok ()
  | exception Fail what -> Error what

let audit_snapshot snapshot exp =
  match audit_snapshot_exn snapshot exp with
  | () -> Ok ()
  | exception Fail what -> Error what

let run_subject ?(checkpoint_every = 512) (subject : Subject.t) program =
  if checkpoint_every <= 0 then
    invalid_arg "Diff.run_subject: checkpoint_every <= 0";
  let oracle = Oracle.create () in
  let shadow = Option.map Demux.Guarded.create subject.Subject.guard in
  let exp = counts () in
  let apply step (op : Op.op) =
    let flow = op.Op.flow in
    match op.Op.kind with
    | Op.Insert ->
      if not (Oracle.mem oracle flow) then (
        match shadow with
        | None ->
          subject.Subject.insert flow step;
          Oracle.insert oracle flow step;
          exp.inserts <- exp.inserts + 1
        | Some guard -> (
          match Demux.Guarded.admit guard flow with
          | `Reject ->
            (* The subject's own guard must reject too; if it admits,
               the content audit will find the phantom resident. *)
            subject.Subject.insert flow step;
            exp.rejections <- exp.rejections + 1
          | `Admit victims ->
            List.iter
              (fun victim ->
                match Oracle.remove oracle victim with
                | Some _ ->
                  exp.removes <- exp.removes + 1;
                  exp.evictions <- exp.evictions + 1
                | None ->
                  raise
                    (Fail
                       (Printf.sprintf
                          "shadow guard evicted %s, which the oracle never \
                           held"
                          (flow_str victim))))
              victims;
            subject.Subject.insert flow step;
            Oracle.insert oracle flow step;
            Demux.Guarded.note_inserted guard flow;
            exp.inserts <- exp.inserts + 1))
    | Op.Lookup | Op.Ack_lookup ->
      let kind =
        match op.Op.kind with
        | Op.Ack_lookup -> Demux.Types.Pure_ack
        | _ -> Demux.Types.Data
      in
      let want = Oracle.lookup oracle flow in
      let got = subject.Subject.lookup ~kind flow in
      exp.lookups <- exp.lookups + 1;
      if want = None then exp.not_found <- exp.not_found + 1
      else begin
        exp.found <- exp.found + 1;
        Option.iter
          (fun guard -> Demux.Guarded.note_touched guard flow)
          shadow
      end;
      check_pcb_flow ~what:"lookup" flow got;
      check_result ~what:"lookup" want got
    | Op.Remove ->
      let want = Oracle.remove oracle flow in
      let got = subject.Subject.remove flow in
      if want <> None then begin
        exp.removes <- exp.removes + 1;
        Option.iter
          (fun guard -> Demux.Guarded.note_removed guard flow)
          shadow
      end;
      check_pcb_flow ~what:"remove" flow got;
      check_result ~what:"remove" want got
    | Op.Send -> subject.Subject.note_send flow
  in
  let total = Array.length program.Op.ops in
  let name = subject.Subject.name in
  let fail_of ~step ~op what = { subject = name; step; op; what } in
  try
    for step = 0 to total - 1 do
      let op = program.Op.ops.(step) in
      (try apply step op with
      | Fail what -> raise (Stop (fail_of ~step ~op:(Some op) what))
      | Stop _ as stop -> raise stop
      | exn ->
        raise
          (Stop
             (fail_of ~step ~op:(Some op)
                (Printf.sprintf "raised %s" (Printexc.to_string exn)))));
      if (step + 1) mod checkpoint_every = 0 then
        try
          audit_contents subject oracle;
          audit_stats subject exp
        with Fail what -> raise (Stop (fail_of ~step ~op:(Some op) what))
    done;
    (try
       audit_contents subject oracle;
       audit_stats subject exp
     with Fail what -> raise (Stop (fail_of ~step:total ~op:None what)));
    []
  with Stop mismatch -> [ mismatch ]

type summary = {
  subjects : string list;
  programs : int;
  ops : int;
  mismatches : mismatch list;
}

let run ?obs ?checkpoint_every factories programs =
  let programs_counter, ops_counter, mismatch_counter =
    match obs with
    | None -> (ref 0, ref 0, ref 0)
    | Some obs ->
      ( Obs.Registry.counter obs ~help:"programs run by the differential oracle"
          "check.programs",
        Obs.Registry.counter obs
          ~help:"operation applications (op x subject) executed" "check.ops",
        Obs.Registry.counter obs
          ~help:"differential-oracle disagreements found" "check.mismatches" )
  in
  let subjects = ref [] in
  let mismatches = ref [] in
  let ops = ref 0 in
  List.iter
    (fun program ->
      incr programs_counter;
      List.iter
        (fun factory ->
          let subject = factory () in
          if not (List.mem subject.Subject.name !subjects) then
            subjects := subject.Subject.name :: !subjects;
          let found = run_subject ?checkpoint_every subject program in
          ops := !ops + Op.length program;
          ops_counter := !ops_counter + Op.length program;
          mismatch_counter := !mismatch_counter + List.length found;
          mismatches := List.rev_append found !mismatches)
        factories)
    programs;
  { subjects = List.rev !subjects;
    programs = List.length programs;
    ops = !ops;
    mismatches = List.rev !mismatches }
