(** The differential oracle: drive a subject and the reference model
    through the same program and demand they never disagree.

    Checked at every step:
    - lookup hit/miss parity with {!Oracle}, plus flow and payload of
      the returned PCB (payload is the inserting step's index, so a
      stale PCB surviving a remove/re-insert cycle is caught);
    - remove-result parity (including removes of absent flows);
    - population equality.

    Checked at every [checkpoint_every] steps and at quiesce:
    - full table contents against the oracle, both sides reduced to
      {!Packet.Flow.compare} order — independent of the subject's
      iteration order, which is what catches membership corruption
      such as a Robin-Hood delete that skips the backward shift;
    - {!Demux.Lookup_stats} accounting against the counts the oracle
      can predict exactly (lookups, found, not_found, inserts,
      removes, evictions, rejections) and the invariants it cannot
      (examined ≥ found, cache_hits ≤ lookups, max ≤ total).

    Guarded subjects ({!Subject.t.guard}) get a {e shadow guard}: a
    second {!Demux.Guarded.t} with the same configuration runs over
    the oracle, so the oracle predicts exactly which flows an
    overloaded table sheds — the content comparison then verifies the
    eviction {e set}, not just the eviction count. *)

type mismatch = {
  subject : string;
  step : int;            (** Op index, or [length ops] for quiesce. *)
  op : Op.op option;     (** The op at [step]; [None] at quiesce. *)
  what : string;         (** Human-readable disagreement. *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit

(** {1 Audit primitives}

    The content/stats audits [run_subject] applies at checkpoints,
    exposed over raw data so checkers that do not drive a live
    {!Subject.t} — the chaos auditor replays per-worker pipeline logs
    after the fact — can demand the same exact match. *)

type counts = {
  mutable lookups : int;
  mutable found : int;
  mutable not_found : int;
  mutable inserts : int;
  mutable removes : int;
  mutable evictions : int;
  mutable rejections : int;
}
(** The {!Demux.Lookup_stats} counters an oracle can predict exactly;
    the rest of a snapshot is algorithm-specific and is only held to
    invariants. *)

val counts : unit -> counts
(** A fresh all-zero ledger. *)

val audit_contents_against :
  contents:(Packet.Flow.t * int) list -> length:int -> Oracle.t ->
  (unit, string) result
(** Compare a table's residents ([contents] must be sorted by
    {!Packet.Flow.compare}, as {!Subject.t.contents} and
    [Fault.Chaos.result.contents] both are) and its reported [length]
    against the oracle.  [Error what] names the first disagreement. *)

val audit_snapshot :
  Demux.Lookup_stats.snapshot -> counts -> (unit, string) result
(** Check a stats snapshot against a predicted ledger: the seven
    predictable counters exactly, plus the invariants
    ([cache_hits <= lookups], [pcbs_examined >= found],
    [max_examined <= pcbs_examined], ...). *)

val run_subject :
  ?checkpoint_every:int -> Subject.t -> Op.t -> mismatch list
(** Run one freshly created subject through a program.  Stops at the
    first mismatch (the subject's state is suspect from then on).
    [checkpoint_every] (default 512) is the content/stats audit
    period; every program also gets the audit at quiesce.

    Programs are made total: an [Insert] of a flow the oracle already
    holds is skipped on both sides (shrinking can splice out the
    remove that made an insert fresh), and a [Remove] of an absent
    flow checks that the subject also misses. *)

type summary = {
  subjects : string list;
  programs : int;
  ops : int;              (** Total operations executed. *)
  mismatches : mismatch list;
}

val run :
  ?obs:Obs.Registry.t -> ?checkpoint_every:int ->
  (unit -> Subject.t) list -> Op.t list -> summary
(** Every program against a fresh instance of every subject.  [?obs]
    registers the [check.programs] / [check.ops] / [check.mismatches]
    counters. *)
