module type TABLE = sig
  type 'a t
  type 'a view

  val create : unit -> 'a t
  val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
  val pin : 'a t -> 'a view
  val view_find : 'a view -> w0:int -> w1:int -> 'a option
  val unpin : 'a t -> unit
  val pending : 'a t -> int
  val quiesce : 'a t -> unit
end

type result = {
  probed : int;
  wrong : int;
  pending_while_pinned : int;
  pending_after_quiesce : int;
  publishes_while_pinned : int;
}

let passed r =
  r.wrong = 0 && r.pending_while_pinned > 0 && r.pending_after_quiesce = 0

(* Synthetic two-word keys: distinct for distinct [i], with enough
   high-bit spread that tags and home slots vary. *)
let w0_of i = (i * 0x9E3779B9) land max_int
let w1_of i = (i * 0x85EBCA6B) lxor 0x5bd1e995

let run ?(resident = 12) ?(churn = 64) (module T : TABLE) =
  let t = T.create () in
  for i = 0 to resident - 1 do
    T.replace t ~w0:(w0_of i) ~w1:(w1_of i) i
  done;
  let view = T.pin t in
  (* Writer churn across the pin: growth from the 8-slot minimum fires
     at populations 8, 15, 29, 57, ... so [resident + churn] inserts
     cross at least two boundaries, each a full-region publish. *)
  for i = resident to resident + churn - 1 do
    T.replace t ~w0:(w0_of i) ~w1:(w1_of i) i
  done;
  let pending_while_pinned = T.pending t in
  let wrong = ref 0 in
  for i = 0 to resident - 1 do
    match T.view_find view ~w0:(w0_of i) ~w1:(w1_of i) with
    | Some v when v = i -> ()
    | _ -> incr wrong
  done;
  T.unpin t;
  T.quiesce t;
  { probed = resident;
    wrong = !wrong;
    pending_while_pinned;
    pending_after_quiesce = T.pending t;
    publishes_while_pinned = churn }

let pp_result ppf r =
  Format.fprintf ppf
    "probed %d wrong %d pending(pinned) %d pending(quiesced) %d publishes %d \
     => %s"
    r.probed r.wrong r.pending_while_pinned r.pending_after_quiesce
    r.publishes_while_pinned
    (if passed r then "ok" else "FAIL")
