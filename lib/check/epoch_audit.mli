(** The grace-period audit: a reader pinned across a writer's resize.

    This is the scenario epoch-based reclamation exists for, run as a
    deterministic single-domain check: pin a view, let the writer
    churn the table through several copy-publish-retire cycles
    (including growth), and then probe the {e pinned} view for every
    flow that was resident when it was pinned.  A correct
    implementation answers every probe from the retained region —
    and, because the reader is pinned, its retire backlog is visibly
    non-empty until the pin is dropped, after which {!TABLE.quiesce}
    drains it to zero.  An implementation that reclaims without
    honouring pins ({!Buggy_epoch}) scrubs the pinned region and
    misses every probe.

    [test/corpus/epoch_reclaim.prog] pins the same churn shape as a
    replayable oracle program (resize boundaries crossed with removes
    and re-inserts in flight), so the single-threaded half of the
    regression survives generator drift; this audit covers the half a
    replay cannot: the reader that outlives the region it reads. *)

(** The surface the audit drives.  {!Epoch.Table} satisfies it (via a
    trivial adapter fixing [create]'s optional arguments);
    {!Buggy_epoch} satisfies it with the planted bug. *)
module type TABLE = sig
  type 'a t
  type 'a view

  val create : unit -> 'a t
  val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
  val pin : 'a t -> 'a view
  val view_find : 'a view -> w0:int -> w1:int -> 'a option
  val unpin : 'a t -> unit
  val pending : 'a t -> int
  val quiesce : 'a t -> unit
end

type result = {
  probed : int;      (** Flows resident at pin time, all probed. *)
  wrong : int;       (** Probes the pinned view answered wrongly. *)
  pending_while_pinned : int;
      (** Retired regions backlogged while the reader was pinned — a
          correct table holds at least one (the pinned region). *)
  pending_after_quiesce : int;  (** Must drain to [0]. *)
  publishes_while_pinned : int;
      (** Writer publishes that happened across the pin — the audit
          forces enough churn for at least two growth publishes. *)
}

val passed : result -> bool
(** [wrong = 0 && pending_while_pinned > 0 && pending_after_quiesce = 0]. *)

val run : ?resident:int -> ?churn:int -> (module TABLE) -> result
(** Defaults: 12 resident flows probed, 64 churn inserts while pinned
    (enough to cross at least two growth boundaries from the 8-slot
    minimum).  Keys are synthetic two-word pairs; payloads encode the
    key so a stale or torn answer is detectable, not just a miss. *)

val pp_result : Format.formatter -> result -> unit
