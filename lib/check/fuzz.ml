type profile =
  | Uniform
  | Zipf of float
  | Colliding
  | Boundary
  | Adversarial

let profile_name = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf-%g" theta
  | Colliding -> "colliding"
  | Boundary -> "boundary"
  | Adversarial -> "adversarial"

let default_profiles = [ Uniform; Zipf 1.0; Colliding; Boundary; Adversarial ]

module Flow_set = Set.Make (struct
  type t = Packet.Flow.t

  let compare = Packet.Flow.compare
end)

(* Distinct-prefix filter preserving first-occurrence order, so pools
   stay deterministic regardless of how candidates were produced. *)
let take_distinct size candidates =
  let rec go seen acc n = function
    | _ when n = size -> List.rev acc
    | [] -> List.rev acc
    | flow :: rest ->
      if Flow_set.mem flow seen then go seen acc n rest
      else go (Flow_set.add flow seen) (flow :: acc) (n + 1) rest
  in
  go Flow_set.empty [] 0 candidates

(* Colliding pools target the default Sequent geometry — the same
   (chains, hasher) pair Registry.chain_geometry reports for the table
   under test — so every flow reduces to chain 0. *)
let colliding_candidates size =
  let chains, hasher =
    Demux.Registry.chain_geometry
      (Demux.Registry.Sequent
         { chains = Demux.Sequent.default_chains;
           hasher = Hashing.Hashers.multiplicative })
  in
  let rec go acc n i =
    if n = size then List.rev acc
    else
      let flow = Sim.Topology.flow_of_client i in
      if Hashing.Hashers.bucket_flow hasher ~buckets:chains flow = 0 then
        go (flow :: acc) (n + 1) (i + 1)
      else go acc n (i + 1)
  in
  go [] 0 0

let boundary_candidates () =
  let addr octets =
    let a, b, c, d = octets in
    Packet.Ipv4.addr_of_octets a b c d
  in
  let addrs = [ addr (0, 0, 0, 0); addr (255, 255, 255, 255); addr (192, 0, 2, 1) ]
  and ports = [ 0; 1; 65535 ] in
  let endpoints =
    List.concat_map
      (fun a -> List.map (fun p -> Packet.Flow.endpoint a p) ports)
      addrs
  in
  List.concat_map
    (fun local ->
      List.map
        (fun remote -> Packet.Flow.v ~local ~remote)
        endpoints)
    endpoints

(* Near-miss tuples: serialize a segment for each base flow, let the
   fault injector flip one tuple bit (checksums re-fixed), and parse
   the flow back out — a well-formed key one bit away from a real one. *)
let adversarial_candidates ~seed size =
  let base = Array.to_list (Sim.Topology.flows (max 1 (size / 2))) in
  let injector =
    Fault.Injector.create ~seed (Fault.Plan.v ~tuple_flip:1.0 ())
  in
  let flipped =
    List.concat_map
      (fun (flow : Packet.Flow.t) ->
        let segment =
          Packet.Segment.make ~src:flow.Packet.Flow.remote
            ~dst:flow.Packet.Flow.local ()
        in
        List.filter_map
          (fun bytes ->
            match Packet.Segment.parse bytes ~off:0 with
            | Ok segment -> Some (Packet.Segment.flow segment)
            | Error _ -> None)
          (Fault.Injector.feed injector (Packet.Segment.to_bytes segment)))
      base
  in
  (* Interleave base and flipped so truncation keeps pairs together —
     a near-miss is only adversarial next to its original. *)
  let rec interleave = function
    | [], rest | rest, [] -> rest
    | a :: arest, b :: brest -> a :: b :: interleave (arest, brest)
  in
  interleave (base, flipped)

let flow_pool profile ~seed ~size =
  if size <= 0 then invalid_arg "Fuzz.flow_pool: size <= 0";
  let candidates =
    match profile with
    | Uniform | Zipf _ -> Array.to_list (Sim.Topology.flows size)
    | Colliding -> colliding_candidates size
    | Boundary -> boundary_candidates ()
    | Adversarial -> adversarial_candidates ~seed size
  in
  (* Top up from the plain topology universe if a shaped pool came up
     short (e.g. only 81 boundary tuples exist). *)
  let filler = Array.to_list (Sim.Topology.flows size) in
  Array.of_list (take_distinct size (candidates @ filler))

(* Zipf sampling via the precomputed-CDF + binary-search pattern of
   Sim.Locality_workload. *)
let zipf_cdf ~theta n =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  cdf

let sample_cdf rng cdf =
  let u = Numerics.Rng.float rng in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let generate ?label profile ~seed ~pool ~ops =
  if ops < 0 then invalid_arg "Fuzz.generate: ops < 0";
  let flows = flow_pool profile ~seed ~size:pool in
  let rng = Numerics.Rng.create ~seed in
  let pick =
    match profile with
    | Zipf theta ->
      let cdf = zipf_cdf ~theta (Array.length flows) in
      (* Visit order is identity order; shuffling the pool would hide
         which ranks are hot, and determinism doesn't need it. *)
      fun () -> flows.(sample_cdf rng cdf)
    | Uniform | Colliding | Boundary | Adversarial ->
      fun () -> flows.(Numerics.Rng.int rng ~bound:(Array.length flows))
  in
  let kind_of_roll roll =
    if roll < 25 then Op.Insert
    else if roll < 65 then Op.Lookup
    else if roll < 75 then Op.Ack_lookup
    else if roll < 90 then Op.Remove
    else Op.Send
  in
  let ops =
    Array.init ops (fun _ ->
        { Op.kind = kind_of_roll (Numerics.Rng.int rng ~bound:100);
          flow = pick () })
  in
  let label = Option.value label ~default:(profile_name profile) in
  Op.v ~label ~seed ops

let shrink fails program =
  if not (fails program) then
    invalid_arg "Fuzz.shrink: the input program does not fail";
  let remake ops = Op.v ~label:"shrunk" ~seed:program.Op.seed ops in
  let current = ref program.Op.ops in
  let try_without lo len =
    let n = Array.length !current in
    let candidate =
      Array.append (Array.sub !current 0 lo)
        (Array.sub !current (lo + len) (n - lo - len))
    in
    if fails (remake candidate) then begin
      current := candidate;
      true
    end
    else false
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let size = ref (max 1 (Array.length !current / 2)) in
    while !size >= 1 do
      let i = ref 0 in
      while !i + !size <= Array.length !current do
        if try_without !i !size then progress := true else i := !i + !size
      done;
      size := if !size = 1 then 0 else !size / 2
    done
  done;
  remake !current

type failure = {
  original : Op.t;
  shrunk : Op.t;
  mismatch : Diff.mismatch;
}

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>mismatch: %a@,source: %s (seed %d, %d ops; shrunk to %d)@,%a@]"
    Diff.pp_mismatch f.mismatch f.original.Op.label f.original.Op.seed
    (Op.length f.original) (Op.length f.shrunk) Op.pp f.shrunk

let campaign ?obs ?(profiles = default_profiles) ?(programs_per_profile = 2)
    ?(ops = 1024) ?(pool = 64) ~subjects ~seed () =
  let programs_counter, ops_counter, mismatch_counter =
    match obs with
    | None -> (ref 0, ref 0, ref 0)
    | Some obs ->
      ( Obs.Registry.counter obs ~help:"programs run by the differential oracle"
          "check.programs",
        Obs.Registry.counter obs
          ~help:"operation applications (op x subject) executed" "check.ops",
        Obs.Registry.counter obs
          ~help:"differential-oracle disagreements found" "check.mismatches" )
  in
  let programs =
    List.concat
      (List.mapi
         (fun pi profile ->
           List.init programs_per_profile (fun i ->
               let pseed = (((seed * 31) + pi) * 31) + i in
               generate profile ~seed:pseed ~pool ~ops))
         profiles)
  in
  let subject_names = ref [] in
  let mismatches = ref [] in
  let failures = ref [] in
  let total_ops = ref 0 in
  List.iter
    (fun program ->
      incr programs_counter;
      List.iter
        (fun factory ->
          let subject = factory () in
          if not (List.mem subject.Subject.name !subject_names) then
            subject_names := subject.Subject.name :: !subject_names;
          total_ops := !total_ops + Op.length program;
          ops_counter := !ops_counter + Op.length program;
          match Diff.run_subject subject program with
          | [] -> ()
          | found ->
            incr mismatch_counter;
            mismatches := List.rev_append found !mismatches;
            let fails p = Diff.run_subject (factory ()) p <> [] in
            let shrunk = shrink fails program in
            let mismatch =
              match Diff.run_subject (factory ()) shrunk with
              | m :: _ -> m
              | [] -> List.hd found (* unreachable: shrunk fails *)
            in
            failures := { original = program; shrunk; mismatch } :: !failures)
        subjects)
    programs;
  ( { Diff.subjects = List.rev !subject_names;
      programs = List.length programs;
      ops = !total_ops;
      mismatches = List.rev !mismatches },
    List.rev !failures )
