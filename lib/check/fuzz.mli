(** Deterministic program generation and shrinking.

    Everything here is a pure function of its seed: the same
    [(profile, seed, pool, ops)] always yields the same {!Op.t}, so a
    failure report's header is enough to regenerate the exact program
    — and the printed program itself replays without the generator at
    all (see {!Op.parse}).

    Profiles are the traffic shapes that historically break
    demultiplexers in different ways: uniform churn, Zipf skew (cache
    and move-to-front pathologies), collision floods (every flow on
    one hash chain, from the same {!Demux.Registry.chain_geometry} the
    table under test uses), protocol boundary values (address
    [0.0.0.0] / [255.255.255.255], port [0] / [65535]), and
    adversarial near-miss tuples produced by {!Fault.Injector}
    [tuple_flip] — well-formed flows one bit away from real ones. *)

type profile =
  | Uniform
  | Zipf of float        (** Skew exponent; [Zipf 1.0] ≈ web traffic. *)
  | Colliding            (** All flows land on one Sequent chain. *)
  | Boundary
  | Adversarial

val profile_name : profile -> string

val default_profiles : profile list
(** [Uniform; Zipf 1.0; Colliding; Boundary; Adversarial]. *)

val flow_pool : profile -> seed:int -> size:int -> Packet.Flow.t array
(** The closed flow universe a generated program draws from.
    Deterministic in [seed]; all flows distinct.
    @raise Invalid_argument if [size <= 0]. *)

val generate :
  ?label:string -> profile -> seed:int -> pool:int -> ops:int -> Op.t
(** A program of [ops] operations over a [pool]-flow universe.  The
    op mix is roughly 25% insert, 40% data lookup, 10% pure-ACK
    lookup, 15% remove, 10% send — enough churn that tables grow,
    shrink, and collide.  @raise Invalid_argument if [ops < 0] or
    [pool <= 0]. *)

val shrink : (Op.t -> bool) -> Op.t -> Op.t
(** [shrink fails program] greedily deletes chunks of decreasing size
    (ddmin-style) while [fails] stays true, until no single op can be
    removed.  The result fails, is no longer than the input, and
    carries the input's seed with label ["shrunk"].
    @raise Invalid_argument if [fails program] is false. *)

type failure = {
  original : Op.t;
  shrunk : Op.t;
  mismatch : Diff.mismatch;     (** From replaying [shrunk]. *)
}

val pp_failure : Format.formatter -> failure -> unit
(** The replayable dump: the mismatch, then the shrunk program in
    {!Op.print} form. *)

val campaign :
  ?obs:Obs.Registry.t ->
  ?profiles:profile list ->
  ?programs_per_profile:int ->
  ?ops:int ->
  ?pool:int ->
  subjects:(unit -> Subject.t) list ->
  seed:int ->
  unit ->
  Diff.summary * failure list
(** Generate [programs_per_profile] (default 2) programs of [ops]
    (default 1024) operations per profile (default
    {!default_profiles}), run every subject through every program
    under {!Diff.run}, and shrink each failing (subject, program)
    pair to a minimal counterexample.  Program seeds are derived
    deterministically from [seed]. *)
