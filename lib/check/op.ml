type kind = Insert | Lookup | Ack_lookup | Remove | Send

type op = { kind : kind; flow : Packet.Flow.t }

type t = { label : string; seed : int; ops : op array }

let v ?(label = "adhoc") ?(seed = 0) ops = { label; seed; ops }

let length t = Array.length t.ops

let letter = function
  | Insert -> 'I'
  | Lookup -> 'L'
  | Ack_lookup -> 'A'
  | Remove -> 'R'
  | Send -> 'S'

let kind_of_letter = function
  | 'I' -> Some Insert
  | 'L' -> Some Lookup
  | 'A' -> Some Ack_lookup
  | 'R' -> Some Remove
  | 'S' -> Some Send
  | _ -> None

let endpoint_to_string (e : Packet.Flow.endpoint) =
  Printf.sprintf "%s:%d" (Packet.Ipv4.addr_to_string e.Packet.Flow.addr)
    e.Packet.Flow.port

let pp_op ppf op =
  Format.fprintf ppf "%c %s %s" (letter op.kind)
    (endpoint_to_string op.flow.Packet.Flow.local)
    (endpoint_to_string op.flow.Packet.Flow.remote)

let print t =
  let b = Buffer.create (64 + (Array.length t.ops * 40)) in
  Buffer.add_string b "# tcpdemux-check program v1\n";
  Buffer.add_string b (Printf.sprintf "# label: %s\n" t.label);
  Buffer.add_string b (Printf.sprintf "# seed: %d\n" t.seed);
  Array.iter
    (fun op ->
      Buffer.add_string b (Format.asprintf "%a" pp_op op);
      Buffer.add_char b '\n')
    t.ops;
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "program %s (seed %d, %d ops):@." t.label t.seed
    (Array.length t.ops);
  Array.iter (fun op -> Format.fprintf ppf "  %a@." pp_op op) t.ops

(* "addr:port" -> endpoint.  Split on the last ':' (addresses here are
   dotted quads, which contain no colon, but be explicit anyway). *)
let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "endpoint %S: missing ':'" s)
  | Some i -> (
    let addr = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    match Packet.Ipv4.addr_of_string addr with
    | Error e -> Error (Printf.sprintf "endpoint %S: %s" s e)
    | Ok addr -> (
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> Ok (Packet.Flow.endpoint addr p)
      | Some _ | None ->
        Error (Printf.sprintf "endpoint %S: bad port %S" s port)))

(* Header comments are advisory except label/seed, which we recover so
   a reprinted program keeps its provenance. *)
let header_field ~prefix line =
  let plen = String.length prefix in
  if String.length line > plen && String.sub line 0 plen = prefix then
    Some (String.trim (String.sub line plen (String.length line - plen)))
  else None

let parse text =
  let label = ref "parsed" and seed = ref 0 in
  let ops = ref [] in
  let error = ref None in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      if !error = None then
        let line = String.trim line in
        if line = "" then ()
        else if line.[0] = '#' then begin
          (match header_field ~prefix:"# label:" line with
          | Some l -> label := l
          | None -> ());
          match header_field ~prefix:"# seed:" line with
          | Some s -> (
            match int_of_string_opt s with Some n -> seed := n | None -> ())
          | None -> ()
        end
        else
          match String.split_on_char ' ' line with
          | [ opcode; local; remote ] when String.length opcode = 1 -> (
            match kind_of_letter opcode.[0] with
            | None ->
              error :=
                Some (Printf.sprintf "line %d: unknown opcode %S" (lineno + 1)
                        opcode)
            | Some kind -> (
              match (endpoint_of_string local, endpoint_of_string remote) with
              | Ok local, Ok remote ->
                ops :=
                  { kind; flow = Packet.Flow.v ~local ~remote } :: !ops
              | Error e, _ | _, Error e ->
                error := Some (Printf.sprintf "line %d: %s" (lineno + 1) e)))
          | _ ->
            error :=
              Some
                (Printf.sprintf "line %d: expected 'OP local remote', got %S"
                   (lineno + 1) line))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    Ok { label = !label; seed = !seed; ops = Array.of_list (List.rev !ops) }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
    match parse text with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let save path t = Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (print t))
