(** Operation programs: the common input language of the differential
    oracle and the fuzzer.

    A program is a finite sequence of demultiplexer operations over
    {e explicit} flows (full 4-tuples, not indices into some implied
    universe), so a program file is self-contained: it parses back to
    exactly the operations it printed, and a corpus entry pinned today
    replays byte-identically forever.  The five operations are the
    whole mutation/observation surface every algorithm in
    {!Demux.Registry} shares. *)

type kind =
  | Insert          (** Admit the flow (payload = step index). *)
  | Lookup          (** Receive-path lookup, [Demux.Types.Data]. *)
  | Ack_lookup      (** Receive-path lookup, [Demux.Types.Pure_ack]. *)
  | Remove          (** Protocol removal (absent flows allowed). *)
  | Send            (** Transmit-side [note_send] (send/receive cache). *)

type op = { kind : kind; flow : Packet.Flow.t }

type t = {
  label : string;     (** Where the program came from (profile name,
                          corpus file, "shrunk", ...). *)
  seed : int;         (** Generation seed, for provenance; replay does
                          not consult it — the ops are explicit. *)
  ops : op array;
}

val v : ?label:string -> ?seed:int -> op array -> t

val length : t -> int

(** {1 Text form}

    One operation per line: an opcode letter ([I]/[L]/[A]/[R]/[S]),
    the local endpoint, the remote endpoint, both as [addr:port].
    Comment lines start with [#]; the header carries the label and
    seed.  {!parse} is the exact inverse of {!print} (asserted by a
    qcheck round-trip in the test suite). *)

val print : t -> string

val parse : string -> (t, string) result
(** Errors name the offending line. *)

val load : string -> (t, string) result
(** [parse] the contents of a file (e.g. a [test/corpus] entry). *)

val save : string -> t -> unit

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
(** Program header plus every op — the replayable counterexample dump
    the fuzzer prints on failure. *)
