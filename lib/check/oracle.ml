(* Sorted assoc list, strictly increasing in Flow.compare.  O(N) per
   operation — the oracle optimises for obviousness, not speed. *)

type t = { mutable entries : (Packet.Flow.t * int) list }

let create () = { entries = [] }

let length t = List.length t.entries

let rec find_assoc flow = function
  | [] -> None
  | (f, v) :: rest ->
    let c = Packet.Flow.compare f flow in
    if c = 0 then Some v else if c > 0 then None else find_assoc flow rest

let lookup t flow = find_assoc flow t.entries

let mem t flow = lookup t flow <> None

let insert t flow v =
  let rec go = function
    | [] -> [ (flow, v) ]
    | ((f, _) as entry) :: rest ->
      let c = Packet.Flow.compare f flow in
      if c = 0 then invalid_arg "Oracle.insert: duplicate flow"
      else if c > 0 then (flow, v) :: entry :: rest
      else entry :: go rest
  in
  t.entries <- go t.entries

let remove t flow =
  let removed = ref None in
  let rec go = function
    | [] -> []
    | ((f, v) as entry) :: rest ->
      let c = Packet.Flow.compare f flow in
      if c = 0 then begin
        removed := Some v;
        rest
      end
      else if c > 0 then entry :: rest
      else entry :: go rest
  in
  t.entries <- go t.entries;
  !removed

let contents t = t.entries
