(** The pure reference demultiplexer.

    A sorted association list over canonical {!Packet.Flow.t} — the
    simplest structure that can possibly be right.  Every algorithm in
    the library, whatever its caches, chains, splays or Robin-Hood
    displacement do, must be observationally equal to this model:
    same hit/miss on every lookup, same binding, same residents at
    quiesce.  {!Diff} holds one oracle per subject and checks exactly
    that.

    Payloads are [int]s — {!Diff} stores the inserting step's index,
    so a stale entry surviving a remove/re-insert cycle is caught by
    payload comparison even though the flow matches. *)

type t

val create : unit -> t

val length : t -> int

val mem : t -> Packet.Flow.t -> bool

val lookup : t -> Packet.Flow.t -> int option

val insert : t -> Packet.Flow.t -> int -> unit
(** @raise Invalid_argument if the flow is already present (callers
    check {!mem} first, mirroring the algorithms' duplicate-insert
    discipline). *)

val remove : t -> Packet.Flow.t -> int option
(** Remove and return the binding; [None] if absent. *)

val contents : t -> (Packet.Flow.t * int) list
(** All residents in {!Packet.Flow.compare} order — the canonical
    form both sides of a content comparison are reduced to, so the
    check is independent of any algorithm's iteration order
    (Robin-Hood backward-shift bugs change {e membership}, and that is
    what this exposes). *)
