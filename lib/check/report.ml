type t = {
  seed : int;
  summary : Diff.summary;
  failures : Fuzz.failure list;
  xval : Xval.outcome option;
}

let v ?xval ~seed summary failures = { seed; summary; failures; xval }

let passed t =
  t.summary.Diff.mismatches = []
  && t.failures = []
  && match t.xval with None -> true | Some o -> o.Xval.passed

let schema = "tcpdemux-check/1"

let json_of_mismatch (m : Diff.mismatch) program =
  Obs.Json.Obj
    ([ ("subject", Obs.Json.String m.Diff.subject);
       ("step", Obs.Json.Int m.Diff.step);
       ("what", Obs.Json.String m.Diff.what) ]
    @
    match program with
    | None -> []
    | Some p -> [ ("program", Obs.Json.String (Op.print p)) ])

let json_of_cell (c : Xval.cell) =
  Obs.Json.Obj
    [ ("users", Obs.Json.Int c.Xval.users);
      ( "chains",
        match c.Xval.chains with
        | Some h -> Obs.Json.Int h
        | None -> Obs.Json.Null );
      ("algorithm", Obs.Json.String c.Xval.algorithm);
      ("predicted", Obs.Json.Float c.Xval.predicted);
      ("simulated", Obs.Json.Float c.Xval.simulated);
      ("ci95", Obs.Json.Float c.Xval.ci95);
      ("ratio", Obs.Json.Float c.Xval.ratio);
      ("tolerance", Obs.Json.Float c.Xval.tolerance);
      ("slack", Obs.Json.Float c.Xval.slack);
      ("pass", Obs.Json.Bool c.Xval.pass) ]

let to_json t =
  let failures =
    List.map
      (fun (f : Fuzz.failure) ->
        json_of_mismatch f.Fuzz.mismatch (Some f.Fuzz.shrunk))
      t.failures
  in
  (* Mismatches that were not shrunk (e.g. found by Diff.run outside a
     fuzz campaign) still appear, without a program dump. *)
  let shrunk_subjects =
    List.map (fun (f : Fuzz.failure) -> f.Fuzz.mismatch) t.failures
  in
  let bare =
    List.filter_map
      (fun m ->
        if List.memq m shrunk_subjects then None
        else Some (json_of_mismatch m None))
      t.summary.Diff.mismatches
  in
  Obs.Json.Obj
    [ ("schema", Obs.Json.String schema);
      ("seed", Obs.Json.Int t.seed);
      ("passed", Obs.Json.Bool (passed t));
      ( "diff",
        Obs.Json.Obj
          [ ( "subjects",
              Obs.Json.List
                (List.map
                   (fun s -> Obs.Json.String s)
                   t.summary.Diff.subjects) );
            ("programs", Obs.Json.Int t.summary.Diff.programs);
            ("ops", Obs.Json.Int t.summary.Diff.ops);
            ("mismatches", Obs.Json.List (failures @ bare)) ] );
      ( "xval",
        match t.xval with
        | None -> Obs.Json.Null
        | Some o ->
          Obs.Json.Obj
            [ ("passed", Obs.Json.Bool o.Xval.passed);
              ("cells", Obs.Json.List (List.map json_of_cell o.Xval.cells)) ]
      ) ]

let write path t = Obs.Json.write_file path (to_json t)

let validate_file path =
  let ( let* ) = Result.bind in
  let* json = Obs.Json.of_file path in
  let* () =
    match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "schema is %S, want %S" s schema)
    | None -> Error "missing \"schema\" field"
  in
  let* mismatches =
    match
      Option.bind (Obs.Json.member "diff" json) (fun diff ->
          Option.bind (Obs.Json.member "mismatches" diff) Obs.Json.to_list_opt)
    with
    | Some l -> Ok l
    | None -> Error "missing \"diff\".\"mismatches\" list"
  in
  let* () =
    if mismatches = [] then Ok ()
    else
      Error
        (Printf.sprintf "%d differential mismatch(es) recorded"
           (List.length mismatches))
  in
  match Obs.Json.member "passed" json with
  | Some (Obs.Json.Bool true) -> Ok ()
  | Some (Obs.Json.Bool false) -> Error "report says \"passed\": false"
  | Some _ | None -> Error "missing boolean \"passed\" field"
