(** The [tcpdemux-check/1] machine-readable report.

    One JSON document capturing a whole check run — the differential
    oracle's totals, any shrunk counterexamples (as replayable
    {!Op.print} dumps), and the cross-validation grid — written by
    [tcpdemux check --json] and gated on by [bench --check] and CI.

    Shape:
    {v
    { "schema": "tcpdemux-check/1",
      "seed": 42,
      "passed": true,
      "diff": { "subjects": [...], "programs": n, "ops": n,
                "mismatches": [ {"subject", "step", "what",
                                 "program" (Op.print dump)} ] },
      "xval": { "passed": true, "cells": [ {"users", "chains",
                "algorithm", "predicted", "simulated", "ci95",
                "ratio", "tolerance", "pass"} ] } }
    v}
    [xval] is [null] when cross-validation was skipped. *)

type t = {
  seed : int;
  summary : Diff.summary;
  failures : Fuzz.failure list;
  xval : Xval.outcome option;
}

val v :
  ?xval:Xval.outcome -> seed:int -> Diff.summary -> Fuzz.failure list -> t

val passed : t -> bool
(** No mismatches and (when present) every xval cell in tolerance. *)

val to_json : t -> Obs.Json.t
val write : string -> t -> unit

val validate_file : string -> (unit, string) result
(** The gate ([bench --check], CI): the file must parse, carry schema
    [tcpdemux-check/1], report zero mismatches, and have
    ["passed": true].  Errors say which requirement failed. *)
