let marker = "CLOSE"

let close_on_marker t conn payload =
  if String.equal payload marker then Tcpcore.Stack.close t conn

type expectation = {
  flow : Packet.Flow.t;
  state : Tcpcore.State.t;
  bytes_in : int;
}

type lowered = {
  datagrams : bytes array;
  expectations : expectation list;
  opened : int;
  closed : int;
  probes : int;
  payload_bytes : int;
}

(* Per-flow client state while walking the program.  [sent] counts
   payload bytes (data + marker) so the next seq is always
   c_iss + 1 + sent, plus one more once the FIN has gone out. *)
type fstate = {
  mutable sent : int;
  mutable data_segs : int;
  mutable fin_sent : bool;
  mutable probe : Packet.Segment.t option;
}

let lower ?(payload = 64) (prog : Op.t) =
  if payload <= 0 then invalid_arg "Smp_trace.lower: payload <= 0";
  let tbl : fstate Demux.Flow_table.t = Demux.Flow_table.create 64 in
  let order = ref [] in
  let segs = ref [] in
  let opened = ref 0 and closed = ref 0 and probes = ref 0 in
  let payload_bytes = ref 0 in
  let error = ref None in
  let fail i kind msg =
    if !error = None then
      error := Some (Printf.sprintf "op %d (%s): %s" i kind msg)
  in
  Array.iteri
    (fun i { Op.kind; flow } ->
      if !error = None then begin
        let src = flow.Packet.Flow.remote and dst = flow.Packet.Flow.local in
        let seg ?payload ~flags ~seq ~ack_number () =
          Packet.Segment.make ?payload ~flags ~seq ~ack_number ~src ~dst ()
        in
        let push s = segs := s :: !segs in
        let c_iss =
          Tcpcore.Stack.deterministic_iss (Packet.Flow.reverse flow)
        in
        let s_iss = Tcpcore.Stack.deterministic_iss flow in
        let c_seq st =
          Int32.add c_iss
            (Int32.of_int (1 + st.sent + if st.fin_sent then 1 else 0))
        in
        let st = Demux.Flow_table.find_opt tbl flow in
        match (kind, st) with
        | Op.Insert, Some _ -> fail i "I" "Insert on an already-open flow"
        | Op.Insert, None ->
          Demux.Flow_table.replace tbl flow
            { sent = 0; data_segs = 0; fin_sent = false; probe = None };
          order := flow :: !order;
          incr opened;
          push (seg ~flags:Packet.Tcp_header.flag_syn ~seq:c_iss ~ack_number:0l ());
          push
            (seg ~flags:Packet.Tcp_header.flag_ack ~seq:(Int32.add c_iss 1l)
               ~ack_number:(Int32.add s_iss 1l) ())
        | ((Op.Lookup | Op.Ack_lookup | Op.Remove | Op.Send) as k), None ->
          let letter =
            match k with
            | Op.Lookup -> "L"
            | Op.Ack_lookup -> "A"
            | Op.Remove -> "R"
            | Op.Send -> "S"
            | Op.Insert -> assert false
          in
          fail i letter "operation on a flow never inserted"
        | Op.Lookup, Some st ->
          if st.fin_sent then fail i "L" "Lookup after Remove"
          else begin
            let fill =
              String.make payload
                (Char.chr (Char.code 'a' + (st.data_segs mod 26)))
            in
            push
              (seg ~payload:fill ~flags:Packet.Tcp_header.flag_psh_ack
                 ~seq:(c_seq st) ~ack_number:(Int32.add s_iss 1l) ());
            st.sent <- st.sent + payload;
            st.data_segs <- st.data_segs + 1;
            payload_bytes := !payload_bytes + payload
          end
        | Op.Ack_lookup, Some st ->
          (* Pure ACK; after Remove it acks the server's FIN too. *)
          let ack = Int32.add s_iss (if st.fin_sent then 2l else 1l) in
          push
            (seg ~flags:Packet.Tcp_header.flag_ack ~seq:(c_seq st)
               ~ack_number:ack ())
        | Op.Remove, Some st ->
          if st.fin_sent then fail i "R" "Remove of an already-closed flow"
          else begin
            (* Marker data: the server app closes on delivery, emitting
               its FIN (snd_nxt -> s_iss + 2)... *)
            push
              (seg ~payload:marker ~flags:Packet.Tcp_header.flag_psh_ack
                 ~seq:(c_seq st) ~ack_number:(Int32.add s_iss 1l) ());
            st.sent <- st.sent + String.length marker;
            payload_bytes := !payload_bytes + String.length marker;
            (* ... and the client's FIN+ACK acks that FIN, so the server
               goes Fin_wait_1 -> Time_wait in one hop. *)
            let fin =
              seg ~flags:Packet.Tcp_header.flag_fin_ack ~seq:(c_seq st)
                ~ack_number:(Int32.add s_iss 2l) ()
            in
            push fin;
            st.fin_sent <- true;
            st.probe <- Some fin;
            incr closed
          end
        | Op.Send, Some st -> (
          match st.probe with
          | None -> fail i "S" "duplicate-FIN probe before Remove"
          | Some fin ->
            push fin;
            incr probes)
      end)
    prog.Op.ops;
  match !error with
  | Some e -> Error e
  | None ->
    let expectations =
      List.rev_map
        (fun flow ->
          let st = Demux.Flow_table.find tbl flow in
          { flow;
            state =
              (if st.fin_sent then Tcpcore.State.Time_wait
               else Tcpcore.State.Established);
            bytes_in = st.sent })
        !order
    in
    Ok
      { datagrams =
          Array.of_list (List.rev_map Packet.Segment.to_bytes !segs);
        expectations;
        opened = !opened;
        closed = !closed;
        probes = !probes;
        payload_bytes = !payload_bytes }
