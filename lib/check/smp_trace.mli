(** Lower {!Op} programs to wire-format segment traces for the
    shared-nothing SMP stacks ({!Parallel.Smp}).

    The differential oracle replays programs against bare demux tables;
    this module replays the {e same pinned programs} through real TCP
    stacks, so a corpus entry doubles as a migration-conservation trace.
    Each table operation becomes the client-side segments that force the
    server through the corresponding table op:

    - [Insert]     → SYN + handshake ACK (passive open, [Established])
    - [Lookup]     → one in-order data segment (receive-path hit)
    - [Ack_lookup] → one pure ACK (no payload, no state change)
    - [Remove]     → a data segment carrying {!marker} — the server
                     application ({!close_on_marker}) closes, emitting
                     FIN — followed by the client's FIN+ACK that acks
                     that FIN, driving the server [Fin_wait_1] →
                     [Time_wait] (the protocol removal path, complete
                     with a live 2MSL timer)
    - [Send]       → a byte-identical retransmission of the client's
                     FIN+ACK: the TIME-WAIT resurrection probe.  A
                     correct stack re-acks and stays in [Time_wait]; a
                     stack that lost the connection (double migration,
                     double drain) answers with an RST or a fresh PCB.

    Sequence numbers assume both sides draw from
    {!Tcpcore.Stack.deterministic_iss} (the client on the reversed
    flow) and that the server application is exactly
    {!close_on_marker}: replaying a lowered trace under any other
    [on_data] invalidates {!expectations}. *)

val marker : string
(** Payload that makes {!close_on_marker} close the connection. *)

val close_on_marker :
  Tcpcore.Stack.t -> Tcpcore.Stack.connection -> string -> unit
(** The server application the lowering assumes: closes the connection
    when the delivered payload equals {!marker}, ignores everything
    else.  Safe to install as [on_data] on every per-core stack. *)

type expectation = {
  flow : Packet.Flow.t;
  state : Tcpcore.State.t;
      (** [Established] for open flows, [Time_wait] after [Remove]. *)
  bytes_in : int;
      (** In-order client payload delivered, {!marker} included. *)
}

type lowered = {
  datagrams : bytes array;  (** Wire datagrams, program order. *)
  expectations : expectation list;
      (** One per opened flow, first-[Insert] order. *)
  opened : int;             (** [Insert] count = expected connections. *)
  closed : int;             (** [Remove] count = expected TIME-WAITs. *)
  probes : int;             (** [Send] count: duplicate-FIN probes. *)
  payload_bytes : int;      (** Total client payload on the wire. *)
}

val lower : ?payload:int -> Op.t -> (lowered, string) result
(** [lower prog] turns a program into its segment trace.  [?payload]
    (default 64) sizes each [Lookup] data segment.  Programs must be
    well-formed as {e connection} histories — no [Insert] of an open
    flow, no [Lookup]/[Remove] of a closed or absent one, [Send] only
    after [Remove] — otherwise [Error] names the offending op.  (The
    fuzzer's free-form programs need not qualify; the pinned SMP corpus
    entries do by construction.) *)
