let sorted_contents pairs =
  List.sort (fun (a, _) (b, _) -> Packet.Flow.compare a b) pairs

let pcb_pair pcb = (pcb.Demux.Pcb.flow, pcb.Demux.Pcb.data)

type t = {
  name : string;
  insert : Packet.Flow.t -> int -> unit;
  remove : Packet.Flow.t -> (Packet.Flow.t * int) option;
  lookup :
    kind:Demux.Types.packet_kind -> Packet.Flow.t ->
    (Packet.Flow.t * int) option;
  note_send : Packet.Flow.t -> unit;
  stats : unit -> Demux.Lookup_stats.snapshot;
  length : unit -> int;
  contents : unit -> (Packet.Flow.t * int) list;
  guard : Demux.Guarded.config option;
}

let of_spec spec =
  let demux = Demux.Registry.create spec in
  let guard =
    match spec with
    | Demux.Registry.Guarded { spec = inner; max_chain; max_total } ->
      (* Mirror Registry.create's guard wiring exactly, so the shadow
         guard Diff runs over the oracle makes the same decisions. *)
      let chains, hasher = Demux.Registry.chain_geometry inner in
      Some (Demux.Guarded.config ~max_chain ~max_total ~chains ~hasher ())
    | _ -> None
  in
  { name = demux.Demux.Registry.name;
    insert = (fun flow v -> ignore (demux.Demux.Registry.insert flow v));
    remove =
      (fun flow -> Option.map pcb_pair (demux.Demux.Registry.remove flow));
    lookup =
      (fun ~kind flow ->
        Option.map pcb_pair (demux.Demux.Registry.lookup ~kind flow));
    note_send = demux.Demux.Registry.note_send;
    stats = (fun () -> Demux.Lookup_stats.snapshot demux.Demux.Registry.stats);
    length = demux.Demux.Registry.length;
    contents =
      (fun () ->
        let acc = ref [] in
        demux.Demux.Registry.iter (fun pcb -> acc := pcb_pair pcb :: !acc);
        sorted_contents !acc);
    guard }

let striped ?(chains = Demux.Sequent.default_chains)
    ?(hasher = Hashing.Hashers.multiplicative) () =
  let table = Parallel.Striped.create ~chains ~hasher () in
  { name = Printf.sprintf "striped-sequent-%d" chains;
    insert = (fun flow v -> ignore (Parallel.Striped.insert table flow v));
    remove =
      (fun flow -> Option.map pcb_pair (Parallel.Striped.remove table flow));
    lookup =
      (fun ~kind flow ->
        Option.map pcb_pair (Parallel.Striped.lookup table ~kind flow));
    note_send = Parallel.Striped.note_send table;
    stats = (fun () -> Parallel.Striped.stats table);
    length = (fun () -> Parallel.Striped.length table);
    contents =
      (fun () ->
        let acc = ref [] in
        Parallel.Striped.iter (fun pcb -> acc := pcb_pair pcb :: !acc) table;
        sorted_contents !acc);
    guard = None }

module type FLAT = sig
  type 'a t

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?resize:Demux.Flat_table.resize -> unit -> 'a t

  val length : 'a t -> int
  val find_opt : 'a t -> w0:int -> w1:int -> 'a option
  val mem : 'a t -> w0:int -> w1:int -> bool
  val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
  val remove : 'a t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit
end

let of_flat ?initial_capacity ?resize ~name (module M : FLAT) =
  let table : int Demux.Pcb.t M.t = M.create ?initial_capacity ?resize () in
  let stats = Demux.Lookup_stats.create () in
  let next_id = ref 0 in
  let words flow =
    (Demux.Flow_key.w0_of_flow flow, Demux.Flow_key.w1_of_flow flow)
  in
  { name;
    insert =
      (fun flow v ->
        let w0, w1 = words flow in
        if M.mem table ~w0 ~w1 then
          invalid_arg (name ^ ".insert: duplicate flow");
        let pcb = Demux.Pcb.make ~id:!next_id ~flow v in
        incr next_id;
        M.replace table ~w0 ~w1 pcb;
        Demux.Lookup_stats.note_insert stats);
    remove =
      (fun flow ->
        let w0, w1 = words flow in
        match M.find_opt table ~w0 ~w1 with
        | None -> None
        | Some pcb ->
          M.remove table ~w0 ~w1;
          Demux.Lookup_stats.note_remove stats;
          Some (pcb_pair pcb));
    lookup =
      (fun ~kind:_ flow ->
        let w0, w1 = words flow in
        Demux.Lookup_stats.begin_lookup stats;
        Demux.Lookup_stats.examine stats ();
        let result = M.find_opt table ~w0 ~w1 in
        Demux.Lookup_stats.end_lookup stats ~hit_cache:false
          ~found:(result <> None);
        Option.map pcb_pair result);
    note_send = (fun _ -> ());
    stats = (fun () -> Demux.Lookup_stats.snapshot stats);
    length = (fun () -> M.length table);
    contents =
      (fun () ->
        let acc = ref [] in
        M.iter (fun ~w0:_ ~w1:_ pcb -> acc := pcb_pair pcb :: !acc) table;
        sorted_contents !acc);
    guard = None }

let flat_table () = of_flat ~name:"flat-table" (module Demux.Flat_table)

let flat_table_doubling () =
  of_flat ~resize:Demux.Flat_table.Doubling ~name:"flat-table-doubling"
    (module Demux.Flat_table)

let epoch_table () =
  (* Epoch.Table behind the FLAT adapter: identical charging to the
     other flat subjects (one probe per lookup), so Diff's oracle
     predictions apply unchanged.  Single-domain lockstep here; the
     multi-domain determinism test in test_check.ml partitions ops
     across domains and checks it converges to this same subject. *)
  of_flat ~name:"epoch-table"
    (module struct
      type 'a t = 'a Epoch.Table.t

      let create ?hash ?initial_capacity ?resize:(_ : Demux.Flat_table.resize option) () =
        Epoch.Table.create ?hash ?initial_capacity ()

      let length = Epoch.Table.length
      let find_opt = Epoch.Table.find_opt
      let mem = Epoch.Table.mem
      let replace = Epoch.Table.replace
      let remove = Epoch.Table.remove
      let iter = Epoch.Table.iter
    end)

let of_packed ?initial_capacity ?resize ~name (module M : Demux.Packed_table.S)
    =
  (* Packed tables hold bare ints, which is exactly the oracle's
     payload type — no Pcb box needed.  Flows for [contents] are
     reconstructed from the stored words ([Flow_key.to_flow] is the
     packing's inverse), so this adapter also exercises the round-trip
     the boundary qcheck in test_demux.ml pins. *)
  let table = M.create ?initial_capacity ?resize () in
  let stats = Demux.Lookup_stats.create () in
  let words flow =
    (Demux.Flow_key.w0_of_flow flow, Demux.Flow_key.w1_of_flow flow)
  in
  { name;
    insert =
      (fun flow v ->
        let w0, w1 = words flow in
        if M.mem table ~w0 ~w1 then
          invalid_arg (name ^ ".insert: duplicate flow");
        M.replace table ~w0 ~w1 v;
        Demux.Lookup_stats.note_insert stats);
    remove =
      (fun flow ->
        let w0, w1 = words flow in
        match M.find_opt table ~w0 ~w1 with
        | None -> None
        | Some v ->
          M.remove table ~w0 ~w1;
          Demux.Lookup_stats.note_remove stats;
          Some (flow, v));
    lookup =
      (fun ~kind:_ flow ->
        let w0, w1 = words flow in
        Demux.Lookup_stats.begin_lookup stats;
        Demux.Lookup_stats.examine stats ();
        let result = M.find_opt table ~w0 ~w1 in
        Demux.Lookup_stats.end_lookup stats ~hit_cache:false
          ~found:(result <> None);
        Option.map (fun v -> (flow, v)) result);
    note_send = (fun _ -> ());
    stats = (fun () -> Demux.Lookup_stats.snapshot stats);
    length = (fun () -> M.length table);
    contents =
      (fun () ->
        let acc = ref [] in
        M.iter
          (fun ~w0 ~w1 v ->
            acc :=
              (Demux.Flow_key.to_flow (Demux.Flow_key.make ~w0 ~w1), v)
              :: !acc)
          table;
        sorted_contents !acc);
    guard = None }

let offheap_table () =
  of_packed ~name:"offheap-table" (module Demux.Packed_table.Offheap)

(* Cuckoo_table's signature is a superset of Packed_table.S, so the
   bare-table subject rides the same adapter: differential programs
   drive kicks, stash spills and the negative-lookup filter through
   exactly the oracle the flat tables answer to. *)
let cuckoo_table () =
  of_packed ~name:"cuckoo-table" (module Demux.Cuckoo_table.Heap)

let guarded_flat_table ?(max_chain = 8) ?(max_total = 40) ?(chains = 4) () =
  let config = Demux.Guarded.config ~max_chain ~max_total ~chains () in
  let guard = Demux.Guarded.create config in
  (* Default (minimum) initial capacity: the guard's bounds sit above
     several incremental-resize boundaries, so evictions fire while a
     migration is in flight. *)
  let table : int Demux.Pcb.t Demux.Flat_table.t =
    Demux.Flat_table.create ()
  in
  let stats = Demux.Lookup_stats.create () in
  let next_id = ref 0 in
  let words flow =
    (Demux.Flow_key.w0_of_flow flow, Demux.Flow_key.w1_of_flow flow)
  in
  let remove_raw flow =
    let w0, w1 = words flow in
    match Demux.Flat_table.find_opt table ~w0 ~w1 with
    | None -> None
    | Some pcb ->
      Demux.Flat_table.remove table ~w0 ~w1;
      Some pcb
  in
  (* The same wiring as Registry.guard, so the shadow guard Diff runs
     over the oracle makes identical shed decisions: evict the guard's
     victims (each a remove + an eviction) before the admitted insert;
     a rejection mutates nothing. *)
  { name = "guarded-flat-table";
    insert =
      (fun flow v ->
        match Demux.Guarded.admit guard flow with
        | `Reject -> Demux.Lookup_stats.note_rejection stats
        | `Admit victims ->
          List.iter
            (fun victim ->
              match remove_raw victim with
              | Some _ ->
                Demux.Lookup_stats.note_remove stats;
                Demux.Lookup_stats.note_eviction stats
              | None ->
                invalid_arg
                  "guarded-flat-table: guard evicted an absent flow")
            victims;
          let w0, w1 = words flow in
          if Demux.Flat_table.mem table ~w0 ~w1 then
            invalid_arg "guarded-flat-table.insert: duplicate flow";
          let pcb = Demux.Pcb.make ~id:!next_id ~flow v in
          incr next_id;
          Demux.Flat_table.replace table ~w0 ~w1 pcb;
          Demux.Guarded.note_inserted guard flow;
          Demux.Lookup_stats.note_insert stats);
    remove =
      (fun flow ->
        match remove_raw flow with
        | None -> None
        | Some pcb ->
          Demux.Lookup_stats.note_remove stats;
          Demux.Guarded.note_removed guard flow;
          Some (pcb_pair pcb));
    lookup =
      (fun ~kind:_ flow ->
        let w0, w1 = words flow in
        Demux.Lookup_stats.begin_lookup stats;
        Demux.Lookup_stats.examine stats ();
        let result = Demux.Flat_table.find_opt table ~w0 ~w1 in
        if result <> None then Demux.Guarded.note_touched guard flow;
        Demux.Lookup_stats.end_lookup stats ~hit_cache:false
          ~found:(result <> None);
        Option.map pcb_pair result);
    note_send = (fun _ -> ());
    stats = (fun () -> Demux.Lookup_stats.snapshot stats);
    length = (fun () -> Demux.Flat_table.length table);
    contents =
      (fun () ->
        let acc = ref [] in
        Demux.Flat_table.iter
          (fun ~w0:_ ~w1:_ pcb -> acc := pcb_pair pcb :: !acc)
          table;
        sorted_contents !acc);
    guard = Some config }
