(** Systems under test, behind one face.

    {!Diff} drives anything that looks like a demultiplexer: the
    registry algorithms, the lock-striped parallel table in
    single-domain lockstep, and bare flat-table indexes (including
    deliberately broken copies, so tests can prove the fuzzer catches
    a planted bug).  Payloads are [int]s, matching {!Oracle}. *)

type t = {
  name : string;
  insert : Packet.Flow.t -> int -> unit;
      (** @raise Invalid_argument on a duplicate flow. *)
  remove : Packet.Flow.t -> (Packet.Flow.t * int) option;
  lookup :
    kind:Demux.Types.packet_kind -> Packet.Flow.t ->
    (Packet.Flow.t * int) option;
  note_send : Packet.Flow.t -> unit;
  stats : unit -> Demux.Lookup_stats.snapshot;
  length : unit -> int;
  contents : unit -> (Packet.Flow.t * int) list;
      (** Residents in {!Packet.Flow.compare} order, whatever the
          underlying iteration order. *)
  guard : Demux.Guarded.config option;
      (** When the subject wraps an overload guard, its configuration —
          {!Diff} runs a shadow guard over the oracle with exactly this
          config so the oracle predicts {e which} flows are shed, not
          just how many. *)
}

val of_spec : Demux.Registry.spec -> t
(** A fresh instance of a registry algorithm. *)

val striped : ?chains:int -> ?hasher:Hashing.Hashers.t -> unit -> t
(** A fresh {!Parallel.Striped} table driven from the calling domain —
    single-domain lockstep, so results are deterministic and
    comparable to the scalar Sequent algorithm. *)

(** The slice of {!Demux.Flat_table}'s signature the adapter needs.
    {!Demux.Flat_table} satisfies it; so does {!Buggy_table}. *)
module type FLAT = sig
  type 'a t

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int -> unit -> 'a t

  val length : 'a t -> int
  val find_opt : 'a t -> w0:int -> w1:int -> 'a option
  val mem : 'a t -> w0:int -> w1:int -> bool
  val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
  val remove : 'a t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit
end

val of_flat :
  ?initial_capacity:int -> name:string -> (module FLAT) -> t
(** A demultiplexer over a bare flat index: one probe charged per
    lookup, PCBs held as values.  [initial_capacity] defaults to the
    table's minimum, so collision clusters form early. *)

val flat_table : unit -> t
(** [of_flat (module Demux.Flat_table)] under the name ["flat-table"]. *)
