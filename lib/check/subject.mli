(** Systems under test, behind one face.

    {!Diff} drives anything that looks like a demultiplexer: the
    registry algorithms, the lock-striped parallel table in
    single-domain lockstep, and bare flat-table indexes (including
    deliberately broken copies, so tests can prove the fuzzer catches
    a planted bug).  Payloads are [int]s, matching {!Oracle}. *)

type t = {
  name : string;
  insert : Packet.Flow.t -> int -> unit;
      (** @raise Invalid_argument on a duplicate flow. *)
  remove : Packet.Flow.t -> (Packet.Flow.t * int) option;
  lookup :
    kind:Demux.Types.packet_kind -> Packet.Flow.t ->
    (Packet.Flow.t * int) option;
  note_send : Packet.Flow.t -> unit;
  stats : unit -> Demux.Lookup_stats.snapshot;
  length : unit -> int;
  contents : unit -> (Packet.Flow.t * int) list;
      (** Residents in {!Packet.Flow.compare} order, whatever the
          underlying iteration order. *)
  guard : Demux.Guarded.config option;
      (** When the subject wraps an overload guard, its configuration —
          {!Diff} runs a shadow guard over the oracle with exactly this
          config so the oracle predicts {e which} flows are shed, not
          just how many. *)
}

val of_spec : Demux.Registry.spec -> t
(** A fresh instance of a registry algorithm. *)

val striped : ?chains:int -> ?hasher:Hashing.Hashers.t -> unit -> t
(** A fresh {!Parallel.Striped} table driven from the calling domain —
    single-domain lockstep, so results are deterministic and
    comparable to the scalar Sequent algorithm. *)

(** The slice of {!Demux.Flat_table}'s signature the adapter needs.
    {!Demux.Flat_table} satisfies it; so does {!Buggy_table}. *)
module type FLAT = sig
  type 'a t

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?resize:Demux.Flat_table.resize -> unit -> 'a t

  val length : 'a t -> int
  val find_opt : 'a t -> w0:int -> w1:int -> 'a option
  val mem : 'a t -> w0:int -> w1:int -> bool
  val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
  val remove : 'a t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit
end

val of_flat :
  ?initial_capacity:int -> ?resize:Demux.Flat_table.resize ->
  name:string -> (module FLAT) -> t
(** A demultiplexer over a bare flat index: one probe charged per
    lookup, PCBs held as values.  [initial_capacity] defaults to the
    table's minimum, so collision clusters form early; [resize] is the
    growth policy (the table's default when omitted). *)

val flat_table : unit -> t
(** [of_flat (module Demux.Flat_table)] under the name ["flat-table"]
    — incremental resize, the production default. *)

val flat_table_doubling : unit -> t
(** The same index pinned to the legacy stop-the-world
    {!Demux.Flat_table.Doubling} policy, under the name
    ["flat-table-doubling"], so differential runs race the two resize
    strategies against the oracle and each other. *)

val epoch_table : unit -> t
(** {!Epoch.Table} — the lock-free read-mostly table — behind the
    {!of_flat} adapter under the name ["epoch-table"], at minimum
    initial capacity so differential programs cross several
    copy-publish-retire growth boundaries.  Driven single-domain
    (lockstep), every published-region replacement and its retirement
    still happens exactly as under concurrency; the reader-pinned half
    of the story is covered by {!Epoch_audit}. *)

val of_packed :
  ?initial_capacity:int -> ?resize:Demux.Flat_table.resize ->
  name:string -> (module Demux.Packed_table.S) -> t
(** A demultiplexer over a {!Demux.Packed_table} instance.  Payloads
    are stored directly in the table's int value lane (no PCB box);
    [contents] reconstructs each flow from its packed words, so every
    differential run also exercises the {!Demux.Flow_key} round-trip. *)

val offheap_table : unit -> t
(** {!Demux.Packed_table.Offheap} — the Bigarray-backed flat index —
    behind {!of_packed} under the name ["offheap-table"], at minimum
    initial capacity with the default incremental resize, so
    differential programs cross resize boundaries over off-heap
    regions.  Check subject #18. *)

val cuckoo_table : unit -> t
(** {!Demux.Cuckoo_table.Heap} — bucketized cuckoo hashing with the
    negative-lookup filter — behind {!of_packed} under the name
    ["cuckoo-table"], at minimum capacity so differential programs
    cross doubling rehashes, BFS kick chains and stash spills.
    (The registry specs ["cuckoo"] / ["guarded-cuckoo"] are subjects
    #19–20 via {!of_spec}; this is the bare table.) *)

val guarded_flat_table :
  ?max_chain:int -> ?max_total:int -> ?chains:int -> unit -> t
(** A {!Demux.Guarded} overload guard (defaults: [max_chain 8],
    [max_total 40], [4] chains, LRU shedding) over an incrementally
    resizing {!Demux.Flat_table} at minimum initial capacity, wired
    exactly like {!Demux.Registry}'s guarded algorithms and named
    ["guarded-flat-table"].  The bounds sit above several resize
    boundaries (populations 7, 14, 28 from the 8-slot minimum), so
    guard activity and incremental migrations interleave under churn;
    tightening [max_total] to sit just past a boundary (e.g. [30])
    forces evictions {e during} a drain — the dedicated overlap test
    in [test_check.ml] does exactly that.  Because [guard] carries
    the config, {!Diff}'s shadow guard checks the exact eviction
    {e set}, not just the count. *)
