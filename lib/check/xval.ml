type cell = {
  users : int;
  chains : int option;
  algorithm : string;
  predicted : float;
  simulated : float;
  ci95 : float;
  ratio : float;
  tolerance : float;
  slack : float;
  pass : bool;
}

type outcome = { cells : cell list; passed : bool }

let default_users = [ 100; 200; 400 ]
let default_chains = [ 7; 19; 51 ]

(* A cell passes when |simulated - predicted| <= tolerance * predicted
   + slack.  The relative term absorbs proportional model error; the
   absolute slack absorbs the O(1) extra examinations real (non-ideal)
   hashing costs when the predicted cost itself is near 1 — Sequent's
   closed form assumes perfectly uniform chains, and at H = 51 with
   100 users the multiplicative hash's imbalance alone is worth a
   large ratio.  Calibrated in EXPERIMENTS.md E30. *)
let bsd_tolerance = (0.05, 1.0)
let mtf_tolerance = (0.10, 1.0)
let sr_cache_tolerance = (0.10, 1.0)
let sequent_tolerance = (0.15, 1.0)

let specs_for chains =
  (Demux.Registry.Bsd, None, bsd_tolerance)
  :: (Demux.Registry.Mtf, None, mtf_tolerance)
  :: (Demux.Registry.Sr_cache, None, sr_cache_tolerance)
  :: List.map
       (fun h ->
         ( Demux.Registry.Sequent
             { chains = h; hasher = Hashing.Hashers.multiplicative },
           Some h,
           sequent_tolerance ))
       chains

let run ?obs ?(users = default_users) ?(chains = default_chains) ?warmup
    ?duration ?(seed = 42) () =
  let cells =
    List.concat_map
      (fun n ->
        let params = Analysis.Tpca_params.v ~users:n () in
        let config =
          Sim.Tpca_workload.default_config ?warmup ?duration ~seed params
        in
        let specs = specs_for chains in
        let rows =
          Sim.Validate.compare ?obs ~config params
            (List.map (fun (spec, _, _) -> spec) specs)
        in
        List.map2
          (fun (_, h, (tolerance, slack)) (row : Sim.Validate.row) ->
            let predicted = row.Sim.Validate.predicted
            and simulated = row.Sim.Validate.simulated in
            { users = n;
              chains = h;
              algorithm = row.Sim.Validate.algorithm;
              predicted;
              simulated;
              ci95 = row.Sim.Validate.ci95;
              ratio = row.Sim.Validate.ratio;
              tolerance;
              slack;
              pass =
                Float.is_finite simulated
                && Float.abs (simulated -. predicted)
                   <= (tolerance *. predicted) +. slack })
          specs rows)
      users
  in
  { cells; passed = List.for_all (fun c -> c.pass) cells }

let pp ppf outcome =
  Format.fprintf ppf "%6s %6s %-12s %10s %10s %8s %9s %6s@." "N" "H"
    "algorithm" "predicted" "simulated" "ratio" "bound" "pass";
  List.iter
    (fun c ->
      Format.fprintf ppf "%6d %6s %-12s %10.3f %10.3f %8.3f %9.2f %6s@."
        c.users
        (match c.chains with Some h -> string_of_int h | None -> "-")
        c.algorithm c.predicted c.simulated c.ratio
        ((c.tolerance *. c.predicted) +. c.slack)
        (if c.pass then "ok" else "FAIL"))
    outcome.cells;
  Format.fprintf ppf "xval: %s (%d cells)@."
    (if outcome.passed then "PASS" else "FAIL")
    (List.length outcome.cells)
