(** Analytic ↔ simulation cross-validation on a parameter grid.

    {!Sim.Validate} compares one parameter point; this module sweeps a
    grid of TPC/A populations [N] and (for Sequent) chain counts [H],
    runs the real data structures under the simulated workload, and
    {e asserts} that each measured mean PCBs-examined lands within a
    stated tolerance of the paper's closed form — the quantitative
    version of the paper's "qualitatively confirmed by benchmarks".

    The bound is [|simulated − predicted| ≤ tolerance·predicted +
    slack]: a per-algorithm relative term for proportional model
    error, plus a small absolute slack for the O(1) extra
    examinations real (non-uniform) hashing costs when the predicted
    cost is near 1.  Bounds are loose enough to absorb simulation
    variance and tight enough that a broken model or a broken table
    fails: the grid and bounds are tabulated in EXPERIMENTS.md
    (E30). *)

type cell = {
  users : int;              (** TPC/A population [N]. *)
  chains : int option;      (** [Some h] for Sequent cells. *)
  algorithm : string;
  predicted : float;        (** Closed-form expected PCBs examined. *)
  simulated : float;        (** Simulated mean. *)
  ci95 : float;
  ratio : float;            (** simulated / predicted. *)
  tolerance : float;        (** Relative term of the bound. *)
  slack : float;            (** Absolute term of the bound. *)
  pass : bool;
}

type outcome = { cells : cell list; passed : bool }

val default_users : int list
(** [[100; 200; 400]]. *)

val default_chains : int list
(** [[7; 19; 51]]. *)

val run :
  ?obs:Obs.Registry.t ->
  ?users:int list ->
  ?chains:int list ->
  ?warmup:float ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  outcome
(** For every [N]: BSD, MTF and SR-cache once each, plus Sequent at
    every [H] — each a full {!Sim.Tpca_workload} run with seed derived
    from [seed] (default 42).  [warmup]/[duration] pass through to
    {!Sim.Tpca_workload.default_config} (shorter durations widen the
    noise; the default tolerances assume the default duration). *)

val pp : Format.formatter -> outcome -> unit
