type 'a node = {
  pcb : 'a Pcb.t;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable length : int;
}

let create () = { head = None; tail = None; length = 0 }
let length t = t.length
let is_empty t = t.length = 0
let pcb node = node.pcb

let push_front t pcb =
  let node = { pcb; prev = None; next = t.head; linked = true } in
  (match t.head with
  | Some old_head -> old_head.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node;
  t.length <- t.length + 1;
  node

let remove t node =
  if not node.linked then invalid_arg "Chain.remove: node not linked";
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None;
  node.linked <- false;
  t.length <- t.length - 1

let move_to_front t node =
  if not node.linked then invalid_arg "Chain.move_to_front: node not linked";
  let is_head = match t.head with Some h -> h == node | None -> false in
  if not is_head then begin
    remove t node;
    node.linked <- true;
    node.next <- t.head;
    node.prev <- None;
    (match t.head with
    | Some old_head -> old_head.prev <- Some node
    | None -> t.tail <- Some node);
    t.head <- Some node;
    t.length <- t.length + 1
  end

(* Top-level recursion with explicit arguments (not a closure over
   [stats]/[flow]) and reuse of the chain's own option cells, so a
   scan allocates nothing. *)
let rec scan_nodes stats flow = function
  | None -> None
  | Some node as found ->
    Lookup_stats.examine stats ();
    if Pcb.matches node.pcb flow then found else scan_nodes stats flow node.next

let scan t ~stats flow = scan_nodes stats flow t.head

let iter f t =
  let rec walk = function
    | None -> ()
    | Some node ->
      f node.pcb;
      walk node.next
  in
  walk t.head

let to_list t =
  let acc = ref [] in
  iter (fun pcb -> acc := pcb :: !acc) t;
  List.rev !acc

let tail_pcb t =
  match t.tail with Some node -> Some node.pcb | None -> None

let find_exact t flow =
  let rec walk = function
    | None -> None
    | Some node -> if Pcb.matches node.pcb flow then Some node else walk node.next
  in
  walk t.head
