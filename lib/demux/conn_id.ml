type 'a t = {
  slots : 'a Pcb.t option array;
  ids : int Flat_table.t;
  mutable free : int list;
  stats : Lookup_stats.t;
  mutable population : int;
}

let name = "conn-id"

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Conn_id.create: capacity <= 0";
  { slots = Array.make capacity None;
    ids = Flat_table.create ~initial_capacity:64 ();
    free = List.init capacity Fun.id; stats = Lookup_stats.create ();
    population = 0 }

let insert t flow data =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  if Flat_table.mem t.ids ~w0 ~w1 then
    invalid_arg "Conn_id.insert: duplicate flow";
  match t.free with
  | [] -> failwith "Conn_id.insert: connection-ID space exhausted"
  | id :: rest ->
    t.free <- rest;
    let pcb = Pcb.make ~id ~flow data in
    t.slots.(id) <- Some pcb;
    Flat_table.replace t.ids ~w0 ~w1 id;
    t.population <- t.population + 1;
    Lookup_stats.note_insert t.stats;
    pcb

let connection_id t flow =
  Flat_table.find_opt t.ids ~w0:(Flow_key.w0_of_flow flow)
    ~w1:(Flow_key.w1_of_flow flow)

let lookup_by_id t ?kind:_ id =
  Lookup_stats.begin_lookup t.stats;
  if id < 0 || id >= Array.length t.slots then begin
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None
  end
  else begin
    Lookup_stats.examine t.stats ();
    match t.slots.(id) with
    | Some pcb ->
      Pcb.note_rx pcb;
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
      Some pcb
    | None ->
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
      None
  end

let remove t flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  match Flat_table.find_opt t.ids ~w0 ~w1 with
  | None -> None
  | Some id ->
    let pcb = t.slots.(id) in
    t.slots.(id) <- None;
    Flat_table.remove t.ids ~w0 ~w1;
    t.free <- id :: t.free;
    t.population <- t.population - 1;
    Lookup_stats.note_remove t.stats;
    pcb

let lookup t ?kind flow =
  (* The ID travels in the packet header; translating flow -> ID here
     stands in for reading those header bits and is not charged. *)
  match
    Flat_table.find t.ids ~w0:(Flow_key.w0_of_flow flow)
      ~w1:(Flow_key.w1_of_flow flow)
  with
  | id -> lookup_by_id t ?kind id
  | exception Not_found ->
    Lookup_stats.begin_lookup t.stats;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match
    Flat_table.find_opt t.ids ~w0:(Flow_key.w0_of_flow flow)
      ~w1:(Flow_key.w1_of_flow flow)
  with
  | Some id -> (
    match t.slots.(id) with Some pcb -> Pcb.note_tx pcb | None -> ())
  | None -> ()

let stats t = t.stats
let length t = t.population

let iter f t =
  Array.iter (function Some pcb -> f pcb | None -> ()) t.slots
