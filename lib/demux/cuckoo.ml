(* Registry-facing demultiplexer over Cuckoo_table: the table maps
   packed flow words to an index into a growable PCB side store, the
   same split Conn_id uses (every table lane stays an immediate int,
   so kicks move entries without touching the GC write barrier).
   Lookup cost is charged in the table's probe units — buckets
   scanned plus stash entries examined — via [find_probed]'s
   [last_probes], so `tcpdemux` attack/check campaigns see the
   bounded-probe claim in the same "PCBs examined" ledger as every
   other algorithm. *)

module Table = Cuckoo_table.Heap

type 'a t = {
  table : Table.t;
  mutable slots : 'a Pcb.t option array;
  mutable free : int list;
  mutable next : int;
  stats : Lookup_stats.t;
}

let name = "cuckoo"

let create () =
  { table = Table.create ();
    slots = Array.make 64 None;
    free = [];
    next = 0;
    stats = Lookup_stats.create () }

let alloc_slot t =
  match t.free with
  | id :: rest ->
    t.free <- rest;
    id
  | [] ->
    if t.next >= Array.length t.slots then begin
      let grown = Array.make (2 * Array.length t.slots) None in
      Array.blit t.slots 0 grown 0 (Array.length t.slots);
      t.slots <- grown
    end;
    let id = t.next in
    t.next <- id + 1;
    id

let insert t flow data =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  if Table.mem t.table ~w0 ~w1 then invalid_arg "Cuckoo.insert: duplicate flow";
  let id = alloc_slot t in
  let pcb = Pcb.make ~id ~flow data in
  t.slots.(id) <- Some pcb;
  Table.replace t.table ~w0 ~w1 id;
  Lookup_stats.note_insert t.stats;
  pcb

let lookup t ?kind:_ flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  Lookup_stats.begin_lookup t.stats;
  match Table.find t.table ~w0 ~w1 with
  | id ->
    Lookup_stats.examine t.stats ~count:(Table.last_probes t.table) ();
    (match t.slots.(id) with
    | Some pcb ->
      Pcb.note_rx pcb;
      Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
      Some pcb
    | None ->
      (* The table and the side store move in lockstep; a dangling
         index is a bug, not a miss. *)
      assert false)
  | exception Not_found ->
    Lookup_stats.examine t.stats ~count:(Table.last_probes t.table) ();
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let remove t flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  match Table.find_opt t.table ~w0 ~w1 with
  | None -> None
  | Some id ->
    let pcb = t.slots.(id) in
    Table.remove t.table ~w0 ~w1;
    t.slots.(id) <- None;
    t.free <- id :: t.free;
    Lookup_stats.note_remove t.stats;
    pcb

let note_send t flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  match Table.find_opt t.table ~w0 ~w1 with
  | Some id -> (
    match t.slots.(id) with Some pcb -> Pcb.note_tx pcb | None -> ())
  | None -> ()

let stats t = t.stats
let length t = Table.length t.table
let table t = t.table

let iter f t =
  Array.iter (function Some pcb -> f pcb | None -> ()) t.slots
