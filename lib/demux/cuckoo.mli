(** The bucketized-cuckoo demultiplexer ({!Cuckoo_table} + a PCB side
    store), registry spec ["cuckoo"].

    Lookup cost is charged through {!Lookup_stats} in the table's
    probe units (buckets scanned + stash entries examined), so the
    paper's "PCBs examined" ledger shows the bounded worst case
    directly: a filter-short-circuited SYN-flood miss charges 1,
    anything else at most 2 + the stash occupancy.  See
    DESIGN.md section 15. *)

type 'a t

val name : string

val create : unit -> 'a t

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val lookup :
  'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option
val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int

val table : 'a t -> Cuckoo_table.Heap.t
(** The underlying table, for kick/stash diagnostics in attack
    reports. *)

val iter : ('a Pcb.t -> unit) -> 'a t -> unit
