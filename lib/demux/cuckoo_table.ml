(* Bucketized cuckoo hashing over Storage.S — see the .mli and
   DESIGN.md section 15 for the layout and the bounded-probe
   argument.  Hot-path discipline matches Packed_table: every lane
   holds immediates, lookups allocate nothing (the probe accumulator
   is a mutable int field, not a ref cell), and all slot indexing is
   [bucket lsl 3 + i] with the bucket taken [land bmask]. *)

let slots_per_bucket = 8
let stash_capacity = 16
let bfs_budget = 170
let dead_tag = Storage.dead_tag
let min_buckets = 2
let max_grow_retries = 3

let default_hash1 = Flow_key.hash_words

(* Independent secondary hash: distinct odd multipliers over the raw
   packed words (not the 32-bit fold the multiplicative primary
   starts from, so a crafted fold32 collision family does not collide
   here), xor-shift finisher, masked non-negative.  Pure int
   arithmetic — no allocation on the per-packet path. *)
let default_hash2 w0 w1 =
  let x = (w0 * 0x2545F4914F6CDD1D) lxor (w1 * 0x369DEA0F31A53F85) in
  let x = x lxor (x lsr 31) in
  let x = x * 0x27D4EB2F165667C5 in
  (x lxor (x lsr 29)) land max_int

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 || tag = dead_tag then 1 else tag

let buckets_for n =
  let rec fit buckets =
    if n * 16 <= buckets * slots_per_bucket * 15 then buckets
    else fit (buckets * 2)
  in
  fit min_buckets

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

module type S = sig
  type t

  val backend : string

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?resize:Flat_table.resize -> unit -> t

  val create2 :
    ?hash1:(int -> int -> int) -> ?hash2:(int -> int -> int) ->
    ?initial_capacity:int -> unit -> t

  val length : t -> int
  val capacity : t -> int
  val resize_policy : t -> Flat_table.resize
  val resizes : t -> int
  val pending_migration : t -> int
  val bytes : t -> int
  val find : t -> w0:int -> w1:int -> int
  val find_opt : t -> w0:int -> w1:int -> int option
  val mem : t -> w0:int -> w1:int -> bool
  val replace : t -> w0:int -> w1:int -> int -> unit
  val remove : t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> int -> unit) -> t -> unit
  val fold : (w0:int -> w1:int -> int -> 'b -> 'b) -> t -> 'b -> 'b
  val clear : t -> unit
  val max_probe_length : t -> int
  val buckets : t -> int
  val stash_len : t -> int
  val kicks : t -> int
  val stash_spills : t -> int
  val last_probes : t -> int
  val probe_count : t -> w0:int -> w1:int -> int
end

module Make (St : Storage.S) : S = struct
  type t = {
    mutable store : St.t;
    mutable nbuckets : int;
    mutable bmask : int;
    mutable count : int;             (* keys resident in bucket slots *)
    (* Per-bucket negative-lookup filter: eight 7-bit saturating
       counters packed at 8-bit stride (bits 0..62 of one int — the
       8th bit of each lane is never set, so the packing fits a
       63-bit immediate).  Counter [tag land 7] of bucket [b] counts
       keys whose primary bucket is [b] but which live in their
       secondary bucket or the stash. *)
    mutable ovf : int array;
    (* Bucket-visited stamps for BFS dedup (epoch-tagged so the array
       is never cleared between inserts). *)
    mutable visited : int array;
    mutable visit_epoch : int;
    (* Stash: parallel immediates, scanned last. *)
    stash_h : int array;
    stash_w0 : int array;
    stash_w1 : int array;
    stash_v : int array;
    mutable stash_len : int;
    (* BFS scratch: bucket / parent queue index / slot in parent's
       bucket whose resident leads here. *)
    bfs_bucket : int array;
    bfs_parent : int array;
    bfs_slot : int array;
    mutable resizes : int;
    mutable kicks : int;
    mutable stash_spills : int;
    mutable last_probes : int;
    hash1 : int -> int -> int;
    hash2 : int -> int -> int;
  }

  let backend = St.backend

  let create2 ?(hash1 = default_hash1) ?(hash2 = default_hash2)
      ?(initial_capacity = min_buckets * slots_per_bucket) () =
    if initial_capacity < 0 then
      invalid_arg "Cuckoo_table.create: initial_capacity < 0";
    let nbuckets =
      pow2_at_least
        ((max initial_capacity (min_buckets * slots_per_bucket)
          + slots_per_bucket - 1)
         / slots_per_bucket)
        min_buckets
    in
    { store = St.create ~capacity:(nbuckets * slots_per_bucket);
      nbuckets;
      bmask = nbuckets - 1;
      count = 0;
      ovf = Array.make nbuckets 0;
      visited = Array.make nbuckets 0;
      visit_epoch = 0;
      stash_h = Array.make stash_capacity 0;
      stash_w0 = Array.make stash_capacity 0;
      stash_w1 = Array.make stash_capacity 0;
      stash_v = Array.make stash_capacity 0;
      stash_len = 0;
      bfs_bucket = Array.make bfs_budget 0;
      bfs_parent = Array.make bfs_budget (-1);
      bfs_slot = Array.make bfs_budget (-1);
      resizes = 0;
      kicks = 0;
      stash_spills = 0;
      last_probes = 0;
      hash1;
      hash2 }

  let create ?hash ?initial_capacity ?resize:_ () =
    create2 ?hash1:hash ?initial_capacity ()

  let length t = t.count + t.stash_len
  let capacity t = t.nbuckets * slots_per_bucket
  let resize_policy _ = Flat_table.Doubling
  let resizes t = t.resizes
  let pending_migration _ = 0
  let buckets t = t.nbuckets
  let stash_len t = t.stash_len
  let kicks t = t.kicks
  let stash_spills t = t.stash_spills
  let last_probes t = t.last_probes

  let bytes t =
    St.bytes t.store
    + (8 * (2 * t.nbuckets + 3 * bfs_budget + 4 * stash_capacity))

  (* --- filter ------------------------------------------------------ *)

  let[@inline] filter_get t b cls = (t.ovf.(b) lsr (cls lsl 3)) land 0x7F

  let filter_incr t b cls =
    if filter_get t b cls < 0x7F then
      t.ovf.(b) <- t.ovf.(b) + (1 lsl (cls lsl 3))

  let filter_decr t b cls =
    let c = filter_get t b cls in
    if c = 0 then
      invalid_arg
        "Cuckoo_table: overflow-filter underflow (a secondary/stash \
         resident was never counted — accounting bug)";
    (* Saturated counters stick: a stale positive costs one extra
       bucket probe, a false negative would lose a key. *)
    if c < 0x7F then t.ovf.(b) <- t.ovf.(b) - (1 lsl (cls lsl 3))

  (* --- bucket scans ------------------------------------------------ *)

  (* Tag vector first: the eight contiguous tag bytes of the bucket
     are compared before any key word is loaded.  Top-level recursion
     with every parameter explicit — an inner [go] would close over
     the scan state and allocate a closure per lookup, blowing the
     zero-minor-words warm-hit budget. *)
  let rec scan_slots st s stop tag w0 w1 =
    if s = stop then -1
    else if St.tag st s = tag && St.w0 st s = w0 && St.w1 st s = w1 then s
    else scan_slots st (s + 1) stop tag w0 w1

  let[@inline] scan_bucket st base tag w0 w1 =
    scan_slots st base (base + slots_per_bucket) tag w0 w1

  let rec free_from st s stop =
    if s = stop then -1
    else if St.tag st s = 0 then s
    else free_from st (s + 1) stop

  let[@inline] free_slot st base = free_from st base (base + slots_per_bucket)

  (* --- lookup ------------------------------------------------------ *)

  let rec stash_scan t w0 w1 i =
    if i >= t.stash_len then -1
    else begin
      t.last_probes <- t.last_probes + 1;
      if t.stash_w0.(i) = w0 && t.stash_w1.(i) = w1 then -2 - i
      else stash_scan t w0 w1 (i + 1)
    end

  (* Result encoding: slot index (>= 0) for a bucket hit, [-2 - i]
     for stash entry [i], -1 for a miss.  [t.last_probes] accumulates
     probe units (buckets scanned + stash entries examined) without a
     heap-allocated ref. *)
  let lookup t ~w0 ~w1 =
    let h1 = t.hash1 w0 w1 in
    let tag = tag_of_hash h1 in
    let b1 = h1 land t.bmask in
    t.last_probes <- 1;
    let s = scan_bucket t.store (b1 lsl 3) tag w0 w1 in
    if s >= 0 then s
    else if filter_get t b1 (tag land 7) = 0 then -1
    else begin
      let b2 = t.hash2 w0 w1 land t.bmask in
      let s2 =
        if b2 = b1 then -1
        else begin
          t.last_probes <- t.last_probes + 1;
          scan_bucket t.store (b2 lsl 3) tag w0 w1
        end
      in
      if s2 >= 0 then s2 else stash_scan t w0 w1 0
    end

  let find t ~w0 ~w1 =
    let r = lookup t ~w0 ~w1 in
    if r >= 0 then St.value t.store r
    else if r = -1 then raise Not_found
    else t.stash_v.(-2 - r)

  let find_opt t ~w0 ~w1 =
    match find t ~w0 ~w1 with v -> Some v | exception Not_found -> None

  let mem t ~w0 ~w1 = lookup t ~w0 ~w1 <> -1

  let probe_count t ~w0 ~w1 =
    let (_ : int) = lookup t ~w0 ~w1 in
    t.last_probes

  (* --- placement --------------------------------------------------- *)

  let write_slot t slot h1 tag w0 w1 v =
    let st = t.store in
    St.set_tag st slot tag;
    St.set_hash st slot h1;
    St.set_words st slot ~w0 ~w1;
    St.set_value st slot v

  (* Move a resident one hop to its other candidate bucket, keeping
     the primary bucket's filter counter in step with whether the key
     is currently displaced from home. *)
  let move_slot t src dst =
    let st = t.store in
    let h = St.hash st src in
    let tg = St.tag st src in
    let p = h land t.bmask in
    let was_out = src lsr 3 <> p and now_out = dst lsr 3 <> p in
    St.set_tag st dst tg;
    St.set_hash st dst h;
    St.set_words st dst ~w0:(St.w0 st src) ~w1:(St.w1 st src);
    St.set_value st dst (St.value st src);
    St.set_tag st src 0;
    St.set_value st src 0;
    if was_out && not now_out then filter_decr t p (tg land 7)
    else if now_out && not was_out then filter_incr t p (tg land 7)

  let alt_bucket t slot =
    let st = t.store in
    let p = St.hash st slot land t.bmask in
    if slot lsr 3 = p then t.hash2 (St.w0 st slot) (St.w1 st slot) land t.bmask
    else p

  (* BFS over kick paths.  Each bucket enters the queue at most once
     (epoch-stamped visited array), so the slots along any root path
     are distinct and the unwind below moves each resident exactly
     once.  Bounded by [bfs_budget] queue entries. *)
  let bfs_place t h1 tag w0 w1 v b1 b2 =
    t.visit_epoch <- t.visit_epoch + 1;
    let epoch = t.visit_epoch in
    let qb = t.bfs_bucket and qp = t.bfs_parent and qs = t.bfs_slot in
    qb.(0) <- b1;
    qp.(0) <- -1;
    qs.(0) <- -1;
    t.visited.(b1) <- epoch;
    let len = ref 1 in
    if b2 <> b1 then begin
      qb.(1) <- b2;
      qp.(1) <- -1;
      qs.(1) <- -1;
      t.visited.(b2) <- epoch;
      len := 2
    end;
    let head = ref 0 in
    let placed = ref false in
    while (not !placed) && !head < !len do
      let b = qb.(!head) in
      let fs = free_slot t.store (b lsl 3) in
      if fs >= 0 then begin
        (* Unwind: walk parents moving each chain resident into the
           slot freed below it; the root's freed slot takes the new
           key. *)
        let rec unwind qi free_s =
          if qp.(qi) < 0 then free_s
          else begin
            let ps = qs.(qi) in
            move_slot t ps free_s;
            t.kicks <- t.kicks + 1;
            unwind qp.(qi) ps
          end
        in
        let root_free = unwind !head fs in
        write_slot t root_free h1 tag w0 w1 v;
        if root_free lsr 3 <> b1 then filter_incr t b1 (tag land 7);
        t.count <- t.count + 1;
        placed := true
      end
      else begin
        let base = b lsl 3 in
        let i = ref 0 in
        while !len < bfs_budget && !i < slots_per_bucket do
          let alt = alt_bucket t (base + !i) in
          if t.visited.(alt) <> epoch then begin
            t.visited.(alt) <- epoch;
            qb.(!len) <- alt;
            qp.(!len) <- !head;
            qs.(!len) <- base + !i;
            incr len
          end;
          incr i
        done
      end;
      incr head
    done;
    !placed

  (* Place a key known to be absent; false if both buckets, every
     BFS path, and the stash are exhausted. *)
  let try_place t h1 tag w0 w1 v =
    let b1 = h1 land t.bmask in
    let b2 = t.hash2 w0 w1 land t.bmask in
    let fs1 = free_slot t.store (b1 lsl 3) in
    if fs1 >= 0 then begin
      write_slot t fs1 h1 tag w0 w1 v;
      t.count <- t.count + 1;
      true
    end
    else begin
      let fs2 = if b2 = b1 then -1 else free_slot t.store (b2 lsl 3) in
      if fs2 >= 0 then begin
        write_slot t fs2 h1 tag w0 w1 v;
        t.count <- t.count + 1;
        filter_incr t b1 (tag land 7);
        true
      end
      else if bfs_place t h1 tag w0 w1 v b1 b2 then true
      else if t.stash_len < stash_capacity then begin
        let i = t.stash_len in
        t.stash_h.(i) <- h1;
        t.stash_w0.(i) <- w0;
        t.stash_w1.(i) <- w1;
        t.stash_v.(i) <- v;
        t.stash_len <- i + 1;
        t.stash_spills <- t.stash_spills + 1;
        filter_incr t b1 (tag land 7);
        true
      end
      else false
    end

  (* Stop-the-world doubling rehash.  Stash entries re-insert first —
     they were the overflow, so they get first pick of the doubled
     space.  If even repeated doubling cannot re-place the residents
     (possible only with degenerate hash pairs) we fail loudly. *)
  let grow t =
    let n = t.count + t.stash_len in
    let eh = Array.make (max n 1) 0 in
    let e0 = Array.make (max n 1) 0 in
    let e1 = Array.make (max n 1) 0 in
    let ev = Array.make (max n 1) 0 in
    let k = ref 0 in
    for i = 0 to t.stash_len - 1 do
      eh.(!k) <- t.stash_h.(i);
      e0.(!k) <- t.stash_w0.(i);
      e1.(!k) <- t.stash_w1.(i);
      ev.(!k) <- t.stash_v.(i);
      incr k
    done;
    let old_store = t.store in
    for s = 0 to (t.nbuckets * slots_per_bucket) - 1 do
      if St.tag old_store s <> 0 then begin
        eh.(!k) <- St.hash old_store s;
        e0.(!k) <- St.w0 old_store s;
        e1.(!k) <- St.w1 old_store s;
        ev.(!k) <- St.value old_store s;
        incr k
      end
    done;
    assert (!k = n);
    let rec attempt nbuckets retries =
      if retries > max_grow_retries then
        invalid_arg
          "Cuckoo_table: rehash failed after repeated doubling \
           (degenerate hash pair — residents exceed 2 buckets + stash)";
      t.nbuckets <- nbuckets;
      t.bmask <- nbuckets - 1;
      t.store <- St.create ~capacity:(nbuckets * slots_per_bucket);
      t.ovf <- Array.make nbuckets 0;
      t.visited <- Array.make nbuckets 0;
      t.visit_epoch <- 0;
      t.count <- 0;
      t.stash_len <- 0;
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < n do
        if not (try_place t eh.(!i) (tag_of_hash eh.(!i)) e0.(!i) e1.(!i) ev.(!i))
        then ok := false;
        incr i
      done;
      if not !ok then attempt (nbuckets * 2) (retries + 1)
    in
    attempt (t.nbuckets * 2) 1;
    t.resizes <- t.resizes + 1;
    St.free old_store

  let replace t ~w0 ~w1 v =
    let r = lookup t ~w0 ~w1 in
    if r >= 0 then St.set_value t.store r v
    else if r <= -2 then t.stash_v.(-2 - r) <- v
    else begin
      if (t.count + t.stash_len + 1) * 16 > capacity t * 15 then grow t;
      let h1 = t.hash1 w0 w1 in
      let tag = tag_of_hash h1 in
      if not (try_place t h1 tag w0 w1 v) then begin
        grow t;
        if not (try_place t h1 tag w0 w1 v) then begin
          grow t;
          if not (try_place t h1 tag w0 w1 v) then
            invalid_arg
              "Cuckoo_table: insert failed after repeated growth \
               (more keys collide on one bucket pair than 2 buckets \
                + stash can hold)"
        end
      end
    end

  let remove t ~w0 ~w1 =
    let r = lookup t ~w0 ~w1 in
    if r >= 0 then begin
      let st = t.store in
      let p = St.hash st r land t.bmask in
      if r lsr 3 <> p then filter_decr t p (St.tag st r land 7);
      St.set_tag st r 0;
      St.set_value st r 0;
      t.count <- t.count - 1
    end
    else if r <= -2 then begin
      let i = -2 - r in
      filter_decr t
        (t.stash_h.(i) land t.bmask)
        (tag_of_hash t.stash_h.(i) land 7);
      let last = t.stash_len - 1 in
      t.stash_h.(i) <- t.stash_h.(last);
      t.stash_w0.(i) <- t.stash_w0.(last);
      t.stash_w1.(i) <- t.stash_w1.(last);
      t.stash_v.(i) <- t.stash_v.(last);
      t.stash_len <- last
    end

  let iter f t =
    let st = t.store in
    for s = 0 to (t.nbuckets * slots_per_bucket) - 1 do
      let tag = St.tag st s in
      if tag <> 0 && tag <> dead_tag then
        f ~w0:(St.w0 st s) ~w1:(St.w1 st s) (St.value st s)
    done;
    for i = 0 to t.stash_len - 1 do
      f ~w0:t.stash_w0.(i) ~w1:t.stash_w1.(i) t.stash_v.(i)
    done

  let fold f t init =
    let acc = ref init in
    iter (fun ~w0 ~w1 v -> acc := f ~w0 ~w1 v !acc) t;
    !acc

  let clear t =
    St.reset t.store;
    t.count <- 0;
    t.stash_len <- 0;
    Array.fill t.ovf 0 t.nbuckets 0;
    Array.fill t.visited 0 t.nbuckets 0;
    t.visit_epoch <- 0

  let max_probe_length t =
    let worst = ref 0 in
    let st = t.store in
    for s = 0 to (t.nbuckets * slots_per_bucket) - 1 do
      if St.tag st s <> 0 then begin
        let p = St.hash st s land t.bmask in
        let probes = if s lsr 3 = p then 1 else 2 in
        if probes > !worst then worst := probes
      end
    done;
    for i = 0 to t.stash_len - 1 do
      let h1 = t.stash_h.(i) in
      let b1 = h1 land t.bmask in
      let b2 = t.hash2 t.stash_w0.(i) t.stash_w1.(i) land t.bmask in
      let probes = (if b2 = b1 then 1 else 2) + i + 1 in
      if probes > !worst then worst := probes
    done;
    !worst
  end

module Heap = Make (Storage.Heap)
module Offheap = Make (Storage.Offheap)
