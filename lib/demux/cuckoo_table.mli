(** Bucketized cuckoo hashing with per-bucket tag vectors and a
    negative-lookup filter (Cuckoo++, Le Scouarnec — PAPERS.md).

    The flat tables ({!Flat_table}, {!Packed_table}) probe a
    displacement cluster to prove a key {e absent}, which is exactly
    the operation a SYN flood buys in bulk.  This backend bounds the
    worst case instead:

    - {b 8-slot buckets} over a {!Storage.S} region.  Bucket [b] is
      slots [8b .. 8b+7], so the bucket's eight tag bytes are
      contiguous — the per-bucket {e tag vector}.  A lookup scans
      those eight bytes first and touches key words only on a tag
      match.
    - {b Two hashes}: the primary is {!Flow_key.hash_words}
      (Hashing's multiplicative scheme over the packed words); the
      secondary is an independent pure-int mixer over the same words.
      A key lives in bucket [h1 land mask] or [h2 land mask], never
      anywhere else.
    - {b Negative-lookup filter}: each bucket keeps eight 7-bit
      saturating counters, one per tag class ([tag land 7]), counting
      the keys of that class whose {e primary} bucket this is but
      which currently live in their secondary bucket or the stash.
      If the primary bucket's tag vector misses and the class counter
      is zero, the key is definitively absent — the whole miss
      touched one bucket.  Counters saturate at 127 and stick
      (a saturated counter is never decremented), so the filter can
      go stale-positive but never false-negative.
    - {b BFS kicks}: when both candidate buckets are full, a
      breadth-first search over alternate buckets (each bucket
      visited at most once, at most {!bfs_budget} queue entries)
      finds the shortest chain of displacements that frees a slot.
    - {b Stash}: if the BFS exhausts its budget the key goes to a
      {!stash_capacity}-entry stash, scanned only after both buckets
      miss {e and} the filter said the class might have overflowed.
      So the worst-case lookup is 2 buckets + the stash, always.

    Growth is stop-the-world doubling (triggered at 15/16 projected
    load or on stash overflow); there is no incremental drain here —
    bounded probes, not bounded mutations, are this backend's claim.
    With degenerate hash functions more keys can target one bucket
    pair than 2×8 slots + the stash can hold; inserting past that
    bound raises [Invalid_argument] after growth retries rather than
    looping forever (exercised by qcheck in test_demux.ml).

    See DESIGN.md section 15 and EXPERIMENTS.md E35. *)

val slots_per_bucket : int
(** 8 — the bucket tag vector is one 8-byte load. *)

val stash_capacity : int
(** 16 entries. *)

val bfs_budget : int
(** Upper bound on BFS queue entries (buckets examined) per insert;
    also bounds the displacement-chain length. *)

val default_hash1 : int -> int -> int
(** {!Flow_key.hash_words} — the same multiplicative hash every other
    backend and the parallel dispatcher use. *)

val default_hash2 : int -> int -> int
(** Independent pure-int mixer over the packed words (distinct odd
    multipliers + xor-shift finisher); allocation-free.  Exposed so
    {!Sim.Attack_workload} can craft bucket-pair collision floods. *)

val tag_of_hash : int -> int
(** Tag byte stored for (and scanned against) a key: bits 16..23 of
    the primary hash, remapped so 0 (empty) and 255 (dead) never
    appear; live tags land in 1..254.  The filter class is
    [tag_of_hash h land 7]. *)

val buckets_for : int -> int
(** Number of buckets a default-capacity table ends up with after
    inserting [n] keys (the 15/16 growth trigger replayed), so attack
    generators can aim at the mask the table will actually use. *)

module type S = sig
  type t

  val backend : string
  (** Storage backend name ("heap" / "offheap"). *)

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?resize:Flat_table.resize -> unit -> t
  (** {!Packed_table.S}-compatible constructor: [hash] overrides the
      primary hash only.  [resize] is accepted for interface
      compatibility and ignored — cuckoo growth is always
      stop-the-world doubling ({!resize_policy} reports
      [Doubling]). *)

  val create2 :
    ?hash1:(int -> int -> int) -> ?hash2:(int -> int -> int) ->
    ?initial_capacity:int -> unit -> t
  (** Full constructor; degenerate [hash1]/[hash2] pairs are how the
      tests force kick loops into the stash. *)

  val length : t -> int
  (** Resident keys, bucket slots + stash. *)

  val capacity : t -> int
  (** Bucket slots ([buckets t * 8]); the stash is extra. *)

  val resize_policy : t -> Flat_table.resize
  val resizes : t -> int

  val pending_migration : t -> int
  (** Always 0 — no incremental drain. *)

  val bytes : t -> int
  (** Slot storage + filter + stash + BFS scratch, in bytes. *)

  val find : t -> w0:int -> w1:int -> int
  (** @raise Not_found if the key is absent.  Allocation-free. *)

  val find_opt : t -> w0:int -> w1:int -> int option
  val mem : t -> w0:int -> w1:int -> bool

  val replace : t -> w0:int -> w1:int -> int -> unit
  (** Insert or update.  @raise Invalid_argument past the degenerate
      collision bound (see module doc). *)

  val remove : t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> int -> unit) -> t -> unit
  val fold : (w0:int -> w1:int -> int -> 'b -> 'b) -> t -> 'b -> 'b
  val clear : t -> unit

  val max_probe_length : t -> int
  (** Worst-case probe units any {e resident} key's lookup takes:
      1 per bucket scanned + 1 per stash entry examined.  Bounded by
      [2 + stash_len t] by construction. *)

  (* Cuckoo diagnostics. *)

  val buckets : t -> int
  val stash_len : t -> int

  val kicks : t -> int
  (** Cumulative displacements applied by BFS unwinds. *)

  val stash_spills : t -> int
  (** Inserts that exhausted the BFS budget and fell into the
      stash. *)

  val last_probes : t -> int
  (** Probe units (buckets scanned + stash entries examined) of the
      most recent [find]/[find_opt]/[mem]/[probe_count] on this
      table.  A filter-short-circuited miss reports 1. *)

  val probe_count : t -> w0:int -> w1:int -> int
  (** Probe units a lookup of this key takes right now; read-only
      apart from {!last_probes}. *)
end

module Make (_ : Storage.S) : S

module Heap : S
module Offheap : S
