(* Open-addressing index keyed by packed flow words.

   Layout is struct-of-arrays so a probe touches cache-dense flat
   storage instead of pointer-chasing boxed buckets:

   - [tags]  : one byte per slot.  0 means empty; otherwise a non-zero
     8-bit digest of the hash ([(h lsr 16) land 0xFF], remapped 0->1).
     A probe compares the tag byte before the two key words, so almost
     every non-matching slot is rejected on a single byte load.
   - [hs]    : the full stored hash per occupied slot (so probe
     distances and resize need no re-hashing).
   - [w0s]/[w1s] : the inline packed key words ([Flow_key] layout).
   - [vals]  : the bindings.

   Collision policy is Robin-Hood displacement: an inserted entry
   steals the slot of any resident that is closer to its home bucket,
   which bounds probe-length variance and lets lookups stop early once
   they out-distance the resident.  Deletion is backward-shift (move
   displaced successors one slot back), so the table never holds
   tombstones and probe lengths do not degrade with churn.  Capacity
   is a power of two and doubles at 7/8 load. *)

type 'a t = {
  mutable tags : Bytes.t;
  mutable hs : int array;
  mutable w0s : int array;
  mutable w1s : int array;
  mutable vals : 'a option array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable size : int;
  hash : int -> int -> int;
}

let default_hash = Flow_key.hash_words

let min_capacity = 8

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(hash = default_hash) ?(initial_capacity = min_capacity) () =
  if initial_capacity < 0 then
    invalid_arg "Flat_table.create: initial_capacity < 0";
  let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
  { tags = Bytes.make cap '\000';
    hs = Array.make cap 0;
    w0s = Array.make cap 0;
    w1s = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    size = 0;
    hash }

let length t = t.size
let capacity t = t.mask + 1

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 then 1 else tag

(* Distance of the entry resident at [slot] from its home bucket. *)
let distance t slot = (slot - (t.hs.(slot) land t.mask)) land t.mask

(* Probe loop shared by [find]/[find_opt]/[mem]: returns the slot
   holding the key, or -1.  A top-level [rec] with explicit arguments
   (not a closure, not [ref] cells) so the hit path allocates
   nothing. *)
let rec probe t tag w0 w1 slot dist =
  let resident = Bytes.get_uint8 t.tags slot in
  if resident = 0 then -1
  else if resident = tag && t.w0s.(slot) = w0 && t.w1s.(slot) = w1 then slot
  else if distance t slot < dist then
    (* Robin-Hood invariant: had the key been present, it would have
       displaced this closer-to-home resident. *)
    -1
  else probe t tag w0 w1 ((slot + 1) land t.mask) (dist + 1)

let find_slot t w0 w1 =
  let h = t.hash w0 w1 in
  probe t (tag_of_hash h) w0 w1 (h land t.mask) 0

let find t ~w0 ~w1 =
  let slot = find_slot t w0 w1 in
  if slot < 0 then raise Not_found
  else
    match t.vals.(slot) with
    | Some v -> v
    | None -> assert false (* occupied slots always carry a binding *)

let find_opt t ~w0 ~w1 =
  let slot = find_slot t w0 w1 in
  if slot < 0 then None else t.vals.(slot)

let mem t ~w0 ~w1 = find_slot t w0 w1 >= 0

(* Robin-Hood insertion of a key known to be absent: walk from the
   home slot, swapping the carried entry with any resident closer to
   its own home, until an empty slot absorbs the carry. *)
let insert_fresh t h w0 w1 v =
  let tag = ref (tag_of_hash h) in
  let h = ref h and w0 = ref w0 and w1 = ref w1 and v = ref v in
  let slot = ref (!h land t.mask) in
  let dist = ref 0 in
  let continue = ref true in
  while !continue do
    let resident = Bytes.get_uint8 t.tags !slot in
    if resident = 0 then begin
      Bytes.set_uint8 t.tags !slot !tag;
      t.hs.(!slot) <- !h;
      t.w0s.(!slot) <- !w0;
      t.w1s.(!slot) <- !w1;
      t.vals.(!slot) <- Some !v;
      continue := false
    end
    else begin
      let resident_dist = distance t !slot in
      if resident_dist < !dist then begin
        (* Swap: the resident is richer (closer to home); it yields
           the slot and we carry it onward. *)
        let h' = t.hs.(!slot) and w0' = t.w0s.(!slot)
        and w1' = t.w1s.(!slot) in
        let v' =
          match t.vals.(!slot) with Some v -> v | None -> assert false
        in
        Bytes.set_uint8 t.tags !slot !tag;
        t.hs.(!slot) <- !h;
        t.w0s.(!slot) <- !w0;
        t.w1s.(!slot) <- !w1;
        t.vals.(!slot) <- Some !v;
        tag := tag_of_hash h';
        h := h';
        w0 := w0';
        w1 := w1';
        v := v';
        dist := resident_dist
      end;
      slot := (!slot + 1) land t.mask;
      incr dist
    end
  done;
  t.size <- t.size + 1

let grow t =
  let old_tags = t.tags and old_hs = t.hs and old_w0s = t.w0s
  and old_w1s = t.w1s and old_vals = t.vals in
  let old_cap = t.mask + 1 in
  let cap = old_cap * 2 in
  t.tags <- Bytes.make cap '\000';
  t.hs <- Array.make cap 0;
  t.w0s <- Array.make cap 0;
  t.w1s <- Array.make cap 0;
  t.vals <- Array.make cap None;
  t.mask <- cap - 1;
  t.size <- 0;
  for slot = 0 to old_cap - 1 do
    if Bytes.get_uint8 old_tags slot <> 0 then
      let v = match old_vals.(slot) with Some v -> v | None -> assert false in
      insert_fresh t old_hs.(slot) old_w0s.(slot) old_w1s.(slot) v
  done

let replace t ~w0 ~w1 v =
  let slot = find_slot t w0 w1 in
  if slot >= 0 then t.vals.(slot) <- Some v
  else begin
    (* Double at 7/8 load. *)
    if (t.size + 1) * 8 > (t.mask + 1) * 7 then grow t;
    insert_fresh t (t.hash w0 w1) w0 w1 v
  end

let remove t ~w0 ~w1 =
  let slot = find_slot t w0 w1 in
  if slot >= 0 then begin
    (* Backward-shift deletion: pull each displaced successor one slot
       towards its home until a slot is empty or home (distance 0), so
       no tombstone is left behind. *)
    let i = ref slot in
    let continue = ref true in
    while !continue do
      let next = (!i + 1) land t.mask in
      if Bytes.get_uint8 t.tags next = 0 || distance t next = 0 then begin
        Bytes.set_uint8 t.tags !i 0;
        t.vals.(!i) <- None;
        continue := false
      end
      else begin
        Bytes.set_uint8 t.tags !i (Bytes.get_uint8 t.tags next);
        t.hs.(!i) <- t.hs.(next);
        t.w0s.(!i) <- t.w0s.(next);
        t.w1s.(!i) <- t.w1s.(next);
        t.vals.(!i) <- t.vals.(next);
        i := next
      end
    done;
    t.size <- t.size - 1
  end

let iter f t =
  for slot = 0 to t.mask do
    if Bytes.get_uint8 t.tags slot <> 0 then
      match t.vals.(slot) with
      | Some v -> f ~w0:t.w0s.(slot) ~w1:t.w1s.(slot) v
      | None -> assert false
  done

let fold f t init =
  let acc = ref init in
  iter (fun ~w0 ~w1 v -> acc := f ~w0 ~w1 v !acc) t;
  !acc

let clear t =
  Bytes.fill t.tags 0 (Bytes.length t.tags) '\000';
  Array.fill t.vals 0 (Array.length t.vals) None;
  t.size <- 0

(* Longest probe sequence currently in the table — exposed for tests
   and diagnostics (Robin Hood keeps this small and low-variance). *)
let max_probe_length t =
  let worst = ref 0 in
  for slot = 0 to t.mask do
    if Bytes.get_uint8 t.tags slot <> 0 then
      let d = distance t slot in
      if d > !worst then worst := d
  done;
  !worst
