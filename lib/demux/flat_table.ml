(* Open-addressing index keyed by packed flow words.

   Layout is struct-of-arrays so a probe touches cache-dense flat
   storage instead of pointer-chasing boxed buckets:

   - [tags]  : one byte per slot.  0 means empty; otherwise a non-zero
     8-bit digest of the hash ([(h lsr 16) land 0xFF], remapped 0->1).
     A probe compares the tag byte before the two key words, so almost
     every non-matching slot is rejected on a single byte load.
   - [hs]    : the full stored hash per occupied slot (so probe
     distances and resize need no re-hashing).
   - [w0s]/[w1s] : the inline packed key words ([Flow_key] layout).
   - [vals]  : the bindings.

   Collision policy is Robin-Hood displacement: an inserted entry
   steals the slot of any resident that is closer to its home bucket,
   which bounds probe-length variance and lets lookups stop early once
   they out-distance the resident.  Deletion in the live region is
   backward-shift (move displaced successors one slot back), so the
   table never holds tombstones and probe lengths do not degrade with
   churn.  Capacity is a power of two and grows at 7/8 load.

   Growth comes in two flavours ([resize]):

   - [Incremental] (the default): when the trigger fires, the full
     arrays become the frozen [old] region and a fresh region of twice
     the capacity becomes [cur].  Every subsequent mutation migrates a
     bounded number of entries (and visits a bounded number of slots)
     from [old] into [cur], so no single insert ever pays the O(N)
     rebuild; lookups probe [cur] then [old] while the drain is in
     flight.  The old region never moves an entry once the drain
     starts: migrated (and user-removed) slots are marked dead with a
     reserved tag byte, keeping their stored hash so probe-distance
     arithmetic — and therefore Robin-Hood early termination — still
     works on the frozen layout.  A dead mark costs O(1) where a
     backward shift out of a 7/8-full region costs a whole
     displacement run, which is precisely the tail the incremental
     policy exists to remove (E31); the region is garbage the moment
     the drain ends, so the tombstone objection (probe degradation
     under churn) does not apply to it.
   - [Doubling]: the original stop-the-world copy, kept behind the flag
     so differential tests can race the two policies against each
     other.

   Drain-completes-before-next-trigger argument: growth C -> 2C starts
   with at most 7C/8 entries to migrate, and the next trigger cannot
   fire before [length] reaches 7C/4 — at least 7C/8 further inserts,
   each migrating up to [migration_entries] (>= 1) entries.  The
   defensive [drain_old] in [begin_grow] covers adversarial
   interleavings anyway (it is a no-op when the budget maths holds). *)

type resize = Doubling | Incremental

type 'a region = {
  tags : Bytes.t;
  hs : int array;
  w0s : int array;
  w1s : int array;
  vals : 'a option array;
  mask : int; (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

type 'a t = {
  mutable cur : 'a region;
  mutable old : 'a region option;
      (* the pre-growth region still draining, oldest entries first *)
  mutable migrate_pos : int;
      (* next old-region slot the drain will inspect (mod capacity) *)
  mutable resizes : int;
  resize : resize;
  hash : int -> int -> int;
}

let default_hash = Flow_key.hash_words

let min_capacity = 8

(* Per-mutation drain budget: at most [migration_entries] entries are
   moved and at most [migration_slot_budget] old-region slots are
   inspected, so a mutation's resize tax is O(1) even when the old
   region is sparse (long empty or dead runs cost slot visits, not
   moves).  One entry per mutation would already finish the drain
   before the next growth trigger (the old region holds L = 7C/8
   entries at the trigger and at least L inserts arrive before the
   doubled table refills to its own trigger), but the budget is set
   higher on purpose: while the drain is in flight, every inserted
   key also pays an absent-key probe through the frozen, 7/8-full old
   region, so the tail is minimized by finishing the drain quickly —
   a handful of dead-mark moves per mutation is cheap now that
   migration does no backward shifting (E31). *)
let migration_entries = 4
let migration_slot_budget = 32

(* Tag byte for a dead old-region slot: distinct from 0 (empty) and
   from every live tag ([tag_of_hash] lands in 1..254).  Dead slots
   keep their stored hash so probe distances still read correctly,
   but can never match a lookup. *)
let dead_tag = 255

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let make_region cap =
  { tags = Bytes.make cap '\000';
    hs = Array.make cap 0;
    w0s = Array.make cap 0;
    w1s = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    count = 0 }

let create ?(hash = default_hash) ?(initial_capacity = min_capacity)
    ?(resize = Incremental) () =
  if initial_capacity < 0 then
    invalid_arg "Flat_table.create: initial_capacity < 0";
  let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
  { cur = make_region cap;
    old = None;
    migrate_pos = 0;
    resizes = 0;
    resize;
    hash }

let length t =
  t.cur.count + (match t.old with Some o -> o.count | None -> 0)

let capacity t = t.cur.mask + 1
let resize_policy t = t.resize
let resizes t = t.resizes
let pending_migration t = match t.old with Some o -> o.count | None -> 0

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 || tag = dead_tag then 1 else tag

(* Distance of the entry resident at [slot] from its home bucket. *)
let distance r slot = (slot - (r.hs.(slot) land r.mask)) land r.mask

(* Probe loop shared by [find]/[find_opt]/[mem]: returns the slot
   holding the key, or -1.  A top-level [rec] with explicit arguments
   (not a closure, not [ref] cells) so the hit path allocates
   nothing.  A dead slot ([dead_tag], old region only) never matches
   a lookup — [tag_of_hash] avoids 255 — but its retained hash keeps
   the distance comparison meaningful: the old region's layout is
   frozen when the drain starts, so every displacement relation that
   held then still holds, dead or alive. *)
let rec probe r tag w0 w1 slot dist =
  let resident = Bytes.get_uint8 r.tags slot in
  if resident = 0 then -1
  else if resident = tag && r.w0s.(slot) = w0 && r.w1s.(slot) = w1 then slot
  else if distance r slot < dist then
    (* Robin-Hood invariant: had the key been present, it would have
       displaced this closer-to-home resident. *)
    -1
  else probe r tag w0 w1 ((slot + 1) land r.mask) (dist + 1)

let region_slot r h tag w0 w1 = probe r tag w0 w1 (h land r.mask) 0

let value_at r slot =
  match r.vals.(slot) with
  | Some v -> v
  | None -> assert false (* occupied slots always carry a binding *)

let find t ~w0 ~w1 =
  let h = t.hash w0 w1 in
  let tag = tag_of_hash h in
  let slot = region_slot t.cur h tag w0 w1 in
  if slot >= 0 then value_at t.cur slot
  else
    match t.old with
    | None -> raise Not_found
    | Some o ->
      let slot = region_slot o h tag w0 w1 in
      if slot >= 0 then value_at o slot else raise Not_found

let find_opt t ~w0 ~w1 =
  let h = t.hash w0 w1 in
  let tag = tag_of_hash h in
  let slot = region_slot t.cur h tag w0 w1 in
  if slot >= 0 then t.cur.vals.(slot)
  else
    match t.old with
    | None -> None
    | Some o ->
      let slot = region_slot o h tag w0 w1 in
      if slot >= 0 then o.vals.(slot) else None

let mem t ~w0 ~w1 =
  let h = t.hash w0 w1 in
  let tag = tag_of_hash h in
  region_slot t.cur h tag w0 w1 >= 0
  || (match t.old with
     | None -> false
     | Some o -> region_slot o h tag w0 w1 >= 0)

(* Robin-Hood insertion of a key known to be absent from [r]: walk from
   the home slot, swapping the carried entry with any resident closer
   to its own home, until an empty slot absorbs the carry. *)
let insert_fresh r h w0 w1 v =
  let tag = ref (tag_of_hash h) in
  let h = ref h and w0 = ref w0 and w1 = ref w1 and v = ref v in
  let slot = ref (!h land r.mask) in
  let dist = ref 0 in
  let continue = ref true in
  while !continue do
    let resident = Bytes.get_uint8 r.tags !slot in
    if resident = 0 then begin
      Bytes.set_uint8 r.tags !slot !tag;
      r.hs.(!slot) <- !h;
      r.w0s.(!slot) <- !w0;
      r.w1s.(!slot) <- !w1;
      r.vals.(!slot) <- Some !v;
      continue := false
    end
    else begin
      let resident_dist = distance r !slot in
      if resident_dist < !dist then begin
        (* Swap: the resident is richer (closer to home); it yields
           the slot and we carry it onward. *)
        let h' = r.hs.(!slot) and w0' = r.w0s.(!slot)
        and w1' = r.w1s.(!slot) in
        let v' =
          match r.vals.(!slot) with Some v -> v | None -> assert false
        in
        Bytes.set_uint8 r.tags !slot !tag;
        r.hs.(!slot) <- !h;
        r.w0s.(!slot) <- !w0;
        r.w1s.(!slot) <- !w1;
        r.vals.(!slot) <- Some !v;
        tag := tag_of_hash h';
        h := h';
        w0 := w0';
        w1 := w1';
        v := v';
        dist := resident_dist
      end;
      slot := (!slot + 1) land r.mask;
      incr dist
    end
  done;
  r.count <- r.count + 1

(* Backward-shift deletion of the entry at [slot]: pull each displaced
   successor one slot towards its home until a slot is empty or home
   (distance 0), so no tombstone is left behind. *)
let backshift_remove r slot =
  let i = ref slot in
  let continue = ref true in
  while !continue do
    let next = (!i + 1) land r.mask in
    if Bytes.get_uint8 r.tags next = 0 || distance r next = 0 then begin
      Bytes.set_uint8 r.tags !i 0;
      r.vals.(!i) <- None;
      continue := false
    end
    else begin
      Bytes.set_uint8 r.tags !i (Bytes.get_uint8 r.tags next);
      r.hs.(!i) <- r.hs.(next);
      r.w0s.(!i) <- r.w0s.(next);
      r.w1s.(!i) <- r.w1s.(next);
      r.vals.(!i) <- r.vals.(next);
      i := next
    end
  done;
  r.count <- r.count - 1

let finish_drain t =
  t.old <- None;
  t.migrate_pos <- 0

(* Mark an old-region slot dead: O(1), no displacement run.  The
   stored hash stays behind for probe-distance arithmetic; only the
   binding is released.  The guard keeps [pending_migration]
   (= [o.count]) from ever going negative: both callers probe for a
   live slot first, but a double dead-mark — say an eviction driven
   through a wrapper racing a plain remove to the same old-region
   slot — would make the drain's [o.count = 0] termination test
   unreachable and wedge the resize forever; fail loudly instead. *)
let kill_slot o slot =
  if o.count <= 0 || Bytes.get_uint8 o.tags slot = 0
     || Bytes.get_uint8 o.tags slot = dead_tag
  then
    invalid_arg
      "Flat_table: dead-marking a non-live old-region slot \
       (pending_migration accounting would go negative)";
  Bytes.set_uint8 o.tags slot dead_tag;
  o.vals.(slot) <- None;
  o.count <- o.count - 1

(* One bounded drain step.  The old region's layout is frozen —
   migration marks slots dead instead of backshifting — so the cursor
   sweeps each slot exactly once and never wraps: every live entry
   sits where it sat when the drain began. *)
let migrate t =
  match t.old with
  | None -> ()
  | Some o ->
    let moved = ref 0 and visited = ref 0 in
    let finished = ref (o.count = 0) in
    while
      (not !finished)
      && !moved < migration_entries
      && !visited < migration_slot_budget
    do
      let p = t.migrate_pos land o.mask in
      incr visited;
      let tag = Bytes.get_uint8 o.tags p in
      if tag = 0 || tag = dead_tag then t.migrate_pos <- t.migrate_pos + 1
      else begin
        let h = o.hs.(p) and w0 = o.w0s.(p) and w1 = o.w1s.(p) in
        let v = value_at o p in
        kill_slot o p;
        t.migrate_pos <- t.migrate_pos + 1;
        insert_fresh t.cur h w0 w1 v;
        incr moved
      end;
      if o.count = 0 then finished := true
    done;
    if !finished then finish_drain t

let rec drain_old t =
  match t.old with
  | None -> ()
  | Some _ ->
    migrate t;
    drain_old t

let begin_grow t =
  t.resizes <- t.resizes + 1;
  match t.resize with
  | Doubling ->
    let old = t.cur in
    t.cur <- make_region ((old.mask + 1) * 2);
    for slot = 0 to old.mask do
      if Bytes.get_uint8 old.tags slot <> 0 then
        insert_fresh t.cur old.hs.(slot) old.w0s.(slot) old.w1s.(slot)
          (value_at old slot)
    done
  | Incremental ->
    (* Unreachable in practice while the budget maths in the header
       holds; kept so a future budget tweak degrades to a full drain
       instead of stacking a third region. *)
    drain_old t;
    t.old <- Some t.cur;
    t.migrate_pos <- 0;
    t.cur <- make_region ((t.cur.mask + 1) * 2)

let replace t ~w0 ~w1 v =
  if t.resize = Incremental then migrate t;
  let h = t.hash w0 w1 in
  let tag = tag_of_hash h in
  let slot = region_slot t.cur h tag w0 w1 in
  if slot >= 0 then t.cur.vals.(slot) <- Some v
  else begin
    let old_slot =
      match t.old with
      | None -> -1
      | Some o -> region_slot o h tag w0 w1
    in
    if old_slot >= 0 then
      (match t.old with
      | Some o -> o.vals.(old_slot) <- Some v
      | None -> assert false)
    else begin
      (* Grow at 7/8 load of the live region. *)
      if (length t + 1) * 8 > (t.cur.mask + 1) * 7 then begin_grow t;
      insert_fresh t.cur h w0 w1 v
    end
  end

let remove t ~w0 ~w1 =
  if t.resize = Incremental then migrate t;
  let h = t.hash w0 w1 in
  let tag = tag_of_hash h in
  let slot = region_slot t.cur h tag w0 w1 in
  if slot >= 0 then backshift_remove t.cur slot
  else
    match t.old with
    | None -> ()
    | Some o ->
      let slot = region_slot o h tag w0 w1 in
      if slot >= 0 then begin
        (* Dead-mark, don't backshift: the frozen layout is what keeps
           old-region probes and the drain cursor correct. *)
        kill_slot o slot;
        if o.count = 0 then finish_drain t
      end

let iter_region f r =
  for slot = 0 to r.mask do
    let tag = Bytes.get_uint8 r.tags slot in
    if tag <> 0 && tag <> dead_tag then
      match r.vals.(slot) with
      | Some v -> f ~w0:r.w0s.(slot) ~w1:r.w1s.(slot) v
      | None -> assert false
  done

let iter f t =
  iter_region f t.cur;
  match t.old with None -> () | Some o -> iter_region f o

let fold f t init =
  let acc = ref init in
  iter (fun ~w0 ~w1 v -> acc := f ~w0 ~w1 v !acc) t;
  !acc

let clear t =
  Bytes.fill t.cur.tags 0 (Bytes.length t.cur.tags) '\000';
  Array.fill t.cur.vals 0 (Array.length t.cur.vals) None;
  t.cur.count <- 0;
  t.old <- None;
  t.migrate_pos <- 0

(* Longest probe sequence currently in the table — exposed for tests
   and diagnostics (Robin Hood keeps this small and low-variance). *)
let max_probe_length t =
  let worst = ref 0 in
  let scan r =
    for slot = 0 to r.mask do
      let tag = Bytes.get_uint8 r.tags slot in
      if tag <> 0 && tag <> dead_tag then begin
        let d = distance r slot in
        if d > !worst then worst := d
      end
    done
  in
  scan t.cur;
  (match t.old with None -> () | Some o -> scan o);
  !worst
