(** Flat open-addressing index over packed flow keys.

    A cache-friendly replacement for the [Hashtbl]-backed
    {!Flow_table}: keys are the two packed words of {!Flow_key} stored
    inline in flat arrays (struct-of-arrays), with a one-byte tag per
    slot that rejects almost every non-matching probe on a single byte
    compare before the key words are touched.  Collisions use
    Robin-Hood displacement (bounded probe variance, early lookup
    termination); deletion is backward-shift, so the table is
    tombstone-free and probe lengths do not rot under churn.  Capacity
    is a power of two and grows at 7/8 load.

    Growth policy is selectable ({!resize}).  The default,
    {!Incremental}, never rebuilds in one shot: at the trigger the full
    arrays become a draining old region and a fresh double-size region
    goes live, then every mutation migrates a bounded handful of
    entries across, so the per-insert latency tail stays flat while a
    resize is in flight (EXPERIMENTS.md E31, DESIGN.md section 12).
    {!Doubling} is the original stop-the-world copy, kept for
    differential testing.

    [find] on a present key performs zero minor-heap allocations —
    this is the index the demultiplexers' hot paths sit on
    (DESIGN.md section 10). *)

type 'a t

type resize =
  | Doubling      (** Stop-the-world rebuild at the growth trigger. *)
  | Incremental   (** Bounded migration per mutation; no O(N) insert. *)

val create :
  ?hash:(int -> int -> int) -> ?initial_capacity:int -> ?resize:resize ->
  unit -> 'a t
(** [create ()] makes an empty table.  [hash] defaults to
    {!Flow_key.hash_words}; override only in tests (it must be fixed
    for the table's lifetime).  [initial_capacity] is rounded up to a
    power of two, minimum 8.  [resize] (default {!Incremental}) is the
    growth policy, fixed for the table's lifetime.
    @raise Invalid_argument if [initial_capacity < 0]. *)

val length : 'a t -> int
(** Resident entries, counting both regions during a drain. *)

val capacity : 'a t -> int
(** Capacity of the live region (the one accepting inserts). *)

val resize_policy : 'a t -> resize

val resizes : 'a t -> int
(** Growth triggers fired since creation (either policy). *)

val pending_migration : 'a t -> int
(** Entries still waiting in the draining old region; 0 when no
    incremental resize is in flight (always 0 under {!Doubling}). *)

val find : 'a t -> w0:int -> w1:int -> 'a
(** Allocation-free lookup by packed key words; probes the live region
    first, then the draining region if a resize is in flight.
    @raise Not_found if the key is absent. *)

val find_opt : 'a t -> w0:int -> w1:int -> 'a option

val mem : 'a t -> w0:int -> w1:int -> bool

val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
(** Insert, or overwrite the existing binding.  Under {!Incremental},
    also migrates up to a constant number of entries from the draining
    region first. *)

val remove : 'a t -> w0:int -> w1:int -> unit
(** Remove the binding if present (backward-shift; no tombstones).
    Under {!Incremental}, also migrates up to a constant number of
    entries from the draining region first. *)

val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit
(** Visits both regions during a drain; order is unspecified. *)

val fold : (w0:int -> w1:int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val clear : 'a t -> unit
(** Empty the table, keeping the live region's current capacity and
    abandoning any in-flight drain. *)

val max_probe_length : 'a t -> int
(** Longest probe distance of any resident entry in either region — a
    diagnostic for tests; Robin Hood keeps it small. *)
