(** Flat open-addressing index over packed flow keys.

    A cache-friendly replacement for the [Hashtbl]-backed
    {!Flow_table}: keys are the two packed words of {!Flow_key} stored
    inline in flat arrays (struct-of-arrays), with a one-byte tag per
    slot that rejects almost every non-matching probe on a single byte
    compare before the key words are touched.  Collisions use
    Robin-Hood displacement (bounded probe variance, early lookup
    termination); deletion is backward-shift, so the table is
    tombstone-free and probe lengths do not rot under churn.  Capacity
    is a power of two and doubles at 7/8 load.

    [find] on a present key performs zero minor-heap allocations —
    this is the index the demultiplexers' hot paths sit on
    (DESIGN.md section 10). *)

type 'a t

val create : ?hash:(int -> int -> int) -> ?initial_capacity:int -> unit -> 'a t
(** [create ()] makes an empty table.  [hash] defaults to
    {!Flow_key.hash_words}; override only in tests (it must be fixed
    for the table's lifetime).  [initial_capacity] is rounded up to a
    power of two, minimum 8.
    @raise Invalid_argument if [initial_capacity < 0]. *)

val length : 'a t -> int
val capacity : 'a t -> int

val find : 'a t -> w0:int -> w1:int -> 'a
(** Allocation-free lookup by packed key words.
    @raise Not_found if the key is absent. *)

val find_opt : 'a t -> w0:int -> w1:int -> 'a option

val mem : 'a t -> w0:int -> w1:int -> bool

val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
(** Insert, or overwrite the existing binding. *)

val remove : 'a t -> w0:int -> w1:int -> unit
(** Remove the binding if present (backward-shift; no tombstones). *)

val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit

val fold : (w0:int -> w1:int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val clear : 'a t -> unit
(** Empty the table, keeping its current capacity. *)

val max_probe_length : 'a t -> int
(** Longest probe distance of any resident entry — a diagnostic for
    tests; Robin Hood keeps it small. *)
