(* Packed immediate representation of the 96-bit flow key.

   Each half of the key — (addr, port) for one endpoint — is 48 bits,
   which fits comfortably in a 63-bit OCaml immediate int:

     word = addr (32 bits) lsl 16  lor  port (16 bits)

   so the whole 4-tuple is two unboxed ints and every operation below
   is straight-line integer arithmetic: no minor-heap traffic on the
   per-packet receive path (DESIGN.md section 10). *)

type t = { w0 : int; w1 : int }

(* The packing above needs 48 significant bits per word, and
   [addr_int]'s [Int32.to_int ... land 0xFFFFFFFF] sign-extension
   cleanup is only correct when the native int is wider than 32 bits.
   On a 32-bit platform (Sys.int_size = 31) or in JS (32-bit floats'
   53-bit ints aside, jsoo gives 32) the [lsl 16] would silently
   truncate the address — refuse to start rather than mis-demultiplex:
   every table in lib/demux keys on these words. *)
let () =
  if Sys.int_size < 63 then
    failwith
      (Printf.sprintf
         "Flow_key: packed 48-bit flow words require 63-bit native ints, \
          but Sys.int_size = %d on this platform (32-bit and js_of_ocaml \
          runtimes are unsupported)"
         Sys.int_size)

let addr_int a = Int32.to_int (Packet.Ipv4.addr_to_int32 a) land 0xFFFFFFFF

let word_of_endpoint (e : Packet.Flow.endpoint) =
  (addr_int e.Packet.Flow.addr lsl 16) lor e.Packet.Flow.port

let w0_of_flow (flow : Packet.Flow.t) = word_of_endpoint flow.Packet.Flow.local
let w1_of_flow (flow : Packet.Flow.t) = word_of_endpoint flow.Packet.Flow.remote

let of_flow flow = { w0 = w0_of_flow flow; w1 = w1_of_flow flow }

let endpoint_of_word w =
  Packet.Flow.endpoint
    (Packet.Ipv4.addr_of_int32 (Int32.of_int (w lsr 16)))
    (w land 0xFFFF)

let to_flow t =
  Packet.Flow.v ~local:(endpoint_of_word t.w0) ~remote:(endpoint_of_word t.w1)

let w0 t = t.w0
let w1 t = t.w1
let make ~w0 ~w1 = { w0; w1 }

let equal a b = a.w0 = b.w0 && a.w1 = b.w1

let equal_words a ~w0 ~w1 = a.w0 = w0 && a.w1 = w1

(* A total order consistent with [equal].  Note this is the unsigned
   packed-word order, {e not} the same order as [Flow.compare] (which
   compares addresses as signed [Int32]s); only equality agrees. *)
let compare a b =
  let c = Int.compare a.w0 b.w0 in
  if c <> 0 then c else Int.compare a.w1 b.w1

let hash_words w0 w1 =
  Hashing.Hashers.hash_words Hashing.Hashers.multiplicative w0 w1

let hash t = hash_words t.w0 t.w1

let pp ppf t = Packet.Flow.pp ppf (to_flow t)
