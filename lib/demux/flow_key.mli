(** Packed immediate flow keys.

    The paper's 96-bit demultiplexing key — (local addr, local port,
    remote addr, remote port) — packed into two OCaml immediate ints:

    {v
      w0 = local  addr (32 bits) lsl 16  lor  local  port (16 bits)
      w1 = remote addr (32 bits) lsl 16  lor  remote port (16 bits)
    v}

    48 significant bits per word, so both fit unboxed in 63-bit ints.
    Equality, comparison and hashing are O(1) integer arithmetic with
    no allocation, unlike {!Packet.Flow.to_key_bytes} which builds a
    fresh 12-byte string per call.  Hashing is bit-identical to
    hashing the canonical key bytes (asserted by qcheck in
    test_demux.ml).

    Requires 63-bit native ints: loading this module on a platform
    with [Sys.int_size < 63] (32-bit, js_of_ocaml) raises [Failure]
    at startup instead of silently truncating addresses in the
    [lsl 16] packing. *)

type t = private { w0 : int; w1 : int }
(** The packed key.  The record itself is boxed — cold paths (table
    snapshots, debugging) may hold one; the hot path passes [w0]/[w1]
    as bare ints via {!w0_of_flow}/{!w1_of_flow} and never builds
    a [t]. *)

val w0_of_flow : Packet.Flow.t -> int
(** Local endpoint packed word.  Allocation-free. *)

val w1_of_flow : Packet.Flow.t -> int
(** Remote endpoint packed word.  Allocation-free. *)

val of_flow : Packet.Flow.t -> t

val to_flow : t -> Packet.Flow.t
(** Round-trips: [to_flow (of_flow f)] is [Flow.equal] to [f]. *)

val w0 : t -> int
val w1 : t -> int

val make : w0:int -> w1:int -> t
(** Rebuild a key from packed words (as produced by
    {!w0_of_flow}/{!w1_of_flow}; bits above 48 must be zero). *)

val equal : t -> t -> bool

val equal_words : t -> w0:int -> w1:int -> bool
(** [equal_words t ~w0 ~w1] without building a second [t]. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}.  This is the unsigned
    packed-word order — {e not} the same order as
    {!Packet.Flow.compare}, which compares addresses as signed
    [Int32]s; only equality agrees between the two. *)

val hash : t -> int

val hash_words : int -> int -> int
(** [hash_words w0 w1] = [hash (make ~w0 ~w1)] without the box:
    the multiplicative hash of the packed words, bit-identical to
    [Hashers.hash multiplicative (Flow.to_key_bytes flow)] for the
    corresponding flow.  Allocation-free. *)

val pp : Format.formatter -> t -> unit
