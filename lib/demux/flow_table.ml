include Hashtbl.Make (struct
  type t = Packet.Flow.t

  let equal = Packet.Flow.equal

  (* Mix the packed key words instead of serialising and hashing a
     fresh 12-byte string per call. *)
  let hash flow =
    Hashtbl.hash
      ((Flow_key.w0_of_flow flow * 0x9E3779B1) lxor Flow_key.w1_of_flow flow)
end)
