type policy = Evict_lru | Reject_new

type config = {
  max_chain : int;
  max_total : int;
  chains : int;
  hasher : Hashing.Hashers.t;
  policy : policy;
}

let default_max_chain = 32
let default_max_total = 2048

let config ?(policy = Evict_lru) ?(max_chain = default_max_chain)
    ?(max_total = default_max_total) ?(chains = 1)
    ?(hasher = Hashing.Hashers.multiplicative) () =
  if max_chain <= 0 then invalid_arg "Guarded.config: max_chain <= 0";
  if max_total <= 0 then invalid_arg "Guarded.config: max_total <= 0";
  if chains <= 0 then invalid_arg "Guarded.config: chains <= 0";
  { max_chain; max_total; chains; hasher; policy }

(* Recency metadata carried in the guard's shadow chains: a logical
   timestamp bumped on every insert and every successful lookup. *)
type meta = { mutable tick : int }

type t = {
  cfg : config;
  buckets : meta Chain.t array;          (* front = most recent *)
  index : meta Chain.node Flow_table.t;
  mutable clock : int;
}

let create cfg =
  { cfg;
    buckets = Array.init cfg.chains (fun _ -> Chain.create ());
    index = Flow_table.create 64;
    clock = 0 }

let bucket_index t flow =
  Hashing.Hashers.bucket_flow t.cfg.hasher ~buckets:t.cfg.chains flow

let tracked t = Flow_table.length t.index

let occupancy t = Array.map Chain.length t.buckets

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let unlink t flow =
  match Flow_table.find_opt t.index flow with
  | None -> ()
  | Some node ->
    Chain.remove t.buckets.(bucket_index t flow) node;
    Flow_table.remove t.index flow

(* The least recently touched flow across all shadow chains.  Each
   chain keeps recency order, so only the tails compete: O(chains). *)
let global_lru t =
  Array.fold_left
    (fun best chain ->
      match Chain.tail_pcb chain with
      | None -> best
      | Some pcb -> (
        let age = pcb.Pcb.data.tick in
        match best with
        | Some (_, best_age) when best_age <= age -> best
        | Some _ | None -> Some (pcb.Pcb.flow, age)))
    None t.buckets

let chain_lru t bucket =
  match Chain.tail_pcb t.buckets.(bucket) with
  | None -> None
  | Some pcb -> Some pcb.Pcb.flow

(* Decide the fate of an insertion: [`Admit victims] means the caller
   must first evict [victims] from the underlying table (the guard has
   already forgotten them), [`Reject] means the insertion itself must
   be shed.  Mutates the guard state. *)
let admit t flow =
  if Flow_table.mem t.index flow then `Admit [] (* duplicate: inner decides *)
  else
    let bucket = bucket_index t flow in
    let chain_full = Chain.length t.buckets.(bucket) >= t.cfg.max_chain in
    let total_full = tracked t >= t.cfg.max_total in
    match t.cfg.policy with
    | Reject_new when chain_full || total_full -> `Reject
    | Reject_new | Evict_lru ->
      let victims = ref [] in
      let evict flow =
        unlink t flow;
        victims := flow :: !victims
      in
      if chain_full then
        Option.iter evict (chain_lru t bucket);
      while tracked t >= t.cfg.max_total do
        match global_lru t with
        | Some (flow, _) -> evict flow
        | None -> assert false (* max_total > 0 and the table is non-empty *)
      done;
      `Admit (List.rev !victims)

let note_inserted t flow =
  if not (Flow_table.mem t.index flow) then begin
    let pcb = Pcb.make ~id:0 ~flow { tick = tick t } in
    let node = Chain.push_front t.buckets.(bucket_index t flow) pcb in
    Flow_table.replace t.index flow node
  end

let note_touched t flow =
  match Flow_table.find_opt t.index flow with
  | None -> ()
  | Some node ->
    (Chain.pcb node).Pcb.data.tick <- tick t;
    Chain.move_to_front t.buckets.(bucket_index t flow) node

let note_removed t flow = unlink t flow
