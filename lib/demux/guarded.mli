(** Overload guard for PCB tables: bounded chains with LRU shedding.

    A hash-chained table degrades to the BSD linear scan when an
    adversary drives every flow into one chain (an
    algorithmic-complexity attack; cf. Cuckoo++, Le Scouarnec 2018).
    This module tracks recency per chain and decides, for each
    insertion, which resident flows must be shed so that no chain
    exceeds [max_chain] and the table never exceeds [max_total] —
    overload then costs throughput (evicted connections) instead of
    unbounded lookup time.

    The guard holds no PCBs itself; it shadows the population and
    plans evictions.  {!Registry.guard} wires it around any
    instantiated demultiplexer and charges the shed work to
    {!Lookup_stats} ([evictions] / [rejections]). *)

type policy =
  | Evict_lru    (** Shed the least-recently-seen flow to admit the new one. *)
  | Reject_new   (** Refuse the new flow (classic SYN-flood drop). *)

type config = {
  max_chain : int;            (** Bound on any one chain's population. *)
  max_total : int;            (** Bound on the whole table. *)
  chains : int;               (** Chain count mirrored from the guarded
                                  algorithm (1 for single-list tables). *)
  hasher : Hashing.Hashers.t; (** Hash mirrored from the guarded algorithm. *)
  policy : policy;
}

val default_max_chain : int
val default_max_total : int

val config :
  ?policy:policy -> ?max_chain:int -> ?max_total:int -> ?chains:int ->
  ?hasher:Hashing.Hashers.t -> unit -> config
(** Defaults: [Evict_lru], {!default_max_chain}, {!default_max_total},
    one chain, multiplicative hash.
    @raise Invalid_argument on non-positive bounds or chain count. *)

type t

val create : config -> t

val admit : t -> Packet.Flow.t -> [ `Admit of Packet.Flow.t list | `Reject ]
(** Plan the insertion of a new flow.  [`Admit victims] admits it
    provided the caller evicts [victims] from the underlying table
    first (the guard has already forgotten them); [`Reject] refuses
    the insertion ([Reject_new] policy at a bound).  Already-tracked
    flows are admitted with no victims. *)

val note_inserted : t -> Packet.Flow.t -> unit
(** The flow was inserted into the underlying table. *)

val note_touched : t -> Packet.Flow.t -> unit
(** The flow was found by a lookup: refresh its recency. *)

val note_removed : t -> Packet.Flow.t -> unit
(** The flow left the underlying table (protocol removal). *)

val tracked : t -> int
(** Flows currently shadowed. *)

val occupancy : t -> int array
(** Per-chain shadow population, for tests and reports. *)
