(* Index entry: the chain node plus its bucket, so [remove]/[note_send]
   never re-hash a flow the index already proved present. *)
type 'a entry = { node : 'a Chain.node; home : int }

type 'a t = {
  buckets : 'a Chain.t array;
  hasher : Hashing.Hashers.t;
  index : 'a entry Flat_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
}

let name = "hashed-mtf"

let create ?(chains = Sequent.default_chains)
    ?(hasher = Hashing.Hashers.multiplicative) () =
  if chains <= 0 then invalid_arg "Hashed_mtf.create: chains <= 0";
  { buckets = Array.init chains (fun _ -> Chain.create ()); hasher;
    index = Flat_table.create ~initial_capacity:64 ();
    stats = Lookup_stats.create (); next_id = 0 }

let chains t = Array.length t.buckets

(* Allocation-free bucket selection from the flow's fields. *)
let bucket_index t flow =
  Hashing.Hashers.bucket_flow t.hasher ~buckets:(Array.length t.buckets) flow

let insert t flow data =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  if Flat_table.mem t.index ~w0 ~w1 then
    invalid_arg "Hashed_mtf.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let home = bucket_index t flow in
  let node = Chain.push_front t.buckets.(home) pcb in
  Flat_table.replace t.index ~w0 ~w1 { node; home };
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  match Flat_table.find_opt t.index ~w0 ~w1 with
  | None -> None
  | Some { node; home } ->
    Chain.remove t.buckets.(home) node;
    Flat_table.remove t.index ~w0 ~w1;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  let chain = t.buckets.(bucket_index t flow) in
  match Chain.scan chain ~stats:t.stats flow with
  | Some node ->
    Chain.move_to_front chain node;
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
    Some pcb
  | None ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match
    Flat_table.find_opt t.index ~w0:(Flow_key.w0_of_flow flow)
      ~w1:(Flow_key.w1_of_flow flow)
  with
  | Some { node; _ } -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Flat_table.length t.index
let iter f t = Array.iter (fun chain -> Chain.iter f chain) t.buckets
