type t = {
  mutable lookups : int;
  mutable pcbs_examined : int;
  mutable cache_hits : int;
  mutable found : int;
  mutable not_found : int;
  mutable inserts : int;
  mutable removes : int;
  mutable evictions : int;
  mutable rejections : int;
  mutable batches : int;
  mutable max_examined : int;
  mutable current : int;      (* examinations charged to the open lookup *)
  mutable in_lookup : bool;
  (* Observability hooks, both opt-in: a [None] histogram and the
     shared disabled tracer cost one branch each per lookup, so
     counting discipline is identical with and without them (asserted
     in test_obs.ml, timed in bench's "obs" group). *)
  mutable histogram : Obs.Histogram.t option;
  (* Per-series split of the same distribution: hits and misses have
     very different probe shapes (a miss walks the full cluster / both
     cuckoo buckets), so E35's miss-heavy column reads the miss series
     directly instead of inferring it from mixed percentiles. *)
  mutable hit_histogram : Obs.Histogram.t option;
  mutable miss_histogram : Obs.Histogram.t option;
  mutable tracer : Obs.Trace.t;
}

let create () =
  { lookups = 0; pcbs_examined = 0; cache_hits = 0; found = 0; not_found = 0;
    inserts = 0; removes = 0; evictions = 0; rejections = 0; batches = 0;
    max_examined = 0; current = 0; in_lookup = false; histogram = None;
    hit_histogram = None; miss_histogram = None;
    tracer = Obs.Trace.disabled }

let set_histogram t histogram = t.histogram <- histogram
let histogram t = t.histogram

let set_series_histograms t ~hit ~miss =
  t.hit_histogram <- hit;
  t.miss_histogram <- miss

let hit_histogram t = t.hit_histogram
let miss_histogram t = t.miss_histogram
let set_tracer t tracer = t.tracer <- tracer
let tracer t = t.tracer

let begin_lookup t =
  assert (not t.in_lookup);
  t.in_lookup <- true;
  t.current <- 0;
  Obs.Trace.record t.tracer Obs.Trace.Lookup_begin 0 0

let examine t ?(count = 1) () =
  assert t.in_lookup;
  t.current <- t.current + count

let end_lookup t ~hit_cache ~found =
  assert t.in_lookup;
  t.in_lookup <- false;
  t.lookups <- t.lookups + 1;
  t.pcbs_examined <- t.pcbs_examined + t.current;
  if t.current > t.max_examined then t.max_examined <- t.current;
  if hit_cache then t.cache_hits <- t.cache_hits + 1;
  if found then t.found <- t.found + 1 else t.not_found <- t.not_found + 1;
  (match t.histogram with
  | Some h -> Obs.Histogram.record h t.current
  | None -> ());
  (match (if found then t.hit_histogram else t.miss_histogram) with
  | Some h -> Obs.Histogram.record h t.current
  | None -> ());
  Obs.Trace.record t.tracer Obs.Trace.Lookup_end t.current
    ((if found then 1 else 0) lor if hit_cache then 2 else 0);
  if hit_cache then Obs.Trace.record t.tracer Obs.Trace.Cache_hit t.current 0
  else if t.current > 1 then
    Obs.Trace.record t.tracer Obs.Trace.Chain_walk t.current 0

let note_insert t =
  t.inserts <- t.inserts + 1;
  Obs.Trace.record t.tracer Obs.Trace.Insert 0 0

let note_remove t =
  t.removes <- t.removes + 1;
  Obs.Trace.record t.tracer Obs.Trace.Remove 0 0

let note_eviction t =
  t.evictions <- t.evictions + 1;
  Obs.Trace.record t.tracer Obs.Trace.Eviction 0 0

let note_rejection t =
  t.rejections <- t.rejections + 1;
  Obs.Trace.record t.tracer Obs.Trace.Rejection 0 0

let note_batch t ~size =
  if size < 0 then invalid_arg "Lookup_stats.note_batch: size < 0";
  t.batches <- t.batches + 1;
  Obs.Trace.record t.tracer Obs.Trace.Batch size 0

type snapshot = {
  lookups : int;
  pcbs_examined : int;
  cache_hits : int;
  found : int;
  not_found : int;
  inserts : int;
  removes : int;
  evictions : int;
  rejections : int;
  batches : int;
  max_examined : int;
}

let snapshot (t : t) =
  { lookups = t.lookups; pcbs_examined = t.pcbs_examined;
    cache_hits = t.cache_hits; found = t.found; not_found = t.not_found;
    inserts = t.inserts; removes = t.removes; evictions = t.evictions;
    rejections = t.rejections; batches = t.batches;
    max_examined = t.max_examined }

let empty_snapshot =
  { lookups = 0; pcbs_examined = 0; cache_hits = 0; found = 0; not_found = 0;
    inserts = 0; removes = 0; evictions = 0; rejections = 0; batches = 0;
    max_examined = 0 }

let merge_snapshots snapshots =
  List.fold_left
    (fun acc s ->
      { lookups = acc.lookups + s.lookups;
        pcbs_examined = acc.pcbs_examined + s.pcbs_examined;
        cache_hits = acc.cache_hits + s.cache_hits;
        found = acc.found + s.found;
        not_found = acc.not_found + s.not_found;
        inserts = acc.inserts + s.inserts;
        removes = acc.removes + s.removes;
        evictions = acc.evictions + s.evictions;
        rejections = acc.rejections + s.rejections;
        batches = acc.batches + s.batches;
        max_examined = max acc.max_examined s.max_examined })
    empty_snapshot snapshots

let mean_examined s =
  if s.lookups = 0 then Float.nan
  else float_of_int s.pcbs_examined /. float_of_int s.lookups

let hit_rate s =
  if s.lookups = 0 then Float.nan
  else float_of_int s.cache_hits /. float_of_int s.lookups

let reset (t : t) =
  t.lookups <- 0;
  t.pcbs_examined <- 0;
  t.cache_hits <- 0;
  t.found <- 0;
  t.not_found <- 0;
  t.inserts <- 0;
  t.removes <- 0;
  t.evictions <- 0;
  t.rejections <- 0;
  t.batches <- 0;
  t.max_examined <- 0;
  t.current <- 0;
  t.in_lookup <- false;
  (* The histogram follows the counters (a post-warm-up reset must
     clear both); the tracer is a rolling log and keeps its events. *)
  (match t.histogram with
  | Some h -> Obs.Histogram.clear h
  | None -> ());
  (match t.hit_histogram with
  | Some h -> Obs.Histogram.clear h
  | None -> ());
  match t.miss_histogram with
  | Some h -> Obs.Histogram.clear h
  | None -> ()

let pp_snapshot ppf s =
  Format.fprintf ppf
    "@[<v>lookups=%d examined=%d (mean %.2f, max %d)@,\
     cache hits=%d (rate %.4f) found=%d not-found=%d@,\
     inserts=%d removes=%d evictions=%d rejections=%d batches=%d@]"
    s.lookups s.pcbs_examined (mean_examined s) s.max_examined s.cache_hits
    (hit_rate s) s.found s.not_found s.inserts s.removes s.evictions
    s.rejections s.batches
