(** Shared accounting for PCB lookups.

    The paper's figure of merit is "the expected number of PCBs
    searched" per inbound packet: every cache probe and every chain
    node compared counts as one PCB examined.  All algorithms charge
    their work through this one module so they cannot diverge in
    accounting discipline. *)

type t

val create : unit -> t

(** {1 Charging (called by algorithm implementations)} *)

val begin_lookup : t -> unit
val examine : t -> ?count:int -> unit -> unit
(** Charge [count] (default 1) PCB examinations to the current lookup. *)

val end_lookup : t -> hit_cache:bool -> found:bool -> unit
(** Close the current lookup; [hit_cache] records that a one-entry
    cache satisfied it, [found] that any PCB matched at all. *)

val note_insert : t -> unit
val note_remove : t -> unit

val note_eviction : t -> unit
(** A PCB was shed by an overload guard (see {!Guarded}), not removed
    by the protocol. *)

val note_rejection : t -> unit
(** An insertion was refused outright by an overload guard. *)

val note_batch : t -> size:int -> unit
(** A batched operation of [size] packets was issued against the
    structure under one lock acquisition (see [Parallel.Coarse] /
    [Parallel.Striped] [lookup_batch]).  Emits a [Batch] trace event
    carrying the size.
    @raise Invalid_argument if [size] is negative. *)

(** {1 Observability (opt-in)}

    Both hooks are off by default and cost one branch per lookup when
    off, so plain accounting is bit-identical with or without them. *)

val set_histogram : t -> Obs.Histogram.t option -> unit
(** Attach a histogram that receives each lookup's examined count at
    [end_lookup] time.  {!reset} clears it along with the counters. *)

val histogram : t -> Obs.Histogram.t option

val set_series_histograms :
  t -> hit:Obs.Histogram.t option -> miss:Obs.Histogram.t option -> unit
(** Attach per-outcome histograms: the lookup's examined count is
    additionally recorded into [hit] when the lookup found a PCB and
    into [miss] otherwise.  Orthogonal to {!set_histogram} (the
    combined series keeps recording); {!reset} clears all three.
    Misses are the series that matters under a SYN flood
    (EXPERIMENTS.md E35) — this makes them directly attributable
    instead of inferred from mixed percentiles. *)

val hit_histogram : t -> Obs.Histogram.t option
val miss_histogram : t -> Obs.Histogram.t option

val set_tracer : t -> Obs.Trace.t -> unit
(** Attach a tracer; lookups emit [Lookup_begin] / [Lookup_end]
    (payload: examined count; flag bits: found, cache hit) plus
    [Cache_hit] / [Chain_walk] / [Insert] / [Remove] / [Eviction] /
    [Rejection] events.  Pass {!Obs.Trace.disabled} to detach. *)

val tracer : t -> Obs.Trace.t

(** {1 Reading} *)

type snapshot = {
  lookups : int;
  pcbs_examined : int;       (** Total across all lookups. *)
  cache_hits : int;
  found : int;
  not_found : int;
  inserts : int;
  removes : int;
  evictions : int;           (** PCBs shed by an overload guard. *)
  rejections : int;          (** Insertions refused by an overload guard. *)
  batches : int;             (** Batched operations issued ({!note_batch}). *)
  max_examined : int;        (** Worst single lookup. *)
}

val snapshot : t -> snapshot

val merge_snapshots : snapshot list -> snapshot
(** Pointwise sum (max for [max_examined]) — used to aggregate
    per-stripe counters in the parallel demultiplexers. *)

val mean_examined : snapshot -> float
(** PCBs examined per lookup — the paper's metric.  [nan] if no
    lookups happened. *)

val hit_rate : snapshot -> float
(** Cache hits per lookup; [nan] if no lookups happened. *)

val reset : t -> unit
(** Zero all counters (e.g. after simulation warm-up). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
