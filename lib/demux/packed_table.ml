(* Flat_table's Robin-Hood + incremental-resize machinery, functored
   over Storage.S so the slot arrays can live off the OCaml heap.
   The algorithm is line-for-line the one in flat_table.ml (see the
   long header there for the displacement / dead-marking / drain
   arguments); differences are confined to:

   - slot access goes through the storage module's accessors (which
     compile to direct Bytes/Array/Bigarray loads in each instance);
   - values are bare ints, so there is no [vals : 'a option array] —
     occupancy is the tag byte alone, and no lane ever holds a
     pointer;
   - [kill_slot] assertion-checks the old-region accounting so
     [pending_migration] can never silently go negative (ISSUE 8
     satellite: a double dead-mark under a Guarded wrapper's eviction
     racing a user remove would otherwise wedge the drain-termination
     condition [o.count = 0]). *)

module type S = sig
  type t

  val backend : string

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?resize:Flat_table.resize -> unit -> t

  val length : t -> int
  val capacity : t -> int
  val resize_policy : t -> Flat_table.resize
  val resizes : t -> int
  val pending_migration : t -> int
  val bytes : t -> int
  val find : t -> w0:int -> w1:int -> int
  val find_opt : t -> w0:int -> w1:int -> int option
  val mem : t -> w0:int -> w1:int -> bool
  val replace : t -> w0:int -> w1:int -> int -> unit
  val remove : t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> int -> unit) -> t -> unit
  val fold : (w0:int -> w1:int -> int -> 'b -> 'b) -> t -> 'b -> 'b
  val clear : t -> unit
  val max_probe_length : t -> int
  val probe_count : t -> w0:int -> w1:int -> int
end

let default_hash = Flow_key.hash_words
let min_capacity = 8
let migration_entries = 4
let migration_slot_budget = 32
let dead_tag = Storage.dead_tag

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

module Make (St : Storage.S) : S = struct
  type region = { store : St.t; mutable count : int }

  type t = {
    mutable cur : region;
    mutable old : region option;
    mutable migrate_pos : int;
    mutable resizes : int;
    resize : Flat_table.resize;
    hash : int -> int -> int;
  }

  let backend = St.backend
  let make_region cap = { store = St.create ~capacity:cap; count = 0 }

  let create ?(hash = default_hash) ?(initial_capacity = min_capacity)
      ?(resize = Flat_table.Incremental) () =
    if initial_capacity < 0 then
      invalid_arg "Packed_table.create: initial_capacity < 0";
    let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
    { cur = make_region cap;
      old = None;
      migrate_pos = 0;
      resizes = 0;
      resize;
      hash }

  let length t =
    t.cur.count + (match t.old with Some o -> o.count | None -> 0)

  let capacity t = St.capacity t.cur.store
  let resize_policy t = t.resize
  let resizes t = t.resizes
  let pending_migration t = match t.old with Some o -> o.count | None -> 0

  let bytes t =
    St.bytes t.cur.store
    + (match t.old with Some o -> St.bytes o.store | None -> 0)

  let tag_of_hash h =
    let tag = (h lsr 16) land 0xFF in
    if tag = 0 || tag = dead_tag then 1 else tag

  let[@inline] distance s slot = (slot - (St.hash s slot land St.mask s)) land St.mask s

  let rec probe s tag w0 w1 slot dist =
    let resident = St.tag s slot in
    if resident = 0 then -1
    else if resident = tag && St.w0 s slot = w0 && St.w1 s slot = w1 then slot
    else if distance s slot < dist then -1
    else probe s tag w0 w1 ((slot + 1) land St.mask s) (dist + 1)

  let region_slot s h tag w0 w1 = probe s tag w0 w1 (h land St.mask s) 0

  let find t ~w0 ~w1 =
    let h = t.hash w0 w1 in
    let tag = tag_of_hash h in
    let slot = region_slot t.cur.store h tag w0 w1 in
    if slot >= 0 then St.value t.cur.store slot
    else
      match t.old with
      | None -> raise Not_found
      | Some o ->
        let slot = region_slot o.store h tag w0 w1 in
        if slot >= 0 then St.value o.store slot else raise Not_found

  let find_opt t ~w0 ~w1 =
    match find t ~w0 ~w1 with v -> Some v | exception Not_found -> None

  let mem t ~w0 ~w1 =
    let h = t.hash w0 w1 in
    let tag = tag_of_hash h in
    region_slot t.cur.store h tag w0 w1 >= 0
    || (match t.old with
       | None -> false
       | Some o -> region_slot o.store h tag w0 w1 >= 0)

  let insert_fresh r h w0 w1 v =
    let s = r.store in
    let tag = ref (tag_of_hash h) in
    let h = ref h and w0 = ref w0 and w1 = ref w1 and v = ref v in
    let slot = ref (!h land St.mask s) in
    let dist = ref 0 in
    let continue = ref true in
    while !continue do
      let resident = St.tag s !slot in
      if resident = 0 then begin
        St.set_tag s !slot !tag;
        St.set_hash s !slot !h;
        St.set_words s !slot ~w0:!w0 ~w1:!w1;
        St.set_value s !slot !v;
        continue := false
      end
      else begin
        let resident_dist = distance s !slot in
        if resident_dist < !dist then begin
          let h' = St.hash s !slot and w0' = St.w0 s !slot
          and w1' = St.w1 s !slot in
          let v' = St.value s !slot in
          St.set_tag s !slot !tag;
          St.set_hash s !slot !h;
          St.set_words s !slot ~w0:!w0 ~w1:!w1;
          St.set_value s !slot !v;
          tag := tag_of_hash h';
          h := h';
          w0 := w0';
          w1 := w1';
          v := v';
          dist := resident_dist
        end;
        slot := (!slot + 1) land St.mask s;
        incr dist
      end
    done;
    r.count <- r.count + 1

  let backshift_remove r slot =
    let s = r.store in
    let i = ref slot in
    let continue = ref true in
    while !continue do
      let next = (!i + 1) land St.mask s in
      if St.tag s next = 0 || distance s next = 0 then begin
        St.set_tag s !i 0;
        St.set_value s !i 0;
        continue := false
      end
      else begin
        St.set_tag s !i (St.tag s next);
        St.set_hash s !i (St.hash s next);
        St.set_words s !i ~w0:(St.w0 s next) ~w1:(St.w1 s next);
        St.set_value s !i (St.value s next);
        i := next
      end
    done;
    r.count <- r.count - 1

  let finish_drain t =
    (match t.old with Some o -> St.free o.store | None -> ());
    t.old <- None;
    t.migrate_pos <- 0

  (* Dead-mark an old-region slot.  The accounting guard is the ISSUE 8
     satellite fix: both callers check the slot is live before calling,
     but if any future path double-kills (e.g. an eviction racing a
     remove through a wrapper), [o.count] going negative would make
     [pending_migration] negative and the drain's [o.count = 0]
     termination test unreachable — fail loudly instead. *)
  let kill_slot o slot =
    if o.count <= 0 || St.tag o.store slot = 0 || St.tag o.store slot = dead_tag
    then
      invalid_arg
        "Packed_table: dead-marking a non-live old-region slot \
         (pending_migration accounting would go negative)";
    St.set_tag o.store slot dead_tag;
    St.set_value o.store slot 0;
    o.count <- o.count - 1

  let migrate t =
    match t.old with
    | None -> ()
    | Some o ->
      let s = o.store in
      let moved = ref 0 and visited = ref 0 in
      let finished = ref (o.count = 0) in
      while
        (not !finished)
        && !moved < migration_entries
        && !visited < migration_slot_budget
      do
        let p = t.migrate_pos land St.mask s in
        incr visited;
        let tag = St.tag s p in
        if tag = 0 || tag = dead_tag then t.migrate_pos <- t.migrate_pos + 1
        else begin
          let h = St.hash s p and w0 = St.w0 s p and w1 = St.w1 s p in
          let v = St.value s p in
          kill_slot o p;
          t.migrate_pos <- t.migrate_pos + 1;
          insert_fresh t.cur h w0 w1 v;
          incr moved
        end;
        if o.count = 0 then finished := true
      done;
      if !finished then finish_drain t

  let rec drain_old t =
    match t.old with
    | None -> ()
    | Some _ ->
      migrate t;
      drain_old t

  let begin_grow t =
    t.resizes <- t.resizes + 1;
    match t.resize with
    | Flat_table.Doubling ->
      let old = t.cur in
      let s = old.store in
      t.cur <- make_region (St.capacity s * 2);
      for slot = 0 to St.mask s do
        if St.tag s slot <> 0 then
          insert_fresh t.cur (St.hash s slot) (St.w0 s slot) (St.w1 s slot)
            (St.value s slot)
      done;
      St.free s
    | Flat_table.Incremental ->
      drain_old t;
      t.old <- Some t.cur;
      t.migrate_pos <- 0;
      t.cur <- make_region (St.capacity t.cur.store * 2)

  let replace t ~w0 ~w1 v =
    if t.resize = Flat_table.Incremental then migrate t;
    let h = t.hash w0 w1 in
    let tag = tag_of_hash h in
    let slot = region_slot t.cur.store h tag w0 w1 in
    if slot >= 0 then St.set_value t.cur.store slot v
    else begin
      let old_slot =
        match t.old with
        | None -> -1
        | Some o -> region_slot o.store h tag w0 w1
      in
      if old_slot >= 0 then
        (match t.old with
        | Some o -> St.set_value o.store old_slot v
        | None -> assert false)
      else begin
        if (length t + 1) * 8 > St.capacity t.cur.store * 7 then begin_grow t;
        insert_fresh t.cur h w0 w1 v
      end
    end

  let remove t ~w0 ~w1 =
    if t.resize = Flat_table.Incremental then migrate t;
    let h = t.hash w0 w1 in
    let tag = tag_of_hash h in
    let slot = region_slot t.cur.store h tag w0 w1 in
    if slot >= 0 then backshift_remove t.cur slot
    else
      match t.old with
      | None -> ()
      | Some o ->
        let slot = region_slot o.store h tag w0 w1 in
        if slot >= 0 then begin
          kill_slot o slot;
          if o.count = 0 then finish_drain t
        end

  let iter_region f r =
    let s = r.store in
    for slot = 0 to St.mask s do
      let tag = St.tag s slot in
      if tag <> 0 && tag <> dead_tag then
        f ~w0:(St.w0 s slot) ~w1:(St.w1 s slot) (St.value s slot)
    done

  let iter f t =
    iter_region f t.cur;
    match t.old with None -> () | Some o -> iter_region f o

  let fold f t init =
    let acc = ref init in
    iter (fun ~w0 ~w1 v -> acc := f ~w0 ~w1 v !acc) t;
    !acc

  let clear t =
    St.reset t.cur.store;
    t.cur.count <- 0;
    (match t.old with Some o -> St.free o.store | None -> ());
    t.old <- None;
    t.migrate_pos <- 0

  (* Slots a [find] of this key inspects (terminating slot included),
     across both regions — the flat side of E35's probe accounting. *)
  let probe_count t ~w0 ~w1 =
    let h = t.hash w0 w1 in
    let tag = tag_of_hash h in
    let region_probes s =
      let rec go slot dist n =
        let resident = St.tag s slot in
        if resident = 0 then (n + 1, false)
        else if resident = tag && St.w0 s slot = w0 && St.w1 s slot = w1 then
          (n + 1, true)
        else if distance s slot < dist then (n + 1, false)
        else go ((slot + 1) land St.mask s) (dist + 1) (n + 1)
      in
      go (h land St.mask s) 0 0
    in
    let n, found = region_probes t.cur.store in
    if found then n
    else
      match t.old with
      | None -> n
      | Some o -> n + fst (region_probes o.store)

  let max_probe_length t =
    let worst = ref 0 in
    let scan r =
      let s = r.store in
      for slot = 0 to St.mask s do
        let tag = St.tag s slot in
        if tag <> 0 && tag <> dead_tag then begin
          let d = distance s slot in
          if d > !worst then worst := d
        end
      done
    in
    scan t.cur;
    (match t.old with None -> () | Some o -> scan o);
    !worst
end

module Heap = Make (Storage.Heap)
module Offheap = Make (Storage.Offheap)
