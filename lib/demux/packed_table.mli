(** {!Flat_table}'s machinery over pluggable {!Storage} backends.

    Same algorithm as {!Flat_table} — Robin-Hood open addressing over
    struct-of-arrays slots, one-byte tag filter, backward-shift
    deletes in the live region, and the two-region incremental-resize
    drain (frozen old region, dead-marking, bounded per-mutation
    migration) — but the slot storage is a {!Storage.S} parameter and
    the value lane is a bare [int], so the whole table can live in
    [Bigarray] buffers the GC never scans ({!Offheap}).  At 10M flows
    that removes ~400 MB of int arrays from every major-mark cycle
    (EXPERIMENTS.md E34, DESIGN.md section 14).

    The [int] value restriction is what makes off-heap storage sound
    without [Obj] tricks: every lane holds immediates.  Callers that
    need boxed values keep using {!Flat_table}; the demux subjects
    store PCB indexes or connection ids, which already fit. *)

module type S = sig
  type t

  val backend : string
  (** Storage backend name ("heap" / "offheap"). *)

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?resize:Flat_table.resize -> unit -> t
  (** Same contract as {!Flat_table.create}; values are [int]. *)

  val length : t -> int
  val capacity : t -> int
  val resize_policy : t -> Flat_table.resize
  val resizes : t -> int

  val pending_migration : t -> int
  (** Entries still waiting in the draining old region.  Never
      negative: the accounting is assertion-checked at every
      dead-mark (a double decrement raises instead of silently
      corrupting the drain-termination condition). *)

  val bytes : t -> int
  (** Resident slot-storage bytes across both regions (live + any
      draining old region) — the numerator of E34's bytes/flow. *)

  val find : t -> w0:int -> w1:int -> int
  (** @raise Not_found if the key is absent.  Allocation-free. *)

  val find_opt : t -> w0:int -> w1:int -> int option
  val mem : t -> w0:int -> w1:int -> bool
  val replace : t -> w0:int -> w1:int -> int -> unit
  val remove : t -> w0:int -> w1:int -> unit
  val iter : (w0:int -> w1:int -> int -> unit) -> t -> unit
  val fold : (w0:int -> w1:int -> int -> 'b -> 'b) -> t -> 'b -> 'b
  val clear : t -> unit
  val max_probe_length : t -> int

  val probe_count : t -> w0:int -> w1:int -> int
  (** Slots a [find] of this key inspects right now (the terminating
      empty/richer slot included, both regions during a drain);
      always ≥ 1.  Read-only diagnostic — the probe side of E35's
      flat-vs-cuckoo accounting. *)
end

module Make (_ : Storage.S) : S

module Heap : S
(** {!Flat_table}'s layout ([Bytes] + [int array]) behind the packed
    interface — the differential baseline E34 compares against. *)

module Offheap : S
(** [Bigarray]-backed slots: GC-invisible, constant marking cost
    regardless of flow count. *)
