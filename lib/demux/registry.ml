type spec =
  | Linear
  | Bsd
  | Mtf
  | Sr_cache
  | Sequent of { chains : int; hasher : Hashing.Hashers.t }
  | Hashed_mtf of { chains : int; hasher : Hashing.Hashers.t }
  | Conn_id of { capacity : int }
  | Resizing_hash
  | Splay
  | Lru_cache of { entries : int }
  | Cuckoo
  | Guarded of { spec : spec; max_chain : int; max_total : int }

let default_specs =
  [ Bsd; Mtf; Sr_cache;
    Sequent
      { chains = Sequent.default_chains;
        hasher = Hashing.Hashers.multiplicative } ]

let rec spec_name = function
  | Linear -> "linear"
  | Bsd -> "bsd"
  | Mtf -> "mtf"
  | Sr_cache -> "sr-cache"
  | Sequent { chains; _ } -> Printf.sprintf "sequent-%d" chains
  | Hashed_mtf { chains; _ } -> Printf.sprintf "hashed-mtf-%d" chains
  | Conn_id _ -> "conn-id"
  | Resizing_hash -> "resizing-hash"
  | Splay -> "splay"
  | Lru_cache { entries } -> Printf.sprintf "lru-cache-%d" entries
  | Cuckoo -> "cuckoo"
  | Guarded { spec; _ } -> "guarded-" ^ spec_name spec

let rec spec_of_string s =
  (* [Some (Ok spec)] on "<prefix><positive int>", [Some (Error _)] on
     a non-positive count (a misconfiguration worth naming, not an
     unknown algorithm), [None] when the prefix does not apply. *)
  let counted ~prefix ~what make =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n > 0 -> Some (Ok (make n))
      | Some n ->
        Some
          (Error
             (Printf.sprintf "%s: %s must be positive (got %d)" s what n))
      | None -> None
    else None
  in
  match s with
  | "linear" -> Ok Linear
  | "bsd" -> Ok Bsd
  | "mtf" -> Ok Mtf
  | "sr-cache" -> Ok Sr_cache
  | "conn-id" -> Ok (Conn_id { capacity = 65536 })
  | "resizing-hash" -> Ok Resizing_hash
  | "splay" -> Ok Splay
  | "lru-cache" -> Ok (Lru_cache { entries = 8 })
  | "cuckoo" -> Ok Cuckoo
  | "sequent" ->
    Ok
      (Sequent
         { chains = Sequent.default_chains;
           hasher = Hashing.Hashers.multiplicative })
  | "hashed-mtf" ->
    Ok
      (Hashed_mtf
         { chains = Sequent.default_chains;
           hasher = Hashing.Hashers.multiplicative })
  | s when String.length s > 8 && String.sub s 0 8 = "guarded-" -> (
    match spec_of_string (String.sub s 8 (String.length s - 8)) with
    | Ok spec ->
      Ok
        (Guarded
           { spec; max_chain = Guarded.default_max_chain;
             max_total = Guarded.default_max_total })
    | Error _ as e -> e)
  | s -> (
    let attempts =
      [ counted ~prefix:"lru-cache-" ~what:"cache entry count" (fun entries ->
            Lru_cache { entries });
        counted ~prefix:"sequent-" ~what:"chain count" (fun chains ->
            Sequent { chains; hasher = Hashing.Hashers.multiplicative });
        counted ~prefix:"hashed-mtf-" ~what:"chain count" (fun chains ->
            Hashed_mtf { chains; hasher = Hashing.Hashers.multiplicative }) ]
    in
    match List.find_map Fun.id attempts with
    | Some outcome -> outcome
    | None ->
      Error
        (Printf.sprintf
           "unknown algorithm %S (try: linear, bsd, mtf, sr-cache, \
            sequent[-H], hashed-mtf[-H], conn-id, resizing-hash, splay, \
            lru-cache[-K], cuckoo, guarded-<algorithm>)"
           s))

type 'a t = {
  name : string;
  insert : Packet.Flow.t -> 'a -> 'a Pcb.t;
  remove : Packet.Flow.t -> 'a Pcb.t option;
  lookup : ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option;
  note_send : Packet.Flow.t -> unit;
  stats : Lookup_stats.t;
  length : unit -> int;
  iter : ('a Pcb.t -> unit) -> unit;
}

(* Chain geometry the guard must mirror so its shadow chains agree
   with the guarded algorithm's real ones; list-shaped tables are one
   big chain. *)
let rec chain_geometry = function
  | Sequent { chains; hasher } | Hashed_mtf { chains; hasher } ->
    (chains, hasher)
  | Guarded { spec; _ } -> chain_geometry spec
  | Linear | Bsd | Mtf | Sr_cache | Conn_id _ | Resizing_hash | Splay
  | Lru_cache _ | Cuckoo ->
    (1, Hashing.Hashers.multiplicative)

let guard config inner =
  let g = Guarded.create config in
  let stats = inner.stats in
  let evict flow =
    match inner.remove flow with
    | Some _ -> Lookup_stats.note_eviction stats
    | None -> ()
  in
  { name = "guarded-" ^ inner.name;
    insert =
      (fun flow data ->
        match Guarded.admit g flow with
        | `Reject ->
          Lookup_stats.note_rejection stats;
          (* The caller gets a PCB, but the table never admits the
             flow: the overloaded server sheds the new connection. *)
          Pcb.make ~id:(-1) ~flow data
        | `Admit victims ->
          List.iter evict victims;
          let pcb = inner.insert flow data in
          Guarded.note_inserted g flow;
          pcb);
    remove =
      (fun flow ->
        match inner.remove flow with
        | Some _ as removed ->
          Guarded.note_removed g flow;
          removed
        | None -> None);
    lookup =
      (fun ?kind flow ->
        match inner.lookup ?kind flow with
        | Some _ as found ->
          Guarded.note_touched g flow;
          found
        | None -> None);
    note_send = inner.note_send;
    stats;
    length = inner.length;
    iter = inner.iter }

let rec create spec =
  let name = spec_name spec in
  match spec with
  | Linear ->
    let d = Linear.create () in
    { name; insert = Linear.insert d; remove = Linear.remove d;
      lookup = (fun ?kind flow -> Linear.lookup d ?kind flow);
      note_send = Linear.note_send d; stats = Linear.stats d;
      length = (fun () -> Linear.length d);
      iter = (fun f -> Linear.iter f d) }
  | Bsd ->
    let d = Bsd.create () in
    { name; insert = Bsd.insert d; remove = Bsd.remove d;
      lookup = (fun ?kind flow -> Bsd.lookup d ?kind flow);
      note_send = Bsd.note_send d; stats = Bsd.stats d;
      length = (fun () -> Bsd.length d); iter = (fun f -> Bsd.iter f d) }
  | Mtf ->
    let d = Mtf.create () in
    { name; insert = Mtf.insert d; remove = Mtf.remove d;
      lookup = (fun ?kind flow -> Mtf.lookup d ?kind flow);
      note_send = Mtf.note_send d; stats = Mtf.stats d;
      length = (fun () -> Mtf.length d); iter = (fun f -> Mtf.iter f d) }
  | Sr_cache ->
    let d = Sr_cache.create () in
    { name; insert = Sr_cache.insert d; remove = Sr_cache.remove d;
      lookup = (fun ?kind flow -> Sr_cache.lookup d ?kind flow);
      note_send = Sr_cache.note_send d; stats = Sr_cache.stats d;
      length = (fun () -> Sr_cache.length d);
      iter = (fun f -> Sr_cache.iter f d) }
  | Sequent { chains; hasher } ->
    let d = Sequent.create ~chains ~hasher () in
    { name; insert = Sequent.insert d; remove = Sequent.remove d;
      lookup = (fun ?kind flow -> Sequent.lookup d ?kind flow);
      note_send = Sequent.note_send d; stats = Sequent.stats d;
      length = (fun () -> Sequent.length d);
      iter = (fun f -> Sequent.iter f d) }
  | Hashed_mtf { chains; hasher } ->
    let d = Hashed_mtf.create ~chains ~hasher () in
    { name; insert = Hashed_mtf.insert d; remove = Hashed_mtf.remove d;
      lookup = (fun ?kind flow -> Hashed_mtf.lookup d ?kind flow);
      note_send = Hashed_mtf.note_send d; stats = Hashed_mtf.stats d;
      length = (fun () -> Hashed_mtf.length d);
      iter = (fun f -> Hashed_mtf.iter f d) }
  | Conn_id { capacity } ->
    let d = Conn_id.create ~capacity () in
    { name; insert = Conn_id.insert d; remove = Conn_id.remove d;
      lookup = (fun ?kind flow -> Conn_id.lookup d ?kind flow);
      note_send = Conn_id.note_send d; stats = Conn_id.stats d;
      length = (fun () -> Conn_id.length d);
      iter = (fun f -> Conn_id.iter f d) }
  | Resizing_hash ->
    let d = Resizing_hash.create () in
    { name; insert = Resizing_hash.insert d; remove = Resizing_hash.remove d;
      lookup = (fun ?kind flow -> Resizing_hash.lookup d ?kind flow);
      note_send = Resizing_hash.note_send d; stats = Resizing_hash.stats d;
      length = (fun () -> Resizing_hash.length d);
      iter = (fun f -> Resizing_hash.iter f d) }
  | Splay ->
    let d = Splay.create () in
    { name; insert = Splay.insert d; remove = Splay.remove d;
      lookup = (fun ?kind flow -> Splay.lookup d ?kind flow);
      note_send = Splay.note_send d; stats = Splay.stats d;
      length = (fun () -> Splay.length d); iter = (fun f -> Splay.iter f d) }
  | Lru_cache { entries } ->
    let d = Lru_cache.create ~entries () in
    { name; insert = Lru_cache.insert d; remove = Lru_cache.remove d;
      lookup = (fun ?kind flow -> Lru_cache.lookup d ?kind flow);
      note_send = Lru_cache.note_send d; stats = Lru_cache.stats d;
      length = (fun () -> Lru_cache.length d);
      iter = (fun f -> Lru_cache.iter f d) }
  | Cuckoo ->
    let d = Cuckoo.create () in
    { name; insert = Cuckoo.insert d; remove = Cuckoo.remove d;
      lookup = (fun ?kind flow -> Cuckoo.lookup d ?kind flow);
      note_send = Cuckoo.note_send d; stats = Cuckoo.stats d;
      length = (fun () -> Cuckoo.length d);
      iter = (fun f -> Cuckoo.iter f d) }
  | Guarded { spec = inner_spec; max_chain; max_total } ->
    let chains, hasher = chain_geometry inner_spec in
    guard
      (Guarded.config ~max_chain ~max_total ~chains ~hasher ())
      (create inner_spec)

let observe ?prefix obs t =
  let prefix =
    match prefix with Some p -> p | None -> "demux." ^ t.name
  in
  let snap field = fun () -> field (Lookup_stats.snapshot t.stats) in
  let counter name help field =
    Obs.Registry.register_counter obs ~help ~name:(prefix ^ "." ^ name)
      (snap field)
  in
  counter "lookups" "receive-path lookups" (fun s -> s.Lookup_stats.lookups);
  counter "pcbs_examined" "total PCBs examined across all lookups"
    (fun s -> s.Lookup_stats.pcbs_examined);
  counter "cache_hits" "lookups satisfied by a one-entry cache"
    (fun s -> s.Lookup_stats.cache_hits);
  counter "found" "lookups that matched a PCB" (fun s -> s.Lookup_stats.found);
  counter "not_found" "lookups that matched nothing"
    (fun s -> s.Lookup_stats.not_found);
  counter "inserts" "PCB insertions" (fun s -> s.Lookup_stats.inserts);
  counter "removes" "protocol PCB removals" (fun s -> s.Lookup_stats.removes);
  counter "evictions" "PCBs shed by an overload guard"
    (fun s -> s.Lookup_stats.evictions);
  counter "rejections" "insertions refused by an overload guard"
    (fun s -> s.Lookup_stats.rejections);
  Obs.Registry.register_gauge obs ~help:"PCBs resident in the table"
    ~name:(prefix ^ ".pcbs") (fun () -> float_of_int (t.length ()));
  let histogram =
    Obs.Registry.histogram obs ~units:"pcbs"
      ~help:"per-lookup examined-count distribution"
      (prefix ^ ".examined")
  in
  Lookup_stats.set_histogram t.stats (Some histogram);
  (* Hit/miss split of the same distribution: under a SYN flood the
     miss series is the whole story (EXPERIMENTS.md E35). *)
  let hit =
    Obs.Registry.histogram obs ~units:"pcbs"
      ~help:"examined-count distribution, lookups that matched"
      (prefix ^ ".examined_hit")
  in
  let miss =
    Obs.Registry.histogram obs ~units:"pcbs"
      ~help:"examined-count distribution, lookups that missed"
      (prefix ^ ".examined_miss")
  in
  Lookup_stats.set_series_histograms t.stats ~hit:(Some hit) ~miss:(Some miss)
