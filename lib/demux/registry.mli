(** Uniform access to every lookup algorithm.

    The simulator, benchmarks and CLI treat algorithms
    interchangeably; this module erases each implementation's concrete
    state behind a record of operations. *)

type spec =
  | Linear
  | Bsd
  | Mtf
  | Sr_cache
  | Sequent of { chains : int; hasher : Hashing.Hashers.t }
  | Hashed_mtf of { chains : int; hasher : Hashing.Hashers.t }
  | Conn_id of { capacity : int }
  | Resizing_hash
  | Splay
  | Lru_cache of { entries : int }
  | Cuckoo
      (** Bucketized cuckoo hashing with a negative-lookup filter
          ({!Cuckoo} / {!Cuckoo_table}): bounded worst-case probes,
          single-bucket SYN-flood misses. *)
  | Guarded of { spec : spec; max_chain : int; max_total : int }
      (** Which algorithm, with its configuration.  [Guarded] wraps
          another algorithm in an overload guard (see {!Guarded} and
          {!guard}) with LRU shedding at the given bounds. *)

val chain_geometry : spec -> int * Hashing.Hashers.t
(** The hash-chain structure a spec demultiplexes with: chain count
    and hasher for the chained algorithms (through [Guarded]
    wrappers), [(1, multiplicative)] for single-list tables.  This is
    what an algorithmic-complexity attacker needs to know to
    synthesize colliding flows. *)

val default_specs : spec list
(** The paper's four algorithms in presentation order: BSD, MTF,
    SR-cache, Sequent (19 chains, multiplicative hash). *)

val spec_name : spec -> string
(** Short stable name, e.g. ["sequent-19"]. *)

val spec_of_string : string -> (spec, string) result
(** Parse names like ["bsd"], ["mtf"], ["sequent-19"], ["sequent-100"],
    ["hashed-mtf-19"], ["conn-id"], ["resizing-hash"], ["splay"], ["lru-cache-K"],
    ["linear"], ["sr-cache"], ["cuckoo"], and ["guarded-<algorithm>"] (default
    bounds).  Inverse of {!spec_name} up to configuration that the
    name does not encode (hashers, guard bounds, non-positive counts
    are rejected with a specific message). *)

type 'a t = {
  name : string;
  insert : Packet.Flow.t -> 'a -> 'a Pcb.t;
  remove : Packet.Flow.t -> 'a Pcb.t option;
  lookup : ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option;
  note_send : Packet.Flow.t -> unit;
  stats : Lookup_stats.t;
  length : unit -> int;
  iter : ('a Pcb.t -> unit) -> unit;
}
(** One instantiated demultiplexer. *)

val create : spec -> 'a t
(** Instantiate an algorithm.
    @raise Invalid_argument on a nonsensical configuration (zero
    chains etc.). *)

val observe : ?prefix:string -> Obs.Registry.t -> 'a t -> unit
(** Register this demultiplexer's accounting into an observability
    registry under ["<prefix>."] (default ["demux.<name>."]): every
    {!Lookup_stats} counter as a polled counter, the resident PCB
    count as a gauge, and a ["<prefix>.examined"] histogram attached
    via {!Lookup_stats.set_histogram} so each lookup's examined count
    is recorded as a distribution (the paper's figure of merit, per
    packet instead of in aggregate), plus ["<prefix>.examined_hit"] /
    ["<prefix>.examined_miss"] per-outcome series via
    {!Lookup_stats.set_series_histograms}. *)

val guard : Guarded.config -> 'a t -> 'a t
(** [guard config inner] bounds [inner]'s population: insertions that
    would push a chain past [config.max_chain] or the table past
    [config.max_total] shed the least-recently-seen flow
    ([Evict_lru], counted in [stats] as evictions) or are refused
    ([Reject_new], counted as rejections; the returned PCB is not
    retained, so later lookups miss).  Lookup cost accounting is
    unchanged — the guard charges nothing.  [config.chains] /
    [config.hasher] should mirror [inner]'s chain geometry so the
    per-chain bound tracks the real chains. *)
