(* Index entry: the chain node plus its bucket at the current table
   size; [grow] rebuilds the index with fresh homes. *)
type 'a entry = { node : 'a Chain.node; home : int }

type 'a t = {
  mutable chains : 'a Chain.t array;
  hasher : Hashing.Hashers.t;
  mutable index : 'a entry Flat_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
  mutable population : int;
}

let name = "resizing-hash"

let create ?(initial_buckets = 16) ?(hasher = Hashing.Hashers.multiplicative)
    () =
  if initial_buckets <= 0 then
    invalid_arg "Resizing_hash.create: initial_buckets <= 0";
  { chains = Array.init initial_buckets (fun _ -> Chain.create ()); hasher;
    index = Flat_table.create ~initial_capacity:64 ();
    stats = Lookup_stats.create (); next_id = 0; population = 0 }

let buckets t = Array.length t.chains

(* Allocation-free bucket selection from the flow's fields. *)
let bucket_index t flow =
  Hashing.Hashers.bucket_flow t.hasher ~buckets:(Array.length t.chains) flow

let grow t =
  let old = t.chains in
  t.chains <- Array.init (2 * Array.length old) (fun _ -> Chain.create ());
  t.index <- Flat_table.create ~initial_capacity:(2 * t.population) ();
  Array.iter
    (fun chain ->
      Chain.iter
        (fun pcb ->
          let flow = pcb.Pcb.flow in
          let home = bucket_index t flow in
          let node = Chain.push_front t.chains.(home) pcb in
          Flat_table.replace t.index ~w0:(Flow_key.w0_of_flow flow)
            ~w1:(Flow_key.w1_of_flow flow) { node; home })
        chain)
    old

let insert t flow data =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  if Flat_table.mem t.index ~w0 ~w1 then
    invalid_arg "Resizing_hash.insert: duplicate flow";
  if t.population >= Array.length t.chains then grow t;
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let home = bucket_index t flow in
  let node = Chain.push_front t.chains.(home) pcb in
  Flat_table.replace t.index ~w0 ~w1 { node; home };
  t.population <- t.population + 1;
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  match Flat_table.find_opt t.index ~w0 ~w1 with
  | None -> None
  | Some { node; home } ->
    Chain.remove t.chains.(home) node;
    Flat_table.remove t.index ~w0 ~w1;
    t.population <- t.population - 1;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

let lookup t ?kind:_ flow =
  Lookup_stats.begin_lookup t.stats;
  match Chain.scan t.chains.(bucket_index t flow) ~stats:t.stats flow with
  | Some node ->
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
    Some pcb
  | None ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    None

let note_send t flow =
  match
    Flat_table.find_opt t.index ~w0:(Flow_key.w0_of_flow flow)
      ~w1:(Flow_key.w1_of_flow flow)
  with
  | Some { node; _ } -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = t.population
let iter f t = Array.iter (fun chain -> Chain.iter f chain) t.chains
