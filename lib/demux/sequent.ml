type 'a bucket = {
  chain : 'a Chain.t;
  mutable cache : 'a Chain.node option;
}

(* Index entry: the chain node plus the bucket it lives in, so
   [remove] never re-hashes the flow the index already proved
   present. *)
type 'a entry = { node : 'a Chain.node; home : int }

type 'a t = {
  buckets : 'a bucket array;
  hasher : Hashing.Hashers.t;
  index : 'a entry Flat_table.t;
  stats : Lookup_stats.t;
  mutable next_id : int;
}

let name = "sequent"
let default_chains = 19

let create ?(chains = default_chains) ?(hasher = Hashing.Hashers.multiplicative)
    () =
  if chains <= 0 then invalid_arg "Sequent.create: chains <= 0";
  { buckets =
      Array.init chains (fun _ -> { chain = Chain.create (); cache = None });
    hasher; index = Flat_table.create ~initial_capacity:64 ();
    stats = Lookup_stats.create (); next_id = 0 }

let chains t = Array.length t.buckets

(* Allocation-free: hashes the flow's fields directly instead of
   serialising a fresh 12-byte key per packet. *)
let bucket_index t flow =
  Hashing.Hashers.bucket_flow t.hasher ~buckets:(Array.length t.buckets) flow

let insert t flow data =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  if Flat_table.mem t.index ~w0 ~w1 then
    invalid_arg "Sequent.insert: duplicate flow";
  let pcb = Pcb.make ~id:t.next_id ~flow data in
  t.next_id <- t.next_id + 1;
  let home = bucket_index t flow in
  let bucket = t.buckets.(home) in
  let node = Chain.push_front bucket.chain pcb in
  Flat_table.replace t.index ~w0 ~w1 { node; home };
  Lookup_stats.note_insert t.stats;
  pcb

let remove t flow =
  let w0 = Flow_key.w0_of_flow flow and w1 = Flow_key.w1_of_flow flow in
  match Flat_table.find_opt t.index ~w0 ~w1 with
  | None -> None
  | Some { node; home } ->
    let bucket = t.buckets.(home) in
    (match bucket.cache with
    | Some cached when cached == node -> bucket.cache <- None
    | Some _ | None -> ());
    Chain.remove bucket.chain node;
    Flat_table.remove t.index ~w0 ~w1;
    Lookup_stats.note_remove t.stats;
    Some (Chain.pcb node)

(* Cache missed (or was cold): scan the chain.  Shared miss
   continuation for [lookup_pcb]. *)
let scan_chain t bucket flow =
  match Chain.scan bucket.chain ~stats:t.stats flow with
  | Some node as found ->
    (* Store the scan's own option cell rather than a fresh [Some]. *)
    bucket.cache <- found;
    let pcb = Chain.pcb node in
    Pcb.note_rx pcb;
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:true;
    pcb
  | None ->
    Lookup_stats.end_lookup t.stats ~hit_cache:false ~found:false;
    raise Not_found

let lookup_pcb t flow =
  Lookup_stats.begin_lookup t.stats;
  let bucket = t.buckets.(bucket_index t flow) in
  match bucket.cache with
  | Some node ->
    Lookup_stats.examine t.stats ();
    let pcb = Chain.pcb node in
    if Pcb.matches pcb flow then begin
      Pcb.note_rx pcb;
      Lookup_stats.end_lookup t.stats ~hit_cache:true ~found:true;
      pcb
    end
    else scan_chain t bucket flow
  | None -> scan_chain t bucket flow

let lookup t ?kind:_ flow =
  match lookup_pcb t flow with
  | pcb -> Some pcb
  | exception Not_found -> None

let note_send t flow =
  match
    Flat_table.find_opt t.index ~w0:(Flow_key.w0_of_flow flow)
      ~w1:(Flow_key.w1_of_flow flow)
  with
  | Some { node; _ } -> Pcb.note_tx (Chain.pcb node)
  | None -> ()

let stats t = t.stats
let length t = Flat_table.length t.index

let iter f t =
  Array.iter (fun bucket -> Chain.iter f bucket.chain) t.buckets

let chain_lengths t =
  Array.map (fun bucket -> Chain.length bucket.chain) t.buckets
