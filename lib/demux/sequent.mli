(** The Sequent algorithm (paper Section 3.4): [H] hash chains, each a
    linear list with its own single-entry last-found cache.

    Lookup hashes the flow to a chain, probes that chain's cache (one
    examination), and on a miss scans only that chain.  Expected cost
    under TPC/A is Equation 22 — about [N/2H], e.g. 53 PCBs for
    N = 2000, H = 19 versus BSD's 1001 — and the system administrator
    can buy performance with more chains (H = 100 gives < 9).  The
    installation default number of chains in Sequent's product was
    19. *)

type 'a t

val name : string

val default_chains : int
(** 19, the paper's installation default. *)

val create : ?chains:int -> ?hasher:Hashing.Hashers.t -> unit -> 'a t
(** Defaults: [chains = 19], [hasher = Hashing.Hashers.multiplicative].
    @raise Invalid_argument if [chains <= 0]. *)

val chains : 'a t -> int
val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Pcb.t option

val lookup : 'a t -> ?kind:Types.packet_kind -> Packet.Flow.t -> 'a Pcb.t option

val lookup_pcb : 'a t -> Packet.Flow.t -> 'a Pcb.t
(** Exception-style lookup: like {!lookup} but raising [Not_found] on
    a miss instead of boxing the result in an option.  A hit performs
    zero minor-heap allocations (asserted by a [Gc.minor_words] test),
    which is why the hot receive path prefers it.  Accounting is
    identical to {!lookup}. *)

val note_send : 'a t -> Packet.Flow.t -> unit
val stats : 'a t -> Lookup_stats.t
val length : 'a t -> int
val iter : ('a Pcb.t -> unit) -> 'a t -> unit

val chain_lengths : 'a t -> int array
(** Current occupancy of each chain, for balance diagnostics. *)
