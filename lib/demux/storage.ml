(* Slot storage backends for packed flow tables.  See storage.mli for
   the layout contract and packed_table.ml for the probing machinery
   that runs over it. *)

module type S = sig
  type t

  val backend : string
  val bytes_per_slot : int
  val create : capacity:int -> t
  val mask : t -> int
  val capacity : t -> int
  val bytes : t -> int
  val tag : t -> int -> int
  val set_tag : t -> int -> int -> unit
  val hash : t -> int -> int
  val set_hash : t -> int -> int -> unit
  val w0 : t -> int -> int
  val w1 : t -> int -> int
  val set_words : t -> int -> w0:int -> w1:int -> unit
  val value : t -> int -> int
  val set_value : t -> int -> int -> unit
  val copy : t -> t
  val reset : t -> unit
  val scrub : t -> unit
  val free : t -> unit
end

(* Tag values shared with Packed_table: 0 = empty, 255 = dead. *)
let dead_tag = 255

let check_capacity capacity =
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Storage.create: capacity must be a positive power of two"

(* -------------------------------------------------------------------
   Heap backend: Bytes + int arrays, the layout Flat_table has always
   used.  Everything stored is an immediate, so set_* never hits the
   write barrier, but the arrays themselves are major-heap blocks the
   GC must mark on every cycle. *)

module Heap = struct
  type t = {
    mutable tags : Bytes.t;
    mutable hs : int array;
    mutable w0s : int array;
    mutable w1s : int array;
    mutable vals : int array;
    mutable mask : int;
  }

  let backend = "heap"

  (* 1 tag byte + hash, w0, w1, value words. *)
  let bytes_per_slot = 1 + (4 * 8)

  let create ~capacity =
    check_capacity capacity;
    {
      tags = Bytes.make capacity '\000';
      hs = Array.make capacity 0;
      w0s = Array.make capacity 0;
      w1s = Array.make capacity 0;
      vals = Array.make capacity 0;
      mask = capacity - 1;
    }

  let mask t = t.mask
  let capacity t = t.mask + 1
  let bytes t = if t.mask = 0 then 0 else capacity t * bytes_per_slot
  let[@inline] tag t i = Char.code (Bytes.unsafe_get t.tags i)

  let[@inline] set_tag t i v =
    Bytes.unsafe_set t.tags i (Char.unsafe_chr v)

  let[@inline] hash t i = Array.unsafe_get t.hs i
  let[@inline] set_hash t i v = Array.unsafe_set t.hs i v
  let[@inline] w0 t i = Array.unsafe_get t.w0s i
  let[@inline] w1 t i = Array.unsafe_get t.w1s i

  let[@inline] set_words t i ~w0 ~w1 =
    Array.unsafe_set t.w0s i w0;
    Array.unsafe_set t.w1s i w1

  let[@inline] value t i = Array.unsafe_get t.vals i
  let[@inline] set_value t i v = Array.unsafe_set t.vals i v

  let copy t =
    {
      tags = Bytes.copy t.tags;
      hs = Array.copy t.hs;
      w0s = Array.copy t.w0s;
      w1s = Array.copy t.w1s;
      vals = Array.copy t.vals;
      mask = t.mask;
    }

  let reset t = Bytes.fill t.tags 0 (Bytes.length t.tags) '\000'

  let scrub t =
    Bytes.fill t.tags 0 (Bytes.length t.tags) (Char.chr dead_tag);
    Array.fill t.hs 0 (Array.length t.hs) 0;
    Array.fill t.w0s 0 (Array.length t.w0s) 0;
    Array.fill t.w1s 0 (Array.length t.w1s) 0;
    Array.fill t.vals 0 (Array.length t.vals) 0

  (* The shared sentinel's single slot stays empty (tag 0): a probe of
     freed storage computes [h land 0 = 0], reads tag 0, and misses. *)
  let sentinel =
    {
      tags = Bytes.make 1 '\000';
      hs = [| 0 |];
      w0s = [| 0 |];
      w1s = [| 0 |];
      vals = [| 0 |];
      mask = 0;
    }

  let free t =
    if t.mask <> 0 || t.tags != sentinel.tags then begin
      scrub t;
      t.tags <- sentinel.tags;
      t.hs <- sentinel.hs;
      t.w0s <- sentinel.w0s;
      t.w1s <- sentinel.w1s;
      t.vals <- sentinel.vals;
      t.mask <- 0
    end
end

(* -------------------------------------------------------------------
   Offheap backend: Bigarray.Array1 buffers.  Custom blocks whose
   payload lives outside the OCaml heap — the GC marks one small
   header per buffer regardless of capacity, and dropping the last
   reference releases the payload immediately (caml_ba_finalize runs
   free(3) from the custom-block finaliser, no sweep phase needed for
   the payload itself). *)

module Offheap = struct
  open Bigarray

  type tags_buf = (int, int8_unsigned_elt, c_layout) Array1.t
  type lane_buf = (int, int_elt, c_layout) Array1.t

  type t = {
    mutable tags : tags_buf;
    mutable hs : lane_buf;
    mutable w0s : lane_buf;
    mutable w1s : lane_buf;
    mutable vals : lane_buf;
    mutable mask : int;
  }

  let backend = "offheap"
  let bytes_per_slot = 1 + (4 * 8)

  let make_tags capacity : tags_buf =
    let b = Array1.create int8_unsigned c_layout capacity in
    Array1.fill b 0;
    b

  let make_lane capacity : lane_buf =
    let b = Array1.create int c_layout capacity in
    Array1.fill b 0;
    b

  let create ~capacity =
    check_capacity capacity;
    {
      tags = make_tags capacity;
      hs = make_lane capacity;
      w0s = make_lane capacity;
      w1s = make_lane capacity;
      vals = make_lane capacity;
      mask = capacity - 1;
    }

  let mask t = t.mask
  let capacity t = t.mask + 1
  let bytes t = if t.mask = 0 then 0 else capacity t * bytes_per_slot
  let[@inline] tag t i = Array1.unsafe_get t.tags i
  let[@inline] set_tag t i v = Array1.unsafe_set t.tags i v
  let[@inline] hash t i = Array1.unsafe_get t.hs i
  let[@inline] set_hash t i v = Array1.unsafe_set t.hs i v
  let[@inline] w0 t i = Array1.unsafe_get t.w0s i
  let[@inline] w1 t i = Array1.unsafe_get t.w1s i

  let[@inline] set_words t i ~w0 ~w1 =
    Array1.unsafe_set t.w0s i w0;
    Array1.unsafe_set t.w1s i w1

  let[@inline] value t i = Array1.unsafe_get t.vals i
  let[@inline] set_value t i v = Array1.unsafe_set t.vals i v

  let copy t =
    let c = capacity t in
    let copy_tags () =
      let b = Array1.create int8_unsigned c_layout c in
      Array1.blit t.tags b;
      b
    in
    let copy_lane (src : lane_buf) =
      let b = Array1.create int c_layout c in
      Array1.blit src b;
      b
    in
    {
      tags = copy_tags ();
      hs = copy_lane t.hs;
      w0s = copy_lane t.w0s;
      w1s = copy_lane t.w1s;
      vals = copy_lane t.vals;
      mask = t.mask;
    }

  let reset t = Array1.fill t.tags 0

  let scrub t =
    Array1.fill t.tags dead_tag;
    Array1.fill t.hs 0;
    Array1.fill t.w0s 0;
    Array1.fill t.w1s 0;
    Array1.fill t.vals 0

  let sentinel_tags : tags_buf = make_tags 1
  let sentinel_lane : lane_buf = make_lane 1

  let free t =
    if t.mask <> 0 || t.tags != sentinel_tags then begin
      scrub t;
      (* Severing these references is the eager part: the retired
         buffers' custom blocks lose their last root here, so the
         off-heap payload is returned to the allocator at the next
         collection of five small headers — not of [capacity] slots. *)
      t.tags <- sentinel_tags;
      t.hs <- sentinel_lane;
      t.w0s <- sentinel_lane;
      t.w1s <- sentinel_lane;
      t.vals <- sentinel_lane;
      t.mask <- 0
    end
end

let by_name = function
  | "heap" -> Some (module Heap : S)
  | "offheap" -> Some (module Offheap : S)
  | _ -> None
