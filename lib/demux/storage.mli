(** Slot storage backends for packed flow tables.

    A {!S} value is the raw storage of one open-addressing region:
    per-slot tag bytes, stored hashes, the two packed {!Flow_key}
    words, and one integer value lane — the struct-of-arrays layout
    {!Flat_table} probes, factored out so the {e same} table machinery
    ({!Packed_table}) can run over two physical layouts:

    - {!Heap}: [Bytes] + [int array], the original layout.  The arrays
      live on the OCaml heap, so at millions of flows every major GC
      cycle re-marks tens of millions of words that can never be
      collected.
    - {!Offheap}: [Bigarray.Array1] buffers.  Bigarrays are custom
      blocks whose payload lives outside the OCaml heap: the GC never
      scans a slot, marking cost is independent of the flow count, and
      {!S.free} severs the buffers eagerly so a retired multi-megabyte
      region is released the moment reclamation decides it is dead
      rather than whenever the collector next notices (DESIGN.md
      section 14).

    Both lanes hold only immediates (the packed key words are ints by
    construction, {!Flow_key}), so neither backend's stores go through
    the GC write barrier — [caml_modify] is never called on the hot
    path, heap or off-heap.

    All slot accessors are unchecked for speed: callers index with
    [h land mask t], which is in bounds by construction.  Requires a
    63-bit-int platform (guarded at startup by {!Flow_key}). *)

val dead_tag : int
(** The reserved tag byte (255) shared by {!S.scrub} and
    {!Packed_table}'s old-region dead-marking; live tags land in
    1..254. *)

module type S = sig
  type t

  val backend : string
  (** ["heap"] or ["offheap"] — used in metric and bench labels. *)

  val bytes_per_slot : int
  (** Physical bytes per slot: 1 tag byte + 3 words (hash, w0, w1) +
      1 value word = 33.  The packed-layout lower bound E34's
      bytes/flow gate is computed from. *)

  val create : capacity:int -> t
  (** Fresh all-empty storage; [capacity] must be a power of two. *)

  val mask : t -> int
  (** [capacity - 1]; 0 after {!free}. *)

  val capacity : t -> int

  val bytes : t -> int
  (** Resident storage bytes ([capacity * bytes_per_slot]); 0 after
      {!free}. *)

  val tag : t -> int -> int
  val set_tag : t -> int -> int -> unit
  val hash : t -> int -> int
  val set_hash : t -> int -> int -> unit
  val w0 : t -> int -> int
  val w1 : t -> int -> int
  val set_words : t -> int -> w0:int -> w1:int -> unit
  val value : t -> int -> int
  val set_value : t -> int -> int -> unit

  val copy : t -> t
  (** Deep copy (for copy-on-write publication). *)

  val reset : t -> unit
  (** Every tag back to 0 (empty); capacity unchanged. *)

  val scrub : t -> unit
  (** Reclamation poison: every tag set to the dead value (255),
      hashes and key words zeroed — any later probe of the region
      terminates and misses deterministically. *)

  val free : t -> unit
  (** Scrub, then sever the buffers: the storage drops to a shared
      one-slot empty sentinel with [mask t = 0], so the backing
      memory loses its last reference {e now} (for {!Offheap}, the
      custom blocks holding hundreds of megabytes at 10M flows)
      instead of living as long as whatever closure retired the
      region.  Any probe of freed storage lands in the sentinel's
      empty slot and misses.  Idempotent. *)
end

module Heap : S
module Offheap : S

val by_name : string -> (module S) option
(** [by_name "heap" / "offheap"]. *)
