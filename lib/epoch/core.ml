type retired = { stamp : int; free : unit -> unit }

type t = {
  global_epoch : int Atomic.t;
  slot_pool : Domain_slot.pool;
  lock : Mutex.t;  (* guards [retired] and the two counters below *)
  mutable retired : retired list;  (* newest first *)
  mutable retirements : int;
  mutable reclamations : int;
}

let create ?(max_readers = 64) () =
  { global_epoch = Atomic.make 1;
    slot_pool = Domain_slot.create_pool ~max_readers;
    lock = Mutex.create ();
    retired = [];
    retirements = 0;
    reclamations = 0 }

let epoch t = Atomic.get t.global_epoch
let global t = t.global_epoch
let pool t = t.slot_pool

let retire t free =
  Mutex.lock t.lock;
  t.retired <- { stamp = Atomic.get t.global_epoch; free } :: t.retired;
  t.retirements <- t.retirements + 1;
  Mutex.unlock t.lock

let reclaim t =
  Mutex.lock t.lock;
  (* Advance first: readers arriving from here on pin at the new
     epoch, so they can never extend the horizon below any stamp
     already on the list. *)
  ignore (Atomic.fetch_and_add t.global_epoch 1);
  let horizon = Domain_slot.min_pinned t.slot_pool in
  let freeable, kept =
    List.partition (fun r -> r.stamp < horizon) t.retired
  in
  t.retired <- kept;
  t.reclamations <- t.reclamations + List.length freeable;
  Mutex.unlock t.lock;
  (* Free closures run outside the lock: they may be arbitrarily
     expensive (scrubbing a region) and must not stall writers. *)
  List.iter (fun r -> r.free ()) freeable;
  List.length freeable

let pending t =
  Mutex.lock t.lock;
  let n = List.length t.retired in
  Mutex.unlock t.lock;
  n

let quiesce t =
  while
    ignore (reclaim t);
    pending t > 0
  do
    Domain.cpu_relax ()
  done

let pins t = Domain_slot.total_pins t.slot_pool

let retirements t =
  Mutex.lock t.lock;
  let n = t.retirements in
  Mutex.unlock t.lock;
  n

let reclamations t =
  Mutex.lock t.lock;
  let n = t.reclamations in
  Mutex.unlock t.lock;
  n

let register_obs ?(prefix = "epoch") obs t =
  let name suffix = prefix ^ "." ^ suffix in
  Obs.Registry.register_counter obs ~name:(name "pins")
    ~help:"read-side epoch pins across all reader slots" (fun () -> pins t);
  Obs.Registry.register_counter obs ~name:(name "retirements")
    ~help:"objects handed to retire (deferred free)" (fun () ->
      retirements t);
  Obs.Registry.register_counter obs ~name:(name "reclamations")
    ~help:"retired objects freed after their grace period" (fun () ->
      reclamations t);
  Obs.Registry.register_gauge obs ~name:(name "pending")
    ~help:"retired objects still awaiting a grace period" (fun () ->
      float_of_int (pending t));
  Obs.Registry.register_gauge obs ~name:(name "epoch")
    ~help:"current global epoch" (fun () -> float_of_int (epoch t));
  Obs.Registry.register_gauge obs ~name:(name "pinned_readers")
    ~help:"reader slots currently inside a read-side critical section"
    (fun () -> float_of_int (Domain_slot.pinned_count t.slot_pool))
