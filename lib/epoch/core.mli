(** The epoch/grace-period reclamation core.

    A reclamation domain owns a global epoch counter, a pool of reader
    slots ({!Domain_slot}), and a deferred-free list.  The protocol:

    - {b Readers} acquire a slot once, then bracket each read-side
      critical section with {!Domain_slot.pin} (one atomic store of
      the observed global epoch) and {!Domain_slot.unpin}.  They never
      take a lock.
    - {b Writers} unlink an object from every published pointer {e
      first}, then hand it to {!retire}.  The object is stamped with
      the current global epoch: no reader that pins {e after} the
      unlink can reach it.
    - {!reclaim} advances the global epoch and frees every retired
      object whose stamp is strictly below the oldest pinned epoch —
      a reader pinned at epoch [p] can only be holding objects that
      were still published at [p], i.e. retired at [p] or later.

    The retire list and counters are guarded by an internal mutex that
    only writers and reclaimers touch; the read side is untouched by
    it.  See DESIGN.md §13 for the sequential-consistency argument
    that makes the one-store pin safe against a concurrent reclaim. *)

type t

val create : ?max_readers:int -> unit -> t
(** A fresh reclamation domain (default [max_readers] 64).
    @raise Invalid_argument if [max_readers <= 0]. *)

val epoch : t -> int
(** The current global epoch (starts at 1, advanced by {!reclaim}). *)

val global : t -> int Atomic.t
(** The epoch counter itself — what readers pass to
    {!Domain_slot.pin}. *)

val pool : t -> Domain_slot.pool

val retire : t -> (unit -> unit) -> unit
(** Defer [free] until every reader that could still see the object
    has unpinned.  The object {b must} already be unreachable from
    every published pointer.  [free] runs at most once, from whichever
    thread's {!reclaim} (or {!quiesce}) crosses the grace period. *)

val reclaim : t -> int
(** Advance the global epoch, then free every retired object whose
    stamp precedes the oldest pinned epoch (all of them when no reader
    is pinned).  Returns how many were freed.  [free] closures run
    outside the internal lock. *)

val quiesce : t -> unit
(** Run {!reclaim} until the retire list is empty.  Blocks (spinning
    with [Domain.cpu_relax]) while any reader stays pinned below the
    retirement horizon — call it only when readers are guaranteed to
    make progress, e.g. at shutdown or between test phases. *)

val pending : t -> int
(** Retired objects not yet freed. *)

(** {1 Observability} *)

val pins : t -> int
(** Total read-side pins across all reader slots. *)

val retirements : t -> int
val reclamations : t -> int
(** Total objects handed to {!retire} / freed by {!reclaim}. *)

val register_obs : ?prefix:string -> Obs.Registry.t -> t -> unit
(** Polled counters [<prefix>.pins] / [.retirements] / [.reclamations]
    and gauges [.pending] / [.epoch] / [.pinned_readers] (default
    prefix ["epoch"]). *)
