type t = {
  pin : int Atomic.t;    (* 0 = quiescent; e > 0 = pinned at epoch e *)
  mutable depth : int;   (* pin nesting, owner domain only *)
  mutable pins : int;    (* total pin calls, owner domain only *)
  index : int;
}

type pool = {
  slots : t array;
  owned : bool Atomic.t array;
}

let create_pool ~max_readers =
  if max_readers <= 0 then
    invalid_arg "Domain_slot.create_pool: max_readers <= 0";
  { slots =
      Array.init max_readers (fun index ->
          { pin = Atomic.make 0; depth = 0; pins = 0; index });
    owned = Array.init max_readers (fun _ -> Atomic.make false) }

let capacity pool = Array.length pool.slots

let acquire pool =
  let n = Array.length pool.slots in
  let rec scan i =
    if i >= n then
      failwith
        (Printf.sprintf "Epoch.Domain_slot.acquire: all %d reader slots taken"
           n)
    else if Atomic.compare_and_set pool.owned.(i) false true then
      pool.slots.(i)
    else scan (i + 1)
  in
  scan 0

let release pool slot =
  if Atomic.get slot.pin <> 0 then
    invalid_arg "Epoch.Domain_slot.release: slot still pinned";
  slot.depth <- 0;
  Atomic.set pool.owned.(slot.index) false

let pin slot ~global =
  if slot.depth = 0 then Atomic.set slot.pin (Atomic.get global);
  slot.depth <- slot.depth + 1;
  slot.pins <- slot.pins + 1

let unpin slot =
  if slot.depth <= 0 then invalid_arg "Epoch.Domain_slot.unpin: not pinned";
  slot.depth <- slot.depth - 1;
  if slot.depth = 0 then Atomic.set slot.pin 0

let pinned_epoch slot = Atomic.get slot.pin
let depth slot = slot.depth

let min_pinned pool =
  Array.fold_left
    (fun acc slot ->
      let e = Atomic.get slot.pin in
      if e > 0 && e < acc then e else acc)
    max_int pool.slots

let pinned_count pool =
  Array.fold_left
    (fun acc slot -> if Atomic.get slot.pin > 0 then acc + 1 else acc)
    0 pool.slots

let total_pins pool =
  Array.fold_left (fun acc slot -> acc + slot.pins) 0 pool.slots
