(** Per-reader epoch pins.

    A {!pool} is a fixed array of reader slots.  Each reader domain
    acquires one slot (once, at registration) and thereafter announces
    its read-side critical sections by {e pinning}: publishing the
    epoch it observed into its slot with a single [Atomic.set].  A
    reclaimer scans the pool for the oldest pinned epoch; anything
    retired before that horizon is invisible to every present and
    future reader and can be freed.

    OCaml [Atomic] operations are sequentially consistent, which is
    what makes the one-store pin sound: the reclaimer's publish of a
    replacement region and the reader's pin store are totally ordered,
    so a reader whose pin the reclaimer did not see must load the
    {e new} region (see DESIGN.md §13 for the full argument).

    Pins nest: an inner {!pin} keeps the outermost pin's epoch (more
    conservative, still correct), so a pinned caller can safely invoke
    operations that pin internally.  All slot operations except
    {!acquire}/{!release} are lock-free and allocation-free. *)

type t
(** One reader slot.  Owned by a single domain; only {!min_pinned} and
    {!total_pins} read it from elsewhere. *)

type pool

val create_pool : max_readers:int -> pool
(** @raise Invalid_argument if [max_readers <= 0]. *)

val capacity : pool -> int

val acquire : pool -> t
(** Claim a free slot (lock-free CAS scan).
    @raise Failure when all [max_readers] slots are taken. *)

val release : pool -> t -> unit
(** Return a slot to the pool.  The slot must be unpinned. *)

val pin : t -> global:int Atomic.t -> unit
(** Enter a read-side critical section: publish the current value of
    [global] into the slot.  Nested calls retain the outer epoch. *)

val unpin : t -> unit
(** Leave the (innermost) read-side critical section.  The outermost
    [unpin] clears the slot, releasing the grace-period horizon. *)

val pinned_epoch : t -> int
(** [0] when not pinned, else the pinned epoch. *)

val depth : t -> int
(** Current pin nesting depth (owner-domain view). *)

val min_pinned : pool -> int
(** The oldest epoch any reader is currently pinned at, or [max_int]
    when no reader is pinned — the reclamation horizon. *)

val pinned_count : pool -> int
(** How many slots are currently pinned. *)

val total_pins : pool -> int
(** Total {!pin} calls across all slots, for observability.  Exact at
    quiescence; a racy (but monotone-per-slot) sum while readers run. *)
