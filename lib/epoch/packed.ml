(* Epoch.Table's copy-on-write protocol over Demux.Storage regions.
   See table.ml for the concurrency argument (immutable published
   regions, one writer mutex, retire-then-reclaim); the delta here is
   that a region is a Storage.S buffer of bare-int lanes, so:

   - the Offheap instance keeps all published flow state out of the
     OCaml heap (the GC marks five custom-block headers per region,
     not capacity*4 words), and
   - the retire closure ends with [St.free], which scrubs AND severs
     the buffers — off-heap memory is handed back to the allocator at
     reclaim time rather than at some later major-GC sweep.  Readers
     pinned before the publish can never observe the free: reclaim
     only runs the closure once every reader slot has advanced past
     the retirement epoch (Core's safety invariant, qcheck-verified
     in test_epoch.ml). *)

module type S = sig
  type t

  val backend : string

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?max_readers:int -> unit -> t

  val get : t -> w0:int -> w1:int -> default:int -> int
  val find_opt : t -> w0:int -> w1:int -> int option
  val mem : t -> w0:int -> w1:int -> bool
  val find_flow : t -> Packet.Flow.t -> int option
  val lookup_batch : t -> Packet.Flow.t array -> int
  val lookup_batch_keyed : t -> Packet.Flow.t array -> hashes:int array -> int
  val length : t -> int
  val iter : (w0:int -> w1:int -> int -> unit) -> t -> unit
  val replace : t -> w0:int -> w1:int -> int -> unit
  val remove : t -> w0:int -> w1:int -> unit
  val load : t -> (int * int * int) array -> unit
  val reclaim : t -> int
  val quiesce : t -> unit
  val pending : t -> int
  val stats : t -> Demux.Lookup_stats.snapshot
  val publishes : t -> int
  val capacity : t -> int
  val bytes : t -> int
  val lock_acquisitions : t -> int
  val register_obs : ?prefix:string -> Obs.Registry.t -> t -> unit
end

let min_capacity = 8
let scrub_tag = Demux.Storage.dead_tag

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 || tag = scrub_tag then 1 else tag

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

module Make (St : Demux.Storage.S) : S = struct
  (* [count] is mutated only while the region is private to the
     writer; once published the region is immutable until retired. *)
  type region = { store : St.t; mutable count : int }

  type reader = {
    slot : Domain_slot.t;
    stats : Demux.Lookup_stats.t;
  }

  type t = {
    core : Core.t;
    published : region Atomic.t;
    writer : Mutex.t;
    mutable writer_locks : int;  (* guarded by [writer] *)
    readers_lock : Mutex.t;
    mutable reader_locks : int;  (* guarded by [readers_lock] *)
    mutable readers : reader list;  (* guarded by [readers_lock] *)
    reader_key : reader option Domain.DLS.key;
    writer_stats : Demux.Lookup_stats.t;
    hash : int -> int -> int;
    mutable publish_count : int;  (* guarded by [writer] *)
  }

  let backend = St.backend
  let make_region cap = { store = St.create ~capacity:cap; count = 0 }

  let copy_region r = { store = St.copy r.store; count = r.count }

  let create ?(hash = Demux.Flow_key.hash_words)
      ?(initial_capacity = min_capacity) ?max_readers () =
    if initial_capacity < 0 then
      invalid_arg "Epoch.Packed.create: initial_capacity < 0";
    let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
    { core = Core.create ?max_readers ();
      published = Atomic.make (make_region cap);
      writer = Mutex.create ();
      writer_locks = 0;
      readers_lock = Mutex.create ();
      reader_locks = 0;
      readers = [];
      reader_key = Domain.DLS.new_key (fun () -> None);
      writer_stats = Demux.Lookup_stats.create ();
      hash;
      publish_count = 0 }

  let reader_of t =
    match Domain.DLS.get t.reader_key with
    | Some reader -> reader
    | None ->
      let slot = Domain_slot.acquire (Core.pool t.core) in
      let reader = { slot; stats = Demux.Lookup_stats.create () } in
      Mutex.lock t.readers_lock;
      t.reader_locks <- t.reader_locks + 1;
      t.readers <- reader :: t.readers;
      Mutex.unlock t.readers_lock;
      Domain.DLS.set t.reader_key (Some reader);
      reader

  (* {1 Probing} *)

  let[@inline] distance s slot =
    (slot - (St.hash s slot land St.mask s)) land St.mask s

  let rec probe s tag w0 w1 slot dist =
    let resident = St.tag s slot in
    if resident = 0 then -1
    else if resident = tag && St.w0 s slot = w0 && St.w1 s slot = w1 then slot
    else if distance s slot < dist then -1
    else probe s tag w0 w1 ((slot + 1) land St.mask s) (dist + 1)

  (* {1 Read path} *)

  let get t ~w0 ~w1 ~default =
    let reader = reader_of t in
    Demux.Lookup_stats.begin_lookup reader.stats;
    Demux.Lookup_stats.examine reader.stats ();
    Domain_slot.pin reader.slot ~global:(Core.global t.core);
    let r = Atomic.get t.published in
    let s = r.store in
    let h = t.hash w0 w1 in
    let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
    let result = if slot < 0 then default else St.value s slot in
    Domain_slot.unpin reader.slot;
    Demux.Lookup_stats.end_lookup reader.stats ~hit_cache:false
      ~found:(slot >= 0);
    result

  let mem t ~w0 ~w1 =
    let reader = reader_of t in
    Demux.Lookup_stats.begin_lookup reader.stats;
    Demux.Lookup_stats.examine reader.stats ();
    Domain_slot.pin reader.slot ~global:(Core.global t.core);
    let r = Atomic.get t.published in
    let s = r.store in
    let h = t.hash w0 w1 in
    let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
    Domain_slot.unpin reader.slot;
    Demux.Lookup_stats.end_lookup reader.stats ~hit_cache:false
      ~found:(slot >= 0);
    slot >= 0

  let find_opt t ~w0 ~w1 =
    let reader = reader_of t in
    Demux.Lookup_stats.begin_lookup reader.stats;
    Demux.Lookup_stats.examine reader.stats ();
    Domain_slot.pin reader.slot ~global:(Core.global t.core);
    let r = Atomic.get t.published in
    let s = r.store in
    let h = t.hash w0 w1 in
    let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
    let result = if slot < 0 then None else Some (St.value s slot) in
    Domain_slot.unpin reader.slot;
    Demux.Lookup_stats.end_lookup reader.stats ~hit_cache:false
      ~found:(slot >= 0);
    result

  let find_flow t flow =
    find_opt t
      ~w0:(Demux.Flow_key.w0_of_flow flow)
      ~w1:(Demux.Flow_key.w1_of_flow flow)

  let lookup_batch_hashed t flows ~hash_at =
    let n = Array.length flows in
    if n = 0 then 0
    else begin
      let reader = reader_of t in
      Demux.Lookup_stats.note_batch reader.stats ~size:n;
      Domain_slot.pin reader.slot ~global:(Core.global t.core);
      let r = Atomic.get t.published in
      let s = r.store in
      let found = ref 0 in
      for i = 0 to n - 1 do
        let flow = flows.(i) in
        let w0 = Demux.Flow_key.w0_of_flow flow in
        let w1 = Demux.Flow_key.w1_of_flow flow in
        let h = hash_at t i w0 w1 in
        Demux.Lookup_stats.begin_lookup reader.stats;
        Demux.Lookup_stats.examine reader.stats ();
        let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
        let hit = slot >= 0 in
        if hit then incr found;
        Demux.Lookup_stats.end_lookup reader.stats ~hit_cache:false ~found:hit
      done;
      Domain_slot.unpin reader.slot;
      !found
    end

  let lookup_batch t flows =
    lookup_batch_hashed t flows ~hash_at:(fun t _ w0 w1 -> t.hash w0 w1)

  let lookup_batch_keyed t flows ~hashes =
    if Array.length flows <> Array.length hashes then
      invalid_arg "Epoch.Packed.lookup_batch_keyed: length mismatch";
    lookup_batch_hashed t flows
      ~hash_at:(fun _ i _ _ -> Array.unsafe_get hashes i)

  let length t = (Atomic.get t.published).count

  let iter f t =
    let reader = reader_of t in
    Domain_slot.pin reader.slot ~global:(Core.global t.core);
    let r = Atomic.get t.published in
    let s = r.store in
    for slot = 0 to St.mask s do
      let tag = St.tag s slot in
      if tag <> 0 && tag <> scrub_tag then
        f ~w0:(St.w0 s slot) ~w1:(St.w1 s slot) (St.value s slot)
    done;
    Domain_slot.unpin reader.slot

  (* {1 Private-region mutation (pre-publish)} *)

  let rec place r slot dist h tag w0 w1 v =
    let s = r.store in
    let resident = St.tag s slot in
    if resident = 0 then begin
      St.set_tag s slot tag;
      St.set_hash s slot h;
      St.set_words s slot ~w0 ~w1;
      St.set_value s slot v;
      r.count <- r.count + 1
    end
    else begin
      let rdist = distance s slot in
      if rdist < dist then begin
        let h' = St.hash s slot
        and tag' = resident
        and w0' = St.w0 s slot
        and w1' = St.w1 s slot
        and v' = St.value s slot in
        St.set_tag s slot tag;
        St.set_hash s slot h;
        St.set_words s slot ~w0 ~w1;
        St.set_value s slot v;
        place r ((slot + 1) land St.mask s) (rdist + 1) h' tag' w0' w1' v'
      end
      else place r ((slot + 1) land St.mask s) (dist + 1) h tag w0 w1 v
    end

  let insert_fresh r h w0 w1 v =
    place r (h land St.mask r.store) 0 h (tag_of_hash h) w0 w1 v

  let rec backshift s slot =
    let next = (slot + 1) land St.mask s in
    let next_tag = St.tag s next in
    if next_tag = 0 || distance s next = 0 then begin
      St.set_tag s slot 0;
      St.set_hash s slot 0;
      St.set_words s slot ~w0:0 ~w1:0;
      St.set_value s slot 0
    end
    else begin
      St.set_tag s slot next_tag;
      St.set_hash s slot (St.hash s next);
      St.set_words s slot ~w0:(St.w0 s next) ~w1:(St.w1 s next);
      St.set_value s slot (St.value s next);
      backshift s next
    end

  let needs_growth r extra = (r.count + extra) * 8 > St.capacity r.store * 7

  let rec grown_capacity cap count =
    if count * 8 > cap * 7 then grown_capacity (cap * 2) count else cap

  let rebuild r ~capacity =
    let fresh = make_region capacity in
    let s = r.store in
    for slot = 0 to St.mask s do
      if St.tag s slot <> 0 then
        insert_fresh fresh (St.hash s slot) (St.w0 s slot) (St.w1 s slot)
          (St.value s slot)
    done;
    fresh

  (* {1 Write path} *)

  let with_writer t f =
    Mutex.lock t.writer;
    t.writer_locks <- t.writer_locks + 1;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

  let publish t fresh old =
    Atomic.set t.published fresh;
    t.publish_count <- t.publish_count + 1;
    (* Scrub + sever: once every reader has moved past the retirement
       epoch, the region's buffers lose their last reference inside
       the closure, so off-heap payloads are released by the eager
       free, not by a later GC sweep of the region arrays. *)
    Core.retire t.core (fun () -> St.free old.store);
    ignore (Core.reclaim t.core)

  let replace t ~w0 ~w1 v =
    with_writer t @@ fun () ->
    let cur = Atomic.get t.published in
    let s = cur.store in
    let h = t.hash w0 w1 in
    let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
    let fresh =
      if slot >= 0 then begin
        let fresh = copy_region cur in
        St.set_value fresh.store slot v;
        fresh
      end
      else begin
        let fresh =
          if needs_growth cur 1 then
            rebuild cur
              ~capacity:(grown_capacity (St.capacity s * 2) (cur.count + 1))
          else copy_region cur
        in
        insert_fresh fresh h w0 w1 v;
        Demux.Lookup_stats.note_insert t.writer_stats;
        fresh
      end
    in
    publish t fresh cur

  let remove t ~w0 ~w1 =
    with_writer t @@ fun () ->
    let cur = Atomic.get t.published in
    let s = cur.store in
    let h = t.hash w0 w1 in
    let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
    if slot >= 0 then begin
      let fresh = copy_region cur in
      backshift fresh.store slot;
      fresh.count <- fresh.count - 1;
      Demux.Lookup_stats.note_remove t.writer_stats;
      publish t fresh cur
    end

  let load t entries =
    if Array.length entries > 0 then
      with_writer t @@ fun () ->
      let cur = Atomic.get t.published in
      let fresh =
        if needs_growth cur (Array.length entries) then
          rebuild cur
            ~capacity:
              (grown_capacity (St.capacity cur.store)
                 (cur.count + Array.length entries))
        else copy_region cur
      in
      Array.iter
        (fun (w0, w1, v) ->
          let s = fresh.store in
          let h = t.hash w0 w1 in
          let slot = probe s (tag_of_hash h) w0 w1 (h land St.mask s) 0 in
          if slot >= 0 then St.set_value s slot v
          else begin
            insert_fresh fresh h w0 w1 v;
            Demux.Lookup_stats.note_insert t.writer_stats
          end)
        entries;
      publish t fresh cur

  (* {1 Reclamation passthroughs} *)

  let reclaim t = Core.reclaim t.core
  let quiesce t = Core.quiesce t.core
  let pending t = Core.pending t.core

  (* {1 Accounting} *)

  let stats t =
    Mutex.lock t.readers_lock;
    t.reader_locks <- t.reader_locks + 1;
    let readers = t.readers in
    Mutex.unlock t.readers_lock;
    Demux.Lookup_stats.merge_snapshots
      (Demux.Lookup_stats.snapshot t.writer_stats
      :: List.map (fun r -> Demux.Lookup_stats.snapshot r.stats) readers)

  let publishes t = t.publish_count
  let capacity t = St.capacity (Atomic.get t.published).store
  let bytes t = St.bytes (Atomic.get t.published).store
  let lock_acquisitions t = t.writer_locks + t.reader_locks

  let register_obs ?(prefix = "epoch.packed") obs t =
    Core.register_obs ~prefix obs t.core;
    let name suffix = prefix ^ "." ^ suffix in
    let stat pick = fun () -> pick (stats t) in
    Obs.Registry.register_counter obs ~name:(name "lookups")
      ~help:"lock-free lookups, merged across reader domains"
      (stat (fun s -> s.Demux.Lookup_stats.lookups));
    Obs.Registry.register_counter obs ~name:(name "found")
      ~help:"lookups that matched a resident flow"
      (stat (fun s -> s.Demux.Lookup_stats.found));
    Obs.Registry.register_counter obs ~name:(name "inserts")
      ~help:"new flows inserted by the writer"
      (stat (fun s -> s.Demux.Lookup_stats.inserts));
    Obs.Registry.register_counter obs ~name:(name "removes")
      ~help:"flows removed by the writer"
      (stat (fun s -> s.Demux.Lookup_stats.removes));
    Obs.Registry.register_counter obs ~name:(name "batches")
      ~help:"batched lookup calls (one epoch pin each)"
      (stat (fun s -> s.Demux.Lookup_stats.batches));
    Obs.Registry.register_counter obs ~name:(name "publishes")
      ~help:"region replacements published by the writer" (fun () ->
        publishes t);
    Obs.Registry.register_counter obs ~name:(name "lock_acquisitions")
      ~help:
        "every mutex acquisition the table ever made (writer + reader \
         registration; the read path takes none)" (fun () ->
        lock_acquisitions t);
    Obs.Registry.register_gauge obs ~name:(name "resident")
      ~help:"flows resident in the published region" (fun () ->
        float_of_int (length t));
    Obs.Registry.register_gauge obs ~name:(name "capacity")
      ~help:"slots in the published region" (fun () ->
        float_of_int (capacity t));
    Obs.Registry.register_gauge obs ~name:(name "bytes")
      ~help:
        (Printf.sprintf
           "slot-storage bytes of the published region (%s backend)"
           backend) (fun () -> float_of_int (bytes t))
end

module Heap = Make (Demux.Storage.Heap)
module Offheap = Make (Demux.Storage.Offheap)
