(** {!Table}'s lock-free copy-on-write discipline over pluggable
    {!Demux.Storage} backends, with [int] values.

    Same read/write protocol as {!Table} — readers pin an epoch slot,
    [Atomic.get] the published region, probe, unpin, with zero mutexes
    and zero allocations; the writer serialises on one mutex,
    copy-mutate-publishes, and retires the old region through
    {!Core} — but regions are {!Demux.Storage.S} buffers, so with the
    {!Offheap} instance the published flow state is invisible to the
    GC and a retired region's memory is returned to the allocator
    {e at reclaim time} ([Storage.free] severs the Bigarray buffers
    inside the retire closure) instead of whenever a major cycle
    eventually notices the dead arrays.  At 10M flows that is ~400 MB
    per retired region reclaimed eagerly (DESIGN.md section 14).

    Reclaimed regions are scrubbed before the free (dead tags, zeroed
    words), so a use-after-reclaim read through a stale region pointer
    is a deterministic miss, exactly as in {!Table}. *)

module type S = sig
  type t

  val backend : string

  val create :
    ?hash:(int -> int -> int) -> ?initial_capacity:int ->
    ?max_readers:int -> unit -> t

  (** {1 Read path — lock-free, allocation-free} *)

  val get : t -> w0:int -> w1:int -> default:int -> int
  (** The bound value, or [default] when absent.  Allocation-free
      (unlike {!find_opt}, which must box the result). *)

  val find_opt : t -> w0:int -> w1:int -> int option
  val mem : t -> w0:int -> w1:int -> bool

  val find_flow : t -> Packet.Flow.t -> int option

  val lookup_batch : t -> Packet.Flow.t array -> int
  (** Hit count for the batch under one epoch pin; accounting matches
      {!Table.lookup_batch}. *)

  val lookup_batch_keyed : t -> Packet.Flow.t array -> hashes:int array -> int

  val length : t -> int
  val iter : (w0:int -> w1:int -> int -> unit) -> t -> unit

  (** {1 Write path — single writer mutex, copy-on-write publish} *)

  val replace : t -> w0:int -> w1:int -> int -> unit
  val remove : t -> w0:int -> w1:int -> unit

  val load : t -> (int * int * int) array -> unit
  (** Bulk insert of [(w0, w1, v)] triples as one publish. *)

  (** {1 Reclamation} *)

  val reclaim : t -> int
  val quiesce : t -> unit
  val pending : t -> int

  (** {1 Accounting} *)

  val stats : t -> Demux.Lookup_stats.snapshot
  val publishes : t -> int
  val capacity : t -> int

  val bytes : t -> int
  (** Slot-storage bytes of the currently published region. *)

  val lock_acquisitions : t -> int
  val register_obs : ?prefix:string -> Obs.Registry.t -> t -> unit
end

module Make (_ : Demux.Storage.S) : S

module Heap : S
module Offheap : S
