(* The storage layout and probe discipline are Demux.Flat_table's
   (packed struct-of-arrays, 1-byte tag filter, Robin-Hood
   displacement).  The concurrency discipline is different: published
   regions are immutable, writers copy-mutate-publish under one mutex,
   and old regions go through Core.retire so a reader pinned before
   the publish keeps a valid snapshot. *)

type 'a region = {
  tags : Bytes.t;
  hs : int array;
  w0s : int array;
  w1s : int array;
  vals : 'a option array;
  mask : int;
  mutable count : int;  (* mutated only while the region is private *)
}

let min_capacity = 8
let scrub_tag = 255 (* Flat_table.dead_tag: poison for reclaimed regions *)

let tag_of_hash h =
  let tag = (h lsr 16) land 0xFF in
  if tag = 0 || tag = scrub_tag then 1 else tag

let make_region cap =
  { tags = Bytes.make cap '\000';
    hs = Array.make cap 0;
    w0s = Array.make cap 0;
    w1s = Array.make cap 0;
    vals = Array.make cap None;
    mask = cap - 1;
    count = 0 }

let copy_region r =
  { tags = Bytes.copy r.tags;
    hs = Array.copy r.hs;
    w0s = Array.copy r.w0s;
    w1s = Array.copy r.w1s;
    vals = Array.copy r.vals;
    mask = r.mask;
    count = r.count }

(* Reclamation poison: dead tags everywhere, keys and displacement
   hashes zeroed, values dropped.  Any probe of a scrubbed region
   terminates (distance from a zeroed hash only shrinks) and misses —
   a use-after-reclaim is a deterministic wrong answer, not a stale
   hit, which is what the planted-bug audit in lib/check detects. *)
let scrub r =
  Bytes.fill r.tags 0 (Bytes.length r.tags) (Char.chr scrub_tag);
  Array.fill r.hs 0 (Array.length r.hs) 0;
  Array.fill r.w0s 0 (Array.length r.w0s) 0;
  Array.fill r.w1s 0 (Array.length r.w1s) 0;
  Array.fill r.vals 0 (Array.length r.vals) None;
  r.count <- 0

let distance r slot = (slot - (r.hs.(slot) land r.mask)) land r.mask

(* Top-level recursion, as in Flat_table: the probe loop must not
   close over anything, so the warm read path allocates nothing. *)
let rec probe r tag w0 w1 slot dist =
  let resident = Bytes.get_uint8 r.tags slot in
  if resident = 0 then -1
  else if resident = tag && r.w0s.(slot) = w0 && r.w1s.(slot) = w1 then slot
  else if distance r slot < dist then -1
  else probe r tag w0 w1 ((slot + 1) land r.mask) (dist + 1)

let region_find r ~hash ~w0 ~w1 =
  let h = hash w0 w1 in
  let slot = probe r (tag_of_hash h) w0 w1 (h land r.mask) 0 in
  if slot < 0 then None else r.vals.(slot)

(* Private-region mutation (pre-publish): plain Robin-Hood insert. *)
let rec place r slot dist h tag w0 w1 v =
  let resident = Bytes.get_uint8 r.tags slot in
  if resident = 0 then begin
    Bytes.set_uint8 r.tags slot tag;
    r.hs.(slot) <- h;
    r.w0s.(slot) <- w0;
    r.w1s.(slot) <- w1;
    r.vals.(slot) <- v;
    r.count <- r.count + 1
  end
  else begin
    let rdist = distance r slot in
    if rdist < dist then begin
      (* The resident is closer to home than we are: it moves on. *)
      let h' = r.hs.(slot)
      and tag' = resident
      and w0' = r.w0s.(slot)
      and w1' = r.w1s.(slot)
      and v' = r.vals.(slot) in
      Bytes.set_uint8 r.tags slot tag;
      r.hs.(slot) <- h;
      r.w0s.(slot) <- w0;
      r.w1s.(slot) <- w1;
      r.vals.(slot) <- v;
      place r ((slot + 1) land r.mask) (rdist + 1) h' tag' w0' w1' v'
    end
    else place r ((slot + 1) land r.mask) (dist + 1) h tag w0 w1 v
  end

let insert_fresh r h w0 w1 v =
  place r (h land r.mask) 0 h (tag_of_hash h) w0 w1 (Some v)

let rec backshift r slot =
  let next = (slot + 1) land r.mask in
  let next_tag = Bytes.get_uint8 r.tags next in
  if next_tag = 0 || distance r next = 0 then begin
    Bytes.set_uint8 r.tags slot 0;
    r.hs.(slot) <- 0;
    r.w0s.(slot) <- 0;
    r.w1s.(slot) <- 0;
    r.vals.(slot) <- None
  end
  else begin
    Bytes.set_uint8 r.tags slot next_tag;
    r.hs.(slot) <- r.hs.(next);
    r.w0s.(slot) <- r.w0s.(next);
    r.w1s.(slot) <- r.w1s.(next);
    r.vals.(slot) <- r.vals.(next);
    backshift r next
  end

let needs_growth r extra = (r.count + extra) * 8 > (r.mask + 1) * 7

let rec grown_capacity cap count = if count * 8 > cap * 7 then grown_capacity (cap * 2) count else cap

let rebuild r ~capacity =
  let fresh = make_region capacity in
  for slot = 0 to r.mask do
    if Bytes.get_uint8 r.tags slot <> 0 then
      insert_fresh fresh r.hs.(slot) r.w0s.(slot) r.w1s.(slot)
        (match r.vals.(slot) with
        | Some v -> v
        | None -> assert false)
  done;
  fresh

(* Per-reader-domain state: one epoch slot and one private
   Lookup_stats, registered lazily on the domain's first lookup. *)
type reader = {
  slot : Domain_slot.t;
  stats : Demux.Lookup_stats.t;
}

type 'a t = {
  core : Core.t;
  published : 'a region Atomic.t;
  writer : Mutex.t;
  mutable writer_locks : int;  (* guarded by [writer] *)
  readers_lock : Mutex.t;
  mutable reader_locks : int;  (* guarded by [readers_lock] *)
  mutable readers : reader list;  (* guarded by [readers_lock] *)
  reader_key : reader option Domain.DLS.key;
  writer_stats : Demux.Lookup_stats.t;
  hash : int -> int -> int;
  mutable publish_count : int;  (* guarded by [writer] *)
}

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(hash = Demux.Flow_key.hash_words) ?(initial_capacity = min_capacity)
    ?max_readers () =
  if initial_capacity < 0 then
    invalid_arg "Epoch.Table.create: initial_capacity < 0";
  let cap = pow2_at_least (max min_capacity initial_capacity) min_capacity in
  { core = Core.create ?max_readers ();
    published = Atomic.make (make_region cap);
    writer = Mutex.create ();
    writer_locks = 0;
    readers_lock = Mutex.create ();
    reader_locks = 0;
    readers = [];
    reader_key = Domain.DLS.new_key (fun () -> None);
    writer_stats = Demux.Lookup_stats.create ();
    hash;
    publish_count = 0 }

let reader_of t =
  match Domain.DLS.get t.reader_key with
  | Some reader -> reader
  | None ->
    let slot = Domain_slot.acquire (Core.pool t.core) in
    let reader = { slot; stats = Demux.Lookup_stats.create () } in
    Mutex.lock t.readers_lock;
    t.reader_locks <- t.reader_locks + 1;
    t.readers <- reader :: t.readers;
    Mutex.unlock t.readers_lock;
    Domain.DLS.set t.reader_key (Some reader);
    reader

(* {1 Read path} *)

let find_opt t ~w0 ~w1 =
  let reader = reader_of t in
  Demux.Lookup_stats.begin_lookup reader.stats;
  Demux.Lookup_stats.examine reader.stats ();
  Domain_slot.pin reader.slot ~global:(Core.global t.core);
  let r = Atomic.get t.published in
  let h = t.hash w0 w1 in
  let slot = probe r (tag_of_hash h) w0 w1 (h land r.mask) 0 in
  let result = if slot < 0 then None else r.vals.(slot) in
  Domain_slot.unpin reader.slot;
  Demux.Lookup_stats.end_lookup reader.stats ~hit_cache:false
    ~found:(result <> None);
  result

let mem t ~w0 ~w1 = find_opt t ~w0 ~w1 <> None

let find_flow t flow =
  find_opt t
    ~w0:(Demux.Flow_key.w0_of_flow flow)
    ~w1:(Demux.Flow_key.w1_of_flow flow)

let lookup_batch_hashed t flows ~hash_at =
  let n = Array.length flows in
  if n = 0 then 0
  else begin
    let reader = reader_of t in
    Demux.Lookup_stats.note_batch reader.stats ~size:n;
    Domain_slot.pin reader.slot ~global:(Core.global t.core);
    let r = Atomic.get t.published in
    let found = ref 0 in
    for i = 0 to n - 1 do
      let flow = flows.(i) in
      let w0 = Demux.Flow_key.w0_of_flow flow in
      let w1 = Demux.Flow_key.w1_of_flow flow in
      let h = hash_at t i w0 w1 in
      Demux.Lookup_stats.begin_lookup reader.stats;
      Demux.Lookup_stats.examine reader.stats ();
      let slot = probe r (tag_of_hash h) w0 w1 (h land r.mask) 0 in
      let hit = slot >= 0 && r.vals.(slot) <> None in
      if hit then incr found;
      Demux.Lookup_stats.end_lookup reader.stats ~hit_cache:false ~found:hit
    done;
    Domain_slot.unpin reader.slot;
    !found
  end

let lookup_batch t flows =
  lookup_batch_hashed t flows ~hash_at:(fun t _ w0 w1 -> t.hash w0 w1)

let lookup_batch_keyed t flows ~hashes =
  if Array.length flows <> Array.length hashes then
    invalid_arg "Epoch.Table.lookup_batch_keyed: length mismatch";
  lookup_batch_hashed t flows
    ~hash_at:(fun _ i _ _ -> Array.unsafe_get hashes i)

let length t = (Atomic.get t.published).count

let iter f t =
  let reader = reader_of t in
  Domain_slot.pin reader.slot ~global:(Core.global t.core);
  let r = Atomic.get t.published in
  for slot = 0 to r.mask do
    let tag = Bytes.get_uint8 r.tags slot in
    if tag <> 0 && tag <> scrub_tag then
      match r.vals.(slot) with
      | Some v -> f ~w0:r.w0s.(slot) ~w1:r.w1s.(slot) v
      | None -> ()
  done;
  Domain_slot.unpin reader.slot

(* {1 Pinned views} *)

type 'a view = { view_region : 'a region; view_hash : int -> int -> int }

let pin t =
  let reader = reader_of t in
  Domain_slot.pin reader.slot ~global:(Core.global t.core);
  { view_region = Atomic.get t.published; view_hash = t.hash }

let view_find view ~w0 ~w1 =
  region_find view.view_region ~hash:view.view_hash ~w0 ~w1

let view_length view = view.view_region.count

let unpin t =
  let reader = reader_of t in
  Domain_slot.unpin reader.slot

(* {1 Write path} *)

let with_writer t f =
  Mutex.lock t.writer;
  t.writer_locks <- t.writer_locks + 1;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

let publish t fresh old =
  Atomic.set t.published fresh;
  t.publish_count <- t.publish_count + 1;
  Core.retire t.core (fun () -> scrub old);
  (* Opportunistic: writes are the rare path, so they pay for
     reclamation; anything still pinned stays on the list. *)
  ignore (Core.reclaim t.core)

let replace t ~w0 ~w1 v =
  with_writer t @@ fun () ->
  let cur = Atomic.get t.published in
  let h = t.hash w0 w1 in
  let slot = probe cur (tag_of_hash h) w0 w1 (h land cur.mask) 0 in
  let fresh =
    if slot >= 0 then begin
      let fresh = copy_region cur in
      fresh.vals.(slot) <- Some v;
      fresh
    end
    else begin
      let fresh =
        if needs_growth cur 1 then
          rebuild cur ~capacity:(grown_capacity ((cur.mask + 1) * 2) (cur.count + 1))
        else copy_region cur
      in
      insert_fresh fresh h w0 w1 v;
      Demux.Lookup_stats.note_insert t.writer_stats;
      fresh
    end
  in
  publish t fresh cur

let remove t ~w0 ~w1 =
  with_writer t @@ fun () ->
  let cur = Atomic.get t.published in
  let h = t.hash w0 w1 in
  let slot = probe cur (tag_of_hash h) w0 w1 (h land cur.mask) 0 in
  if slot >= 0 then begin
    let fresh = copy_region cur in
    backshift fresh slot;
    fresh.count <- fresh.count - 1;
    Demux.Lookup_stats.note_remove t.writer_stats;
    publish t fresh cur
  end

let load t entries =
  if Array.length entries > 0 then
    with_writer t @@ fun () ->
    let cur = Atomic.get t.published in
    let fresh =
      if needs_growth cur (Array.length entries) then
        rebuild cur
          ~capacity:
            (grown_capacity (cur.mask + 1) (cur.count + Array.length entries))
      else copy_region cur
    in
    Array.iter
      (fun (w0, w1, v) ->
        let h = t.hash w0 w1 in
        let slot = probe fresh (tag_of_hash h) w0 w1 (h land fresh.mask) 0 in
        if slot >= 0 then fresh.vals.(slot) <- Some v
        else begin
          insert_fresh fresh h w0 w1 v;
          Demux.Lookup_stats.note_insert t.writer_stats
        end)
      entries;
    publish t fresh cur

(* {1 Reclamation passthroughs} *)

let core t = t.core
let reclaim t = Core.reclaim t.core
let quiesce t = Core.quiesce t.core
let pending t = Core.pending t.core

(* {1 Accounting} *)

let stats t =
  Mutex.lock t.readers_lock;
  t.reader_locks <- t.reader_locks + 1;
  let readers = t.readers in
  Mutex.unlock t.readers_lock;
  Demux.Lookup_stats.merge_snapshots
    (Demux.Lookup_stats.snapshot t.writer_stats
    :: List.map (fun r -> Demux.Lookup_stats.snapshot r.stats) readers)

let publishes t = t.publish_count
let capacity t = (Atomic.get t.published).mask + 1
let lock_acquisitions t = t.writer_locks + t.reader_locks

let registry ?initial_capacity () =
  let table = create ?initial_capacity () in
  let stats = Demux.Lookup_stats.create () in
  let next_id = ref 0 in
  let words flow =
    (Demux.Flow_key.w0_of_flow flow, Demux.Flow_key.w1_of_flow flow)
  in
  { Demux.Registry.name = "epoch-table";
    insert =
      (fun flow v ->
        let w0, w1 = words flow in
        if mem table ~w0 ~w1 then
          invalid_arg "epoch-table.insert: duplicate flow";
        let pcb = Demux.Pcb.make ~id:!next_id ~flow v in
        incr next_id;
        replace table ~w0 ~w1 pcb;
        Demux.Lookup_stats.note_insert stats;
        pcb);
    remove =
      (fun flow ->
        let w0, w1 = words flow in
        match find_opt table ~w0 ~w1 with
        | None -> None
        | Some pcb ->
          remove table ~w0 ~w1;
          Demux.Lookup_stats.note_remove stats;
          Some pcb);
    lookup =
      (fun ?kind:_ flow ->
        let w0, w1 = words flow in
        Demux.Lookup_stats.begin_lookup stats;
        Demux.Lookup_stats.examine stats ();
        let result = find_opt table ~w0 ~w1 in
        Demux.Lookup_stats.end_lookup stats ~hit_cache:false
          ~found:(result <> None);
        result);
    note_send = (fun _ -> ());
    stats;
    length = (fun () -> length table);
    iter = (fun f -> iter (fun ~w0:_ ~w1:_ pcb -> f pcb) table) }

let register_obs ?(prefix = "epoch.table") obs t =
  Core.register_obs ~prefix obs t.core;
  let name suffix = prefix ^ "." ^ suffix in
  let stat pick = fun () -> pick (stats t) in
  Obs.Registry.register_counter obs ~name:(name "lookups")
    ~help:"lock-free lookups, merged across reader domains"
    (stat (fun s -> s.Demux.Lookup_stats.lookups));
  Obs.Registry.register_counter obs ~name:(name "found")
    ~help:"lookups that matched a resident flow"
    (stat (fun s -> s.Demux.Lookup_stats.found));
  Obs.Registry.register_counter obs ~name:(name "inserts")
    ~help:"new flows inserted by the writer"
    (stat (fun s -> s.Demux.Lookup_stats.inserts));
  Obs.Registry.register_counter obs ~name:(name "removes")
    ~help:"flows removed by the writer"
    (stat (fun s -> s.Demux.Lookup_stats.removes));
  Obs.Registry.register_counter obs ~name:(name "batches")
    ~help:"batched lookup calls (one epoch pin each)"
    (stat (fun s -> s.Demux.Lookup_stats.batches));
  Obs.Registry.register_counter obs ~name:(name "publishes")
    ~help:"region replacements published by the writer" (fun () ->
      publishes t);
  Obs.Registry.register_counter obs ~name:(name "lock_acquisitions")
    ~help:
      "every mutex acquisition the table ever made (writer + reader \
       registration; the read path takes none)" (fun () ->
      lock_acquisitions t);
  Obs.Registry.register_gauge obs ~name:(name "resident")
    ~help:"flows resident in the published region" (fun () ->
      float_of_int (length t));
  Obs.Registry.register_gauge obs ~name:(name "capacity")
    ~help:"slots in the published region" (fun () ->
      float_of_int (capacity t))
