(** A read-mostly concurrent flow table with lock-free lookups.

    The storage model is {!Demux.Flat_table}'s packed struct-of-arrays
    index — 1-byte tag filter, Robin-Hood displacement, the same
    {!Demux.Flow_key} two-word keys and multiplicative hash — but
    where the flat table mutates one region in place, this table
    treats every {e published} region as immutable:

    - {b Readers} never take a lock.  A lookup pins the calling
      domain's epoch slot (one atomic store), loads the published
      region pointer (one atomic load), probes the immutable arrays
      exactly like [Flat_table.find_opt], and unpins.  The warm path
      allocates zero minor-heap words.
    - {b Writers} serialize on a single writer mutex.  A mutation
      copies the current region, applies the Robin-Hood insert or
      backward-shift delete (and any growth) to the private copy,
      publishes the copy with one atomic store, and hands the old
      region to {!Core.retire}.  Once every reader pinned before the
      publish has unpinned, reclamation scrubs the old region
      ({!Demux.Flat_table} dead tags + zeroed keys), so a
      use-after-reclaim shows up as a deterministic miss instead of a
      silent stale hit.

    Each reader domain registers lazily on its first lookup (one slot
    acquisition and one registration-mutex acquisition, never again);
    steady-state reads take no mutex at all — {!lock_acquisitions}
    counts every mutex acquisition the table ever makes, so a
    measurement phase can assert its read path took none.  Per-domain
    {!Demux.Lookup_stats} are merged on {!stats} read, as in
    {!Parallel.Striped}. *)

type 'a t

val create :
  ?hash:(int -> int -> int) -> ?initial_capacity:int -> ?max_readers:int ->
  unit -> 'a t
(** Defaults: {!Demux.Flow_key.hash_words}, the 8-slot minimum
    capacity, 64 reader slots.  [hash] must match whatever full hash a
    batched caller supplies to {!lookup_batch_keyed}.
    @raise Invalid_argument if [initial_capacity < 0] or
    [max_readers <= 0]. *)

(** {1 Read path (lock-free)} *)

val find_opt : 'a t -> w0:int -> w1:int -> 'a option
val mem : 'a t -> w0:int -> w1:int -> bool

val find_flow : 'a t -> Packet.Flow.t -> 'a option
(** [find_opt] over {!Demux.Flow_key.w0_of_flow}/[w1_of_flow] —
    allocation-free. *)

val lookup_batch : 'a t -> Packet.Flow.t array -> int
(** Probe every flow under one epoch pin; returns how many were found.
    Charges the same per-lookup accounting as {!find_opt} plus one
    {!Demux.Lookup_stats.note_batch}, mirroring
    {!Parallel.Striped.lookup_batch}. *)

val lookup_batch_keyed : 'a t -> Packet.Flow.t array -> hashes:int array -> int
(** Like {!lookup_batch} with caller-supplied full hashes (computed
    once upstream, e.g. by {!Parallel.Dispatcher} at shard time).  The
    hashes {b must} come from this table's [hash] on the flow's key
    words — the default matches [Dispatcher]'s default hasher.
    @raise Invalid_argument if the arrays differ in length. *)

val length : 'a t -> int
(** Residents in the currently published region (one atomic load). *)

val iter : (w0:int -> w1:int -> 'a -> unit) -> 'a t -> unit
(** Iterate one consistent published region under a single epoch pin —
    unlike {!Parallel.Striped.iter}, this {e is} an instantaneous cut
    of the whole table. *)

(** {2 Pinned views}

    An explicit read-side critical section: {!pin} returns the region
    published at pin time and keeps the calling domain's epoch slot
    pinned until {!unpin}, so the view stays valid across any number
    of concurrent writer publishes.  Pins nest ({!Domain_slot.pin});
    lookups between [pin] and [unpin] are safe.  Used by the
    grace-period audit in [lib/check] and by tests that must observe a
    region {e outlive} its replacement. *)

type 'a view

val pin : 'a t -> 'a view
val view_find : 'a view -> w0:int -> w1:int -> 'a option
val view_length : 'a view -> int
val unpin : 'a t -> unit
(** @raise Invalid_argument if the calling domain holds no pin. *)

(** {1 Write path (single writer mutex)} *)

val replace : 'a t -> w0:int -> w1:int -> 'a -> unit
(** Insert or overwrite, copy-on-write, publish, retire the old
    region. *)

val remove : 'a t -> w0:int -> w1:int -> unit
(** Backward-shift delete on the private copy; absent keys publish
    nothing. *)

val load : 'a t -> (int * int * 'a) array -> unit
(** Bulk [replace]: one copy, one publish, one retirement for the
    whole batch — the setup path for benchmark populations. *)

(** {1 Reclamation} *)

val core : 'a t -> Core.t
val reclaim : 'a t -> int
val quiesce : 'a t -> unit
val pending : 'a t -> int
(** Passthroughs to this table's {!Core} domain.  Writers already run
    an opportunistic {!Core.reclaim} after every publish, so these are
    for tests and shutdown. *)

(** {1 Accounting} *)

val stats : 'a t -> Demux.Lookup_stats.snapshot
(** Merged across the writer and every registered reader domain.  The
    same point-in-time caveat as {!Parallel.Striped.stats} applies
    while readers run. *)

val publishes : 'a t -> int
(** Region replacements so far. *)

val capacity : 'a t -> int

val lock_acquisitions : 'a t -> int
(** Every mutex acquisition this table has ever performed (writer
    mutex + reader-registration mutex — there are no others).  A
    read-only phase over already-registered domains must leave this
    unchanged; bench E33 asserts exactly that. *)

val registry : ?initial_capacity:int -> unit -> 'a Demux.Registry.t
(** A fresh epoch table behind the {!Demux.Registry} record (named
    ["epoch-table"], single-domain discipline like every registry
    algorithm): PCB values, duplicate-insert rejection, one PCB
    examined charged per lookup — the flat-index accounting
    [Check.Subject.of_flat] uses, so the differential oracle predicts
    its counters exactly.  [Demux.Registry.spec] cannot name this
    table (the dependency points the other way), which is why the
    constructor lives here. *)

val register_obs : ?prefix:string -> Obs.Registry.t -> 'a t -> unit
(** {!Core.register_obs} plus per-operation table counters
    ([<prefix>.lookups]/[.found]/[.inserts]/[.removes]/[.batches]/
    [.publishes]/[.lock_acquisitions]) and gauges ([.resident]/
    [.capacity]); default prefix ["epoch.table"]. *)
