(* Chaos harness for the parallel demux pipeline.

   Each scenario runs a real multi-domain pipeline — producer sharding
   ops by flow hash into bounded SPSC rings, worker domains applying
   them to one shared striped table under a tiered pressure controller
   — while a seeded injector perturbs it (a stalled consumer, a slow
   worker, undersized rings, bursty arrivals, or a flow population
   sized to force incremental resizes mid-run).

   The harness does not judge the run; it records it.  Every op a
   worker applies is logged with its observed outcome, in application
   order, and every op the producer sheds is charged to a tier
   counter.  Because sharding is per-flow (RSS), a flow's ops are
   applied in FIFO order by exactly one worker, so the logs determine
   the final table contents and stats exactly — Check.Chaos replays
   them into the reference oracle and demands a perfect match:
   degradation may drop work, but must never corrupt state or lose
   accounting. *)

type scenario =
  | Stalled_consumer
  | Slow_worker
  | Ring_full_storm
  | Burst_arrival
  | Mid_run_growth

let all =
  [ Stalled_consumer; Slow_worker; Ring_full_storm; Burst_arrival;
    Mid_run_growth ]

let scenario_name = function
  | Stalled_consumer -> "stalled-consumer"
  | Slow_worker -> "slow-worker"
  | Ring_full_storm -> "ring-full-storm"
  | Burst_arrival -> "burst-arrival"
  | Mid_run_growth -> "mid-run-growth"

let scenario_of_name s =
  List.find_opt (fun scenario -> scenario_name scenario = s) all

let pp_scenario ppf s = Format.pp_print_string ppf (scenario_name s)

type op_kind = Insert | Lookup | Remove

type op = { kind : op_kind; flow : Packet.Flow.t; payload : int }

type outcome =
  | Inserted
  | Duplicate
  | Shed
  | Found of int
  | Missed
  | Removed of int
  | Absent

type event = { op : op; outcome : outcome }

type result = {
  scenario : scenario;
  seed : int;
  workers : int;
  offered : int;
  delivered : int;
  dropped_ops : int;
  rejected_ops : int;
  logs : event array array;
  contents : (Packet.Flow.t * int) list;
  population : int;
  stats : Demux.Lookup_stats.snapshot;
  shed_flows : int;
  pressure_dropped_ops : int;
  pressure_rejected_ops : int;
  transitions : (string * int) list;
  max_ring_depth : int;
  elapsed_seconds : float;
}

(* Per-scenario pipeline shape and injector knobs.  [stall_ns] is a
   one-time sleep of worker 0 before it touches its ring; [lag_ns] a
   per-batch delay of worker 0; [drag_ns] a per-batch delay of every
   worker; [burst]/[gap_ns] make the producer slam [burst] ops and
   then pause; [pace_every]/[pace_ns] pace the producer so the run
   spans the injector's timescale — an unpaced producer can exhaust
   the whole script inside a single stall, and then there is no
   "after the fault" left to recover in. *)
type tuning = {
  pool : int;
  insert_pct : int;
  lookup_pct : int;          (* remainder: removes *)
  ring_capacity : int;
  batch : int;
  stall_ns : int;
  lag_ns : int;
  drag_ns : int;
  burst : int;
  gap_ns : int;
  pace_every : int;
  pace_ns : int;
  config : Parallel.Pressure.config;
}

let tuning = function
  | Stalled_consumer ->
    { pool = 512; insert_pct = 40; lookup_pct = 40; ring_capacity = 8;
      batch = 16; stall_ns = 1_000_000; lag_ns = 0; drag_ns = 0; burst = 0;
      gap_ns = 0; pace_every = 128; pace_ns = 30_000;
      config = Parallel.Pressure.config ~trip:4 ~hold:4 () }
  | Slow_worker ->
    { pool = 512; insert_pct = 40; lookup_pct = 40; ring_capacity = 8;
      batch = 16; stall_ns = 0; lag_ns = 30_000; drag_ns = 0; burst = 0;
      gap_ns = 0; pace_every = 128; pace_ns = 10_000;
      config = Parallel.Pressure.config ~trip:4 ~hold:8 () }
  | Ring_full_storm ->
    { pool = 256; insert_pct = 40; lookup_pct = 40; ring_capacity = 2;
      batch = 8; stall_ns = 0; lag_ns = 0; drag_ns = 2_000; burst = 0;
      gap_ns = 0; pace_every = 64; pace_ns = 10_000;
      config =
        Parallel.Pressure.config ~ring_high_pct:50 ~trip:2 ~hold:16 () }
  | Burst_arrival ->
    { pool = 512; insert_pct = 40; lookup_pct = 40; ring_capacity = 4;
      batch = 16; stall_ns = 0; lag_ns = 0; drag_ns = 1_000; burst = 4096;
      gap_ns = 500_000; pace_every = 0; pace_ns = 0;
      config = Parallel.Pressure.config ~trip:4 ~hold:4 () }
  | Mid_run_growth ->
    (* Growth is the fault here, not overload: generous rings and
       watermarks keep the tiers mostly disengaged so the population
       actually climbs and every stripe's flat index migrates. *)
    { pool = 8192; insert_pct = 70; lookup_pct = 20; ring_capacity = 256;
      batch = 32; stall_ns = 0; lag_ns = 0; drag_ns = 0; burst = 0;
      gap_ns = 0; pace_every = 256; pace_ns = 20_000;
      config =
        Parallel.Pressure.config ~ring_high_pct:90 ~insert_ns_high:1_000_000
          ~trip:32 ~hold:4 () }

(* A synthetic client universe: one distinct remote address per index,
   the same server endpoint everywhere (the demux key is the 4-tuple,
   so the address alone distinguishes flows). *)
let flow_of_index i =
  Packet.Flow.v
    ~local:
      (Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888)
    ~remote:
      (Packet.Flow.endpoint
         (Packet.Ipv4.addr_of_octets 10
            ((i lsr 16) land 0xFF)
            ((i lsr 8) land 0xFF)
            (i land 0xFF))
         5555)

let busy_wait_ns ns =
  if ns > 0 then begin
    let t0 = Obs.Clock.now_ns () in
    while Obs.Clock.now_ns () - t0 < ns do
      Domain.cpu_relax ()
    done
  end

let run ?(workers = 4) ?(ops = 60_000) ?(seed = 42) scenario =
  if workers <= 0 then invalid_arg "Chaos.run: workers <= 0";
  if ops <= 0 then invalid_arg "Chaos.run: ops <= 0";
  let tu = tuning scenario in
  let pressure = Parallel.Pressure.create ~config:tu.config () in
  let table : int Parallel.Striped.t =
    Parallel.Striped.create ~pressure ()
  in
  (* The seeded workload: payload is the op's index, so a stale PCB
     surviving a remove/re-insert cycle is distinguishable on replay. *)
  let rng = Numerics.Rng.create ~seed in
  let pool = Array.init tu.pool flow_of_index in
  let script =
    Array.init ops (fun i ->
        let roll = Numerics.Rng.int rng ~bound:100 in
        let kind =
          if roll < tu.insert_pct then Insert
          else if roll < tu.insert_pct + tu.lookup_pct then Lookup
          else Remove
        in
        { kind; flow = pool.(Numerics.Rng.int rng ~bound:tu.pool);
          payload = i })
  in
  let rings =
    Array.init workers (fun _ ->
        Parallel.Ring.create ~capacity:tu.ring_capacity)
  in
  let logs = Array.make workers [||] in
  let apply op =
    let outcome =
      match op.kind with
      | Insert -> (
        match Parallel.Striped.try_insert table op.flow op.payload with
        | `Inserted _ -> Inserted
        | `Duplicate -> Duplicate
        | `Shed -> Shed)
      | Lookup -> (
        match Parallel.Striped.lookup table op.flow with
        | Some pcb -> Found pcb.Demux.Pcb.data
        | None -> Missed)
      | Remove -> (
        match Parallel.Striped.remove table op.flow with
        | Some pcb -> Removed pcb.Demux.Pcb.data
        | None -> Absent)
    in
    { op; outcome }
  in
  let worker w =
    let ring = rings.(w) in
    if w = 0 then busy_wait_ns tu.stall_ns;
    let acc = ref [] in
    let consume batch =
      if w = 0 then busy_wait_ns tu.lag_ns;
      busy_wait_ns tu.drag_ns;
      Array.iter (fun op -> acc := apply op :: !acc) batch
    in
    (* The Ring drain-after-close protocol: after observing the close
       flag, one more drain pass sees every push that raced it. *)
    let rec drain () =
      match Parallel.Ring.try_pop ring with
      | Some batch -> consume batch; drain ()
      | None -> ()
    in
    let rec loop () =
      match Parallel.Ring.try_pop ring with
      | Some batch -> consume batch; loop ()
      | None ->
        if Parallel.Ring.is_closed ring then drain ()
        else begin
          Domain.cpu_relax ();
          loop ()
        end
    in
    loop ();
    logs.(w) <- Array.of_list (List.rev !acc)
  in
  let buffers = Array.init workers (fun _ -> Array.make tu.batch script.(0)) in
  let fills = Array.make workers 0 in
  let dropped = ref 0 and rejected = ref 0 and max_depth = ref 0 in
  (* The dispatcher side, with the same tier gates as
     [Parallel.Dispatcher.run]: at Reject the batch never reaches the
     ring; at Drop_batches a full ring sheds it; otherwise a full ring
     is backpressure and the producer waits. *)
  let flush w =
    let fill = fills.(w) in
    if fill > 0 then begin
      fills.(w) <- 0;
      if Parallel.Pressure.rejecting pressure then begin
        Parallel.Pressure.note_rejected pressure ~packets:fill;
        rejected := !rejected + fill;
        (* Probe while shedding, as the dispatcher does: the ring
           keeps draining, and its depth is the signal that lets the
           controller leave Reject. *)
        let ring = rings.(w) in
        Parallel.Pressure.note_ring_depth pressure
          ~depth:(Parallel.Ring.length ring)
          ~capacity:(Parallel.Ring.capacity ring)
      end
      else begin
        let batch = Array.sub buffers.(w) 0 fill in
        let ring = rings.(w) in
        let depth = Parallel.Ring.length ring in
        if depth > !max_depth then max_depth := depth;
        Parallel.Pressure.note_ring_depth pressure ~depth
          ~capacity:(Parallel.Ring.capacity ring);
        if not (Parallel.Ring.try_push ring batch) then begin
          if Parallel.Pressure.drops_batches pressure then begin
            Parallel.Pressure.note_dropped_batch pressure ~packets:fill;
            dropped := !dropped + fill
          end
          else
            while not (Parallel.Ring.try_push ring batch) do
              Domain.cpu_relax ()
            done
        end
      end
    end
  in
  let started = Obs.Clock.now_ns () in
  let domains =
    Array.init workers (fun w -> Domain.spawn (fun () -> worker w))
  in
  Array.iteri
    (fun i op ->
      if tu.burst > 0 && i > 0 && i mod tu.burst = 0 then
        busy_wait_ns tu.gap_ns;
      if tu.pace_every > 0 && i > 0 && i mod tu.pace_every = 0 then
        busy_wait_ns tu.pace_ns;
      let w = Parallel.Striped.hash_flow table op.flow mod workers in
      buffers.(w).(fills.(w)) <- op;
      fills.(w) <- fills.(w) + 1;
      if fills.(w) = tu.batch then flush w)
    script;
  for w = 0 to workers - 1 do
    flush w
  done;
  Array.iter Parallel.Ring.close rings;
  Array.iter Domain.join domains;
  let elapsed = float_of_int (Obs.Clock.now_ns () - started) /. 1e9 in
  let contents =
    let acc = ref [] in
    Parallel.Striped.iter
      (fun pcb -> acc := (pcb.Demux.Pcb.flow, pcb.Demux.Pcb.data) :: !acc)
      table;
    List.sort (fun (a, _) (b, _) -> Packet.Flow.compare a b) !acc
  in
  { scenario; seed; workers; offered = ops;
    delivered = Array.fold_left (fun a log -> a + Array.length log) 0 logs;
    dropped_ops = !dropped; rejected_ops = !rejected; logs; contents;
    population = Parallel.Striped.length table;
    stats = Parallel.Striped.stats table;
    shed_flows = Parallel.Pressure.shed_flows pressure;
    pressure_dropped_ops = Parallel.Pressure.dropped_batch_packets pressure;
    pressure_rejected_ops = Parallel.Pressure.rejected_packets pressure;
    transitions = Parallel.Pressure.transitions pressure;
    max_ring_depth = !max_depth; elapsed_seconds = elapsed }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s (seed %d, %d workers): %d offered = %d applied + %d dropped + \
     %d rejected@,%d residents, %d shed flows, max ring depth %d, %.3f s@]"
    (scenario_name r.scenario) r.seed r.workers r.offered r.delivered
    r.dropped_ops r.rejected_ops r.population r.shed_flows r.max_ring_depth
    r.elapsed_seconds
