(** Pipeline-level chaos scenarios for the parallel demux path.

    Where {!Injector} perturbs {e bytes on the wire}, this module
    perturbs the {e pipeline itself}: a real multi-domain run
    (producer sharding ops by flow hash into bounded {!Parallel.Ring}s,
    worker domains applying them to one shared {!Parallel.Striped}
    table under a {!Parallel.Pressure} controller) with a seeded fault
    staged on top.  The five scenarios are the failure modes the
    degradation tiers exist for: a stalled consumer domain, a slow
    worker, a ring-full storm, bursty arrivals, and a flow population
    that forces incremental table resizes mid-run.

    The harness records rather than judges.  Every applied op is
    logged with its observed outcome in application order; every shed
    op is charged to a tier counter.  Because sharding is per-flow,
    one worker applies a given flow's ops in FIFO order, so the logs
    determine the correct end state exactly — [Check.Chaos] replays
    them through the reference oracle and asserts that graceful
    degradation dropped work {e without} corrupting state or losing
    accounting (the conservation law
    [offered = applied + dropped + rejected]). *)

type scenario =
  | Stalled_consumer  (** Worker 0 sleeps ~3 ms before its first pop. *)
  | Slow_worker       (** Worker 0 delays ~30 us on every batch. *)
  | Ring_full_storm   (** Two-slot rings; every worker drags a little. *)
  | Burst_arrival     (** 4096-op slams separated by 0.5 ms of quiet. *)
  | Mid_run_growth
      (** 8192 distinct flows, insert-heavy: every stripe's flat index
          crosses several incremental-resize boundaries mid-run. *)

val all : scenario list

val scenario_name : scenario -> string
(** ["stalled-consumer"], ["slow-worker"], ["ring-full-storm"],
    ["burst-arrival"], ["mid-run-growth"]. *)

val scenario_of_name : string -> scenario option
val pp_scenario : Format.formatter -> scenario -> unit

type op_kind = Insert | Lookup | Remove

type op = {
  kind : op_kind;
  flow : Packet.Flow.t;
  payload : int;  (** The op's index in the script (stale-PCB tracer). *)
}

(** What the worker observed when it applied the op.  [Found] and
    [Removed] carry the resident payload, so a replay can detect a
    stale PCB, not just a wrong hit/miss. *)
type outcome =
  | Inserted
  | Duplicate        (** Flow already resident; nothing changed. *)
  | Shed             (** Refused at {!Parallel.Pressure.Shed_new_flows}+. *)
  | Found of int
  | Missed
  | Removed of int
  | Absent

type event = { op : op; outcome : outcome }

type result = {
  scenario : scenario;
  seed : int;
  workers : int;
  offered : int;             (** Ops in the script. *)
  delivered : int;           (** Ops some worker applied (sum of logs). *)
  dropped_ops : int;         (** Shed at {!Parallel.Pressure.Drop_batches}. *)
  rejected_ops : int;        (** Refused at {!Parallel.Pressure.Reject}. *)
  logs : event array array;  (** Per worker, in application order. *)
  contents : (Packet.Flow.t * int) list;
      (** Final residents, sorted by {!Packet.Flow.compare}. *)
  population : int;
  stats : Demux.Lookup_stats.snapshot;  (** Merged across stripes. *)
  shed_flows : int;               (** The controller's shed counter. *)
  pressure_dropped_ops : int;     (** Controller ledger — must equal *)
  pressure_rejected_ops : int;    (** the producer's, audit enforced. *)
  transitions : (string * int) list;  (** Tier entries, by tier name. *)
  max_ring_depth : int;
  elapsed_seconds : float;
}

val run : ?workers:int -> ?ops:int -> ?seed:int -> scenario -> result
(** Run one scenario to quiescence (defaults: 4 workers, 60_000 ops,
    seed 42).  The op script is deterministic per seed; timing-driven
    tier changes are not, which is exactly what the replay audit is
    built to tolerate — whatever was dropped must be accounted, and
    whatever was applied must replay.
    @raise Invalid_argument if [workers] or [ops] is non-positive. *)

val pp_result : Format.formatter -> result -> unit
