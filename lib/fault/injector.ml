type counters = {
  mutable fed : int;
  mutable emitted : int;
  mutable corrupted : int;
  mutable truncated : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable dropped : int;
  mutable tuple_flipped : int;
}

let zero_counters () =
  { fed = 0; emitted = 0; corrupted = 0; truncated = 0; duplicated = 0;
    reordered = 0; dropped = 0; tuple_flipped = 0 }

type t = {
  plan : Plan.t;
  rng : Numerics.Rng.t;
  counters : counters;
  mutable held : bytes option;   (* packet delayed one slot by reorder *)
}

let create ?(seed = 42) plan =
  { plan; rng = Numerics.Rng.create ~seed; counters = zero_counters ();
    held = None }

let counters t = t.counters

let chance t p = p > 0.0 && Numerics.Rng.float t.rng < p

(* Recompute both checksums of an IPv4+TCP datagram in place, so a
   rewritten 4-tuple still parses as a well-formed segment.  A buffer
   that no longer looks like IPv4+TCP is left alone — the parser will
   reject it, which is also a valid adversarial outcome. *)
let fix_checksums buf =
  let len = Bytes.length buf in
  if len >= 20 && Bytes.get_uint8 buf 0 lsr 4 = 4 then begin
    let hlen = (Bytes.get_uint8 buf 0 land 0xF) * 4 in
    if hlen >= 20 && hlen <= len then begin
      Bytes.set_uint16_be buf 10 0;
      Bytes.set_uint16_be buf 10 (Packet.Checksum.compute buf ~off:0 ~len:hlen);
      let total = Bytes.get_uint16_be buf 2 in
      let tcp_len = total - hlen in
      if Bytes.get_uint8 buf 9 = 6 (* TCP *) && tcp_len >= 20 && total <= len
      then begin
        let word off = Bytes.get_uint16_be buf off in
        let pseudo = word 12 + word 14 + word 16 + word 18 + 6 + tcp_len in
        Bytes.set_uint16_be buf (hlen + 16) 0;
        Bytes.set_uint16_be buf (hlen + 16)
          (Packet.Checksum.compute ~initial:pseudo buf ~off:hlen ~len:tcp_len)
      end
    end
  end

let flip_bit buf byte bit =
  Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor (1 lsl bit))

(* The 4-tuple on the wire: IPv4 source and destination addresses
   (bytes 12..19) and the TCP ports (first four bytes past the IP
   header). *)
let tuple_flip t buf =
  let len = Bytes.length buf in
  if len >= 20 then begin
    let hlen = (Bytes.get_uint8 buf 0 land 0xF) * 4 in
    let port_bytes = if hlen >= 20 && hlen + 4 <= len then 4 else 0 in
    let pick = Numerics.Rng.int t.rng ~bound:(8 + port_bytes) in
    let byte = if pick < 8 then 12 + pick else hlen + (pick - 8) in
    flip_bit buf byte (Numerics.Rng.int t.rng ~bound:8);
    fix_checksums buf;
    t.counters.tuple_flipped <- t.counters.tuple_flipped + 1
  end

let corrupt t buf =
  if Bytes.length buf > 0 then begin
    flip_bit buf
      (Numerics.Rng.int t.rng ~bound:(Bytes.length buf))
      (Numerics.Rng.int t.rng ~bound:8);
    t.counters.corrupted <- t.counters.corrupted + 1
  end

let truncate t buf =
  if Bytes.length buf > 0 then begin
    t.counters.truncated <- t.counters.truncated + 1;
    Bytes.sub buf 0 (Numerics.Rng.int t.rng ~bound:(Bytes.length buf))
  end
  else buf

(* Per-packet rewrites, in a fixed order so streams are reproducible:
   drop, tuple-flip (checksums re-fixed), corrupt, truncate,
   duplicate.  Corruption lands after the tuple flip so a packet can
   be both re-targeted and damaged. *)
let rewrite t buf =
  if chance t t.plan.Plan.drop then begin
    t.counters.dropped <- t.counters.dropped + 1;
    []
  end
  else begin
    let buf = Bytes.copy buf in
    if chance t t.plan.Plan.tuple_flip then tuple_flip t buf;
    if chance t t.plan.Plan.corrupt then corrupt t buf;
    let buf =
      if chance t t.plan.Plan.truncate then truncate t buf else buf
    in
    if chance t t.plan.Plan.duplicate then begin
      t.counters.duplicated <- t.counters.duplicated + 1;
      [ buf; Bytes.copy buf ]
    end
    else [ buf ]
  end

let feed t buf =
  t.counters.fed <- t.counters.fed + 1;
  let emit =
    List.concat_map
      (fun packet ->
        if chance t t.plan.Plan.reorder then begin
          t.counters.reordered <- t.counters.reordered + 1;
          match t.held with
          | None ->
            t.held <- Some packet;
            []
          | Some previous ->
            (* Two holds in a row: the older one emerges. *)
            t.held <- Some packet;
            [ previous ]
        end
        else
          match t.held with
          | Some previous ->
            t.held <- None;
            [ packet; previous ]
          | None -> [ packet ])
      (rewrite t buf)
  in
  t.counters.emitted <- t.counters.emitted + List.length emit;
  emit

let flush t =
  match t.held with
  | None -> []
  | Some packet ->
    t.held <- None;
    t.counters.emitted <- t.counters.emitted + 1;
    [ packet ]

(* Evaluation order matters: [feed] everything before flushing the
   reorder slot ([@] would evaluate its right operand first). *)
let feed_all t bufs =
  let delivered = List.concat_map (feed t) bufs in
  delivered @ flush t

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<h>fed=%d emitted=%d corrupt=%d truncate=%d duplicate=%d reorder=%d \
     drop=%d tuple-flip=%d@]"
    c.fed c.emitted c.corrupted c.truncated c.duplicated c.reordered c.dropped
    c.tuple_flipped
