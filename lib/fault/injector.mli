(** Deterministic fault injection on a raw-datagram stream.

    Given a {!Plan} and a seed, rewrites a stream of serialized
    IPv4+TCP datagrams the way a hostile or lossy network would —
    corrupting, truncating, duplicating, reordering, dropping, or
    re-targeting them — before they reach [Tcpcore.Stack].  The same
    seed and input stream always yield the same output stream, so
    hostile scenarios are replayable. *)

type counters = {
  mutable fed : int;           (** Input datagrams. *)
  mutable emitted : int;       (** Output datagrams. *)
  mutable corrupted : int;
  mutable truncated : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable dropped : int;
  mutable tuple_flipped : int;
}

type t

val create : ?seed:int -> Plan.t -> t
(** A fresh injector; [seed] defaults to 42. *)

val feed : t -> bytes -> bytes list
(** Push one datagram through; returns what the network delivers, in
    order (possibly empty: dropped or held back for reordering).  The
    input buffer is never mutated. *)

val flush : t -> bytes list
(** Release a datagram still held back by reordering, if any. *)

val feed_all : t -> bytes list -> bytes list
(** [feed] every datagram, then [flush]. *)

val counters : t -> counters
(** Live counts of each fault applied so far. *)

val pp_counters : Format.formatter -> counters -> unit
