type t = {
  corrupt : float;
  truncate : float;
  duplicate : float;
  reorder : float;
  drop : float;
  tuple_flip : float;
}

let none =
  { corrupt = 0.0; truncate = 0.0; duplicate = 0.0; reorder = 0.0; drop = 0.0;
    tuple_flip = 0.0 }

let v ?(corrupt = 0.0) ?(truncate = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0)
    ?(drop = 0.0) ?(tuple_flip = 0.0) () =
  let check name p =
    if Float.is_nan p || p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Plan.v: %s not a probability (%g)" name p)
  in
  check "corrupt" corrupt;
  check "truncate" truncate;
  check "duplicate" duplicate;
  check "reorder" reorder;
  check "drop" drop;
  check "tuple_flip" tuple_flip;
  { corrupt; truncate; duplicate; reorder; drop; tuple_flip }

let is_none t = t = none

let pp ppf t =
  let parts =
    List.filter_map
      (fun (name, p) ->
        if p > 0.0 then Some (Printf.sprintf "%s=%g" name p) else None)
      [ ("corrupt", t.corrupt); ("truncate", t.truncate);
        ("duplicate", t.duplicate); ("reorder", t.reorder); ("drop", t.drop);
        ("tuple-flip", t.tuple_flip) ]
  in
  if parts = [] then Format.pp_print_string ppf "none"
  else Format.pp_print_string ppf (String.concat " " parts)
