(** A fault plan: per-packet rates for each adversarial rewrite the
    {!Injector} applies to a segment stream before it reaches the
    stack.  All rates are independent probabilities in [[0, 1]]. *)

type t = {
  corrupt : float;     (** Flip one random bit anywhere in the datagram. *)
  truncate : float;    (** Cut the datagram at a random earlier byte. *)
  duplicate : float;   (** Deliver the datagram twice. *)
  reorder : float;     (** Hold the datagram back one slot in the stream. *)
  drop : float;        (** Lose the datagram. *)
  tuple_flip : float;
      (** Flip one random bit inside the TCP 4-tuple (addresses or
          ports) and re-fix both checksums: a well-formed segment for
          the {e wrong} connection — the demultiplexer, not the
          checksum, has to cope. *)
}

val none : t
(** Every rate zero: the identity plan. *)

val v :
  ?corrupt:float -> ?truncate:float -> ?duplicate:float -> ?reorder:float ->
  ?drop:float -> ?tuple_flip:float -> unit -> t
(** Build a plan; omitted rates are zero.
    @raise Invalid_argument if any rate is NaN or outside [[0, 1]]. *)

val is_none : t -> bool

val pp : Format.formatter -> t -> unit
