type t = {
  name : string;
  run : bytes -> int;
  (* Allocation-free specialisation over a flow's fields, for hashers
     whose byte-serial definition folds cleanly over the 96-bit key.
     Must agree exactly with [run (Flow.to_key_bytes flow)] (asserted
     by a qcheck property in test_hashing.ml). *)
  run_flow : (Packet.Flow.t -> int) option;
  (* Same specialisation over the packed key words of
     [Demux.Flow_key]: w0 = local addr lsl 16 lor local port,
     w1 = remote addr lsl 16 lor remote port.  Must agree exactly with
     [run] over the corresponding 12-byte key. *)
  run_words : (int -> int -> int) option;
}

let name t = t.name
let hash t key = t.run key

let bucket t ~buckets key =
  if buckets <= 0 then invalid_arg "Hashers.bucket: buckets <= 0";
  hash t key mod buckets

let hash_flow t flow =
  match t.run_flow with
  | Some run -> run flow
  | None -> hash t (Packet.Flow.to_key_bytes flow)

let bucket_flow t ~buckets flow =
  if buckets <= 0 then invalid_arg "Hashers.bucket_flow: buckets <= 0";
  hash_flow t flow mod buckets

(* The canonical 12-byte key carrying the packed words, for hashers
   whose byte-serial definition has no word-folded shortcut. *)
let bytes_of_words w0 w1 =
  let buf = Bytes.create 12 in
  Bytes.set_int32_be buf 0 (Int32.of_int (w0 lsr 16));
  Bytes.set_int32_be buf 4 (Int32.of_int (w1 lsr 16));
  Bytes.set_uint16_be buf 8 (w0 land 0xFFFF);
  Bytes.set_uint16_be buf 10 (w1 land 0xFFFF);
  buf

let hash_words t w0 w1 =
  match t.run_words with
  | Some run -> run w0 w1
  | None -> hash t (bytes_of_words w0 w1)

let bucket_words t ~buckets w0 w1 =
  if buckets <= 0 then invalid_arg "Hashers.bucket_words: buckets <= 0";
  hash_words t w0 w1 mod buckets

(* [fold32 (Flow.to_key_bytes flow)] without the 12-byte allocation:
   the key's three big-endian 32-bit words are (local addr), (remote
   addr), (local port << 16 | remote port).  Pure int arithmetic on
   purpose — boxed [Int32] intermediates would allocate on the
   per-packet receive path (the zero-allocation bar of DESIGN.md
   section 10). *)
let addr_int a = Int32.to_int (Packet.Ipv4.addr_to_int32 a) land 0xFFFFFFFF

let fold32_flow (flow : Packet.Flow.t) =
  addr_int flow.Packet.Flow.local.Packet.Flow.addr
  lxor addr_int flow.Packet.Flow.remote.Packet.Flow.addr
  lxor ((flow.Packet.Flow.local.Packet.Flow.port lsl 16)
       lor flow.Packet.Flow.remote.Packet.Flow.port)

let fold32_words w0 w1 =
  (w0 lsr 16) lxor (w1 lsr 16)
  lxor (((w0 land 0xFFFF) lsl 16) lor (w1 land 0xFFFF))

let fold_words16 key combine init =
  let acc = ref init in
  let len = Bytes.length key in
  let i = ref 0 in
  while !i + 1 < len do
    acc := combine !acc (Bytes.get_uint16_be key !i);
    i := !i + 2
  done;
  if !i < len then acc := combine !acc (Bytes.get_uint8 key !i);
  !acc

(* The 16-bit words of the flow key, in order. *)
let fold_words16_flow (flow : Packet.Flow.t) combine init =
  let local = addr_int flow.Packet.Flow.local.Packet.Flow.addr in
  let remote = addr_int flow.Packet.Flow.remote.Packet.Flow.addr in
  let acc = combine init ((local lsr 16) land 0xFFFF) in
  let acc = combine acc (local land 0xFFFF) in
  let acc = combine acc ((remote lsr 16) land 0xFFFF) in
  let acc = combine acc (remote land 0xFFFF) in
  let acc = combine acc flow.Packet.Flow.local.Packet.Flow.port in
  combine acc flow.Packet.Flow.remote.Packet.Flow.port

(* Same words, from the packed representation: the canonical key-byte
   order is local addr, remote addr, local port, remote port. *)
let fold_words16_words w0 w1 combine init =
  let acc = combine init (w0 lsr 32) in
  let acc = combine acc ((w0 lsr 16) land 0xFFFF) in
  let acc = combine acc (w1 lsr 32) in
  let acc = combine acc ((w1 lsr 16) land 0xFFFF) in
  let acc = combine acc (w0 land 0xFFFF) in
  combine acc (w1 land 0xFFFF)

let xor_fold =
  { name = "xor-fold"; run = (fun k -> fold_words16 k ( lxor ) 0);
    run_flow = Some (fun flow -> fold_words16_flow flow ( lxor ) 0);
    run_words = Some (fun w0 w1 -> fold_words16_words w0 w1 ( lxor ) 0) }

let add_fold =
  let step a w = (a + w) land 0x3FFFFFFF in
  { name = "add-fold"; run = (fun k -> fold_words16 k step 0);
    run_flow = Some (fun flow -> fold_words16_flow flow step 0);
    run_words = Some (fun w0 w1 -> fold_words16_words w0 w1 step 0) }

let fold32 key =
  (* Fold the key into 32 bits by XOR of big-endian 32-bit words. *)
  let len = Bytes.length key in
  let acc = ref 0l in
  let i = ref 0 in
  while !i + 3 < len do
    acc := Int32.logxor !acc (Bytes.get_int32_be key !i);
    i := !i + 4
  done;
  while !i < len do
    acc :=
      Int32.logxor !acc
        (Int32.shift_left (Int32.of_int (Bytes.get_uint8 key !i)) (8 * (!i land 3)));
    incr i
  done;
  !acc

(* The pure-int equivalent of [Int32.mul] then logical shift right by
   2: the product is taken mod 2^32 (OCaml int multiplication wraps
   mod 2^63 and 2^32 divides 2^63, so the low 32 bits agree), matching
   the boxed Int32 byte path bit for bit. *)
let golden_int = 0x9E3779B1 (* 2654435761 = 2^32 / phi *)
let multiply_golden f32 = ((f32 * golden_int) land 0xFFFFFFFF) lsr 2

let multiplicative =
  let golden = 0x9E3779B1l in
  { name = "multiplicative";
    run =
      (fun k ->
        let product = Int32.mul (fold32 k) golden in
        (* Take the high 30 bits: multiplicative hashing concentrates
           its mixing in the high half of the product. *)
        Int32.to_int (Int32.shift_right_logical product 2));
    run_flow = Some (fun flow -> multiply_golden (fold32_flow flow));
    run_words = Some (fun w0 w1 -> multiply_golden (fold32_words w0 w1)) }

let fnv1a =
  let offset_basis = 0xCBF29CE484222325L and prime = 0x100000001B3L in
  { name = "fnv1a"; run_flow = None; run_words = None;
    run =
      (fun k ->
        let h = ref offset_basis in
        Bytes.iter
          (fun c ->
            h := Int64.logxor !h (Int64.of_int (Char.code c));
            h := Int64.mul !h prime)
          k;
        Int64.to_int (Int64.shift_right_logical !h 2)) }

let jenkins_oaat =
  { name = "jenkins-oaat"; run_flow = None; run_words = None;
    run =
      (fun k ->
        let h = ref 0l in
        Bytes.iter
          (fun c ->
            h := Int32.add !h (Int32.of_int (Char.code c));
            h := Int32.add !h (Int32.shift_left !h 10);
            h := Int32.logxor !h (Int32.shift_right_logical !h 6))
          k;
        h := Int32.add !h (Int32.shift_left !h 3);
        h := Int32.logxor !h (Int32.shift_right_logical !h 11);
        h := Int32.add !h (Int32.shift_left !h 15);
        Int32.to_int (Int32.shift_right_logical !h 2)) }

let crc32_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_digest ?(initial = 0l) key =
  let table = Lazy.force crc32_table in
  let crc = ref (Int32.logxor initial 0xFFFFFFFFl) in
  Bytes.iter
    (fun c ->
      let index =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code c))) 0xFFl)
      in
      crc := Int32.logxor table.(index) (Int32.shift_right_logical !crc 8))
    key;
  Int32.logxor !crc 0xFFFFFFFFl

let crc32 =
  { name = "crc32"; run_flow = None; run_words = None;
    run = (fun k -> Int32.to_int (Int32.shift_right_logical (crc32_digest k) 2)) }

let crc16_ccitt_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (n lsl 8) in
         for _ = 0 to 7 do
           if !c land 0x8000 <> 0 then c := ((!c lsl 1) lxor 0x1021) land 0xFFFF
           else c := (!c lsl 1) land 0xFFFF
         done;
         !c))

let crc16_ccitt =
  { name = "crc16-ccitt"; run_flow = None; run_words = None;
    run =
      (fun k ->
        let table = Lazy.force crc16_ccitt_table in
        let crc = ref 0xFFFF in
        Bytes.iter
          (fun c ->
            let index = ((!crc lsr 8) lxor Char.code c) land 0xFF in
            crc := ((!crc lsl 8) lxor table.(index)) land 0xFFFF)
          k;
        !crc) }

(* Pearson's permutation table: the digits-of-pi permutation would do;
   a fixed xorshift-generated permutation of 0..255 is equivalent. *)
let pearson_table =
  lazy
    (let table = Array.init 256 Fun.id in
     let state = ref 0x2545F4914F6CDD1DL in
     let next_bounded bound =
       state := Int64.logxor !state (Int64.shift_left !state 13);
       state := Int64.logxor !state (Int64.shift_right_logical !state 7);
       state := Int64.logxor !state (Int64.shift_left !state 17);
       Int64.to_int (Int64.rem (Int64.logand !state Int64.max_int)
                       (Int64.of_int bound))
     in
     for i = 255 downto 1 do
       let j = next_bounded (i + 1) in
       let tmp = table.(i) in
       table.(i) <- table.(j);
       table.(j) <- tmp
     done;
     table)

let pearson =
  { name = "pearson"; run_flow = None; run_words = None;
    run =
      (fun k ->
        let table = Lazy.force pearson_table in
        let pass seed =
          let h = ref seed in
          Bytes.iter (fun c -> h := table.(!h lxor Char.code c)) k;
          !h
        in
        (* Two independent passes give a 16-bit result. *)
        (pass 0 lsl 8) lor pass 1) }

let all =
  [ xor_fold; add_fold; multiplicative; fnv1a; jenkins_oaat; crc32;
    crc16_ccitt; pearson ]

let of_name wanted =
  match List.find_opt (fun t -> t.name = wanted) all with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown hash %S (expected one of: %s)" wanted
         (String.concat ", " (List.map (fun t -> t.name) all)))
