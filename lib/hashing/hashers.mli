(** Hash functions for protocol addresses.

    The Sequent algorithm's only costs over BSD are "the memory
    required for the hash-chain headers and the computation of the
    hash function itself", and the paper points at Jain's DEC-TR-593
    comparison of address-hashing schemes.  This module implements the
    candidates that study (and 1990s practice) considered, all over the
    canonical 12-byte flow key of {!Packet.Flow.to_key_bytes}. *)

type t
(** A named hash function from bytes to a non-negative int. *)

val name : t -> string

val hash : t -> bytes -> int
(** Hash a byte string to a non-negative integer (full width;
    reduce with {!bucket}). *)

val bucket : t -> buckets:int -> bytes -> int
(** [bucket t ~buckets key] is [hash t key mod buckets].
    @raise Invalid_argument if [buckets <= 0]. *)

val hash_flow : t -> Packet.Flow.t -> int
(** Hash a flow's canonical 96-bit key.  Equal to
    [hash t (Packet.Flow.to_key_bytes flow)], but hashers whose
    definition folds cleanly over the key's words (xor-fold, add-fold,
    multiplicative) compute it straight from the flow's fields without
    building the 12-byte key — the receive path of the parallel
    demultiplexers calls this per packet, so it must not allocate. *)

val bucket_flow : t -> buckets:int -> Packet.Flow.t -> int
(** [bucket_flow t ~buckets flow] is [hash_flow t flow mod buckets]
    (allocation-free where {!hash_flow} is).
    @raise Invalid_argument if [buckets <= 0]. *)

val hash_words : t -> int -> int -> int
(** [hash_words t w0 w1] hashes a flow key packed as two immediate
    ints in the convention of [Demux.Flow_key]:
    [w0 = local addr lsl 16 lor local port] and
    [w1 = remote addr lsl 16 lor remote port] (48 significant bits
    each).  Equal to [hash t key] for the corresponding canonical
    12-byte key; allocation-free for the word-folding hashers
    (xor-fold, add-fold, multiplicative). *)

val bucket_words : t -> buckets:int -> int -> int -> int
(** [bucket_words t ~buckets w0 w1] is [hash_words t w0 w1 mod buckets].
    @raise Invalid_argument if [buckets <= 0]. *)

val xor_fold : t
(** XOR the key's 16-bit words together — the cheapest scheme and the
    one early stacks used. *)

val add_fold : t
(** Sum the key's 16-bit words (mod 2^30). *)

val multiplicative : t
(** Knuth multiplicative hashing: fold to 32 bits, multiply by
    2654435761 (the golden-ratio constant), take the high bits.
    Caveat (asserted in the IPv6 test suite): the 32-bit XOR pre-fold
    can cancel correlated words in wider keys — on structured 36-byte
    IPv6 tuples it collapses like {!xor_fold}; prefer a byte-serial
    hash there. *)

val fnv1a : t
(** FNV-1a over bytes, 64-bit folded to 62 bits. *)

val jenkins_oaat : t
(** Bob Jenkins' one-at-a-time hash. *)

val crc32 : t
(** CRC-32 (IEEE 802.3 polynomial, table-driven) — Jain's report found
    CRCs give the most uniform chain occupancy. *)

val crc16_ccitt : t
(** CRC-16-CCITT (polynomial 0x1021, init 0xFFFF, unreflected) — the
    16-bit CRC of Jain's study; cheaper than CRC-32 with nearly the
    same spreading. *)

val pearson : t
(** Pearson (1990) byte-substitution hash, 16-bit variant (two passes
    over the key with different starting bytes). *)

val all : t list
(** Every hash above, for sweep experiments. *)

val of_name : string -> (t, string) result
(** Look a hash up by {!name}. *)

val crc32_digest : ?initial:int32 -> bytes -> int32
(** Raw CRC-32 value (standard reflected algorithm, as produced by
    zlib's [crc32]); exposed for testing against known vectors. *)
