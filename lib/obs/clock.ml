type t = unit -> float

let now t = t ()
let wall () = Unix.gettimeofday
let of_fun f = f
let fixed instant () = instant

type virtual_ = { mutable instant : float }

let create_virtual ?(start = 0.0) () =
  if Float.is_nan start || start < 0.0 then
    invalid_arg "Clock.create_virtual: negative or NaN start";
  { instant = start }

let read v () = v.instant

let set v time =
  if Float.is_nan time then invalid_arg "Clock.set: NaN time";
  if time < v.instant then invalid_arg "Clock.set: time in the past";
  v.instant <- time

let advance v delta =
  if Float.is_nan delta || delta < 0.0 then
    invalid_arg "Clock.advance: negative or NaN delta";
  v.instant <- v.instant +. delta
