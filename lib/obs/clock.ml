type t = unit -> float

let now t = t ()
let wall () = Unix.gettimeofday
let of_fun f = f
let fixed instant () = instant

(* CLOCK_MONOTONIC via bechamel's stub: never steps backwards and is
   unaffected by NTP slews, unlike [Unix.gettimeofday]. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
let monotonic () () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

type virtual_ = { mutable instant : float }

let create_virtual ?(start = 0.0) () =
  if Float.is_nan start || start < 0.0 then
    invalid_arg "Clock.create_virtual: negative or NaN start";
  { instant = start }

let read v () = v.instant

let set v time =
  if Float.is_nan time then invalid_arg "Clock.set: NaN time";
  if time < v.instant then invalid_arg "Clock.set: time in the past";
  v.instant <- time

let advance v delta =
  if Float.is_nan delta || delta < 0.0 then
    invalid_arg "Clock.advance: negative or NaN delta";
  v.instant <- v.instant +. delta
