(** Monotonic time sources behind one interface.

    Everything in [Obs] that timestamps (tracers, latency histograms)
    reads time through a {!t}, so wall-clock code and simulated-time
    code share one instrumentation path: a benchmark passes {!wall},
    a discrete-event simulation passes a clock wrapping its engine's
    virtual [now] (see [Sim.Engine.clock]), and tests pass a
    {!virtual_} clock they advance by hand. *)

type t

val now : t -> float
(** Current time in seconds.  The epoch is the source's own: wall
    clocks use the Unix epoch, virtual clocks start wherever they were
    created. *)

val wall : unit -> t
(** The process wall clock ([Unix.gettimeofday]).  Not monotonic: NTP
    steps can move it backwards, so never subtract two reads of it to
    measure a latency — use {!monotonic} / {!now_ns}. *)

val monotonic : unit -> t
(** The OS monotonic clock ([CLOCK_MONOTONIC]) in seconds since an
    arbitrary epoch (boot, not 1970).  Strictly non-decreasing; the
    right source for latency measurement and tracer timestamps that
    must order correctly. *)

val now_ns : unit -> int
(** One raw monotonic reading in integer nanoseconds — the hot-path
    form of {!monotonic} for interval timing ([stop - start] is always
    [>= 0]).  The integer resolution is the OS tick, typically coarser
    than 1 ns; treat values as ns {e units}, not ns {e precision}. *)

val of_fun : (unit -> float) -> t
(** Wrap any time source — e.g. a simulation engine's clock. *)

val fixed : float -> t
(** A clock frozen at the given instant (tests, headers). *)

(** {1 Virtual clocks}

    A hand-advanced source, for tests and replays.  Time never moves
    backwards. *)

type virtual_

val create_virtual : ?start:float -> unit -> virtual_
(** Starts at [start] (default 0).
    @raise Invalid_argument if [start] is negative or NaN. *)

val read : virtual_ -> t
(** The virtual clock as a {!t}. *)

val set : virtual_ -> float -> unit
(** Jump to an absolute time.
    @raise Invalid_argument if the time is in the past or NaN. *)

val advance : virtual_ -> float -> unit
(** Move forward by a delta.
    @raise Invalid_argument if the delta is negative or NaN. *)
