(** Monotonic time sources behind one interface.

    Everything in [Obs] that timestamps (tracers, latency histograms)
    reads time through a {!t}, so wall-clock code and simulated-time
    code share one instrumentation path: a benchmark passes {!wall},
    a discrete-event simulation passes a clock wrapping its engine's
    virtual [now] (see [Sim.Engine.clock]), and tests pass a
    {!virtual_} clock they advance by hand. *)

type t

val now : t -> float
(** Current time in seconds.  The epoch is the source's own: wall
    clocks use the Unix epoch, virtual clocks start wherever they were
    created. *)

val wall : unit -> t
(** The process wall clock ([Unix.gettimeofday]). *)

val of_fun : (unit -> float) -> t
(** Wrap any time source — e.g. a simulation engine's clock. *)

val fixed : float -> t
(** A clock frozen at the given instant (tests, headers). *)

(** {1 Virtual clocks}

    A hand-advanced source, for tests and replays.  Time never moves
    backwards. *)

type virtual_

val create_virtual : ?start:float -> unit -> virtual_
(** Starts at [start] (default 0).
    @raise Invalid_argument if [start] is negative or NaN. *)

val read : virtual_ -> t
(** The virtual clock as a {!t}. *)

val set : virtual_ -> float -> unit
(** Jump to an absolute time.
    @raise Invalid_argument if the time is in the past or NaN. *)

val advance : virtual_ -> float -> unit
(** Move forward by a delta.
    @raise Invalid_argument if the delta is negative or NaN. *)
