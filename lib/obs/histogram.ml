(* HDR-style bucketing.  With [sub = 2^sub_bits]:
   - values in [0, sub) get one exact bucket each (octave 0);
   - values with most-significant bit m >= sub_bits fall in octave
     [b = m - sub_bits + 1]; dropping their low [m - sub_bits] bits
     yields [u] in [sub, 2*sub), and the bucket index is
     [b*sub + (u - sub)].
   Every octave therefore holds [sub] buckets whose width is
   [2^(b-1)], i.e. a fixed relative resolution of [2^-sub_bits].
   OCaml ints have 62 value bits, so octaves run to [62 - sub_bits + 1]
   and the whole table is [(62 - sub_bits + 2) * sub] cells. *)

type t = {
  sub_bits : int;
  sub : int;
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;   (* max_int when empty *)
  mutable max_v : int;   (* 0 when empty *)
}

let max_msb = 62

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 10 then
    invalid_arg "Histogram.create: sub_bits outside 1-10";
  let sub = 1 lsl sub_bits in
  { sub_bits; sub;
    counts = Array.make ((max_msb - sub_bits + 2) * sub) 0;
    count = 0; sum = 0; min_v = max_int; max_v = 0 }

let sub_bits t = t.sub_bits

let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index t v =
  if v < t.sub then v
  else
    let m = msb v in
    let b = m - t.sub_bits + 1 in
    (b * t.sub) + ((v lsr (m - t.sub_bits)) - t.sub)

(* [sum] saturates at [max_int] instead of wrapping.  A single
   recorded [max_int] (a clamped clock-went-backwards interval ends up
   exactly there) plus anything else would otherwise flip [sum]
   negative and poison [mean]/[summary] for the histogram's whole
   remaining life.  Saturated totals keep mean an overestimate-free
   lower bound, and percentiles never consult [sum] at all. *)
let[@inline] sat_add a b =
  let s = a + b in
  if s < 0 && a >= 0 && b >= 0 then max_int else s

(* Inclusive value range covered by bucket [i] — the inverse of
   [index] up to quantisation. *)
let bucket_bounds t i =
  let b = i / t.sub and s = i mod t.sub in
  if b = 0 then (s, s)
  else ((t.sub + s) lsl (b - 1), (((t.sub + s + 1) lsl (b - 1)) - 1))

let add t v ~count =
  if count < 0 then invalid_arg "Histogram.add: negative count";
  if count > 0 then begin
    let v = if v < 0 then 0 else v in
    t.counts.(index t v) <- t.counts.(index t v) + count;
    t.count <- t.count + count;
    let contribution =
      if v > 0 && count > max_int / v then max_int else v * count
    in
    t.sum <- sat_add t.sum contribution;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- sat_add t.sum v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let is_empty t = t.count = 0

let mean (t : t) =
  if t.count = 0 then Float.nan
  else float_of_int t.sum /. float_of_int t.count

let percentile (t : t) p =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Histogram.percentile: p outside 0-100";
  if t.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let n = Array.length t.counts in
    let rec walk i seen =
      if i >= n then t.max_v
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then
          let _, hi = bucket_bounds t i in
          (* The bucket's upper bound, clamped to the exact max: p100
             is always the true maximum. *)
          if hi > t.max_v then t.max_v else hi
        else walk (i + 1) seen
    in
    walk 0 0
  end

let p50 t = percentile t 50.0
let p90 t = percentile t 90.0
let p99 t = percentile t 99.0
let p999 t = percentile t 99.9

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

let summary (t : t) =
  { count = t.count; sum = t.sum; min = min_value t; max = t.max_v;
    mean = mean t; p50 = p50 t; p90 = p90 t; p99 = p99 t; p999 = p999 t }

let merge_into ~into src =
  if into.sub_bits <> src.sub_bits then
    invalid_arg "Histogram.merge_into: sub_bits mismatch";
  Array.iteri
    (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
    src.counts;
  into.count <- into.count + src.count;
  into.sum <- sat_add into.sum src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let merge a b =
  let t = create ~sub_bits:a.sub_bits () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let merge_all ?(sub_bits = 5) hists =
  let t = create ~sub_bits () in
  List.iter (fun h -> merge_into ~into:t h) hists;
  t

let pp ppf (t : t) =
  if t.count = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf
      "n=%d mean=%.2f p50=%d p90=%d p99=%d p999=%d max=%d" t.count (mean t)
      (p50 t) (p90 t) (p99 t) (p999 t) t.max_v
