(** Log-bucketed HDR-style histogram over non-negative integers.

    Values below [2^sub_bits] are recorded exactly; above that, each
    power-of-two octave is split into [2^sub_bits] sub-buckets, so any
    reported quantile is within a relative error of [2^-sub_bits] of
    the true value (3.125 % at the default [sub_bits = 5]).  Storage
    is a fixed flat array (~1.9 k buckets at the default resolution)
    allocated once at creation: {!record} touches one cell and four
    scalar fields — cheap enough to leave on in a packet hot path.

    Two histograms with the same [sub_bits] merge bucket-wise, which
    is exact: merging any partition of a value stream equals the
    histogram of the whole stream.  That is what lets per-domain or
    per-stripe recorders aggregate without coordination. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] trades resolution for memory (default 5; 1–10).
    @raise Invalid_argument outside that range. *)

val sub_bits : t -> int

val record : t -> int -> unit
(** Record one value.  Negative values clamp to 0. *)

val add : t -> int -> count:int -> unit
(** Record a value [count] times (bucket restore / batched charge).
    @raise Invalid_argument if [count] is negative. *)

val clear : t -> unit

(** {1 Reading} *)

val count : t -> int
(** Values recorded. *)

val sum : t -> int
(** Sum of recorded values (not bucket-quantised).  Saturates at
    [max_int] instead of wrapping — recording a clamped [max_int]
    interval must not flip the total negative — so past saturation
    it, and {!mean}, are lower bounds. *)

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value; 0 when empty. *)

val mean : t -> float
(** Exact mean ([sum/count]); [nan] when empty. *)

val is_empty : t -> bool

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0, 100]: an upper bound on the value
    at rank [ceil (p/100 * count)], exact below [2^sub_bits] and
    within [2^-sub_bits] relative error above; 0 when empty.
    @raise Invalid_argument if [p] is outside [0, 100] or NaN. *)

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int
val p999 : t -> int

val buckets : t -> (int * int * int) list
(** Occupied buckets as [(lo, hi, count)], ascending; both bounds
    inclusive.  Suitable for re-{!add}ing into a fresh histogram (use
    [hi] as the representative, matching {!percentile}'s convention). *)

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

val summary : t -> summary
(** The fixed quantile set every exporter ships. *)

(** {1 Merging} *)

val merge_into : into:t -> t -> unit
(** Bucket-wise add.  @raise Invalid_argument on [sub_bits] mismatch. *)

val merge : t -> t -> t
(** Fresh histogram holding both operands' data.
    @raise Invalid_argument on [sub_bits] mismatch. *)

val merge_all : ?sub_bits:int -> t list -> t
(** Fold {!merge_into} over the list into a fresh histogram
    ([sub_bits] defaults to 5, which must match every operand). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, quantiles, max. *)
