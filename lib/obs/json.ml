type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitting                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  (* %.17g round-trips every finite double; trim the common case where
     fewer digits suffice by trying %.12g first. *)
  let shortest = Printf.sprintf "%.12g" f in
  let s =
    if float_of_string shortest = f then shortest
    else Printf.sprintf "%.17g" f
  in
  (* "1e3" and "13." are not JSON numbers without adjustment; ensure a
     digit follows any '.' and that plain integers keep a marker of
     floatness so they round-trip as Float. *)
  if
    String.exists (function '.' | 'e' | 'E' | 'n' -> true | _ -> false) s
  then s
  else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf key;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

let rec pretty_to buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom -> to_buffer buf atom
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    let inner = indent ^ "  " in
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf inner;
        pretty_to buf inner item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    let inner = indent ^ "  " in
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf inner;
        escape_to buf key;
        Buffer.add_string buf ": ";
        pretty_to buf inner value)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf indent;
    Buffer.add_char buf '}'

let to_string_pretty t =
  let buf = Buffer.create 1024 in
  pretty_to buf "" t;
  Buffer.contents buf

let to_channel oc t =
  output_string oc (to_string_pretty t);
  output_char oc '\n'

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of int * string

let max_depth = 512

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let fail message = raise (Parse_error (!pos, message)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, found %C" c got)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub input !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let add_utf8 buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match input.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail (Printf.sprintf "bad hex digit %C in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match input.[!pos] with
      | '"' ->
        advance ();
        Buffer.contents buf
      | '\\' ->
        advance ();
        (if !pos >= len then fail "unterminated escape";
         match input.[!pos] with
         | '"' -> advance (); Buffer.add_char buf '"'
         | '\\' -> advance (); Buffer.add_char buf '\\'
         | '/' -> advance (); Buffer.add_char buf '/'
         | 'n' -> advance (); Buffer.add_char buf '\n'
         | 't' -> advance (); Buffer.add_char buf '\t'
         | 'r' -> advance (); Buffer.add_char buf '\r'
         | 'b' -> advance (); Buffer.add_char buf '\b'
         | 'f' -> advance (); Buffer.add_char buf '\012'
         | 'u' ->
           advance ();
           let code = hex4 () in
           if code >= 0xD800 && code <= 0xDBFF then begin
             (* High surrogate: require the low half. *)
             if
               !pos + 2 <= len && input.[!pos] = '\\'
               && input.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let low = hex4 () in
               if low < 0xDC00 || low > 0xDFFF then
                 fail "invalid low surrogate"
               else
                 add_utf8 buf
                   (0x10000
                   + ((code - 0xD800) lsl 10)
                   + (low - 0xDC00))
             end
             else fail "lone high surrogate"
           end
           else if code >= 0xDC00 && code <= 0xDFFF then
             fail "lone low surrogate"
           else add_utf8 buf code
         | c -> fail (Printf.sprintf "bad escape \\%C" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < len && match input.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, value) :: acc))
          | _ -> fail "expected ',' or '}' in object"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (value :: acc))
          | _ -> fail "expected ',' or ']' in array"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let value = parse_value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after value";
    value
  with
  | value -> Ok value
  | exception Parse_error (at, message) ->
    Error (Printf.sprintf "json: byte %d: %s" at message)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error message -> Error ("json: " ^ message)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some Float.nan
  | _ -> None
