(** Dependency-free JSON: a value type, an emitter and a parser.

    Just enough for machine-readable metric export — no streaming, no
    number-preservation subtleties beyond int/float, UTF-8 passed
    through as-is.  Ints and floats are distinct constructors and
    survive a round-trip; non-finite floats emit as [null] (JSON has
    no spelling for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Emitting} *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact (no insignificant whitespace). *)

val to_string_pretty : t -> string
(** Two-space indentation — for files humans will diff. *)

val to_channel : out_channel -> t -> unit
(** Pretty, with a trailing newline. *)

val write_file : string -> t -> unit
(** [to_channel] to a fresh file. *)

(** {1 Parsing} *)

val of_string : string -> (t, string) result
(** Strict RFC 8259 subset: rejects trailing garbage, unterminated
    literals, and nesting deeper than 512.  Escapes including
    [\uXXXX] (with surrogate pairs) are decoded to UTF-8.  Numbers
    with a fraction or exponent parse as [Float], others as [Int]
    ([Float] on overflow).  Errors name the byte offset. *)

val of_file : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing key. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] and [Float] both read as float; [Null] reads as [nan] (the
    emitter's encoding of non-finite values). *)
