type source =
  | Counter_src of (unit -> int)
  | Owned_counter of int ref
  | Gauge_src of (unit -> float)
  | Histogram_src of Histogram.t

type entry = { mutable help : string; mutable units : string;
               mutable source : source }

type t = {
  table : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create () = { table = Hashtbl.create 64; order = [] }

let register t ~name ~help ~units source =
  match Hashtbl.find_opt t.table name with
  | Some entry ->
    entry.source <- source;
    if help <> "" then entry.help <- help;
    if units <> "" then entry.units <- units
  | None ->
    Hashtbl.add t.table name { help; units; source };
    t.order <- name :: t.order

let register_counter t ?(help = "") ~name read =
  register t ~name ~help ~units:"" (Counter_src read)

let register_gauge t ?(help = "") ?(units = "") ~name read =
  register t ~name ~help ~units (Gauge_src read)

let counter t ?(help = "") name =
  match Hashtbl.find_opt t.table name with
  | Some { source = Owned_counter r; _ } -> r
  | _ ->
    let r = ref 0 in
    register t ~name ~help ~units:"" (Owned_counter r);
    r

let histogram t ?(help = "") ?(units = "") ?sub_bits name =
  match Hashtbl.find_opt t.table name with
  | Some { source = Histogram_src h; _ } -> h
  | _ ->
    let h = Histogram.create ?sub_bits () in
    register t ~name ~help ~units (Histogram_src h);
    h

let size t = Hashtbl.length t.table

type data =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.summary * (int * int * int) list

type metric = { name : string; help : string; units : string; data : data }

let snapshot t =
  List.rev_map
    (fun name ->
      let entry = Hashtbl.find t.table name in
      let data =
        match entry.source with
        | Counter_src read -> Counter (read ())
        | Owned_counter r -> Counter !r
        | Gauge_src read -> Gauge (read ())
        | Histogram_src h -> Histogram (Histogram.summary h, Histogram.buckets h)
      in
      { name; help = entry.help; units = entry.units; data })
    t.order

let find metrics name = List.find_opt (fun m -> m.name = name) metrics

(* ------------------------------------------------------------------ *)
(* JSON export: the tcpdemux-obs/1 schema (DESIGN.md section 8).       *)

let schema_id = "tcpdemux-obs/1"

let metric_to_json m =
  let base = [ ("name", Json.String m.name) ] in
  let annotations =
    (if m.help = "" then [] else [ ("help", Json.String m.help) ])
    @ if m.units = "" then [] else [ ("units", Json.String m.units) ]
  in
  match m.data with
  | Counter v ->
    Json.Obj (base @ [ ("type", Json.String "counter") ] @ annotations
              @ [ ("value", Json.Int v) ])
  | Gauge v ->
    Json.Obj (base @ [ ("type", Json.String "gauge") ] @ annotations
              @ [ ("value", Json.Float v) ])
  | Histogram (s, buckets) ->
    Json.Obj
      (base
      @ [ ("type", Json.String "histogram") ]
      @ annotations
      @ [ ("count", Json.Int s.Histogram.count);
          ("sum", Json.Int s.Histogram.sum);
          ("min", Json.Int s.Histogram.min);
          ("max", Json.Int s.Histogram.max);
          ("mean", Json.Float s.Histogram.mean);
          ("p50", Json.Int s.Histogram.p50);
          ("p90", Json.Int s.Histogram.p90);
          ("p99", Json.Int s.Histogram.p99);
          ("p999", Json.Int s.Histogram.p999);
          ("buckets",
           Json.List
             (List.map
                (fun (lo, hi, c) ->
                  Json.List [ Json.Int lo; Json.Int hi; Json.Int c ])
                buckets)) ])

let to_json ?label t =
  Json.Obj
    ([ ("schema", Json.String schema_id) ]
    @ (match label with
      | Some l -> [ ("label", Json.String l) ]
      | None -> [])
    @ [ ("metrics", Json.List (List.map metric_to_json (snapshot t))) ])

let write_json ?label t path = Json.write_file path (to_json ?label t)

(* ------------------------------------------------------------------ *)
(* Reading a snapshot back                                             *)

let ( let* ) r f = Result.bind r f

let field_int json key =
  match Json.member key json with
  | Some (Json.Int v) -> Ok v
  | _ -> Error (Printf.sprintf "metric missing int field %S" key)

let field_float json key =
  match Option.bind (Json.member key json) Json.to_float_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "metric missing numeric field %S" key)

let field_string ?default json key =
  match (Json.member key json, default) with
  | Some (Json.String s), _ -> Ok s
  | None, Some d -> Ok d
  | _ -> Error (Printf.sprintf "metric missing string field %S" key)

let metric_of_json json =
  let* name = field_string json "name" in
  let* help = field_string ~default:"" json "help" in
  let* units = field_string ~default:"" json "units" in
  let* kind = field_string json "type" in
  let* data =
    match kind with
    | "counter" ->
      let* v = field_int json "value" in
      Ok (Counter v)
    | "gauge" ->
      let* v = field_float json "value" in
      Ok (Gauge v)
    | "histogram" ->
      let* count = field_int json "count" in
      let* sum = field_int json "sum" in
      let* min = field_int json "min" in
      let* max = field_int json "max" in
      let* mean = field_float json "mean" in
      let* p50 = field_int json "p50" in
      let* p90 = field_int json "p90" in
      let* p99 = field_int json "p99" in
      let* p999 = field_int json "p999" in
      let* buckets =
        match Json.member "buckets" json with
        | Some (Json.List items) ->
          let rec convert acc = function
            | [] -> Ok (List.rev acc)
            | Json.List [ Json.Int lo; Json.Int hi; Json.Int c ] :: rest ->
              convert ((lo, hi, c) :: acc) rest
            | _ -> Error "histogram bucket is not [lo, hi, count]"
          in
          convert [] items
        | _ -> Error "histogram missing buckets array"
      in
      Ok
        (Histogram
           ( { Histogram.count; sum; min; max; mean; p50; p90; p99; p999 },
             buckets ))
    | other -> Error (Printf.sprintf "unknown metric type %S" other)
  in
  Ok { name; help; units; data }

let of_json json =
  let* () =
    match Json.member "schema" json with
    | Some (Json.String s) when s = schema_id -> Ok ()
    | Some (Json.String s) ->
      Error (Printf.sprintf "unexpected schema %S (want %S)" s schema_id)
    | _ -> Error "missing schema field"
  in
  match Json.member "metrics" json with
  | Some (Json.List items) ->
    let rec convert acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* m = metric_of_json item in
        convert (m :: acc) rest
    in
    convert [] items
  | _ -> Error "missing metrics array"
