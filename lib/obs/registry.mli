(** A named-metric registry: counters, gauges, histograms.

    Registration and lookup are O(1) (hash table); snapshotting walks
    metrics in registration order.  Counters and gauges are {e polled}
    — the registry stores a closure and reads it at snapshot time — so
    existing mutable counters ([Demux.Lookup_stats], the TCP stack's
    drop counters) register without changing their own representation
    and without paying anything on their hot paths.  Histograms are
    owned: {!histogram} creates (or returns) the instance, and
    recorders write into it directly.

    Re-registering a name replaces its source but keeps its position —
    idempotent wiring for code paths that run more than once.

    {!to_json} emits the [tcpdemux-obs/1] snapshot schema documented
    in DESIGN.md §8; {!of_json} reads it back. *)

type t

val create : unit -> t

(** {1 Registration} *)

val register_counter :
  t -> ?help:string -> name:string -> (unit -> int) -> unit
(** A monotonic count, read at snapshot time. *)

val register_gauge :
  t -> ?help:string -> ?units:string -> name:string -> (unit -> float) -> unit
(** An instantaneous level, read at snapshot time. *)

val counter : t -> ?help:string -> string -> int ref
(** An owned counter for new code: registered under the name, returned
    for direct [incr].  If the name is already an owned counter, the
    existing ref is returned. *)

val histogram :
  t -> ?help:string -> ?units:string -> ?sub_bits:int -> string ->
  Histogram.t
(** Create-or-get a registered histogram.  An existing histogram under
    the name is returned as-is (its [sub_bits] wins); a non-histogram
    under the name is replaced. *)

val size : t -> int
(** Registered metric count. *)

(** {1 Snapshots} *)

type data =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.summary * (int * int * int) list
      (** Summary plus occupied buckets [(lo, hi, count)]. *)

type metric = { name : string; help : string; units : string; data : data }

val snapshot : t -> metric list
(** In registration order. *)

val find : metric list -> string -> metric option

val to_json : ?label:string -> t -> Json.t
(** The [tcpdemux-obs/1] schema:
    [{"schema": "tcpdemux-obs/1", "label": ..., "metrics": [...]}] —
    each metric carries [name]/[type]/[help]/[units] plus [value]
    (counter, gauge) or the summary fields and [buckets] (histogram). *)

val write_json : ?label:string -> t -> string -> unit
(** [to_json] pretty-printed to a file. *)

val of_json : Json.t -> (metric list, string) result
(** Read a snapshot back (the round-trip reader used by tests and the
    CI schema check).  Histogram summaries are reconstructed from the
    emitted fields; buckets are preserved. *)
