type kind =
  | Lookup_begin
  | Lookup_end
  | Cache_hit
  | Chain_walk
  | Insert
  | Remove
  | Eviction
  | Rejection
  | Drop
  | Phase
  | Latency
  | Batch

let kind_name = function
  | Lookup_begin -> "lookup-begin"
  | Lookup_end -> "lookup-end"
  | Cache_hit -> "cache-hit"
  | Chain_walk -> "chain-walk"
  | Insert -> "insert"
  | Remove -> "remove"
  | Eviction -> "eviction"
  | Rejection -> "rejection"
  | Drop -> "drop"
  | Phase -> "phase"
  | Latency -> "latency"
  | Batch -> "batch"

let kind_code = function
  | Lookup_begin -> 0
  | Lookup_end -> 1
  | Cache_hit -> 2
  | Chain_walk -> 3
  | Insert -> 4
  | Remove -> 5
  | Eviction -> 6
  | Rejection -> 7
  | Drop -> 8
  | Phase -> 9
  | Latency -> 10
  | Batch -> 11

let kind_of_code = function
  | 0 -> Some Lookup_begin
  | 1 -> Some Lookup_end
  | 2 -> Some Cache_hit
  | 3 -> Some Chain_walk
  | 4 -> Some Insert
  | 5 -> Some Remove
  | 6 -> Some Eviction
  | 7 -> Some Rejection
  | 8 -> Some Drop
  | 9 -> Some Phase
  | 10 -> Some Latency
  | 11 -> Some Batch
  | _ -> None

type record = { time : float; kind : kind; a : int; b : int }

type ring = {
  mutable clock : Clock.t;
  ring_id : int;
  times : float array;
  kinds : Bytes.t;
  pa : int array;
  pb : int array;
  mutable head : int;      (* next write position *)
  mutable total : int;     (* events ever recorded *)
}

type t = Disabled | Enabled of ring

let disabled = Disabled

let create ?(clock = Clock.wall ()) ?(id = 0) ~capacity () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  Enabled
    { clock; ring_id = id; times = Array.make capacity 0.0;
      kinds = Bytes.make capacity '\000'; pa = Array.make capacity 0;
      pb = Array.make capacity 0; head = 0; total = 0 }

let enabled = function Disabled -> false | Enabled _ -> true
let id = function Disabled -> 0 | Enabled r -> r.ring_id
let capacity = function Disabled -> 0 | Enabled r -> Array.length r.times

let set_clock t clock =
  match t with Disabled -> () | Enabled r -> r.clock <- clock

let record t kind a b =
  match t with
  | Disabled -> ()
  | Enabled r ->
    let i = r.head in
    r.times.(i) <- Clock.now r.clock;
    Bytes.unsafe_set r.kinds i (Char.unsafe_chr (kind_code kind));
    r.pa.(i) <- a;
    r.pb.(i) <- b;
    r.head <- (if i + 1 = Array.length r.times then 0 else i + 1);
    r.total <- r.total + 1

let length = function
  | Disabled -> 0
  | Enabled r -> min r.total (Array.length r.times)

let recorded = function Disabled -> 0 | Enabled r -> r.total
let dropped t = recorded t - length t

let clear = function
  | Disabled -> ()
  | Enabled r ->
    r.head <- 0;
    r.total <- 0

let nth_oldest r i =
  (* Index into the ring of the i-th oldest held event. *)
  let cap = Array.length r.times in
  let held = min r.total cap in
  let start = if r.total <= cap then 0 else r.head in
  let j = (start + i) mod cap in
  assert (i < held);
  j

let to_list t =
  match t with
  | Disabled -> []
  | Enabled r ->
    let held = length t in
    List.init held (fun i ->
        let j = nth_oldest r i in
        let kind =
          match kind_of_code (Char.code (Bytes.get r.kinds j)) with
          | Some k -> k
          | None -> assert false
        in
        { time = r.times.(j); kind; a = r.pa.(j); b = r.pb.(j) })

(* ------------------------------------------------------------------ *)
(* Binary dump                                                         *)

let magic = "OBSTRC1\n"

let put64 oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  output_bytes oc b

let put64_raw oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  output_bytes oc b

let dump t oc =
  output_string oc magic;
  put64 oc (id t);
  put64 oc (length t);
  List.iter
    (fun r ->
      put64_raw oc (Int64.bits_of_float r.time);
      output_char oc (Char.chr (kind_code r.kind));
      put64 oc r.a;
      put64 oc r.b)
    (to_list t)

let read_channel ic =
  let read_exactly n =
    match really_input_string ic n with
    | s -> Some s
    | exception End_of_file -> None
  in
  let get64 s off = Int64.to_int (String.get_int64_le s off) in
  let rec segments acc =
    match read_exactly (String.length magic) with
    | None -> Ok (List.rev acc)
    | Some header when header <> magic ->
      Error "trace: bad segment magic"
    | Some _ -> (
      match read_exactly 16 with
      | None -> Error "trace: truncated segment header"
      | Some meta ->
        let seg_id = get64 meta 0 in
        let count = get64 meta 8 in
        if count < 0 then Error "trace: negative event count"
        else
          let rec events i acc_events =
            if i = count then Some (List.rev acc_events)
            else
              match read_exactly 25 with
              | None -> None
              | Some raw -> (
                let time =
                  Int64.float_of_bits (String.get_int64_le raw 0)
                in
                match kind_of_code (Char.code raw.[8]) with
                | None -> None
                | Some kind ->
                  events (i + 1)
                    ({ time; kind; a = get64 raw 9; b = get64 raw 17 }
                    :: acc_events))
          in
          (match events 0 [] with
          | None -> Error "trace: truncated or corrupt event stream"
          | Some evs -> segments ((seg_id, evs) :: acc)))
  in
  segments []

let read_file path =
  match open_in_bin path with
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
  | exception Sys_error message -> Error ("trace: " ^ message)

let pp_record ppf r =
  Format.fprintf ppf "%.9f %-12s a=%d b=%d" r.time (kind_name r.kind) r.a r.b
