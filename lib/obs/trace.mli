(** Fixed-capacity ring buffer of typed hot-path events.

    A tracer either wraps a preallocated ring (struct-of-arrays:
    timestamps, kinds, two integer payloads — no per-event allocation)
    or is {!disabled}, in which case {!record} is a single pattern
    match on an immediate value: leaving trace calls in a packet hot
    path costs nothing measurable when tracing is off, which is the
    point — see the [obs] bechamel group in [bench/].

    Tracers are single-domain by design; parallel code creates one per
    domain (distinguished by [id]) and {!dump}s them into one file as
    consecutive segments, which {!read_file} returns separately. *)

(** The event vocabulary (payload meanings in [a]/[b]):

    - [Lookup_begin] — a PCB lookup opened.
    - [Lookup_end] — [a] = PCBs examined, [b] = bit 0 found, bit 1
      cache hit.
    - [Cache_hit] — a one-entry (or per-chain) cache satisfied the
      lookup.
    - [Chain_walk] — [a] = chain length walked (> 1 examined).
    - [Insert] / [Remove] — table population changes.
    - [Eviction] / [Rejection] — overload-guard shedding
      (see {!Demux.Guarded}).
    - [Drop] — ingest shed a datagram; [a] = reason code
      (0 parse-error, 1 wrong-destination, 2 handler-error — see
      [Tcpcore.Stack]).
    - [Phase] — a marker injected between runs ([a] = phase index), so
      one dump can carry several algorithms' traces.
    - [Latency] — [a] = measured latency (unit chosen by the
      recorder; the CLI uses nanoseconds).
    - [Batch] — a batched operation was issued ([a] = batch size,
      [b] = recorder-chosen tag: the parallel pipeline uses the worker
      shard index). *)
type kind =
  | Lookup_begin
  | Lookup_end
  | Cache_hit
  | Chain_walk
  | Insert
  | Remove
  | Eviction
  | Rejection
  | Drop
  | Phase
  | Latency
  | Batch

val kind_name : kind -> string
val kind_code : kind -> int
val kind_of_code : int -> kind option

type record = { time : float; kind : kind; a : int; b : int }

type t

val disabled : t
(** The shared no-op tracer: {!record} returns immediately without
    allocating; {!length} is 0; {!dump} writes an empty segment. *)

val create : ?clock:Clock.t -> ?id:int -> capacity:int -> unit -> t
(** A ring holding the last [capacity] events, timestamped by [clock]
    (default: wall).  [id] tags the dump segment (default 0) —
    parallel code uses the domain index.
    @raise Invalid_argument if [capacity] is not positive. *)

val enabled : t -> bool
val id : t -> int
val capacity : t -> int
(** 0 for {!disabled}. *)

val set_clock : t -> Clock.t -> unit
(** Swap the time source — e.g. to a simulation engine's virtual
    clock once the engine exists.  No-op on {!disabled}. *)

val record : t -> kind -> int -> int -> unit
(** [record t kind a b]: append one event (overwriting the oldest when
    full).  All arguments are immediates; the disabled path does not
    allocate. *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val recorded : t -> int
(** Events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring wrap ([recorded - length]). *)

val clear : t -> unit

val to_list : t -> record list
(** Held events, oldest first. *)

(** {1 Binary dump}

    A dump is a sequence of segments, one per {!dump} call:
    magic ["OBSTRC1\n"], then tracer id, event count (both 64-bit LE),
    then per event: timestamp (IEEE 754 bits), kind code (1 byte), [a],
    [b] (64-bit LE each).  Appending several tracers' dumps to one
    channel produces one readable file. *)

val dump : t -> out_channel -> unit

val read_channel : in_channel -> ((int * record list) list, string) result
(** All segments as [(id, events)], in file order. *)

val read_file : string -> ((int * record list) list, string) result

val pp_record : Format.formatter -> record -> unit
