type writer = { channel : out_channel; mutable count : int }

let magic = 0xA1B2C3D4l
let linktype_raw = 101l

let write_int32_le oc v =
  output_byte oc (Int32.to_int (Int32.logand v 0xFFl));
  output_byte oc (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl));
  output_byte oc (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl));
  output_byte oc (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl))

let write_int16_le oc v =
  output_byte oc (v land 0xFF);
  output_byte oc ((v lsr 8) land 0xFF)

let create_writer channel =
  write_int32_le channel magic;
  write_int16_le channel 2 (* version major *);
  write_int16_le channel 4 (* version minor *);
  write_int32_le channel 0l (* thiszone *);
  write_int32_le channel 0l (* sigfigs *);
  write_int32_le channel 0x40000l (* snaplen *);
  write_int32_le channel linktype_raw;
  { channel; count = 0 }

let write_packet w ~time data =
  let seconds = int_of_float (Float.floor time) in
  let micros = int_of_float ((time -. Float.floor time) *. 1e6) in
  let len = Bytes.length data in
  write_int32_le w.channel (Int32.of_int seconds);
  write_int32_le w.channel (Int32.of_int micros);
  write_int32_le w.channel (Int32.of_int len);
  write_int32_le w.channel (Int32.of_int len);
  output_bytes w.channel data;
  w.count <- w.count + 1

let packet_count w = w.count

type record = { time : float; data : bytes }

(* Read up to [n] bytes; returns the buffer and how many bytes were
   actually available, so truncation is reportable rather than an
   [End_of_file] escaping mid-list. *)
let read_up_to ic n =
  let buf = Bytes.create n in
  let rec fill off =
    if off >= n then off
    else
      match input ic buf off (n - off) with
      | 0 -> off
      | k -> fill (off + k)
  in
  (buf, fill 0)

let int32_le buf off =
  let b i = Int32.of_int (Bytes.get_uint8 buf (off + i)) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

(* No capture link we model produces records anywhere near this big; a
   larger incl_len is a corrupt or hostile file, and honouring it
   would make a 16-byte header allocate gigabytes. *)
let max_record_length = 0x1000000 (* 16 MiB *)

let read_all ic =
  let header, got = read_up_to ic 24 in
  if got < 24 then
    Error (Printf.sprintf "pcap: truncated global header (%d of 24 bytes)" got)
  else if int32_le header 0 <> magic then Error "pcap: bad magic"
  else
    let rec records acc ~offset =
      let record_header, got = read_up_to ic 16 in
      if got = 0 then Ok (List.rev acc)
      else if got < 16 then
        Error
          (Printf.sprintf
             "pcap: truncated record header at byte %d (%d of 16 bytes)"
             offset got)
      else
        let seconds = Int32.to_int (int32_le record_header 0) in
        let micros = Int32.to_int (int32_le record_header 4) in
        let caplen = Int32.to_int (int32_le record_header 8) in
        if caplen < 0 || caplen > max_record_length then
          Error
            (Printf.sprintf "pcap: absurd record length %ld at byte %d"
               (int32_le record_header 8) offset)
        else
          let data, got = read_up_to ic caplen in
          if got < caplen then
            Error
              (Printf.sprintf
                 "pcap: truncated record body at byte %d (%d of %d bytes)"
                 (offset + 16) got caplen)
          else
            let time = float_of_int seconds +. (float_of_int micros /. 1e6) in
            records ({ time; data } :: acc) ~offset:(offset + 16 + caplen)
    in
    records [] ~offset:24
