(** Minimal libpcap-format trace writer and reader.

    Lets the examples dump generated workloads to [.pcap] files that
    tcpdump/wireshark can open, and lets tests round-trip traces.  Uses
    the classic little-endian format (magic [0xA1B2C3D4], version 2.4)
    with link type 101 (LINKTYPE_RAW: packets begin with the IPv4
    header, so no synthetic Ethernet frames are needed). *)

type writer

val create_writer : out_channel -> writer
(** Write the global header and return a writer.  The caller retains
    ownership of the channel (close it yourself). *)

val write_packet : writer -> time:float -> bytes -> unit
(** Append one record with the given capture time (seconds, fractional
    part becomes microseconds). *)

val packet_count : writer -> int

type record = { time : float; data : bytes }

val read_all : in_channel -> (record list, string) result
(** Read every record of a file written by this module.  Never raises
    on a damaged file: a truncated global header, a record header or
    body cut short, and an absurd [incl_len] (negative or over 16 MiB)
    all return [Error] naming the byte offset of the damage. *)
