type t = { ip : Ipv4.t; tcp : Tcp_header.t; payload : string }

let make ?seq ?ack_number ?flags ?window ?options ?(payload = "") ?ttl
    ?identification ~(src : Flow.endpoint) ~(dst : Flow.endpoint) () =
  let tcp =
    Tcp_header.make ?seq ?ack_number ?flags ?window ?options
      ~src_port:src.Flow.port ~dst_port:dst.Flow.port ()
  in
  let tcp_len = Tcp_header.header_length tcp + String.length payload in
  let ip =
    Ipv4.make ?ttl ?identification ~src:src.Flow.addr ~dst:dst.Flow.addr
      ~protocol:Ipv4.Tcp ~payload_length:tcp_len ()
  in
  { ip; tcp; payload }

let flow t = Flow.of_headers t.ip t.tcp
let length t = Ipv4.header_length + t.ip.Ipv4.payload_length

let write t buf ~off =
  Ipv4.serialize t.ip buf ~off;
  let pseudo_sum = Ipv4.pseudo_header_sum t.ip in
  let tcp_len =
    Tcp_header.serialize t.tcp ~pseudo_sum ~payload:t.payload buf
      ~off:(off + Ipv4.header_length)
  in
  Ipv4.header_length + tcp_len

let to_bytes t =
  let buf = Bytes.create (length t) in
  let written = write t buf ~off:0 in
  assert (written = Bytes.length buf);
  buf

(* Read only the five header fields a steering layer needs — version,
   IHL, protocol, addresses, ports — without checksum verification or
   payload copying.  This is the work a NIC's RSS engine does per
   packet; full validation stays with [parse] on the owning core. *)
let peek_flow buf ~off =
  let len = Bytes.length buf - off in
  if len < Ipv4.header_length + 4 then Error "segment: truncated datagram"
  else
    let b i = Char.code (Bytes.unsafe_get buf (off + i)) in
    let first = b 0 in
    if first lsr 4 <> 4 then Error "ipv4: bad version"
    else
      let ihl = (first land 0xF) * 4 in
      if ihl < Ipv4.header_length then Error "ipv4: header too short"
      else if len < ihl + 4 then Error "segment: truncated datagram"
      else if b 9 <> 6 then Error "segment: not TCP"
      else
        let addr i =
          Ipv4.addr_of_int32
            (Int32.logor
               (Int32.shift_left (Int32.of_int ((b i lsl 8) lor b (i + 1))) 16)
               (Int32.of_int ((b (i + 2) lsl 8) lor b (i + 3))))
        in
        let port i = (b i lsl 8) lor b (i + 1) in
        let src = { Flow.addr = addr 12; port = port ihl } in
        let dst = { Flow.addr = addr 16; port = port (ihl + 2) } in
        (* The receiver's key: local = destination, remote = source. *)
        Ok { Flow.local = dst; remote = src }

let parse ?(verify_checksum = true) buf ~off =
  match Ipv4.parse buf ~off with
  | Error _ as e -> e
  | Ok (ip, tcp_off) ->
    if ip.Ipv4.protocol <> Ipv4.Tcp then Error "segment: not TCP"
    else if ip.Ipv4.more_fragments || ip.Ipv4.fragment_offset <> 0 then
      Error "segment: fragmented datagram"
    else
      let pseudo_sum =
        if verify_checksum then Some (Ipv4.pseudo_header_sum ip) else None
      in
      let tcp_len = ip.Ipv4.payload_length in
      (match Tcp_header.parse ?pseudo_sum ~len:tcp_len buf ~off:tcp_off with
      | Error _ as e -> e
      | Ok (tcp, payload_off) ->
        let payload_len = tcp_off + tcp_len - payload_off in
        let payload = Bytes.sub_string buf payload_off payload_len in
        Ok { ip; tcp; payload })

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a payload=%d bytes@]" Ipv4.pp t.ip
    Tcp_header.pp t.tcp (String.length t.payload)
