(** Whole TCP/IPv4 segments: build and parse headers + payload as one
    datagram, with both checksums correct on the wire. *)

type t = { ip : Ipv4.t; tcp : Tcp_header.t; payload : string }

val make :
  ?seq:int32 -> ?ack_number:int32 -> ?flags:Tcp_header.flags -> ?window:int ->
  ?options:Tcp_header.option_ list -> ?payload:string -> ?ttl:int ->
  ?identification:int -> src:Flow.endpoint -> dst:Flow.endpoint -> unit -> t
(** A segment travelling from [src] to [dst].
    @raise Invalid_argument on out-of-range fields (see
    {!Tcp_header.make}, {!Ipv4.make}). *)

val flow : t -> Flow.t
(** The demultiplexing key {e at the receiver} of this segment. *)

val length : t -> int
(** Total datagram size in bytes. *)

val to_bytes : t -> bytes
(** Serialize to a fresh buffer with valid IP and TCP checksums. *)

val write : t -> bytes -> off:int -> int
(** Serialize at [off]; returns bytes written.
    @raise Invalid_argument if the buffer is too small. *)

val parse : ?verify_checksum:bool -> bytes -> off:int -> (t, string) result
(** Parse an IPv4+TCP datagram.  With [verify_checksum] (default true)
    both checksums must be valid.  Rejects non-TCP protocols and
    fragments. *)

val peek_flow : bytes -> off:int -> (Flow.t, string) result
(** The demultiplexing key of the datagram at [off], read straight
    from the header bytes without checksum verification, option
    parsing or payload extraction — the constant-time peek an RSS
    steering layer performs before handing the datagram to the core
    that will {!parse} and validate it.  Rejects only what makes the
    4-tuple unreadable (truncation, wrong IP version, non-TCP). *)

val pp : Format.formatter -> t -> unit
