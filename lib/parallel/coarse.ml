type 'a t = { mutex : Mutex.t; demux : 'a Demux.Registry.t }

let create spec = { mutex = Mutex.create (); demux = Demux.Registry.create spec }
let name t = "coarse:" ^ t.demux.Demux.Registry.name

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let insert t flow data = locked t (fun () -> t.demux.Demux.Registry.insert flow data)
let remove t flow = locked t (fun () -> t.demux.Demux.Registry.remove flow)

let lookup t ?kind flow =
  locked t (fun () -> t.demux.Demux.Registry.lookup ?kind flow)

let lookup_batch t ?kind flows =
  if Array.length flows = 0 then 0
  else
    locked t (fun () ->
        Demux.Lookup_stats.note_batch t.demux.Demux.Registry.stats
          ~size:(Array.length flows);
        Array.fold_left
          (fun found flow ->
            match t.demux.Demux.Registry.lookup ?kind flow with
            | Some _ -> found + 1
            | None -> found)
          0 flows)

let insert_batch t entries =
  if Array.length entries = 0 then [||]
  else
    locked t (fun () ->
        Demux.Lookup_stats.note_batch t.demux.Demux.Registry.stats
          ~size:(Array.length entries);
        Array.map
          (fun (flow, data) -> t.demux.Demux.Registry.insert flow data)
          entries)

let note_send t flow = locked t (fun () -> t.demux.Demux.Registry.note_send flow)
let length t = locked t (fun () -> t.demux.Demux.Registry.length ())

let stats t =
  locked t (fun () -> Demux.Lookup_stats.snapshot t.demux.Demux.Registry.stats)
