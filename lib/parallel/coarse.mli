(** Single-global-lock demultiplexer — the baseline the lock striping
    of {!Striped} is measured against.

    Wraps any algorithm from {!Demux.Registry} in one mutex, the way a
    first parallel port of a uniprocessor stack would: correct, and a
    serialisation point for every inbound packet regardless of the
    underlying structure's speed. *)

type 'a t

val create : Demux.Registry.spec -> 'a t

val name : 'a t -> string
(** ["coarse:<algorithm>"]. *)

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Demux.Pcb.t
(** @raise Invalid_argument if the flow is already present. *)

val remove : 'a t -> Packet.Flow.t -> 'a Demux.Pcb.t option

val lookup :
  'a t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t ->
  'a Demux.Pcb.t option

val lookup_batch :
  'a t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t array -> int
(** Look up every flow under {e one} acquisition of the global lock;
    returns how many were found.  Charges one
    {!Demux.Lookup_stats.note_batch} plus the usual per-lookup
    accounting.  Amortises the mutex but not the serialisation: other
    domains still wait out the whole batch. *)

val insert_batch :
  'a t -> (Packet.Flow.t * 'a) array -> 'a Demux.Pcb.t array
(** Insert every entry under one lock acquisition; PCBs in input
    order.
    @raise Invalid_argument on a duplicate flow — earlier entries of
    the batch remain inserted. *)

val note_send : 'a t -> Packet.Flow.t -> unit
val length : 'a t -> int
val stats : 'a t -> Demux.Lookup_stats.snapshot
