type result = {
  workers : int;
  batch : int;
  packets : int;
  found : int;
  batches : int;
  dropped_packets : int;
  tier_dropped_packets : int;
  rejected_packets : int;
  max_ring_depth : int;
  elapsed_seconds : float;
  packets_per_second : float;
  per_worker_packets : int array;
}

(* One worker's drain loop: pop batches until the ring is closed AND
   empty.  A push can land between a failed pop and the close check,
   and close is published after the last push, so after observing
   [is_closed] one more drain pass sees everything. *)
let worker_loop ring lookup_batch =
  let found = ref 0 and packets = ref 0 in
  let consume (batch, hashes) =
    packets := !packets + Array.length batch;
    found := !found + lookup_batch batch ~hashes
  in
  let rec drain () =
    match Ring.try_pop ring with
    | Some batch -> consume batch; drain ()
    | None -> ()
  in
  let rec loop () =
    match Ring.try_pop ring with
    | Some batch -> consume batch; loop ()
    | None ->
      if Ring.is_closed ring then drain ()
      else begin
        Domain.cpu_relax ();
        loop ()
      end
  in
  loop ();
  (!packets, !found)

let run ?obs ?(tracer = Obs.Trace.disabled)
    ?(hasher = Hashing.Hashers.multiplicative) ?(ring_capacity = 64)
    ?(drop_on_full = false) ?pressure ~workers ~batch ~lookup_batch packets =
  if workers <= 0 then invalid_arg "Dispatcher.run: workers <= 0";
  if batch <= 0 then invalid_arg "Dispatcher.run: batch <= 0";
  if ring_capacity <= 0 then invalid_arg "Dispatcher.run: ring_capacity <= 0";
  let total = Array.length packets in
  if total = 0 then invalid_arg "Dispatcher.run: empty packet stream";
  let rings = Array.init workers (fun _ -> Ring.create ~capacity:ring_capacity) in
  (* Observability, matching lib/obs conventions: a batch-size
     histogram and a ring-depth histogram (sampled at each push), a
     backpressure drop counter, and a max-depth gauge. *)
  let batch_histogram =
    Option.map
      (fun obs ->
        Obs.Registry.histogram obs ~units:"packets"
          ~help:"packets per batch pushed to a worker ring"
          "pipeline.batch_size")
      obs
  in
  let depth_histogram =
    Option.map
      (fun obs ->
        Obs.Registry.histogram obs ~units:"batches"
          ~help:"destination ring depth sampled at each push"
          "pipeline.ring_depth")
      obs
  in
  let dropped = ref 0 and batches = ref 0 and max_depth = ref 0 in
  let tier_dropped = ref 0 and rejected = ref 0 in
  Option.iter
    (fun obs ->
      Obs.Registry.register_counter obs
        ~help:"packets dropped because the destination ring stayed full"
        ~name:"pipeline.backpressure_drops"
        (fun () -> !dropped);
      Obs.Registry.register_gauge obs ~units:"batches"
        ~help:"deepest worker-ring occupancy observed by the dispatcher"
        ~name:"pipeline.ring_depth_max"
        (fun () -> float_of_int !max_depth))
    obs;
  let counts = Array.make workers (0, 0) in
  let domains =
    Array.init workers (fun w ->
        Domain.spawn (fun () -> counts.(w) <- worker_loop rings.(w) lookup_batch))
  in
  let buffers = Array.init workers (fun _ -> Array.make batch packets.(0)) in
  (* Each packet's full flow hash, computed once at dispatch and
     shipped with the batch so downstream stages (stripe grouping in
     [Striped.lookup_batch_keyed]) never re-derive it. *)
  let hash_buffers = Array.init workers (fun _ -> Array.make batch 0) in
  let fills = Array.make workers 0 in
  let started = Obs.Clock.now_ns () in
  (* Ship worker [w]'s partial buffer as one immutable batch.  The
     pressure tier gates the push: at [Reject] the batch is refused
     before the ring is even tried; at [Drop_batches] a full ring drops
     the batch instead of blocking (a tier-attributed drop, counted
     separately from the explicit [drop_on_full] mode); below that the
     original semantics apply. *)
  let flush w =
    let fill = fills.(w) in
    if fill > 0 then begin
      fills.(w) <- 0;
      match pressure with
      | Some p when Pressure.rejecting p ->
        Pressure.note_rejected p ~packets:fill;
        rejected := !rejected + fill;
        (* Still sample the destination ring: the workers keep
           draining while the producer sheds, and without a load
           signal the controller would never observe the calm run it
           needs to leave Reject. *)
        let ring = rings.(w) in
        Pressure.note_ring_depth p ~depth:(Ring.length ring)
          ~capacity:(Ring.capacity ring)
      | _ ->
        let batch_array =
          if fill = batch then
            (Array.copy buffers.(w), Array.copy hash_buffers.(w))
          else (Array.sub buffers.(w) 0 fill, Array.sub hash_buffers.(w) 0 fill)
        in
        let ring = rings.(w) in
        let depth = Ring.length ring in
        if depth > !max_depth then max_depth := depth;
        Option.iter (fun h -> Obs.Histogram.record h depth) depth_histogram;
        Option.iter
          (fun p ->
            Pressure.note_ring_depth p ~depth ~capacity:(Ring.capacity ring))
          pressure;
        let shipped fill w =
          incr batches;
          Option.iter (fun h -> Obs.Histogram.record h fill) batch_histogram;
          Obs.Trace.record tracer Obs.Trace.Batch fill w
        in
        if Ring.try_push ring batch_array then shipped fill w
        else begin
          let tier_drop =
            match pressure with
            | Some p -> Pressure.drops_batches p
            | None -> false
          in
          if tier_drop then begin
            (match pressure with
            | Some p -> Pressure.note_dropped_batch p ~packets:fill
            | None -> ());
            tier_dropped := !tier_dropped + fill
          end
          else if drop_on_full then dropped := !dropped + fill
          else begin
            (* Backpressure: the worker is behind; wait for space. *)
            while not (Ring.try_push ring batch_array) do
              Domain.cpu_relax ()
            done;
            shipped fill w
          end
        end
    end
  in
  (* RSS: shard every packet by flow hash, so one connection's packets
     always reach the same worker (per-stripe caches stay warm and no
     two workers contend on one connection's stripe).  The hash is
     computed exactly once per packet, here; the worker index is its
     reduction mod workers (identical sharding to [bucket_flow]) and
     the full value ships with the batch. *)
  for i = 0 to total - 1 do
    let flow = packets.(i) in
    let h = Hashing.Hashers.hash_flow hasher flow in
    let w = h mod workers in
    buffers.(w).(fills.(w)) <- flow;
    hash_buffers.(w).(fills.(w)) <- h;
    fills.(w) <- fills.(w) + 1;
    if fills.(w) = batch then flush w
  done;
  for w = 0 to workers - 1 do
    flush w
  done;
  Array.iter Ring.close rings;
  Array.iter Domain.join domains;
  let elapsed =
    float_of_int (Obs.Clock.now_ns () - started) /. 1e9
  in
  let delivered = Array.fold_left (fun a (p, _) -> a + p) 0 counts in
  let found = Array.fold_left (fun a (_, f) -> a + f) 0 counts in
  { workers; batch; packets = total; found; batches = !batches;
    dropped_packets = !dropped; tier_dropped_packets = !tier_dropped;
    rejected_packets = !rejected; max_ring_depth = !max_depth;
    elapsed_seconds = elapsed;
    packets_per_second =
      (if elapsed > 0.0 then float_of_int delivered /. elapsed else 0.0);
    per_worker_packets = Array.map fst counts }

let lost_packets r =
  r.dropped_packets + r.tier_dropped_packets + r.rejected_packets

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d workers x batch %d: %d packets (%d found, %d dropped) in %.3f s \
     = %.0f pkts/s@,%d batches, max ring depth %d, per-worker %s@]"
    r.workers r.batch r.packets r.found (lost_packets r) r.elapsed_seconds
    r.packets_per_second r.batches r.max_ring_depth
    (String.concat ","
       (Array.to_list (Array.map string_of_int r.per_worker_packets)));
  if r.tier_dropped_packets > 0 || r.rejected_packets > 0 then
    Format.fprintf ppf
      "@,pressure: %d dropped at drop-batches, %d refused at reject"
      r.tier_dropped_packets r.rejected_packets
