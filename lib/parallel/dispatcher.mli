(** Batched, sharded demux pipeline: one dispatcher domain feeding N
    worker domains through bounded SPSC rings.

    This is the software shape of hardware RSS (receive-side scaling):
    the dispatcher hashes each inbound packet's flow and sends it to
    the worker that owns that hash shard, so all of a connection's
    packets meet the same worker — per-chain caches stay warm and no
    two workers ever contend on one connection.  Packets travel in
    {e batches}: the dispatcher accumulates up to [batch] packets per
    worker before pushing, and workers demultiplex each batch through
    a [lookup_batch] closure ({!Striped.lookup_batch} /
    {!Coarse.lookup_batch}), which takes each stripe mutex once per
    batch rather than once per packet — batching is what amortises the
    synchronisation and memory traffic that dominate per-packet lookup
    cost.

    The rings are bounded, so a slow worker surfaces as backpressure:
    by default the dispatcher spins until space frees (lossless); with
    [drop_on_full] it sheds the batch and counts the packets dropped,
    the way a NIC rx queue overflows.  With a {!Pressure} controller
    attached, degradation is tiered instead of binary: ring occupancy
    feeds the controller, and at [Drop_batches] or worse a full ring
    sheds the batch (attributed to the tier), while at [Reject] batches
    are refused before the ring is tried at all. *)

type result = {
  workers : int;
  batch : int;
  packets : int;              (** Packets offered to the dispatcher. *)
  found : int;                (** Lookups that found their PCB. *)
  batches : int;              (** Batches actually pushed. *)
  dropped_packets : int;      (** Shed on full rings ([drop_on_full]). *)
  tier_dropped_packets : int; (** Shed on full rings at [Drop_batches]. *)
  rejected_packets : int;     (** Refused outright at [Reject]. *)
  max_ring_depth : int;       (** Deepest ring occupancy observed. *)
  elapsed_seconds : float;    (** Monotonic, dispatch start to last join. *)
  packets_per_second : float;
  per_worker_packets : int array;  (** Delivered per shard — shows hash balance. *)
}

val lost_packets : result -> int
(** [dropped_packets + tier_dropped_packets + rejected_packets]: every
    offered packet is either delivered to a worker or counted here —
    the conservation law the chaos harness audits. *)

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t ->
  ?hasher:Hashing.Hashers.t -> ?ring_capacity:int -> ?drop_on_full:bool ->
  ?pressure:Pressure.t ->
  workers:int -> batch:int ->
  lookup_batch:(Packet.Flow.t array -> hashes:int array -> int) ->
  Packet.Flow.t array -> result
(** [run ~workers ~batch ~lookup_batch packets] spawns [workers]
    domains, shards [packets] across them in batches of [batch], joins
    them all, and reports.  [lookup_batch] must be safe to call from
    any domain (the parallel demultiplexers' batch APIs are).

    Each batch arrives with [hashes], the flows' full hash values
    under [hasher], computed {e once} per packet when the dispatcher
    sharded it.  Pass them to {!Striped.lookup_batch_keyed} (created
    with the same hasher) so the stripe-grouping stage does not
    re-derive per-packet keys; callers that do not want them can
    ignore the argument.

    Defaults: multiplicative hash (allocation-free per packet),
    [ring_capacity = 64] batches per worker (rounded up to a power of
    two), blocking backpressure.

    With [?obs], registers [pipeline.batch_size] and
    [pipeline.ring_depth] histograms, the
    [pipeline.backpressure_drops] counter and the
    [pipeline.ring_depth_max] gauge.  With [?tracer], records one
    [Batch] event per push ([a] = size, [b] = worker shard); the
    tracer is touched only by the dispatching domain.

    With [?pressure], every push samples ring occupancy into the
    controller ({!Pressure.note_ring_depth}) and the current tier
    gates shipping as described above; tier-attributed losses are
    counted both in the controller and in [tier_dropped_packets] /
    [rejected_packets].

    @raise Invalid_argument if [workers], [batch] or [ring_capacity]
    is non-positive, or [packets] is empty. *)

val pp : Format.formatter -> result -> unit
