(* Tiered overload controller shared by the dispatcher and the
   concurrent tables.

   The controller watches two load signals — worker-ring occupancy
   (sampled by the dispatcher at each push) and table insert latency
   (sampled by [Striped] under its stripe lock) — against high/low
   watermarks, and folds them into one degradation tier:

     Normal -> Shed_new_flows -> Drop_batches -> Reject

   Escalation and recovery are deliberately asymmetric (hysteresis): a
   run of [trip] consecutive hot observations escalates one tier, but
   only a run of [hold] consecutive calm observations — every signal
   back under its *low* watermark — recovers one tier.  Observations
   between the watermarks are neutral: they break both streaks, so the
   controller neither flaps under oscillating load nor recovers while
   the signal merely dipped below "hot".

   The tier itself and every counter are atomics, so any domain may
   read [tier] on its hot path without a lock; the streak state is
   guarded by a mutex because observations are rare (per batch / per
   insert), not per packet. *)

type tier = Normal | Shed_new_flows | Drop_batches | Reject

let tiers = [ Normal; Shed_new_flows; Drop_batches; Reject ]

let tier_index = function
  | Normal -> 0
  | Shed_new_flows -> 1
  | Drop_batches -> 2
  | Reject -> 3

let tier_of_index = function
  | 0 -> Normal
  | 1 -> Shed_new_flows
  | 2 -> Drop_batches
  | _ -> Reject

let tier_name = function
  | Normal -> "normal"
  | Shed_new_flows -> "shed-new-flows"
  | Drop_batches -> "drop-batches"
  | Reject -> "reject"

let severity = tier_index
let compare_tier a b = compare (severity a) (severity b)

type config = {
  ring_high_pct : int;   (* ring occupancy %: hot at or above *)
  ring_low_pct : int;    (* ring occupancy %: calm at or below *)
  insert_ns_high : int;  (* insert latency ns: hot at or above *)
  insert_ns_low : int;   (* insert latency ns: calm at or below *)
  trip : int;            (* consecutive hot observations to escalate *)
  hold : int;            (* consecutive calm observations to recover *)
}

let config ?(ring_high_pct = 75) ?(ring_low_pct = 25)
    ?(insert_ns_high = 50_000) ?(insert_ns_low = 5_000) ?(trip = 4)
    ?(hold = 16) () =
  if ring_high_pct <= ring_low_pct then
    invalid_arg "Pressure.config: ring_high_pct <= ring_low_pct";
  if insert_ns_high <= insert_ns_low then
    invalid_arg "Pressure.config: insert_ns_high <= insert_ns_low";
  if trip <= 0 then invalid_arg "Pressure.config: trip <= 0";
  if hold <= 0 then invalid_arg "Pressure.config: hold <= 0";
  { ring_high_pct; ring_low_pct; insert_ns_high; insert_ns_low; trip; hold }

type t = {
  cfg : config;
  cur : int Atomic.t;             (* tier_index of the current tier *)
  lock : Mutex.t;
  mutable hot_streak : int;
  mutable calm_streak : int;
  mutable pinned : bool;          (* a forced tier ignores observations *)
  transitions : int Atomic.t array;  (* entries into each tier *)
  observations : int Atomic.t;
  shed_flows : int Atomic.t;      (* inserts refused at >= Shed_new_flows *)
  dropped_batches : int Atomic.t; (* batches dropped at Drop_batches *)
  dropped_batch_packets : int Atomic.t;
  rejected_packets : int Atomic.t; (* packets refused outright at Reject *)
}

let create ?(config = config ()) () =
  { cfg = config;
    cur = Atomic.make 0;
    lock = Mutex.create ();
    hot_streak = 0;
    calm_streak = 0;
    pinned = false;
    transitions = Array.init 4 (fun _ -> Atomic.make 0);
    observations = Atomic.make 0;
    shed_flows = Atomic.make 0;
    dropped_batches = Atomic.make 0;
    dropped_batch_packets = Atomic.make 0;
    rejected_packets = Atomic.make 0 }

let tier t = tier_of_index (Atomic.get t.cur)
let configuration t = t.cfg

let set_tier t target =
  let target = tier_index target in
  if Atomic.exchange t.cur target <> target then
    Atomic.incr t.transitions.(target)

let force t target =
  Mutex.lock t.lock;
  t.pinned <- true;
  t.hot_streak <- 0;
  t.calm_streak <- 0;
  set_tier t target;
  Mutex.unlock t.lock

let release t =
  Mutex.lock t.lock;
  t.pinned <- false;
  t.hot_streak <- 0;
  t.calm_streak <- 0;
  Mutex.unlock t.lock

(* Fold one observation, already classified against its watermarks. *)
let observe t ~hot ~calm =
  Atomic.incr t.observations;
  Mutex.lock t.lock;
  (if not t.pinned then
     if hot then begin
       t.calm_streak <- 0;
       t.hot_streak <- t.hot_streak + 1;
       if t.hot_streak >= t.cfg.trip then begin
         t.hot_streak <- 0;
         let cur = Atomic.get t.cur in
         if cur < 3 then set_tier t (tier_of_index (cur + 1))
       end
     end
     else if calm then begin
       t.hot_streak <- 0;
       t.calm_streak <- t.calm_streak + 1;
       if t.calm_streak >= t.cfg.hold then begin
         t.calm_streak <- 0;
         let cur = Atomic.get t.cur in
         if cur > 0 then set_tier t (tier_of_index (cur - 1))
       end
     end
     else begin
       (* Between the watermarks: neither escalating nor recovering. *)
       t.hot_streak <- 0;
       t.calm_streak <- 0
     end);
  Mutex.unlock t.lock

let note_ring_depth t ~depth ~capacity =
  if capacity > 0 then begin
    let pct = depth * 100 / capacity in
    observe t ~hot:(pct >= t.cfg.ring_high_pct) ~calm:(pct <= t.cfg.ring_low_pct)
  end

let note_insert_ns t ns =
  observe t ~hot:(ns >= t.cfg.insert_ns_high) ~calm:(ns <= t.cfg.insert_ns_low)

(* Decision helpers: what does the current tier permit? *)
let admits_new_flows t = Atomic.get t.cur < tier_index Shed_new_flows
let drops_batches t = Atomic.get t.cur >= tier_index Drop_batches
let rejecting t = Atomic.get t.cur >= tier_index Reject

let note_shed_flow t = Atomic.incr t.shed_flows

let note_dropped_batch t ~packets =
  Atomic.incr t.dropped_batches;
  ignore (Atomic.fetch_and_add t.dropped_batch_packets packets)

let note_rejected t ~packets =
  ignore (Atomic.fetch_and_add t.rejected_packets packets)

let shed_flows t = Atomic.get t.shed_flows
let dropped_batches t = Atomic.get t.dropped_batches
let dropped_batch_packets t = Atomic.get t.dropped_batch_packets
let rejected_packets t = Atomic.get t.rejected_packets
let observations t = Atomic.get t.observations

let transitions t =
  List.map
    (fun tr -> (tier_name tr, Atomic.get t.transitions.(tier_index tr)))
    tiers

let counters t =
  [ ("shed-new-flows", shed_flows t);
    ("drop-batches", dropped_batch_packets t);
    ("reject", rejected_packets t) ]

let register_obs ?(prefix = "pressure") t obs =
  let name suffix = prefix ^ "." ^ suffix in
  Obs.Registry.register_gauge obs ~help:"current degradation tier (0..3)"
    ~name:(name "tier")
    (fun () -> float_of_int (Atomic.get t.cur));
  Obs.Registry.register_counter obs
    ~help:"load observations folded into the controller"
    ~name:(name "observations")
    (fun () -> observations t);
  List.iter
    (fun tr ->
      Obs.Registry.register_counter obs
        ~help:("transitions into tier " ^ tier_name tr)
        ~name:(name ("transitions." ^ tier_name tr))
        (fun () -> Atomic.get t.transitions.(tier_index tr)))
    tiers;
  Obs.Registry.register_counter obs
    ~help:"new-flow inserts refused while shedding"
    ~name:(name "shed_flows")
    (fun () -> shed_flows t);
  Obs.Registry.register_counter obs
    ~help:"batches dropped whole at the drop-batches tier"
    ~name:(name "dropped_batches")
    (fun () -> dropped_batches t);
  Obs.Registry.register_counter obs
    ~help:"packets inside batches dropped at the drop-batches tier"
    ~name:(name "dropped_batch_packets")
    (fun () -> dropped_batch_packets t);
  Obs.Registry.register_counter obs
    ~help:"packets refused outright at the reject tier"
    ~name:(name "rejected_packets")
    (fun () -> rejected_packets t)

let pp_tier ppf tr = Format.pp_print_string ppf (tier_name tr)
