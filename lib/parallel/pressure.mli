(** Tiered overload controller for the parallel pipeline.

    One controller is shared by the {!Dispatcher} (which samples
    worker-ring occupancy at each push) and the {!Striped} table (which
    samples insert latency under its stripe lock); both signals are
    classified against high/low watermarks and folded into a single
    degradation tier:

    {ul
    {- {!Normal} — full service.}
    {- {!Shed_new_flows} — tables refuse {e new} flows
       ({!Striped.try_insert} answers [`Shed]); established traffic is
       untouched.}
    {- {!Drop_batches} — the dispatcher drops a whole batch instead of
       blocking when a worker ring is full.}
    {- {!Reject} — the dispatcher stops offering batches entirely.}}

    Movement between tiers is hysteretic: [trip] consecutive hot
    observations (any signal at or above its high watermark) escalate
    one tier; [hold] consecutive calm observations (every signal at or
    below its {e low} watermark) recover one tier; observations between
    the watermarks reset both streaks.  So a brief spike does not
    escalate, and recovery waits for genuinely quiet load, not just a
    dip below "hot".

    [tier] is a single atomic read — safe and cheap from any domain.
    Every shed/drop/reject decision is counted per tier, so accounting
    can be audited exactly ({!Check}'s chaos oracle does). *)

type tier = Normal | Shed_new_flows | Drop_batches | Reject

val tiers : tier list
(** In severity order, mildest first. *)

val tier_index : tier -> int
(** 0 (Normal) .. 3 (Reject). *)

val tier_name : tier -> string
(** ["normal"], ["shed-new-flows"], ["drop-batches"], ["reject"]. *)

val compare_tier : tier -> tier -> int
(** By severity. *)

type config

val config :
  ?ring_high_pct:int -> ?ring_low_pct:int -> ?insert_ns_high:int ->
  ?insert_ns_low:int -> ?trip:int -> ?hold:int -> unit -> config
(** Watermarks and hysteresis.  Ring occupancy is classified in percent
    of capacity (hot at or above [ring_high_pct], default 75; calm at
    or below [ring_low_pct], default 25); insert latency in
    nanoseconds (hot at or above [insert_ns_high], default 50_000;
    calm at or below [insert_ns_low], default 5_000).  [trip] (default
    4) and [hold] (default 16) are the escalation and recovery streak
    lengths.
    @raise Invalid_argument if a high watermark does not exceed its
    low, or a streak length is non-positive. *)

type t

val create : ?config:config -> unit -> t
(** A fresh controller at {!Normal}. *)

val tier : t -> tier
(** Current tier — one atomic read, callable from any domain. *)

val configuration : t -> config

(** {1 Observations} *)

val note_ring_depth : t -> depth:int -> capacity:int -> unit
(** One ring-occupancy sample (the dispatcher, at each push). *)

val note_insert_ns : t -> int -> unit
(** One insert-latency sample ({!Striped}, under the stripe lock). *)

val force : t -> tier -> unit
(** Pin the tier, ignoring observations until {!release} — chaos
    scenarios and tests use this to stage a specific degradation. *)

val release : t -> unit
(** Undo {!force}; observations drive the tier again (from wherever
    [force] left it). *)

(** {1 Decisions}

    Hot-path predicates (one atomic read each) plus the matching
    accounting note, called by the component that acted on the
    decision. *)

val admits_new_flows : t -> bool
(** [false] at {!Shed_new_flows} or worse. *)

val drops_batches : t -> bool
(** [true] at {!Drop_batches} or worse. *)

val rejecting : t -> bool
(** [true] at {!Reject}. *)

val note_shed_flow : t -> unit
val note_dropped_batch : t -> packets:int -> unit
val note_rejected : t -> packets:int -> unit

(** {1 Accounting} *)

val shed_flows : t -> int
val dropped_batches : t -> int
val dropped_batch_packets : t -> int
val rejected_packets : t -> int
val observations : t -> int

val transitions : t -> (string * int) list
(** Entries into each tier since creation, keyed by {!tier_name}, in
    {!tiers} order. *)

val counters : t -> (string * int) list
(** The three degradation counters keyed by the tier that caused them:
    [("shed-new-flows", flows); ("drop-batches", packets);
    ("reject", packets)]. *)

val register_obs : ?prefix:string -> t -> Obs.Registry.t -> unit
(** Register tier gauge, transition counters and degradation counters
    under ["<prefix>."] (default ["pressure"]). *)

val pp_tier : Format.formatter -> tier -> unit
