type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t;   (* next index the consumer will read *)
  tail : int Atomic.t;   (* next index the producer will write *)
  closed : bool Atomic.t;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity <= 0";
  let capacity = next_pow2 capacity 1 in
  { slots = Array.make capacity None; mask = capacity - 1;
    head = Atomic.make 0; tail = Atomic.make 0; closed = Atomic.make false }

let capacity t = Array.length t.slots

let length t =
  (* Racy by nature (two independent atomic reads); clamp so a torn
     pair never reports a negative or over-capacity depth. *)
  let depth = Atomic.get t.tail - Atomic.get t.head in
  if depth < 0 then 0 else min depth (capacity t)

let is_empty t = length t = 0

let try_push t value =
  if Atomic.get t.closed then invalid_arg "Ring.try_push: ring is closed";
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= capacity t then false
  else begin
    (* Plain write, then the Atomic.set on [tail] publishes it: the
       consumer's acquiring read of [tail] orders the slot contents. *)
    t.slots.(tail land t.mask) <- Some value;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  if head >= Atomic.get t.tail then None
  else begin
    let index = head land t.mask in
    let value = t.slots.(index) in
    (* Clear before publishing [head], so the producer's acquiring
       read of [head] knows the slot is free to overwrite — and so the
       ring does not retain the element against the GC. *)
    t.slots.(index) <- None;
    Atomic.set t.head (head + 1);
    match value with
    | Some _ -> value
    | None -> assert false (* producer published tail after the write *)
  end

let close t = Atomic.set t.closed true
let is_closed t = Atomic.get t.closed
