(** Bounded single-producer / single-consumer ring.

    The queue between the demux pipeline's dispatcher and each worker
    domain ({!Dispatcher}): the dispatcher is the only pusher, the
    worker the only popper, so neither side ever takes a lock — one
    atomic read and one atomic write per operation, and the bounded
    capacity is the pipeline's backpressure signal (a full ring means
    the worker is behind).

    Safety relies on the SPSC contract: concurrent {!try_push} from
    two domains (or {!try_pop} from two) is a race.  {!length},
    {!is_closed} and {!capacity} may be read from anywhere. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to the next power of two.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
(** The rounded capacity actually in force. *)

val try_push : 'a t -> 'a -> bool
(** Producer side.  [false] means full — the caller decides whether to
    spin (backpressure) or drop.
    @raise Invalid_argument if the ring has been {!close}d. *)

val try_pop : 'a t -> 'a option
(** Consumer side.  [None] means currently empty, not finished: check
    {!is_closed}, and after observing it closed, pop again until empty
    (a push may land between a failed pop and the close check). *)

val length : 'a t -> int
(** Current depth.  Approximate under concurrency (the two ends move
    independently) but always within [0, capacity] — good enough for
    the pipeline's ring-depth gauge. *)

val is_empty : 'a t -> bool

val close : 'a t -> unit
(** Producer signals end-of-stream.  Elements already queued remain
    poppable; further pushes raise. *)

val is_closed : 'a t -> bool
