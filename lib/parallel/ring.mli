(** Bounded single-producer / single-consumer ring.

    The queue between the demux pipeline's dispatcher and each worker
    domain ({!Dispatcher}): the dispatcher is the only pusher, the
    worker the only popper, so neither side ever takes a lock — one
    atomic read and one atomic write per operation, and the bounded
    capacity is the pipeline's backpressure signal (a full ring means
    the worker is behind).

    Safety relies on the SPSC contract: concurrent {!try_push} from
    two domains (or {!try_pop} from two) is a race.  {!length},
    {!is_closed} and {!capacity} may be read from anywhere. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to the next power of two.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
(** The rounded capacity actually in force. *)

val try_push : 'a t -> 'a -> bool
(** Producer side.  [false] means full — the caller decides whether to
    spin (backpressure) or drop.
    @raise Invalid_argument if the ring has been {!close}d. *)

val try_pop : 'a t -> 'a option
(** Consumer side.  [None] means currently empty, not finished: check
    {!is_closed}, and after observing it closed, pop again until empty
    (a push may land between a failed pop and the close check). *)

val length : 'a t -> int
(** Current depth.  Approximate under concurrency (the two ends move
    independently) but always within [0, capacity] — good enough for
    the pipeline's ring-depth gauge. *)

val is_empty : 'a t -> bool

val close : 'a t -> unit
(** Producer signals end-of-stream.  Elements already queued remain
    poppable; further pushes raise [Invalid_argument].  Idempotent.

    {b Close semantics.}  [close] is part of the producer's program
    order: every element pushed before the call is published (the
    producer's [Atomic] write of the tail index happens before the
    closed flag is set), so a consumer that {e observes}
    [is_closed t = true] is guaranteed that one final drain —
    popping until {!try_pop} returns [None] — delivers every element
    that was ever pushed, exactly once and in push order.  The full
    consumer protocol is therefore:

    {v
      pop until None;
      if is_closed then pop until None  (* authoritative: done *)
      else retry / back off             (* None just meant empty *)
    v}

    The second drain is not optional: a push can land between a
    failed pop and the close check, and [None] from {!try_pop} means
    "empty right now", never "finished", until closed has been
    observed.  Nothing is lost and nothing is duplicated when pushes
    race [close] from the producer's own domain — the race that
    matters is only ever producer-vs-consumer, which the SPSC
    index discipline already orders.  See the produce-vs-close
    property test in [test_parallel.ml]. *)

val is_closed : 'a t -> bool
