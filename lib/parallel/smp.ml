type steering = Flow_hash | Chain_affine

type config = {
  domains : int;
  ring_capacity : int;
  demux : Demux.Registry.spec;
  steering : steering;
  migrate : bool;
  migrate_target : int option;
  listen_port : int;
  local_addr : Packet.Ipv4.addr;
  iss : Packet.Flow.t -> int32;
  on_data :
    Tcpcore.Stack.t -> Tcpcore.Stack.connection -> string -> unit;
  pressure : Pressure.config option;
  on_pressure : Pressure.t array -> unit;
  stall : (int * int) option;
  stages : bool;
}

let config ?(ring_capacity = 1024)
    ?(demux =
      Demux.Registry.Sequent
        { chains = 19; hasher = Hashing.Hashers.multiplicative })
    ?(steering = Chain_affine) ?(migrate = false) ?migrate_target
    ?(listen_port = 8888) ?(iss = Tcpcore.Stack.deterministic_iss)
    ?(on_data = fun _ _ _ -> ()) ?pressure ?(on_pressure = fun _ -> ())
    ?stall ?(stages = false) ~domains ~local_addr () =
  if domains <= 0 then invalid_arg "Smp.config: domains <= 0";
  if ring_capacity <= 0 then invalid_arg "Smp.config: ring_capacity <= 0";
  if listen_port <= 0 || listen_port > 0xFFFF then
    invalid_arg "Smp.config: bad listen_port";
  (match migrate_target with
  | Some t when not migrate ->
    invalid_arg
      (Printf.sprintf "Smp.config: migrate_target %d without migrate" t)
  | Some t when t < 0 || t >= domains ->
    invalid_arg "Smp.config: migrate_target outside [0, domains)"
  | _ -> ());
  (match stall with
  | Some (i, _) when i < 0 || i >= domains ->
    invalid_arg "Smp.config: stall domain outside [0, domains)"
  | Some (_, ns) when ns < 0 -> invalid_arg "Smp.config: negative stall"
  | _ -> ());
  { domains; ring_capacity; demux; steering; migrate; migrate_target;
    listen_port; local_addr; iss; on_data; pressure; on_pressure; stall;
    stages }

type conn_summary = {
  flow : Packet.Flow.t;
  state : Tcpcore.State.t;
  bytes_in : int;
  bytes_out : int;
  snd_nxt : int32;
  rcv_nxt : int32;
  snd_una : int32;
}

type domain_result = {
  index : int;
  steered : int;
  rejected : int;
  dropped_full : int;
  processed : int;
  forwarded_in : int;
  forwarded_out : int;
  buffered : int;
  adopted : int;
  migrated_out : int;
  self_handoffs : int;
  flushes : int;
  unclassified : int;
  leftover : int;
  tx : int;
  connections : int;
  drops : (string * int) list;
  stats : Demux.Lookup_stats.snapshot;
  tier : string option;
  tier_transitions : (string * int) list;
  pressure_counters : (string * int) list;
}

type result = {
  domains : int;
  total : int;
  per_domain : domain_result array;
  merged_drops : (string * int) list;
  merged_stats : Demux.Lookup_stats.snapshot;
  connections : conn_summary list;
  handoffs : int;
  self_handoffs : int;
  forwarded : int;
  flushes : int;
  elapsed_s : float;
  packets_per_s : float;
  stages : (string * Obs.Histogram.t) list;
}

(* Dispatcher -> worker messages.  [Flush f] only ever travels to the
   listener core (ring 0): "every straggler of [f] precedes this
   message — forward them, then tell the new owner the stream is
   complete". *)
type msg = Datagram of bytes | Flush of Packet.Flow.t

(* Listener core -> adopting core, over that core's peer ring.  FIFO
   order carries the protocol: [Adopt] before any [Forwarded] segment
   of the flow, [Forward_done] after the last. *)
type peer_msg =
  | Adopt of Tcpcore.Stack.connection
  | Forwarded of bytes
  | Forward_done of Packet.Flow.t

(* Listener core -> dispatcher: route datagrams of [flow] to domain
   [k] from now on. *)
type ctrl_msg = Redirect of Packet.Flow.t * int

(* What each worker domain returns through [Domain.join] — the stack
   itself never crosses domains. *)
type worker_summary = {
  w_processed : int;
  w_forwarded_in : int;
  w_forwarded_out : int;
  w_buffered : int;
  w_adopted : int;
  w_migrated_out : int;
  w_self_handoffs : int;
  w_flushes : int;
  w_unclassified : int;
  w_leftover : int;
  w_tx : int;
  w_connection_count : int;
  w_connections : conn_summary list;
  w_drops : (string * int) list;
  w_stats : Demux.Lookup_stats.snapshot;
}

let blocking_push ring v =
  while not (Ring.try_push ring v) do
    Domain.cpu_relax ()
  done

let stack_tier = function
  | Pressure.Normal -> Tcpcore.Stack.Normal
  | Pressure.Shed_new_flows -> Tcpcore.Stack.Shed_new_flows
  | Pressure.Drop_batches -> Tcpcore.Stack.Drop_batches
  | Pressure.Reject -> Tcpcore.Stack.Reject

(* The whole life of one worker domain: build a private stack, drain
   the dispatcher ring (and, when adopting, the peer ring) until both
   are closed and empty, summarize. *)
let worker (cfg : config) ~index ~ring ~peer_in ~peer_out ~ctrl ~input_done
    ~w0_drained ~pressure ~stall_ns ~stage_parse ~stage_demux
    ~stage_state () =
  let stack =
    Tcpcore.Stack.create ~demux:cfg.demux ~iss:cfg.iss
      ~local_addr:cfg.local_addr ()
  in
  Tcpcore.Stack.listen stack ~port:cfg.listen_port ~on_data:cfg.on_data;
  (match pressure with
  | Some p ->
    Tcpcore.Stack.set_overload_probe stack (fun () ->
        stack_tier (Pressure.tier p))
  | None -> ());
  if cfg.stages then
    Tcpcore.Stack.set_stage_histograms stack ~parse:stage_parse
      ~demux:stage_demux ~state:stage_state;
  let processed = ref 0
  and forwarded_in = ref 0
  and forwarded_out = ref 0
  and buffered = ref 0
  and adopted = ref 0
  and migrated_out = ref 0
  and self_handoffs = ref 0
  and flushes = ref 0
  and unclassified = ref 0
  and leftover = ref 0
  and tx = ref 0 in
  let drain_tx () =
    tx := !tx + List.length (Tcpcore.Stack.poll_output stack)
  in
  let stall () =
    if stall_ns > 0 then begin
      let until = Obs.Clock.now_ns () + stall_ns in
      while Obs.Clock.now_ns () < until do
        Domain.cpu_relax ()
      done
    end
  in
  (* Migration state.  Listener core: flows extracted but not yet
     flushed ([migrating]: stragglers still possible in ring 0) and
     flows fully handed off.  Adopting core: per-flow backlogs of
     direct datagrams awaiting [Forward_done], then the adopted set. *)
  let pending_migration = Queue.create () in
  let migrating = Demux.Flow_table.create 64 in
  let handed_off = Demux.Flow_table.create 64 in
  let pending_buffers = Demux.Flow_table.create 64 in
  let adopted_set = Demux.Flow_table.create 64 in
  let _, geometry_hasher = Demux.Registry.chain_geometry cfg.demux in
  let target_of flow =
    match cfg.migrate_target with
    | Some t -> t
    | None ->
      if cfg.domains = 1 then 0
      else
        1
        + Hashing.Hashers.bucket_flow geometry_hasher
            ~buckets:(cfg.domains - 1) flow
  in
  if cfg.migrate && index = 0 then
    Tcpcore.Stack.set_on_established stack
      (Some
         (fun _ conn ->
           Queue.add conn.Tcpcore.Stack.flow pending_migration));
  (* The hook must not reenter the stack, so handoffs are performed
     here, after [handle_bytes] has returned. *)
  let process_migrations () =
    while not (Queue.is_empty pending_migration) do
      let flow = Queue.pop pending_migration in
      match Tcpcore.Stack.extract_connection stack flow with
      | None -> incr unclassified
      | Some conn ->
        let t = target_of flow in
        if t = index then begin
          Tcpcore.Stack.adopt_connection stack conn;
          incr self_handoffs
        end
        else begin
          incr migrated_out;
          blocking_push peer_out.(t) (Adopt conn);
          Demux.Flow_table.replace migrating flow t;
          blocking_push ctrl (Redirect (flow, t))
        end
    done
  in
  let feed bytes =
    incr processed;
    stall ();
    ignore (Tcpcore.Stack.handle_bytes stack bytes);
    if cfg.migrate && index = 0 then process_migrations ();
    drain_tx ()
  in
  let feed_forwarded bytes =
    incr forwarded_in;
    stall ();
    ignore (Tcpcore.Stack.handle_bytes stack bytes);
    drain_tx ()
  in
  (* Listener core: a datagram for a migrating flow is a straggler
     steered before the route change — forward it; a flush closes the
     straggler stream. *)
  let handle_w0 = function
    | Datagram bytes -> (
      match Packet.Segment.peek_flow bytes ~off:0 with
      | Error _ -> feed bytes
      | Ok flow -> (
        match Demux.Flow_table.find_opt migrating flow with
        | Some t ->
          incr forwarded_out;
          blocking_push peer_out.(t) (Forwarded bytes)
        | None ->
          if Demux.Flow_table.mem handed_off flow then incr unclassified
          else feed bytes))
    | Flush flow -> (
      match Demux.Flow_table.find_opt migrating flow with
      | Some t ->
        incr flushes;
        Demux.Flow_table.remove migrating flow;
        Demux.Flow_table.replace handed_off flow t;
        blocking_push peer_out.(t) (Forward_done flow)
      | None -> incr unclassified)
  in
  (* Adopting core, peer-ring side. *)
  let handle_peer = function
    | Adopt conn ->
      Tcpcore.Stack.adopt_connection stack conn;
      incr adopted;
      Demux.Flow_table.replace pending_buffers conn.Tcpcore.Stack.flow
        (Queue.create ())
    | Forwarded bytes -> feed_forwarded bytes
    | Forward_done flow -> (
      match Demux.Flow_table.find_opt pending_buffers flow with
      | Some q ->
        Queue.iter feed q;
        Demux.Flow_table.remove pending_buffers flow;
        Demux.Flow_table.replace adopted_set flow ()
      | None -> incr unclassified)
  in
  let drain_peer pr =
    let rec go () =
      match Ring.try_pop pr with
      | Some m ->
        handle_peer m;
        go ()
      | None -> ()
    in
    go ()
  in
  (* Adopting core, direct side.  A flow in neither set after a full
     peer-ring drain cannot be a redirected flow: its [Adopt] was
     pushed before the [Redirect] the dispatcher acted on, so the
     SC-atomic ring order makes it visible by the time the redirected
     datagram is popped.  With migrate steering everything lands on
     domain 0 first, so reaching that branch is a protocol violation,
     counted, never fed. *)
  let classify_direct bytes =
    match Packet.Segment.peek_flow bytes ~off:0 with
    | Error _ -> feed bytes
    | Ok flow ->
      let rec attempt retried =
        match Demux.Flow_table.find_opt pending_buffers flow with
        | Some q ->
          incr buffered;
          Queue.add bytes q
        | None ->
          if Demux.Flow_table.mem adopted_set flow then feed bytes
          else if retried then incr unclassified
          else begin
            (match peer_in with Some pr -> drain_peer pr | None -> ());
            attempt true
          end
      in
      attempt false
  in
  (match peer_in with
  | None ->
    (* Plain shard (all workers without migration, and the listener
       core when there are no peers to adopt from).  One ring, one
       producer: pop until closed and drained. *)
    let handle =
      if cfg.migrate && index = 0 then handle_w0
      else function
        | Datagram bytes -> feed bytes
        | Flush _ -> incr unclassified
    in
    let rec drain () =
      match Ring.try_pop ring with
      | Some m ->
        handle m;
        drain ()
      | None -> ()
    in
    let rec loop () =
      match Ring.try_pop ring with
      | Some m ->
        handle m;
        loop ()
      | None ->
        if
          cfg.migrate && index = 0
          && Atomic.get input_done
          && Ring.is_empty ring
        then Atomic.set w0_drained true;
        if Ring.is_closed ring then drain ()
        else begin
          Domain.cpu_relax ();
          loop ()
        end
    in
    loop ();
    if cfg.migrate && index = 0 then begin
      Atomic.set w0_drained true;
      Array.iteri
        (fun k r -> if k > 0 then Ring.close r)
        peer_out
    end
  | Some pr ->
    (* Adopting core: interleave the direct ring and the peer ring;
       done when both are closed and a joint drain makes no
       progress. *)
    let pump () =
      let progress = ref false in
      (match Ring.try_pop ring with
      | Some (Datagram b) ->
        classify_direct b;
        progress := true
      | Some (Flush _) ->
        incr unclassified;
        progress := true
      | None -> ());
      (match Ring.try_pop pr with
      | Some m ->
        handle_peer m;
        progress := true
      | None -> ());
      !progress
    in
    let rec loop () =
      if pump () then loop ()
      else if Ring.is_closed ring && Ring.is_closed pr then
        while pump () do
          ()
        done
      else begin
        Domain.cpu_relax ();
        loop ()
      end
    in
    loop ();
    Demux.Flow_table.iter
      (fun _ q -> leftover := !leftover + Queue.length q)
      pending_buffers);
  let connections = ref [] in
  Tcpcore.Stack.iter_connections stack (fun c ->
      connections :=
        { flow = c.Tcpcore.Stack.flow; state = c.state;
          bytes_in = c.bytes_in; bytes_out = c.bytes_out;
          snd_nxt = c.snd_nxt; rcv_nxt = c.rcv_nxt; snd_una = c.snd_una }
        :: !connections);
  { w_processed = !processed; w_forwarded_in = !forwarded_in;
    w_forwarded_out = !forwarded_out; w_buffered = !buffered;
    w_adopted = !adopted; w_migrated_out = !migrated_out;
    w_self_handoffs = !self_handoffs; w_flushes = !flushes;
    w_unclassified = !unclassified; w_leftover = !leftover; w_tx = !tx;
    w_connection_count = Tcpcore.Stack.connection_count stack;
    w_connections = !connections;
    w_drops = Tcpcore.Stack.drop_counts stack;
    w_stats = Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats stack)
  }

let merge_counts lists =
  match lists with
  | [] -> []
  | first :: _ ->
    List.map
      (fun (key, _) ->
        ( key,
          List.fold_left
            (fun acc l ->
              acc + (match List.assoc_opt key l with Some n -> n | None -> 0))
            0 lists ))
      first

let run (cfg : config) datagrams =
  let total = Array.length datagrams in
  if total = 0 then invalid_arg "Smp.run: empty trace";
  let d = cfg.domains in
  let chains, hasher = Demux.Registry.chain_geometry cfg.demux in
  let rings =
    Array.init d (fun _ -> Ring.create ~capacity:cfg.ring_capacity)
  in
  (* Peer rings exist only when another core can adopt; index 0 is a
     placeholder so worker code indexes by domain. *)
  let peer =
    if cfg.migrate && d > 1 then
      Array.init d (fun _ -> Ring.create ~capacity:cfg.ring_capacity)
    else [||]
  in
  let ctrl = Ring.create ~capacity:256 in
  let input_done = Atomic.make false in
  let w0_drained = Atomic.make false in
  let controllers =
    Option.map
      (fun pc -> Array.init d (fun _ -> Pressure.create ~config:pc ()))
      cfg.pressure
  in
  (match controllers with Some cs -> cfg.on_pressure cs | None -> ());
  let mk_h () = if cfg.stages then Some (Obs.Histogram.create ()) else None in
  let parse_h = Array.init d (fun _ -> mk_h ())
  and demux_h = Array.init d (fun _ -> mk_h ())
  and state_h = Array.init d (fun _ -> mk_h ()) in
  let steer_h = Obs.Histogram.create ()
  and enqueue_h = Obs.Histogram.create () in
  let started = Obs.Clock.now_ns () in
  let workers =
    Array.init d (fun k ->
        Domain.spawn (fun () ->
            worker cfg ~index:k ~ring:rings.(k)
              ~peer_in:(if cfg.migrate && k > 0 then Some peer.(k) else None)
              ~peer_out:peer ~ctrl ~input_done ~w0_drained
              ~pressure:(Option.map (fun cs -> cs.(k)) controllers)
              ~stall_ns:
                (match cfg.stall with
                | Some (i, ns) when i = k -> ns
                | _ -> 0)
              ~stage_parse:parse_h.(k) ~stage_demux:demux_h.(k)
              ~stage_state:state_h.(k) ()))
  in
  (* Dispatcher state: the route map is private to this domain; the
     only writes it sees arrive as [Redirect] messages. *)
  let route = Demux.Flow_table.create 64 in
  let flush_q = Queue.create () in
  let steered = Array.make d 0
  and rejected = Array.make d 0
  and dropped = Array.make d 0 in
  let poll_ctrl () =
    let rec go () =
      match Ring.try_pop ctrl with
      | Some (Redirect (flow, k)) ->
        Demux.Flow_table.replace route flow k;
        Queue.add flow flush_q;
        go ()
      | None -> ()
    in
    go ()
  in
  (* Flushes ride ring 0 behind the datagrams: a flush for [f] may
     only be pushed once every datagram of [f] steered before the
     route change has been pushed — which is exactly "between input
     datagrams", never mid-spin. *)
  let try_flushes () =
    let continue = ref true in
    while !continue && not (Queue.is_empty flush_q) do
      if Ring.try_push rings.(0) (Flush (Queue.peek flush_q)) then
        ignore (Queue.pop flush_q)
      else continue := false
    done
  in
  let base_worker flow =
    match cfg.steering with
    | Flow_hash -> Hashing.Hashers.hash_flow hasher flow mod d
    | Chain_affine ->
      Hashing.Hashers.bucket_flow hasher ~buckets:chains flow mod d
  in
  let steer bytes =
    match Packet.Segment.peek_flow bytes ~off:0 with
    | Error _ -> 0
    | Ok flow ->
      if cfg.migrate then (
        match Demux.Flow_table.find_opt route flow with
        | Some k -> k
        | None -> 0)
      else base_worker flow
  in
  for i = 0 to total - 1 do
    if cfg.migrate then begin
      poll_ctrl ();
      try_flushes ()
    end;
    let bytes = datagrams.(i) in
    let t0 = if cfg.stages then Obs.Clock.now_ns () else 0 in
    let w = steer bytes in
    if cfg.stages then
      Obs.Histogram.record steer_h (Obs.Clock.now_ns () - t0);
    let ring = rings.(w) in
    let p = Option.map (fun cs -> cs.(w)) controllers in
    match p with
    | Some pr when Pressure.rejecting pr ->
      Pressure.note_rejected pr ~packets:1;
      rejected.(w) <- rejected.(w) + 1;
      (* Keep sampling so the controller can observe the calm run it
         needs to leave Reject (same rationale as [Dispatcher]). *)
      Pressure.note_ring_depth pr ~depth:(Ring.length ring)
        ~capacity:(Ring.capacity ring)
    | _ ->
      let e0 = if cfg.stages then Obs.Clock.now_ns () else 0 in
      (match p with
      | Some pr ->
        Pressure.note_ring_depth pr ~depth:(Ring.length ring)
          ~capacity:(Ring.capacity ring)
      | None -> ());
      if Ring.try_push ring (Datagram bytes) then
        steered.(w) <- steered.(w) + 1
      else begin
        let tier_drop =
          match p with Some pr -> Pressure.drops_batches pr | None -> false
        in
        if tier_drop then begin
          (match p with
          | Some pr -> Pressure.note_dropped_batch pr ~packets:1
          | None -> ());
          dropped.(w) <- dropped.(w) + 1
        end
        else begin
          (* Backpressure.  Only the control ring is polled while
             spinning: pushing a queued flush here could overtake the
             very datagram we are blocked on and break the
             straggler-before-flush order on ring 0. *)
          while not (Ring.try_push ring (Datagram bytes)) do
            if cfg.migrate then poll_ctrl ();
            Domain.cpu_relax ()
          done;
          steered.(w) <- steered.(w) + 1
        end
      end;
      if cfg.stages then
        Obs.Histogram.record enqueue_h (Obs.Clock.now_ns () - e0)
  done;
  if not cfg.migrate then Array.iter Ring.close rings
  else begin
    Atomic.set input_done true;
    for k = 1 to d - 1 do
      Ring.close rings.(k)
    done;
    (* The listener core going quiescent (input done, its ring empty)
       is the promise that no further [Redirect] can be emitted; after
       that, draining the control ring dry and flushing the queue
       makes closing ring 0 safe. *)
    let rec settle () =
      poll_ctrl ();
      try_flushes ();
      if
        not
          (Atomic.get w0_drained
          && Ring.is_empty ctrl
          && Queue.is_empty flush_q)
      then begin
        Domain.cpu_relax ();
        settle ()
      end
    in
    settle ();
    Ring.close rings.(0)
  end;
  let summaries = Array.map Domain.join workers in
  let elapsed_s =
    float_of_int (Obs.Clock.now_ns () - started) /. 1e9
  in
  let per_domain =
    Array.init d (fun k ->
        let s = summaries.(k) in
        let tier, tier_transitions, pressure_counters =
          match controllers with
          | Some cs ->
            ( Some (Pressure.tier_name (Pressure.tier cs.(k))),
              Pressure.transitions cs.(k),
              Pressure.counters cs.(k) )
          | None -> (None, [], [])
        in
        { index = k; steered = steered.(k); rejected = rejected.(k);
          dropped_full = dropped.(k); processed = s.w_processed;
          forwarded_in = s.w_forwarded_in;
          forwarded_out = s.w_forwarded_out; buffered = s.w_buffered;
          adopted = s.w_adopted; migrated_out = s.w_migrated_out;
          self_handoffs = s.w_self_handoffs; flushes = s.w_flushes;
          unclassified = s.w_unclassified; leftover = s.w_leftover;
          tx = s.w_tx; connections = s.w_connection_count;
          drops = s.w_drops; stats = s.w_stats; tier; tier_transitions;
          pressure_counters })
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 summaries in
  let delivered = sum (fun s -> s.w_processed + s.w_forwarded_in) in
  let connections =
    List.sort
      (fun a b -> Packet.Flow.compare a.flow b.flow)
      (Array.fold_left
         (fun acc s -> List.rev_append s.w_connections acc)
         [] summaries)
  in
  let stages =
    if not cfg.stages then []
    else
      let merged arr =
        Obs.Histogram.merge_all
          (List.filter_map Fun.id (Array.to_list arr))
      in
      [ ("steer", steer_h); ("enqueue", enqueue_h);
        ("parse", merged parse_h); ("demux", merged demux_h);
        ("state", merged state_h) ]
  in
  { domains = d; total; per_domain;
    merged_drops =
      merge_counts (Array.to_list (Array.map (fun s -> s.w_drops) summaries));
    merged_stats =
      Demux.Lookup_stats.merge_snapshots
        (Array.to_list (Array.map (fun s -> s.w_stats) summaries));
    connections; handoffs = sum (fun s -> s.w_migrated_out);
    self_handoffs = sum (fun s -> s.w_self_handoffs);
    forwarded = sum (fun s -> s.w_forwarded_out);
    flushes = sum (fun s -> s.w_flushes); elapsed_s;
    packets_per_s =
      (if elapsed_s > 0.0 then float_of_int delivered /. elapsed_s else 0.0);
    stages }

let violations (r : result) =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  let sum f = Array.fold_left (fun acc dr -> acc + f dr) 0 r.per_domain in
  let offered = sum (fun dr -> dr.steered + dr.rejected + dr.dropped_full) in
  if offered <> r.total then
    add "offered %d <> steered+rejected+dropped %d" r.total offered;
  Array.iter
    (fun dr ->
      if dr.unclassified <> 0 then
        add "domain %d: %d unclassified datagrams" dr.index dr.unclassified;
      if dr.leftover <> 0 then
        add "domain %d: %d buffered datagrams never flushed" dr.index
          dr.leftover;
      let consumed =
        dr.processed + dr.forwarded_out + dr.unclassified + dr.leftover
      in
      if dr.steered <> consumed then
        add "domain %d: steered %d <> consumed %d" dr.index dr.steered
          consumed)
    r.per_domain;
  let fwd_in = sum (fun dr -> dr.forwarded_in) in
  if r.forwarded <> fwd_in then
    add "forwarded out %d <> forwarded in %d" r.forwarded fwd_in;
  let adopted = sum (fun dr -> dr.adopted) in
  if r.handoffs <> adopted then
    add "handoffs %d <> adoptions %d" r.handoffs adopted;
  if r.flushes <> r.handoffs then
    add "flushes %d <> handoffs %d" r.flushes r.handoffs;
  let processed_once =
    sum (fun dr -> dr.processed + dr.forwarded_in)
    + sum (fun dr -> dr.rejected + dr.dropped_full)
    + sum (fun dr -> dr.unclassified + dr.leftover)
  in
  if processed_once <> r.total then
    add "exactly-once ledger %d <> total %d" processed_once r.total;
  List.rev !v

let register_obs ?(prefix = "smp") (r : result) obs =
  let name n = prefix ^ "." ^ n in
  let counter n help value =
    Obs.Registry.register_counter obs ~help ~name:(name n) (fun () -> value)
  in
  counter "total" "datagrams offered to the pipeline" r.total;
  counter "handoffs" "connections migrated across cores" r.handoffs;
  counter "self_handoffs" "extract+adopt against the same core"
    r.self_handoffs;
  counter "forwarded" "straggler segments forwarded over peer rings"
    r.forwarded;
  counter "flushes" "flush messages completing a handoff" r.flushes;
  Obs.Registry.register_gauge obs ~units:"pkts/s"
    ~help:"end-to-end delivered datagrams per second"
    ~name:(name "packets_per_s")
    (fun () -> r.packets_per_s);
  Obs.Registry.register_gauge obs ~units:"s" ~help:"wall-clock run time"
    ~name:(name "elapsed")
    (fun () -> r.elapsed_s);
  Array.iter
    (fun dr ->
      let dn n = Printf.sprintf "d%d.%s" dr.index n in
      counter (dn "steered") "datagrams steered to this domain" dr.steered;
      counter (dn "processed") "datagrams processed by this domain"
        dr.processed;
      counter (dn "forwarded_in") "stragglers processed via peer ring"
        dr.forwarded_in;
      counter (dn "rejected") "datagrams refused at dispatch" dr.rejected;
      counter (dn "dropped_full") "datagrams dropped on a full ring"
        dr.dropped_full;
      counter (dn "adopted") "connections adopted" dr.adopted;
      counter (dn "connections") "resident connections at end"
        dr.connections)
    r.per_domain;
  List.iter
    (fun (stage, h) ->
      let into =
        Obs.Registry.histogram obs ~units:"ns"
          ~help:(stage ^ " stage latency")
          (name ("stage." ^ stage))
      in
      Obs.Histogram.merge_into ~into h)
    r.stages

let pp ppf (r : result) =
  Format.fprintf ppf
    "@[<v>%d domains: %d datagrams in %.3f s = %.0f pkts/s@,\
     %d handoffs (%d self), %d forwarded, %d flushes@]" r.domains r.total
    r.elapsed_s r.packets_per_s r.handoffs r.self_handoffs r.forwarded
    r.flushes;
  Array.iter
    (fun dr ->
      Format.fprintf ppf
        "@,  d%d: steered %d processed %d fwd-in %d fwd-out %d adopted %d \
         conns %d tx %d%s"
        dr.index dr.steered dr.processed dr.forwarded_in dr.forwarded_out
        dr.adopted dr.connections dr.tx
        (match dr.tier with
        | Some t -> Printf.sprintf " tier %s" t
        | None -> ""))
    r.per_domain;
  List.iter
    (fun (stage, h) ->
      if not (Obs.Histogram.is_empty h) then
        Format.fprintf ppf "@,  stage %-7s p50 %6d ns  p99 %7d ns  (%d)"
          stage (Obs.Histogram.p50 h) (Obs.Histogram.p99 h)
          (Obs.Histogram.count h))
    r.stages
