(** Shared-nothing per-core TCP stacks with flow steering.

    The {!Dispatcher} pipeline demultiplexes pre-parsed flow keys
    against a {e shared} table; this module replicates the entire
    stack instead.  Each domain owns a private {!Tcpcore.Stack} — its
    own connection table, demultiplexer and timing wheel — and the
    dispatcher steers raw datagrams to the owning core with a
    constant-time header peek ({!Packet.Segment.peek_flow}), exactly
    as NIC receive-side scaling would.  No mutable state is shared
    between domains: every cross-core interaction travels over an SPSC
    {!Ring}, so the full receive path — parse, steer, enqueue, demux,
    state machine — runs without a single lock or shared write.

    {2 Steering}

    {!Flow_hash} shards by full flow hash; {!Chain_affine} shards by
    the demultiplexer's own chain bucket, so every hash chain lives
    wholly on one core and an N-core run performs {e bit-identical}
    per-chain work to a single-core run — the property the cross-core
    lockstep tests assert, down to exact {!Demux.Lookup_stats}
    equality.

    {2 Flow migration}

    With [migrate] every datagram is first steered to domain 0, the
    listener core.  When a handshake completes there, the accepted
    connection is extracted ({!Tcpcore.Stack.extract_connection}) and
    handed to its owning core over a peer ring, and the dispatcher's
    {e private} route map is updated via a control ring:

    {v
      worker 0:   Adopt(conn) -> peer ring k;  Redirect(f,k) -> ctrl
      dispatcher: pops Redirect; route[f] <- k; Flush(f) -> ring 0
      worker 0:   forwards stragglers of f from ring 0 to peer ring k,
                  converts Flush(f) into Forward_done(f) -> peer ring k
      worker k:   buffers direct datagrams of f from Adopt until
                  Forward_done, then processes the backlog in order
    v}

    Ring FIFO order plus the SC-atomic publication order of the rings
    give per-flow total order across the handoff: stragglers steered
    before the route change are processed (at the new core) before any
    datagram steered after it, each exactly once.  {!violations}
    checks the resulting conservation ledger.  At [domains = 1] the
    handoff degenerates to a {e self-handoff} — the same extract and
    adopt table operations against the same stack — so single-domain
    runs remain op-for-op comparable with multi-domain ones. *)

type steering =
  | Flow_hash     (** Shard by full flow hash (RSS). *)
  | Chain_affine  (** Shard by the demux spec's chain bucket, keeping
                      each hash chain wholly on one core. *)

type config = {
  domains : int;
  ring_capacity : int;
  demux : Demux.Registry.spec;
  steering : steering;
  migrate : bool;
  migrate_target : int option;
      (** With [migrate]: adopt every flow on this domain, or spread
          across domains 1..N-1 by flow hash when [None]. *)
  listen_port : int;
  local_addr : Packet.Ipv4.addr;
  iss : Packet.Flow.t -> int32;
  on_data :
    Tcpcore.Stack.t -> Tcpcore.Stack.connection -> string -> unit;
      (** Application callback, invoked on whichever domain owns the
          connection — it must not capture domain-unsafe state. *)
  pressure : Pressure.config option;
      (** Per-domain overload controllers (one {!Pressure.t} each, so
          a stalled core degrades locally without dragging siblings
          down). *)
  on_pressure : Pressure.t array -> unit;
      (** Observation hook handed the per-domain controllers before
          the run starts — tests use it to {!Pressure.force} tiers. *)
  stall : (int * int) option;
      (** [(domain, ns)]: busy-wait [ns] per datagram on one worker,
          simulating a slow core for degradation tests. *)
  stages : bool;
      (** Record per-stage latency histograms (see {!result.stages}).
          Off by default: the hot path then never reads the clock. *)
}

val config :
  ?ring_capacity:int ->
  ?demux:Demux.Registry.spec ->
  ?steering:steering ->
  ?migrate:bool ->
  ?migrate_target:int ->
  ?listen_port:int ->
  ?iss:(Packet.Flow.t -> int32) ->
  ?on_data:(Tcpcore.Stack.t -> Tcpcore.Stack.connection -> string -> unit) ->
  ?pressure:Pressure.config ->
  ?on_pressure:(Pressure.t array -> unit) ->
  ?stall:int * int ->
  ?stages:bool ->
  domains:int ->
  local_addr:Packet.Ipv4.addr ->
  unit ->
  config
(** Defaults: ring capacity 1024, Sequent with 19 chains,
    [Chain_affine], no migration, port 8888,
    {!Tcpcore.Stack.deterministic_iss} (required for cross-domain
    lockstep — per-stack ISS counters would diverge), no-op [on_data],
    no pressure, no stall, stages off.
    @raise Invalid_argument on non-positive domains / capacity / port,
    a stall or migrate target outside [0, domains), or
    [migrate_target] without [migrate]. *)

type conn_summary = {
  flow : Packet.Flow.t;
  state : Tcpcore.State.t;
  bytes_in : int;
  bytes_out : int;
  snd_nxt : int32;
  rcv_nxt : int32;
  snd_una : int32;
}
(** The cross-core comparable image of one connection.  Structural
    equality on sorted summary lists is the lockstep oracle. *)

type domain_result = {
  index : int;
  steered : int;        (** Datagrams pushed to this domain's ring. *)
  rejected : int;       (** Refused at dispatch ({!Pressure.Reject}). *)
  dropped_full : int;   (** Dropped at dispatch on a full ring
                            ({!Pressure.Drop_batches}). *)
  processed : int;      (** Direct datagrams fed to the stack
                            (including buffered-then-flushed ones). *)
  forwarded_in : int;   (** Straggler segments processed via the peer
                            ring. *)
  forwarded_out : int;  (** Stragglers this domain forwarded (listener
                            core only). *)
  buffered : int;       (** Direct datagrams that waited for
                            [Forward_done]. *)
  adopted : int;        (** Connections adopted from the listener core. *)
  migrated_out : int;   (** Connections extracted and handed off. *)
  self_handoffs : int;  (** Extract+adopt against the same stack
                            ([domains = 1] or target = listener). *)
  flushes : int;        (** [Flush] messages converted to
                            [Forward_done] (listener core only). *)
  unclassified : int;   (** Datagrams that matched no protocol state —
                            always 0 unless the handoff protocol is
                            broken (the oracle the migration tests
                            assert). *)
  leftover : int;       (** Buffered datagrams never flushed — same
                            invariant, same expected 0. *)
  tx : int;             (** Reply segments emitted by this stack. *)
  connections : int;
  drops : (string * int) list;        (** {!Tcpcore.Stack.drop_counts}. *)
  stats : Demux.Lookup_stats.snapshot;
  tier : string option;               (** Final pressure tier. *)
  tier_transitions : (string * int) list;
  pressure_counters : (string * int) list;
}

type result = {
  domains : int;
  total : int;                        (** Datagrams offered. *)
  per_domain : domain_result array;
  merged_drops : (string * int) list;
  merged_stats : Demux.Lookup_stats.snapshot;
  connections : conn_summary list;    (** All domains, sorted by flow. *)
  handoffs : int;                     (** Cross-core migrations. *)
  self_handoffs : int;
  forwarded : int;                    (** Total straggler segments. *)
  flushes : int;
  elapsed_s : float;
  packets_per_s : float;              (** Delivered datagrams / s. *)
  stages : (string * Obs.Histogram.t) list;
      (** With [stages]: [parse], [steer], [enqueue], [demux], [state]
          latency histograms in nanoseconds, worker-side ones merged
          across domains.  Empty otherwise. *)
}

val run : config -> bytes array -> result
(** Replay a wire-format datagram trace (e.g.
    {!Sim.Segment_workload.generate}) through [domains] per-core
    stacks.  Spawns one domain per stack (each stack is created,
    driven and summarized entirely inside its domain — the
    {!Tcpcore.Timer_wheel} ownership check holds the pipeline to
    that); the calling domain runs the dispatcher.
    @raise Invalid_argument on an empty trace. *)

val violations : result -> string list
(** The conservation ledger, empty when sound: every offered datagram
    accounted for exactly once (steered/rejected/dropped vs
    processed/forwarded/unclassified/leftover, per domain and in
    total), forwarded segments conserved across the peer rings,
    adoptions matching extractions matching flushes, and no
    unclassified or leftover datagrams. *)

val register_obs : ?prefix:string -> result -> Obs.Registry.t -> unit
(** Register the run's counters (totals and per-domain) and stage
    histograms under ["<prefix>."] (default ["smp"]). *)

val pp : Format.formatter -> result -> unit
