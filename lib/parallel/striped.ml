type 'a stripe = {
  mutex : Mutex.t;
  chain : 'a Demux.Chain.t;
  index : 'a Demux.Chain.node Demux.Flat_table.t;
  mutable cache : 'a Demux.Chain.node option;
  stats : Demux.Lookup_stats.t;
}

type 'a t = {
  stripes : 'a stripe array;
  hasher : Hashing.Hashers.t;
  next_id : int Atomic.t;
  population : int Atomic.t;
  mutable pressure : Pressure.t option;
}

let create ?(chains = Demux.Sequent.default_chains)
    ?(hasher = Hashing.Hashers.multiplicative) ?pressure () =
  if chains <= 0 then invalid_arg "Striped.create: chains <= 0";
  { stripes =
      Array.init chains (fun _ ->
          { mutex = Mutex.create (); chain = Demux.Chain.create ();
            index = Demux.Flat_table.create ~initial_capacity:16 ();
            cache = None;
            stats = Demux.Lookup_stats.create () });
    hasher; next_id = Atomic.make 0; population = Atomic.make 0; pressure }

let set_pressure t p = t.pressure <- Some p
let pressure t = t.pressure

let chains t = Array.length t.stripes

(* [bucket_flow] hashes straight from the flow's fields: the receive
   path must not allocate a 12-byte key per packet. *)
let stripe_index t flow =
  Hashing.Hashers.bucket_flow t.hasher ~buckets:(Array.length t.stripes) flow

let stripe_of_flow t flow = t.stripes.(stripe_index t flow)

(* The full (un-reduced) flow hash, for callers that want to compute
   it once and reuse it across pipeline stages (see
   [lookup_batch_keyed] and [Dispatcher]). *)
let hash_flow t flow = Hashing.Hashers.hash_flow t.hasher flow

let with_stripe stripe f =
  Mutex.lock stripe.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock stripe.mutex) f

let insert_locked t stripe flow data =
  let w0 = Demux.Flow_key.w0_of_flow flow
  and w1 = Demux.Flow_key.w1_of_flow flow in
  if Demux.Flat_table.mem stripe.index ~w0 ~w1 then
    invalid_arg "Striped.insert: duplicate flow";
  let id = Atomic.fetch_and_add t.next_id 1 in
  let pcb = Demux.Pcb.make ~id ~flow data in
  (* With a pressure controller attached, the index mutation is timed:
     its latency (which carries the incremental-resize tax, if any) is
     one of the controller's two load signals. *)
  let started =
    match t.pressure with Some _ -> Obs.Clock.now_ns () | None -> 0
  in
  let node = Demux.Chain.push_front stripe.chain pcb in
  Demux.Flat_table.replace stripe.index ~w0 ~w1 node;
  (match t.pressure with
  | Some p -> Pressure.note_insert_ns p (Obs.Clock.now_ns () - started)
  | None -> ());
  Demux.Lookup_stats.note_insert stripe.stats;
  Atomic.incr t.population;
  pcb

let insert t flow data =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () -> insert_locked t stripe flow data)

(* Pressure-aware insert: at [Shed_new_flows] or worse, a flow not
   already resident is refused instead of admitted.  The shed is
   charged as a rejection on the stripe's stats — the same counter
   [Demux.Guarded] uses for admission refusals — and on the
   controller, so both ledgers agree packet-for-packet. *)
let try_insert t flow data =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () ->
      let w0 = Demux.Flow_key.w0_of_flow flow
      and w1 = Demux.Flow_key.w1_of_flow flow in
      if Demux.Flat_table.mem stripe.index ~w0 ~w1 then `Duplicate
      else
        match t.pressure with
        | Some p when not (Pressure.admits_new_flows p) ->
          Pressure.note_shed_flow p;
          Demux.Lookup_stats.note_rejection stripe.stats;
          `Shed
        | _ -> `Inserted (insert_locked t stripe flow data))

let remove t flow =
  let stripe = stripe_of_flow t flow in
  let w0 = Demux.Flow_key.w0_of_flow flow
  and w1 = Demux.Flow_key.w1_of_flow flow in
  with_stripe stripe (fun () ->
      match Demux.Flat_table.find_opt stripe.index ~w0 ~w1 with
      | None -> None
      | Some node ->
        (match stripe.cache with
        | Some cached when cached == node -> stripe.cache <- None
        | Some _ | None -> ());
        Demux.Chain.remove stripe.chain node;
        Demux.Flat_table.remove stripe.index ~w0 ~w1;
        Demux.Lookup_stats.note_remove stripe.stats;
        Atomic.decr t.population;
        Some (Demux.Chain.pcb node))

let cache_probe stripe flow =
  match stripe.cache with
  | None -> None
  | Some node ->
    Demux.Lookup_stats.examine stripe.stats ();
    if Demux.Pcb.matches (Demux.Chain.pcb node) flow then Some node else None

(* The receive-path lookup body; caller holds the stripe lock. *)
let lookup_locked stripe flow =
  Demux.Lookup_stats.begin_lookup stripe.stats;
  match cache_probe stripe flow with
  | Some node ->
    let pcb = Demux.Chain.pcb node in
    Demux.Pcb.note_rx pcb;
    Demux.Lookup_stats.end_lookup stripe.stats ~hit_cache:true ~found:true;
    Some pcb
  | None -> (
    match Demux.Chain.scan stripe.chain ~stats:stripe.stats flow with
    | Some node as found ->
      (* Reuse the scan's option cell instead of a fresh [Some]. *)
      stripe.cache <- found;
      let pcb = Demux.Chain.pcb node in
      Demux.Pcb.note_rx pcb;
      Demux.Lookup_stats.end_lookup stripe.stats ~hit_cache:false ~found:true;
      Some pcb
    | None ->
      Demux.Lookup_stats.end_lookup stripe.stats ~hit_cache:false ~found:false;
      None)

let lookup t ?kind:_ flow =
  let stripe = stripe_of_flow t flow in
  with_stripe stripe (fun () -> lookup_locked stripe flow)

(* Batched operations visit each stripe once: a counting sort groups
   the batch's indices by stripe (O(batch + chains), no comparisons),
   then each occupied stripe's mutex is taken once for all its
   packets, instead of once per packet. *)
let group_indices ~chains ~stripe_of_index n =
  let stripe_of = Array.make n 0 in
  let first = Array.make (chains + 1) 0 in
  for i = 0 to n - 1 do
    let s = stripe_of_index i in
    stripe_of.(i) <- s;
    first.(s + 1) <- first.(s + 1) + 1
  done;
  for s = 1 to chains do
    first.(s) <- first.(s) + first.(s - 1)
  done;
  let cursor = Array.sub first 0 chains in
  let order = Array.make n 0 in
  for i = 0 to n - 1 do
    let s = stripe_of.(i) in
    order.(cursor.(s)) <- i;
    cursor.(s) <- cursor.(s) + 1
  done;
  (* [order.(first.(s) .. first.(s+1) - 1)] are stripe [s]'s indices. *)
  (first, order)

let group_by_stripe t flows =
  group_indices ~chains:(Array.length t.stripes)
    ~stripe_of_index:(fun i -> stripe_index t flows.(i))
    (Array.length flows)

let run_lookup_batch t flows (first, order) =
  let found = ref 0 in
  for s = 0 to Array.length t.stripes - 1 do
    let lo = first.(s) and hi = first.(s + 1) in
    if hi > lo then begin
      let stripe = t.stripes.(s) in
      with_stripe stripe (fun () ->
          Demux.Lookup_stats.note_batch stripe.stats ~size:(hi - lo);
          for k = lo to hi - 1 do
            match lookup_locked stripe flows.(order.(k)) with
            | Some _ -> incr found
            | None -> ()
          done)
    end
  done;
  !found

let lookup_batch t ?kind:_ flows =
  if Array.length flows = 0 then 0
  else run_lookup_batch t flows (group_by_stripe t flows)

let lookup_batch_keyed t ?kind:_ flows ~hashes =
  let n = Array.length flows in
  if n <> Array.length hashes then
    invalid_arg "Striped.lookup_batch_keyed: flows/hashes length mismatch";
  if n = 0 then 0
  else begin
    (* The caller computed [hash_flow] once per packet (at dispatch);
       reducing it mod chains here gives exactly [stripe_index], so
       grouping skips re-hashing every flow. *)
    let chains = Array.length t.stripes in
    run_lookup_batch t flows
      (group_indices ~chains ~stripe_of_index:(fun i -> hashes.(i) mod chains) n)
  end

let insert_batch t entries =
  let n = Array.length entries in
  if n = 0 then [||]
  else begin
    let flows = Array.map fst entries in
    let first, order = group_by_stripe t flows in
    let pcbs = Array.make n None in
    for s = 0 to Array.length t.stripes - 1 do
      let lo = first.(s) and hi = first.(s + 1) in
      if hi > lo then begin
        let stripe = t.stripes.(s) in
        with_stripe stripe (fun () ->
            Demux.Lookup_stats.note_batch stripe.stats ~size:(hi - lo);
            for k = lo to hi - 1 do
              let i = order.(k) in
              let flow, data = entries.(i) in
              pcbs.(i) <- Some (insert_locked t stripe flow data)
            done)
      end
    done;
    Array.map
      (function Some pcb -> pcb | None -> assert false (* every index visited *))
      pcbs
  end

let note_send t flow =
  let stripe = stripe_of_flow t flow in
  let w0 = Demux.Flow_key.w0_of_flow flow
  and w1 = Demux.Flow_key.w1_of_flow flow in
  with_stripe stripe (fun () ->
      match Demux.Flat_table.find_opt stripe.index ~w0 ~w1 with
      | Some node -> Demux.Pcb.note_tx (Demux.Chain.pcb node)
      | None -> ())

let length t = Atomic.get t.population

let iter f t =
  Array.iter
    (fun stripe ->
      with_stripe stripe (fun () -> Demux.Chain.iter f stripe.chain))
    t.stripes

let stats t =
  Demux.Lookup_stats.merge_snapshots
    (Array.to_list
       (Array.map
          (fun stripe ->
            with_stripe stripe (fun () ->
                Demux.Lookup_stats.snapshot stripe.stats))
          t.stripes))
