(** Lock-striped Sequent demultiplexer for multicore receivers.

    The paper's context was Sequent's {e parallel} TCP for the PTX
    operating system [Dov90, Gar90]: many processors service inbound
    packets concurrently, so the PCB structure needs locking — and a
    single list under a single lock serialises everything.  Hash
    chains give more than short scans: each chain (plus its one-entry
    cache) can carry {e its own lock}, and packets for different
    connections proceed in parallel with probability [1 - 1/H].  This
    module is that design: the Sequent algorithm with one mutex per
    chain.

    All operations are safe to call from any domain.  Statistics are
    kept per stripe and merged on read, so the hot path never shares a
    counter across stripes.

    {b Scaling caveat.}  Striping removes {e collisions}, not the
    {e locks}: every lookup still acquires its stripe's mutex, so
    aggregate read throughput flattens once lock traffic — not chain
    length — is the bottleneck (bench E33 measures the flattening at
    8 domains).  For a read-mostly population the ceiling above this
    design is [Epoch.Table], whose lookups take no lock at all:
    readers pin an epoch and probe an immutable published region,
    writers serialize on one mutex and retire replaced regions
    through a grace period.  Reach it from the same harnesses via
    {!Throughput.Epoch_table} and the ["epoch-table"] check
    subject. *)

type 'a t

val create :
  ?chains:int -> ?hasher:Hashing.Hashers.t -> ?pressure:Pressure.t ->
  unit -> 'a t
(** Defaults: 19 chains, multiplicative hashing (matching
    {!Demux.Sequent.create}), no overload controller.
    @raise Invalid_argument if [chains <= 0]. *)

val chains : 'a t -> int

val set_pressure : 'a t -> Pressure.t -> unit
(** Attach (or replace) the overload controller after creation.  With
    one attached, every insert's index-mutation latency feeds
    {!Pressure.note_insert_ns}, and {!try_insert} sheds new flows at
    {!Pressure.Shed_new_flows} or worse. *)

val pressure : 'a t -> Pressure.t option

val insert : 'a t -> Packet.Flow.t -> 'a -> 'a Demux.Pcb.t
(** @raise Invalid_argument if the flow is already present.  Never
    sheds — management-plane entry points that must not fail under
    load use this; the packet-driven path uses {!try_insert}. *)

val try_insert :
  'a t -> Packet.Flow.t -> 'a ->
  [ `Inserted of 'a Demux.Pcb.t | `Duplicate | `Shed ]
(** Pressure-aware insert for the packet path.  [`Duplicate] if the
    flow is already resident (nothing changes — unlike {!insert} it
    does not raise); [`Shed] if the attached controller is at
    {!Pressure.Shed_new_flows} or worse (counted as a rejection in the
    stripe's {!Demux.Lookup_stats} and as {!Pressure.note_shed_flow});
    [`Inserted pcb] otherwise. *)

val remove : 'a t -> Packet.Flow.t -> 'a Demux.Pcb.t option

val lookup :
  'a t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t ->
  'a Demux.Pcb.t option
(** Receive-path lookup under the stripe's lock, charging one PCB
    examined per cache probe / chain node compared, as everywhere in
    this library. *)

(** {1 Batched operations}

    A packet train arriving as one burst need not take a mutex per
    packet: the batch is grouped by stripe (counting sort, no flow-key
    allocation), and each occupied stripe's lock is taken {e once} for
    all of its packets.  Per-lookup accounting is unchanged — the same
    [begin_lookup]/[end_lookup] charges as {!lookup} — plus one
    {!Demux.Lookup_stats.note_batch} per stripe visit, so the batched
    and per-packet paths stay comparable on the paper's metric. *)

val lookup_batch :
  'a t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t array -> int
(** Look up every flow in the batch; returns how many were found.
    Within a stripe, lookups happen in batch order, so intra-batch
    cache locality (packet trains) is preserved. *)

val hash_flow : 'a t -> Packet.Flow.t -> int
(** The table's full (un-reduced) hash of a flow — compute it once at
    dispatch and reuse it across pipeline stages via
    {!lookup_batch_keyed}.  Allocation-free for the word-folding
    hashers. *)

val lookup_batch_keyed :
  'a t -> ?kind:Demux.Types.packet_kind -> Packet.Flow.t array ->
  hashes:int array -> int
(** Like {!lookup_batch}, but the caller supplies each flow's
    {!hash_flow} value (computed once per packet upstream, e.g. by
    {!Dispatcher} when sharding); grouping reduces them mod chains
    instead of re-hashing every flow.  The hashes {e must} come from
    {!hash_flow} on this table — a different hasher silently groups
    wrong.  Accounting is identical to {!lookup_batch}.
    @raise Invalid_argument if the arrays differ in length. *)

val insert_batch :
  'a t -> (Packet.Flow.t * 'a) array -> 'a Demux.Pcb.t array
(** Insert every entry, one lock acquisition per occupied stripe;
    returns the PCBs in input order.
    @raise Invalid_argument on a duplicate flow — entries already
    inserted (including later ones on other stripes) remain. *)

val note_send : 'a t -> Packet.Flow.t -> unit
val length : 'a t -> int

val iter : ('a Demux.Pcb.t -> unit) -> 'a t -> unit
(** Visit every resident PCB, one stripe at a time under that stripe's
    lock.  Like {!stats}, this is not an instantaneous cut of the
    whole table — entries moving between stripes mid-iteration (there
    are none; flows never migrate) aside, per-stripe consistency is
    what it offers.  Used by the differential checker ([lib/check]) to
    compare table contents at quiesce. *)

val stats : 'a t -> Demux.Lookup_stats.snapshot
(** Merged across stripes.  {b Point-in-time caveat}: each stripe's
    snapshot is taken under that stripe's lock, one stripe after
    another — there is no global lock, so the merged result is not an
    instantaneous cut of the whole table.  Per-stripe consistency
    still holds, and sums preserve it: [lookups = found + not_found]
    and [cache_hits <= lookups] are true of every merge, even while
    other domains mutate (asserted under 4-domain churn in
    test_parallel.ml).  Cross-counter identities that span a mutation
    ([inserts - removes = length]) hold only when quiescent. *)
