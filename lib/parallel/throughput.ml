type target = Coarse_bsd | Coarse_sequent of int | Striped_sequent of int

let target_name = function
  | Coarse_bsd -> "coarse:bsd"
  | Coarse_sequent chains -> Printf.sprintf "coarse:sequent-%d" chains
  | Striped_sequent chains -> Printf.sprintf "striped:sequent-%d" chains

type result = {
  target : string;
  domains : int;
  total_lookups : int;
  elapsed_seconds : float;
  lookups_per_second : float;
  latency : Obs.Histogram.t option;
  traces : Obs.Trace.t list;
}

(* A uniform lookup driver over an opaque thread-safe lookup
   function.  With [histogram], each lookup is additionally timed and
   its latency recorded in nanoseconds; the histogram is domain-local,
   so recording needs no synchronisation. *)
let drive ?histogram ?(tracer = Obs.Trace.disabled) ~flows ~lookups ~seed
    lookup =
  let rng = Worker_rng.create seed in
  let bound = Array.length flows in
  match (histogram, Obs.Trace.enabled tracer) with
  | None, false ->
    for _ = 1 to lookups do
      let flow = flows.(Worker_rng.next rng mod bound) in
      ignore (lookup flow)
    done
  | _ ->
    for _ = 1 to lookups do
      let flow = flows.(Worker_rng.next rng mod bound) in
      let entered = Unix.gettimeofday () in
      ignore (lookup flow);
      let left = Unix.gettimeofday () in
      let nanoseconds = int_of_float ((left -. entered) *. 1e9) in
      (match histogram with
      | Some histogram -> Obs.Histogram.record histogram nanoseconds
      | None -> ());
      Obs.Trace.record tracer Obs.Trace.Latency nanoseconds 0
    done

let run ?obs ?trace_capacity ?(connections = 2000)
    ?(lookups_per_domain = 200_000) ?(seed = 42) ~domains target =
  if domains <= 0 then invalid_arg "Throughput.run: domains <= 0";
  let flows =
    Array.init connections (fun i ->
        let addr =
          Packet.Ipv4.addr_of_octets 10
            ((i lsr 16) land 0xFF)
            ((i lsr 8) land 0xFF)
            (i land 0xFF)
        in
        Packet.Flow.v
          ~local:(Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888)
          ~remote:(Packet.Flow.endpoint addr (1024 + (i * 7 mod 60000))))
  in
  let lookup =
    match target with
    | Coarse_bsd ->
      let d = Coarse.create Demux.Registry.Bsd in
      Array.iter (fun flow -> ignore (Coarse.insert d flow ())) flows;
      fun flow -> Coarse.lookup d flow <> None
    | Coarse_sequent chains ->
      let d =
        Coarse.create
          (Demux.Registry.Sequent
             { chains; hasher = Hashing.Hashers.multiplicative })
      in
      Array.iter (fun flow -> ignore (Coarse.insert d flow ())) flows;
      fun flow -> Coarse.lookup d flow <> None
    | Striped_sequent chains ->
      let d = Striped.create ~chains () in
      Array.iter (fun flow -> ignore (Striped.insert d flow ())) flows;
      fun flow -> Striped.lookup d flow <> None
  in
  (* One histogram per domain, merged after the join: recording stays
     allocation- and contention-free on the measurement path. *)
  let histograms =
    Option.map
      (fun _ -> Array.init domains (fun _ -> Obs.Histogram.create ()))
      obs
  in
  (* Tracers are single-domain: one ring per worker, tagged with the
     domain index, dumped as consecutive segments by the caller. *)
  let tracers =
    Option.map
      (fun capacity ->
        Array.init domains (fun worker ->
            Obs.Trace.create ~id:worker ~capacity ()))
      trace_capacity
  in
  let started = Unix.gettimeofday () in
  let workers =
    List.init domains (fun worker ->
        Domain.spawn (fun () ->
            drive
              ?histogram:(Option.map (fun hs -> hs.(worker)) histograms)
              ?tracer:(Option.map (fun ts -> ts.(worker)) tracers)
              ~flows ~lookups:lookups_per_domain ~seed:(seed + worker)
              lookup))
  in
  List.iter Domain.join workers;
  let elapsed = Unix.gettimeofday () -. started in
  let total = domains * lookups_per_domain in
  let latency =
    match (obs, histograms) with
    | Some obs, Some per_domain ->
      let merged =
        Obs.Registry.histogram obs ~units:"ns"
          ~help:"per-lookup wall latency, merged across domains"
          (Printf.sprintf "parallel.%s.d%d.lookup_ns" (target_name target)
             domains)
      in
      Array.iter
        (fun histogram -> Obs.Histogram.merge_into ~into:merged histogram)
        per_domain;
      Some merged
    | _ -> None
  in
  { target = target_name target; domains; total_lookups = total;
    elapsed_seconds = elapsed;
    lookups_per_second = float_of_int total /. elapsed; latency;
    traces =
      (match tracers with
      | Some tracers -> Array.to_list tracers
      | None -> []) }

let scaling_table ?obs ?trace_capacity ?connections ?lookups_per_domain
    ?seed ~domains targets =
  List.concat_map
    (fun target ->
      List.map
        (fun domain_count ->
          run ?obs ?trace_capacity ?connections ?lookups_per_domain ?seed
            ~domains:domain_count target)
        domains)
    targets

let pp_results ppf results =
  Format.fprintf ppf "%-22s %8s %14s %12s@." "target" "domains" "lookups/s"
    "elapsed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %8d %14.0f %11.2fs@." r.target r.domains
        r.lookups_per_second r.elapsed_seconds)
    results
