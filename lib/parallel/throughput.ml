type target =
  | Coarse_bsd
  | Coarse_sequent of int
  | Striped_sequent of int
  | Epoch_table
  | Offheap_epoch
  | Cuckoo_table

let target_name = function
  | Coarse_bsd -> "coarse:bsd"
  | Coarse_sequent chains -> Printf.sprintf "coarse:sequent-%d" chains
  | Striped_sequent chains -> Printf.sprintf "striped:sequent-%d" chains
  | Epoch_table -> "epoch:table"
  | Offheap_epoch -> "epoch:offheap"
  | Cuckoo_table -> "cuckoo:table"

type result = {
  target : string;
  domains : int;
  batch : int;
  total_lookups : int;
  elapsed_seconds : float;
  lookups_per_second : float;
  clock_went_backwards : int;
  latency : Obs.Histogram.t option;
  traces : Obs.Trace.t list;
}

(* Clamp an interval at zero rather than poisoning the histogram.
   [Obs.Clock.now_ns] is monotonic so the clamp should never fire; it
   is kept — and counted — so a platform where it did would show up as
   a metric instead of as garbage percentiles. *)
let interval_ns backwards ~entered ~left =
  let delta = left - entered in
  if delta < 0 then begin
    incr backwards;
    0
  end
  else delta

(* A uniform lookup driver over an opaque thread-safe lookup
   function.  With [histogram], each lookup is additionally timed and
   its latency recorded in nanosecond units; the histogram is
   domain-local, so recording needs no synchronisation. *)
let drive ?histogram ?(tracer = Obs.Trace.disabled) ~backwards ~flows
    ~lookups ~seed lookup =
  let rng = Worker_rng.create seed in
  let bound = Array.length flows in
  match (histogram, Obs.Trace.enabled tracer) with
  | None, false ->
    for _ = 1 to lookups do
      let flow = flows.(Worker_rng.int rng ~bound) in
      ignore (lookup flow)
    done
  | _ ->
    for _ = 1 to lookups do
      let flow = flows.(Worker_rng.int rng ~bound) in
      let entered = Obs.Clock.now_ns () in
      ignore (lookup flow);
      let left = Obs.Clock.now_ns () in
      let nanoseconds = interval_ns backwards ~entered ~left in
      (match histogram with
      | Some histogram -> Obs.Histogram.record histogram nanoseconds
      | None -> ());
      Obs.Trace.record tracer Obs.Trace.Latency nanoseconds 0
    done

(* The batched driver: the same pseudo-random flow sequence, staged
   into a [batch]-slot buffer and demultiplexed through the target's
   [lookup_batch], which takes each stripe mutex once per batch.  A
   single lookup inside a batch is not individually observable, so
   latency is amortised: the whole batch is timed once and the
   per-lookup share recorded [size] times (exact bucket-wise, since
   every share is the same value). *)
let drive_batched ?histogram ?(tracer = Obs.Trace.disabled) ~backwards
    ~flows ~lookups ~batch ~seed lookup_batch =
  let rng = Worker_rng.create seed in
  let bound = Array.length flows in
  let buffer = Array.make batch flows.(0) in
  let timed = histogram <> None || Obs.Trace.enabled tracer in
  let remaining = ref lookups in
  while !remaining > 0 do
    let size = min batch !remaining in
    remaining := !remaining - size;
    for i = 0 to size - 1 do
      buffer.(i) <- flows.(Worker_rng.int rng ~bound)
    done;
    let view = if size = batch then buffer else Array.sub buffer 0 size in
    if timed then begin
      let entered = Obs.Clock.now_ns () in
      ignore (lookup_batch view);
      let left = Obs.Clock.now_ns () in
      let per_lookup = interval_ns backwards ~entered ~left / size in
      (match histogram with
      | Some histogram -> Obs.Histogram.add histogram per_lookup ~count:size
      | None -> ());
      Obs.Trace.record tracer Obs.Trace.Latency per_lookup size
    end
    else ignore (lookup_batch view)
  done

let run ?obs ?trace_capacity ?(connections = 2000)
    ?(lookups_per_domain = 200_000) ?(seed = 42) ?(batch = 1) ~domains target
    =
  if domains <= 0 then invalid_arg "Throughput.run: domains <= 0";
  if batch <= 0 then invalid_arg "Throughput.run: batch <= 0";
  let flows =
    Array.init connections (fun i ->
        let addr =
          Packet.Ipv4.addr_of_octets 10
            ((i lsr 16) land 0xFF)
            ((i lsr 8) land 0xFF)
            (i land 0xFF)
        in
        Packet.Flow.v
          ~local:(Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888)
          ~remote:(Packet.Flow.endpoint addr (1024 + (i * 7 mod 60000))))
  in
  let lookup, lookup_batch =
    match target with
    | Coarse_bsd ->
      let d = Coarse.create Demux.Registry.Bsd in
      Array.iter (fun flow -> ignore (Coarse.insert d flow ())) flows;
      ((fun flow -> Coarse.lookup d flow <> None),
       fun batch -> Coarse.lookup_batch d batch)
    | Coarse_sequent chains ->
      let d =
        Coarse.create
          (Demux.Registry.Sequent
             { chains; hasher = Hashing.Hashers.multiplicative })
      in
      Array.iter (fun flow -> ignore (Coarse.insert d flow ())) flows;
      ((fun flow -> Coarse.lookup d flow <> None),
       fun batch -> Coarse.lookup_batch d batch)
    | Striped_sequent chains ->
      let d = Striped.create ~chains () in
      Array.iter (fun flow -> ignore (Striped.insert d flow ())) flows;
      ((fun flow -> Striped.lookup d flow <> None),
       fun batch -> Striped.lookup_batch d batch)
    | Epoch_table ->
      let d = Epoch.Table.create () in
      Epoch.Table.load d
        (Array.map
           (fun flow ->
             ( Demux.Flow_key.w0_of_flow flow,
               Demux.Flow_key.w1_of_flow flow,
               () ))
           flows);
      ((fun flow -> Epoch.Table.find_flow d flow <> None),
       fun batch -> Epoch.Table.lookup_batch d batch)
    | Offheap_epoch ->
      let d = Epoch.Packed.Offheap.create () in
      Epoch.Packed.Offheap.load d
        (Array.mapi
           (fun i flow ->
             ( Demux.Flow_key.w0_of_flow flow,
               Demux.Flow_key.w1_of_flow flow,
               i ))
           flows);
      ((fun flow -> Epoch.Packed.Offheap.find_flow d flow <> None),
       fun batch -> Epoch.Packed.Offheap.lookup_batch d batch)
    | Cuckoo_table ->
      (* The bucketized cuckoo table has no internal synchronisation,
         but the measurement phase is strictly read-only over a table
         populated before the domains spawn, so concurrent probes see
         a frozen structure.  (The per-lookup probe accumulator each
         reader races on is a plain immediate field — last writer
         wins, nobody reads it here.) *)
      let d = Demux.Cuckoo_table.Heap.create () in
      Array.iteri
        (fun i flow ->
          Demux.Cuckoo_table.Heap.replace d
            ~w0:(Demux.Flow_key.w0_of_flow flow)
            ~w1:(Demux.Flow_key.w1_of_flow flow)
            i)
        flows;
      let mem flow =
        Demux.Cuckoo_table.Heap.mem d
          ~w0:(Demux.Flow_key.w0_of_flow flow)
          ~w1:(Demux.Flow_key.w1_of_flow flow)
      in
      ( mem,
        fun batch ->
          Array.fold_left
            (fun hits flow -> if mem flow then hits + 1 else hits)
            0 batch )
  in
  (* One histogram per domain, merged after the join: recording stays
     allocation- and contention-free on the measurement path. *)
  let histograms =
    Option.map
      (fun _ -> Array.init domains (fun _ -> Obs.Histogram.create ()))
      obs
  in
  (* Tracers are single-domain: one ring per worker, tagged with the
     domain index, dumped as consecutive segments by the caller. *)
  let tracers =
    Option.map
      (fun capacity ->
        Array.init domains (fun worker ->
            Obs.Trace.create ~id:worker ~capacity ()))
      trace_capacity
  in
  let backwards = Array.init domains (fun _ -> ref 0) in
  let started = Obs.Clock.now_ns () in
  let workers =
    List.init domains (fun worker ->
        Domain.spawn (fun () ->
            let histogram = Option.map (fun hs -> hs.(worker)) histograms in
            let tracer = Option.map (fun ts -> ts.(worker)) tracers in
            let backwards = backwards.(worker) in
            if batch = 1 then
              drive ?histogram ?tracer ~backwards ~flows
                ~lookups:lookups_per_domain ~seed:(seed + worker) lookup
            else
              drive_batched ?histogram ?tracer ~backwards ~flows
                ~lookups:lookups_per_domain ~batch ~seed:(seed + worker)
                lookup_batch))
  in
  List.iter Domain.join workers;
  let elapsed = float_of_int (Obs.Clock.now_ns () - started) /. 1e9 in
  let total = domains * lookups_per_domain in
  let went_backwards = Array.fold_left (fun a r -> a + !r) 0 backwards in
  Option.iter
    (fun obs ->
      let clamped =
        Obs.Registry.counter obs
          ~help:
            "lookup intervals clamped to zero because a clock read came \
             out negative (expected 0: the source is monotonic)"
          "parallel.clock_went_backwards"
      in
      clamped := !clamped + went_backwards)
    obs;
  let latency =
    match (obs, histograms) with
    | Some obs, Some per_domain ->
      let merged =
        Obs.Registry.histogram obs ~units:"ns"
          ~help:
            "per-lookup monotonic latency, merged across domains \
             (nanosecond units at clock granularity, not ns precision; \
             amortised per batch when batch > 1)"
          (Printf.sprintf "parallel.%s.d%d.b%d.lookup_ns"
             (target_name target) domains batch)
      in
      Array.iter
        (fun histogram -> Obs.Histogram.merge_into ~into:merged histogram)
        per_domain;
      Some merged
    | _ -> None
  in
  { target = target_name target; domains; batch; total_lookups = total;
    elapsed_seconds = elapsed;
    lookups_per_second = float_of_int total /. elapsed;
    clock_went_backwards = went_backwards; latency;
    traces =
      (match tracers with
      | Some tracers -> Array.to_list tracers
      | None -> []) }

let scaling_table ?obs ?trace_capacity ?connections ?lookups_per_domain
    ?seed ?(batches = [ 1 ]) ~domains targets =
  List.concat_map
    (fun target ->
      List.concat_map
        (fun domain_count ->
          List.map
            (fun batch ->
              run ?obs ?trace_capacity ?connections ?lookups_per_domain
                ?seed ~batch ~domains:domain_count target)
            batches)
        domains)
    targets

let pp_results ppf results =
  Format.fprintf ppf "%-22s %8s %6s %14s %12s@." "target" "domains" "batch"
    "lookups/s" "elapsed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %8d %6d %14.0f %11.2fs@." r.target r.domains
        r.batch r.lookups_per_second r.elapsed_seconds)
    results
