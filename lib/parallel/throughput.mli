(** Multicore lookup-throughput measurement.

    Pre-populates a thread-safe demultiplexer with [connections]
    flows, then spawns [domains] OCaml domains that each perform
    [lookups_per_domain] receive-path lookups over a pseudo-random
    per-domain flow sequence, and reports aggregate throughput.  This
    is the experiment behind the paper's parallel-TCP motivation: with
    a single lock, adding processors adds nothing; with per-chain
    locks, throughput scales until chains collide — and even
    collision-free striping is {e not} the scaling ceiling, because
    every lookup still pays one mutex acquisition.  The
    {!Epoch_table} target measures the design past that wall:
    [Epoch.Table]'s lock-free read path (readers pin an epoch and
    probe an immutable published region; bench E33 is the
    striped-vs-epoch scaling table).

    All timing — the run's elapsed window and the optional per-lookup
    latency — uses the monotonic nanosecond clock ({!Obs.Clock.now_ns}),
    never wall time, so an NTP step mid-run cannot produce negative or
    inflated intervals.  Any interval that still came out negative
    would be clamped to zero and counted ([clock_went_backwards]). *)

type target =
  | Coarse_bsd
  | Coarse_sequent of int
  | Striped_sequent of int
  | Epoch_table
      (** {!Epoch.Table} — lock-free lookups over an immutable
          published region, epoch-based reclamation.  Timing uses the
          same monotonic clock and the same clamp-and-count
          ([clock_went_backwards]) discipline as every other target. *)
  | Offheap_epoch
      (** {!Epoch.Packed.Offheap} — the same lock-free protocol with
          the published region held in Bigarray (off-heap) storage,
          values the flow's load index.  Named ["epoch:offheap"]. *)
  | Cuckoo_table
      (** {!Demux.Cuckoo_table.Heap} — bucketized cuckoo hashing with
          per-bucket tag vectors and negative-lookup filters,
          populated before the domains spawn and probed read-only, so
          the unsynchronised structure is frozen for the whole
          measurement window.  Worst-case lookup is two buckets plus
          the stash regardless of load.  Named ["cuckoo:table"]. *)

val target_name : target -> string

type result = {
  target : string;
  domains : int;
  batch : int;  (** Lookups per [lookup_batch] call; 1 = per-packet. *)
  total_lookups : int;
  elapsed_seconds : float;
  lookups_per_second : float;
  clock_went_backwards : int;
      (** Latency intervals clamped to zero; expected 0 (the clock is
          monotonic).  Summed across domains. *)
  latency : Obs.Histogram.t option;
      (** Per-lookup monotonic latency in nanosecond units (quantised
          to the clock's granularity — do not read as ns precision),
          merged across domains — present iff [?obs] was passed to
          {!run}.  When [batch > 1] a batch is timed as a whole and the
          per-lookup share recorded [batch] times. *)
  traces : Obs.Trace.t list;
      (** One per domain (tagged with the domain index), each holding
          the last [?trace_capacity] [Latency] events — empty unless
          [?trace_capacity] was passed to {!run}.  In batched mode one
          event is recorded per batch: [a] = amortised ns, [b] = batch
          size (0 in per-packet mode). *)
}

val run :
  ?obs:Obs.Registry.t -> ?trace_capacity:int -> ?connections:int ->
  ?lookups_per_domain:int -> ?seed:int -> ?batch:int -> domains:int ->
  target -> result
(** Defaults: 2000 connections, 200_000 lookups per domain, seed 42,
    batch 1.  With [batch > 1] each domain stages its random flows
    into a local buffer and demultiplexes through the target's
    [lookup_batch] (one mutex acquisition per stripe per batch)
    instead of calling [lookup] per packet — same flow sequence, same
    total lookups, so the two modes are directly comparable.

    With [?obs], every lookup (or batch) is timed into a domain-local
    histogram (no cross-domain synchronisation); after the join the
    histograms are merged ({!Obs.Histogram.merge_into} is exact
    bucket-wise) and registered as
    ["parallel.<target>.d<domains>.b<batch>.lookup_ns"], and the
    clamp count accumulates into the owned
    ["parallel.clock_went_backwards"] counter.  Timing costs two clock
    reads per lookup (per batch when batched), so throughput numbers
    with [?obs] are not comparable to numbers without.
    @raise Invalid_argument if [domains <= 0] or [batch <= 0]. *)

val scaling_table :
  ?obs:Obs.Registry.t -> ?trace_capacity:int -> ?connections:int ->
  ?lookups_per_domain:int -> ?seed:int -> ?batches:int list ->
  domains:int list -> target list -> result list
(** Run every (target, domain-count, batch) triple, in order
    ([batches] defaults to [[1]], i.e. per-packet). *)

val pp_results : Format.formatter -> result list -> unit
