(** Multicore lookup-throughput measurement.

    Pre-populates a thread-safe demultiplexer with [connections]
    flows, then spawns [domains] OCaml domains that each perform
    [lookups_per_domain] receive-path lookups over a pseudo-random
    per-domain flow sequence, and reports aggregate throughput.  This
    is the experiment behind the paper's parallel-TCP motivation: with
    a single lock, adding processors adds nothing; with per-chain
    locks, throughput scales until chains collide. *)

type target = Coarse_bsd | Coarse_sequent of int | Striped_sequent of int

val target_name : target -> string

type result = {
  target : string;
  domains : int;
  total_lookups : int;
  elapsed_seconds : float;
  lookups_per_second : float;
  latency : Obs.Histogram.t option;
      (** Per-lookup wall latency in nanoseconds, merged across
          domains — present iff [?obs] was passed to {!run}. *)
  traces : Obs.Trace.t list;
      (** One per domain (tagged with the domain index), each holding
          the last [?trace_capacity] [Latency] events — empty unless
          [?trace_capacity] was passed to {!run}. *)
}

val run :
  ?obs:Obs.Registry.t -> ?trace_capacity:int -> ?connections:int ->
  ?lookups_per_domain:int -> ?seed:int -> domains:int -> target -> result
(** Defaults: 2000 connections, 200_000 lookups per domain, seed 42.
    With [?obs], every lookup is timed into a domain-local histogram
    (no cross-domain synchronisation); after the join the histograms
    are merged ({!Obs.Histogram.merge_into} is exact bucket-wise) and
    registered as ["parallel.<target>.d<domains>.lookup_ns"].  Timing
    costs two clock reads per lookup, so throughput numbers with
    [?obs] are not comparable to numbers without.
    @raise Invalid_argument if [domains <= 0]. *)

val scaling_table :
  ?obs:Obs.Registry.t -> ?trace_capacity:int -> ?connections:int ->
  ?lookups_per_domain:int -> ?seed:int -> domains:int list -> target list ->
  result list
(** Run every (target, domain-count) pair, in order. *)

val pp_results : Format.formatter -> result list -> unit
