type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* [shift_right_logical _ 2] leaves 62 bits, so [Int64.to_int] never
     wraps into OCaml's sign bit: the result is always in [0, 2^62). *)
  Int64.to_int (Int64.shift_right_logical z 2)

(* [next] draws uniformly from [0, 2^62); a plain [mod bound] would
   over-weight the low residues whenever bound does not divide 2^62.
   Reject the partial final block instead: accept only draws below the
   largest multiple of [bound], which makes every residue exactly
   equally likely.  The rejection probability is < bound / 2^62, so in
   practice the loop runs once. *)
let max_draw = 0x3FFFFFFFFFFFFFFF (* 2^62 - 1, the top of [next]'s range *)

let int t ~bound =
  if bound <= 0 then invalid_arg "Worker_rng.int: bound must be positive";
  (* 2^62 mod bound, computed without overflowing the 63-bit int. *)
  let range_mod = ((max_draw mod bound) + 1) mod bound in
  let limit = max_draw - range_mod in
  let rec draw () =
    let candidate = next t in
    if candidate <= limit then candidate mod bound else draw ()
  in
  draw ()
