(** Minimal per-domain PRNG (splitmix64).

    Each benchmark domain owns one instance, so no generator state is
    ever shared across domains.  Kept local to this library to avoid a
    dependency edge just for a stream of indices. *)

type t

val create : int -> t

val next : t -> int
(** Next pseudo-random int, uniform on [0, 2^62).  Always
    non-negative.  Do {e not} reduce this with [mod] when a bounded
    draw is needed — use {!int}, which is bias-free. *)

val int : t -> bound:int -> int
(** Uniform draw from [0, bound), by rejection sampling over {!next}
    (the partial final block of [2^62 / bound] is re-drawn, so every
    residue is exactly equally likely; expected extra draws
    < bound / 2^62).
    @raise Invalid_argument if [bound <= 0]. *)
