type config = {
  seed : int;
  flood_flows : int;
  flood_lookups : int;
  syn_attempts : int;
  storm_packets : int;
}

let default_config ?(seed = 42) () =
  { seed; flood_flows = 500; flood_lookups = 20_000; syn_attempts = 5_000;
    storm_packets = 5_000 }

let smoke_config ?(seed = 42) () =
  { seed; flood_flows = 60; flood_lookups = 1_500; syn_attempts = 400;
    storm_packets = 500 }

type result = {
  algorithm : string;
  scenario : string;
  packets : int;
  mean_examined : float;
  max_examined : int;
  table_length : int;
  evictions : int;
  rejections : int;
  drops : int;
  parse_errors : int;
  notes : string;
}

let result_of_stats ~algorithm ~scenario ~packets ~table_length ?(drops = 0)
    ?(parse_errors = 0) ?(notes = "") snapshot =
  { algorithm; scenario; packets;
    mean_examined = Demux.Lookup_stats.mean_examined snapshot;
    max_examined = snapshot.Demux.Lookup_stats.max_examined;
    table_length;
    evictions = snapshot.Demux.Lookup_stats.evictions;
    rejections = snapshot.Demux.Lookup_stats.rejections;
    drops; parse_errors; notes }

(* ------------------------------------------------------------------ *)
(* Collision flood                                                     *)

(* Synthesize [count] distinct flows that all land in chain 0 of the
   given geometry: the attacker knows the hash (they can read the same
   paper we did) and picks 4-tuples accordingly.  With H chains about
   one candidate in H qualifies, so enumeration is cheap. *)
let colliding_flows ~hasher ~chains ~count =
  let rec collect i acc found =
    if found >= count then List.rev acc
    else
      let flow = Topology.flow_of_client i in
      if Hashing.Hashers.bucket_flow hasher ~buckets:chains flow = 0 then
        collect (i + 1) (flow :: acc) (found + 1)
      else collect (i + 1) acc found
  in
  collect 0 [] 0

(* The cuckoo analogue of the chain-geometry attack: chain_geometry
   tells an attacker nothing useful about a cuckoo table (there are no
   chains), but the two hash functions are public, so the attacker
   aims every flow at both candidate buckets of ONE victim bucket
   pair.  The crafted set shares its primary bucket at every
   power-of-two mask up to [buckets] (nested masks), so the collisions
   hold from the table's first size through its growth to the flood
   population, forcing the insert path through full buckets, BFS
   kicks, and stash spills rather than degenerating to uniform
   traffic. *)
let cuckoo_colliding_flows ~buckets ~count =
  if buckets < 2 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Attack_workload.cuckoo_colliding_flows: buckets not a power \
                 of two >= 2";
  let mask = buckets - 1 in
  let bucket_pair flow =
    let w0 = Demux.Flow_key.w0_of_flow flow
    and w1 = Demux.Flow_key.w1_of_flow flow in
    ( Demux.Cuckoo_table.default_hash1 w0 w1 land mask,
      Demux.Cuckoo_table.default_hash2 w0 w1 land mask )
  in
  (* The victim pair: primary bucket 0, secondary taken from the first
     candidate that lands a genuine two-bucket pair. *)
  let scan_cap = 32_000_000 in
  let rec pick_secondary i =
    if i >= scan_cap then None
    else
      let b1, b2 = bucket_pair (Topology.flow_of_client i) in
      if b1 = 0 && b2 <> 0 then Some b2 else pick_secondary (i + 1)
  in
  match pick_secondary 0 with
  | None -> ([], 0)
  | Some victim ->
    let rec collect i acc exact =
      if exact >= count || i >= scan_cap then (acc, exact, i)
      else
        let flow = Topology.flow_of_client i in
        let b1, b2 = bucket_pair flow in
        if b1 = 0 && b2 = victim then collect (i + 1) (flow :: acc) (exact + 1)
        else collect (i + 1) acc exact
    in
    let acc, exact, resume = collect 0 [] 0 in
    (* If the pair family runs dry inside the scan cap, pad with
       primary-bucket-only colliders (client indexes past [resume] are
       fresh, so no duplicates): still every flow through bucket 0's
       tag vector and filter. *)
    let rec pad i acc have =
      if have >= count || i >= scan_cap then acc
      else
        let flow = Topology.flow_of_client i in
        let b1, _ = bucket_pair flow in
        if b1 = 0 then pad (i + 1) (flow :: acc) (have + 1)
        else pad (i + 1) acc have
    in
    let flows = if exact >= count then acc else pad resume acc exact in
    (List.rev flows, exact)

let rec targets_cuckoo = function
  | Demux.Registry.Cuckoo -> true
  | Demux.Registry.Guarded { spec; _ } -> targets_cuckoo spec
  | _ -> false

let observe_demux ~scenario obs tracer demux =
  (match obs with
  | Some obs ->
    Demux.Registry.observe
      ~prefix:
        (Printf.sprintf "attack.%s.%s" scenario demux.Demux.Registry.name)
      obs demux
  | None -> ());
  match tracer with
  | Some tracer ->
    Demux.Lookup_stats.set_tracer demux.Demux.Registry.stats tracer
  | None -> ()

let observe_stack ~scenario ~spec obs tracer stack =
  (match obs with
  | Some obs ->
    Tcpcore.Stack.register_obs
      ~prefix:
        (Printf.sprintf "attack.%s.%s" scenario
           (Demux.Registry.spec_name spec))
      stack obs
  | None -> ());
  match tracer with
  | Some tracer -> Tcpcore.Stack.set_tracer stack tracer
  | None -> ()

(* Bucket-pair variant for cuckoo specs: same scenario shape (insert
   the crafted flows, then hammer lookups over them), but the flows
   aim at one victim bucket pair of the bucket count the table will
   grow to for this population, so inserts ride kick chains into the
   stash instead of spreading uniformly. *)
let run_cuckoo_collision_flood ?obs ?tracer config spec =
  let buckets = Demux.Cuckoo_table.buckets_for config.flood_flows in
  let flow_list, exact =
    cuckoo_colliding_flows ~buckets ~count:config.flood_flows
  in
  let flows = Array.of_list flow_list in
  let demux = Demux.Registry.create spec in
  observe_demux ~scenario:"collision-flood" obs tracer demux;
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  let rng = Numerics.Rng.create ~seed:config.seed in
  for _ = 1 to config.flood_lookups do
    let flow = flows.(Numerics.Rng.int rng ~bound:(Array.length flows)) in
    ignore (demux.Demux.Registry.lookup ~kind:Demux.Types.Data flow)
  done;
  result_of_stats ~algorithm:demux.Demux.Registry.name
    ~scenario:"collision-flood" ~packets:config.flood_lookups
    ~table_length:(demux.Demux.Registry.length ())
    ~notes:
      (Printf.sprintf "bucket-pair %d/%d exact of %d flows at %d buckets"
         exact (Array.length flows) (Array.length flows) buckets)
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)

let run_collision_flood ?obs ?tracer config spec =
  if targets_cuckoo spec then run_cuckoo_collision_flood ?obs ?tracer config spec
  else
  let chains, hasher = Demux.Registry.chain_geometry spec in
  let flows =
    Array.of_list (colliding_flows ~hasher ~chains ~count:config.flood_flows)
  in
  let demux = Demux.Registry.create spec in
  observe_demux ~scenario:"collision-flood" obs tracer demux;
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  let rng = Numerics.Rng.create ~seed:config.seed in
  for _ = 1 to config.flood_lookups do
    let flow = flows.(Numerics.Rng.int rng ~bound:(Array.length flows)) in
    ignore (demux.Demux.Registry.lookup ~kind:Demux.Types.Data flow)
  done;
  let quality =
    Hashing.Quality.evaluate_hash hasher ~buckets:chains
      (Array.to_list flows)
  in
  result_of_stats ~algorithm:demux.Demux.Registry.name
    ~scenario:"collision-flood" ~packets:config.flood_lookups
    ~table_length:(demux.Demux.Registry.length ())
    ~notes:
      (Printf.sprintf "max-load %d/%d chi2 %.0f"
         quality.Hashing.Quality.max_load (Array.length flows)
         quality.Hashing.Quality.chi_square)
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)

(* ------------------------------------------------------------------ *)
(* SYN flood                                                           *)

let server_addr = Packet.Ipv4.addr_of_octets 192 168 1 1
let server_port = 8888

let run_syn_flood ?obs ?tracer config spec =
  let stack =
    Tcpcore.Stack.create ~demux:spec ~retransmit_timeout:0.5
      ~local_addr:server_addr ()
  in
  observe_stack ~scenario:"syn-flood" ~spec obs tracer stack;
  Tcpcore.Stack.listen stack ~port:server_port ~on_data:(fun _ _ _ -> ());
  let server_ep = Packet.Flow.endpoint server_addr server_port in
  let rng = Numerics.Rng.create ~seed:config.seed in
  let clock = ref 0.0 in
  for i = 0 to config.syn_attempts - 1 do
    (* Spoofed sources that never complete the handshake. *)
    let segment =
      Packet.Segment.make ~src:(Topology.client i) ~dst:server_ep
        ~flags:Packet.Tcp_header.flag_syn
        ~seq:(Int32.of_int (Numerics.Rng.int rng ~bound:0x7FFFFFFF))
        ()
    in
    ignore (Tcpcore.Stack.handle_bytes stack (Packet.Segment.to_bytes segment));
    ignore (Tcpcore.Stack.poll_output stack);
    clock := !clock +. 0.001;
    if i land 63 = 0 then
      ignore (Tcpcore.Stack.advance_clock stack ~now:!clock)
  done;
  (* Let the SYN-ACK retransmission timers fire through several backoff
     doublings. *)
  List.iter
    (fun dt ->
      ignore (Tcpcore.Stack.advance_clock stack ~now:(!clock +. dt));
      ignore (Tcpcore.Stack.poll_output stack))
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ];
  result_of_stats
    ~algorithm:(Demux.Registry.spec_name spec)
    ~scenario:"syn-flood" ~packets:config.syn_attempts
    ~table_length:(Tcpcore.Stack.connection_count stack)
    ~drops:(Tcpcore.Stack.drops_total stack)
    ~notes:
      (Printf.sprintf "syn-ack rexmits %d"
         (Tcpcore.Stack.retransmissions stack))
    (Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats stack))

(* ------------------------------------------------------------------ *)
(* Malformed-segment storm                                             *)

let random_bytes rng len =
  Bytes.init len (fun _ ->
      Char.chr (Int64.to_int (Int64.logand (Numerics.Rng.bits64 rng) 0xFFL)))

let storm_plan =
  Fault.Plan.v ~corrupt:0.35 ~truncate:0.2 ~duplicate:0.15 ~reorder:0.15
    ~drop:0.1 ~tuple_flip:0.25 ()

let run_malformed_storm ?obs ?tracer config spec =
  let stack = Tcpcore.Stack.create ~demux:spec ~local_addr:server_addr () in
  observe_stack ~scenario:"malformed-storm" ~spec obs tracer stack;
  Tcpcore.Stack.listen stack ~port:server_port ~on_data:(fun t conn payload ->
      Tcpcore.Stack.send t conn payload);
  let server_ep = Packet.Flow.endpoint server_addr server_port in
  let injector = Fault.Injector.create ~seed:config.seed storm_plan in
  let rng = Numerics.Rng.create ~seed:(config.seed + 1) in
  let deliveries = ref 0 in
  let deliver buf =
    incr deliveries;
    ignore (Tcpcore.Stack.handle_bytes stack buf);
    ignore (Tcpcore.Stack.poll_output stack)
  in
  for _ = 1 to config.storm_packets do
    match Numerics.Rng.int rng ~bound:4 with
    | 0 ->
      (* Pure junk: bytes that were never a datagram. *)
      deliver (random_bytes rng (Numerics.Rng.int rng ~bound:81))
    | _ ->
      (* A well-formed segment, put through the fault injector. *)
      let client = Topology.client (Numerics.Rng.int rng ~bound:512) in
      let flags =
        match Numerics.Rng.int rng ~bound:3 with
        | 0 -> Packet.Tcp_header.flag_syn
        | 1 -> Packet.Tcp_header.flag_ack
        | _ -> Packet.Tcp_header.flag_psh_ack
      in
      let segment =
        Packet.Segment.make ~src:client ~dst:server_ep ~flags
          ~seq:(Int32.of_int (Numerics.Rng.int rng ~bound:0x7FFFFFFF))
          ~payload:"storm" ()
      in
      List.iter deliver
        (Fault.Injector.feed injector (Packet.Segment.to_bytes segment))
  done;
  List.iter deliver (Fault.Injector.flush injector);
  let parse_errors =
    List.assoc "parse-error" (Tcpcore.Stack.drop_counts stack)
  in
  result_of_stats
    ~algorithm:(Demux.Registry.spec_name spec)
    ~scenario:"malformed-storm" ~packets:!deliveries
    ~table_length:(Tcpcore.Stack.connection_count stack)
    ~drops:(Tcpcore.Stack.drops_total stack)
    ~parse_errors
    ~notes:
      (Format.asprintf "%a" Fault.Injector.pp_counters
         (Fault.Injector.counters injector))
    (Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats stack))

(* ------------------------------------------------------------------ *)

let scenarios =
  [ ("collision-flood", run_collision_flood); ("syn-flood", run_syn_flood);
    ("malformed-storm", run_malformed_storm) ]

let run_all ?obs ?tracer config specs =
  List.concat
    (List.mapi
       (fun scenario_index (_, run) ->
         List.mapi
           (fun algorithm_index spec ->
             (* A Phase event brackets each (scenario, algorithm) run so
                a trace reader can attribute what follows. *)
             (match tracer with
             | Some tracer ->
               Obs.Trace.record tracer Obs.Trace.Phase scenario_index
                 algorithm_index
             | None -> ());
             run ?obs ?tracer config spec)
           specs)
       scenarios)

let pp_table ppf results =
  Format.fprintf ppf "%-16s %-24s %8s %8s %6s %7s %7s %6s %6s %6s@."
    "scenario" "algorithm" "packets" "mean" "max" "drops" "parse" "evict"
    "reject" "pcbs";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-16s %-24s %8d %8.2f %6d %7d %7d %6d %6d %6d  %s@." r.scenario
        r.algorithm r.packets r.mean_examined r.max_examined r.drops
        r.parse_errors r.evictions r.rejections r.table_length r.notes)
    results
