(** Adversarial workloads: what an attacker does to a demultiplexer.

    Three deterministic hostile scenarios, each replayable from a
    seed:

    - {b collision flood} — flows synthesized to collide in one hash
      chain of the target's geometry ({!Demux.Registry.chain_geometry}),
      degrading chained algorithms to linear search;
    - {b SYN flood} — spoofed connection attempts that never complete,
      bloating the PCB table and exercising SYN-ACK retransmission
      backoff;
    - {b malformed-segment storm} — valid traffic pushed through
      {!Fault.Injector} plus raw junk, exercising the hardened ingest
      path ([Stack.handle_bytes] drop accounting).

    Pit them against guarded and unguarded {!Demux.Registry.spec}s to
    measure graceful degradation. *)

type config = {
  seed : int;
  flood_flows : int;    (** Colliding flows inserted by the flood. *)
  flood_lookups : int;  (** Lookups driven against the flooded table. *)
  syn_attempts : int;   (** Spoofed SYNs sent. *)
  storm_packets : int;  (** Datagrams synthesized for the storm. *)
}

val default_config : ?seed:int -> unit -> config
(** Full-size scenarios; [seed] defaults to 42. *)

val smoke_config : ?seed:int -> unit -> config
(** Small counts for CI smoke runs. *)

type result = {
  algorithm : string;
  scenario : string;
  packets : int;          (** Hostile packets / lookups driven. *)
  mean_examined : float;  (** Mean PCBs examined per lookup. *)
  max_examined : int;
  table_length : int;     (** PCBs retained when the attack ended. *)
  evictions : int;        (** Flows shed by a {!Demux.Guarded} wrapper. *)
  rejections : int;       (** Insertions refused by a guard. *)
  drops : int;            (** Datagrams shed by [Stack.handle_bytes]. *)
  parse_errors : int;     (** Drops attributed to parsing. *)
  notes : string;         (** Scenario-specific detail. *)
}

val colliding_flows :
  hasher:Hashing.Hashers.t -> chains:int -> count:int -> Packet.Flow.t list
(** [count] distinct flows that all hash to chain 0 of the given
    geometry — the attacker's ammunition. *)

val cuckoo_colliding_flows :
  buckets:int -> count:int -> Packet.Flow.t list * int
(** The cuckoo analogue of {!colliding_flows}: up to [count] distinct
    flows whose {e both} candidate buckets
    ({!Demux.Cuckoo_table.default_hash1} / [default_hash2] under
    [land (buckets - 1)]) equal one victim bucket pair — and, by mask
    nesting, whose primary bucket coincides at every smaller
    power-of-two size, so the collisions hold while the table grows.
    Returns the flows and how many hit the pair exactly (the
    remainder, if the enumeration cap ran out, collide on the primary
    bucket only).  [run_collision_flood] uses this automatically for
    ["cuckoo"] / ["guarded-cuckoo"] specs, sized by
    {!Demux.Cuckoo_table.buckets_for}.
    @raise Invalid_argument if [buckets] is not a power of two >= 2. *)

val run_collision_flood :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> result

val run_syn_flood :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> result

val run_malformed_storm :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> result

val run_all :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec list -> result list
(** Every scenario against every spec, grouped by scenario.  [?obs]
    registers each run's accounting under
    ["attack.<scenario>.<algorithm>."]; [?tracer] receives the runs'
    hot-path events, with a [Phase] event (payload: scenario index,
    algorithm index) bracketing each run. *)

val pp_table : Format.formatter -> result list -> unit
(** The resilience table the [tcpdemux attack] subcommand prints. *)
