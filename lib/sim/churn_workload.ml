type config = {
  arrival_rate : float;
  packets_per_connection : Numerics.Distribution.t;
  packet_gap : float;
  warmup : float;
  duration : float;
  seed : int;
}

let default_config ?(arrival_rate = 50.0) ?(duration = 60.0) () =
  { arrival_rate;
    packets_per_connection = Numerics.Distribution.geometric ~p:(1.0 /. 8.0);
    packet_gap = 0.05; warmup = 10.0; duration; seed = 42 }

let mean_lifetime config =
  (* Mean packet count is 1 + the distribution's mean (see run), each
     occupying one gap of lifetime. *)
  (1.0 +. Numerics.Distribution.mean config.packets_per_connection)
  *. config.packet_gap

let steady_state_population config = config.arrival_rate *. mean_lifetime config

let run ?obs ?tracer config spec =
  if config.arrival_rate <= 0.0 then
    invalid_arg "Churn_workload.run: arrival_rate <= 0";
  if config.duration <= 0.0 then invalid_arg "Churn_workload.run: duration <= 0";
  let rng = Numerics.Rng.create ~seed:config.seed in
  let demux = Demux.Registry.create spec in
  let meter = Meter.create ?obs ?tracer demux in
  let engine = Engine.create () in
  let interarrival = Numerics.Distribution.exponential ~rate:config.arrival_rate in
  let next_client = ref 0 in
  (* One connection's life: insert, receive its packets, remove. *)
  let start_connection engine =
    let client = !next_client in
    incr next_client;
    let flow = Topology.flow_of_client client in
    ignore (demux.Demux.Registry.insert flow ());
    let packets =
      1
      + int_of_float
          (Numerics.Distribution.sample config.packets_per_connection rng)
    in
    let rec deliver remaining engine =
      Meter.lookup meter ~kind:Demux.Types.Data flow;
      Meter.note_send meter flow (* the response/ack traffic *);
      if remaining > 1 then
        Engine.schedule engine ~delay:config.packet_gap (deliver (remaining - 1))
      else ignore (demux.Demux.Registry.remove flow)
    in
    deliver packets engine
  in
  let rec arrivals engine =
    start_connection engine;
    Engine.schedule engine
      ~delay:(Numerics.Distribution.sample interarrival rng)
      arrivals
  in
  Engine.schedule engine
    ~delay:(Numerics.Distribution.sample interarrival rng)
    arrivals;
  Meter.set_measuring meter false;
  Engine.run ~until:config.warmup engine;
  Meter.start_measuring meter;
  Engine.run ~until:(config.warmup +. config.duration) engine;
  Report.of_meter ~workload:"churn" meter
