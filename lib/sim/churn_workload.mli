(** Connection-churn workload: short-lived connections arriving and
    departing continuously.

    The paper's OLTP terminals hold their connections for the whole
    session, so its analysis never charges for insertion or removal.
    Web-style traffic is the opposite: connections live for a handful
    of packets.  This workload measures the lookup algorithms when the
    PCB population itself is in flux — new PCBs enter at the head
    (fresh connections are the likeliest to receive packets, which is
    why BSD inserts at the head), dead ones are unlinked, and the
    steady-state population is Little's-law bound
    [arrival_rate * lifetime]. *)

type config = {
  arrival_rate : float;     (** New connections per second (Poisson). *)
  packets_per_connection : Numerics.Distribution.t;
      (** Inbound packets over a connection's life (values < 1
          become 1). *)
  packet_gap : float;       (** Seconds between a connection's packets. *)
  warmup : float;
  duration : float;         (** Measured seconds. *)
  seed : int;
}

val default_config : ?arrival_rate:float -> ?duration:float -> unit -> config
(** Defaults: 50 connections/s, geometric packets (mean 8), 50 ms
    gaps, warm-up 10 s, 60 measured seconds, seed 42 — a steady-state
    population of ~20 live connections. *)

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> Report.t
(** [?obs] and [?tracer] instrument the demultiplexer as in
    {!Meter.create}. *)

val steady_state_population : config -> float
(** Little's law: [arrival_rate * mean_lifetime]. *)
