type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  mutable processed : int;
  mutable stopped : bool;
}

let create () =
  { queue = Event_queue.create (); clock = 0.0; processed = 0;
    stopped = false }

let now t = t.clock

let schedule_at t ~time callback =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time callback

let schedule t ~delay callback =
  if Float.is_nan delay || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or NaN delay";
  Event_queue.add t.queue ~time:(t.clock +. delay) callback

let run ?(until = Float.infinity) ?(max_events = max_int) t =
  if Float.is_nan until then invalid_arg "Engine.run: NaN until";
  if until < 0.0 then invalid_arg "Engine.run: negative until";
  if max_events <= 0 then invalid_arg "Engine.run: max_events <= 0";
  t.stopped <- false;
  let rec step () =
    if (not t.stopped) && t.processed < max_events then
      match Event_queue.peek_time t.queue with
      | Some time when time <= until -> (
        match Event_queue.pop t.queue with
        | Some (time, callback) ->
          t.clock <- time;
          t.processed <- t.processed + 1;
          callback t;
          step ()
        | None -> ())
      | Some _ | None -> ()
  in
  step ()

let events_processed t = t.processed
let stop t = t.stopped <- true

let clock t = Obs.Clock.of_fun (fun () -> t.clock)
