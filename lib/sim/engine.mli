(** Discrete-event simulation core: a clock and an agenda of
    callbacks.

    Callbacks may schedule further events; time never flows backwards.
    The engine is single-threaded and deterministic given a
    deterministic workload. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Schedule a callback [delay] seconds from now.
    @raise Invalid_argument if [delay] is negative or NaN. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Schedule at an absolute time.
    @raise Invalid_argument if [time] is in the past or NaN. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events in time order until the agenda is empty, the clock
    would pass [until], or [max_events] callbacks have run.  Events
    scheduled exactly at [until] still fire.

    If a callback raises, the exception propagates but the engine
    stays consistent: the clock and processed count reflect the
    faulting event, the rest of the agenda is intact, and a later
    {!run} resumes where the failure happened.  ([max_events] counts
    {e cumulative} processed events across runs.)
    @raise Invalid_argument if [until] is NaN or negative, or
    [max_events] is not positive. *)

val events_processed : t -> int

val stop : t -> unit
(** Request that {!run} return after the current callback. *)

val clock : t -> Obs.Clock.t
(** The simulation clock as an observability clock: reading it returns
    {!now}.  Attach to a tracer ({!Obs.Trace.set_clock}) so events are
    stamped in virtual seconds instead of wall time. *)
