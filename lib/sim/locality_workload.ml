type config = {
  connections : int;
  packets : int;
  zipf_exponent : float;
  burst_length : Numerics.Distribution.t;
  ack_fraction : float;
  seed : int;
}

let default_config ?(connections = 256) ?(packets = 50_000) () =
  { connections; packets; zipf_exponent = 1.0;
    burst_length = Numerics.Distribution.geometric ~p:0.25;
    ack_fraction = 0.3; seed = 42 }

(* Zipf sampling by inverse CDF over the precomputed cumulative mass. *)
let zipf_cdf ~connections ~exponent =
  let weights =
    Array.init connections (fun i ->
        1.0 /. (float_of_int (i + 1) ** exponent))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make connections 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf

let sample_zipf cdf rng =
  let u = Numerics.Rng.float rng in
  (* First index whose cumulative mass exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length cdf - 1)

let run ?obs ?tracer config spec =
  if config.connections <= 0 then
    invalid_arg "Locality_workload.run: connections <= 0";
  if config.packets <= 0 then invalid_arg "Locality_workload.run: packets <= 0";
  if config.ack_fraction < 0.0 || config.ack_fraction > 1.0 then
    invalid_arg "Locality_workload.run: ack_fraction outside [0,1]";
  let rng = Numerics.Rng.create ~seed:config.seed in
  let demux = Demux.Registry.create spec in
  let meter = Meter.create ?obs ?tracer demux in
  let flows = Topology.flows config.connections in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  let cdf = zipf_cdf ~connections:config.connections
      ~exponent:config.zipf_exponent
  in
  (* Popular flows should not all sit at the front of insertion-ordered
     lists, so shuffle rank -> flow. *)
  let rank_to_flow = Array.copy flows in
  Numerics.Rng.shuffle rng rank_to_flow;
  Meter.start_measuring meter;
  let delivered = ref 0 in
  while !delivered < config.packets do
    let rank = sample_zipf cdf rng in
    let flow = rank_to_flow.(rank) in
    let burst =
      1 + int_of_float (Numerics.Distribution.sample config.burst_length rng)
    in
    let remaining = config.packets - !delivered in
    let burst = min burst remaining in
    for _ = 1 to burst do
      if Numerics.Rng.float rng < config.ack_fraction then begin
        Meter.note_send meter flow;
        Meter.lookup meter ~kind:Demux.Types.Pure_ack flow
      end
      else Meter.lookup meter ~kind:Demux.Types.Data flow
    done;
    delivered := !delivered + burst
  done;
  Report.of_meter ~workload:"locality" meter
